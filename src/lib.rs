//! `aerothermo` — a computational aerothermodynamics (CAT) toolkit.
//!
//! This umbrella crate re-exports the whole workspace so that applications
//! (and the `examples/` directory) can depend on a single crate:
//!
//! ```
//! use aerothermo::numerics::constants::R_UNIVERSAL;
//! assert!(R_UNIVERSAL > 8314.0);
//! ```
//!
//! The subsystems, bottom-up:
//!
//! * [`numerics`] — dense fields, linear algebra, ODE integrators, interpolation.
//! * [`gas`] — high-temperature thermochemistry: species data, equilibrium,
//!   finite-rate kinetics, two-temperature models, transport properties.
//! * [`atmosphere`] — planetary atmospheres and entry trajectories.
//! * [`grid`] — body-fitted structured grids for blunt bodies.
//! * [`radiation`] — spectral shock-layer radiation and tangent-slab transport.
//! * [`solvers`] — the four CAT equation sets (NS, PNS, Euler+BL, VSL) plus the
//!   1-D post-shock relaxation solver.
//! * [`core`] — the unified front end: problem setup, heating correlations,
//!   solver dispatch, result tables.
//! * [`sweep`] — batched case-sweep orchestration: declarative case specs,
//!   the bounded worker pool, the JSONL result store, and the live
//!   lifecycle-event stream.
//!
//! The design follows Deiwert & Green, *Computational Aerothermodynamics*,
//! NASA TM-89450 (1987); see `DESIGN.md` and `EXPERIMENTS.md` at the
//! repository root for the paper-to-code map.
#![warn(missing_docs)]

pub use aerothermo_atmosphere as atmosphere;
pub use aerothermo_core as core;
pub use aerothermo_gas as gas;
pub use aerothermo_grid as grid;
pub use aerothermo_numerics as numerics;
pub use aerothermo_radiation as radiation;
pub use aerothermo_solvers as solvers;
pub use aerothermo_sweep as sweep;
