//! Freestream condition builders: the (M∞, Re∞) coordinates of the paper's
//! Fig. 1 flight-domain map, plus stagnation enthalpy.

use crate::Atmosphere;
use aerothermo_gas::transport::sutherland_air;

/// Freestream state at a flight condition.
#[derive(Debug, Clone, Copy)]
pub struct Freestream {
    /// Altitude \[m\].
    pub altitude: f64,
    /// Velocity \[m/s\].
    pub velocity: f64,
    /// Static temperature \[K\].
    pub temperature: f64,
    /// Static pressure \[Pa\].
    pub pressure: f64,
    /// Density \[kg/m³\].
    pub density: f64,
    /// Mach number.
    pub mach: f64,
    /// Unit Reynolds number \[1/m\].
    pub reynolds_per_meter: f64,
    /// Total (stagnation) specific enthalpy \[J/kg\], cold-gas reference.
    pub total_enthalpy: f64,
}

/// Build the freestream at `(altitude, velocity)` for an atmosphere.
/// Viscosity uses Sutherland air — adequate for the cold freestream even on
/// Titan (N₂-dominated) at the fidelity of a flight-domain map.
#[must_use]
pub fn freestream(atm: &dyn Atmosphere, altitude: f64, velocity: f64) -> Freestream {
    let t = atm.temperature(altitude);
    let p = atm.pressure(altitude);
    let rho = atm.density(altitude);
    let a = atm.sound_speed(altitude);
    let mu = sutherland_air(t);
    let gamma = atm.gamma();
    let cp = gamma * atm.gas_constant() / (gamma - 1.0);
    Freestream {
        altitude,
        velocity,
        temperature: t,
        pressure: p,
        density: rho,
        mach: velocity / a,
        reynolds_per_meter: rho * velocity / mu,
        total_enthalpy: cp * t + 0.5 * velocity * velocity,
    }
}

/// Reynolds number for a reference length.
#[must_use]
pub fn reynolds(fs: &Freestream, length: f64) -> f64 {
    fs.reynolds_per_meter * length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::us76::Us76;

    #[test]
    fn sea_level_transonic() {
        let fs = freestream(&Us76, 0.0, 340.0);
        assert!((fs.mach - 1.0).abs() < 0.01);
        // Unit Reynolds ~ 2.3e7 /m at M=1 sea level.
        assert!(fs.reynolds_per_meter > 1.5e7 && fs.reynolds_per_meter < 3e7);
    }

    #[test]
    fn orbiter_entry_point() {
        // The paper's Fig. 4 condition: 6.7 km/s at 65.5 km → M ≈ 21-23,
        // low Reynolds.
        let fs = freestream(&Us76, 65_500.0, 6_700.0);
        assert!(fs.mach > 19.0 && fs.mach < 24.0, "M = {}", fs.mach);
        let re = reynolds(&fs, 32.8); // orbiter length
        assert!(re > 1e5 && re < 1e7, "Re_L = {re:.3e}");
    }

    #[test]
    fn total_enthalpy_dominated_by_kinetic() {
        let fs = freestream(&Us76, 65_500.0, 6_700.0);
        let kinetic = 0.5 * 6_700.0_f64 * 6_700.0;
        assert!((fs.total_enthalpy - kinetic) / fs.total_enthalpy < 0.02);
    }

    #[test]
    fn higher_altitude_lower_reynolds() {
        let lo = freestream(&Us76, 40_000.0, 3_000.0);
        let hi = freestream(&Us76, 80_000.0, 3_000.0);
        assert!(hi.reynolds_per_meter < lo.reynolds_per_meter / 10.0);
    }
}
