//! U.S. Standard Atmosphere 1976.
//!
//! The classic seven-layer geopotential model to 86 km, extended above with
//! an exponential density tail (adequate for the 86–120 km entry-corridor
//! fringe; the thermosphere's temperature rise matters little for the
//! dynamic-pressure-dominated quantities computed from it).

use crate::Atmosphere;
use aerothermo_numerics::constants::{G0_EARTH, R_EARTH};

/// Specific gas constant of dry air \[J/(kg·K)\].
pub const R_AIR: f64 = 287.053;

/// Layer table: (geopotential base altitude \[m\], base temperature \[K\],
/// lapse rate \[K/m\], base pressure \[Pa\]).
const LAYERS: [(f64, f64, f64, f64); 8] = [
    (0.0, 288.15, -6.5e-3, 101_325.0),
    (11_000.0, 216.65, 0.0, 22_632.06),
    (20_000.0, 216.65, 1.0e-3, 5_474.889),
    (32_000.0, 228.65, 2.8e-3, 868.0187),
    (47_000.0, 270.65, 0.0, 110.9063),
    (51_000.0, 270.65, -2.8e-3, 66.93887),
    (71_000.0, 214.65, -2.0e-3, 3.956420),
    (84_852.0, 186.946, 0.0, 0.373_8),
];

/// Top of the layered model (geopotential) \[m\].
const H_TOP: f64 = 84_852.0;

/// Density scale height used for the exponential extension above 86 km \[m\].
const H_SCALE_EXT: f64 = 7_250.0;

/// The U.S. Standard Atmosphere 1976.
///
/// ```
/// use aerothermo_atmosphere::{us76::Us76, Atmosphere};
/// let atm = Us76;
/// assert!((atm.temperature(0.0) - 288.15).abs() < 1e-6);
/// assert!(atm.density(30_000.0) < atm.density(0.0) / 10.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Us76;

impl Us76 {
    /// Convert geometric altitude to geopotential altitude.
    #[must_use]
    pub fn geopotential(z: f64) -> f64 {
        R_EARTH * z / (R_EARTH + z)
    }

    fn layer(h: f64) -> usize {
        let mut i = 0;
        for (k, layer) in LAYERS.iter().enumerate() {
            if h >= layer.0 {
                i = k;
            }
        }
        i
    }

    fn t_p(z: f64) -> (f64, f64) {
        let h = Self::geopotential(z.max(0.0)).min(H_TOP);
        let i = Self::layer(h);
        let (hb, tb, lapse, pb) = LAYERS[i];
        let t = tb + lapse * (h - hb);
        let p = if lapse.abs() < 1e-12 {
            pb * (-G0_EARTH * (h - hb) / (R_AIR * tb)).exp()
        } else {
            pb * (tb / t).powf(G0_EARTH / (R_AIR * lapse))
        };
        if Self::geopotential(z) <= H_TOP {
            (t, p)
        } else {
            // Exponential extension above 86 km geometric.
            let t_top = LAYERS[7].1;
            let p_top = p; // pressure at the cap from the last layer
            let dz = Self::geopotential(z) - H_TOP;
            (t_top, p_top * (-dz / H_SCALE_EXT).exp())
        }
    }
}

impl Atmosphere for Us76 {
    fn temperature(&self, h: f64) -> f64 {
        Self::t_p(h).0
    }

    fn pressure(&self, h: f64) -> f64 {
        Self::t_p(h).1
    }

    fn density(&self, h: f64) -> f64 {
        let (t, p) = Self::t_p(h);
        p / (R_AIR * t)
    }

    fn gas_constant(&self) -> f64 {
        R_AIR
    }

    fn gamma(&self) -> f64 {
        1.4
    }

    fn planet_radius(&self) -> f64 {
        R_EARTH
    }

    fn surface_gravity(&self) -> f64 {
        G0_EARTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sea_level() {
        let a = Us76;
        assert!((a.temperature(0.0) - 288.15).abs() < 1e-9);
        assert!((a.pressure(0.0) - 101_325.0).abs() < 1e-6);
        assert!((a.density(0.0) - 1.225).abs() < 0.001);
    }

    #[test]
    fn tropopause() {
        let a = Us76;
        // Geometric 11 019 m ≈ geopotential 11 000 m.
        let t = a.temperature(11_019.0);
        assert!((t - 216.65).abs() < 0.1, "T = {t}");
        let p = a.pressure(11_019.0);
        assert!((p - 22_632.0).abs() / 22_632.0 < 0.005, "p = {p}");
    }

    #[test]
    fn standard_checkpoints() {
        let a = Us76;
        // 1976 standard tables (geometric altitude): values to a few ‰.
        // 30 km: T = 226.5 K, p = 1197 Pa, ρ = 1.84e-2.
        assert!((a.temperature(30_000.0) - 226.5).abs() < 1.0);
        assert!((a.pressure(30_000.0) - 1197.0).abs() / 1197.0 < 0.01);
        assert!((a.density(30_000.0) - 1.841e-2).abs() / 1.841e-2 < 0.01);
        // 50 km: T ≈ 270.65, p ≈ 79.78 Pa.
        assert!((a.temperature(50_000.0) - 270.65).abs() < 0.5);
        assert!((a.pressure(50_000.0) - 79.78).abs() / 79.78 < 0.02);
        // 71.3 km (paper's Fig. 6 STS-3 point): ρ ≈ 7e-5 kg/m³.
        let rho = a.density(71_300.0);
        assert!(rho > 4e-5 && rho < 1.2e-4, "rho(71.3 km) = {rho:.3e}");
    }

    #[test]
    fn density_monotone_decreasing() {
        let a = Us76;
        let mut prev = a.density(0.0);
        for k in 1..120 {
            let h = 1000.0 * f64::from(k);
            let rho = a.density(h);
            assert!(rho < prev, "rho not decreasing at {h}");
            prev = rho;
        }
    }

    #[test]
    fn exponential_extension_continuous() {
        let a = Us76;
        let below = a.density(85_900.0);
        let above = a.density(86_100.0);
        assert!((below - above).abs() / below < 0.1);
        assert!(a.density(110_000.0) < a.density(90_000.0));
    }

    #[test]
    fn sound_speed_sea_level() {
        let a = Us76;
        assert!((a.sound_speed(0.0) - 340.3).abs() < 0.5);
    }

    #[test]
    fn gravity_decays() {
        let a = Us76;
        assert!(a.gravity(0.0) > a.gravity(100_000.0));
        assert!((a.gravity(0.0) - G0_EARTH).abs() < 1e-12);
    }
}
