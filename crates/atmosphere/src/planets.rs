//! Exponential atmosphere models for planetary entries.
//!
//! The paper's Titan-probe case (Figs. 2–3, Ref. 15 of the paper) and the
//! Galileo/Jupiter heritage it cites used engineering atmosphere models.
//! We provide a piecewise-exponential density profile with an isothermal
//! temperature per segment — the same construction as the era's design
//! atmospheres — parameterized per planet. These are documented substitutes
//! for the proprietary mission atmospheres (see DESIGN.md §2); the entry
//! heating-pulse physics (Allen-Eggers) depends only on the local scale
//! height, which is matched.

use crate::Atmosphere;

/// Piecewise-exponential atmosphere: within segment `i`,
/// `ρ(h) = ρ_i · exp(−(h − h_i)/H_i)` with temperature `T_i`.
#[derive(Debug, Clone)]
pub struct ExponentialAtmosphere {
    /// Segment base altitudes \[m\], strictly increasing, first must be 0.
    bases: Vec<f64>,
    /// Density at each segment base \[kg/m³\].
    rho_bases: Vec<f64>,
    /// Scale height per segment \[m\].
    scale_heights: Vec<f64>,
    /// Temperature per segment \[K\].
    temperatures: Vec<f64>,
    r_gas: f64,
    gamma: f64,
    radius: f64,
    g0: f64,
    name: &'static str,
}

impl ExponentialAtmosphere {
    /// Construct from segments `(base_altitude, base_density, scale_height,
    /// temperature)` plus planet constants.
    ///
    /// # Panics
    /// Panics when the segment list is empty or base altitudes are not
    /// strictly increasing from 0.
    #[must_use]
    pub fn new(
        name: &'static str,
        segments: &[(f64, f64, f64, f64)],
        r_gas: f64,
        gamma: f64,
        radius: f64,
        g0: f64,
    ) -> Self {
        assert!(!segments.is_empty());
        assert_eq!(segments[0].0, 0.0, "first segment must start at h = 0");
        for w in segments.windows(2) {
            assert!(w[1].0 > w[0].0, "segment bases must increase");
        }
        Self {
            bases: segments.iter().map(|s| s.0).collect(),
            rho_bases: segments.iter().map(|s| s.1).collect(),
            scale_heights: segments.iter().map(|s| s.2).collect(),
            temperatures: segments.iter().map(|s| s.3).collect(),
            r_gas,
            gamma,
            radius,
            g0,
            name,
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn segment(&self, h: f64) -> usize {
        let mut i = 0;
        for (k, &b) in self.bases.iter().enumerate() {
            if h >= b {
                i = k;
            }
        }
        i
    }

    /// Titan engineering atmosphere (N₂ with a few percent CH₄): surface
    /// ~1.5 bar at 94 K, ~20 km scale height in the lower atmosphere
    /// opening to ~50 km in the upper atmosphere where entry heating peaks
    /// (≈ 200–400 km altitude).
    #[must_use]
    pub fn titan() -> Self {
        use aerothermo_numerics::constants::{G0_TITAN, R_TITAN};
        // R for N2 + 5% CH4 (M ≈ 27.4 kg/kmol).
        let r_gas = 303.0;
        Self::new(
            "titan",
            &[
                (0.0, 5.43, 20_000.0, 94.0),
                // 100 km: ρ = 5.43·exp(−5) ≈ 3.66e-2.
                (100_000.0, 3.66e-2, 30_000.0, 140.0),
                // 250 km: ρ = 3.66e-2·exp(−5) ≈ 2.47e-4.
                (250_000.0, 2.47e-4, 45_000.0, 165.0),
            ],
            r_gas,
            1.4,
            R_TITAN,
            G0_TITAN,
        )
    }

    /// Jupiter engineering atmosphere (H₂/He) anchored at the 1-bar level,
    /// for Galileo-class entry sweeps.
    #[must_use]
    pub fn jupiter() -> Self {
        Self::new(
            "jupiter",
            &[(0.0, 0.16, 27_000.0, 165.0)],
            3_745.0, // H2/He mix, M ≈ 2.22 kg/kmol
            1.45,
            6.9911e7,
            24.79,
        )
    }
}

impl Atmosphere for ExponentialAtmosphere {
    fn temperature(&self, h: f64) -> f64 {
        self.temperatures[self.segment(h.max(0.0))]
    }

    fn pressure(&self, h: f64) -> f64 {
        self.density(h) * self.r_gas * self.temperature(h)
    }

    fn density(&self, h: f64) -> f64 {
        let h = h.max(0.0);
        let i = self.segment(h);
        self.rho_bases[i] * (-(h - self.bases[i]) / self.scale_heights[i]).exp()
    }

    fn gas_constant(&self) -> f64 {
        self.r_gas
    }

    fn gamma(&self) -> f64 {
        self.gamma
    }

    fn planet_radius(&self) -> f64 {
        self.radius
    }

    fn surface_gravity(&self) -> f64 {
        self.g0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_surface() {
        let a = ExponentialAtmosphere::titan();
        assert!((a.density(0.0) - 5.43).abs() < 1e-9);
        assert!((a.temperature(0.0) - 94.0).abs() < 1e-9);
        // Surface pressure ≈ 1.5 bar.
        let p = a.pressure(0.0);
        assert!(p > 1.2e5 && p < 1.8e5, "p = {p}");
    }

    #[test]
    fn titan_entry_altitudes_thin() {
        let a = ExponentialAtmosphere::titan();
        let rho300 = a.density(300_000.0);
        assert!(rho300 < 1e-3 && rho300 > 1e-7, "rho(300 km) = {rho300:.3e}");
    }

    #[test]
    fn density_decreases_smoothly() {
        let a = ExponentialAtmosphere::titan();
        let mut prev = a.density(0.0);
        for k in 1..100 {
            let h = 5000.0 * f64::from(k);
            let rho = a.density(h);
            assert!(rho < prev, "rho rising at {h}");
            prev = rho;
        }
    }

    #[test]
    fn segments_roughly_continuous() {
        let a = ExponentialAtmosphere::titan();
        for h in [100_000.0, 250_000.0] {
            let below = a.density(h - 100.0);
            let above = a.density(h + 100.0);
            assert!((below - above).abs() / below < 0.05, "jump at {h}");
        }
    }

    #[test]
    fn jupiter_has_huge_sound_speed() {
        // Light H2/He gas: a ≈ √(1.45·3745·165) ≈ 947 m/s.
        let a = ExponentialAtmosphere::jupiter();
        let c = a.sound_speed(0.0);
        assert!(c > 800.0 && c < 1100.0, "a = {c}");
    }

    #[test]
    #[should_panic(expected = "first segment")]
    fn bad_segments_rejected() {
        let _ = ExponentialAtmosphere::new("x", &[(10.0, 1.0, 1e4, 100.0)], 287.0, 1.4, 6e6, 9.8);
    }
}
