//! Planar three-degree-of-freedom entry trajectories.
//!
//! Integrates the classical longitudinal entry equations over a spherical
//! non-rotating planet:
//!
//! ```text
//! dV/dt = −D/m − g·sin γ
//! dγ/dt = (V/r − g/V)·cos γ + L/(m·V)
//! dh/dt = V·sin γ
//! ds/dt = V·cos γ · R/r       (surface-range rate)
//! ```
//!
//! with `D = ½ρV²·C_D·A` and `L = (L/D)·D`. This is the machinery behind the
//! paper's Fig. 1 flight-domain envelopes and the Fig. 2 heating pulses.

use crate::Atmosphere;
use aerothermo_numerics::ode::{rkf45_integrate, AdaptiveOptions};

/// Vehicle mass/aero description for entry mechanics.
#[derive(Debug, Clone, Copy)]
pub struct Vehicle {
    /// Mass \[kg\].
    pub mass: f64,
    /// Aerodynamic reference area \[m²\].
    pub area: f64,
    /// Hypersonic drag coefficient.
    pub cd: f64,
    /// Lift-to-drag ratio (0 for ballistic entry).
    pub ld: f64,
    /// Nose radius \[m\] (used by the heating correlations downstream).
    pub nose_radius: f64,
}

impl Vehicle {
    /// Ballistic coefficient m/(C_D·A) \[kg/m²\].
    #[must_use]
    pub fn ballistic_coefficient(&self) -> f64 {
        self.mass / (self.cd * self.area)
    }

    /// A Titan-probe-like blunt capsule (Ref. 15 class).
    #[must_use]
    pub fn titan_probe() -> Self {
        Self {
            mass: 250.0,
            area: std::f64::consts::PI * 0.675 * 0.675,
            cd: 1.5,
            ld: 0.0,
            nose_radius: 0.6,
        }
    }

    /// A Shuttle-Orbiter-like lifting entry vehicle.
    #[must_use]
    pub fn shuttle_like() -> Self {
        Self {
            mass: 92_000.0,
            area: 250.0,
            cd: 0.84,
            ld: 1.1,
            nose_radius: 0.6,
        }
    }

    /// An AOTV-class high-drag aerobrake.
    #[must_use]
    pub fn aotv_like() -> Self {
        Self {
            mass: 13_000.0,
            area: 120.0,
            cd: 1.5,
            ld: 0.3,
            nose_radius: 6.0,
        }
    }
}

/// One trajectory sample.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryPoint {
    /// Time from entry interface \[s\].
    pub time: f64,
    /// Altitude \[m\].
    pub altitude: f64,
    /// Velocity \[m/s\].
    pub velocity: f64,
    /// Flight-path angle \[rad\], negative downward.
    pub gamma: f64,
    /// Downrange distance \[m\].
    pub range: f64,
    /// Local density \[kg/m³\].
    pub density: f64,
    /// Local temperature \[K\].
    pub temperature: f64,
    /// Deceleration magnitude \[m/s²\] (drag only).
    pub deceleration: f64,
    /// Dynamic pressure ½ρV² \[Pa\].
    pub dynamic_pressure: f64,
}

/// Entry interface conditions.
#[derive(Debug, Clone, Copy)]
pub struct EntryConditions {
    /// Entry altitude \[m\].
    pub altitude: f64,
    /// Entry velocity \[m/s\].
    pub velocity: f64,
    /// Entry flight-path angle \[rad\], negative downward.
    pub gamma: f64,
}

/// Stopping rules for the integrator.
#[derive(Debug, Clone, Copy)]
pub struct StopConditions {
    /// Stop below this altitude \[m\].
    pub min_altitude: f64,
    /// Stop below this velocity \[m/s\].
    pub min_velocity: f64,
    /// Hard time limit \[s\].
    pub max_time: f64,
}

impl Default for StopConditions {
    fn default() -> Self {
        Self {
            min_altitude: 1_000.0,
            min_velocity: 200.0,
            max_time: 4_000.0,
        }
    }
}

/// Integrate an entry trajectory; returns samples at the integrator's
/// accepted steps (dense enough for heating-pulse work).
pub fn fly(
    atmosphere: &dyn Atmosphere,
    vehicle: &Vehicle,
    entry: EntryConditions,
    stop: StopConditions,
) -> Vec<TrajectoryPoint> {
    fly_observed(atmosphere, vehicle, entry, stop, |_| {})
}

/// [`fly`] with an observer invoked at every recorded sample as it is
/// produced — lets heating-history resolvers (e.g. the surrogate fast
/// path) ride the integration without a second pass over the output.
/// The returned trajectory is bitwise identical to [`fly`]'s.
pub fn fly_observed(
    atmosphere: &dyn Atmosphere,
    vehicle: &Vehicle,
    entry: EntryConditions,
    stop: StopConditions,
    mut observer: impl FnMut(&TrajectoryPoint),
) -> Vec<TrajectoryPoint> {
    let beta = vehicle.ballistic_coefficient();
    let rp = atmosphere.planet_radius();

    // State: [V, gamma, h, s]
    let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
        let v = y[0].max(1.0);
        let gamma = y[1];
        let h = y[2].max(0.0);
        let rho = atmosphere.density(h);
        let g = atmosphere.gravity(h);
        let r = rp + h;
        let drag_acc = 0.5 * rho * v * v / beta;
        let lift_acc = vehicle.ld * drag_acc;
        d[0] = -drag_acc - g * gamma.sin();
        d[1] = (v / r - g / v) * gamma.cos() + lift_acc / v;
        d[2] = v * gamma.sin();
        d[3] = v * gamma.cos() * rp / r;
    };

    let mut y = [entry.velocity, entry.gamma, entry.altitude, 0.0];
    let mut points = Vec::new();
    let mut done = false;
    // Integrate in windows so the stop conditions can cut the flight short.
    let window = 2.0;
    let mut t = 0.0;
    let opts = AdaptiveOptions {
        rtol: 1e-8,
        atol: 1e-8,
        h0: 0.05,
        hmax: 1.0,
        ..AdaptiveOptions::default()
    };
    let make_point = |t: f64, y: &[f64]| {
        let h = y[2].max(0.0);
        let rho = atmosphere.density(h);
        let v = y[0];
        TrajectoryPoint {
            time: t,
            altitude: h,
            velocity: v,
            gamma: y[1],
            range: y[3],
            density: rho,
            temperature: atmosphere.temperature(h),
            deceleration: 0.5 * rho * v * v / beta,
            dynamic_pressure: 0.5 * rho * v * v,
        }
    };
    let p0 = make_point(0.0, &y);
    observer(&p0);
    points.push(p0);
    while !done && t < stop.max_time {
        let t1 = t + window;
        let res = rkf45_integrate(&rhs, t, t1, &mut y, &opts, |_, _| {});
        if res.is_err() {
            break;
        }
        t = t1;
        let p = make_point(t, &y);
        observer(&p);
        points.push(p);
        if y[2] <= stop.min_altitude || y[0] <= stop.min_velocity || y[1] > 0.5 {
            done = true;
        }
    }
    points
}

/// Peak-deceleration point of a flown trajectory (`None` for an empty one).
#[must_use]
pub fn peak_deceleration(points: &[TrajectoryPoint]) -> Option<&TrajectoryPoint> {
    points
        .iter()
        .max_by(|a, b| a.deceleration.total_cmp(&b.deceleration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planets::ExponentialAtmosphere;
    use crate::us76::Us76;

    #[test]
    fn ballistic_coefficient() {
        let v = Vehicle {
            mass: 100.0,
            area: 2.0,
            cd: 1.0,
            ld: 0.0,
            nose_radius: 0.5,
        };
        assert!((v.ballistic_coefficient() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn titan_entry_decelerates() {
        let atm = ExponentialAtmosphere::titan();
        let traj = fly(
            &atm,
            &Vehicle::titan_probe(),
            EntryConditions {
                altitude: 500_000.0,
                velocity: 12_000.0,
                gamma: -30f64.to_radians(),
            },
            StopConditions::default(),
        );
        assert!(traj.len() > 50);
        let last = traj.last().unwrap();
        assert!(last.velocity < 2_000.0, "v_end = {}", last.velocity);
        assert!(last.altitude < traj[0].altitude);
        // Peak deceleration in the tens of g's for steep Titan entry.
        let peak = peak_deceleration(&traj).unwrap();
        let g_load = peak.deceleration / 9.81;
        assert!(g_load > 3.0 && g_load < 300.0, "peak g = {g_load}");
    }

    #[test]
    fn allen_eggers_peak_velocity_fraction() {
        // For steep ballistic entry into an exponential atmosphere, peak
        // deceleration occurs near V = V_E·e^{−1/2} ≈ 0.607·V_E.
        let atm = ExponentialAtmosphere::new(
            "test-exp",
            &[(0.0, 1.2, 7_200.0, 240.0)],
            287.0,
            1.4,
            6.371e6,
            9.81,
        );
        let traj = fly(
            &atm,
            &Vehicle {
                mass: 500.0,
                area: 1.0,
                cd: 1.0,
                ld: 0.0,
                nose_radius: 0.3,
            },
            EntryConditions {
                altitude: 120_000.0,
                velocity: 7_000.0,
                gamma: -30f64.to_radians(),
            },
            StopConditions::default(),
        );
        let peak = peak_deceleration(&traj).unwrap();
        let frac = peak.velocity / 7_000.0;
        assert!((frac - 0.607).abs() < 0.08, "V_peak/V_E = {frac}");
    }

    #[test]
    fn shuttle_entry_glides() {
        let traj = fly(
            &Us76,
            &Vehicle::shuttle_like(),
            EntryConditions {
                altitude: 120_000.0,
                velocity: 7_800.0,
                gamma: -1.2f64.to_radians(),
            },
            StopConditions {
                max_time: 2_500.0,
                ..StopConditions::default()
            },
        );
        // A lifting entry stays high for a long time: altitude at 300 s
        // should still be above 55 km.
        let at300 = traj.iter().find(|p| p.time >= 300.0).unwrap();
        assert!(at300.altitude > 55_000.0, "h(300 s) = {}", at300.altitude);
    }

    #[test]
    fn energy_decreases() {
        let atm = ExponentialAtmosphere::titan();
        let traj = fly(
            &atm,
            &Vehicle::titan_probe(),
            EntryConditions {
                altitude: 400_000.0,
                velocity: 12_000.0,
                gamma: -25f64.to_radians(),
            },
            StopConditions::default(),
        );
        // Specific mechanical energy must decrease monotonically (drag only
        // removes energy).
        let energy = |p: &TrajectoryPoint| 0.5 * p.velocity * p.velocity + 1.352 * p.altitude;
        let mut prev = energy(&traj[0]);
        for p in &traj[1..] {
            let e = energy(p);
            assert!(e <= prev * 1.0001, "energy grew at t={}", p.time);
            prev = e;
        }
    }
}
