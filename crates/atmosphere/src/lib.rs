//! Planetary atmospheres and entry flight mechanics.
//!
//! The paper's flight-domain figure (Fig. 1) and the Titan-probe heating
//! pulses (Fig. 2) need freestream conditions along entry trajectories:
//!
//! * [`us76`] — the U.S. Standard Atmosphere 1976 (layered, to 86 km, with an
//!   exponential thermosphere extension),
//! * [`planets`] — exponential-fit models for Titan and Jupiter entries,
//! * [`trajectory`] — planar 3-DOF entry dynamics (ballistic or lifting),
//! * [`freestream`] — Mach/Reynolds/enthalpy freestream builders.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod freestream;
pub mod planets;
pub mod trajectory;
pub mod us76;

/// A planetary atmosphere plus the planet constants needed for entry
/// mechanics. Heights are geometric altitude above the reference surface
/// \[m\].
pub trait Atmosphere: Send + Sync {
    /// Temperature \[K\] at altitude `h`.
    fn temperature(&self, h: f64) -> f64;

    /// Pressure \[Pa\] at altitude `h`.
    fn pressure(&self, h: f64) -> f64;

    /// Density \[kg/m³\] at altitude `h`.
    fn density(&self, h: f64) -> f64;

    /// Effective specific gas constant of the undisturbed atmosphere
    /// \[J/(kg·K)\].
    fn gas_constant(&self) -> f64;

    /// Frozen ratio of specific heats of the cold atmosphere.
    fn gamma(&self) -> f64;

    /// Planet mean radius \[m\].
    fn planet_radius(&self) -> f64;

    /// Surface gravitational acceleration \[m/s²\].
    fn surface_gravity(&self) -> f64;

    /// Frozen sound speed \[m/s\] at altitude `h`.
    fn sound_speed(&self, h: f64) -> f64 {
        (self.gamma() * self.gas_constant() * self.temperature(h)).sqrt()
    }

    /// Gravitational acceleration \[m/s²\] at altitude `h` (inverse-square).
    fn gravity(&self, h: f64) -> f64 {
        let r = self.planet_radius();
        self.surface_gravity() * (r / (r + h)).powi(2)
    }
}
