//! Flow-solver kernel costs: the per-step price of each equation set on a
//! fixed hemisphere problem (the measured backbone of experiment E10).

use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::IdealGas;
use aerothermo_grid::bodies::Hemisphere;
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn condition() -> (f64, f64, f64, f64) {
    let t = 230.0;
    let p = 300.0;
    let rho = p / (287.05 * t);
    let a = (1.4_f64 * 287.05 * t).sqrt();
    (rho, 8.0 * a, 0.0, p)
}

fn bc(fs: (f64, f64, f64, f64)) -> BcSet {
    BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    }
}

fn bench_euler_step(c: &mut Criterion) {
    let gas = IdealGas::air();
    let body = Hemisphere::new(0.15);
    let dist = stretch::uniform(49);
    let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| (0.3 + 0.2 * sb) * 0.15, &dist);
    let fs = condition();
    let mut solver = EulerSolver::new(&grid, &gas, bc(fs), EulerOptions::default(), fs);
    // Shake off the impulsive start so the step cost is representative.
    for _ in 0..300 {
        solver.step();
    }
    c.bench_function("euler_step_ideal_24x48", |b| {
        b.iter(|| black_box(solver.step()));
    });
}

fn bench_euler_step_equilibrium(c: &mut Criterion) {
    let table = air9_table();
    let body = Hemisphere::new(0.15);
    let dist = stretch::uniform(49);
    let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| (0.3 + 0.2 * sb) * 0.15, &dist);
    let fs = condition();
    let mut solver = EulerSolver::new(&grid, table, bc(fs), EulerOptions::default(), fs);
    for _ in 0..300 {
        solver.step();
    }
    c.bench_function("euler_step_equilibrium_24x48", |b| {
        b.iter(|| black_box(solver.step()));
    });
}

fn bench_ns_step(c: &mut Criterion) {
    let gas = IdealGas::air();
    let body = Hemisphere::new(0.15);
    let dist = stretch::tanh_one_sided(49, 3.0);
    let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| (0.3 + 0.2 * sb) * 0.15, &dist);
    let fs = condition();
    let mut solver = NsSolver::new(
        &grid,
        &gas,
        bc(fs),
        EulerOptions::default(),
        fs,
        Transport::air(),
        300.0,
    );
    for _ in 0..300 {
        solver.step();
    }
    c.bench_function("ns_step_24x48", |b| {
        b.iter(|| black_box(solver.step()));
    });
}

criterion_group!(
    benches,
    bench_euler_step,
    bench_euler_step_equilibrium,
    bench_ns_step
);
criterion_main!(benches);
