//! Thread scaling of the parallel kernels (experiment E11).
//!
//! The paper's closing challenge — "methods and data structures optimized
//! for supercomputer processing" — maps today onto multicore scaling. This
//! bench runs the NS step (cell-parallel residual assembly) and the
//! spectral-radiation sweep (wavelength-parallel) inside explicit rayon
//! pools of 1, 2, 4, and all cores.

use aerothermo_gas::IdealGas;
use aerothermo_grid::bodies::Hemisphere;
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_radiation::spectra::spectrum;
use aerothermo_radiation::{wavelength_grid, GasSample};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn thread_counts() -> Vec<usize> {
    let max = num_threads();
    let mut v = vec![1, 2, 4];
    if !v.contains(&max) {
        v.push(max);
    }
    v.retain(|&n| n <= max);
    v.dedup();
    v
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

fn bench_ns_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ns_step_threads");
    for &n in &thread_counts() {
        group.bench_function(format!("threads_{n}"), |b| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let gas = IdealGas::air();
            let body = Hemisphere::new(0.15);
            let dist = stretch::tanh_one_sided(65, 3.0);
            let grid =
                StructuredGrid::blunt_body(&body, 41, 65, &|sb| (0.3 + 0.2 * sb) * 0.15, &dist);
            let t = 230.0;
            let p = 300.0;
            let rho = p / (287.05 * t);
            let a = (1.4_f64 * 287.05 * t).sqrt();
            let fs = (rho, 8.0 * a, 0.0, p);
            let bc = BcSet {
                i_lo: Bc::SlipWall,
                i_hi: Bc::Outflow,
                j_lo: Bc::SlipWall,
                j_hi: Bc::Inflow {
                    rho: fs.0,
                    ux: fs.1,
                    ur: fs.2,
                    p: fs.3,
                },
            };
            let mut solver = NsSolver::new(
                &grid,
                &gas,
                bc,
                EulerOptions::default(),
                fs,
                Transport::air(),
                300.0,
            );
            pool.install(|| {
                for _ in 0..200 {
                    solver.step();
                }
            });
            b.iter(|| pool.install(|| black_box(solver.step())));
        });
    }
    group.finish();
}

fn bench_radiation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum_threads");
    let sample = GasSample {
        t: 12_000.0,
        t_exc: 12_000.0,
        densities: vec![
            ("N2".into(), 5e21),
            ("N2+".into(), 5e18),
            ("N".into(), 2e22),
            ("O".into(), 6e21),
        ],
    };
    let lam = wavelength_grid(0.2e-6, 1.0e-6, 4000);
    for &n in &thread_counts() {
        group.bench_function(format!("threads_{n}"), |b| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            b.iter(|| pool.install(|| black_box(spectrum(&sample, &lam, 1e-9).total_emission())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ns_scaling, bench_radiation_scaling);
criterion_main!(benches);
