//! Radiation-kernel costs: the paper calls spectral radiation "one of the
//! most costly parts of the solution process" — these benches show why and
//! measure the tangent-slab transport on a realistic layer stack.

use aerothermo_radiation::spectra::spectrum;
use aerothermo_radiation::tangent_slab::{solve_slab_samples, Layer};
use aerothermo_radiation::{wavelength_grid, GasSample};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn hot_air(t: f64) -> GasSample {
    GasSample {
        t,
        t_exc: t,
        densities: vec![
            ("N2".into(), 5e21),
            ("N2+".into(), 5e18),
            ("N".into(), 2e22),
            ("O".into(), 6e21),
        ],
    }
}

fn bench_spectrum_resolution(c: &mut Criterion) {
    let sample = hot_air(11_000.0);
    let mut group = c.benchmark_group("spectrum_resolution");
    for n in [500usize, 2000, 8000] {
        let lam = wavelength_grid(0.2e-6, 1.0e-6, n);
        group.bench_function(format!("bins_{n}"), |b| {
            b.iter(|| black_box(spectrum(&sample, &lam, 1e-9).total_emission()));
        });
    }
    group.finish();
}

fn bench_tangent_slab(c: &mut Criterion) {
    let lam = wavelength_grid(0.2e-6, 1.0e-6, 1000);
    let layers: Vec<Layer> = (0..30)
        .map(|k| Layer {
            thickness: 0.001,
            sample: hot_air(6000.0 + 200.0 * k as f64),
        })
        .collect();
    c.bench_function("tangent_slab_30layers_1000bins", |b| {
        b.iter(|| black_box(solve_slab_samples(&layers, &lam, 1e-9).total_wall_flux()));
    });
}

criterion_group!(benches, bench_spectrum_resolution, bench_tangent_slab);
criterion_main!(benches);
