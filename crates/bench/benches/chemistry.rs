//! Chemistry-kernel costs: the per-cell work a real-gas flow solver pays.
//!
//! The paper's "loosely coupled" strategy exists because fully coupled
//! chemistry is expensive; these benches quantify the hierarchy: table
//! lookup ≪ rate evaluation ≪ direct equilibrium solve.

use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::equilibrium::air9_equilibrium;
use aerothermo_gas::kinetics::park_air9;
use aerothermo_gas::relaxation::RelaxationModel;
use aerothermo_gas::GasModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_equilibrium_direct(c: &mut Criterion) {
    let gas = air9_equilibrium();
    c.bench_function("equilibrium_direct_solve_8000K", |b| {
        b.iter(|| {
            let st = gas.at_tp(black_box(8000.0), black_box(10_000.0)).unwrap();
            black_box(st.density)
        });
    });
    c.bench_function("equilibrium_direct_solve_300K", |b| {
        b.iter(|| {
            let st = gas.at_tp(black_box(300.0), black_box(101_325.0)).unwrap();
            black_box(st.density)
        });
    });
}

fn bench_table_lookup(c: &mut Criterion) {
    let table = air9_table();
    c.bench_function("equilibrium_table_lookup", |b| {
        b.iter(|| {
            let p = table.pressure(black_box(0.01), black_box(5e6));
            let t = table.temperature(black_box(0.01), black_box(5e6));
            let a = table.sound_speed(black_box(0.01), black_box(5e6));
            black_box(p + t + a)
        });
    });
}

fn bench_kinetics(c: &mut Criterion) {
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let conc = [1e-3, 2e-4, 5e-5, 4e-4, 3e-4, 1e-6, 2e-6, 5e-6, 8e-6];
    let mut wdot = [0.0; 9];
    c.bench_function("park_production_rates", |b| {
        b.iter(|| {
            set.production_rates(black_box(9000.0), black_box(7000.0), &conc, &mut wdot);
            black_box(wdot[0])
        });
    });
}

fn bench_relaxation_source(c: &mut Criterion) {
    let gas = air9_equilibrium();
    let relax = RelaxationModel::new(gas.mixture().clone());
    let y = [0.6, 0.1, 0.05, 0.15, 0.1, 0.0, 0.0, 0.0, 0.0];
    c.bench_function("millikan_white_park_source", |b| {
        b.iter(|| {
            black_box(relax.q_trans_vib(
                black_box(0.01),
                &y,
                black_box(12_000.0),
                black_box(5_000.0),
                black_box(5_000.0),
                black_box(3e22),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_equilibrium_direct,
    bench_table_lookup,
    bench_kinetics,
    bench_relaxation_source
);
criterion_main!(benches);
