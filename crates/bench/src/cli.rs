//! Shared command-line parsing for every figure binary and the sweep
//! driver.
//!
//! All 14 figure binaries plus `sweep` accept one flag vocabulary, parsed
//! here rather than per-binary: output (`--csv`), observability
//! (`--report`, `--trace`, `--audit`), run control (`--checkpoint`,
//! `--restart`, `--max-retries`, `--inject-nan`, `--halt-after`), and
//! sweep orchestration (`--plan`, `--workers`, `--out`, `--resume`,
//! `--strict`, `--timeout-secs`, `--emit-plan`). Call [`announce`] first
//! in `main`: it serves `--help` and warns on unrecognized flags so typos
//! fail loudly instead of silently running the default configuration.

/// Output mode parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Aligned text tables.
    Text,
    /// CSV.
    Csv,
}

/// Parse `--csv` from the process arguments.
#[must_use]
pub fn output_mode() -> OutputMode {
    if flag("--csv") {
        OutputMode::Csv
    } else {
        OutputMode::Text
    }
}

/// True when the bare flag is present.
fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// `--name=VALUE` payload, if present.
fn value_of(prefix: &str) -> Option<String> {
    let mut p = String::with_capacity(prefix.len() + 1);
    p.push_str(prefix);
    p.push('=');
    std::env::args().find_map(|a| a.strip_prefix(&p).map(ToString::to_string))
}

/// Flag that may appear bare (→ `default`) or as `--name=VALUE`.
fn flag_or_value(name: &str, default: &str) -> Option<String> {
    if flag(name) {
        return Some(default.to_string());
    }
    value_of(name)
}

/// Destination for the machine-readable run report, parsed from
/// `--report` (default `run-report.json`) or `--report=PATH`.
#[must_use]
pub fn report_path() -> Option<String> {
    flag_or_value("--report", "run-report.json")
}

/// Destination for the Chrome trace-event profile, parsed from
/// `--trace` (default `trace.json`) or `--trace=PATH`.
#[must_use]
pub fn trace_path() -> Option<String> {
    flag_or_value("--trace", "trace.json")
}

/// In-situ physics-audit cadence, parsed from `--audit` (default: every
/// 10 steps) or `--audit=N`. `None` means audits stay disabled.
#[must_use]
pub fn audit_cadence() -> Option<usize> {
    flag_or_value("--audit", "10").map(|n| n.parse().unwrap_or(10))
}

/// Checkpoint cadence in progress units, parsed from `--checkpoint`
/// (default: every 100 units) or `--checkpoint=N`. `None` leaves on-disk
/// checkpointing off (the in-memory rollback ring is always armed).
#[must_use]
pub fn checkpoint_every() -> Option<usize> {
    flag_or_value("--checkpoint", "100").map(|n| n.parse().unwrap_or(100))
}

/// Restart-file destination for `--checkpoint`, parsed from
/// `--checkpoint-file=PATH`; defaults to `<figure>-restart.atrc`.
#[must_use]
pub fn checkpoint_file(figure: &str) -> String {
    value_of("--checkpoint-file").unwrap_or_else(|| format!("{figure}-restart.atrc"))
}

/// Restart file to resume from, parsed from `--restart=PATH`.
#[must_use]
pub fn restart_path() -> Option<String> {
    value_of("--restart")
}

/// Rollback/retry budget, parsed from `--max-retries=K` (default 3).
#[must_use]
pub fn max_retries() -> usize {
    value_of("--max-retries")
        .and_then(|n| n.parse().ok())
        .unwrap_or(3)
}

/// Fault-injection unit, parsed from `--inject-nan=K` (`--inject-nan`
/// alone injects after unit 10): poison the state once after unit K
/// completes, exercising the rollback path end to end.
#[must_use]
pub fn inject_nan_at() -> Option<usize> {
    flag_or_value("--inject-nan", "10").map(|n| n.parse().unwrap_or(10))
}

/// Deterministic mid-run halt, parsed from `--halt-after=K` (the CI
/// kill/resume drill): the controlled run stops after unit K and the binary
/// exits with [`crate::HALT_EXIT_CODE`].
#[must_use]
pub fn halt_after() -> Option<usize> {
    value_of("--halt-after").and_then(|n| n.parse().ok())
}

/// Sweep plan file, parsed from `--plan=PATH`.
#[must_use]
pub fn plan_path() -> Option<String> {
    value_of("--plan")
}

/// Worker-pool width, parsed from `--workers=N` (default 1).
#[must_use]
pub fn workers() -> usize {
    value_of("--workers")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Sweep result-store destination, parsed from `--out=PATH` (default
/// `<figure>-results.jsonl`).
#[must_use]
pub fn sweep_store_path(figure: &str) -> String {
    value_of("--out").unwrap_or_else(|| format!("{figure}-results.jsonl"))
}

/// `--resume`: skip cases the result store already records as completed.
#[must_use]
pub fn resume() -> bool {
    flag("--resume")
}

/// `--strict`: failed or timed-out cases flip the sweep's exit code to
/// [`aerothermo_sweep::report::STRICT_EXIT_CODE`] instead of degrading to
/// records.
#[must_use]
pub fn strict() -> bool {
    flag("--strict")
}

/// Default per-case wall-clock timeout, parsed from `--timeout-secs=S`;
/// NaN (no flag) disables the timeout for cases that don't set their own.
#[must_use]
pub fn timeout_secs() -> f64 {
    value_of("--timeout-secs")
        .and_then(|n| n.parse().ok())
        .unwrap_or(f64::NAN)
}

/// `--emit-plan=PATH`: write the selected preset plan as JSON and exit
/// instead of running it.
#[must_use]
pub fn emit_plan() -> Option<String> {
    value_of("--emit-plan")
}

/// `--halt-after-cases=K`: stop the sweep after K case records (the sweep
/// analogue of `--halt-after`, for the kill/resume drill).
#[must_use]
pub fn halt_after_cases() -> Option<usize> {
    value_of("--halt-after-cases").and_then(|n| n.parse().ok())
}

/// Shard slice, parsed from `--shard=i/n` (raw string; the sweep driver
/// parses it into an `aerothermo_sweep::ShardSpec`).
#[must_use]
pub fn shard() -> Option<String> {
    value_of("--shard")
}

/// Shard assignment strategy, parsed from `--shard-strategy=NAME`
/// (`round_robin`, the default, or `cost_balanced`).
#[must_use]
pub fn shard_strategy() -> Option<String> {
    value_of("--shard-strategy")
}

/// Sweep lifecycle-event stream destination, parsed from `--events`
/// (default `<plan>-events.jsonl` by the driver) or `--events=PATH`.
#[must_use]
pub fn events_path(figure: &str) -> Option<String> {
    flag_or_value("--events", &format!("{figure}-events.jsonl"))
}

/// `--no-metrics`: disable the sampled timing-histogram registry (the
/// overhead-measurement switch; metrics are on by default).
#[must_use]
pub fn no_metrics() -> bool {
    flag("--no-metrics")
}

/// Flight-recorder black-box destination, parsed from `--blackbox=PATH`;
/// defaults to `<figure>-blackbox.json`. The file is only written when a
/// run actually dies (or `--inject-nan` fires), so the default is armed in
/// every binary at no cost to clean runs.
#[must_use]
pub fn blackbox_file(figure: &str) -> String {
    value_of("--blackbox").unwrap_or_else(|| format!("{figure}-blackbox.json"))
}

/// Every flag the shared vocabulary accepts, with its help line.
const KNOWN_FLAGS: &[(&str, &str)] = &[
    ("--csv", "emit CSV tables instead of aligned text"),
    (
        "--report",
        "write run-report JSON [=PATH, default run-report.json]",
    ),
    (
        "--trace",
        "write Chrome trace-event profile [=PATH, default trace.json]",
    ),
    (
        "--audit",
        "arm in-situ physics audits [=N steps, default 10]",
    ),
    (
        "--checkpoint",
        "write restart checkpoints [=N units, default 100]",
    ),
    ("--checkpoint-file", "=PATH restart-file destination"),
    ("--restart", "=PATH resume a halted run from a restart file"),
    ("--max-retries", "=K rollback/retry budget (default 3)"),
    (
        "--inject-nan",
        "poison the state once [=K, after unit 10] (rollback drill)",
    ),
    (
        "--halt-after",
        "=K stop after unit K with exit code 3 (kill/resume drill)",
    ),
    ("--plan", "=PATH run the sweep plan in PATH (JSON)"),
    ("--workers", "=N sweep worker threads (default 1)"),
    ("--out", "=PATH sweep result store (JSONL)"),
    ("--resume", "skip cases the result store already completed"),
    (
        "--strict",
        "failed/timed-out sweep cases exit 4 instead of 0",
    ),
    ("--timeout-secs", "=S default per-case wall-clock timeout"),
    (
        "--emit-plan",
        "=PATH write the preset plan as JSON and exit",
    ),
    (
        "--halt-after-cases",
        "=K stop the sweep after K case records",
    ),
    (
        "--shard",
        "=i/n run only shard i of an n-way deterministic plan partition",
    ),
    (
        "--shard-strategy",
        "=NAME shard assignment: round_robin (default) or cost_balanced",
    ),
    (
        "--events",
        "write sweep lifecycle events [=PATH, default <plan>-events.jsonl]",
    ),
    (
        "--no-metrics",
        "disable the sampled timing-histogram registry",
    ),
    (
        "--blackbox",
        "=PATH flight-recorder dump destination (default <figure>-blackbox.json)",
    ),
    (
        "--fig02-titan",
        "sweep preset: Titan trajectory heat-pulse plan",
    ),
    (
        "--fig10-matrix",
        "sweep preset: method-comparison matrix plan",
    ),
    ("--help", "print this flag summary and exit"),
    // perf_snapshot extras, accepted everywhere so one vocabulary covers
    // all binaries.
    (
        "--compare",
        "BASE CAND compare two perf snapshots (perf_snapshot)",
    ),
    ("--label", "=NAME perf-snapshot label (perf_snapshot)"),
    ("--tol", "=FRAC perf-comparison tolerance (perf_snapshot)"),
];

/// Serve `--help` (prints the shared flag vocabulary and exits 0) and warn
/// on `--flags` outside it. Call first in every binary's `main` so an
/// unknown or misspelled flag is loud instead of silently ignored.
pub fn announce(figure: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{figure} — shared aerothermo-bench flag set:");
        for (name, help) in KNOWN_FLAGS {
            println!("  {name:<20} {help}");
        }
        std::process::exit(0);
    }
    for a in &args {
        if !a.starts_with("--") {
            continue; // positional (e.g. --compare's file operands)
        }
        let stem = a.split('=').next().unwrap_or(a);
        if !KNOWN_FLAGS.iter().any(|(name, _)| *name == stem) {
            eprintln!("# warning: unrecognized flag '{a}' ignored (see --help)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_flags() {
        // The test harness's own argv has no figure flags.
        assert_eq!(output_mode(), OutputMode::Text);
        assert!(report_path().is_none());
        assert!(trace_path().is_none());
        assert!(audit_cadence().is_none());
        assert!(checkpoint_every().is_none());
        assert!(restart_path().is_none());
        assert_eq!(max_retries(), 3);
        assert!(inject_nan_at().is_none());
        assert!(halt_after().is_none());
        assert!(plan_path().is_none());
        assert_eq!(workers(), 1);
        assert!(!resume());
        assert!(!strict());
        assert!(timeout_secs().is_nan());
        assert!(emit_plan().is_none());
        assert!(halt_after_cases().is_none());
        assert!(shard().is_none());
        assert!(shard_strategy().is_none());
        assert_eq!(checkpoint_file("figX"), "figX-restart.atrc");
        assert_eq!(sweep_store_path("figX"), "figX-results.jsonl");
        assert!(events_path("figX").is_none());
        assert!(!no_metrics());
        assert_eq!(blackbox_file("figX"), "figX-blackbox.json");
    }

    #[test]
    fn every_known_flag_has_a_stem() {
        for (name, help) in KNOWN_FLAGS {
            assert!(name.starts_with("--"), "{name}");
            assert!(!name.contains('='), "{name} should list the stem only");
            assert!(!help.is_empty());
        }
    }
}
