//! Fig. 6 — Windward-centerline heating of the Shuttle Orbiter at the
//! STS-3 flight condition (after Prabhu & Tannehill, the paper's Ref. 20).
//!
//! Condition: V∞ = 6.74 km/s, h = 71.3 km, α = 40°. The windward centerline
//! is computed on the equivalent axisymmetric body (axisymmetric analog —
//! the paper's own Ref. 18 technique) with the E+BL method: stagnation
//! anchor from Fay-Riddell on real gas properties, distribution downstream
//! from Lees local similarity with modified-Newtonian edge conditions.
//! (The paper's Ref. 20 used a PNS code for the same quantity; our PNS
//! solver is exercised against this problem class in the `equation_set_cost`
//! bench; see EXPERIMENTS.md E5.)
//!
//! Two gas models, exactly as the figure: EQUILIBRIUM AIR and the
//! engineering IDEAL GAS (γ = 1.2), against a qualitative STS-3 flight
//! reference series (synthetic — digitized-class values, labeled as such).
//!
//! Shape checks: the two models agree within ~25% along the body (the
//! figure's central message — a tuned γ mimics equilibrium air on windward
//! heating); both decay monotonically; the reference lies between/near the
//! predictions with the flight points below the fully-catalytic prediction
//! over the tile region (the catalysis story of the paper's Ref. 17).

use aerothermo_bench::{
    emit, exit_if_halted, orbiter_equivalent_body, output_mode, run_options, sts3_fig6_condition,
    Report,
};
use aerothermo_core::catalysis::{heating_ratio, WallCatalysis};
use aerothermo_core::heating::convective_fay_riddell_equilibrium;
use aerothermo_core::stagnation::stagnation_state;
use aerothermo_core::tables::Table;
use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::transport::sutherland_air;
use aerothermo_gas::{air9_equilibrium, IdealGas};
use aerothermo_grid::bodies::Body;
use aerothermo_solvers::blayer::{
    fay_riddell, lees_distribution, newtonian_velocity_gradient, FayRiddellInputs,
};
use aerothermo_solvers::runctl::run_controlled;
use aerothermo_solvers::vsl::{VslMarcher, VslProblem};

const ORBITER_LENGTH: f64 = 32.8;

fn main() {
    aerothermo_bench::cli::announce("fig06_windward_heating");
    let mode = output_mode();
    let mut report = Report::new("fig06_windward_heating");
    let (rho_inf, v_inf, p_inf, t_inf) = sts3_fig6_condition();
    eprintln!(
        "# STS-3 point: rho = {rho_inf:.3e} kg/m³, V = {v_inf} m/s, p = {p_inf:.3} Pa, T = {t_inf:.1} K"
    );
    let t_wall = 1100.0; // radiative-equilibrium tile temperature class
    let body = orbiter_equivalent_body(40.0);

    // --- Stagnation anchors -------------------------------------------------
    let gas_eq = air9_equilibrium();
    let table_eq = air9_table();
    let q0_eq = convective_fay_riddell_equilibrium(
        &gas_eq, table_eq, rho_inf, p_inf, v_inf, body.rn, t_wall, 1.4,
    )
    .expect("equilibrium stagnation anchor");

    let ideal = IdealGas::effective_gamma(1.2);
    let st_id = stagnation_state(&ideal, rho_inf, p_inf, v_inf).expect("ideal stagnation");
    let q0_id = {
        // Sutherland extrapolated to the model's stagnation temperature —
        // the era's ideal-gas codes did exactly this.
        let mu_e = sutherland_air(st_id.t_stag);
        let rho_w = st_id.p_stag / (287.05 * t_wall);
        fay_riddell(&FayRiddellInputs {
            rho_e: st_id.rho_stag,
            mu_e,
            rho_w,
            mu_w: sutherland_air(t_wall),
            due_dx: newtonian_velocity_gradient(body.rn, st_id.p_stag, p_inf, st_id.rho_stag),
            h0e: st_id.h_stag,
            hw: ideal.cp() * t_wall,
            pr: 0.71,
            lewis: 1.0,
            h_d_frac: 0.0,
        })
    };

    // --- Distributions -------------------------------------------------------
    let st_eq = stagnation_state(table_eq, rho_inf, p_inf, v_inf).expect("eq stagnation");
    let gamma_eq_eff = 1.15; // expansion exponent of equilibrium air at these conditions
    let dist_eq = lees_distribution(&body, gamma_eq_eff, st_eq.p_stag, p_inf, 600);
    let dist_id = lees_distribution(&body, 1.2, st_id.p_stag, p_inf, 600);

    // Independent cross-check: the windward-forebody VSL march on the same
    // equivalent body (the paper's VSL-code route to the same quantity),
    // driven through the run controller so `--checkpoint` / `--restart` /
    // `--inject-nan` / `--halt-after` all apply to this figure.
    const VSL_STATIONS: usize = 24;
    const VSL_RELAX_NOMINAL: f64 = 0.7;
    let vsl_problem = VslProblem {
        u_inf: v_inf,
        rho_inf,
        t_inf,
        nose_radius: body.rn,
        t_wall,
        n_points: 40,
        radiating: false,
    };
    let vsl_sol = match VslMarcher::new(&gas_eq, &vsl_problem, &body, VSL_STATIONS) {
        Ok(mut marcher) => {
            let opts = run_options("fig06_windward_heating", VSL_STATIONS, 0.0, 0);
            let outcome = run_controlled(&mut marcher, &opts)
                .expect("VSL march unrecoverable (budget exhausted or hard error)");
            report.record_run_outcome("vsl_march", &outcome, VSL_RELAX_NOMINAL);
            report = exit_if_halted(&outcome, report);
            match marcher.finish() {
                Ok(sol) => sol,
                Err(e) => {
                    eprintln!("# VSL march produced no usable stations ({e}); cross-check skipped");
                    Default::default()
                }
            }
        }
        Err(e) => {
            eprintln!("# VSL march preamble failed ({e}); cross-check skipped");
            Default::default()
        }
    };
    report.absorb_telemetry("vsl_march", &vsl_sol.telemetry);
    let vsl_stations = vsl_sol.stations;
    let vsl_q_at = |x_over_l: f64| -> f64 {
        let target = x_over_l * ORBITER_LENGTH;
        vsl_stations
            .iter()
            .min_by(|a, b| {
                let (xa, _) = body.point(a.s);
                let (xb, _) = body.point(b.s);
                (xa - target).abs().total_cmp(&(xb - target).abs())
            })
            .map_or(f64::NAN, |st| st.q_conv)
    };

    // Synthetic STS-3 reference (labeled synthetic; see EXPERIMENTS.md E5):
    // flight-derived heating on the partially catalytic tiles sits below the
    // fully catalytic prediction by the catalysis factor.
    let cat = heating_ratio(WallCatalysis::Partial(0.01), 0.30, 1.4, 0.35);

    let mut table = Table::new(&[
        "x_over_L",
        "q_eq_air_W_cm2",
        "q_ideal_g1.2_W_cm2",
        "q_vsl_march_W_cm2",
        "sts3_ref_W_cm2",
    ]);
    let mut rows = Vec::new();
    for (k, (s, f_eq)) in dist_eq.iter().enumerate() {
        let (x_b, _) = body.point(*s);
        let x_over_l = x_b / ORBITER_LENGTH;
        if x_over_l > 0.62 {
            break;
        }
        let q_eq = q0_eq * f_eq;
        let q_id = q0_id * dist_id[k].1;
        let q_ref = q_eq * cat * (1.0 + 0.06 * (8.0 * x_over_l).sin());
        rows.push((x_over_l, q_eq, q_id, q_ref));
    }
    let stride = (rows.len() / 24).max(1);
    for (x, qe, qi, qr) in rows.iter().step_by(stride) {
        let qv = vsl_q_at(*x);
        table.row(&[
            format!("{x:.3}"),
            format!("{:.2}", qe / 1e4),
            format!("{:.2}", qi / 1e4),
            if qv.is_finite() {
                format!("{:.2}", qv / 1e4)
            } else {
                "-".into()
            },
            format!("{:.2}", qr / 1e4),
        ]);
    }
    emit(
        "Fig. 6: windward centerline heating (STS-3 condition)",
        &table,
        mode,
    );

    println!(
        "stagnation anchors: equilibrium air {:.1} W/cm², ideal γ=1.2 {:.1} W/cm² (ratio {:.2})",
        q0_eq / 1e4,
        q0_id / 1e4,
        q0_eq / q0_id
    );
    println!("catalysis factor applied to flight reference: {cat:.2}");

    // --- Shape checks --------------------------------------------------------
    report.metric("q0_equilibrium_w_m2", q0_eq);
    report.metric("q0_ideal_g12_w_m2", q0_id);
    report.metric("catalysis_factor", cat);
    assert!(
        report.check(
            "gamma12_mimics_equilibrium",
            (q0_eq / q0_id - 1.0).abs() < 0.5,
            format!("stagnation ratio = {:.2}", q0_eq / q0_id),
        ),
        "γ=1.2 should mimic equilibrium air at stagnation: ratio {}",
        q0_eq / q0_id
    );
    let mut close = 0usize;
    for (_, qe, qi, _) in &rows {
        if (qe / qi - 1.0).abs() < 0.35 {
            close += 1;
        }
    }
    assert!(
        report.check(
            "curves_track_along_body",
            close as f64 > 0.8 * rows.len() as f64,
            format!("{close}/{} stations within 35%", rows.len()),
        ),
        "equilibrium and γ=1.2 curves must track each other ({close}/{})",
        rows.len()
    );
    // Monotone decay beyond the nose region.
    let q_nose = rows[1].1;
    let q_tail = rows.last().unwrap().1;
    assert!(
        report.check(
            "heating_decays_along_body",
            q_tail < 0.6 * q_nose,
            format!("q_tail/q_nose = {:.2}", q_tail / q_nose),
        ),
        "heating must decay along the body"
    );
    // Stagnation heating in the STS class (tens of W/cm²).
    assert!(
        report.check(
            "stagnation_heating_sts_class",
            q0_eq > 1e5 && q0_eq < 1.5e6,
            format!("q0 = {q0_eq:.3e} W/m²"),
        ),
        "q0 = {q0_eq:.3e} W/m²"
    );
    // VSL march and E+BL agree within a factor ~2 over the mid-body where
    // both are valid.
    if !vsl_stations.is_empty() {
        let mut agree = 0usize;
        let mut total = 0usize;
        for (x, qe, _, _) in rows.iter().filter(|r| r.0 > 0.05 && r.0 < 0.5) {
            let qv = vsl_q_at(*x);
            if qv.is_finite() {
                total += 1;
                if (qv / qe) > 0.4 && (qv / qe) < 2.5 {
                    agree += 1;
                }
            }
        }
        assert!(
            report.check(
                "vsl_march_crosscheck",
                total == 0 || agree * 10 >= total * 7,
                format!("{agree}/{total} mid-body stations within 0.4-2.5x"),
            ),
            "VSL march vs E+BL disagreement: {agree}/{total}"
        );
        println!(
            "VSL-march cross-check: {agree}/{total} mid-body stations within 0.4–2.5× of E+BL"
        );
    }
    assert!(
        report.finish(),
        "hard audit failure or failed check (see --report JSON)"
    );
    println!("PASS: windward-heating comparison reproduced (paper Fig. 6)");
}
