//! Fig. 8 — Computed vs measured emission spectra for nonequilibrium air
//! (after Park, the paper's Refs. 22–23: the NEQAIR validation).
//!
//! The Fig. 7 flowfield (10 km/s shock into 0.1 torr air) supplies the
//! radiating-zone conditions; the spectral model emits through the slab and
//! the emergent radiance over 0.2–1.0 μm is compared against a synthetic
//! "experiment": the same physics with perturbed band strengths (±20%),
//! instrument broadening, and measurement noise — the structure of the
//! paper's computed-vs-measured overlay (see EXPERIMENTS.md E7 for the
//! substitution note).
//!
//! Shape checks: the dominant feature is the N₂⁺ first-negative system near
//! 0.39 μm; the N₂ second positive populates the near UV and the N/O lines
//! the near IR; computed and "measured" agree in the band-integrated sense.

use aerothermo_bench::{emit, output_mode, shock_tube_fig7_condition, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::equilibrium::air9_equilibrium;
use aerothermo_gas::kinetics::park_air9;
use aerothermo_gas::relaxation::RelaxationModel;
use aerothermo_gas::species as spdb;
use aerothermo_radiation::spectra::{saha_ion_density, spectrum};
use aerothermo_radiation::tangent_slab::{solve_slab, Layer};
use aerothermo_radiation::{wavelength_grid, GasSample};
use aerothermo_solvers::shock1d::{solve, RelaxationProblem};

fn main() {
    aerothermo_bench::cli::announce("fig08_spectra");
    let mode = output_mode();
    let mut report = Report::new("fig08_spectra");
    let (u1, t1, p1) = shock_tube_fig7_condition();
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let mut y1 = vec![0.0; gas.mixture().len()];
    y1[0] = 0.767;
    y1[1] = 0.233;
    let sol = solve(
        &set,
        &relax,
        &RelaxationProblem {
            u1,
            t1,
            p1,
            y1,
            x_end: 0.03,
        },
    )
    .expect("relaxation march");

    // Build slab layers from the relaxing flowfield. The 9-species model
    // lacks N2+; estimate it by Saha balance at the local T_v (the
    // electronically controlling temperature) — the standard QSS patch.
    let names: Vec<&str> = gas.mixture().species().iter().map(|s| s.name).collect();
    let n2 = spdb::n2();
    let n2p = spdb::n2_ion();
    let mut layers = Vec::new();
    let mut prev_x = 0.0;
    for p in sol.points.iter().filter(|p| p.x > 1e-5) {
        let dx = p.x - prev_x;
        if dx < 2e-4 && !layers.is_empty() {
            continue;
        }
        prev_x = p.x;
        let mut dens: Vec<(String, f64)> = names
            .iter()
            .enumerate()
            .map(|(s, n)| ((*n).to_string(), p.x_mole[s] * p.n_total))
            .collect();
        let n_n2 = p.x_mole[0] * p.n_total;
        let n_e = p.x_mole[8] * p.n_total;
        let n_n2p = saha_ion_density(&n2, &n2p, n_n2, n_e.max(1e10), p.tv.min(p.t));
        dens.push(("N2+".to_string(), n_n2p.min(0.01 * n_n2)));
        layers.push(Layer {
            thickness: dx,
            sample: GasSample {
                t: p.t,
                t_exc: p.tv,
                densities: dens,
            },
        });
    }
    println!("slab layers: {}", layers.len());

    let lam = wavelength_grid(0.2e-6, 1.0e-6, 1600);
    let spectra: Vec<_> = layers
        .iter()
        .map(|l| spectrum(&l.sample, &lam, 1.5e-9))
        .collect();
    let computed = solve_slab(&layers, &spectra);

    // Synthetic "experiment": perturb each layer's emitters via a band-dependent
    // factor, broaden to instrument resolution, add multiplicative noise.
    let measured_raw = {
        let spectra_m: Vec<_> = layers
            .iter()
            .map(|l| {
                let mut s = spectrum(&l.sample, &lam, 2.5e-9);
                for (i, &w) in lam.iter().enumerate() {
                    // Slowly varying ±20% "calibration" perturbation.
                    let f = 1.0 + 0.2 * (w * 2.2e7).sin();
                    s.emission[i] *= f;
                    s.absorption[i] *= f;
                }
                s
            })
            .collect();
        solve_slab(&layers, &spectra_m)
    };
    // Instrument broadening: boxcar over ~2 nm plus deterministic noise.
    let half = 2;
    let measured: Vec<f64> = (0..lam.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(lam.len());
            let avg: f64 = measured_raw.radiance[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            avg * (1.0 + 0.05 * ((i as f64) * 0.83).sin())
        })
        .collect();

    let mut table = Table::new(&["lambda_um", "I_computed", "I_measured"]);
    for i in (0..lam.len()).step_by(40) {
        table.row(&[
            format!("{:.3}", lam[i] * 1e6),
            format!("{:.3e}", computed.radiance[i]),
            format!("{:.3e}", measured[i]),
        ]);
    }
    emit(
        "Fig. 8: emergent radiance, computed vs (synthetic) measured [W/(m^2 sr m)]",
        &table,
        mode,
    );

    // --- Shape checks -------------------------------------------------------
    let idx = |target: f64| lam.iter().position(|&l| l >= target).unwrap();
    let peak_i = computed
        .radiance
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    let peak_lam = lam[peak_i] * 1e9;
    println!("computed peak at {peak_lam:.1} nm");
    report.metric("peak_wavelength_nm", peak_lam);
    assert!(
        report.check(
            "violet_system_dominates",
            (300.0..430.0).contains(&peak_lam),
            format!("peak at {peak_lam:.1} nm"),
        ),
        "violet system must dominate: peak at {peak_lam} nm"
    );
    // N2+ 1- (0,0) head visible: local contrast around 391 nm.
    let i391 = idx(391.0e-9);
    let i450 = idx(450.0e-9);
    assert!(
        report.check(
            "n2plus_391nm_head",
            computed.radiance[i391] > 3.0 * computed.radiance[i450],
            format!(
                "I(391) = {:.3e} vs I(450) = {:.3e}",
                computed.radiance[i391], computed.radiance[i450]
            ),
        ),
        "391 nm head contrast: {:.3e} vs {:.3e}",
        computed.radiance[i391],
        computed.radiance[i450]
    );
    // NIR atomic lines present.
    let i777 = idx(777.4e-9);
    let i760 = idx(760.0e-9);
    assert!(
        report.check(
            "o_777_line",
            computed.radiance[i777] > 2.0 * computed.radiance[i760],
            format!(
                "I(777) = {:.3e} vs I(760) = {:.3e}",
                computed.radiance[i777], computed.radiance[i760]
            ),
        ),
        "O 777 line must stand out"
    );
    // Band-integrated agreement with the synthetic measurement within 30%.
    let total_c: f64 = computed.radiance.iter().sum();
    let total_m: f64 = measured.iter().sum();
    let ratio = total_c / total_m;
    println!("band-integrated computed/measured = {ratio:.3}");
    report.metric("band_integrated_ratio", ratio);
    assert!(
        report.check(
            "band_integrated_agreement",
            (0.7..1.4).contains(&ratio),
            format!("computed/measured = {ratio:.3}"),
        ),
        "integrated spectra must agree: {ratio}"
    );
    report.finish();
    println!("PASS: Fig. 8 spectral comparison reproduced");
}
