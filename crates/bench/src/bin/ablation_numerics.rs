//! Numerics ablation study — the design choices DESIGN.md calls out,
//! measured: slope limiter, reconstruction order, and grid resolution are
//! graded against the *exact* Riemann solution (Sod problem) and against
//! each other on the captured-bow-shock standoff.
//!
//! Outputs:
//! * L1 density error vs the exact Sod solution for first-order and each
//!   TVD limiter, at two resolutions (shows the order/limiter hierarchy and
//!   the convergence rate),
//! * bow-shock standoff sensitivity to the limiter (shows the steady-state
//!   answer is limiter-robust — the property that lets production codes
//!   pick the dissipative-but-safe choice).

use aerothermo_bench::{emit, output_mode, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::IdealGas;
use aerothermo_grid::bodies::Hemisphere;
use aerothermo_grid::{stretch, Geometry, StructuredGrid};
use aerothermo_numerics::limiters::Limiter;
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::riemann::sod;

fn sod_l1_error(limiter: Limiter, ncells: usize) -> f64 {
    let gas = IdealGas {
        gamma: 1.4,
        r: 287.0,
    };
    let grid = StructuredGrid::rectangle(ncells + 1, 3, 1.0, 0.02, Geometry::Planar);
    let bc = BcSet {
        i_lo: Bc::Outflow,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::SlipWall,
    };
    let opts = EulerOptions {
        startup_steps: 0,
        cfl: 0.4,
        limiter,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(&grid, &gas, bc, opts, (1.0, 0.0, 0.0, 1.0));
    for i in ncells / 2..ncells {
        for j in 0..2 {
            let e = 0.1 / (0.4 * 0.125);
            let c = solver.u.vector_mut(i, j);
            c[0] = 0.125;
            c[1] = 0.0;
            c[2] = 0.0;
            c[3] = 0.125 * e;
        }
    }
    let t_end = 0.2;
    // Forward-Euler time marching with MUSCL is stable only at small CFL;
    // ~0.1 covers the sharpest limiter (superbee).
    let dt = 0.06 / ncells as f64;
    let nsteps = (t_end / dt).round() as usize;
    for _ in 0..nsteps {
        solver.step_global_dt(t_end / nsteps as f64);
    }
    // L1 density error against the exact solution about the diaphragm.
    let exact = sod();
    let dx = 1.0 / ncells as f64;
    let mut err = 0.0;
    for i in 0..ncells {
        let x = (i as f64 + 0.5) * dx - 0.5;
        let xi = x / t_end;
        let rho_ex = exact.sample(xi).rho;
        let rho_num = solver.primitive(i, 1).rho;
        err += (rho_num - rho_ex).abs() * dx;
    }
    err
}

fn bow_standoff(limiter: Limiter) -> f64 {
    let gas = IdealGas::air();
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
    let rn = 0.2;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(45);
    let grid = StructuredGrid::blunt_body(&body, 17, 45, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 300,
        limiter,
        ..EulerOptions::default()
    };
    let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
    solver.run(3000, 1e-3).expect("stable run");
    solver.standoff(rho_inf).unwrap_or(f64::NAN)
}

fn main() {
    aerothermo_bench::cli::announce("ablation_numerics");
    let mode = output_mode();
    let mut report = Report::new("ablation_numerics");

    let limiters = [
        ("first-order", Limiter::FirstOrder),
        ("minmod", Limiter::Minmod),
        ("van Leer", Limiter::VanLeer),
        ("superbee", Limiter::Superbee),
    ];

    // --- Sod accuracy --------------------------------------------------------
    let mut sod_table = Table::new(&["scheme", "L1_err_200", "L1_err_400", "obs_order"]);
    let mut errs = Vec::new();
    for (name, lim) in limiters {
        let e200 = sod_l1_error(lim, 200);
        let e400 = sod_l1_error(lim, 400);
        let order = (e200 / e400).log2();
        errs.push((name, e200, e400, order));
        sod_table.row(&[
            name.to_string(),
            format!("{e200:.4e}"),
            format!("{e400:.4e}"),
            format!("{order:.2}"),
        ]);
    }
    emit(
        "Ablation: Sod-tube L1 density error vs exact solution",
        &sod_table,
        mode,
    );

    // --- Bow-shock standoff sensitivity --------------------------------------
    let mut shock_table = Table::new(&["scheme", "standoff_mm"]);
    let mut standoffs = Vec::new();
    for (name, lim) in limiters {
        let d = bow_standoff(lim);
        standoffs.push((name, d));
        shock_table.row(&[name.to_string(), format!("{:.2}", d * 1000.0)]);
    }
    emit(
        "Ablation: M8 hemisphere standoff vs limiter",
        &shock_table,
        mode,
    );

    // --- Checks ----------------------------------------------------------------
    let e_first = errs[0].1;
    let e_minmod = errs[1].1;
    let e_vl = errs[2].1;
    report.metric("sod_l1_first_order_200", e_first);
    report.metric("sod_l1_minmod_200", e_minmod);
    report.metric("sod_l1_van_leer_200", e_vl);
    assert!(
        report.check(
            "second_order_beats_first",
            e_minmod < 0.8 * e_first,
            format!("minmod {e_minmod:.3e} vs first-order {e_first:.3e}"),
        ),
        "second order must beat first: {e_minmod:.3e} vs {e_first:.3e}"
    );
    assert!(
        report.check(
            "van_leer_at_least_minmod",
            e_vl <= e_minmod * 1.05,
            format!("van Leer {e_vl:.3e} vs minmod {e_minmod:.3e}"),
        ),
        "van Leer should be at least as accurate as minmod"
    );
    // Convergence: every scheme improves under refinement.
    for (name, e200, e400, _) in &errs {
        assert!(
            report.check(
                &format!("grid_convergence_{}", name.replace([' ', '-'], "_")),
                e400 < e200,
                format!("{e200:.3e} -> {e400:.3e}"),
            ),
            "{name} did not converge: {e200:.3e} -> {e400:.3e}"
        );
    }
    // Standoff robust to the limiter (±15%).
    let d_ref = standoffs[1].1;
    for (name, d) in &standoffs[1..] {
        assert!(
            report.check(
                &format!("standoff_robust_{}", name.replace(' ', "_")),
                (d - d_ref).abs() < 0.15 * d_ref,
                format!("{name} standoff {d:.4} vs minmod {d_ref:.4}"),
            ),
            "{name} standoff {d:.4} vs minmod {d_ref:.4}"
        );
    }
    report.finish();
    println!("PASS: order/limiter hierarchy and steady-state robustness measured");
}
