//! Deterministic performance snapshot of the workspace's hot kernels.
//!
//! Runs a fixed suite of the kernels the figure binaries spend their time
//! in — tridiagonal and block-tridiagonal sweeps, damped-Newton solves,
//! stiff chemistry integration, direct equilibrium-composition solves,
//! spectrum integration, Euler blunt-body steps, and the distributed-sweep
//! bookkeeping (plan partitioning, shard-store federation) — under the
//! span profiler, and writes the merged span statistics plus kernel
//! counter totals as `BENCH_<label>.json`.
//!
//! ```text
//! perf_snapshot --label=baseline            # writes BENCH_baseline.json
//! perf_snapshot --label=pr --out=new.json   # custom path
//! perf_snapshot --compare BENCH_baseline.json new.json --tol=0.25
//! ```
//!
//! Cross-machine comparability: every snapshot also times a fixed
//! floating-point calibration loop (the `calibration` span); the
//! comparator divides each span's fastest occurrence by its snapshot's
//! fastest calibration loop, so a uniformly faster machine does not
//! masquerade as a perf improvement, nor a slower one as a regression
//! (minima, not means — preemption noise only ever inflates a timing).
//! The comparison exits nonzero when any kernel's normalized minimum
//! regresses beyond `--tol` (default 0.25), which is how CI gates on
//! `BENCH_baseline.json`.

use aerothermo_atmosphere::trajectory::{EntryConditions, StopConditions, Vehicle};
use aerothermo_atmosphere::us76::Us76;
use aerothermo_bench::json::{self, Value};
use aerothermo_core::correlations::HeatingModel;
use aerothermo_core::surrogate::{
    fly_heating_history, ExactResponse, RadiativeModel, SurrogateBuilder, SurrogateQuery,
};
use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::equilibrium::air9_equilibrium;
use aerothermo_grid::bodies::Hemisphere;
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_numerics::metrics;
use aerothermo_numerics::newton::{newton_solve, NewtonOptions};
use aerothermo_numerics::ode::{stiff_integrate, AdaptiveOptions};
use aerothermo_numerics::telemetry::CounterSnapshot;
use aerothermo_numerics::trace;
use aerothermo_numerics::tridiag::{solve_block_tridiag, solve_tridiag};
use aerothermo_radiation::spectra::spectrum;
use aerothermo_radiation::GasSample;
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use aerothermo_sweep::shard::{federate, partition};
use aerothermo_sweep::spec::{FlowSpec, GasSpec, LevelSpec};
use aerothermo_sweep::store::{CaseOutcome, CaseStatus, JsonlWriter};
use aerothermo_sweep::{CaseSpec, ShardStrategy, SweepPlan};

fn arg_value(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn main() {
    aerothermo_bench::cli::announce("perf_snapshot");
    let args: Vec<String> = std::env::args().collect();
    if let Some(k) = args.iter().position(|a| a == "--compare") {
        let (Some(base), Some(cand)) = (args.get(k + 1), args.get(k + 2)) else {
            eprintln!("usage: perf_snapshot --compare BASELINE.json CANDIDATE.json [--tol=0.25]");
            std::process::exit(2);
        };
        let tol = arg_value("--tol=")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.25);
        std::process::exit(compare(base, cand, tol));
    }

    let label = arg_value("--label=").unwrap_or_else(|| "snapshot".to_string());
    let out = arg_value("--out=").unwrap_or_else(|| format!("BENCH_{label}.json"));
    let counters0 = CounterSnapshot::take();
    trace::enable();
    trace::reset();
    if aerothermo_bench::cli::no_metrics() {
        metrics::disable();
    }
    metrics::reset_all();

    run_suite();

    let stats = trace::stats();
    let counters = CounterSnapshot::take().delta_since(&counters0);
    // The calibration reference is the *fastest* loop occurrence: minima
    // are far more stable than means under scheduler noise, and the
    // comparator uses the same estimator for every span.
    let calib = stats
        .iter()
        .find(|s| s.label == "calibration")
        .map_or(0, |s| s.min_ns);

    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"label\": \"{label}\",\n"));
    s.push_str(&format!(
        "  \"unix_time_secs\": {},\n",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs())
    ));
    let features = aerothermo_numerics::simd::active_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!(
        "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"num_cpus\": {}, \
         \"rayon_threads\": {}, \"features\": [{features}]}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        rayon::current_num_threads()
    ));
    s.push_str(&format!("  \"calibration_ns\": {calib},\n"));
    s.push_str("  \"spans\": {");
    for (k, st) in stats.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"mean_ns\": {}}}",
            st.label,
            st.count,
            st.total_ns,
            st.min_ns,
            st.max_ns,
            st.mean_ns()
        ));
    }
    s.push_str("\n  },\n");
    // Sampled timing histograms from the metrics registry. Schema-additive:
    // the ratchet comparator reads only calibration_ns/spans, so these
    // quantiles inform without gating.
    let msnap = metrics::snapshot();
    s.push_str("  \"metrics_timings\": {");
    let mut first = true;
    for t in &msnap.timings {
        if t.calls == 0 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n    \"{}\": {{\"calls\": {}, \"samples\": {}, \"p50_ns\": {}, \
             \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}",
            t.timer.name(),
            t.calls,
            t.hist.count,
            t.hist.quantile_ns(0.50),
            t.hist.quantile_ns(0.90),
            t.hist.quantile_ns(0.95),
            t.hist.quantile_ns(0.99),
            t.hist.mean_ns(),
            t.hist.max_ns
        ));
    }
    s.push_str("\n  },\n");
    s.push_str("  \"counters\": {");
    for (k, (name, v)) in counters.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{name}\": {v}"));
    }
    s.push_str("\n  }\n}\n");

    std::fs::write(&out, s).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("perf snapshot '{label}' written to {out}");
    for st in &stats {
        println!(
            "  {:<24} count {:>8}  mean {:>10} ns  total {:>12} ns",
            st.label,
            st.count,
            st.mean_ns(),
            st.total_ns
        );
    }
}

/// The fixed kernel suite. Workloads are sized so the whole suite runs in
/// a few seconds yet every span accumulates enough occurrences for a
/// stable mean.
fn run_suite() {
    // Calibration: a fixed serial FP workload timed like any other span.
    for _ in 0..8 {
        let _sp = trace::span("calibration");
        let mut acc = 0.0_f64;
        for i in 1..2_000_000u64 {
            #[allow(clippy::cast_precision_loss)]
            let x = i as f64;
            acc += (x.sqrt() + 1.0 / x).sin();
        }
        assert!(acc.is_finite());
    }

    // Scalar tridiagonal sweeps (Thomas algorithm), n = 2000.
    {
        let n = 2000;
        let a = vec![-1.0; n];
        let b = vec![2.5; n];
        let c = vec![-1.0; n];
        for _ in 0..200 {
            let mut d = vec![1.0; n];
            solve_tridiag(&a, &b, &c, &mut d).expect("tridiag");
        }
    }

    // Block-tridiagonal sweeps, 200 blocks of 4×4.
    {
        let (n, m) = (200, 4);
        let mut a = vec![0.0; n * m * m];
        let mut b = vec![0.0; n * m * m];
        let mut c = vec![0.0; n * m * m];
        for i in 0..n {
            for k in 0..m {
                b[i * m * m + k * m + k] = 4.0;
                a[i * m * m + k * m + k] = -1.0;
                c[i * m * m + k * m + k] = -1.0;
            }
        }
        for _ in 0..100 {
            let mut d = vec![1.0; n * m];
            solve_block_tridiag(&a, &b, &c, &mut d, n, m).expect("block tridiag");
        }
    }

    // Damped-Newton solves of a 4-dimensional nonlinear system.
    {
        let opts = NewtonOptions::default();
        for _ in 0..400 {
            let mut x = [0.5, 0.5, 0.5, 0.5];
            newton_solve(
                |x, f| {
                    // Mildly coupled contraction: a well-conditioned system
                    // Newton polishes in a handful of iterations.
                    f[0] = x[0] - 0.5 * x[1].cos();
                    f[1] = x[1] - 0.4 * x[2].cos();
                    f[2] = x[2] - 0.3 * x[3].cos();
                    f[3] = x[3] - 0.2 * x[0].cos();
                },
                &mut x,
                &opts,
            )
            .expect("newton");
        }
    }

    // Stiff integration: a two-rate linear relaxation system (the shape of
    // the chemistry operator-split substep).
    {
        let sys = |_x: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = -1e4 * (y[0] - y[1]);
            dy[1] = -1e2 * (y[1] - y[2]);
            dy[2] = -y[2];
        };
        let opts = AdaptiveOptions {
            rtol: 1e-6,
            atol: 1e-10,
            h0: 1e-6,
            ..AdaptiveOptions::default()
        };
        for _ in 0..50 {
            let mut y = [1.0, 0.5, 0.2];
            stiff_integrate(&sys, 0.0, 0.1, &mut y, &opts, |_, _| {}).expect("stiff");
        }
    }

    // Direct equilibrium-composition solves over a (T, p) sweep.
    {
        let gas = air9_equilibrium();
        for kt in 0..24 {
            for kp in 0..6 {
                let t = 1500.0 + 450.0 * f64::from(kt);
                let p = 100.0 * 10.0_f64.powf(0.5 * f64::from(kp));
                let st = gas.at_tp(t, p).expect("equilibrium state");
                assert!(st.density > 0.0);
            }
        }
    }

    // Micro-batched equilibrium solves: the same composition kernel driven
    // through `at_trho_batch` (shared Newton scratch, 4-lane chunks) over
    // density-major (T, rho) sweeps — the table-build access pattern.
    {
        let gas = air9_equilibrium();
        for kr in 0..6 {
            let rho = 1e-4 * 10.0_f64.powf(0.5 * f64::from(kr));
            let states: Vec<(f64, f64)> = (0..24)
                .map(|kt| (1500.0 + 450.0 * f64::from(kt), rho))
                .collect();
            for st in gas.at_trho_batch(&states) {
                assert!(st.expect("equilibrium batch state").pressure > 0.0);
            }
        }
    }

    // Spectrum integration on a 4000-point wavelength grid.
    {
        let sample = GasSample::equilibrium(
            9000.0,
            vec![
                ("N2".into(), 1e22),
                ("N".into(), 5e22),
                ("O".into(), 2e22),
                ("NO".into(), 1e20),
                ("N2+".into(), 1e19),
                ("e-".into(), 1e19),
            ],
        );
        let lambda: Vec<f64> = (0..4000)
            .map(|k| 200e-9 + 800e-9 * f64::from(k) / 4000.0)
            .collect();
        for _ in 0..3 {
            let sp = spectrum(&sample, &lambda, 0.5e-9);
            assert!(sp.total_emission() > 0.0);
        }
    }

    // Euler blunt-body steps on the E10 hemisphere problem (ideal gas and
    // equilibrium-table gas paths).
    {
        let t = 230.0;
        let p = 300.0;
        let rho = p / (287.05 * t);
        let a = (1.4_f64 * 287.05 * t).sqrt();
        let fs = (rho, 8.0 * a, 0.0, p);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let body = Hemisphere::new(0.15);
        let dist = stretch::uniform(49);
        let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| (0.3 + 0.2 * sb) * 0.15, &dist);
        let gas = aerothermo_gas::IdealGas::air();
        let mut solver = EulerSolver::new(&grid, &gas, bc, EulerOptions::default(), fs);
        for _ in 0..150 {
            solver.step();
        }
        let table = air9_table();
        let mut solver_eq = EulerSolver::new(&grid, table, bc, EulerOptions::default(), fs);
        for _ in 0..50 {
            solver_eq.step();
        }
    }

    // Surrogate fast path: build the Earth heating response surfaces once
    // (`surrogate_build`), then serve fixed 4096-point batches through the
    // allocation-free query engine (`surrogate_query` — each occurrence is
    // one whole batch, so queries/sec = 4096 / min_ns · 1e9), and resolve
    // a full entry heating history through the table
    // (`trajectory_history`).
    {
        let mut response = ExactResponse {
            atmosphere: &Us76,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::TauberSuttonEarthSmooth,
            nose_radius: 0.6,
        };
        let table = {
            let _sp = trace::span("surrogate_build");
            SurrogateBuilder::new((30_000.0, 90_000.0), (3_000.0, 13_000.0))
                .initial_grid(25, 25)
                .tolerance(0.02)
                .build(&mut response)
                .expect("surrogate build")
        };

        const BATCH: usize = 4096;
        // Deterministic low-discrepancy scatter over the table domain.
        let mut hs = vec![0.0f64; BATCH];
        let mut vs = vec![0.0f64; BATCH];
        for k in 0..BATCH {
            #[allow(clippy::cast_precision_loss)]
            let u = (k as f64 * 0.618_033_988_749_895).fract();
            #[allow(clippy::cast_precision_loss)]
            let w = (k as f64 * 0.754_877_666_246_693).fract();
            hs[k] = 30_000.0 + 60_000.0 * u;
            vs[k] = 3_000.0 + 10_000.0 * w;
        }
        let mut out = vec![SurrogateQuery::default(); BATCH];
        let mut acc = 0.0f64;
        for _ in 0..200 {
            let _sp = trace::span("surrogate_query");
            table.query_batch(&hs, &vs, &mut out);
            acc += out[BATCH - 1].q_conv;
        }
        assert!(acc.is_finite() && acc > 0.0);

        let entry = EntryConditions {
            altitude: 90_000.0,
            velocity: 7_800.0,
            gamma: -1.2f64.to_radians(),
        };
        let stop = StopConditions {
            min_velocity: 3_100.0,
            max_time: 1_500.0,
            ..StopConditions::default()
        };
        for _ in 0..10 {
            let _sp = trace::span("trajectory_history");
            let pulse = fly_heating_history(&Us76, &Vehicle::shuttle_like(), entry, stop, &table);
            assert!(pulse.len() > 10);
        }
    }

    // Navier-Stokes blunt-body steps (inviscid assembly + viscous j-face
    // sweep + conduction wall) on a boundary-layer-stretched grid.
    {
        let t = 220.0;
        let p = 500.0;
        let rho = p / (287.05 * t);
        let a = (1.4_f64 * 287.05 * t).sqrt();
        let fs = (rho, 6.0 * a, 0.0, p);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let rn = 0.1;
        let body = Hemisphere::new(rn);
        let dist = stretch::tanh_one_sided(33, 3.5);
        let grid =
            StructuredGrid::blunt_body(&body, 17, 33, &|sb| (0.035 + 0.03 * sb) * rn / 0.1, &dist);
        let gas = aerothermo_gas::IdealGas::air();
        let mut solver = NsSolver::new(
            &grid,
            &gas,
            bc,
            EulerOptions::default(),
            fs,
            Transport::air(),
            300.0,
        );
        for _ in 0..120 {
            solver.step();
        }
    }

    // Distributed-sweep bookkeeping: cost-balanced plan partitioning
    // (`shard_partition`) and shard-store federation (`federate`) over a
    // synthetic 512-case plan — the sharding layer's only hot paths.
    {
        let mut cases = Vec::with_capacity(512);
        for k in 0..512usize {
            #[allow(clippy::cast_precision_loss)]
            let rho = 1e-5 * (1.0 + (k % 37) as f64);
            let level = if k % 3 == 0 {
                LevelSpec::Vsl {
                    n_points: 20 + (k % 5) * 10,
                    radiating: false,
                }
            } else {
                LevelSpec::Correlation { k_sg: 1.74e-4 }
            };
            cases.push(CaseSpec::new(
                format!("case-{k:03}"),
                GasSpec::Air9,
                level,
                FlowSpec::new(rho, 7_000.0, 220.0, f64::NAN, 0.5, 1500.0),
            ));
        }
        let plan = SweepPlan {
            name: "perf_shard".into(),
            cases,
        };
        let mut assigned = 0usize;
        for _ in 0..100 {
            let shards = partition(&plan, 8, ShardStrategy::CostBalanced);
            assigned += shards.iter().map(Vec::len).sum::<usize>();
        }
        assert_eq!(assigned, 512 * 100);

        // Synthetic shard stores on disk (federation is an I/O + merge
        // path; the records never run a solver here).
        let dir = std::env::temp_dir().join(format!("perf-federate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp shard dir");
        let shards = partition(&plan, 4, ShardStrategy::RoundRobin);
        let stores: Vec<String> = shards
            .iter()
            .enumerate()
            .map(|(i, idxs)| {
                let path = dir
                    .join(format!("shard-{i}.jsonl"))
                    .to_str()
                    .unwrap()
                    .to_string();
                let mut w = JsonlWriter::append(&path).expect("shard store opens");
                for &k in idxs {
                    #[allow(clippy::cast_precision_loss)]
                    let q = 1e5 + k as f64;
                    w.record(&CaseOutcome {
                        id: plan.cases[k].id.clone(),
                        status: CaseStatus::Completed,
                        wall_secs: 0.01,
                        retries: 0,
                        worker: 0,
                        note: String::new(),
                        error: None,
                        metrics: vec![("q_conv_w_m2".into(), q)],
                        counters: Vec::new(),
                        postmortem: None,
                    })
                    .expect("record written");
                }
                path
            })
            .collect();
        for _ in 0..50 {
            let (records, report) = federate(&plan, &stores).expect("federation runs");
            assert_eq!(records.len(), 512);
            assert!(report.complete());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Span labels whose baseline minimum is below this are skipped by the
/// comparator: at sub-microsecond scales the span overhead itself and
/// scheduler noise dominate any real change.
const MIN_COMPARABLE_NS: f64 = 500.0;

fn load_snapshot(path: &str) -> (f64, Vec<(String, f64)>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("bad snapshot {path}: {e}"));
    let calib = doc
        .get("calibration_ns")
        .and_then(Value::as_f64)
        .filter(|c| *c > 0.0)
        .unwrap_or_else(|| panic!("snapshot {path} has no usable calibration_ns"));
    let mut spans = Vec::new();
    if let Some(map) = doc.get("spans").and_then(Value::as_object) {
        for (label, st) in map {
            if label == "calibration" {
                continue;
            }
            // Compare fastest occurrences (same estimator as the
            // calibration reference): minima filter out preemption noise.
            if let Some(min) = st.get("min_ns").and_then(Value::as_f64) {
                spans.push((label.clone(), min));
            }
        }
    }
    (calib, spans)
}

/// Compare two snapshots; returns the process exit code (0 = within
/// tolerance, 1 = regression).
fn compare(base_path: &str, cand_path: &str, tol: f64) -> i32 {
    let (base_calib, base_spans) = load_snapshot(base_path);
    let (cand_calib, cand_spans) = load_snapshot(cand_path);
    println!(
        "perf comparison: {base_path} -> {cand_path} (tol {:.0}%, calibration {base_calib:.0} -> {cand_calib:.0} ns)",
        tol * 100.0
    );
    let mut regressions = 0usize;
    for (label, base_min) in &base_spans {
        if *base_min < MIN_COMPARABLE_NS {
            println!("  {label:<24} skipped (baseline min {base_min:.0} ns below noise floor)");
            continue;
        }
        let Some((_, cand_min)) = cand_spans.iter().find(|(l, _)| l == label) else {
            println!("  {label:<24} MISSING from candidate snapshot");
            regressions += 1;
            continue;
        };
        let ratio = (cand_min / cand_calib) / (base_min / base_calib);
        let verdict = if ratio > 1.0 + tol {
            regressions += 1;
            "REGRESSION"
        } else if ratio < 1.0 / (1.0 + tol) {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {label:<24} {base_min:>10.0} -> {cand_min:>10.0} ns  normalized x{ratio:.2}  {verdict}"
        );
    }
    for (label, _) in &cand_spans {
        if !base_spans.iter().any(|(l, _)| l == label) {
            println!("  {label:<24} new span (no baseline; not gated)");
        }
    }
    if regressions > 0 {
        eprintln!(
            "FAIL: {regressions} kernel(s) regressed beyond {:.0}%",
            tol * 100.0
        );
        1
    } else {
        println!("PASS: no kernel regressed beyond {:.0}%", tol * 100.0);
        0
    }
}
