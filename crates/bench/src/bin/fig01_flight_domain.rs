//! Fig. 1 — Flight domain and ground-facility simulation capability.
//!
//! Regenerates the paper's Mach-number / Reynolds-number map: flight
//! corridors of a lifting entry vehicle (Shuttle class), an AOTV aeropass,
//! a TAV-like high-altitude cruise sweep, and a ballistic probe entry,
//! against the capability boxes of the era's ground facilities. The paper's
//! qualitative point — sustained high-Mach/low-Reynolds flight sits outside
//! every facility envelope — is checked explicitly.

use aerothermo_atmosphere::freestream::{freestream, reynolds};
use aerothermo_atmosphere::trajectory::{fly, EntryConditions, StopConditions, Vehicle};
use aerothermo_atmosphere::us76::Us76;
use aerothermo_bench::{emit, output_mode, Report};
use aerothermo_core::tables::Table;

struct FacilityBox {
    name: &'static str,
    mach: (f64, f64),
    log_re: (f64, f64),
}

fn facility_boxes() -> Vec<FacilityBox> {
    vec![
        FacilityBox {
            name: "conventional wind tunnels",
            mach: (0.1, 10.0),
            log_re: (5.0, 8.5),
        },
        FacilityBox {
            name: "hypersonic tunnels",
            mach: (5.0, 14.0),
            log_re: (5.5, 7.5),
        },
        FacilityBox {
            name: "shock tunnels",
            mach: (6.0, 25.0),
            log_re: (4.5, 7.0),
        },
        FacilityBox {
            name: "ballistic ranges",
            mach: (2.0, 20.0),
            log_re: (4.0, 7.5),
        },
        FacilityBox {
            name: "arc jets (enthalpy match)",
            mach: (2.0, 8.0),
            log_re: (3.0, 6.0),
        },
    ]
}

/// One corridor: label, (altitude, velocity) samples, reference length.
type Corridor = (&'static str, Vec<(f64, f64)>, f64);

fn main() {
    aerothermo_bench::cli::announce("fig01_flight_domain");
    let mode = output_mode();
    let mut report = Report::new("fig01_flight_domain");
    let atm = Us76;

    // --- Flight corridors -------------------------------------------------
    let corridors: Vec<Corridor> = vec![
        (
            "shuttle entry",
            {
                let traj = fly(
                    &atm,
                    &Vehicle::shuttle_like(),
                    EntryConditions {
                        altitude: 120_000.0,
                        velocity: 7_800.0,
                        gamma: -1.2f64.to_radians(),
                    },
                    StopConditions {
                        max_time: 2_200.0,
                        ..StopConditions::default()
                    },
                );
                traj.iter().map(|p| (p.altitude, p.velocity)).collect()
            },
            32.8, // reference length [m]
        ),
        (
            "AOTV aeropass",
            // Shallow skip through 75–95 km at ~9.5 km/s.
            (0..30)
                .map(|k| {
                    let t = k as f64 / 29.0;
                    let h = 95_000.0 - 20_000.0 * (std::f64::consts::PI * t).sin();
                    let v = 9_500.0 - 1_800.0 * t;
                    (h, v)
                })
                .collect(),
            10.0,
        ),
        (
            "TAV cruise/ascent",
            (0..25)
                .map(|k| {
                    let t = k as f64 / 24.0;
                    let h = 25_000.0 + 55_000.0 * t;
                    let v = 1_200.0 + 6_000.0 * t;
                    (h, v)
                })
                .collect(),
            30.0,
        ),
        (
            "ballistic probe",
            {
                let traj = fly(
                    &atm,
                    &Vehicle {
                        mass: 300.0,
                        area: 0.8,
                        cd: 1.2,
                        ld: 0.0,
                        nose_radius: 0.3,
                    },
                    EntryConditions {
                        altitude: 120_000.0,
                        velocity: 11_000.0,
                        gamma: -15f64.to_radians(),
                    },
                    StopConditions::default(),
                );
                traj.iter().map(|p| (p.altitude, p.velocity)).collect()
            },
            1.0,
        ),
    ];

    let mut table = Table::new(&["corridor", "alt_km", "V_km_s", "Mach", "log10_Re"]);
    let mut outside_all = 0usize;
    let mut total_pts = 0usize;
    let boxes = facility_boxes();
    for (name, pts, length) in &corridors {
        for (h, v) in pts.iter().step_by(4) {
            let fs = freestream(&atm, *h, *v);
            let re = reynolds(&fs, *length).max(1.0);
            let lre = re.log10();
            total_pts += 1;
            let covered = boxes.iter().any(|b| {
                fs.mach >= b.mach.0 && fs.mach <= b.mach.1 && lre >= b.log_re.0 && lre <= b.log_re.1
            });
            if !covered && fs.mach > 10.0 {
                outside_all += 1;
            }
            table.row(&[
                (*name).to_string(),
                format!("{:.1}", h / 1000.0),
                format!("{:.2}", v / 1000.0),
                format!("{:.1}", fs.mach),
                format!("{lre:.2}"),
            ]);
        }
    }
    emit("Fig. 1: flight corridors (Mach, Reynolds)", &table, mode);

    let mut ftable = Table::new(&[
        "facility",
        "Mach_min",
        "Mach_max",
        "log10Re_min",
        "log10Re_max",
    ]);
    for b in &boxes {
        ftable.row(&[
            b.name.to_string(),
            format!("{:.1}", b.mach.0),
            format!("{:.1}", b.mach.1),
            format!("{:.1}", b.log_re.0),
            format!("{:.1}", b.log_re.1),
        ]);
    }
    emit("Fig. 1: facility capability boxes", &ftable, mode);

    println!(
        "check: {outside_all} of {total_pts} sampled corridor points at M > 10 lie outside every facility box"
    );
    report.metric("points_outside_all_facilities", outside_all as f64);
    report.metric("points_sampled", total_pts as f64);
    assert!(
        report.check(
            "facility_coverage_gap",
            outside_all > 0,
            format!("{outside_all} of {total_pts} M>10 points uncovered"),
        ),
        "the paper's gap — hypervelocity flight beyond facility coverage — must appear"
    );
    report.finish();
    println!("PASS: facility-coverage gap reproduced (paper Fig. 1)");
}
