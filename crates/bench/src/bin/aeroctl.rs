//! `aeroctl` — CLI client for the `aerothermod` service daemon.
//!
//! ```text
//! aeroctl --socket=PATH <command> [args]
//!
//! Commands:
//!   ping                                liveness check
//!   submit --plan=FILE [--workers=N] [--halt-after=K]
//!                                       submit a sweep plan, print job id
//!   submit-shard --plan=FILE --shard=i/n [--shard-strategy=S]
//!                [--workers=N] [--halt-after=K]
//!                                       submit one shard of a plan
//!   federate JOB...                     merge finished shard-job stores
//!                                       into the canonical store
//!   status JOB                          one status line for JOB
//!   wait JOB [--timeout=SECS]           poll until JOB leaves 'running';
//!                                       a live progress line shows
//!                                       done/total, elapsed, and the ETA
//!                                       from the job's event heartbeats
//!   results JOB                         print JOB's per-case records (JSONL)
//!   cancel JOB                          raise JOB's cooperative cancel flag
//!   resume JOB [--workers=N]            resume an interrupted/halted job
//!   query ALT VEL                       one stagnation-heating query
//!   query-batch H1,H2,... V1,V2,...     batched queries (comma lists)
//!   metrics [--json]                    daemon metrics exposition
//!   shutdown                            stop the daemon
//! ```
//!
//! Exit codes: 0 success, 2 usage, 3 daemon/transport error, 4 `wait`
//! ended in `halted`/`cancelled`/`interrupted`, 5 `wait` ended `failed`.

use std::time::Duration;

use aerothermo_numerics::telemetry::SolverError;
use aerothermo_service::Client;
use aerothermo_sweep::SweepPlan;

fn usage() -> ! {
    eprintln!(
        "usage: aeroctl --socket=PATH <ping|submit|submit-shard|federate|status|\
         wait|results|cancel|resume|query|query-batch|metrics|shutdown> [args]  \
         (see --help)"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{flag}=")).map(str::to_string))
}

fn die(e: &SolverError) -> ! {
    eprintln!("aeroctl: {e}");
    std::process::exit(3);
}

fn parse_list(s: &str, what: &str) -> Vec<f64> {
    let out: Vec<f64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
    if out.is_empty() {
        eprintln!("aeroctl: {what} must be a comma-separated number list, got '{s}'");
        usage();
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let socket = flag_value(&args, "--socket").unwrap_or_else(|| "aerothermod.sock".into());
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let Some(cmd) = positional.first() else {
        usage()
    };

    let mut client = Client::connect(&socket).unwrap_or_else(|e| die(&e));
    match cmd.as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| die(&e));
            println!("pong");
        }
        "submit" => {
            let Some(path) = flag_value(&args, "--plan") else {
                eprintln!("aeroctl: submit requires --plan=FILE");
                usage();
            };
            let plan = SweepPlan::load(&path).unwrap_or_else(|e| die(&e));
            let workers = flag_value(&args, "--workers").and_then(|w| w.parse().ok());
            let halt = flag_value(&args, "--halt-after").and_then(|k| k.parse().ok());
            let job = client
                .submit(&plan, workers, halt)
                .unwrap_or_else(|e| die(&e));
            println!("{job}");
        }
        "submit-shard" => {
            let Some(path) = flag_value(&args, "--plan") else {
                eprintln!("aeroctl: submit-shard requires --plan=FILE");
                usage();
            };
            let Some(shard) = flag_value(&args, "--shard") else {
                eprintln!("aeroctl: submit-shard requires --shard=i/n");
                usage();
            };
            let plan = SweepPlan::load(&path).unwrap_or_else(|e| die(&e));
            let strategy = flag_value(&args, "--shard-strategy");
            let workers = flag_value(&args, "--workers").and_then(|w| w.parse().ok());
            let halt = flag_value(&args, "--halt-after").and_then(|k| k.parse().ok());
            let job = client
                .submit_shard(&plan, &shard, strategy.as_deref(), workers, halt)
                .unwrap_or_else(|e| die(&e));
            println!("{job}");
        }
        "federate" => {
            let jobs: Vec<String> = positional[1..].iter().map(|s| (*s).clone()).collect();
            if jobs.is_empty() {
                eprintln!("aeroctl: federate requires one or more job ids");
                usage();
            }
            let v = client.federate(&jobs).unwrap_or_else(|e| die(&e));
            use aerothermo_numerics::json::Value;
            let report = v.get("report");
            let merged = report
                .and_then(|r| r.get("merged"))
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN);
            let planned = report
                .and_then(|r| r.get("plan_cases"))
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN);
            let complete = report.and_then(|r| r.get("complete")) == Some(&Value::Bool(true));
            println!(
                "federated {merged}/{planned} case(s) -> {}{}",
                v.get("store").and_then(Value::as_str).unwrap_or("?"),
                if complete { "" } else { " [INCOMPLETE]" },
            );
            if !complete {
                std::process::exit(4);
            }
        }
        "status" => {
            let Some(job) = positional.get(1) else {
                usage()
            };
            let st = client.status(job).unwrap_or_else(|e| die(&e));
            print_status(&st);
        }
        "wait" => {
            let Some(job) = positional.get(1) else {
                usage()
            };
            let timeout = flag_value(&args, "--timeout")
                .and_then(|t| t.parse().ok())
                .unwrap_or(600.0);
            let started = std::time::Instant::now();
            let mut progressed = false;
            let st = client
                .wait_with(job, Duration::from_secs_f64(timeout), |st| {
                    print_progress(st, started.elapsed().as_secs_f64());
                    progressed = true;
                })
                .unwrap_or_else(|e| die(&e));
            if progressed {
                eprintln!();
            }
            print_status(&st);
            let phase = st
                .get("phase")
                .and_then(aerothermo_numerics::json::Value::as_str)
                .unwrap_or("");
            std::process::exit(match phase {
                "completed" => 0,
                "failed" => 5,
                _ => 4,
            });
        }
        "results" => {
            let Some(job) = positional.get(1) else {
                usage()
            };
            let v = client.results(job).unwrap_or_else(|e| die(&e));
            let Some(records) = v
                .get("records")
                .and_then(aerothermo_numerics::json::Value::as_array)
            else {
                die(&SolverError::BadInput(
                    "results response missing 'records'".into(),
                ))
            };
            // One record per line, JSONL — pipe-friendly like the store.
            for rec in records {
                let id = rec
                    .get("id")
                    .and_then(aerothermo_numerics::json::Value::as_str)
                    .unwrap_or("?");
                let status = rec
                    .get("status")
                    .and_then(aerothermo_numerics::json::Value::as_str)
                    .unwrap_or("?");
                println!("{id}\t{status}");
            }
        }
        "cancel" => {
            let Some(job) = positional.get(1) else {
                usage()
            };
            let st = client.cancel(job).unwrap_or_else(|e| die(&e));
            print_status(&st);
        }
        "resume" => {
            let Some(job) = positional.get(1) else {
                usage()
            };
            let workers = flag_value(&args, "--workers").and_then(|w| w.parse().ok());
            let st = client.resume(job, workers).unwrap_or_else(|e| die(&e));
            print_status(&st);
        }
        "query" => {
            let (Some(h), Some(v)) = (positional.get(1), positional.get(2)) else {
                usage()
            };
            let (Ok(h), Ok(v)) = (h.parse::<f64>(), v.parse::<f64>()) else {
                usage()
            };
            let resp = client.query(h, v).unwrap_or_else(|e| die(&e));
            print_queries(resp.get("result").into_iter());
        }
        "query-batch" => {
            let (Some(hs), Some(vs)) = (positional.get(1), positional.get(2)) else {
                usage()
            };
            let hs = parse_list(hs, "altitudes");
            let vs = parse_list(vs, "velocities");
            let resp = client.query_batch(&hs, &vs).unwrap_or_else(|e| die(&e));
            let items = resp
                .get("results")
                .and_then(aerothermo_numerics::json::Value::as_array)
                .unwrap_or(&[]);
            print_queries(items.iter());
        }
        "metrics" => {
            let json = args.iter().any(|a| a == "--json");
            let v = client
                .metrics(if json { "json" } else { "prometheus" })
                .unwrap_or_else(|e| die(&e));
            if json {
                // Structured object: re-print the raw response member.
                println!(
                    "{}",
                    v.get("metrics").map_or_else(String::new, render_value)
                );
            } else {
                print!(
                    "{}",
                    v.get("metrics")
                        .and_then(aerothermo_numerics::json::Value::as_str)
                        .unwrap_or("")
                );
            }
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| die(&e));
            println!("stopping");
        }
        other => {
            eprintln!("aeroctl: unknown command '{other}'");
            usage();
        }
    }
}

/// The `wait` progress line: done/total and elapsed from the status
/// poll, ETA from the newest heartbeat in the job's event stream (the
/// pool's mean-completed-case estimate — `None` until a case lands).
fn print_progress(st: &aerothermo_numerics::json::Value, elapsed_secs: f64) {
    use aerothermo_numerics::json::Value;
    use std::io::Write;
    let n = |k: &str| st.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
    let eta = st
        .get("events")
        .and_then(Value::as_str)
        .and_then(last_heartbeat_eta)
        .map_or_else(String::new, |eta| format!(" eta {eta:.1}s"));
    eprint!(
        "\r# {} {:.0}/{:.0} elapsed {elapsed_secs:.1}s{eta}   ",
        st.get("job").and_then(Value::as_str).unwrap_or("?"),
        n("done"),
        n("total"),
    );
    let _ = std::io::stderr().flush();
}

/// `eta_secs` of the last heartbeat line in the events file, if any.
fn last_heartbeat_eta(events_path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(events_path).ok()?;
    text.lines()
        .rev()
        .filter(|l| l.contains("\"event\": \"heartbeat\""))
        .find_map(|l| aerothermo_numerics::json::parse(l).ok())
        .and_then(|v| {
            v.get("eta_secs")
                .and_then(aerothermo_numerics::json::Value::as_f64)
        })
}

fn print_status(st: &aerothermo_numerics::json::Value) {
    use aerothermo_numerics::json::Value;
    let s = |k: &str| st.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |k: &str| st.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
    println!(
        "{}\t{}\t{}/{}\tplan={}",
        s("job"),
        s("phase"),
        n("done"),
        n("total"),
        s("plan"),
    );
    if let Some(err) = st.get("error").and_then(Value::as_str) {
        println!("error: {err}");
    }
}

fn print_queries<'a>(items: impl Iterator<Item = &'a aerothermo_numerics::json::Value>) {
    use aerothermo_numerics::json::Value;
    for q in items {
        let f = |k: &str| q.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
        let exact = matches!(q.get("exact"), Some(Value::Bool(true)));
        println!(
            "h={:.1} v={:.1} p_stag={:.6e} t_stag={:.2} q_conv={:.6e} q_rad={:.6e} path={}",
            f("altitude"),
            f("velocity"),
            f("p_stag"),
            f("t_stag"),
            f("q_conv"),
            f("q_rad"),
            if exact { "exact" } else { "surrogate" },
        );
    }
}

/// Minimal JSON re-serializer for the structured metrics member.
fn render_value(v: &aerothermo_numerics::json::Value) -> String {
    use aerothermo_numerics::json::{write_f64, write_string, Value};
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Number(x) => write_f64(*x),
        Value::String(s) => write_string(s),
        Value::Array(xs) => format!(
            "[{}]",
            xs.iter().map(render_value).collect::<Vec<_>>().join(", ")
        ),
        Value::Object(map) => format!(
            "{{{}}}",
            map.iter()
                .map(|(k, x)| format!("{}: {}", write_string(k), render_value(x)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}
