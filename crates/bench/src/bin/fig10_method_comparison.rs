//! E10 — The paper's central cost claim: the four equation sets solve the
//! same class of problem at steeply different cost, which is why the
//! discipline maintained all four.
//!
//! One problem: hypersonic flow over a hemisphere (M = 8 class, ideal gas
//! for a clean comparison). Each method computes the stagnation heating
//! (or its inviscid surrogate inputs) by its own route:
//!
//! * VSL  — stagnation-line shock layer (equilibrium-air variant),
//! * E+BL — Euler shock shape + Fay-Riddell/Lees boundary layer,
//! * PNS  — downstream march (plus the nose anchor it needs),
//! * NS   — full viscous relaxation.
//!
//! Reported: wall-clock time and stagnation heat flux; the check is the
//! cost ordering VSL < E+BL < PNS < NS with NS at least an order of
//! magnitude above VSL.

use aerothermo_bench::{emit, output_mode, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::air9_equilibrium;
use aerothermo_gas::transport::sutherland_air;
use aerothermo_gas::{GasModel, IdealGas};
use aerothermo_grid::bodies::{Hemisphere, SphereCone};
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_solvers::blayer::{fay_riddell, newtonian_velocity_gradient, FayRiddellInputs};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use aerothermo_solvers::pns::{PnsOptions, PnsSolver};
use aerothermo_solvers::vsl::{solve as vsl_solve, VslProblem};
use std::time::Instant;

struct CaseResult {
    name: &'static str,
    seconds: f64,
    q_stag: f64,
    note: String,
}

fn main() {
    let mode = output_mode();
    let mut report = Report::new("fig10_method_comparison");

    // Common condition: Mach 8 sphere, wind-tunnel-class density.
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
    let v_inf = 8.0 * a_inf;
    let rn = 0.15;
    let t_wall = 300.0;
    let gas = IdealGas::air();
    let fs = (rho_inf, v_inf, 0.0, p_inf);

    let mut results: Vec<CaseResult> = Vec::new();

    // --- VSL ---------------------------------------------------------------
    {
        let start = Instant::now();
        let eq = air9_equilibrium();
        let sol = vsl_solve(
            &eq,
            &VslProblem {
                u_inf: v_inf,
                rho_inf,
                t_inf,
                nose_radius: rn,
                t_wall,
                n_points: 40,
                radiating: false,
            },
        )
        .expect("VSL");
        results.push(CaseResult {
            name: "VSL",
            seconds: start.elapsed().as_secs_f64(),
            q_stag: sol.q_conv,
            note: format!("δ/Rn = {:.3}", sol.standoff / rn),
        });
    }

    // --- E+BL --------------------------------------------------------------
    {
        let start = Instant::now();
        let body = Hemisphere::new(rn);
        let dist = stretch::uniform(41);
        let grid = StructuredGrid::blunt_body(&body, 21, 41, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 300,
            ..EulerOptions::default()
        };
        let mut euler = EulerSolver::new(&grid, &gas, bc, opts, fs);
        euler.run(2500, 1e-2).expect("stable Euler run");
        report.absorb_telemetry("euler_ebl", &euler.telemetry);
        let p_stag = euler.primitive(0, 0).p;
        let e_stag = euler.internal_energy(0, 0);
        let t_stag = gas.temperature(euler.primitive(0, 0).rho, e_stag);
        let rho_stag = euler.primitive(0, 0).rho;
        let q = fay_riddell(&FayRiddellInputs {
            rho_e: rho_stag,
            mu_e: sutherland_air(t_stag),
            rho_w: p_stag / (287.05 * t_wall),
            mu_w: sutherland_air(t_wall),
            due_dx: newtonian_velocity_gradient(rn, p_stag, p_inf, rho_stag),
            h0e: 1004.5 * t_inf + 0.5 * v_inf * v_inf,
            hw: 1004.5 * t_wall,
            pr: 0.71,
            lewis: 1.0,
            h_d_frac: 0.0,
        });
        results.push(CaseResult {
            name: "E+BL",
            seconds: start.elapsed().as_secs_f64(),
            q_stag: q,
            note: format!("p0/p∞ = {:.1}", p_stag / p_inf),
        });
    }

    // --- PNS ---------------------------------------------------------------
    {
        // PNS cannot march the subsonic nose; its honest cost on this class
        // of problem is the downstream sweep. Use the sphere-cone afterbody
        // march and report its wall time plus the stagnation anchor cost
        // (Fay-Riddell, negligible).
        let start = Instant::now();
        let body = SphereCone {
            rn,
            half_angle: 20f64.to_radians(),
            length: 10.0 * rn,
        };
        let dist = stretch::tanh_one_sided(41, 2.5);
        let grid = StructuredGrid::blunt_body(&body, 70, 41, &|sb| (0.25 + 0.8 * sb) * rn, &dist);
        let mut pns = PnsSolver::new(
            &grid,
            &gas,
            PnsOptions {
                t_wall: Some(t_wall),
                ..PnsOptions::default()
            },
            fs,
        );
        let sol = pns.march(10).expect("clean PNS march");
        report.absorb_telemetry("pns", &pns.telemetry);
        let q_first = sol
            .wall_heat_flux
            .iter()
            .copied()
            .find(|q| *q > 0.0)
            .unwrap_or(0.0);
        results.push(CaseResult {
            name: "PNS",
            seconds: start.elapsed().as_secs_f64(),
            q_stag: q_first,
            note: format!("{} stations marched", sol.station_x.len()),
        });
    }

    // --- NS ----------------------------------------------------------------
    {
        let start = Instant::now();
        let body = Hemisphere::new(rn);
        let dist = stretch::tanh_one_sided(57, 3.5);
        let grid = StructuredGrid::blunt_body(&body, 21, 57, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 500,
            ..EulerOptions::default()
        };
        let mut ns = NsSolver::new(&grid, &gas, bc, opts, fs, Transport::air(), t_wall);
        ns.run(16_000, 1e-9).expect("stable NS run");
        report.absorb_telemetry("ns", &ns.inviscid.telemetry);
        results.push(CaseResult {
            name: "NS",
            seconds: start.elapsed().as_secs_f64(),
            q_stag: ns.wall_heat_flux(0),
            note: "full viscous relaxation".to_string(),
        });
    }

    let mut table = Table::new(&["method", "wall_time_s", "q_stag_W_cm2", "notes"]);
    for r in &results {
        table.row(&[
            r.name.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.2}", r.q_stag / 1e4),
            r.note.clone(),
        ]);
    }
    emit(
        "E10: equation-set cost and heating comparison",
        &table,
        mode,
    );

    // --- Checks --------------------------------------------------------------
    let time_of = |n: &str| results.iter().find(|r| r.name == n).unwrap().seconds;
    let q_of = |n: &str| results.iter().find(|r| r.name == n).unwrap().q_stag;
    for r in &results {
        report.metric(
            &format!("wall_time_s_{}", r.name.replace('+', "_")),
            r.seconds,
        );
        report.metric(
            &format!("q_stag_w_m2_{}", r.name.replace('+', "_")),
            r.q_stag,
        );
    }
    assert!(
        report.check(
            "ns_most_expensive",
            time_of("VSL") < time_of("NS") && time_of("E+BL") < time_of("NS"),
            format!(
                "VSL {:.3}s, E+BL {:.3}s, NS {:.3}s",
                time_of("VSL"),
                time_of("E+BL"),
                time_of("NS")
            ),
        ),
        "NS must be the most expensive"
    );
    assert!(
        report.check(
            "ns_order_of_magnitude_over_vsl",
            time_of("NS") > 10.0 * time_of("VSL"),
            format!("NS/VSL time ratio = {:.1}", time_of("NS") / time_of("VSL")),
        ),
        "NS should cost ≥ 10× VSL: {:.3}s vs {:.3}s",
        time_of("NS"),
        time_of("VSL")
    );
    assert!(
        report.check(
            "pns_undercuts_ns",
            time_of("PNS") < time_of("NS"),
            format!("PNS {:.3}s vs NS {:.3}s", time_of("PNS"), time_of("NS")),
        ),
        "PNS must undercut full NS on marchable problems"
    );
    // All heating estimates agree within a factor ~3 (different fidelity,
    // same physics).
    let q_vsl = q_of("VSL");
    for name in ["E+BL", "NS"] {
        let r = q_of(name) / q_vsl;
        assert!(
            report.check(
                &format!("heating_agreement_{}", name.replace('+', "_")),
                (0.3..3.5).contains(&r),
                format!("q/q_VSL = {r:.2}"),
            ),
            "{name} heating ratio vs VSL: {r:.2}"
        );
    }
    report.finish();
    println!("PASS: cost hierarchy VSL/E+BL < PNS < NS reproduced (paper's method taxonomy)");
}
