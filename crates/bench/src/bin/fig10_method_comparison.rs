//! E10 — The paper's central cost claim: the four equation sets solve the
//! same class of problem at steeply different cost, which is why the
//! discipline maintained all four.
//!
//! One problem: hypersonic flow over a hemisphere (M = 8 class, ideal gas
//! for a clean comparison). Each method computes the stagnation heating
//! (or its inviscid surrogate inputs) by its own route:
//!
//! * VSL  — stagnation-line shock layer (equilibrium-air variant),
//! * E+BL — Euler shock shape + Fay-Riddell/Lees boundary layer,
//! * PNS  — downstream march (plus the nose anchor it needs),
//! * NS   — full viscous relaxation.
//!
//! The matrix executes as the preset sweep plan [`method_matrix_plan`] in
//! plan order on a single worker, so the per-case wall clocks are honest
//! serial costs (the sweep engine's per-case timing replaces the old
//! hand-rolled `Instant` bracketing).
//!
//! Reported: wall-clock time and stagnation heat flux; the check is the
//! cost ordering VSL < E+BL < PNS < NS with NS at least an order of
//! magnitude above VSL.

use aerothermo_bench::{cli, emit, Report};
use aerothermo_core::tables::Table;
use aerothermo_sweep::plan::method_matrix_plan;
use aerothermo_sweep::{run_sweep, CaseOutcome, ScheduleOrder, SweepOptions};

/// Sweep-case ID and display name per method row.
const METHODS: &[(&str, &str)] = &[
    ("vsl", "VSL"),
    ("euler_bl", "E+BL"),
    ("pns", "PNS"),
    ("ns", "NS"),
];

fn main() {
    cli::announce("fig10_method_comparison");
    let mode = cli::output_mode();
    let mut report = Report::new("fig10_method_comparison");

    // Plan order + one worker: each case gets the whole machine, so wall
    // clocks are comparable serial costs.
    let plan = method_matrix_plan();
    let sweep = run_sweep(
        &plan,
        &SweepOptions {
            workers: 1,
            order: ScheduleOrder::PlanOrder,
            ..SweepOptions::default()
        },
    )
    .expect("fig10 sweep");
    assert!(
        report.check(
            "sweep_all_green",
            sweep.all_green(),
            format!(
                "{} failed / {} timed out of {} cases",
                sweep.counts().failed,
                sweep.counts().timed_out,
                sweep.planned
            ),
        ),
        "every method case must complete"
    );

    let outcome = |id: &str| -> &CaseOutcome {
        sweep
            .outcome(id)
            .unwrap_or_else(|| panic!("case '{id}' ran"))
    };
    let mut table = Table::new(&["method", "wall_time_s", "q_stag_W_cm2", "notes"]);
    for (id, name) in METHODS {
        let o = outcome(id);
        let q = o.metric("q_stag_w_m2").unwrap_or(f64::NAN);
        table.row(&[
            (*name).to_string(),
            format!("{:.3}", o.wall_secs),
            format!("{:.2}", q / 1e4),
            o.note.clone(),
        ]);
        report.metric(
            &format!("wall_time_s_{}", name.replace('+', "_")),
            o.wall_secs,
        );
        report.metric(&format!("q_stag_w_m2_{}", name.replace('+', "_")), q);
        // Kernel counters the pool attributed to exactly this case.
        for (counter, v) in &o.counters {
            report.metric(&format!("{id}.{counter}"), *v as f64);
        }
    }
    emit(
        "E10: equation-set cost and heating comparison",
        &table,
        mode,
    );

    // --- Checks --------------------------------------------------------------
    let time_of = |id: &str| outcome(id).wall_secs;
    let q_of = |id: &str| outcome(id).metric("q_stag_w_m2").unwrap_or(f64::NAN);
    assert!(
        report.check(
            "ns_most_expensive",
            time_of("vsl") < time_of("ns") && time_of("euler_bl") < time_of("ns"),
            format!(
                "VSL {:.3}s, E+BL {:.3}s, NS {:.3}s",
                time_of("vsl"),
                time_of("euler_bl"),
                time_of("ns")
            ),
        ),
        "NS must be the most expensive"
    );
    assert!(
        report.check(
            "ns_order_of_magnitude_over_vsl",
            time_of("ns") > 10.0 * time_of("vsl"),
            format!("NS/VSL time ratio = {:.1}", time_of("ns") / time_of("vsl")),
        ),
        "NS should cost ≥ 10× VSL: {:.3}s vs {:.3}s",
        time_of("ns"),
        time_of("vsl")
    );
    assert!(
        report.check(
            "pns_undercuts_ns",
            time_of("pns") < time_of("ns"),
            format!("PNS {:.3}s vs NS {:.3}s", time_of("pns"), time_of("ns")),
        ),
        "PNS must undercut full NS on marchable problems"
    );
    // All heating estimates agree within a factor ~3 (different fidelity,
    // same physics).
    let q_vsl = q_of("vsl");
    for (id, name) in [("euler_bl", "E+BL"), ("ns", "NS")] {
        let r = q_of(id) / q_vsl;
        assert!(
            report.check(
                &format!("heating_agreement_{}", name.replace('+', "_")),
                (0.3..3.5).contains(&r),
                format!("q/q_VSL = {r:.2}"),
            ),
            "{name} heating ratio vs VSL: {r:.2}"
        );
    }
    report.finish();
    println!("PASS: cost hierarchy VSL/E+BL < PNS < NS reproduced (paper's method taxonomy)");
}
