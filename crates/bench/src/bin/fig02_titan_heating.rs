//! Fig. 2 — Titan probe stagnation-point heating pulses (convective and
//! radiative), after Green, Balakrishnan & Swenson (the paper's Ref. 15).
//!
//! A Titan-probe capsule enters at 12 km/s; along the flown (3-DOF)
//! trajectory the convective pulse comes from the Sutton-Graves correlation
//! for the N₂-dominated atmosphere and the radiative pulse from the full
//! physics path: radiating stagnation-line VSL + spectral tangent-slab
//! transport of the CN-dominated shock layer, evaluated at anchor points
//! and scaled between them with the local ρ-V correlation exponents.
//!
//! The per-condition solves run through the sweep engine: the preset
//! [`titan_fig02_plan`] (strided correlation cases + the radiating VSL
//! anchor) executes on the worker pool (`--workers=N`), and this binary
//! reads the anchor flux and the sampled pulse from the case outcomes.
//!
//! Checks: both pulses peak near the same altitude band; the radiative
//! pulse is narrower and peaks slightly earlier (higher velocity); at this
//! entry speed radiation is competitive with convection — the reason the
//! paper's Ref. 15 sized an ablative TPS from the radiative environment.

use aerothermo_atmosphere::planets::ExponentialAtmosphere;
use aerothermo_atmosphere::trajectory::{fly, EntryConditions, StopConditions, Vehicle};
use aerothermo_bench::{cli, emit, Report};
use aerothermo_core::heating::{convective_sutton_graves, heat_pulse};
use aerothermo_core::tables::Table;
use aerothermo_sweep::plan::titan_fig02_plan;
use aerothermo_sweep::{run_sweep, SweepOptions};

fn main() {
    cli::announce("fig02_titan_heating");
    let mode = cli::output_mode();
    let mut report = Report::new("fig02_titan_heating");
    let atm = ExponentialAtmosphere::titan();
    let vehicle = Vehicle::titan_probe();

    let traj = fly(
        &atm,
        &vehicle,
        EntryConditions {
            altitude: 450_000.0,
            velocity: 12_000.0,
            gamma: -32f64.to_radians(),
        },
        StopConditions {
            min_velocity: 1_000.0,
            ..StopConditions::default()
        },
    );

    // Convective pulse (Sutton-Graves, k for N2 atmospheres ≈ Earth's),
    // dense in time for the peak scan and the printed figure.
    let k_sg = 1.7e-4;
    let pulse = heat_pulse(&traj, vehicle.nose_radius, k_sg, |_| 0.0);
    let peak_conv = pulse
        .iter()
        .max_by(|a, b| a.q_conv.total_cmp(&b.q_conv))
        .expect("empty pulse");

    // Plan-based execution: strided correlation cases along the trajectory
    // plus the radiating VSL + tangent-slab anchor at the convective-peak
    // condition, run on the sweep engine's worker pool.
    let plan = titan_fig02_plan(&traj, 8, vehicle.nose_radius);
    let sweep = run_sweep(
        &plan,
        &SweepOptions {
            workers: cli::workers(),
            ..SweepOptions::default()
        },
    )
    .expect("fig02 sweep");
    assert!(
        report.check(
            "sweep_all_green",
            sweep.all_green(),
            format!(
                "{} failed / {} timed out of {} cases",
                sweep.counts().failed,
                sweep.counts().timed_out,
                sweep.planned
            ),
        ),
        "every fig02 sweep case must complete"
    );
    report.metric("sweep_elapsed_secs", sweep.elapsed_secs);
    report.metric("sweep_workers", sweep.workers as f64);

    // The sweep's correlation cases must agree bitwise with the direct
    // kernel call at the same condition — the engine adds orchestration,
    // not physics.
    let anchor_case = plan
        .cases
        .iter()
        .find(|c| c.id == "titan-vsl-anchor")
        .expect("preset plan carries the anchor");
    let mut sweep_consistent = true;
    for case in plan.cases.iter().filter(|c| {
        matches!(
            c.level,
            aerothermo_sweep::spec::LevelSpec::Correlation { .. }
        )
    }) {
        let direct = convective_sutton_graves(
            case.flow.rho_inf,
            case.flow.u_inf,
            case.flow.nose_radius,
            k_sg,
        );
        let swept = sweep
            .outcome(&case.id)
            .and_then(|o| o.metric("q_conv_w_m2"))
            .unwrap_or(f64::NAN);
        sweep_consistent &= swept.to_bits() == direct.to_bits();
    }
    assert!(
        report.check(
            "sweep_matches_direct_correlation",
            sweep_consistent,
            "per-case q_conv bitwise equals the direct Sutton-Graves call",
        ),
        "sweep-executed correlation must be bitwise identical to the direct call"
    );

    // Radiative anchor flux from the sweep outcome; kernel counters the
    // pool attributed to that single case become anchor metrics.
    let anchor = sweep.outcome("titan-vsl-anchor").expect("anchor outcome");
    let q_rad_anchor = anchor
        .metric("q_rad_w_m2")
        .expect("anchor records the tangent-slab flux");
    for (name, v) in &anchor.counters {
        report.metric(&format!("vsl_anchor.{name}"), *v as f64);
    }
    eprintln!(
        "# radiative anchor: V = {:.0} m/s, rho = {:.3e} kg/m³ -> q_rad = {:.3e} W/m² \
         ({:.3} s on worker {})",
        anchor_case.flow.u_inf,
        anchor_case.flow.rho_inf,
        q_rad_anchor,
        anchor.wall_secs,
        anchor.worker
    );

    // Radiative scaling about the anchor: q_r ∝ ρ^1.2·V^8 (Titan CN-layer
    // exponents of the engineering literature; the steep V dependence is the
    // Boltzmann factor of the CN B-state at post-shock temperatures).
    let rho_a = anchor_case.flow.rho_inf;
    let v_a = anchor_case.flow.u_inf;
    let q_rad_of = |rho: f64, v: f64| -> f64 {
        if v < 4_000.0 {
            return 0.0;
        }
        q_rad_anchor * (rho / rho_a).powf(1.2) * (v / v_a).powf(8.0)
    };

    let mut table = Table::new(&["t_s", "alt_km", "V_km_s", "q_conv_W_cm2", "q_rad_W_cm2"]);
    let mut peak_rad_t = 0.0;
    let mut peak_rad = 0.0;
    for (rows, p) in traj.iter().enumerate() {
        let q_c = convective_sutton_graves(p.density, p.velocity, vehicle.nose_radius, k_sg);
        let q_r = q_rad_of(p.density, p.velocity);
        if q_r > peak_rad {
            peak_rad = q_r;
            peak_rad_t = p.time;
        }
        if rows % 4 == 0 && (q_c > 1e3 || p.time < 20.0) {
            table.row(&[
                format!("{:.1}", p.time),
                format!("{:.1}", p.altitude / 1000.0),
                format!("{:.2}", p.velocity / 1000.0),
                format!("{:.2}", q_c / 1e4),
                format!("{:.2}", q_r / 1e4),
            ]);
        }
    }
    emit(
        "Fig. 2: Titan probe stagnation heating pulses",
        &table,
        mode,
    );

    println!(
        "peak convective: {:.1} W/cm² at t = {:.1} s (V = {:.2} km/s, h = {:.0} km)",
        peak_conv.q_conv / 1e4,
        peak_conv.time,
        peak_conv.velocity / 1000.0,
        peak_conv.altitude / 1000.0
    );
    println!(
        "peak radiative : {:.1} W/cm² at t = {:.1} s",
        peak_rad / 1e4,
        peak_rad_t
    );

    report.metric("peak_q_conv_w_m2", peak_conv.q_conv);
    report.metric("peak_q_rad_w_m2", peak_rad);
    report.metric("q_rad_anchor_w_m2", q_rad_anchor);
    report.metric("peak_conv_time_s", peak_conv.time);
    report.metric("peak_rad_time_s", peak_rad_t);

    // --- Shape checks against the paper's Fig. 2 --------------------------
    assert!(
        report.check(
            "convective_peak_magnitude",
            peak_conv.q_conv > 1e5,
            format!(
                "peak q_conv = {:.3e} W/m² (require > 1e5)",
                peak_conv.q_conv
            ),
        ),
        "convective peak too small"
    );
    // Our substitute computes *equilibrium* CN-layer radiation; the paper's
    // Ref. 15 environment included the nonequilibrium excitation overshoot
    // that raises the radiative pulse toward parity with convection. The
    // dual-pulse structure and the ordering of the peaks are the
    // reproducible shape (see EXPERIMENTS.md E2).
    assert!(
        report.check(
            "radiation_registers",
            peak_rad > 0.005 * peak_conv.q_conv,
            format!(
                "q_rad/q_conv peak ratio = {:.4}",
                peak_rad / peak_conv.q_conv
            ),
        ),
        "radiation must register at 12 km/s: ratio = {:.4}",
        peak_rad / peak_conv.q_conv
    );
    assert!(
        report.check(
            "radiative_peaks_no_later",
            peak_rad_t <= peak_conv.time + 1.0,
            format!(
                "t_rad = {peak_rad_t:.1} s, t_conv = {:.1} s",
                peak_conv.time
            ),
        ),
        "radiative pulse should peak no later than convective (V^8 vs V^3 weighting)"
    );
    report.finish();
    println!("PASS: dual heating-pulse structure reproduced (paper Fig. 2)");
}
