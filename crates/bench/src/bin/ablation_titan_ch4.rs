//! Physics-ablation study: Titan atmospheric CH₄ fraction vs the CN-layer
//! radiative environment.
//!
//! In the pre-Voyager era the Titan CH₄ abundance was uncertain by factors
//! of several — and the paper's Ref. 15 probe environment hinges on the CN
//! produced from it. This study sweeps the freestream CH₄ mole fraction at
//! the Fig. 3 peak-heating condition and reports the shock-layer CN content
//! and the radiative/convective wall fluxes.
//!
//! Checks: CN (and with it the radiative flux) grows monotonically with the
//! CH₄ fraction while convective heating stays nearly unchanged — the
//! reason the composition uncertainty mattered for TPS design.

use aerothermo_bench::{emit, output_mode, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::titan_equilibrium;
use aerothermo_solvers::vsl::{solve, VslProblem};

fn main() {
    aerothermo_bench::cli::announce("ablation_titan_ch4");
    let mode = output_mode();
    let mut report = Report::new("ablation_titan_ch4");
    let fractions = [0.02, 0.04, 0.06, 0.08];
    let mut table = Table::new(&[
        "x_CH4",
        "CN_peak_molefrac",
        "q_conv_W_cm2",
        "q_rad_thin_W_cm2",
        "delta_cm",
    ]);
    let mut results = Vec::new();
    for &xm in &fractions {
        let gas = titan_equilibrium(xm);
        let problem = VslProblem {
            u_inf: 10_100.0,
            rho_inf: 4.6e-4,
            t_inf: 165.0,
            nose_radius: 0.6,
            t_wall: 1800.0,
            n_points: 44,
            radiating: true,
        };
        let sol = solve(&gas, &problem).expect("VSL solve");
        let cn_max = sol
            .species_profile("CN")
            .iter()
            .map(|(_, x)| *x)
            .fold(0.0, f64::max);
        results.push((xm, cn_max, sol.q_conv, sol.q_rad_thin, sol.standoff));
        table.row(&[
            format!("{xm:.2}"),
            format!("{cn_max:.3e}"),
            format!("{:.1}", sol.q_conv / 1e4),
            format!("{:.1}", sol.q_rad_thin / 1e4),
            format!("{:.2}", sol.standoff * 100.0),
        ]);
    }
    emit(
        "Physics ablation: Titan CH4 abundance vs CN-layer environment",
        &table,
        mode,
    );

    // --- Checks ----------------------------------------------------------------
    let cn_monotone = results.windows(2).all(|w| w[1].1 > w[0].1);
    let rad_no_collapse = results.windows(2).all(|w| w[1].3 >= 0.8 * w[0].3);
    for w in results.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "CN must grow with CH4: {:.3e} -> {:.3e}",
            w[0].1,
            w[1].1
        );
        assert!(
            w[1].3 >= 0.8 * w[0].3,
            "radiative flux should not collapse with more CH4"
        );
    }
    report.check(
        "cn_grows_with_ch4",
        cn_monotone,
        format!(
            "CN peak {:.3e} -> {:.3e}",
            results[0].1,
            results[results.len() - 1].1
        ),
    );
    report.check(
        "rad_no_collapse",
        rad_no_collapse,
        "q_rad_thin never drops below 0.8x",
    );
    let (_, _, q_conv_lo, q_rad_lo, _) = results[0];
    let (_, _, q_conv_hi, q_rad_hi, _) = results[results.len() - 1];
    let conv_change = (q_conv_hi / q_conv_lo - 1.0).abs();
    let rad_change = q_rad_hi / q_rad_lo;
    report.metric("conv_change_frac", conv_change);
    report.metric("rad_growth_ratio", rad_change);
    println!(
        "CH4 2% → 8%: convective changes {:.0}%, radiative grows {rad_change:.2}×",
        conv_change * 100.0
    );
    assert!(
        report.check(
            "convective_composition_insensitive",
            conv_change < 0.30,
            format!("conv change = {:.1}% (require < 30%)", conv_change * 100.0),
        ),
        "convective heating should be composition-insensitive: {conv_change}"
    );
    assert!(
        report.check(
            "radiative_ch4_sensitive",
            rad_change > 1.5,
            format!("rad growth = {rad_change:.2}x (require > 1.5x)"),
        ),
        "radiative environment must be CH4-sensitive: {rad_change}"
    );
    report.finish();
    println!("PASS: CH4-abundance sensitivity of the Titan radiative environment measured");
}
