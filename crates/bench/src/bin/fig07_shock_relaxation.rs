//! Fig. 7 — Flowfield structure behind a strong normal shock for
//! two-temperature dissociating and ionizing air (after Park, the paper's
//! Ref. 22).
//!
//! Shock-tube condition: V = 10 km/s into 0.1 torr air. The frozen shock
//! leaves translation near 48 000 K and vibration at the freestream 300 K;
//! Park kinetics and Millikan-White/Park relaxation then drive both toward
//! the common equilibrium near 9 000–10 000 K over a few centimeters.
//!
//! Shape checks (the figure's content): T starts ≫ T_v and both converge;
//! O₂ dissociates first, then N₂; NO spikes and decays; ionization rises
//! with T_v; the relaxation completes within the plotted distance.

use aerothermo_bench::{emit, max_retries, output_mode, shock_tube_fig7_condition, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::equilibrium::air9_equilibrium;
use aerothermo_gas::kinetics::park_air9;
use aerothermo_gas::relaxation::RelaxationModel;
use aerothermo_solvers::shock1d::{solve_with_retry, RelaxationProblem};

fn main() {
    aerothermo_bench::cli::announce("fig07_shock_relaxation");
    let mode = output_mode();
    let mut report = Report::new("fig07_shock_relaxation");
    let (u1, t1, p1) = shock_tube_fig7_condition();
    let gas = air9_equilibrium();
    let set = park_air9(gas.mixture());
    let relax = RelaxationModel::new(gas.mixture().clone());
    let mut y1 = vec![0.0; gas.mixture().len()];
    y1[0] = 0.767;
    y1[1] = 0.233;
    let problem = RelaxationProblem {
        u1,
        t1,
        p1,
        y1,
        x_end: 0.05,
    };
    // Single-shot march under the shared retry policy: a recoverable
    // integration failure reruns with smaller adaptive steps.
    let retry = solve_with_retry(&set, &relax, &problem, max_retries()).expect("relaxation march");
    report.metric("relaxation.retries", retry.retries as f64);
    report.metric("relaxation.final_step_scale", retry.final_scale);
    let sol = retry.value;

    println!(
        "frozen post-shock T = {:.0} K; {} stations to x = {:.0} mm",
        sol.t_frozen,
        sol.points.len(),
        problem.x_end * 1000.0
    );

    let mut table = Table::new(&[
        "x_mm", "T_K", "Tv_K", "u_m_s", "x_N2", "x_O2", "x_NO", "x_N", "x_O", "x_e",
    ]);
    // Log-spaced sampling to capture the near-shock structure.
    let mut targets = vec![0.0];
    let mut x = 2e-6;
    while x < problem.x_end {
        targets.push(x);
        x *= 1.6;
    }
    targets.push(problem.x_end);
    for xt in targets {
        let p = sol.at(xt);
        table.row(&[
            format!("{:.4}", p.x * 1000.0),
            format!("{:.0}", p.t),
            format!("{:.0}", p.tv),
            format!("{:.0}", p.u),
            format!("{:.3}", p.x_mole[0]),
            format!("{:.4}", p.x_mole[1]),
            format!("{:.4}", p.x_mole[2]),
            format!("{:.3}", p.x_mole[3]),
            format!("{:.3}", p.x_mole[4]),
            format!("{:.2e}", p.x_mole[8]),
        ]);
    }
    emit(
        "Fig. 7: two-temperature relaxation behind a 10 km/s shock (0.1 torr)",
        &table,
        mode,
    );

    // --- Shape checks -------------------------------------------------------
    let first = &sol.points[1];
    let last = sol.points.last().unwrap();
    report.metric("t_frozen_k", sol.t_frozen);
    report.metric("t_final_k", last.t);
    report.metric("tv_final_k", last.tv);
    assert!(
        report.check(
            "frozen_shock_hot",
            sol.t_frozen > 40_000.0,
            format!("T_frozen = {:.0} K", sol.t_frozen)
        ),
        "frozen T = {}",
        sol.t_frozen
    );
    assert!(
        report.check(
            "tv_starts_cold",
            first.tv < 2_000.0,
            format!("Tv(0+) = {:.0} K", first.tv)
        ),
        "Tv starts cold"
    );
    assert!(
        report.check(
            "temperatures_merge",
            (last.t - last.tv).abs() < 0.15 * last.t,
            format!("T = {:.0} K vs Tv = {:.0} K", last.t, last.tv),
        ),
        "T and Tv must merge: {} vs {}",
        last.t,
        last.tv
    );
    assert!(
        report.check(
            "equilibrium_plateau",
            last.t > 7_000.0 && last.t < 13_000.0,
            format!("T_eq = {:.0} K", last.t),
        ),
        "equilibrium plateau out of class: {}",
        last.t
    );
    // O2 gone before N2 half-dissociates.
    let x_when = |pred: &dyn Fn(&aerothermo_solvers::shock1d::RelaxationPoint) -> bool| {
        sol.points.iter().find(|p| pred(p)).map(|p| p.x)
    };
    let x_o2_gone = x_when(&|p| p.x_mole[1] < 0.01).expect("O2 must dissociate");
    let x_n2_half = x_when(&|p| p.x_mole[0] < 0.35).expect("N2 must dissociate");
    assert!(
        report.check(
            "o2_dissociates_first",
            x_o2_gone < x_n2_half,
            format!("x(O2 gone) = {x_o2_gone:.2e} m, x(N2 half) = {x_n2_half:.2e} m"),
        ),
        "O2 ({x_o2_gone:.2e} m) must precede N2 ({x_n2_half:.2e} m)"
    );
    // NO overshoot: max well above the final value.
    let no_max = sol.points.iter().map(|p| p.x_mole[2]).fold(0.0, f64::max);
    assert!(
        report.check(
            "no_overshoot",
            no_max > 3.0 * last.x_mole[2],
            format!("peak x_NO = {no_max:.3e} vs final {:.3e}", last.x_mole[2]),
        ),
        "NO spike: {no_max} vs {}",
        last.x_mole[2]
    );
    // Ionization grows monotonically to a finite level.
    assert!(
        report.check(
            "ionization_registers",
            last.x_mole[8] > 1e-4,
            format!("x_e(final) = {:.3e}", last.x_mole[8]),
        ),
        "electron fraction: {}",
        last.x_mole[8]
    );
    report.finish();
    println!("PASS: Fig. 7 relaxation structure reproduced");
}
