//! Fig. 5 — Space Shuttle Orbiter geometry (after Prabhu & Tannehill, the
//! paper's Ref. 20).
//!
//! The paper's figure shows the Orbiter geometry used in the numerical
//! simulations. Our reproduction generates the windward-plane *equivalent
//! axisymmetric body* used by the Fig. 4 and Fig. 6 benches at both
//! attitudes (α = 30° and α = 40°) and reports its generator coordinates,
//! local body angle, and curvature scale, together with the reference
//! Orbiter dimensions the equivalence preserves.

use aerothermo_bench::{emit, orbiter_equivalent_body, output_mode, Report};
use aerothermo_core::tables::Table;
use aerothermo_grid::bodies::Body;

fn main() {
    aerothermo_bench::cli::announce("fig05_geometry");
    let mode = output_mode();
    let mut report = Report::new("fig05_geometry");

    let mut reference = Table::new(&["quantity", "value"]);
    for (k, v) in [
        ("orbiter length", "32.8 m"),
        ("orbiter wing span", "23.8 m"),
        ("effective nose radius (windward)", "1.3 m"),
        ("fig. 4 attitude", "alpha = 30 deg"),
        ("fig. 6 attitude", "alpha = 40 deg"),
        ("equivalent body", "hyperboloid, asymptote = alpha - 5 deg"),
    ] {
        reference.row(&[k.to_string(), v.to_string()]);
    }
    emit(
        "Fig. 5: Orbiter reference data and equivalence",
        &reference,
        mode,
    );

    for alpha in [30.0, 40.0] {
        let body = orbiter_equivalent_body(alpha);
        let mut table = Table::new(&["s_over_L", "x_m", "r_m", "body_angle_deg"]);
        let smax = body.arc_length();
        for k in 0..=20 {
            let s = smax * f64::from(k) / 20.0;
            let (x, r) = body.point(s);
            table.row(&[
                format!("{:.2}", s / smax),
                format!("{x:.3}"),
                format!("{r:.3}"),
                format!("{:.2}", body.body_angle(s).to_degrees()),
            ]);
        }
        emit(
            &format!("Fig. 5: equivalent-body generator at alpha = {alpha} deg"),
            &table,
            mode,
        );

        // Checks: nose curvature and asymptotic angle.
        let (x1, r1) = body.point(0.01 * smax.min(1.0));
        let r_expect = (2.0 * body.nose_radius() * x1).sqrt();
        assert!(
            report.check(
                &format!("nose_parabola_alpha{alpha:.0}"),
                (r1 - r_expect).abs() / r_expect < 0.05,
                format!("r = {r1:.4} m vs parabola {r_expect:.4} m"),
            ),
            "nose parabola violated: {r1} vs {r_expect}"
        );
        let tail_angle = body.body_angle(smax * 0.99).to_degrees();
        assert!(
            report.check(
                &format!("asymptote_angle_alpha{alpha:.0}"),
                (tail_angle - (alpha - 5.0)).abs() < 3.0,
                format!(
                    "tail angle {tail_angle:.2} deg vs target {:.1} deg",
                    alpha - 5.0
                ),
            ),
            "asymptote {tail_angle} vs {}",
            alpha - 5.0
        );
    }
    report.finish();
    println!("PASS: equivalent-body geometry generated (paper Fig. 5)");
}
