//! Fig. 4 — Bow-shock shape over the Shuttle Orbiter, reacting gas vs
//! ideal gas (after Rakich, Bailey & Park — the paper's Ref. 16).
//!
//! Condition: V∞ = 6.7 km/s at 65.5 km altitude. The Orbiter windward
//! pitch plane is represented by its equivalent axisymmetric hyperboloid
//! (the same reduction the surveyed codes used; DESIGN.md §2). The Euler
//! solver is run twice on the same grid: once with the tabulated
//! equilibrium-air EOS ("REACTING GAS") and once with the calorically
//! perfect γ = 1.4 gas ("IDEAL GAS"); the captured bow-shock trace in the
//! pitch plane is reported versus axial distance.
//!
//! Shape check (the figure's message): the reacting-gas shock lies
//! substantially closer to the body — the real-gas density ratio (~12 vs 6)
//! halves the standoff.

use aerothermo_bench::{
    emit, orbiter_equivalent_body, orbiter_fig4_condition, output_mode, run_options, Report,
};
use aerothermo_core::tables::Table;
use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::{GasModel, IdealGas};
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::runctl::run_controlled;

struct ShockTrace {
    x: Vec<f64>,
    r_body: Vec<f64>,
    r_shock: Vec<f64>,
    standoff: f64,
}

fn run_case(
    gas: &dyn GasModel,
    grid: &StructuredGrid,
    fs: (f64, f64, f64, f64),
    report: &mut Report,
    label: &str,
) -> ShockTrace {
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 500,
        ..EulerOptions::default()
    };
    let nominal_cfl = opts.cfl;
    let startup = opts.startup_steps;
    let mut solver = EulerSolver::new(grid, gas, bc, opts, fs);
    // The run controller owns the outer loop: checkpoint ring + rollback on
    // divergence, with `--checkpoint`/`--restart`/`--max-retries` wired in
    // (per-case restart files, keyed by `label`).
    let run_opts = run_options(label, 6000, 5e-3, startup);
    let outcome = run_controlled(&mut solver, &run_opts).expect("stable Euler run");
    eprintln!(
        "#   converged in {} steps (residual ratio {:.2e}, {} rollbacks)",
        outcome.units, outcome.ratio, outcome.rollbacks
    );
    report.record_run_outcome(label, &outcome, nominal_cfl);
    if outcome.halted {
        // Defer the halt exit to the caller via the report path: fig04 runs
        // two cases, so a mid-run halt stops at the first affected case.
        eprintln!("#   halted mid-run (--halt-after)");
        std::process::exit(aerothermo_bench::HALT_EXIT_CODE);
    }
    report.absorb_telemetry(label, &solver.telemetry);

    let m = solver.grid_metrics();
    let mut x = Vec::new();
    let mut r_body = Vec::new();
    let mut r_shock = Vec::new();
    for i in 0..solver.nci() {
        if let Some(j) = solver.shock_index(i, fs.0, 1.5) {
            x.push(m.xc[(i, j)]);
            r_body.push(m.rc[(i, 0)]);
            r_shock.push(m.rc[(i, j)]);
        }
    }
    let standoff = solver.standoff(fs.0).unwrap_or(f64::NAN);
    ShockTrace {
        x,
        r_body,
        r_shock,
        standoff,
    }
}

fn main() {
    aerothermo_bench::cli::announce("fig04_shock_shape");
    let mode = output_mode();
    let mut report = Report::new("fig04_shock_shape");
    let (rho, v, p, t) = orbiter_fig4_condition();
    eprintln!("# freestream: rho = {rho:.3e} kg/m³, V = {v} m/s, p = {p:.3} Pa, T = {t:.1} K");
    let fs = (rho, v, 0.0, p);

    let body = orbiter_equivalent_body(30.0); // Fig. 4 is the α = 30° case
    let dist = stretch::uniform(55);
    let grid = StructuredGrid::blunt_body(&body, 41, 55, &|sb| 0.9 + 4.5 * sb, &dist);

    eprintln!("# reacting (equilibrium air) case:");
    let table_eq = air9_table();
    let reacting = run_case(table_eq, &grid, fs, &mut report, "euler_reacting");

    eprintln!("# ideal gas (γ = 1.4) case:");
    let ideal = IdealGas::air();
    let ideal_trace = run_case(&ideal, &grid, fs, &mut report, "euler_ideal");

    let mut table = Table::new(&["x_m", "r_body_m", "r_shock_reacting_m", "r_shock_ideal_m"]);
    let npts = reacting.x.len().min(ideal_trace.x.len());
    for k in (0..npts).step_by(2) {
        table.row(&[
            format!("{:.2}", reacting.x[k]),
            format!("{:.3}", reacting.r_body[k]),
            format!("{:.3}", reacting.r_shock[k]),
            format!("{:.3}", ideal_trace.r_shock[k]),
        ]);
    }
    emit("Fig. 4: bow-shock shape in the pitch plane", &table, mode);

    println!(
        "stagnation standoff: reacting = {:.3} m, ideal = {:.3} m (ratio {:.2})",
        reacting.standoff,
        ideal_trace.standoff,
        reacting.standoff / ideal_trace.standoff
    );

    // --- Shape checks -------------------------------------------------------
    report.metric("standoff_reacting_m", reacting.standoff);
    report.metric("standoff_ideal_m", ideal_trace.standoff);
    assert!(
        report.check(
            "reacting_standoff_compressed",
            reacting.standoff < 0.8 * ideal_trace.standoff,
            format!(
                "reacting {:.3} m vs ideal {:.3} m",
                reacting.standoff, ideal_trace.standoff
            ),
        ),
        "reacting shock must sit much closer to the body: {} vs {}",
        reacting.standoff,
        ideal_trace.standoff
    );
    // Downstream, the reacting shock stays inside the ideal shock.
    let mut inside = 0usize;
    for k in 0..npts {
        if reacting.r_shock[k] <= ideal_trace.r_shock[k] + 1e-6 {
            inside += 1;
        }
    }
    assert!(
        report.check(
            "reacting_layer_thinner_downstream",
            inside as f64 > 0.85 * npts as f64,
            format!("{inside}/{npts} stations inside the ideal shock"),
        ),
        "reacting shock layer must be thinner along the body ({inside}/{npts})"
    );
    report.finish();
    println!("PASS: real-gas shock-shape compression reproduced (paper Fig. 4)");
}
