//! Fig. 3 — Chemical species profiles along the stagnation streamline of a
//! Titan entry probe at peak heating (the paper's Ref. 15, RASLE solution).
//!
//! The radiating stagnation-line VSL is solved in thermochemical
//! equilibrium for an N₂/CH₄ Titan atmosphere at the 12 km/s entry's
//! peak-heating condition, and the equilibrium composition is reported
//! across the shock layer as mole fraction vs y/δ — the coordinates of the
//! paper's figure (its δ was 2.24 cm).
//!
//! Shape checks: N₂ dominates everywhere; CN/H/C₂ appear as minor species
//! with maxima inside the layer; CH₄ is destroyed (absent at any
//! significant level); the wall-adjacent cool layer recombines.

use aerothermo_bench::{emit, max_retries, output_mode, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::titan_equilibrium;
use aerothermo_solvers::vsl::{solve_with_retry, VslProblem};

fn main() {
    aerothermo_bench::cli::announce("fig03_species_profiles");
    let mode = output_mode();
    let mut report = Report::new("fig03_species_profiles");
    let gas = titan_equilibrium(0.05);
    // Peak-heating condition of the 12 km/s entry (from the Fig. 2
    // trajectory: V ≈ 10.1 km/s at ρ∞ ≈ 4.6e-4 kg/m³).
    let problem = VslProblem {
        u_inf: 10_100.0,
        rho_inf: 4.6e-4,
        t_inf: 165.0,
        nose_radius: 0.6,
        t_wall: 1800.0,
        n_points: 56,
        radiating: true,
    };
    // Single-shot stagnation solve under the shared retry policy: a
    // recoverable failure reruns with reduced under-relaxation.
    let retry = solve_with_retry(&gas, &problem, max_retries()).expect("VSL solve");
    report.metric("vsl.retries", retry.retries as f64);
    report.metric("vsl.final_relax_scale", retry.final_scale);
    let sol = retry.value;

    println!(
        "shock standoff δ = {:.2} cm (paper: 2.24 cm), T_edge = {:.0} K, p_stag = {:.3e} Pa",
        sol.standoff * 100.0,
        sol.t_edge,
        sol.p_stag
    );
    println!(
        "q_conv = {:.1} W/cm², q_rad(thin) = {:.1} W/cm²",
        sol.q_conv / 1e4,
        sol.q_rad_thin / 1e4
    );

    let species = ["N2", "H2", "H", "CN", "HCN", "C2", "N", "C"];
    let mut table = Table::new(&[
        "y_over_delta",
        "T_K",
        "N2",
        "H2",
        "H",
        "CN",
        "HCN",
        "C2",
        "N",
        "C",
    ]);
    let profiles: Vec<Vec<(f64, f64)>> = species.iter().map(|s| sol.species_profile(s)).collect();
    for (k, st) in sol.stations.iter().enumerate() {
        if k % 2 != 0 {
            continue;
        }
        let mut row = vec![
            format!("{:.3}", st.y / sol.standoff),
            format!("{:.0}", st.temperature),
        ];
        for p in &profiles {
            row.push(format!("{:.2e}", p[k].1));
        }
        table.row(&row);
    }
    emit(
        "Fig. 3: species mole fractions on the stagnation line at peak heating",
        &table,
        mode,
    );

    // --- Shape checks ------------------------------------------------------
    let max_of = |name: &str| -> f64 {
        sol.species_profile(name)
            .iter()
            .map(|(_, x)| *x)
            .fold(0.0, f64::max)
    };
    // At 51 MJ/kg total enthalpy the equilibrium outer layer is atomic-N
    // dominated (full dissociation costs only ~34 MJ/kg of N2); molecular
    // nitrogen recovers in the cool wall region. RASLE's layer, with its
    // much stronger self-consistent radiative cooling, stays more
    // molecular — see EXPERIMENTS.md E3 for the deviation discussion.
    let n2_wall = sol.species_profile("N2")[1].1;
    assert!(
        report.check(
            "n2_dominates_wall",
            n2_wall > 0.5,
            format!("x_N2(wall) = {n2_wall:.3}")
        ),
        "N2 must dominate at the cool wall: {n2_wall}"
    );
    let n_edge = sol.species_profile("N").last().unwrap().1;
    assert!(
        report.check(
            "atomic_n_hot_edge",
            n_edge > 0.3,
            format!("x_N(edge) = {n_edge:.3}")
        ),
        "atomic N dominates the hot edge: {n_edge}"
    );
    let cn_max = max_of("CN");
    assert!(
        report.check(
            "cn_minor_species_band",
            cn_max > 1e-4 && cn_max < 0.2,
            format!("peak x_CN = {cn_max:.3e}"),
        ),
        "CN minor-species band: {cn_max}"
    );
    let h_max = max_of("H");
    assert!(
        report.check(
            "h_from_ch4_cracking",
            h_max > 1e-3,
            format!("peak x_H = {h_max:.3e}")
        ),
        "atomic H from CH4 cracking: {h_max}"
    );
    let ch4_like = max_of("CH4");
    assert!(
        report.check(
            "ch4_destroyed",
            ch4_like < 1e-3,
            format!("peak x_CH4 = {ch4_like:.3e}")
        ),
        "CH4 must be destroyed in the hot layer"
    );
    // δ in the paper's few-centimeter class.
    assert!(
        report.check(
            "standoff_centimeter_class",
            sol.standoff > 0.005 && sol.standoff < 0.08,
            format!("δ = {:.2} cm (paper: 2.24 cm)", sol.standoff * 100.0),
        ),
        "δ = {} m out of class",
        sol.standoff
    );
    report.metric("standoff_m", sol.standoff);
    report.metric("t_edge_k", sol.t_edge);
    report.metric("q_conv_w_m2", sol.q_conv);
    report.metric("q_rad_thin_w_m2", sol.q_rad_thin);
    report.absorb_telemetry("vsl", &sol.telemetry);
    report.finish();
    println!("PASS: Fig. 3 species-profile structure reproduced");
}
