//! `sweep` — batched case-sweep driver over the paper's solver hierarchy.
//!
//! Runs a [`aerothermo_sweep::SweepPlan`] (from `--plan=PATH`, or a preset:
//! `--fig02-titan` builds the Titan trajectory heat-pulse plan,
//! `--fig10-matrix` the four-method cost matrix) on a bounded worker pool
//! with per-case fault isolation, appending one JSONL record per case to
//! the result store (`--out=PATH`) as it lands. `--resume` skips cases an
//! existing store already completed; `--emit-plan=PATH` writes the selected
//! plan as JSON and exits so it can be edited and fed back via `--plan`.
//!
//! Failed cases degrade to records and the exit code stays 0 unless
//! `--strict` is passed (then a non-green sweep exits 4).
//!
//! # Distributed sharding
//!
//! `--shard=i/n` runs only shard `i` of an `n`-way deterministic plan
//! partition (`--shard-strategy=round_robin|cost_balanced`) into a
//! shard-stamped store (`<out>-shard{i}of{n}.jsonl`); any process
//! computes the same partition from the plan alone, so shards need no
//! coordination. `sweep federate --plan=... STORE...` then merges the
//! shard stores back into the canonical plan-order store, reporting
//! gaps/overlaps/torn tails (under `--strict`, an incomplete federation
//! exits 4).

use aerothermo_atmosphere::planets::ExponentialAtmosphere;
use aerothermo_atmosphere::trajectory::{fly, EntryConditions, StopConditions, Vehicle};
use aerothermo_bench::{cli, emit};
use aerothermo_core::tables::Table;
use aerothermo_sweep::plan::{method_matrix_plan, titan_fig02_plan};
use aerothermo_sweep::shard::{federate_to_store, shard_plan, shard_store_path, ShardSpec};
use aerothermo_sweep::{run_sweep, ScheduleOrder, ShardStrategy, SweepOptions, SweepPlan};

/// The Fig. 2 Titan entry, flown to trajectory points for the preset plan.
fn titan_trajectory_plan() -> SweepPlan {
    let atm = ExponentialAtmosphere::titan();
    let vehicle = Vehicle::titan_probe();
    let traj = fly(
        &atm,
        &vehicle,
        EntryConditions {
            altitude: 450_000.0,
            velocity: 12_000.0,
            gamma: -32f64.to_radians(),
        },
        StopConditions {
            min_velocity: 1_000.0,
            ..StopConditions::default()
        },
    );
    titan_fig02_plan(&traj, 8, vehicle.nose_radius)
}

fn select_plan() -> Result<SweepPlan, String> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = cli::plan_path() {
        return SweepPlan::load(&path).map_err(|e| e.to_string());
    }
    if args.iter().any(|a| a == "--fig02-titan") {
        return Ok(titan_trajectory_plan());
    }
    if args.iter().any(|a| a == "--fig10-matrix") {
        return Ok(method_matrix_plan());
    }
    Err("no plan selected: pass --plan=PATH, --fig02-titan, or --fig10-matrix".to_string())
}

/// The `--shard=i/n` slice (with `--shard-strategy`), if requested.
fn select_shard() -> Result<Option<ShardSpec>, String> {
    let strategy = match cli::shard_strategy() {
        Some(s) => ShardStrategy::parse(&s).map_err(|e| e.to_string())?,
        None => ShardStrategy::default(),
    };
    match cli::shard() {
        Some(s) => ShardSpec::parse(&s, strategy)
            .map(Some)
            .map_err(|e| e.to_string()),
        None => Ok(None),
    }
}

/// `sweep federate --plan=... [--out=PATH] SHARD_STORE...` — merge shard
/// stores into the canonical store and report. Never returns.
fn run_federate() -> ! {
    let plan = match select_plan() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep federate: {e}");
            std::process::exit(2);
        }
    };
    let shard_paths: Vec<String> = std::env::args()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if shard_paths.is_empty() {
        eprintln!("sweep federate: no shard stores given (pass one path per shard)");
        std::process::exit(2);
    }
    let out = cli::sweep_store_path(&plan.name);
    let report = match federate_to_store(&plan, &shard_paths, &out) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep federate: {e}");
            std::process::exit(2);
        }
    };
    println!("{}", report.summary());
    println!("canonical store written to {out}");
    if let Some(path) = cli::report_path() {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("sweep federate: writing report '{path}': {e}");
            std::process::exit(2);
        }
        eprintln!("# federation report written to {path}");
    }
    if !report.complete() {
        eprintln!(
            "# warning: federation incomplete ({} gap(s), {} unknown id(s))",
            report.gaps.len(),
            report.unknown_ids.len()
        );
        if cli::strict() {
            std::process::exit(aerothermo_sweep::report::STRICT_EXIT_CODE);
        }
    }
    std::process::exit(0);
}

fn main() {
    cli::announce("sweep");
    if std::env::args().nth(1).as_deref() == Some("federate") {
        run_federate();
    }
    let full_plan = match select_plan() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        }
    };
    let shard = match select_shard() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        }
    };
    let plan = match &shard {
        Some(spec) => match shard_plan(&full_plan, spec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("sweep: {e}");
                std::process::exit(2);
            }
        },
        None => full_plan,
    };

    if let Some(path) = cli::emit_plan() {
        plan.save(&path).unwrap_or_else(|e| {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        });
        println!(
            "plan '{}' ({} cases) written to {path}",
            plan.name,
            plan.cases.len()
        );
        return;
    }

    let strict = cli::strict();
    // Sharded runs stamp the store and events paths so n shards of the
    // same plan never collide on one file.
    let stamp = |base: String| match &shard {
        Some(spec) => shard_store_path(&base, spec),
        None => base,
    };
    let opts = SweepOptions {
        workers: cli::workers(),
        order: ScheduleOrder::CheapestFirst,
        store_path: Some(stamp(cli::sweep_store_path(&plan.name))),
        resume: cli::resume(),
        default_timeout_secs: cli::timeout_secs(),
        halt_after_cases: cli::halt_after_cases(),
        events_path: cli::events_path(&plan.name).map(stamp),
        trace_base: cli::trace_path(),
        audit_every: cli::audit_cadence().unwrap_or(0),
        ..SweepOptions::default()
    };
    eprintln!(
        "# sweep '{}'{}: {} cases, {} workers, store {}",
        plan.name,
        shard.map_or_else(String::new, |s| format!(
            " shard {s} ({})",
            s.strategy.name()
        )),
        plan.cases.len(),
        opts.workers,
        opts.store_path.as_deref().unwrap_or("-")
    );
    if let Some(ev) = &opts.events_path {
        eprintln!("# lifecycle events streaming to {ev}");
    }

    let report = match run_sweep(&plan, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        }
    };

    let mut table = Table::new(&["case", "status", "wall_s", "retries", "q_W_cm2", "note"]);
    for o in &report.outcomes {
        let q = o
            .metric("q_stag_w_m2")
            .or_else(|| o.metric("q_conv_w_m2"))
            .map_or_else(|| "-".to_string(), |q| format!("{:.2}", q / 1e4));
        table.row(&[
            o.id.clone(),
            o.status.name().to_string(),
            format!("{:.3}", o.wall_secs),
            format!("{}", o.retries),
            q,
            o.error.clone().unwrap_or_else(|| o.note.clone()),
        ]);
    }
    emit(
        &format!("sweep '{}' outcomes", report.figure),
        &table,
        cli::output_mode(),
    );

    let counts = report.counts();
    println!(
        "{} planned / {} completed / {} resumed / {} failed / {} timed out in {:.2} s \
         ({:.2} cases/s, {} workers){}",
        report.planned,
        counts.completed,
        counts.resumed,
        counts.failed,
        counts.timed_out,
        report.elapsed_secs,
        report.throughput_cases_per_sec(),
        report.workers,
        if report.halted { " [halted]" } else { "" }
    );

    if let Some(path) = cli::report_path() {
        report.write(&path).unwrap_or_else(|e| {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        });
        eprintln!("# aggregate report written to {path}");
    }
    std::process::exit(report.exit_code(strict));
}
