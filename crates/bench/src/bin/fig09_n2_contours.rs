//! Fig. 9 — N₂ mole-fraction field for Mach-20 equilibrium-air flow over a
//! hemisphere at 20 km altitude (after Green, the paper's Ref. 26).
//!
//! The axisymmetric Navier-Stokes solver runs with the tabulated
//! equilibrium-air EOS; the captured bow shock and the dissociation field
//! are post-processed from the composition table into the contour levels
//! the paper plots (x_N2 = 0.50 … 0.75).
//!
//! Shape checks: the bow shock is captured at the real-gas standoff
//! (Δ/Rn ≈ 0.05–0.09, roughly half the ideal-gas value); N₂ is strongly
//! dissociated at the stagnation line but intact in the freestream; the
//! contour levels nest monotonically between shock and body.

use aerothermo_atmosphere::us76::Us76;
use aerothermo_atmosphere::Atmosphere;
use aerothermo_bench::{emit, output_mode, run_options, Report};
use aerothermo_core::tables::Table;
use aerothermo_gas::eq_table::air9_table;
use aerothermo_grid::bodies::Hemisphere;
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use aerothermo_solvers::runctl::run_controlled;

fn main() {
    aerothermo_bench::cli::announce("fig09_n2_contours");
    let mode = output_mode();
    let mut report = Report::new("fig09_n2_contours");
    let atm = Us76;
    let h = 20_000.0;
    let t_inf = atm.temperature(h);
    let p_inf = atm.pressure(h);
    let rho_inf = atm.density(h);
    let a_inf = atm.sound_speed(h);
    let v_inf = 20.0 * a_inf;
    eprintln!(
        "# M20 at 20 km: T = {t_inf:.1} K, p = {p_inf:.1} Pa, rho = {rho_inf:.4} kg/m³, V = {v_inf:.0} m/s"
    );

    let rn = 0.15; // hemisphere of the paper's validation class
    let body = Hemisphere::new(rn);
    let dist = stretch::tanh_one_sided(57, 2.2);
    let grid = StructuredGrid::blunt_body(&body, 31, 57, &|sb| (0.18 + 0.12 * sb) * rn, &dist);

    let table_eq = air9_table();
    let fs = (rho_inf, v_inf, 0.0, p_inf);
    let bc = BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    };
    let opts = EulerOptions {
        cfl: 0.35,
        startup_steps: 600,
        ..EulerOptions::default()
    };
    let nominal_cfl = opts.cfl;
    let startup = opts.startup_steps;
    let mut solver = NsSolver::new(&grid, table_eq, bc, opts, fs, Transport::air(), 2000.0);
    // Controller-owned outer loop: rollback on divergence plus the shared
    // `--checkpoint`/`--restart`/`--max-retries` flags.
    let run_opts = run_options("fig09_n2_contours", 9000, 1e-3, startup);
    let outcome = run_controlled(&mut solver, &run_opts).expect("stable NS run");
    eprintln!(
        "# converged in {} steps (residual ratio {:.2e}, {} rollbacks)",
        outcome.units, outcome.ratio, outcome.rollbacks
    );
    report.record_run_outcome("ns_m20", &outcome, nominal_cfl);
    if outcome.halted {
        eprintln!("# halted mid-run (--halt-after); resume with --restart");
        report.finish();
        std::process::exit(aerothermo_bench::HALT_EXIT_CODE);
    }
    report.absorb_telemetry("ns_m20", &solver.inviscid.telemetry);

    // N2 mole-fraction field along selected body-normal lines.
    let molar: Vec<f64> = table_eq
        .species_names()
        .iter()
        .map(|n| match n.as_str() {
            "N2" => 28.0134,
            "O2" => 31.9988,
            "NO" | "NO+" => 30.006,
            "N" | "N+" => 14.0067,
            "O" | "O+" => 15.9994,
            _ => 5.49e-4,
        })
        .collect();
    let x_n2_at = |i: usize, j: usize| -> f64 {
        let q = solver.inviscid.primitive(i, j);
        let e = solver.inviscid.internal_energy(i, j);
        let x = table_eq.mole_fractions(q.rho, e, &molar);
        x[0]
    };

    let m = solver.inviscid.grid_metrics();
    let mut table = Table::new(&["i_line", "y_over_rn", "T_K", "x_N2"]);
    for i in [0usize, 10, 20, 29] {
        for j in (0..solver.inviscid.ncj()).step_by(6) {
            let dx = m.xc[(i, j)] - m.xc[(i, 0)];
            let dr = m.rc[(i, j)] - m.rc[(i, 0)];
            let d = (dx * dx + dr * dr).sqrt();
            table.row(&[
                format!("{i}"),
                format!("{:.3}", d / rn),
                format!("{:.0}", solver.temperature(i, j)),
                format!("{:.3}", x_n2_at(i, j)),
            ]);
        }
    }
    emit(
        "Fig. 9: N2 mole fraction along body-normal lines",
        &table,
        mode,
    );

    // Contour-level crossings on the stagnation line (the paper's levels).
    let levels = [0.50, 0.55, 0.60, 0.65, 0.70, 0.75];
    let mut ctable = Table::new(&["contour_x_N2", "y_over_rn_at_stagnation_line"]);
    let ncj = solver.inviscid.ncj();
    for &lev in &levels {
        let mut y_cross = f64::NAN;
        for j in 1..ncj {
            let a = x_n2_at(0, j - 1);
            let b = x_n2_at(0, j);
            if (a - lev) * (b - lev) <= 0.0 && a != b {
                let f = (lev - a) / (b - a);
                let d = |jj: usize| -> f64 {
                    let dx = m.xc[(0, jj)] - m.xc[(0, 0)];
                    let dr = m.rc[(0, jj)] - m.rc[(0, 0)];
                    (dx * dx + dr * dr).sqrt()
                };
                y_cross = (d(j - 1) + f * (d(j) - d(j - 1))) / rn;
                break;
            }
        }
        ctable.row(&[format!("{lev:.2}"), format!("{y_cross:.4}")]);
    }
    emit(
        "Fig. 9: contour-level crossings (stagnation line)",
        &ctable,
        mode,
    );

    // --- Shape checks -------------------------------------------------------
    let standoff = solver
        .inviscid
        .standoff(rho_inf)
        .expect("shock not captured");
    let d_ratio = standoff / rn;
    println!("shock standoff Δ/Rn = {d_ratio:.3}");
    report.metric("standoff_over_rn", d_ratio);
    assert!(
        report.check(
            "real_gas_standoff_class",
            d_ratio > 0.03 && d_ratio < 0.14,
            format!("Δ/Rn = {d_ratio:.3}"),
        ),
        "real-gas standoff class violated: {d_ratio}"
    );
    // Stagnation-region dissociation: N2 well below freestream level.
    let x_n2_stag = x_n2_at(0, 0);
    println!("stagnation-point x_N2 = {x_n2_stag:.3}");
    report.metric("x_n2_stagnation", x_n2_stag);
    assert!(
        report.check(
            "n2_dissociated_at_stagnation",
            x_n2_stag < 0.55,
            format!("x_N2(stag) = {x_n2_stag:.3}"),
        ),
        "N2 must dissociate at M20: {x_n2_stag}"
    );
    // Freestream side intact.
    let x_n2_free = x_n2_at(0, ncj - 1);
    assert!(
        report.check(
            "freestream_n2_intact",
            x_n2_free > 0.74,
            format!("x_N2(freestream) = {x_n2_free:.3}"),
        ),
        "freestream N2: {x_n2_free}"
    );
    // Monotone nesting of the contour crossings.
    let mut prev = -1.0;
    let mut nested = true;
    for &lev in &levels {
        let mut y_cross = f64::NAN;
        for j in 1..ncj {
            let a = x_n2_at(0, j - 1);
            let b = x_n2_at(0, j);
            if (a - lev) * (b - lev) <= 0.0 && a != b {
                y_cross = j as f64;
                break;
            }
        }
        if y_cross.is_finite() {
            nested = nested && y_cross >= prev;
            prev = y_cross;
        }
    }
    assert!(
        report.check(
            "contours_nest_outward",
            nested,
            "crossings monotone shock -> body"
        ),
        "contours must nest outward"
    );
    report.finish();
    println!("PASS: Fig. 9 dissociation field reproduced");
}
