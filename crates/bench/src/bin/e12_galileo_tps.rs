//! E12 — Galileo-probe TPS sizing pipeline (extension experiment).
//!
//! The paper's opening VSL application: "the axisymmetric HYVIS, RASLE and
//! COLTS codes were used to define the predominately radiative heating
//! environment of the Galileo probe … The ablative TPS for the probe was
//! sized based on computer predictions." This bench runs that pipeline end
//! to end on our own substrates:
//!
//! 1. fly a Galileo-class ballistic entry into an H₂/He Jupiter atmosphere
//!    (47.5 km/s entry — the fastest atmospheric entry ever flown),
//! 2. at anchor points along the pulse, solve the radiating stagnation-line
//!    VSL on the hydrogen/helium equilibrium gas,
//! 3. run spectral tangent-slab transport (H Lyman/Balmer lines) for the
//!    radiative wall flux,
//! 4. close the carbon-phenolic steady-ablation balance and integrate the
//!    recession over the pulse.
//!
//! Shape checks (the Galileo facts the paper leans on): the environment is
//! radiation-dominated at peak; the heat pulse is seconds wide; the
//! carbon-phenolic recession is in the centimeter class.

use aerothermo_atmosphere::planets::ExponentialAtmosphere;
use aerothermo_atmosphere::trajectory::{fly, EntryConditions, StopConditions, Vehicle};
use aerothermo_bench::{emit, output_mode, Report};
use aerothermo_core::ablation::{pulse_recession, steady_ablation, Ablator};
use aerothermo_core::tables::Table;
use aerothermo_gas::jupiter_equilibrium;
use aerothermo_solvers::vsl::{solve as vsl_solve, VslProblem};

fn main() {
    aerothermo_bench::cli::announce("e12_galileo_tps");
    let mode = output_mode();
    let mut report = Report::new("e12_galileo_tps");
    let atm = ExponentialAtmosphere::jupiter();
    // Galileo-class probe: 339 kg, 1.26 m diameter, Rn = 0.22 m.
    let probe = Vehicle {
        mass: 339.0,
        area: std::f64::consts::PI * 0.63 * 0.63,
        cd: 1.05,
        ld: 0.0,
        nose_radius: 0.22,
    };
    let traj = fly(
        &atm,
        &probe,
        EntryConditions {
            altitude: 450_000.0,
            velocity: 47_500.0,
            gamma: -8.5f64.to_radians(),
        },
        StopConditions {
            min_velocity: 3_000.0,
            max_time: 600.0,
            ..StopConditions::default()
        },
    );
    println!(
        "trajectory: {} points; final V = {:.1} km/s at h = {:.0} km",
        traj.len(),
        traj.last().unwrap().velocity / 1000.0,
        traj.last().unwrap().altitude / 1000.0
    );

    // Anchor the aerothermal environment at points spanning the pulse.
    let gas = jupiter_equilibrium(0.11);
    let peak_qdyn = traj
        .iter()
        .max_by(|a, b| {
            (a.density * a.velocity.powi(3)).total_cmp(&(b.density * b.velocity.powi(3)))
        })
        .unwrap();
    let anchors: Vec<&aerothermo_atmosphere::trajectory::TrajectoryPoint> = {
        let t_peak = peak_qdyn.time;
        [-14.0, -8.0, -4.0, 0.0, 4.0, 8.0, 14.0]
            .iter()
            .map(|dt| {
                traj.iter()
                    .min_by(|a, b| {
                        (a.time - (t_peak + dt))
                            .abs()
                            .total_cmp(&(b.time - (t_peak + dt)).abs())
                    })
                    .unwrap()
            })
            .collect()
    };

    let mut table = Table::new(&[
        "t_s",
        "V_km_s",
        "rho_kg_m3",
        "q_conv_kW_cm2",
        "q_rad_kW_cm2",
        "T_edge_K",
    ]);
    let mut pulse: Vec<(f64, f64, f64)> = Vec::new();
    let mut peak_conv = 0.0_f64;
    let mut peak_rad = 0.0_f64;
    for p in anchors {
        if p.velocity < 10_000.0 || p.density < 1e-8 {
            continue;
        }
        let problem = VslProblem {
            u_inf: p.velocity,
            rho_inf: p.density,
            t_inf: 165.0,
            nose_radius: probe.nose_radius,
            t_wall: 3600.0, // ablating carbon-phenolic surface
            n_points: 36,
            radiating: true,
        };
        match vsl_solve(&gas, &problem) {
            Ok(sol) => {
                // Wall-directed radiative flux: half the (optically thin)
                // volume emission — the tangent-slab thin limit.
                let q_rad = sol.q_rad_thin;
                let q_conv = sol.q_conv.max(0.0);
                peak_conv = peak_conv.max(q_conv);
                peak_rad = peak_rad.max(q_rad);
                let h0 = 0.5 * p.velocity * p.velocity;
                pulse.push((p.time, q_conv + q_rad, h0));
                table.row(&[
                    format!("{:.1}", p.time),
                    format!("{:.2}", p.velocity / 1000.0),
                    format!("{:.3e}", p.density),
                    format!("{:.2}", q_conv / 1e7),
                    format!("{:.2}", q_rad / 1e7),
                    format!("{:.0}", sol.t_edge),
                ]);
            }
            Err(e) => eprintln!("# anchor at t = {:.1}s skipped: {e}", p.time),
        }
    }
    emit(
        "E12: Galileo-probe stagnation environment (VSL + spectral slab)",
        &table,
        mode,
    );

    // TPS response.
    let ablator = Ablator::carbon_phenolic();
    let (recession, mass_loss) = pulse_recession(&ablator, &pulse);
    let peak_total = pulse.iter().map(|p| p.1).fold(0.0, f64::max);
    let at_peak = steady_ablation(&ablator, peak_total, 0.5 * 42.0e3 * 42.0e3);
    println!(
        "peak environment: q_conv = {:.1} kW/cm², q_rad = {:.1} kW/cm²",
        peak_conv / 1e7,
        peak_rad / 1e7
    );
    println!(
        "carbon-phenolic response at peak: ṁ = {:.2} kg/m²s, ṡ = {:.2} mm/s",
        at_peak.mdot,
        at_peak.recession_rate * 1000.0
    );
    println!(
        "pulse-integrated recession = {:.1} mm, mass loss = {:.1} kg/m²",
        recession * 1000.0,
        mass_loss
    );

    // --- Shape checks -------------------------------------------------------
    report.metric("peak_q_conv_w_m2", peak_conv);
    report.metric("peak_q_rad_w_m2", peak_rad);
    report.metric("recession_m", recession);
    report.metric("mass_loss_kg_m2", mass_loss);
    assert!(
        report.check(
            "anchors_across_pulse",
            pulse.len() >= 4,
            format!("{} anchors solved", pulse.len()),
        ),
        "need anchors across the pulse"
    );
    assert!(
        report.check(
            "radiation_dominated",
            peak_rad > peak_conv,
            format!("q_rad {peak_rad:.3e} vs q_conv {peak_conv:.3e} W/m²"),
        ),
        "Galileo environment must be radiation-dominated: {peak_rad:.3e} vs {peak_conv:.3e}"
    );
    assert!(
        report.check(
            "kw_cm2_class_radiation",
            peak_rad > 5e7,
            format!("peak q_rad = {peak_rad:.3e} W/m² (require > 5e7)"),
        ),
        "kW/cm²-class radiative heating expected: {peak_rad:.3e} W/m²"
    );
    assert!(
        report.check(
            "recession_centimeter_class",
            recession > 2e-3 && recession < 0.2,
            format!("recession = {:.1} mm", recession * 1000.0),
        ),
        "carbon-phenolic recession out of class: {recession} m"
    );
    report.finish();
    println!("PASS: Galileo radiative-dominated TPS pipeline reproduced (paper §VSL)");
}
