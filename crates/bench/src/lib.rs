//! Figure-regeneration harness for the paper's evaluation.
//!
//! One binary per figure of Deiwert & Green (NASA TM-89450); each prints
//! the figure's series as an aligned table (pass `--csv` for CSV) plus the
//! qualitative checks the reproduction asserts. The experiment index lives
//! in `DESIGN.md`; measured-vs-paper notes in `EXPERIMENTS.md`.
//!
//! Shared helpers: CLI parsing and standard flow conditions used by several
//! figures.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(clippy::needless_range_loop, clippy::excessive_precision, clippy::type_complexity)]


use aerothermo_core::tables::Table;

/// Output mode parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Aligned text tables.
    Text,
    /// CSV.
    Csv,
}

/// Parse `--csv` from the process arguments.
#[must_use]
pub fn output_mode() -> OutputMode {
    if std::env::args().any(|a| a == "--csv") {
        OutputMode::Csv
    } else {
        OutputMode::Text
    }
}

/// Print a table in the selected mode with a heading.
pub fn emit(title: &str, table: &Table, mode: OutputMode) {
    match mode {
        OutputMode::Text => {
            println!("\n== {title} ==");
            println!("{}", table.to_text());
        }
        OutputMode::Csv => {
            println!("# {title}");
            println!("{}", table.to_csv());
        }
    }
}

/// The paper's Fig. 4 flight condition: Shuttle Orbiter at V∞ = 6.7 km/s,
/// h = 65.5 km (US76), returned as `(rho, v, p, T)`.
#[must_use]
pub fn orbiter_fig4_condition() -> (f64, f64, f64, f64) {
    use aerothermo_atmosphere::us76::Us76;
    use aerothermo_atmosphere::Atmosphere;
    let atm = Us76;
    let h = 65_500.0;
    (atm.density(h), 6_700.0, atm.pressure(h), atm.temperature(h))
}

/// The paper's Fig. 6 flight condition: STS-3 at V∞ = 6.74 km/s,
/// h = 71.3 km, α = 40°; returned as `(rho, v, p, T)`.
#[must_use]
pub fn sts3_fig6_condition() -> (f64, f64, f64, f64) {
    use aerothermo_atmosphere::us76::Us76;
    use aerothermo_atmosphere::Atmosphere;
    let atm = Us76;
    let h = 71_300.0;
    (atm.density(h), 6_740.0, atm.pressure(h), atm.temperature(h))
}

/// The paper's Fig. 7/8 shock-tube condition: V = 10 km/s into 0.1 torr
/// air at 300 K; returned as `(u1, t1, p1)`.
#[must_use]
pub fn shock_tube_fig7_condition() -> (f64, f64, f64) {
    (10_000.0, 300.0, 0.1 * aerothermo_numerics::constants::TORR)
}

/// Equivalent axisymmetric body for the Orbiter windward pitch plane at
/// entry attitude: a hyperboloid with the Orbiter effective nose radius and
/// an asymptotic half-angle close to the body angle-of-attack (the standard
/// reduction of the era; see DESIGN.md §2).
#[must_use]
pub fn orbiter_equivalent_body(alpha_deg: f64) -> aerothermo_grid::bodies::Hyperboloid {
    // Effective nose radius ~1.3 m; asymptote slightly below α.
    aerothermo_grid::bodies::Hyperboloid::new(1.3, (alpha_deg - 5.0).to_radians(), 25.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_sane() {
        let (rho, v, p, t) = orbiter_fig4_condition();
        assert!(rho > 1e-5 && rho < 1e-3);
        assert!(v == 6700.0 && p > 1.0 && t > 150.0);
        let (rho6, ..) = sts3_fig6_condition();
        assert!(rho6 < rho, "71.3 km is thinner than 65.5 km");
        let (u1, t1, p1) = shock_tube_fig7_condition();
        assert!(u1 == 10_000.0 && t1 == 300.0 && (p1 - 13.33).abs() < 0.1);
    }

    #[test]
    fn equivalent_body_shape() {
        use aerothermo_grid::bodies::Body;
        let b = orbiter_equivalent_body(40.0);
        assert!((b.nose_radius() - 1.3).abs() < 1e-12);
        let angle = b.body_angle(b.arc_length() * 0.99).to_degrees();
        assert!(angle > 25.0 && angle < 40.0, "asymptote {angle}");
    }
}
