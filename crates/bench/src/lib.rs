//! Figure-regeneration harness for the paper's evaluation.
//!
//! One binary per figure of Deiwert & Green (NASA TM-89450); each prints
//! the figure's series as an aligned table (pass `--csv` for CSV) plus the
//! qualitative checks the reproduction asserts. The experiment index lives
//! in `DESIGN.md`; measured-vs-paper notes in `EXPERIMENTS.md`.
//!
//! Shared helpers: CLI parsing and standard flow conditions used by several
//! figures.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

use aerothermo_core::tables::Table;
use aerothermo_numerics::json::{write_f64 as json_f64, write_string};
use aerothermo_numerics::telemetry::{AuditFinding, AuditSeverity, CounterSnapshot, RunTelemetry};
use std::time::Instant;

pub mod cli;

pub use aerothermo_numerics::json;
pub use cli::{
    audit_cadence, checkpoint_every, checkpoint_file, halt_after, inject_nan_at, max_retries,
    output_mode, report_path, restart_path, trace_path, OutputMode,
};

/// JSON string literal with minimal escaping (the numerics writer, by its
/// historical local name).
fn json_string(s: &str) -> String {
    write_string(s)
}

/// Exit code for a deliberate `--halt-after` stop, distinguishable from
/// success (0) and panics (101) so CI can assert the drill actually halted.
pub const HALT_EXIT_CODE: i32 = 3;

/// Assemble [`aerothermo_solvers::runctl::RunOptions`] from the shared
/// run-control flags plus the figure's loop parameters (`max_units`, the
/// convergence tolerance, and the reference-residual grace period).
#[must_use]
pub fn run_options(
    figure: &str,
    max_units: usize,
    tol: f64,
    grace: usize,
) -> aerothermo_solvers::runctl::RunOptions {
    let mut opts = aerothermo_solvers::runctl::RunOptions {
        max_units,
        tol,
        grace,
        max_retries: max_retries(),
        ..Default::default()
    };
    if let Some(every) = checkpoint_every() {
        opts.checkpoint_every = every;
        opts.checkpoint_path = Some(checkpoint_file(figure).into());
    }
    opts.restart_from = restart_path().map(Into::into);
    opts.inject_nan_at = inject_nan_at();
    opts.halt_after = halt_after();
    // Arm the flight-recorder black box in every figure binary: the dump
    // is only written when a run dies or --inject-nan fires, so a clean
    // run never creates the file.
    opts.blackbox_path = Some(cli::blackbox_file(figure).into());
    opts
}

/// Machine-readable run summary for a figure binary.
///
/// Collects qualitative-check verdicts, named scalar metrics, kernel
/// counter deltas, solver phase timings, and residual histories; `finish`
/// writes them as JSON when `--report[=PATH]` was passed (CI parses and
/// gates on this file).
pub struct Report {
    figure: String,
    started: Instant,
    counters_at_start: CounterSnapshot,
    checks: Vec<(String, bool, String)>,
    metrics: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
    histories: Vec<(String, Vec<f64>)>,
    audits: Vec<(String, AuditFinding)>,
}

impl Report {
    /// Start a report scope for the named figure (snapshots the global
    /// kernel counters). Honors the shared observability flags: `--trace`
    /// enables the span profiler and `--audit` arms the in-situ physics
    /// audits at the requested cadence, so every figure binary inherits
    /// both without per-binary wiring.
    #[must_use]
    pub fn new(figure: &str) -> Self {
        if trace_path().is_some() {
            aerothermo_numerics::trace::enable();
        }
        if let Some(every) = audit_cadence() {
            aerothermo_solvers::audit::enable(every);
        }
        if cli::no_metrics() {
            aerothermo_numerics::metrics::disable();
        }
        Self {
            figure: figure.to_string(),
            started: Instant::now(),
            counters_at_start: CounterSnapshot::take(),
            checks: Vec::new(),
            metrics: Vec::new(),
            phases: Vec::new(),
            histories: Vec::new(),
            audits: Vec::new(),
        }
    }

    /// Record a qualitative check; returns `passed` so the caller can keep
    /// its hard `assert!(report.check(..))` behavior.
    pub fn check(&mut self, name: &str, passed: bool, detail: impl Into<String>) -> bool {
        self.checks.push((name.to_string(), passed, detail.into()));
        passed
    }

    /// Record a named scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Fold a solver's [`RunTelemetry`] into the report: its phases and
    /// residual histories, prefixed with `label`.
    pub fn absorb_telemetry(&mut self, label: &str, telemetry: &RunTelemetry) {
        for (name, secs) in telemetry.phases() {
            self.phases.push((format!("{label}.{name}"), *secs));
        }
        for (name, hist) in telemetry.histories() {
            self.histories
                .push((format!("{label}.{name}"), hist.clone()));
        }
        for finding in telemetry.audits() {
            self.audits.push((label.to_string(), finding.clone()));
        }
    }

    /// Fold a controlled run's outcome into the report: progress units,
    /// retry/rollback counts, and the final CFL (backoff scale × nominal) —
    /// the resilience metrics CI gates on.
    pub fn record_run_outcome(
        &mut self,
        label: &str,
        outcome: &aerothermo_solvers::runctl::RunOutcome,
        nominal_cfl: f64,
    ) {
        self.metric(&format!("{label}.run_units"), outcome.units as f64);
        self.metric(&format!("{label}.retries"), outcome.retries as f64);
        self.metric(&format!("{label}.rollbacks"), outcome.rollbacks as f64);
        self.metric(&format!("{label}.final_cfl_scale"), outcome.final_cfl_scale);
        self.metric(
            &format!("{label}.final_cfl"),
            outcome.final_cfl_scale * nominal_cfl,
        );
    }

    /// Number of absorbed audit findings at [`AuditSeverity::Fail`].
    #[must_use]
    pub fn hard_audit_failures(&self) -> usize {
        self.audits
            .iter()
            .filter(|(_, f)| f.severity == AuditSeverity::Fail)
            .count()
    }

    /// True when every recorded check passed and no absorbed audit finding
    /// reached [`AuditSeverity::Fail`].
    #[must_use]
    pub fn all_green(&self) -> bool {
        self.checks.iter().all(|(_, ok, _)| *ok) && self.hard_audit_failures() == 0
    }

    /// Serialize to JSON (counters are deltas since the report started).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"figure\": {},\n", json_string(&self.figure)));
        s.push_str(&format!(
            "  \"elapsed_secs\": {},\n",
            json_f64(self.started.elapsed().as_secs_f64())
        ));
        s.push_str(&format!("  \"all_green\": {},\n", self.all_green()));
        s.push_str("  \"checks\": [");
        for (k, (name, ok, detail)) in self.checks.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"passed\": {}, \"detail\": {}}}",
                json_string(name),
                ok,
                json_string(detail)
            ));
        }
        s.push_str("\n  ],\n");
        let counters = CounterSnapshot::take().delta_since(&self.counters_at_start);
        s.push_str("  \"counters\": {");
        for (k, (name, v)) in counters.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"metrics\": {");
        for (k, (name, v)) in self.metrics.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_string(name), json_f64(*v)));
        }
        s.push_str("\n  },\n");
        // Sampled timing histograms from the metrics registry (all shards
        // merged); only timers with data appear — a call count from `time`
        // guards or samples from explicit `record_duration_ns`. Durations
        // in ns.
        let msnap = aerothermo_numerics::metrics::snapshot();
        s.push_str("  \"timings\": {");
        let mut first = true;
        for t in &msnap.timings {
            if t.calls == 0 && t.hist.count == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let (p50, p90, p99) = t.quantiles_ns();
            s.push_str(&format!(
                "\n    {}: {{\"calls\": {}, \"samples\": {}, \"p50_ns\": {p50}, \
                 \"p90_ns\": {p90}, \"p99_ns\": {p99}, \"mean_ns\": {}, \"max_ns\": {}, \
                 \"total_ns\": {}}}",
                json_string(t.timer.name()),
                t.calls,
                t.hist.count,
                t.hist.mean_ns(),
                t.hist.max_ns,
                t.hist.sum_ns
            ));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"phases\": {");
        for (k, (name, v)) in self.phases.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_string(name), json_f64(*v)));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"histories\": {");
        for (k, (name, hist)) in self.histories.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: [", json_string(name)));
            for (m, v) in hist.iter().enumerate() {
                if m > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_f64(*v));
            }
            s.push(']');
        }
        s.push_str("\n  },\n");
        // Per-history roll-up: `best` is the smallest finite value and is
        // JSON null for histories that never recorded a finite residual —
        // consumers must treat null as "no data", not as zero.
        s.push_str("  \"history_summaries\": {");
        for (k, (name, hist)) in self.histories.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let best = hist
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(f64::INFINITY, f64::min);
            let best = if best.is_finite() { best } else { f64::NAN };
            let last = hist.last().copied().unwrap_or(f64::NAN);
            s.push_str(&format!(
                "\n    {}: {{\"len\": {}, \"best\": {}, \"last\": {}}}",
                json_string(name),
                hist.len(),
                json_f64(best),
                json_f64(last)
            ));
        }
        s.push_str("\n  },\n");
        s.push_str("  \"audits\": [");
        for (k, (label, f)) in self.audits.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"solver\": {}, \"audit\": {}, \"severity\": {}, \
                 \"value\": {}, \"threshold\": {}, \"step\": {}, \"detail\": {}}}",
                json_string(label),
                json_string(f.audit),
                json_string(f.severity.name()),
                json_f64(f.value),
                json_f64(f.threshold),
                f.step,
                json_string(&f.detail)
            ));
        }
        s.push_str("\n  ],\n");
        let count = |sev: AuditSeverity| {
            self.audits
                .iter()
                .filter(|(_, f)| f.severity == sev)
                .count()
        };
        s.push_str(&format!(
            "  \"audit_summary\": {{\"pass\": {}, \"warn\": {}, \"fail\": {}}}\n}}\n",
            count(AuditSeverity::Pass),
            count(AuditSeverity::Warn),
            count(AuditSeverity::Fail)
        ));
        s
    }

    /// Write the JSON report when `--report[=PATH]` was passed and the
    /// Chrome trace-event profile when `--trace[=PATH]` was passed; always
    /// a no-op otherwise. Returns [`Report::all_green`].
    ///
    /// # Panics
    /// Panics when the report or trace file cannot be written (CI must
    /// fail loudly, not silently skip its gate).
    pub fn finish(self) -> bool {
        if let Some(path) = report_path() {
            std::fs::write(&path, self.to_json())
                .unwrap_or_else(|e| panic!("cannot write report {path}: {e}"));
            eprintln!("# run report written to {path}");
        }
        if let Some(path) = trace_path() {
            std::fs::write(&path, aerothermo_numerics::trace::chrome_trace_json())
                .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
            eprintln!("# chrome trace written to {path} (load in Perfetto / chrome://tracing)");
        }
        self.all_green()
    }
}

/// Terminate the binary with [`HALT_EXIT_CODE`] when the controlled run
/// stopped at `--halt-after`, writing the report/trace first so the resume
/// drill has the restart file *and* a parseable partial report.
pub fn exit_if_halted(outcome: &aerothermo_solvers::runctl::RunOutcome, report: Report) -> Report {
    if outcome.halted {
        eprintln!(
            "# halted after {} units (--halt-after); resume with --restart",
            outcome.units
        );
        report.finish();
        std::process::exit(HALT_EXIT_CODE);
    }
    report
}

/// Print a table in the selected mode with a heading.
pub fn emit(title: &str, table: &Table, mode: OutputMode) {
    match mode {
        OutputMode::Text => {
            println!("\n== {title} ==");
            println!("{}", table.to_text());
        }
        OutputMode::Csv => {
            println!("# {title}");
            println!("{}", table.to_csv());
        }
    }
}

/// The paper's Fig. 4 flight condition: Shuttle Orbiter at V∞ = 6.7 km/s,
/// h = 65.5 km (US76), returned as `(rho, v, p, T)`.
#[must_use]
pub fn orbiter_fig4_condition() -> (f64, f64, f64, f64) {
    use aerothermo_atmosphere::us76::Us76;
    use aerothermo_atmosphere::Atmosphere;
    let atm = Us76;
    let h = 65_500.0;
    (atm.density(h), 6_700.0, atm.pressure(h), atm.temperature(h))
}

/// The paper's Fig. 6 flight condition: STS-3 at V∞ = 6.74 km/s,
/// h = 71.3 km, α = 40°; returned as `(rho, v, p, T)`.
#[must_use]
pub fn sts3_fig6_condition() -> (f64, f64, f64, f64) {
    use aerothermo_atmosphere::us76::Us76;
    use aerothermo_atmosphere::Atmosphere;
    let atm = Us76;
    let h = 71_300.0;
    (atm.density(h), 6_740.0, atm.pressure(h), atm.temperature(h))
}

/// The paper's Fig. 7/8 shock-tube condition: V = 10 km/s into 0.1 torr
/// air at 300 K; returned as `(u1, t1, p1)`.
#[must_use]
pub fn shock_tube_fig7_condition() -> (f64, f64, f64) {
    (10_000.0, 300.0, 0.1 * aerothermo_numerics::constants::TORR)
}

/// Equivalent axisymmetric body for the Orbiter windward pitch plane at
/// entry attitude: a hyperboloid with the Orbiter effective nose radius and
/// an asymptotic half-angle close to the body angle-of-attack (the standard
/// reduction of the era; see DESIGN.md §2).
#[must_use]
pub fn orbiter_equivalent_body(alpha_deg: f64) -> aerothermo_grid::bodies::Hyperboloid {
    // Effective nose radius ~1.3 m; asymptote slightly below α.
    aerothermo_grid::bodies::Hyperboloid::new(1.3, (alpha_deg - 5.0).to_radians(), 25.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_sane() {
        let (rho, v, p, t) = orbiter_fig4_condition();
        assert!(rho > 1e-5 && rho < 1e-3);
        assert!(v == 6700.0 && p > 1.0 && t > 150.0);
        let (rho6, ..) = sts3_fig6_condition();
        assert!(rho6 < rho, "71.3 km is thinner than 65.5 km");
        let (u1, t1, p1) = shock_tube_fig7_condition();
        assert!(u1 == 10_000.0 && t1 == 300.0 && (p1 - 13.33).abs() < 0.1);
    }

    #[test]
    fn report_json_well_formed() {
        let mut r = Report::new("test_fig");
        r.metric("peak", 1.5e6);
        r.metric("bad", f64::NAN);
        assert!(r.check("positive", true, "peak = 1.5e6"));
        assert!(!r.check("quoted \"name\"", false, "line\nbreak"));
        r.histories
            .push(("res".to_string(), vec![1.0, 0.5, f64::INFINITY]));
        aerothermo_numerics::metrics::record_duration_ns(
            aerothermo_numerics::metrics::Timer::EulerStep,
            1_000,
        );
        let json = r.to_json();
        assert!(json.contains("\"figure\": \"test_fig\""));
        assert!(json.contains("\"timings\""));
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"all_green\": false"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\\\"name\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("[1, 0.5, null]"));
        assert!(json.contains("\"newton_solves\""));
        // The whole report must parse with the workspace JSON reader.
        let doc = json::parse(&json).expect("report JSON parses");
        assert_eq!(
            doc.get("figure").and_then(json::Value::as_str),
            Some("test_fig")
        );
        assert_eq!(doc.get("all_green"), Some(&json::Value::Bool(false)));
    }

    #[test]
    fn report_history_summary_null_best_roundtrips() {
        // A history that never recorded a finite residual must surface
        // `best: null` (not 0, not +inf) — the machine-readable analogue
        // of `ResidualMonitor::best() == None`.
        let mut r = Report::new("test_fig");
        let mut t = RunTelemetry::new();
        t.record_history("never_finite", vec![f64::NAN, f64::INFINITY]);
        t.record_history("empty", Vec::new());
        t.record_history("ok", vec![3.0, 1.0, 2.0]);
        r.absorb_telemetry("solver", &t);
        let doc = json::parse(&r.to_json()).unwrap();
        let summaries = doc.get("history_summaries").unwrap();
        let nf = summaries.get("solver.never_finite").unwrap();
        assert!(nf.get("best").unwrap().is_null());
        assert!(nf.get("last").unwrap().is_null());
        assert_eq!(nf.get("len").and_then(json::Value::as_f64), Some(2.0));
        let empty = summaries.get("solver.empty").unwrap();
        assert!(empty.get("best").unwrap().is_null());
        let ok = summaries.get("solver.ok").unwrap();
        assert_eq!(ok.get("best").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(ok.get("last").and_then(json::Value::as_f64), Some(2.0));
    }

    #[test]
    fn report_surfaces_audit_findings() {
        use aerothermo_numerics::telemetry::AuditSeverity;
        let mut r = Report::new("test_fig");
        let mut t = RunTelemetry::new();
        t.record_audit(AuditFinding {
            audit: "mass_flux_budget",
            severity: AuditSeverity::Warn,
            value: 1e-2,
            threshold: 5e-3,
            step: 40,
            detail: "net/gross during transient".to_string(),
        });
        r.absorb_telemetry("euler", &t);
        assert!(r.all_green(), "warn findings must not flip the gate");
        t.record_audit(AuditFinding {
            audit: "density_positivity",
            severity: AuditSeverity::Fail,
            value: 1.0,
            threshold: 0.0,
            step: 41,
            detail: "rho < 0 at (3, 4)".to_string(),
        });
        let mut r2 = Report::new("test_fig");
        r2.absorb_telemetry("euler", &t);
        assert_eq!(r2.hard_audit_failures(), 1);
        assert!(!r2.all_green(), "a Fail audit must flip the gate");
        let doc = json::parse(&r2.to_json()).unwrap();
        assert_eq!(doc.get("all_green"), Some(&json::Value::Bool(false)));
        let audits = doc.get("audits").unwrap().as_array().unwrap();
        assert_eq!(audits.len(), 2);
        assert_eq!(
            audits[1].get("severity").and_then(json::Value::as_str),
            Some("fail")
        );
        let summary = doc.get("audit_summary").unwrap();
        assert_eq!(summary.get("warn").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(summary.get("fail").and_then(json::Value::as_f64), Some(1.0));
    }

    #[test]
    fn equivalent_body_shape() {
        use aerothermo_grid::bodies::Body;
        let b = orbiter_equivalent_body(40.0);
        assert!((b.nose_radius() - 1.3).abs() < 1e-12);
        let angle = b.body_angle(b.arc_length() * 0.99).to_degrees();
        assert!(angle > 25.0 && angle < 40.0, "asymptote {angle}");
    }
}
