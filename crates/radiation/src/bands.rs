//! Molecular band-system emission (smeared-band model).
//!
//! Each electronic band system is represented by its strongest vibrational
//! bands: a band head wavelength, a Franck-Condon weight, and an asymmetric
//! "degraded" band shape (sharp at the head, an exponential tail toward the
//! shading direction). Upper-state populations are Boltzmann at the
//! excitation temperature. This is the smeared-rotational-band reduction
//! used by the engineering radiation codes of the paper's era; it reproduces
//! band-system placement and relative strengths (Fig. 8's structure) without
//! a line-by-line rotational calculation.

/// Shading direction of a band (which side of the head the tail extends to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shading {
    /// Tail toward longer wavelengths (most first-positive-like systems).
    Red,
    /// Tail toward shorter wavelengths (N₂⁺ first negative, CN violet).
    Violet,
}

/// One vibrational band of a system.
#[derive(Debug, Clone, Copy)]
pub struct VibBand {
    /// Band-head wavelength \[m\].
    pub lambda_head: f64,
    /// Franck-Condon weight (relative; normalized internally).
    pub weight: f64,
}

/// An electronic band system of a molecule.
#[derive(Debug, Clone)]
pub struct BandSystem {
    /// Emitting species name.
    pub species: &'static str,
    /// System label, e.g. `"N2+ 1-"`.
    pub label: &'static str,
    /// Upper electronic state energy as a temperature \[K\].
    pub theta_u: f64,
    /// Upper electronic state degeneracy.
    pub g_u: f64,
    /// Effective Einstein coefficient of the system \[1/s\].
    pub a_eff: f64,
    /// Band tail 1/e width \[m\].
    pub tail_width: f64,
    /// Shading direction.
    pub shading: Shading,
    /// The vibrational bands.
    pub bands: Vec<VibBand>,
}

/// The band systems relevant to high-temperature air and Titan (N₂/CH₄)
/// shock layers in the 0.2–1.0 μm window.
#[must_use]
pub fn standard_systems() -> Vec<BandSystem> {
    vec![
        // N2+ first negative, B²Σu⁺ → X²Σg⁺ (violet-shaded): the dominant
        // feature of nonequilibrium air radiation near 0.39 μm.
        BandSystem {
            species: "N2+",
            label: "N2+ 1-",
            theta_u: 36_800.0,
            g_u: 2.0,
            a_eff: 1.6e7,
            tail_width: 6.0e-9,
            shading: Shading::Violet,
            bands: vec![
                VibBand {
                    lambda_head: 391.4e-9,
                    weight: 1.0,
                },
                VibBand {
                    lambda_head: 427.8e-9,
                    weight: 0.30,
                },
                VibBand {
                    lambda_head: 358.2e-9,
                    weight: 0.25,
                },
                VibBand {
                    lambda_head: 470.9e-9,
                    weight: 0.08,
                },
                VibBand {
                    lambda_head: 330.8e-9,
                    weight: 0.05,
                },
            ],
        },
        // N2 second positive, C³Πu → B³Πg.
        BandSystem {
            species: "N2",
            label: "N2 2+",
            theta_u: 128_200.0,
            g_u: 6.0,
            a_eff: 2.7e7,
            tail_width: 5.0e-9,
            shading: Shading::Violet,
            bands: vec![
                VibBand {
                    lambda_head: 337.1e-9,
                    weight: 1.0,
                },
                VibBand {
                    lambda_head: 357.7e-9,
                    weight: 0.70,
                },
                VibBand {
                    lambda_head: 315.9e-9,
                    weight: 0.50,
                },
                VibBand {
                    lambda_head: 380.5e-9,
                    weight: 0.30,
                },
                VibBand {
                    lambda_head: 297.7e-9,
                    weight: 0.15,
                },
            ],
        },
        // N2 first positive, B³Πg → A³Σu⁺ (red-shaded, 0.5–1.05 μm).
        BandSystem {
            species: "N2",
            label: "N2 1+",
            theta_u: 85_300.0,
            g_u: 6.0,
            a_eff: 1.7e5,
            tail_width: 15.0e-9,
            shading: Shading::Red,
            bands: vec![
                VibBand {
                    lambda_head: 1046.9e-9,
                    weight: 0.5,
                },
                VibBand {
                    lambda_head: 891.2e-9,
                    weight: 0.8,
                },
                VibBand {
                    lambda_head: 775.3e-9,
                    weight: 1.0,
                },
                VibBand {
                    lambda_head: 687.5e-9,
                    weight: 0.8,
                },
                VibBand {
                    lambda_head: 632.3e-9,
                    weight: 0.6,
                },
                VibBand {
                    lambda_head: 580.4e-9,
                    weight: 0.35,
                },
            ],
        },
        // CN violet, B²Σ⁺ → X²Σ⁺ — the Titan-entry radiator (Figs. 2–3).
        BandSystem {
            species: "CN",
            label: "CN violet",
            theta_u: 37_020.0,
            g_u: 2.0,
            a_eff: 1.5e7,
            tail_width: 5.0e-9,
            shading: Shading::Violet,
            bands: vec![
                VibBand {
                    lambda_head: 388.3e-9,
                    weight: 1.0,
                },
                VibBand {
                    lambda_head: 421.6e-9,
                    weight: 0.28,
                },
                VibBand {
                    lambda_head: 359.0e-9,
                    weight: 0.33,
                },
                VibBand {
                    lambda_head: 460.6e-9,
                    weight: 0.06,
                },
            ],
        },
        // CN red, A²Π → X²Σ⁺ (near IR, weaker).
        BandSystem {
            species: "CN",
            label: "CN red",
            theta_u: 13_090.0,
            g_u: 4.0,
            a_eff: 4.0e5,
            tail_width: 20.0e-9,
            shading: Shading::Red,
            bands: vec![
                VibBand {
                    lambda_head: 1090.0e-9,
                    weight: 1.0,
                },
                VibBand {
                    lambda_head: 920.0e-9,
                    weight: 0.8,
                },
                VibBand {
                    lambda_head: 790.0e-9,
                    weight: 0.5,
                },
            ],
        },
    ]
}

/// Normalized band-shape function \[1/m\]: sharp rise at the head, an
/// exponential tail on the shading side.
#[must_use]
pub fn band_shape(lambda: f64, head: f64, width: f64, shading: Shading) -> f64 {
    let d = match shading {
        Shading::Red => lambda - head,
        Shading::Violet => head - lambda,
    };
    if d < 0.0 {
        // Sharp edge: small Gaussian rolloff on the head side.
        let edge = 0.15 * width;
        let u = d / edge;
        if u < -8.0 {
            return 0.0;
        }
        (-(u * u)).exp() / width
    } else {
        (-d / width).exp() / width
    }
}

/// Emission coefficient of one band system at `lambda`
/// \[W/(m³·sr·m)\] for emitter density `n_species` with electronic
/// partition function `q_el` at excitation temperature `t_exc`.
#[must_use]
pub fn system_emission(
    sys: &BandSystem,
    lambda: f64,
    n_species: f64,
    q_el: f64,
    t_exc: f64,
) -> f64 {
    if n_species <= 0.0 {
        return 0.0;
    }
    let x = sys.theta_u / t_exc;
    if x > 600.0 {
        return 0.0;
    }
    let n_u = n_species * sys.g_u * (-x).exp() / q_el.max(1.0);
    let wsum: f64 = sys.bands.iter().map(|b| b.weight).sum();
    let mut j = 0.0;
    for b in &sys.bands {
        let photon = aerothermo_numerics::constants::H_PLANCK
            * aerothermo_numerics::constants::C_LIGHT
            / b.lambda_head;
        let p = n_u * sys.a_eff * (b.weight / wsum) * photon / (4.0 * std::f64::consts::PI);
        j += p * band_shape(lambda, b.lambda_head, sys.tail_width, sys.shading);
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_shape_normalized() {
        // ∫ shape dλ ≈ 1 (tail integral dominates: width·(1) plus the small
        // edge Gaussian; tolerance accounts for the edge part).
        for shading in [Shading::Red, Shading::Violet] {
            let head = 400e-9;
            let width = 8e-9;
            let n = 40_000;
            let lo = 300e-9;
            let hi = 520e-9;
            let dl = (hi - lo) / n as f64;
            let mut s = 0.0;
            for i in 0..n {
                let lam = lo + (i as f64 + 0.5) * dl;
                s += band_shape(lam, head, width, shading) * dl;
            }
            assert!((s - 1.0).abs() < 0.2, "norm = {s}");
        }
    }

    #[test]
    fn shading_direction_respected() {
        let head = 391.4e-9;
        let w = 6e-9;
        // Violet-shaded: more emission below the head than above.
        let below = band_shape(head - 3e-9, head, w, Shading::Violet);
        let above = band_shape(head + 3e-9, head, w, Shading::Violet);
        assert!(below > above * 5.0);
        // Red-shaded: opposite.
        let below_r = band_shape(head - 3e-9, head, w, Shading::Red);
        let above_r = band_shape(head + 3e-9, head, w, Shading::Red);
        assert!(above_r > below_r * 5.0);
    }

    #[test]
    fn n2plus_first_negative_peaks_at_391() {
        let sys = standard_systems()
            .into_iter()
            .find(|s| s.label == "N2+ 1-")
            .unwrap();
        let j391 = system_emission(&sys, 391.0e-9, 1e20, 2.0, 10_000.0);
        let j500 = system_emission(&sys, 500.0e-9, 1e20, 2.0, 10_000.0);
        assert!(j391 > 20.0 * j500, "{j391:.3e} vs {j500:.3e}");
        assert!(j391 > 0.0);
    }

    #[test]
    fn emission_increases_with_t_exc() {
        let sys = &standard_systems()[0];
        let j1 = system_emission(sys, 391.4e-9, 1e20, 2.0, 6_000.0);
        let j2 = system_emission(sys, 391.4e-9, 1e20, 2.0, 12_000.0);
        assert!(j2 > j1 * 5.0);
    }

    #[test]
    fn absent_species_dark() {
        let sys = &standard_systems()[0];
        assert_eq!(system_emission(sys, 391.4e-9, 0.0, 2.0, 10_000.0), 0.0);
    }

    #[test]
    fn cn_violet_near_n2plus_head() {
        // The CN violet (0,0) head at 388.3 nm sits just below N2+ 391.4 —
        // both systems must be present in the standard list.
        let systems = standard_systems();
        assert!(systems.iter().any(|s| s.label == "CN violet"));
        assert!(systems.iter().any(|s| s.label == "N2+ 1-"));
    }
}
