//! Tangent-slab radiative transport.
//!
//! The shock layer is modeled as a stack of homogeneous plane-parallel
//! layers (the plane-slab approximation the paper attributes to the VSL
//! radiation codes). Two outputs:
//!
//! * the **wall-directed spectral flux** via the Schwarzschild solution with
//!   exponential integrals, `q_λ(0) = 2π Σ_k S_k [E₃(τ_k) − E₃(τ_{k+1})]`,
//! * the **emergent normal radiance** (what a spectrometer looking through
//!   the slab records), `I_λ = Σ_k S_k (1 − e^{−Δτ_k}) e^{−τ_k,front}`.

use crate::planck::e3;
use crate::spectra::{spectrum, Spectrum};
use crate::GasSample;
use aerothermo_numerics::quadrature::trapz;

/// One homogeneous slab layer.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Geometric thickness \[m\].
    pub thickness: f64,
    /// The gas in the layer.
    pub sample: GasSample,
}

/// Spectral result of a slab transport solve.
#[derive(Debug, Clone)]
pub struct SlabRadiation {
    /// Wavelengths \[m\].
    pub lambda: Vec<f64>,
    /// Spectral flux onto the wall (layer-0 side) \[W/(m²·m)\].
    pub wall_flux: Vec<f64>,
    /// Emergent normal spectral radiance on the far side \[W/(m²·sr·m)\].
    pub radiance: Vec<f64>,
}

impl SlabRadiation {
    /// Wavelength-integrated wall heat flux \[W/m²\].
    #[must_use]
    pub fn total_wall_flux(&self) -> f64 {
        trapz(&self.lambda, &self.wall_flux)
    }
}

/// Solve the slab given per-layer spectra (layer 0 adjacent to the wall).
///
/// # Panics
/// Panics when layers and spectra lengths differ or grids mismatch.
#[must_use]
pub fn solve_slab(layers: &[Layer], spectra: &[Spectrum]) -> SlabRadiation {
    assert_eq!(layers.len(), spectra.len());
    assert!(!layers.is_empty());
    let lambda = spectra[0].lambda.clone();
    for s in spectra {
        assert_eq!(s.lambda.len(), lambda.len());
    }
    let nl = lambda.len();
    let nk = layers.len();

    let mut wall_flux = vec![0.0; nl];
    let mut radiance = vec![0.0; nl];
    for il in 0..nl {
        // Optical depths measured from the wall outward.
        let mut tau = 0.0;
        let mut q = 0.0;
        for k in 0..nk {
            let kap = spectra[k].absorption[il].max(0.0);
            let j = spectra[k].emission[il].max(0.0);
            let dtau = kap * layers[k].thickness;
            if j <= 0.0 {
                tau += dtau;
                continue;
            }
            if dtau > 1e-8 {
                let s_fn = j / kap;
                q += 2.0 * std::f64::consts::PI * s_fn * (e3(tau) - e3(tau + dtau));
            } else {
                // Optically thin layer: attenuate by the foreground only.
                // 2π·S·E₂(τ)·dτ with S·dτ = j·ds.
                let e2m = crate::planck::e2(tau);
                q += 2.0 * std::f64::consts::PI * j * layers[k].thickness * e2m;
            }
            tau += dtau;
        }
        wall_flux[il] = q;

        // Emergent normal radiance on the far (shock) side: integrate from
        // the wall side toward the observer at the outer edge; the
        // foreground is everything *outside* layer k.
        let mut i_out = 0.0;
        let mut tau_front = 0.0_f64; // accumulated from the observer inward
        for k in (0..nk).rev() {
            let kap = spectra[k].absorption[il].max(0.0);
            let j = spectra[k].emission[il].max(0.0);
            let dtau = kap * layers[k].thickness;
            let self_term = if dtau > 1e-8 {
                (j / kap) * (1.0 - (-dtau).exp())
            } else {
                j * layers[k].thickness
            };
            i_out += self_term * (-tau_front).exp();
            tau_front += dtau;
        }
        radiance[il] = i_out;
    }

    SlabRadiation {
        lambda,
        wall_flux,
        radiance,
    }
}

/// Convenience: compute per-layer spectra and solve the slab in one call.
#[must_use]
pub fn solve_slab_samples(layers: &[Layer], lambda: &[f64], width_floor: f64) -> SlabRadiation {
    let spectra: Vec<Spectrum> = layers
        .iter()
        .map(|l| spectrum(&l.sample, lambda, width_floor))
        .collect();
    solve_slab(layers, &spectra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planck::planck_lambda;
    use crate::wavelength_grid;

    fn emitting_layer(t: f64, thickness: f64) -> Layer {
        Layer {
            thickness,
            sample: GasSample::equilibrium(
                t,
                vec![
                    ("N2".into(), 1e23),
                    ("N2+".into(), 1e19),
                    ("N".into(), 1e22),
                    ("O".into(), 3e21),
                ],
            ),
        }
    }

    #[test]
    fn thin_slab_flux_scales_linearly_with_thickness() {
        let lam = wavelength_grid(0.3e-6, 0.5e-6, 200);
        let r1 = solve_slab_samples(&[emitting_layer(10_000.0, 0.001)], &lam, 2e-9);
        let r2 = solve_slab_samples(&[emitting_layer(10_000.0, 0.002)], &lam, 2e-9);
        let ratio = r2.total_wall_flux() / r1.total_wall_flux();
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn thick_slab_saturates_to_blackbody() {
        // Drive the optical depth up by stacking a huge path length; the
        // wall flux per wavelength must approach π·B and never exceed it.
        let lam = wavelength_grid(0.388e-6, 0.3915e-6, 24);
        let t = 10_000.0;
        let r = solve_slab_samples(&[emitting_layer(t, 5.0e4)], &lam, 2e-9);
        for (i, &l) in lam.iter().enumerate() {
            let bb = std::f64::consts::PI * planck_lambda(l, t);
            assert!(
                r.wall_flux[i] <= bb * 1.02,
                "super-Planckian at {:.1} nm: {:.3e} vs {bb:.3e}",
                l * 1e9,
                r.wall_flux[i]
            );
        }
        // At the band head itself the optical depth is large → near-Planck.
        let peak_i = r
            .wall_flux
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let bb = std::f64::consts::PI * planck_lambda(lam[peak_i], t);
        assert!(
            r.wall_flux[peak_i] > 0.3 * bb,
            "not saturating: {:.2e} vs {bb:.2e}",
            r.wall_flux[peak_i]
        );
    }

    #[test]
    fn cold_foreground_absorbs() {
        let lam = wavelength_grid(0.385e-6, 0.395e-6, 200);
        let hot = emitting_layer(10_000.0, 0.01);
        // A cool, optically thick N2+ curtain between the wall and the hot
        // gas: it barely emits (e^{−θu/2000} ~ 1e-8) but its κ = j/B ratio
        // stays O(1), so the hot band-head flux is absorbed.
        let cold = Layer {
            thickness: 1.0e3,
            sample: GasSample::equilibrium(2_000.0, vec![("N2+".into(), 1e20)]),
        };
        let free = solve_slab_samples(std::slice::from_ref(&hot), &lam, 2e-9);
        let blocked = solve_slab_samples(&[cold, hot], &lam, 2e-9);
        // Compare at the 391.4 nm band head.
        let head_i = lam.iter().position(|&l| l >= 391.4e-9).unwrap();
        assert!(
            blocked.wall_flux[head_i] < 0.2 * free.wall_flux[head_i],
            "{:.3e} vs {:.3e}",
            blocked.wall_flux[head_i],
            free.wall_flux[head_i]
        );
    }

    #[test]
    fn radiance_order_independent_of_observer_for_symmetric_slab() {
        let lam = wavelength_grid(0.35e-6, 0.45e-6, 100);
        let a = emitting_layer(9_000.0, 0.005);
        let b = emitting_layer(9_000.0, 0.005);
        let r = solve_slab_samples(&[a, b], &lam, 2e-9);
        // Symmetric stack: radiance equals that of the doubled single layer.
        let single = solve_slab_samples(&[emitting_layer(9_000.0, 0.01)], &lam, 2e-9);
        for i in 0..lam.len() {
            let d = (r.radiance[i] - single.radiance[i]).abs();
            assert!(d <= 1e-6 * single.radiance[i].max(1e-30), "mismatch at {i}");
        }
    }

    #[test]
    fn empty_band_dark() {
        let lam = wavelength_grid(0.55e-6, 0.6e-6, 20);
        let layer = Layer {
            thickness: 0.01,
            sample: GasSample::equilibrium(8_000.0, vec![("NO+".into(), 1e18)]),
        };
        let r = solve_slab_samples(&[layer], &lam, 1e-9);
        assert!(r.total_wall_flux() < 1e-12);
    }
}
