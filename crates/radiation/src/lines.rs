//! Atomic line emission.
//!
//! A representative multiplet list for N and O in the 0.2–1.0 μm window of
//! the paper's Fig. 8 (the strong vacuum-UV resonance lines lie below the
//! window and are omitted). Upper-state populations are Boltzmann at the
//! excitation temperature over the atom's (ground-dominated) electronic
//! partition function; profiles are Doppler Gaussians with an optional
//! instrument-broadening floor.

use aerothermo_numerics::constants::{C_LIGHT, H_PLANCK, K_BOLTZMANN};

/// One atomic line.
#[derive(Debug, Clone, Copy)]
pub struct AtomicLine {
    /// Emitting species name.
    pub species: &'static str,
    /// Vacuum wavelength \[m\].
    pub lambda: f64,
    /// Einstein A coefficient \[1/s\].
    pub a_ul: f64,
    /// Upper-level excitation energy as a temperature \[K\].
    pub theta_u: f64,
    /// Upper-level degeneracy.
    pub g_u: f64,
    /// Emitter particle mass \[kg\] (for the Doppler width).
    pub mass: f64,
}

const M_N: f64 = 14.0067 / 6.022_140_76e26;
const M_O: f64 = 15.9994 / 6.022_140_76e26;
const M_H: f64 = 1.00794 / 6.022_140_76e26;

/// Representative N and O multiplets in the near-UV→near-IR window
/// (wavelengths and A-values at NIST-accuracy adequate for spectral-shape
/// work; θ_u = E_u/k).
#[must_use]
pub fn standard_lines() -> Vec<AtomicLine> {
    vec![
        // N I 3s⁴P → 3p⁴S/⁴P/⁴D multiplets.
        AtomicLine {
            species: "N",
            lambda: 746.8e-9,
            a_ul: 1.96e7,
            theta_u: 139_200.0,
            g_u: 6.0,
            mass: M_N,
        },
        AtomicLine {
            species: "N",
            lambda: 821.6e-9,
            a_ul: 2.27e7,
            theta_u: 137_400.0,
            g_u: 10.0,
            mass: M_N,
        },
        AtomicLine {
            species: "N",
            lambda: 868.0e-9,
            a_ul: 2.53e7,
            theta_u: 136_600.0,
            g_u: 10.0,
            mass: M_N,
        },
        AtomicLine {
            species: "N",
            lambda: 939.3e-9,
            a_ul: 1.07e7,
            theta_u: 139_600.0,
            g_u: 12.0,
            mass: M_N,
        },
        AtomicLine {
            species: "N",
            lambda: 493.5e-9,
            a_ul: 7.6e5,
            theta_u: 149_200.0,
            g_u: 4.0,
            mass: M_N,
        },
        // H I: Lyman-α (VUV — dominates hydrogen shock layers when the
        // spectral window reaches it) and the Balmer series.
        AtomicLine {
            species: "H",
            lambda: 121.567e-9,
            a_ul: 4.699e8,
            theta_u: 118_352.0,
            g_u: 6.0,
            mass: M_H,
        },
        AtomicLine {
            species: "H",
            lambda: 656.28e-9,
            a_ul: 4.41e7,
            theta_u: 140_270.0,
            g_u: 18.0,
            mass: M_H,
        },
        AtomicLine {
            species: "H",
            lambda: 486.13e-9,
            a_ul: 8.42e6,
            theta_u: 147_220.0,
            g_u: 32.0,
            mass: M_H,
        },
        AtomicLine {
            species: "H",
            lambda: 434.05e-9,
            a_ul: 2.53e6,
            theta_u: 150_440.0,
            g_u: 50.0,
            mass: M_H,
        },
        // O I 777.4 quintet and 844.6 triplet.
        AtomicLine {
            species: "O",
            lambda: 777.4e-9,
            a_ul: 3.69e7,
            theta_u: 125_300.0,
            g_u: 15.0,
            mass: M_O,
        },
        AtomicLine {
            species: "O",
            lambda: 844.6e-9,
            a_ul: 3.22e7,
            theta_u: 127_800.0,
            g_u: 9.0,
            mass: M_O,
        },
        AtomicLine {
            species: "O",
            lambda: 926.6e-9,
            a_ul: 4.45e7,
            theta_u: 128_900.0,
            g_u: 15.0,
            mass: M_O,
        },
        AtomicLine {
            species: "O",
            lambda: 615.8e-9,
            a_ul: 7.62e6,
            theta_u: 148_200.0,
            g_u: 15.0,
            mass: M_O,
        },
    ]
}

/// 1/e Doppler half-width \[m\] of a line at heavy temperature `t`.
#[must_use]
pub fn doppler_width(line: &AtomicLine, t: f64) -> f64 {
    line.lambda * (2.0 * K_BOLTZMANN * t / (line.mass * C_LIGHT * C_LIGHT)).sqrt()
}

/// Volumetric emission coefficient of one line \[W/(m³·sr·m)\] at `lambda`,
/// for emitter number density `n_species`, electronic partition function
/// `q_el` of the species, excitation temperature `t_exc`, heavy temperature
/// `t`, and a minimum (instrument) 1/e width `width_floor` \[m\].
#[must_use]
pub fn line_emission(
    line: &AtomicLine,
    lambda: f64,
    n_species: f64,
    q_el: f64,
    t: f64,
    t_exc: f64,
    width_floor: f64,
) -> f64 {
    if n_species <= 0.0 {
        return 0.0;
    }
    let x = line.theta_u / t_exc;
    if x > 600.0 {
        return 0.0;
    }
    let n_u = n_species * line.g_u * (-x).exp() / q_el.max(1.0);
    // Total line power per volume per steradian.
    let p = n_u * line.a_ul * H_PLANCK * C_LIGHT / line.lambda / (4.0 * std::f64::consts::PI);
    // Gaussian profile normalized over wavelength.
    let w = doppler_width(line, t).max(width_floor);
    let d = (lambda - line.lambda) / w;
    if d.abs() > 12.0 {
        return 0.0;
    }
    p * (-d * d).exp() / (w * std::f64::consts::PI.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doppler_width_scales_with_sqrt_t() {
        let line = &standard_lines()[0];
        let w1 = doppler_width(line, 2_500.0);
        let w2 = doppler_width(line, 10_000.0);
        assert!((w2 / w1 - 2.0).abs() < 1e-9);
        // N 746.8 nm at 10 000 K: Δλ_D ≈ λ·√(2kT/mc²) ≈ 2.7 pm.
        assert!(w2 > 1e-12 && w2 < 1e-11, "w = {w2:.3e}");
    }

    #[test]
    fn line_profile_integrates_to_line_power() {
        let line = &standard_lines()[0];
        let t = 10_000.0;
        let n = 1e21;
        let q = 4.0;
        let w = doppler_width(line, t);
        // Integrate over ±10 widths.
        let nlam = 4000;
        let lo = line.lambda - 10.0 * w;
        let hi = line.lambda + 10.0 * w;
        let dl = (hi - lo) / nlam as f64;
        let mut total = 0.0;
        for i in 0..nlam {
            let lam = lo + (i as f64 + 0.5) * dl;
            total += line_emission(line, lam, n, q, t, t, 0.0) * dl;
        }
        let n_u = n * line.g_u * (-line.theta_u / t).exp() / q;
        let p_expect =
            n_u * line.a_ul * H_PLANCK * C_LIGHT / line.lambda / (4.0 * std::f64::consts::PI);
        assert!(
            (total - p_expect).abs() / p_expect < 1e-3,
            "{total:.3e} vs {p_expect:.3e}"
        );
    }

    #[test]
    fn emission_grows_steeply_with_t_exc() {
        let line = &standard_lines()[5]; // O 777
        let j1 = line_emission(line, line.lambda, 1e21, 9.0, 8000.0, 8_000.0, 0.0);
        let j2 = line_emission(line, line.lambda, 1e21, 9.0, 8000.0, 12_000.0, 0.0);
        assert!(j2 > j1 * 50.0, "j2/j1 = {}", j2 / j1);
    }

    #[test]
    fn cold_gas_dark() {
        let line = &standard_lines()[0];
        let j = line_emission(line, line.lambda, 1e24, 4.0, 300.0, 300.0, 0.0);
        assert!(j < 1e-100, "j = {j:e}");
    }

    #[test]
    fn width_floor_limits_peak() {
        let line = &standard_lines()[0];
        let j_sharp = line_emission(line, line.lambda, 1e21, 4.0, 10_000.0, 10_000.0, 0.0);
        let j_broad = line_emission(line, line.lambda, 1e21, 4.0, 10_000.0, 10_000.0, 1e-9);
        assert!(j_broad < j_sharp);
    }
}
