//! Planck function and the exponential integrals used by slab transport.

use aerothermo_numerics::constants::{C1_RADIATION, C2_RADIATION, SIGMA_SB};

/// Spectral radiance of a blackbody, wavelength form:
/// `B_λ(T) = 2hc²/λ⁵ / (exp(hc/λkT) − 1)` \[W/(m²·sr·m)\].
///
/// ```
/// use aerothermo_radiation::planck::{planck_lambda, wien_peak};
/// let t = 8000.0;
/// let peak = wien_peak(t);
/// assert!(planck_lambda(peak, t) > planck_lambda(0.7 * peak, t));
/// ```
#[must_use]
pub fn planck_lambda(lambda: f64, t: f64) -> f64 {
    if lambda <= 0.0 || t <= 0.0 {
        return 0.0;
    }
    let x = C2_RADIATION / (lambda * t);
    if x > 700.0 {
        return 0.0;
    }
    C1_RADIATION / lambda.powi(5) / (x.exp() - 1.0)
}

/// Wavelength of peak blackbody emission (Wien) \[m\].
#[must_use]
pub fn wien_peak(t: f64) -> f64 {
    2.897_771_955e-3 / t
}

/// Exponential integral E₁(x) for x > 0 (Abramowitz & Stegun 5.1.53/5.1.56).
#[must_use]
pub fn e1(x: f64) -> f64 {
    assert!(x > 0.0, "E1 requires x > 0");
    if x <= 1.0 {
        // Series with polynomial fit.
        let a = [
            -0.577_215_66,
            0.999_991_93,
            -0.249_910_55,
            0.055_199_68,
            -0.009_760_04,
            0.001_078_57,
        ];
        let mut p = 0.0;
        for &c in a.iter().rev() {
            p = p * x + c;
        }
        p - x.ln()
    } else {
        // Rational approximation times e^{-x}/x.
        let num = x * x + 2.334_733 * x + 0.250_621;
        let den = x * x + 3.330_657 * x + 1.681_534;
        (num / den) * (-x).exp() / x
    }
}

/// Exponential integral E₂(x) = e^{−x} − x·E₁(x); E₂(0) = 1.
#[must_use]
pub fn e2(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if x > 700.0 {
        return 0.0;
    }
    (-x).exp() - x * e1(x)
}

/// Exponential integral E₃(x) = ½(e^{−x} − x·E₂(x)); E₃(0) = ½.
#[must_use]
pub fn e3(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.5;
    }
    if x > 700.0 {
        return 0.0;
    }
    0.5 * ((-x).exp() - x * e2(x))
}

/// Numerically integrate πB over wavelength — sanity tool for tests and the
/// gray-gas limits.
#[must_use]
pub fn blackbody_flux_band(t: f64, lo: f64, hi: f64, n: usize) -> f64 {
    let mut s = 0.0;
    let dl = (hi - lo) / n as f64;
    for i in 0..n {
        let l = lo + (i as f64 + 0.5) * dl;
        s += planck_lambda(l, t) * dl;
    }
    std::f64::consts::PI * s
}

/// Stefan-Boltzmann total flux σT⁴.
#[must_use]
pub fn blackbody_total_flux(t: f64) -> f64 {
    SIGMA_SB * t.powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planck_integrates_to_stefan_boltzmann() {
        let t = 8000.0;
        let total = blackbody_flux_band(t, 2e-8, 2e-5, 40_000);
        let sb = blackbody_total_flux(t);
        assert!((total - sb).abs() / sb < 0.01, "{total:.4e} vs {sb:.4e}");
    }

    #[test]
    fn wien_displacement() {
        let t = 10_000.0;
        let lp = wien_peak(t);
        let b_peak = planck_lambda(lp, t);
        assert!(b_peak > planck_lambda(lp * 0.8, t));
        assert!(b_peak > planck_lambda(lp * 1.2, t));
    }

    #[test]
    fn e1_reference_values() {
        // E1(1) = 0.219384
        assert!((e1(1.0) - 0.219_384).abs() < 1e-4);
        // E1(0.5) = 0.559774
        assert!((e1(0.5) - 0.559_774).abs() < 1e-4);
        // E1(5) = 0.001148
        assert!((e1(5.0) - 1.148e-3).abs() < 1e-5);
    }

    #[test]
    fn e2_e3_limits_and_monotonicity() {
        assert_eq!(e2(0.0), 1.0);
        assert_eq!(e3(0.0), 0.5);
        let mut prev2 = 1.0;
        let mut prev3 = 0.5;
        for k in 1..50 {
            let x = 0.2 * f64::from(k);
            let v2 = e2(x);
            let v3 = e3(x);
            assert!(v2 < prev2 && v2 >= 0.0);
            assert!(v3 < prev3 && v3 >= 0.0);
            prev2 = v2;
            prev3 = v3;
        }
    }

    #[test]
    fn e3_derivative_is_minus_e2() {
        let x = 0.7;
        let h = 1e-6;
        let fd = (e3(x + h) - e3(x - h)) / (2.0 * h);
        assert!((fd + e2(x)).abs() < 1e-4, "dE3 = {fd}, -E2 = {}", -e2(x));
    }

    #[test]
    fn hotter_is_brighter_everywhere() {
        for lam in [0.3e-6, 0.6e-6, 1.0e-6] {
            assert!(planck_lambda(lam, 9000.0) > planck_lambda(lam, 6000.0));
        }
    }
}
