//! Assembled emission/absorption spectra for a gas sample.
//!
//! Sums the atomic lines of [`crate::lines`] and the molecular band systems
//! of [`crate::bands`] over a wavelength grid. Absorption comes from
//! Kirchhoff's law at the excitation temperature (`κ = j/B(T_exc)`), which
//! guarantees the correct optically-thick limit in the slab solver.

use crate::bands::{standard_systems, system_emission, BandSystem};
use crate::lines::{line_emission, standard_lines, AtomicLine};
use crate::planck::planck_lambda;
use crate::GasSample;
use aerothermo_gas::species as gasdb;
use aerothermo_gas::Species;
use rayon::prelude::*;

/// Emission and absorption coefficients over a wavelength grid.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// Wavelengths \[m\].
    pub lambda: Vec<f64>,
    /// Emission coefficient j_λ \[W/(m³·sr·m)\].
    pub emission: Vec<f64>,
    /// Absorption coefficient κ_λ \[1/m\].
    pub absorption: Vec<f64>,
}

impl Spectrum {
    /// Total volumetric emitted power per steradian \[W/(m³·sr)\]
    /// (trapezoid over the grid).
    #[must_use]
    pub fn total_emission(&self) -> f64 {
        aerothermo_numerics::quadrature::trapz(&self.lambda, &self.emission)
    }

    /// Emission integrated over the band `[lo, hi]` \[W/(m³·sr)\].
    #[must_use]
    pub fn band_integral(&self, lo: f64, hi: f64) -> f64 {
        let mut s = 0.0;
        for w in self.lambda.windows(2).zip(self.emission.windows(2)) {
            let ((l0, l1), (j0, j1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if l1 <= lo || l0 >= hi {
                continue;
            }
            let a = l0.max(lo);
            let b = l1.min(hi);
            // Linear sub-segment of the trapezoid.
            let ja = j0 + (j1 - j0) * (a - l0) / (l1 - l0);
            let jb = j0 + (j1 - j0) * (b - l0) / (l1 - l0);
            s += 0.5 * (ja + jb) * (b - a);
        }
        s
    }

    /// Index of the brightest wavelength.
    #[must_use]
    pub fn peak_index(&self) -> usize {
        self.emission
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }
}

/// Known radiating species with their spectroscopic records (for partition
/// functions).
fn species_by_name(name: &str) -> Option<Species> {
    match name {
        "N2" => Some(gasdb::n2()),
        "O2" => Some(gasdb::o2()),
        "NO" => Some(gasdb::no()),
        "N" => Some(gasdb::n_atom()),
        "O" => Some(gasdb::o_atom()),
        "N+" => Some(gasdb::n_ion()),
        "O+" => Some(gasdb::o_ion()),
        "NO+" => Some(gasdb::no_ion()),
        "N2+" => Some(gasdb::n2_ion()),
        "O2+" => Some(gasdb::o2_ion()),
        "e-" => Some(gasdb::electron()),
        "CN" => Some(gasdb::cn()),
        "C2" => Some(gasdb::c2()),
        "CH4" => Some(gasdb::ch4()),
        "HCN" => Some(gasdb::hcn()),
        "H2" => Some(gasdb::h2()),
        "H" => Some(gasdb::h_atom()),
        "H+" => Some(gasdb::h_ion()),
        "He" => Some(gasdb::helium()),
        "C+" => Some(gasdb::c_ion()),
        "C" => Some(gasdb::c_atom()),
        _ => None,
    }
}

fn q_el(sp: &Species, t: f64) -> f64 {
    sp.electronic
        .iter()
        .map(|&(theta, g)| {
            let x = theta / t;
            if x > 600.0 {
                0.0
            } else {
                f64::from(g) * (-x).exp()
            }
        })
        .sum()
}

/// Active emitters for a sample: (line, n, q_el) and (system, n, q_el).
struct Emitters {
    lines: Vec<(AtomicLine, f64, f64)>,
    systems: Vec<(BandSystem, f64, f64)>,
}

fn collect_emitters(sample: &GasSample) -> Emitters {
    let mut lines = Vec::new();
    for line in standard_lines() {
        let n = sample.density_of(line.species);
        if n > 0.0 {
            if let Some(sp) = species_by_name(line.species) {
                lines.push((line, n, q_el(&sp, sample.t_exc)));
            }
        }
    }
    let mut systems = Vec::new();
    for sys in standard_systems() {
        let n = sample.density_of(sys.species);
        if n > 0.0 {
            if let Some(sp) = species_by_name(sys.species) {
                let q = q_el(&sp, sample.t_exc);
                systems.push((sys, n, q));
            }
        }
    }
    Emitters { lines, systems }
}

/// Compute the spectrum of one homogeneous sample on `lambda` \[m\], with
/// line profiles floored at `width_floor` \[m\] (0 for pure Doppler; set to
/// the spectrometer resolution to mimic measured spectra).
#[must_use]
pub fn spectrum(sample: &GasSample, lambda: &[f64], width_floor: f64) -> Spectrum {
    aerothermo_numerics::telemetry::counters::add(
        aerothermo_numerics::telemetry::Counter::SpectrumPoints,
        lambda.len() as u64,
    );
    let _sp = aerothermo_numerics::trace::span("spectrum_integration");
    let em = collect_emitters(sample);
    let (emission, absorption): (Vec<f64>, Vec<f64>) = lambda
        .par_iter()
        .map(|&lam| {
            let mut j = 0.0;
            for (line, n, q) in &em.lines {
                j += line_emission(line, lam, *n, *q, sample.t, sample.t_exc, width_floor);
            }
            for (sys, n, q) in &em.systems {
                j += system_emission(sys, lam, *n, *q, sample.t_exc);
            }
            let b = planck_lambda(lam, sample.t_exc);
            let kappa = if b > 1e-30 { j / b } else { 0.0 };
            (j, kappa)
        })
        .unzip();
    Spectrum {
        lambda: lambda.to_vec(),
        emission,
        absorption,
    }
}

/// Saha-equilibrium estimate of an ionized species' number density from its
/// parent neutral:
/// `n_ion·n_e/n_neutral = (Q_ion·Q_e/Q_neutral)·exp(−IP/T)` with the full
/// partition functions of the species records. Used to estimate N₂⁺ behind
/// strong shocks when the flow model carries only the 9-species set.
#[must_use]
pub fn saha_ion_density(
    neutral: &Species,
    ion: &Species,
    n_neutral: f64,
    n_electron: f64,
    t: f64,
) -> f64 {
    if n_neutral <= 0.0 || n_electron <= 0.0 {
        return 0.0;
    }
    let e = gasdb::electron();
    // ln(n_ion) = φ_ion + φ_e − φ_neutral + ln n_neutral − ln n_e.
    let ln_n = ion.ln_concentration_potential(t) + e.ln_concentration_potential(t)
        - neutral.ln_concentration_potential(t)
        + n_neutral.ln()
        - n_electron.ln();
    ln_n.clamp(-600.0, 600.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelength_grid;

    fn hot_air_sample() -> GasSample {
        GasSample {
            t: 12_000.0,
            t_exc: 12_000.0,
            densities: vec![
                ("N2".into(), 5e21),
                ("N2+".into(), 5e18),
                ("N".into(), 2e22),
                ("O".into(), 6e21),
            ],
        }
    }

    #[test]
    fn air_spectrum_peaks_in_violet() {
        // N2+ first negative at ~0.39 μm dominates nonequilibrium air — the
        // structure of the paper's Fig. 8.
        let lam = wavelength_grid(0.25e-6, 1.0e-6, 1500);
        let sp = spectrum(&hot_air_sample(), &lam, 2e-9);
        let peak = sp.lambda[sp.peak_index()];
        assert!(
            peak > 0.33e-6 && peak < 0.43e-6,
            "peak at {:.1} nm",
            peak * 1e9
        );
    }

    #[test]
    fn atomic_lines_visible_in_nir() {
        let lam = wavelength_grid(0.7e-6, 0.95e-6, 2000);
        let sp = spectrum(&hot_air_sample(), &lam, 1e-9);
        // The O 777 and N 821/868 features must rise above their local
        // surroundings.
        let j_at = |target: f64| -> f64 {
            let i = lam.iter().position(|&l| l >= target).unwrap();
            sp.emission[i]
        };
        let line_jump = j_at(777.4e-9) / j_at(760.0e-9).max(1e-30);
        assert!(line_jump > 3.0, "O 777 contrast = {line_jump}");
    }

    #[test]
    fn absorption_consistent_with_kirchhoff() {
        let lam = wavelength_grid(0.3e-6, 0.5e-6, 300);
        let s = hot_air_sample();
        let sp = spectrum(&s, &lam, 2e-9);
        for i in 0..lam.len() {
            let b = planck_lambda(lam[i], s.t_exc);
            if b > 1e-30 && sp.emission[i] > 0.0 {
                assert!(
                    (sp.absorption[i] * b - sp.emission[i]).abs() < 1e-9 * sp.emission[i],
                    "Kirchhoff violated at {i}"
                );
            }
        }
    }

    #[test]
    fn cold_sample_emits_nothing() {
        let lam = wavelength_grid(0.3e-6, 1.0e-6, 100);
        let s = GasSample::equilibrium(300.0, vec![("N2".into(), 1e25)]);
        let sp = spectrum(&s, &lam, 1e-9);
        assert!(sp.total_emission() < 1e-20);
    }

    #[test]
    fn titan_sample_shows_cn_violet() {
        let lam = wavelength_grid(0.3e-6, 0.7e-6, 800);
        let s = GasSample::equilibrium(7000.0, vec![("N2".into(), 1e23), ("CN".into(), 5e19)]);
        let sp = spectrum(&s, &lam, 2e-9);
        let peak = sp.lambda[sp.peak_index()];
        assert!(
            (peak - 388.3e-9).abs() < 10e-9,
            "CN violet head expected, peak at {:.1} nm",
            peak * 1e9
        );
    }

    #[test]
    fn saha_estimate_behaves() {
        let n2 = gasdb::n2();
        let n2p = gasdb::n2_ion();
        let lo = saha_ion_density(&n2, &n2p, 1e22, 1e20, 8_000.0);
        let hi = saha_ion_density(&n2, &n2p, 1e22, 1e20, 14_000.0);
        assert!(hi > lo, "ionization must grow with T");
        assert!(lo >= 0.0 && hi.is_finite());
        assert_eq!(saha_ion_density(&n2, &n2p, 0.0, 1e20, 10_000.0), 0.0);
    }

    #[test]
    fn band_integral_partitions_total() {
        let lam = wavelength_grid(0.25e-6, 1.0e-6, 900);
        let sp = spectrum(&hot_air_sample(), &lam, 2e-9);
        let total = sp.total_emission();
        let left = sp.band_integral(0.25e-6, 0.5e-6);
        let right = sp.band_integral(0.5e-6, 1.0e-6);
        assert!(((left + right) - total).abs() < 1e-6 * total);
        // The violet band carries most of this sample's emission.
        assert!(left > right, "violet {left:.3e} vs red {right:.3e}");
        // Out-of-range band is empty.
        assert_eq!(sp.band_integral(2e-6, 3e-6), 0.0);
    }

    #[test]
    fn nonequilibrium_exc_temperature_controls_emission() {
        let lam = wavelength_grid(0.38e-6, 0.40e-6, 50);
        let mut s = hot_air_sample();
        s.t_exc = 6_000.0;
        let cold_exc = spectrum(&s, &lam, 2e-9).total_emission();
        s.t_exc = 12_000.0;
        let hot_exc = spectrum(&s, &lam, 2e-9).total_emission();
        assert!(hot_exc > cold_exc * 10.0);
    }
}
