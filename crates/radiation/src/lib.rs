//! Spectral shock-layer radiation.
//!
//! A compact NEQAIR-class model: emission and absorption coefficients over a
//! wavelength grid from atomic multiplet lines (N, O) and molecular band
//! systems (N₂⁺ first negative, N₂ first/second positive, CN violet), with
//! excited-state populations Boltzmann at the electronic/vibrational
//! temperature — the standard two-temperature quasi-steady-state reduction —
//! and tangent-slab radiative transport for wall fluxes and emergent
//! radiance (the paper's Figs. 2 and 8).
//!
//! * [`planck`] — Planck function and exponential integrals,
//! * [`lines`] — atomic line data and Doppler-broadened emission,
//! * [`bands`] — smeared molecular band systems,
//! * [`spectra`] — assembled emission/absorption spectra for a gas sample,
//! * [`tangent_slab`] — slab transport: emergent radiance and wall flux.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod bands;
pub mod lines;
pub mod planck;
pub mod spectra;
pub mod tangent_slab;

/// A homogeneous gas sample for radiation purposes.
#[derive(Debug, Clone)]
pub struct GasSample {
    /// Heavy-particle translational temperature \[K\] (Doppler widths).
    pub t: f64,
    /// Excitation temperature \[K\] for electronic/vibrational populations
    /// (= T_v = T_e in the two-temperature model; = T in equilibrium).
    pub t_exc: f64,
    /// Species number densities \[1/m³\] by name.
    pub densities: Vec<(String, f64)>,
}

impl GasSample {
    /// Number density of `name`, 0 when absent.
    #[must_use]
    pub fn density_of(&self, name: &str) -> f64 {
        self.densities
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// An equilibrium sample (T_exc = T).
    #[must_use]
    pub fn equilibrium(t: f64, densities: Vec<(String, f64)>) -> Self {
        Self {
            t,
            t_exc: t,
            densities,
        }
    }
}

/// Uniform wavelength grid \[m\] from `lo` to `hi` with `n` points.
///
/// # Panics
/// Panics when `n < 2` or the bounds are not increasing and positive.
#[must_use]
pub fn wavelength_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_sample_lookup() {
        let s = GasSample::equilibrium(5000.0, vec![("N2".into(), 1e22), ("CN".into(), 1e18)]);
        assert_eq!(s.density_of("CN"), 1e18);
        assert_eq!(s.density_of("O2"), 0.0);
        assert_eq!(s.t_exc, s.t);
    }

    #[test]
    fn wavelength_grid_covers_range() {
        let g = wavelength_grid(0.2e-6, 1.0e-6, 81);
        assert_eq!(g.len(), 81);
        assert!((g[0] - 0.2e-6).abs() < 1e-18);
        assert!((g[80] - 1.0e-6).abs() < 1e-18);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }
}
