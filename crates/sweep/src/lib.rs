//! Batched case-sweep orchestration: declarative case specs, a bounded
//! worker pool with per-case fault isolation, and an append-only result
//! store with aggregated telemetry.
//!
//! The paper's figures are *envelopes*, not single runs: heating and
//! shock-shape results computed across trajectory points, solver levels
//! (NS / PNS / E+BL / VSL), and gas models, then compared. This crate
//! makes that batch shape a first-class subsystem instead of serial
//! process re-launches:
//!
//! * [`spec`] — the declarative [`spec::CaseSpec`] model: solver level ×
//!   gas model × freestream point × grid size, JSON-round-trippable.
//! * [`plan`] — [`plan::SweepPlan`] builders: cartesian product, zip,
//!   and adapters from `aerothermo_atmosphere::trajectory` points, plus
//!   the built-in fig02/fig10 preset plans the driver binary ships.
//! * [`runner`] — maps a case spec onto the actual solver stack
//!   (correlations, VSL, Euler+boundary-layer, PNS, NS), delegating
//!   retry/rollback to `aerothermo_solvers::runctl`.
//! * [`pool`] — the scheduler: N worker threads pulling from a
//!   priority-ordered queue, per-case wall-clock timeout, and panic
//!   isolation via `catch_unwind` so one diverging case degrades to a
//!   [`pool::CaseStatus::Failed`] record instead of killing the sweep.
//! * [`store`] — crash-safe JSONL result stream (one flushed line per
//!   finished case) with resume support: completed case IDs found in an
//!   existing stream are skipped on restart.
//! * [`report`] — the end-of-sweep aggregate report, schema-compatible
//!   with the figure binaries' `--report` JSON (checks / counters /
//!   metrics), plus the `--strict` exit-code policy.
//! * [`events`] — live JSONL lifecycle-event stream (`--events=PATH`):
//!   plan/case start/finish/retry lines plus utilization heartbeats,
//!   order-normalized deterministic across worker counts.
//! * [`shard`] — distributed scale-out: deterministic case partitioning
//!   (`--shard=i/n`, round-robin or cost-balanced, a pure function of the
//!   plan), shard-stamped per-process stores, and the `federate` merge
//!   engine reconstructing the canonical store with gap/overlap/torn-tail
//!   detection.
//!
//! # Determinism
//!
//! Cases are bitwise-deterministic regardless of worker count or
//! scheduling order: each case runs its kernels pinned to one thread
//! (`rayon::ThreadPool::install(1)`) and starts from a cold per-thread
//! equilibrium warm-start cache
//! ([`aerothermo_gas::reset_thread_warm_cache`]), so no case's numbers
//! depend on which worker it landed on or what ran there before.

#![warn(missing_docs)]

pub mod events;
pub mod plan;
pub mod pool;
pub mod report;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod store;

pub use plan::SweepPlan;
pub use pool::{
    run_sweep, CaseOutcome, CaseStatus, RecordHook, ScheduleOrder, SweepOptions, SweepReport,
};
pub use shard::{
    federate, federate_to_store, shard_plan, shard_store_path, FederationReport, ShardSpec,
    ShardStrategy,
};
pub use spec::{CaseSpec, FlowSpec, GasSpec, LevelSpec};
pub use store::{load_records, load_store, normalized_fingerprint, StoreLoad};
