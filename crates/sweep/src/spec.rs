//! Declarative case specifications: what to run, on which gas, at which
//! flow condition — JSON-round-trippable so plans can be shipped as files.

use aerothermo_gas::{
    air11_equilibrium, air5_equilibrium, air9_equilibrium, jupiter_equilibrium, titan_equilibrium,
    EquilibriumGas,
};
use aerothermo_numerics::json::{self, write_f64, write_string, Value};
use aerothermo_numerics::telemetry::SolverError;

/// Gas model selector.
///
/// Selectors are *recipes*, not instances: workers materialize the gas
/// inside the case so nothing is shared across threads.
#[derive(Debug, Clone, PartialEq)]
pub enum GasSpec {
    /// Calorically perfect air (γ = 1.4).
    IdealAir,
    /// 5-species equilibrium air.
    Air5,
    /// 9-species equilibrium air.
    Air9,
    /// 11-species (ionizing) equilibrium air.
    Air11,
    /// N₂/CH₄ Titan atmosphere at the given CH₄ mole fraction.
    Titan {
        /// CH₄ mole fraction (e.g. 0.05).
        ch4: f64,
    },
    /// H₂/He Jupiter atmosphere at the given He mole fraction.
    Jupiter {
        /// He mole fraction (e.g. 0.11).
        he: f64,
    },
}

impl GasSpec {
    /// Stable kind tag used in JSON and in generated case IDs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GasSpec::IdealAir => "ideal_air",
            GasSpec::Air5 => "air5",
            GasSpec::Air9 => "air9",
            GasSpec::Air11 => "air11",
            GasSpec::Titan { .. } => "titan",
            GasSpec::Jupiter { .. } => "jupiter",
        }
    }

    /// Build the equilibrium gas this selector names, or `None` for the
    /// ideal gas (which has no equilibrium chemistry to solve).
    #[must_use]
    pub fn equilibrium(&self) -> Option<EquilibriumGas> {
        match self {
            GasSpec::IdealAir => None,
            GasSpec::Air5 => Some(air5_equilibrium()),
            GasSpec::Air9 => Some(air9_equilibrium()),
            GasSpec::Air11 => Some(air11_equilibrium()),
            GasSpec::Titan { ch4 } => Some(titan_equilibrium(*ch4)),
            GasSpec::Jupiter { he } => Some(jupiter_equilibrium(*he)),
        }
    }

    fn to_json(&self) -> String {
        match self {
            GasSpec::Titan { ch4 } => {
                format!("{{\"kind\": \"titan\", \"ch4\": {}}}", write_f64(*ch4))
            }
            GasSpec::Jupiter { he } => {
                format!("{{\"kind\": \"jupiter\", \"he\": {}}}", write_f64(*he))
            }
            other => format!("{{\"kind\": {}}}", write_string(other.name())),
        }
    }

    fn from_json(v: &Value) -> Result<Self, SolverError> {
        let kind = req_str(v, "kind", "gas")?;
        match kind {
            "ideal_air" => Ok(GasSpec::IdealAir),
            "air5" => Ok(GasSpec::Air5),
            "air9" => Ok(GasSpec::Air9),
            "air11" => Ok(GasSpec::Air11),
            "titan" => Ok(GasSpec::Titan {
                ch4: req_f64(v, "ch4", "gas")?,
            }),
            "jupiter" => Ok(GasSpec::Jupiter {
                he: req_f64(v, "he", "gas")?,
            }),
            other => Err(SolverError::BadInput(format!("unknown gas kind '{other}'"))),
        }
    }
}

/// Solver level (the paper's method hierarchy) plus its grid size.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelSpec {
    /// Engineering correlation: Sutton-Graves convective heating only.
    /// Effectively free; the cheapest rung of the hierarchy.
    Correlation {
        /// Sutton-Graves constant for the atmosphere (≈ 1.74e-4 for air,
        /// ≈ 1.7e-4 for N₂-dominated atmospheres).
        k_sg: f64,
    },
    /// Stagnation-line viscous shock layer (equilibrium gas required).
    Vsl {
        /// Grid points across the layer.
        n_points: usize,
        /// Solve the radiating VSL and run spectral tangent-slab
        /// transport over the converged layer (`q_rad_w_m2` metric).
        radiating: bool,
    },
    /// Euler shock capture + Fay-Riddell boundary-layer heating on a
    /// hemisphere.
    EulerBl {
        /// Cells along the body.
        ni: usize,
        /// Cells across the shock layer.
        nj: usize,
        /// Pseudo-time step budget.
        max_steps: usize,
        /// Residual-ratio convergence tolerance.
        tol: f64,
    },
    /// Parabolized Navier-Stokes afterbody march on a sphere-cone.
    Pns {
        /// Stations along the body.
        ni: usize,
        /// Points across the layer.
        nj: usize,
        /// First marched station (the subsonic nose is anchored, not
        /// marched).
        i_start: usize,
    },
    /// Full Navier-Stokes relaxation on a hemisphere.
    Ns {
        /// Cells along the body.
        ni: usize,
        /// Cells across the shock layer.
        nj: usize,
        /// Pseudo-time step budget.
        max_steps: usize,
        /// Residual-ratio convergence tolerance.
        tol: f64,
    },
    /// Scheduler-test stand-in: sleeps `work_ms`, then succeeds, fails
    /// with a recoverable error, or panics. Never touches the solvers.
    Synthetic {
        /// Simulated compute time per attempt \[ms\].
        work_ms: f64,
        /// `"ok"`, `"fail"` (recoverable error every attempt), or
        /// `"panic"`.
        outcome: String,
    },
}

impl LevelSpec {
    /// Stable kind tag used in JSON and in generated case IDs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LevelSpec::Correlation { .. } => "correlation",
            LevelSpec::Vsl { .. } => "vsl",
            LevelSpec::EulerBl { .. } => "euler_bl",
            LevelSpec::Pns { .. } => "pns",
            LevelSpec::Ns { .. } => "ns",
            LevelSpec::Synthetic { .. } => "synthetic",
        }
    }

    /// Relative cost estimate used by the cheapest-first scheduler. The
    /// absolute scale is meaningless; only the ordering matters, and it
    /// follows the paper's method-cost hierarchy.
    #[must_use]
    pub fn cost_estimate(&self) -> f64 {
        match self {
            LevelSpec::Correlation { .. } => 1e-3,
            LevelSpec::Synthetic { work_ms, .. } => 1e-3 * work_ms.max(0.0),
            LevelSpec::Vsl {
                n_points,
                radiating,
            } => {
                let base = *n_points as f64;
                if *radiating {
                    40.0 * base
                } else {
                    base
                }
            }
            LevelSpec::EulerBl {
                ni, nj, max_steps, ..
            } => 0.05 * (*ni * *nj * *max_steps) as f64,
            LevelSpec::Pns { ni, nj, .. } => 2.0 * (*ni * *nj) as f64,
            LevelSpec::Ns {
                ni, nj, max_steps, ..
            } => 0.1 * (*ni * *nj * *max_steps) as f64,
        }
    }

    fn to_json(&self) -> String {
        match self {
            LevelSpec::Correlation { k_sg } => {
                format!(
                    "{{\"kind\": \"correlation\", \"k_sg\": {}}}",
                    write_f64(*k_sg)
                )
            }
            LevelSpec::Vsl {
                n_points,
                radiating,
            } => format!(
                "{{\"kind\": \"vsl\", \"n_points\": {n_points}, \"radiating\": {radiating}}}"
            ),
            LevelSpec::EulerBl {
                ni,
                nj,
                max_steps,
                tol,
            } => format!(
                "{{\"kind\": \"euler_bl\", \"ni\": {ni}, \"nj\": {nj}, \
                 \"max_steps\": {max_steps}, \"tol\": {}}}",
                write_f64(*tol)
            ),
            LevelSpec::Pns { ni, nj, i_start } => {
                format!("{{\"kind\": \"pns\", \"ni\": {ni}, \"nj\": {nj}, \"i_start\": {i_start}}}")
            }
            LevelSpec::Ns {
                ni,
                nj,
                max_steps,
                tol,
            } => format!(
                "{{\"kind\": \"ns\", \"ni\": {ni}, \"nj\": {nj}, \
                 \"max_steps\": {max_steps}, \"tol\": {}}}",
                write_f64(*tol)
            ),
            LevelSpec::Synthetic { work_ms, outcome } => format!(
                "{{\"kind\": \"synthetic\", \"work_ms\": {}, \"outcome\": {}}}",
                write_f64(*work_ms),
                write_string(outcome)
            ),
        }
    }

    fn from_json(v: &Value) -> Result<Self, SolverError> {
        let kind = req_str(v, "kind", "level")?;
        match kind {
            "correlation" => Ok(LevelSpec::Correlation {
                k_sg: req_f64(v, "k_sg", "level")?,
            }),
            "vsl" => Ok(LevelSpec::Vsl {
                n_points: req_usize(v, "n_points", "level")?,
                radiating: req_bool(v, "radiating", "level")?,
            }),
            "euler_bl" => Ok(LevelSpec::EulerBl {
                ni: req_usize(v, "ni", "level")?,
                nj: req_usize(v, "nj", "level")?,
                max_steps: req_usize(v, "max_steps", "level")?,
                tol: req_f64(v, "tol", "level")?,
            }),
            "pns" => Ok(LevelSpec::Pns {
                ni: req_usize(v, "ni", "level")?,
                nj: req_usize(v, "nj", "level")?,
                i_start: req_usize(v, "i_start", "level")?,
            }),
            "ns" => Ok(LevelSpec::Ns {
                ni: req_usize(v, "ni", "level")?,
                nj: req_usize(v, "nj", "level")?,
                max_steps: req_usize(v, "max_steps", "level")?,
                tol: req_f64(v, "tol", "level")?,
            }),
            "synthetic" => Ok(LevelSpec::Synthetic {
                work_ms: req_f64(v, "work_ms", "level")?,
                outcome: req_str(v, "outcome", "level")?.to_string(),
            }),
            other => Err(SolverError::BadInput(format!(
                "unknown level kind '{other}'"
            ))),
        }
    }
}

/// Freestream / body condition for one case.
///
/// `time_s` and `altitude_m` are optional provenance for trajectory-derived
/// cases (NaN ⇒ not applicable; serialized as JSON `null`).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Freestream density \[kg/m³\].
    pub rho_inf: f64,
    /// Freestream velocity \[m/s\].
    pub u_inf: f64,
    /// Freestream temperature \[K\].
    pub t_inf: f64,
    /// Freestream pressure \[Pa\] (required by the CFD levels; the VSL
    /// computes its own from ρ and T).
    pub p_inf: f64,
    /// Nose radius \[m\].
    pub nose_radius: f64,
    /// Wall temperature \[K\].
    pub t_wall: f64,
    /// Trajectory time of this condition \[s\]; NaN when not
    /// trajectory-derived.
    pub time_s: f64,
    /// Trajectory altitude of this condition \[m\]; NaN when not
    /// trajectory-derived.
    pub altitude_m: f64,
}

/// NaN-tolerant float equality: provenance fields use NaN as "absent", and
/// a serialization roundtrip must compare equal, so NaN == NaN here
/// (bitwise comparison, like `total_cmp`).
fn f64_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

impl PartialEq for FlowSpec {
    fn eq(&self, other: &Self) -> bool {
        f64_eq(self.rho_inf, other.rho_inf)
            && f64_eq(self.u_inf, other.u_inf)
            && f64_eq(self.t_inf, other.t_inf)
            && f64_eq(self.p_inf, other.p_inf)
            && f64_eq(self.nose_radius, other.nose_radius)
            && f64_eq(self.t_wall, other.t_wall)
            && f64_eq(self.time_s, other.time_s)
            && f64_eq(self.altitude_m, other.altitude_m)
    }
}

impl FlowSpec {
    /// Condition at an explicit freestream state (no trajectory
    /// provenance).
    #[must_use]
    pub fn new(
        rho_inf: f64,
        u_inf: f64,
        t_inf: f64,
        p_inf: f64,
        nose_radius: f64,
        t_wall: f64,
    ) -> Self {
        Self {
            rho_inf,
            u_inf,
            t_inf,
            p_inf,
            nose_radius,
            t_wall,
            time_s: f64::NAN,
            altitude_m: f64::NAN,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"rho_inf\": {}, \"u_inf\": {}, \"t_inf\": {}, \"p_inf\": {}, \
             \"nose_radius\": {}, \"t_wall\": {}, \"time_s\": {}, \"altitude_m\": {}}}",
            write_f64(self.rho_inf),
            write_f64(self.u_inf),
            write_f64(self.t_inf),
            write_f64(self.p_inf),
            write_f64(self.nose_radius),
            write_f64(self.t_wall),
            write_f64(self.time_s),
            write_f64(self.altitude_m),
        )
    }

    fn from_json(v: &Value) -> Result<Self, SolverError> {
        Ok(Self {
            rho_inf: req_f64(v, "rho_inf", "flow")?,
            u_inf: req_f64(v, "u_inf", "flow")?,
            t_inf: req_f64(v, "t_inf", "flow")?,
            p_inf: opt_f64(v, "p_inf"),
            nose_radius: req_f64(v, "nose_radius", "flow")?,
            t_wall: req_f64(v, "t_wall", "flow")?,
            time_s: opt_f64(v, "time_s"),
            altitude_m: opt_f64(v, "altitude_m"),
        })
    }
}

/// One fully-specified sweep case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Unique case identifier within the plan (the resume key).
    pub id: String,
    /// Gas model recipe.
    pub gas: GasSpec,
    /// Solver level and grid size.
    pub level: LevelSpec,
    /// Flow condition.
    pub flow: FlowSpec,
    /// Retry/rollback budget delegated to `runctl`.
    pub max_retries: usize,
    /// Per-case wall-clock timeout \[s\]; NaN or ≤ 0 disables the timeout.
    pub timeout_secs: f64,
    /// Fault injection: the case consumes its whole retry budget and
    /// fails with a `NonFinite` error — the `--inject-nan`-style
    /// divergence drill for the fault-isolation tests.
    pub inject_fault: bool,
}

impl PartialEq for CaseSpec {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.gas == other.gas
            && self.level == other.level
            && self.flow == other.flow
            && self.max_retries == other.max_retries
            && f64_eq(self.timeout_secs, other.timeout_secs)
            && self.inject_fault == other.inject_fault
    }
}

impl CaseSpec {
    /// Case with default control policy (3 retries, no timeout, no
    /// injected fault).
    #[must_use]
    pub fn new(id: impl Into<String>, gas: GasSpec, level: LevelSpec, flow: FlowSpec) -> Self {
        Self {
            id: id.into(),
            gas,
            level,
            flow,
            max_retries: 3,
            timeout_secs: f64::NAN,
            inject_fault: false,
        }
    }

    /// Scheduler cost estimate (see [`LevelSpec::cost_estimate`]).
    #[must_use]
    pub fn cost_estimate(&self) -> f64 {
        self.level.cost_estimate()
    }

    /// Effective timeout, `None` when disabled.
    #[must_use]
    pub fn timeout(&self) -> Option<std::time::Duration> {
        if self.timeout_secs.is_finite() && self.timeout_secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(self.timeout_secs))
        } else {
            None
        }
    }

    /// Serialize to a single-object JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\": {}, \"gas\": {}, \"level\": {}, \"flow\": {}, \
             \"max_retries\": {}, \"timeout_secs\": {}, \"inject_fault\": {}}}",
            write_string(&self.id),
            self.gas.to_json(),
            self.level.to_json(),
            self.flow.to_json(),
            self.max_retries,
            write_f64(self.timeout_secs),
            self.inject_fault,
        )
    }

    /// Deserialize from a parsed JSON value.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] naming the missing/mistyped field.
    pub fn from_json(v: &Value) -> Result<Self, SolverError> {
        Ok(Self {
            id: req_str(v, "id", "case")?.to_string(),
            gas: GasSpec::from_json(
                v.get("gas")
                    .ok_or_else(|| SolverError::BadInput("case missing 'gas'".into()))?,
            )?,
            level: LevelSpec::from_json(
                v.get("level")
                    .ok_or_else(|| SolverError::BadInput("case missing 'level'".into()))?,
            )?,
            flow: FlowSpec::from_json(
                v.get("flow")
                    .ok_or_else(|| SolverError::BadInput("case missing 'flow'".into()))?,
            )?,
            max_retries: req_usize(v, "max_retries", "case")?,
            timeout_secs: opt_f64(v, "timeout_secs"),
            inject_fault: req_bool(v, "inject_fault", "case")?,
        })
    }

    /// Parse a case from a JSON document string.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on parse or schema violations.
    pub fn parse(doc: &str) -> Result<Self, SolverError> {
        let v = json::parse(doc).map_err(|e| SolverError::BadInput(format!("case JSON: {e}")))?;
        Self::from_json(&v)
    }
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, SolverError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| SolverError::BadInput(format!("{ctx} missing number '{key}'")))
}

/// Optional float: absent or `null` parses as NaN (the writers' encoding
/// of "not applicable").
fn opt_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn req_usize(v: &Value, key: &str, ctx: &str) -> Result<usize, SolverError> {
    let x = req_f64(v, key, ctx)?;
    if x.fract() == 0.0 && x >= 0.0 && x <= usize::MAX as f64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Ok(x as usize)
    } else {
        Err(SolverError::BadInput(format!(
            "{ctx} field '{key}' is not a non-negative integer: {x}"
        )))
    }
}

fn req_bool(v: &Value, key: &str, ctx: &str) -> Result<bool, SolverError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(SolverError::BadInput(format!(
            "{ctx} missing boolean '{key}'"
        ))),
    }
}

fn req_str<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str, SolverError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| SolverError::BadInput(format!("{ctx} missing string '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flow() -> FlowSpec {
        FlowSpec::new(3e-4, 6700.0, 230.0, 20.0, 0.6, 1500.0)
    }

    #[test]
    fn case_json_roundtrips_every_variant() {
        let levels = [
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            LevelSpec::Vsl {
                n_points: 40,
                radiating: true,
            },
            LevelSpec::EulerBl {
                ni: 21,
                nj: 41,
                max_steps: 2500,
                tol: 1e-2,
            },
            LevelSpec::Pns {
                ni: 70,
                nj: 41,
                i_start: 10,
            },
            LevelSpec::Ns {
                ni: 21,
                nj: 57,
                max_steps: 400,
                tol: 1e-9,
            },
            LevelSpec::Synthetic {
                work_ms: 5.0,
                outcome: "ok".to_string(),
            },
        ];
        let gases = [
            GasSpec::IdealAir,
            GasSpec::Air5,
            GasSpec::Air9,
            GasSpec::Air11,
            GasSpec::Titan { ch4: 0.05 },
            GasSpec::Jupiter { he: 0.11 },
        ];
        for (k, (level, gas)) in levels.iter().zip(gases.iter()).enumerate() {
            let mut case =
                CaseSpec::new(format!("c{k}"), gas.clone(), level.clone(), sample_flow());
            case.max_retries = k;
            case.inject_fault = k % 2 == 0;
            let back = CaseSpec::parse(&case.to_json()).expect("roundtrip");
            assert_eq!(back, case, "variant {k}");
        }
    }

    #[test]
    fn nan_provenance_roundtrips_as_null() {
        let case = CaseSpec::new(
            "c",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            sample_flow(),
        );
        let doc = case.to_json();
        assert!(doc.contains("\"time_s\": null"), "{doc}");
        let back = CaseSpec::parse(&doc).unwrap();
        assert!(back.flow.time_s.is_nan());
        assert!(back.timeout_secs.is_nan());
        assert_eq!(back.timeout(), None);
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(CaseSpec::parse("not json").is_err());
        assert!(CaseSpec::parse("{\"id\": \"x\"}").is_err());
        let bad_gas = r#"{"id": "x", "gas": {"kind": "unobtainium"},
            "level": {"kind": "correlation", "k_sg": 1e-4},
            "flow": {"rho_inf": 1, "u_inf": 1, "t_inf": 1, "p_inf": 1,
                     "nose_radius": 1, "t_wall": 1},
            "max_retries": 0, "timeout_secs": null, "inject_fault": false}"#;
        let err = CaseSpec::parse(bad_gas).unwrap_err();
        assert!(err.to_string().contains("unobtainium"), "{err}");
    }

    #[test]
    fn cost_ordering_follows_method_hierarchy() {
        let corr = LevelSpec::Correlation { k_sg: 1.7e-4 }.cost_estimate();
        let vsl = LevelSpec::Vsl {
            n_points: 40,
            radiating: false,
        }
        .cost_estimate();
        let ebl = LevelSpec::EulerBl {
            ni: 21,
            nj: 41,
            max_steps: 2500,
            tol: 1e-2,
        }
        .cost_estimate();
        let ns = LevelSpec::Ns {
            ni: 21,
            nj: 57,
            max_steps: 16000,
            tol: 1e-9,
        }
        .cost_estimate();
        assert!(corr < vsl && vsl < ebl && ebl < ns);
    }
}
