//! Live sweep event stream: append-only JSONL lifecycle events emitted by
//! [`crate::pool::run_sweep`] to an `--events=PATH` sink.
//!
//! This is the stream a future `aerothermod` poll/stream API will serve:
//! a dashboard (or CI gate) tails the file and sees the sweep's life as it
//! happens — `plan_started`, per-case `case_started` / `case_retried` /
//! `case_finished` / `case_failed`, periodic `heartbeat` lines with worker
//! utilization and a completion ETA, and a terminal `plan_finished`
//! summary. Every line is one self-contained JSON object with a
//! monotonically increasing `seq`; the first line carries the stream
//! schema tag (`aerothermo-sweep-events-v1`).
//!
//! # Determinism
//!
//! Like the result store, the stream is *order-normalized deterministic*:
//! which events appear and what their payloads say about the cases is a
//! pure function of the plan, while arrival order, `seq`, worker indices,
//! wall-clock fields, and heartbeat cadence vary run to run.
//! [`normalize`] projects a stream onto that deterministic core — drop
//! heartbeats, drop timing/identity fields, sort case events by
//! `(case id, lifecycle rank)` — and two normalized streams from the same
//! plan are bitwise identical regardless of worker count (property-tested
//! in `tests/sweep_determinism.rs`).
//!
//! Event emission is best-effort after the sink opens: a full disk must
//! not kill a physics run, so write errors after creation are reported to
//! stderr once and further writes are skipped.

use aerothermo_numerics::json;
use aerothermo_numerics::telemetry::SolverError;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag carried by the `plan_started` line.
pub const SCHEMA: &str = "aerothermo-sweep-events-v1";

struct SinkInner {
    file: Option<std::fs::File>,
    seq: u64,
}

/// A thread-safe JSONL event sink (one flushed line per event).
pub struct EventSink {
    inner: Mutex<SinkInner>,
    t0: Instant,
}

impl EventSink {
    /// Create (truncating) the sink file.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] when the file cannot be created.
    pub fn create(path: &str) -> Result<Self, SolverError> {
        let file = std::fs::File::create(path)
            .map_err(|e| SolverError::BadInput(format!("events sink {path}: {e}")))?;
        Ok(Self {
            inner: Mutex::new(SinkInner {
                file: Some(file),
                seq: 0,
            }),
            t0: Instant::now(),
        })
    }

    /// Seconds since the sink was opened (the stream's time origin).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Emit one event: `body` is the inside of the JSON object after the
    /// `"seq"` field (e.g. `"\"event\": \"heartbeat\", ..."`).
    fn emit(&self, body: &str) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.seq;
        inner.seq += 1;
        let Some(file) = inner.file.as_mut() else {
            return;
        };
        let line = format!("{{\"seq\": {seq}, {body}}}\n");
        let res = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        if let Err(e) = res {
            eprintln!("warning: events sink write failed, disabling stream: {e}");
            inner.file = None;
        }
    }

    /// The sweep is starting: plan identity and scale.
    pub fn plan_started(&self, plan: &str, cases: usize, workers: usize) {
        self.emit(&format!(
            "\"event\": \"plan_started\", \"schema\": \"{SCHEMA}\", \"plan\": {}, \
             \"cases\": {cases}, \"workers\": {workers}",
            json::write_string(plan)
        ));
    }

    /// A worker picked up a case.
    pub fn case_started(&self, id: &str, worker: usize) {
        self.emit(&format!(
            "\"event\": \"case_started\", \"id\": {}, \"worker\": {worker}, \"t_secs\": {}",
            json::write_string(id),
            json::write_f64(self.elapsed_secs()),
        ));
    }

    /// A case consumed runctl retries (observable at case completion; one
    /// event summarizing the count, emitted before the terminal event).
    pub fn case_retried(&self, id: &str, retries: usize) {
        self.emit(&format!(
            "\"event\": \"case_retried\", \"id\": {}, \"retries\": {retries}",
            json::write_string(id),
        ));
    }

    /// A case finished cleanly (`completed`).
    pub fn case_finished(&self, id: &str, status: &str, retries: usize, wall_secs: f64) {
        self.emit(&format!(
            "\"event\": \"case_finished\", \"id\": {}, \"status\": \"{status}\", \
             \"retries\": {retries}, \"wall_secs\": {}",
            json::write_string(id),
            json::write_f64(wall_secs),
        ));
    }

    /// A case died (`failed` / `timed_out`).
    pub fn case_failed(&self, id: &str, status: &str, error: &str, wall_secs: f64) {
        self.emit(&format!(
            "\"event\": \"case_failed\", \"id\": {}, \"status\": \"{status}\", \
             \"error\": {}, \"wall_secs\": {}",
            json::write_string(id),
            json::write_string(error),
            json::write_f64(wall_secs),
        ));
    }

    /// Periodic progress pulse: worker utilization in `[0, 1]` and a
    /// completion ETA.
    ///
    /// `done_wall_secs` is the cumulative wall time of the `done` recorded
    /// cases; the ETA is their mean wall time scaled by the remaining case
    /// count over the active workers
    /// (`mean_case_secs * remaining / busy.clamp(1, workers)`), `null`
    /// until the first case lands. The old `elapsed/done * remaining`
    /// extrapolation was biased early during ramp-up: cases mid-flight
    /// inflated `elapsed` without advancing `done`, so the first
    /// heartbeats after a slow case overshot wildly and the estimate only
    /// converged once the pool reached steady state. Utilization is
    /// clamped so transient `busy > workers` readings (and a 0-clamped
    /// worker count) can never emit a ratio above 1.
    pub fn heartbeat(
        &self,
        busy: usize,
        workers: usize,
        done: usize,
        total: usize,
        done_wall_secs: f64,
    ) {
        let t = self.elapsed_secs();
        let eta = if done > 0 && total >= done && done_wall_secs.is_finite() {
            let mean_case_secs = done_wall_secs.max(0.0) / done as f64;
            let active = busy.clamp(1, workers.max(1)) as f64;
            json::write_f64(mean_case_secs * (total - done) as f64 / active)
        } else {
            "null".to_string()
        };
        let utilization = (busy as f64 / workers.max(1) as f64).clamp(0.0, 1.0);
        self.emit(&format!(
            "\"event\": \"heartbeat\", \"t_secs\": {}, \"busy\": {busy}, \
             \"workers\": {workers}, \"done\": {done}, \"total\": {total}, \
             \"utilization\": {}, \"eta_secs\": {eta}",
            json::write_f64(t),
            json::write_f64(utilization),
        ));
    }

    /// Terminal summary line.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_finished(
        &self,
        completed: usize,
        failed: usize,
        timed_out: usize,
        resumed: usize,
        halted: bool,
        elapsed_secs: f64,
    ) {
        self.emit(&format!(
            "\"event\": \"plan_finished\", \"completed\": {completed}, \"failed\": {failed}, \
             \"timed_out\": {timed_out}, \"resumed\": {resumed}, \"halted\": {halted}, \
             \"elapsed_secs\": {}",
            json::write_f64(elapsed_secs),
        ));
    }
}

/// Lifecycle rank used by [`normalize`]'s per-case sort.
fn rank(event: &str) -> u8 {
    match event {
        "plan_started" => 0,
        "case_started" => 1,
        "case_retried" => 2,
        "case_finished" | "case_failed" => 3,
        "plan_finished" => 5,
        _ => 4,
    }
}

/// Project an event stream onto its deterministic core: drop `heartbeat`
/// lines, drop nondeterministic fields (`seq`, `worker`, `t_secs`,
/// `wall_secs`, `elapsed_secs`, and `workers` on `plan_started`), and sort
/// case events by `(case id, lifecycle rank)` with `plan_started` first
/// and `plan_finished` last. Two runs of the same plan normalize to
/// bitwise-identical text regardless of worker count.
///
/// # Errors
/// [`SolverError::BadInput`] when a line is not valid JSON or lacks an
/// `event` field.
pub fn normalize(stream: &str) -> Result<String, SolverError> {
    let mut keyed: Vec<(u8, String, String)> = Vec::new();
    for (lineno, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| SolverError::BadInput(format!("events line {}: {e:?}", lineno + 1)))?;
        let event = v
            .get("event")
            .and_then(|e| e.as_str())
            .ok_or_else(|| {
                SolverError::BadInput(format!("events line {}: missing event field", lineno + 1))
            })?
            .to_string();
        if event == "heartbeat" {
            continue;
        }
        let id = v
            .get("id")
            .and_then(|i| i.as_str())
            .unwrap_or("")
            .to_string();
        let get_str = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let get_u = |k: &str| v.get(k).and_then(|x| x.as_f64()).map(|f| f as u64);
        let canon = match event.as_str() {
            "plan_started" => format!(
                "{{\"event\": \"plan_started\", \"plan\": {}, \"cases\": {}}}",
                json::write_string(&get_str("plan").unwrap_or_default()),
                get_u("cases").unwrap_or(0),
            ),
            "case_started" => format!(
                "{{\"event\": \"case_started\", \"id\": {}}}",
                json::write_string(&id)
            ),
            "case_retried" => format!(
                "{{\"event\": \"case_retried\", \"id\": {}, \"retries\": {}}}",
                json::write_string(&id),
                get_u("retries").unwrap_or(0),
            ),
            "case_finished" => format!(
                "{{\"event\": \"case_finished\", \"id\": {}, \"status\": {}, \"retries\": {}}}",
                json::write_string(&id),
                json::write_string(&get_str("status").unwrap_or_default()),
                get_u("retries").unwrap_or(0),
            ),
            "case_failed" => format!(
                "{{\"event\": \"case_failed\", \"id\": {}, \"status\": {}, \"error\": {}}}",
                json::write_string(&id),
                json::write_string(&get_str("status").unwrap_or_default()),
                json::write_string(&get_str("error").unwrap_or_default()),
            ),
            "plan_finished" => format!(
                "{{\"event\": \"plan_finished\", \"completed\": {}, \"failed\": {}, \
                 \"timed_out\": {}, \"resumed\": {}, \"halted\": {}}}",
                get_u("completed").unwrap_or(0),
                get_u("failed").unwrap_or(0),
                get_u("timed_out").unwrap_or(0),
                get_u("resumed").unwrap_or(0),
                matches!(v.get("halted"), Some(json::Value::Bool(true))),
            ),
            other => format!("{{\"event\": {}}}", json::write_string(other)),
        };
        keyed.push((rank(&event), id, canon));
    }
    keyed.sort_by(|a, b| {
        let ka = (u8::from(a.0 == 5), u8::from(a.0 != 0), &a.1, a.0);
        let kb = (u8::from(b.0 == 5), u8::from(b.0 != 0), &b.1, b.0);
        ka.cmp(&kb)
    });
    let mut out = String::with_capacity(stream.len());
    for (_, _, line) in keyed {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_writes_parseable_lines_with_monotone_seq() {
        let dir = std::env::temp_dir().join(format!("sweep-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl").to_str().unwrap().to_string();
        let sink = EventSink::create(&path).unwrap();
        sink.plan_started("p", 2, 1);
        sink.case_started("a", 0);
        sink.heartbeat(1, 1, 0, 2, 0.0);
        sink.case_finished("a", "completed", 0, 0.01);
        sink.plan_finished(1, 0, 0, 0, false, 0.02);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut prev = -1i64;
        for line in text.lines() {
            let v = json::parse(line).expect("line parses");
            let seq = v.get("seq").unwrap().as_f64().unwrap() as i64;
            assert_eq!(seq, prev + 1, "seq must be dense and monotone");
            prev = seq;
            assert!(v.get("event").unwrap().as_str().is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalize_drops_heartbeats_and_sorts_by_case() {
        let a = r#"{"seq": 0, "event": "plan_started", "schema": "x", "plan": "p", "cases": 2, "workers": 4}
{"seq": 1, "event": "case_started", "id": "b", "worker": 3, "t_secs": 0.1}
{"seq": 2, "event": "heartbeat", "t_secs": 0.2, "busy": 1, "workers": 4, "done": 0, "total": 2, "utilization": 0.25, "eta_secs": null}
{"seq": 3, "event": "case_started", "id": "a", "worker": 0, "t_secs": 0.15}
{"seq": 4, "event": "case_finished", "id": "b", "status": "completed", "retries": 0, "wall_secs": 0.4}
{"seq": 5, "event": "case_finished", "id": "a", "status": "completed", "retries": 0, "wall_secs": 0.2}
{"seq": 6, "event": "plan_finished", "completed": 2, "failed": 0, "timed_out": 0, "resumed": 0, "halted": false, "elapsed_secs": 0.5}
"#;
        let b = r#"{"seq": 0, "event": "plan_started", "schema": "x", "plan": "p", "cases": 2, "workers": 1}
{"seq": 1, "event": "case_started", "id": "a", "worker": 0, "t_secs": 0.0}
{"seq": 2, "event": "case_finished", "id": "a", "status": "completed", "retries": 0, "wall_secs": 0.1}
{"seq": 3, "event": "case_started", "id": "b", "worker": 0, "t_secs": 0.1}
{"seq": 4, "event": "heartbeat", "t_secs": 0.15, "busy": 1, "workers": 1, "done": 1, "total": 2, "utilization": 1, "eta_secs": 0.15}
{"seq": 5, "event": "case_finished", "id": "b", "status": "completed", "retries": 0, "wall_secs": 0.1}
{"seq": 6, "event": "plan_finished", "completed": 2, "failed": 0, "timed_out": 0, "resumed": 0, "halted": false, "elapsed_secs": 0.3}
"#;
        let na = normalize(a).unwrap();
        let nb = normalize(b).unwrap();
        assert_eq!(na, nb, "4-worker and 1-worker streams normalize equal");
        assert!(!na.contains("heartbeat"));
        assert!(na.starts_with("{\"event\": \"plan_started\""));
        assert!(na.trim_end().ends_with('}'));
        let last = na.lines().last().unwrap();
        assert!(last.contains("plan_finished"));
    }

    #[test]
    fn heartbeat_schema_eta_and_utilization_are_sane() {
        let dir = std::env::temp_dir().join(format!("sweep-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl").to_str().unwrap().to_string();
        let sink = EventSink::create(&path).unwrap();
        // Ramp-up: nothing done yet — ETA must be null, not an
        // extrapolation from in-flight cases.
        sink.heartbeat(3, 4, 0, 10, 0.0);
        // Steady state: 4 done at a 0.5 s mean, 3 busy of 4 workers.
        sink.heartbeat(3, 4, 4, 10, 2.0);
        // Degenerate inputs: 0-clamped workers and busy > workers must not
        // push utilization above 1; done > total must not yield a negative
        // ETA (it goes null via the total >= done guard).
        sink.heartbeat(5, 0, 2, 1, 1.0);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<json::Value> = text.lines().map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        for (v, line) in lines.iter().zip(text.lines()) {
            // Schema lock: exactly the fields the CI events gate requires.
            for key in [
                "seq",
                "event",
                "t_secs",
                "busy",
                "workers",
                "done",
                "total",
                "utilization",
            ] {
                assert!(v.get(key).is_some(), "heartbeat missing '{key}': {line}");
            }
            assert!(line.contains("\"eta_secs\":"), "missing eta_secs: {line}");
            let u = v.get("utilization").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of [0,1]");
        }
        assert!(
            lines[0].get("eta_secs").unwrap().is_null(),
            "no ETA before the first case lands"
        );
        // mean 0.5 s × 6 remaining / 3 active = 1.0 s.
        let eta = lines[1].get("eta_secs").unwrap().as_f64().unwrap();
        assert!((eta - 1.0).abs() < 1e-12, "eta {eta}");
        assert!(lines[2].get("eta_secs").unwrap().is_null());
        assert!(
            (lines[2].get("utilization").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-12,
            "0-clamped workers must saturate at 1.0, not exceed it"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalize_rejects_garbage() {
        assert!(normalize("not json\n").is_err());
        assert!(normalize("{\"seq\": 0}\n").is_err());
    }
}
