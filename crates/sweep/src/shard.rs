//! Distributed sweep sharding and result federation.
//!
//! A [`ShardSpec`] names one slice of a plan (`index`/`count` under a
//! [`ShardStrategy`]); partitioning is a **pure function of the plan**, so
//! any process — on any host, with no coordination — computes the same
//! assignment and runs exactly its slice into a shard-stamped JSONL store
//! ([`shard_store_path`]). The [`federate`] engine then merges N shard
//! stores back into the canonical plan-order store, detecting gaps
//! (cases no shard recorded), overlaps (duplicate case IDs: identical
//! payload → deduped, conflicting payload → typed error), and torn tails
//! (a shard killed mid-write), and reporting all of it on a typed
//! [`FederationReport`].
//!
//! Because each case runs pinned to one thread from a cold warm-cache
//! (see the crate docs), a federated N-shard run is *bitwise* identical —
//! under [`crate::store::normalized_fingerprint`] — to the single-process
//! run of the same plan. That equality is the built-in correctness oracle
//! the sharding tests and the CI `shard-drill` job hold.

use crate::plan::SweepPlan;
use crate::store::{load_store, CaseOutcome, CaseStatus, JsonlWriter, StoreLoad};
use aerothermo_numerics::json::write_string;
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_numerics::trace;

/// How cases are assigned to shards. Both strategies are deterministic
/// functions of the plan alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Case at plan position `k` goes to shard `k % count`. Trivially
    /// auditable; balanced when case costs are roughly uniform.
    #[default]
    RoundRobin,
    /// Longest-processing-time greedy: cases sorted by
    /// [`cost_estimate`](crate::spec::CaseSpec::cost_estimate) descending
    /// (plan order as the tiebreak), each assigned to the currently
    /// lightest shard (lowest index as the tiebreak). Balances wall time
    /// when costs are skewed — e.g. a plan mixing instant correlations
    /// with NS solves.
    CostBalanced,
}

impl ShardStrategy {
    /// Stable tag used on the wire and in CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round_robin",
            ShardStrategy::CostBalanced => "cost_balanced",
        }
    }

    /// Parse a strategy tag (accepts `round_robin`/`round-robin` and
    /// `cost_balanced`/`cost-balanced`).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on unknown tags.
    pub fn parse(s: &str) -> Result<Self, SolverError> {
        match s {
            "round_robin" | "round-robin" => Ok(ShardStrategy::RoundRobin),
            "cost_balanced" | "cost-balanced" => Ok(ShardStrategy::CostBalanced),
            other => Err(SolverError::BadInput(format!(
                "unknown shard strategy '{other}' (want round_robin or cost_balanced)"
            ))),
        }
    }
}

/// One shard's identity: which slice (`index` of `count`) of a plan this
/// process runs, under which [`ShardStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index.
    pub index: usize,
    /// Total shard count (≥ 1).
    pub count: usize,
    /// Assignment strategy (must match across all shards of a run).
    pub strategy: ShardStrategy,
}

impl ShardSpec {
    /// Build a validated spec.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] when `count` is 0 or `index >= count`.
    pub fn new(index: usize, count: usize, strategy: ShardStrategy) -> Result<Self, SolverError> {
        if count == 0 {
            return Err(SolverError::BadInput(
                "shard count must be >= 1".to_string(),
            ));
        }
        if index >= count {
            return Err(SolverError::BadInput(format!(
                "shard index {index} out of range for {count} shard(s)"
            )));
        }
        Ok(Self {
            index,
            count,
            strategy,
        })
    }

    /// Parse the CLI/wire form `i/n` (e.g. `--shard=0/2`).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on malformed strings or out-of-range
    /// index.
    pub fn parse(s: &str, strategy: ShardStrategy) -> Result<Self, SolverError> {
        let bad = || SolverError::BadInput(format!("shard spec '{s}' is not of the form i/n"));
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index = i.trim().parse::<usize>().map_err(|_| bad())?;
        let count = n.trim().parse::<usize>().map_err(|_| bad())?;
        Self::new(index, count, strategy)
    }

    /// The filename stamp, e.g. `shard0of2`.
    #[must_use]
    pub fn stamp(&self) -> String {
        format!("shard{}of{}", self.index, self.count)
    }

    /// Serialize to a one-line JSON document (the `aerothermod` job
    /// sidecar format).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\": {}, \"count\": {}, \"strategy\": {}}}",
            self.index,
            self.count,
            write_string(self.strategy.name())
        )
    }

    /// Parse the document written by [`ShardSpec::to_json`].
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on parse or schema violations.
    pub fn from_json_doc(doc: &str) -> Result<Self, SolverError> {
        use aerothermo_numerics::json::{self, Value};
        let v =
            json::parse(doc).map_err(|e| SolverError::BadInput(format!("shard spec JSON: {e}")))?;
        let count_of = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| SolverError::BadInput(format!("shard spec missing count '{key}'")))
        };
        let strategy = match v.get("strategy").and_then(Value::as_str) {
            Some(s) => ShardStrategy::parse(s)?,
            None => ShardStrategy::default(),
        };
        Self::new(count_of("index")?, count_of("count")?, strategy)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Assign every case of `plan` to a shard: returns `count` vectors of
/// plan-order case indices, one per shard, each internally in plan order.
/// Pure in the plan — every process computes the same partition.
#[must_use]
pub fn partition(plan: &SweepPlan, count: usize, strategy: ShardStrategy) -> Vec<Vec<usize>> {
    let _sp = trace::span("shard_partition");
    let count = count.max(1);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); count];
    match strategy {
        ShardStrategy::RoundRobin => {
            for k in 0..plan.cases.len() {
                shards[k % count].push(k);
            }
        }
        ShardStrategy::CostBalanced => {
            let mut order: Vec<usize> = (0..plan.cases.len()).collect();
            order.sort_by(|&a, &b| {
                plan.cases[b]
                    .cost_estimate()
                    .total_cmp(&plan.cases[a].cost_estimate())
                    .then(a.cmp(&b))
            });
            let mut loads = vec![0.0_f64; count];
            for k in order {
                let lightest = (0..count)
                    .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
                    .expect("count >= 1");
                loads[lightest] += plan.cases[k].cost_estimate();
                shards[lightest].push(k);
            }
            for s in &mut shards {
                s.sort_unstable();
            }
        }
    }
    shards
}

/// This shard's slice of the plan, as a sub-plan (same name, cases in
/// plan order) ready for [`crate::pool::run_sweep`].
///
/// # Errors
/// [`SolverError::BadInput`] when the full plan fails
/// [`SweepPlan::validate`]. An *empty* slice (more shards than cases) is
/// not an error here — the caller decides whether to no-op or complain.
pub fn shard_plan(plan: &SweepPlan, spec: &ShardSpec) -> Result<SweepPlan, SolverError> {
    plan.validate()?;
    let assignment = partition(plan, spec.count, spec.strategy);
    Ok(SweepPlan {
        name: plan.name.clone(),
        cases: assignment[spec.index]
            .iter()
            .map(|&k| plan.cases[k].clone())
            .collect(),
    })
}

/// Shard-stamped store path: `base-shard{i}of{n}.ext` (or appended when
/// `base` has no extension). `results.jsonl` at shard 0/2 becomes
/// `results-shard0of2.jsonl`.
#[must_use]
pub fn shard_store_path(base: &str, spec: &ShardSpec) -> String {
    let (dir, file) = match base.rfind('/') {
        Some(k) => (&base[..=k], &base[k + 1..]),
        None => ("", base),
    };
    match file.rfind('.') {
        Some(k) if k > 0 => format!("{dir}{}-{}{}", &file[..k], spec.stamp(), &file[k..]),
        _ => format!("{base}-{}", spec.stamp()),
    }
}

/// What [`federate`] found while merging shard stores. `gaps` or
/// `conflicts` nonempty means the federated store is *not* a complete
/// canonical result; duplicates, supersedes, and torn tails are expected
/// artifacts of retries, resumes, and kills, and are only counted.
#[derive(Debug, Clone, Default)]
pub struct FederationReport {
    /// Cases in the plan.
    pub plan_cases: usize,
    /// Shard store paths examined (missing files count — an absent store
    /// is an empty shard, its cases will show up in `gaps`).
    pub shard_stores: usize,
    /// Records parsed across all shard stores.
    pub records_read: usize,
    /// Records in the merged canonical store.
    pub merged: usize,
    /// Within one store, earlier records shadowed by a later record for
    /// the same case (retry-after-failure / resume artifacts).
    pub superseded: usize,
    /// Cross-shard duplicate case IDs whose payloads were bitwise
    /// identical (same [`CaseOutcome::fingerprint`]) and were deduped.
    pub duplicates_deduped: usize,
    /// Plan case IDs no shard store recorded (plan order).
    pub gaps: Vec<String>,
    /// Record IDs not in the plan (sorted). These are carried into the
    /// merged store (they may be a stale plan, not corruption) but
    /// flagged here.
    pub unknown_ids: Vec<String>,
    /// Shard stores whose final line was torn by a kill mid-write. The
    /// torn record itself is unrecoverable (at most one case re-runs on
    /// resume); counted so the operator knows a shard died uncleanly.
    pub torn_tails: usize,
    /// Counter entries dropped for version skew, summed over shards (see
    /// [`StoreLoad::unknown_counters`]).
    pub unknown_counters: usize,
}

impl FederationReport {
    /// True when every plan case is present exactly once and nothing
    /// outside the plan leaked in: the merged store is the canonical
    /// result.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.gaps.is_empty() && self.unknown_ids.is_empty() && self.merged == self.plan_cases
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "federated {} record(s) from {} shard store(s): {} merged, \
             {} superseded, {} deduped, {} gap(s), {} unknown id(s), {} torn tail(s)",
            self.records_read,
            self.shard_stores,
            self.merged,
            self.superseded,
            self.duplicates_deduped,
            self.gaps.len(),
            self.unknown_ids.len(),
            self.torn_tails
        )
    }

    /// Serialize to a JSON document (schema `aerothermo-federation-v1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let ids = |v: &[String]| {
            v.iter()
                .map(|s| write_string(s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"schema\": \"aerothermo-federation-v1\",\n  \
             \"plan_cases\": {},\n  \"shard_stores\": {},\n  \
             \"records_read\": {},\n  \"merged\": {},\n  \
             \"superseded\": {},\n  \"duplicates_deduped\": {},\n  \
             \"gaps\": [{}],\n  \"unknown_ids\": [{}],\n  \
             \"torn_tails\": {},\n  \"unknown_counters\": {},\n  \
             \"complete\": {}\n}}\n",
            self.plan_cases,
            self.shard_stores,
            self.records_read,
            self.merged,
            self.superseded,
            self.duplicates_deduped,
            ids(&self.gaps),
            ids(&self.unknown_ids),
            self.torn_tails,
            self.unknown_counters,
            self.complete()
        )
    }
}

/// Reduce one store's records to its canonical per-case view: within a
/// store, a later record for the same ID supersedes an earlier one —
/// that is exactly the resume/retry semantics (`completed_ids` skips only
/// completed cases, so a Failed record followed by a Completed re-run is
/// one case, latest record canonical). Returns records in first-seen
/// order plus the supersede count.
fn canonicalize(records: Vec<CaseOutcome>) -> (Vec<CaseOutcome>, usize) {
    let mut order: Vec<String> = Vec::with_capacity(records.len());
    let mut by_id: std::collections::HashMap<String, CaseOutcome> =
        std::collections::HashMap::new();
    let mut superseded = 0;
    for rec in records {
        match by_id.entry(rec.id.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(rec.id.clone());
                e.insert(rec);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                superseded += 1;
                e.insert(rec);
            }
        }
    }
    let out = order
        .into_iter()
        .map(|id| by_id.remove(&id).expect("inserted above"))
        .collect();
    (out, superseded)
}

/// Merge N shard stores into the canonical record set for `plan`.
///
/// Per store, later records supersede earlier ones for the same case
/// (retry/resume semantics). Across stores, a case appearing in more than
/// one shard is an *overlap*: bitwise-identical payloads (equal
/// [`CaseOutcome::fingerprint`]) dedupe with a count; conflicting
/// payloads are a typed error naming the case — two shards claiming
/// different results for one case means the partition (or determinism)
/// is broken and no silent pick is safe. A torn final line in a store is
/// tolerated (the kill-mid-write artifact) and counted; interior garbage
/// is corruption and errors as in [`load_store`]. A missing store file
/// is an empty shard.
///
/// Returns the merged records — plan cases in plan order, then unknown
/// IDs in sorted order — plus the [`FederationReport`].
///
/// # Errors
/// [`SolverError::BadInput`] on conflicting duplicate payloads, interior
/// store corruption, or an invalid plan.
pub fn federate(
    plan: &SweepPlan,
    shard_paths: &[String],
) -> Result<(Vec<CaseOutcome>, FederationReport), SolverError> {
    let _sp = trace::span("federate");
    plan.validate()?;
    let mut report = FederationReport {
        plan_cases: plan.cases.len(),
        shard_stores: shard_paths.len(),
        ..FederationReport::default()
    };
    // id → (record, source path) for the conflict error message.
    let mut merged: std::collections::HashMap<String, (CaseOutcome, String)> =
        std::collections::HashMap::new();
    for path in shard_paths {
        // Torn tail: file exists, is non-empty, and does not end in a
        // newline — the writer flushes whole lines, so this is a kill
        // mid-write. `load_store` already skips the torn line.
        if let Ok(bytes) = std::fs::read(path) {
            if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
                report.torn_tails += 1;
            }
        }
        let StoreLoad {
            records,
            unknown_counters,
        } = load_store(path)?;
        report.unknown_counters += unknown_counters;
        report.records_read += records.len();
        let (canonical, superseded) = canonicalize(records);
        report.superseded += superseded;
        for rec in canonical {
            match merged.get(&rec.id) {
                None => {
                    merged.insert(rec.id.clone(), (rec, path.clone()));
                }
                Some((prior, prior_path)) => {
                    if prior.fingerprint() == rec.fingerprint() {
                        report.duplicates_deduped += 1;
                    } else {
                        return Err(SolverError::BadInput(format!(
                            "federation conflict: case '{}' has different payloads in \
                             '{prior_path}' and '{path}' — shard partitions overlap with \
                             non-identical results",
                            rec.id
                        )));
                    }
                }
            }
        }
    }
    // Canonical order: plan cases in plan order, unknown IDs sorted after.
    let mut out = Vec::with_capacity(merged.len());
    for case in &plan.cases {
        match merged.remove(&case.id) {
            Some((rec, _)) => out.push(rec),
            None => report.gaps.push(case.id.clone()),
        }
    }
    let mut unknown: Vec<(String, CaseOutcome)> =
        merged.into_iter().map(|(id, (rec, _))| (id, rec)).collect();
    unknown.sort_by(|a, b| a.0.cmp(&b.0));
    for (id, rec) in unknown {
        report.unknown_ids.push(id);
        out.push(rec);
    }
    report.merged = out.len();
    Ok((out, report))
}

/// [`federate`] straight into a canonical store file at `out_path`
/// (truncating anything already there).
///
/// # Errors
/// As [`federate`], plus store-write I/O failures.
pub fn federate_to_store(
    plan: &SweepPlan,
    shard_paths: &[String],
    out_path: &str,
) -> Result<FederationReport, SolverError> {
    let (records, report) = federate(plan, shard_paths)?;
    if std::path::Path::new(out_path).exists() {
        std::fs::remove_file(out_path).map_err(|e| {
            SolverError::BadInput(format!("truncating federated store '{out_path}': {e}"))
        })?;
    }
    let mut writer = JsonlWriter::append(out_path)?;
    for rec in &records {
        writer.record(rec)?;
    }
    Ok(report)
}

/// Completed/resumed fraction of the plan across a set of shard stores —
/// the coordinator's progress probe. Ignores gaps/conflicts (a conflict
/// still counts each side once); errors only on unreadable stores.
///
/// # Errors
/// [`SolverError::BadInput`] on interior store corruption.
pub fn federated_done_count(shard_paths: &[String]) -> Result<usize, SolverError> {
    let mut done = std::collections::HashSet::new();
    for path in shard_paths {
        let load = load_store(path)?;
        let (canonical, _) = canonicalize(load.records);
        for rec in canonical {
            if matches!(rec.status, CaseStatus::Completed | CaseStatus::Resumed) {
                done.insert(rec.id);
            }
        }
    }
    Ok(done.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CaseSpec, FlowSpec, GasSpec, LevelSpec};

    fn plan_with_costs(costs: &[f64]) -> SweepPlan {
        let mut plan = SweepPlan::new("shard_test");
        for (k, &ms) in costs.iter().enumerate() {
            plan.push(CaseSpec::new(
                format!("c{k:02}"),
                GasSpec::IdealAir,
                LevelSpec::Synthetic {
                    work_ms: ms,
                    outcome: "ok".to_string(),
                },
                FlowSpec::new(1e-4, 7000.0, 200.0, 10.0, 0.5, 1500.0),
            ));
        }
        plan
    }

    fn outcome(id: &str, status: CaseStatus, q: f64) -> CaseOutcome {
        CaseOutcome {
            id: id.to_string(),
            status,
            wall_secs: 0.01,
            retries: 0,
            worker: 0,
            note: String::new(),
            error: None,
            metrics: vec![("q".to_string(), q)],
            counters: Vec::new(),
            postmortem: None,
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_store(dir: &std::path::Path, name: &str, recs: &[CaseOutcome]) -> String {
        let path = dir.join(name).to_str().unwrap().to_string();
        std::fs::remove_file(&path).ok();
        let mut w = JsonlWriter::append(&path).unwrap();
        for r in recs {
            w.record(r).unwrap();
        }
        path
    }

    #[test]
    fn spec_parses_and_validates() {
        let spec = ShardSpec::parse("1/4", ShardStrategy::RoundRobin).unwrap();
        assert_eq!((spec.index, spec.count), (1, 4));
        assert_eq!(spec.to_string(), "1/4");
        assert_eq!(spec.stamp(), "shard1of4");
        for bad in ["", "1", "1/", "/2", "2/2", "3/2", "a/b", "1/0"] {
            assert!(
                ShardSpec::parse(bad, ShardStrategy::RoundRobin).is_err(),
                "{bad} must not parse"
            );
        }
        let back = ShardSpec::from_json_doc(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(
            ShardStrategy::parse("cost-balanced").unwrap(),
            ShardStrategy::CostBalanced
        );
    }

    #[test]
    fn round_robin_partition_covers_exactly_once() {
        let plan = plan_with_costs(&[1.0; 7]);
        let shards = partition(&plan, 3, ShardStrategy::RoundRobin);
        assert_eq!(shards, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn cost_balanced_partition_balances_skewed_costs() {
        // One giant case plus six cheap ones: LPT puts the giant alone on
        // one shard and splits the cheap ones across the rest.
        let plan = plan_with_costs(&[600.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let shards = partition(&plan, 2, ShardStrategy::CostBalanced);
        let cost = |s: &[usize]| -> f64 { s.iter().map(|&k| plan.cases[k].cost_estimate()).sum() };
        assert_eq!(shards[0], vec![0], "giant case isolated");
        assert_eq!(shards[1], vec![1, 2, 3, 4, 5, 6]);
        assert!(cost(&shards[0]) > cost(&shards[1]));
        // Every case exactly once, whatever the strategy or count.
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostBalanced] {
            for count in [1, 2, 3, 7, 9] {
                let shards = partition(&plan, count, strategy);
                let mut all: Vec<usize> = shards.concat();
                all.sort_unstable();
                assert_eq!(all, (0..7).collect::<Vec<_>>(), "{strategy:?} {count}");
            }
        }
    }

    #[test]
    fn shard_plan_slices_in_plan_order() {
        let plan = plan_with_costs(&[1.0; 5]);
        let spec = ShardSpec::new(1, 2, ShardStrategy::RoundRobin).unwrap();
        let sub = shard_plan(&plan, &spec).unwrap();
        assert_eq!(sub.name, plan.name);
        let ids: Vec<&str> = sub.cases.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, ["c01", "c03"]);
        // More shards than cases: empty slice, not an error.
        let spec = ShardSpec::new(6, 7, ShardStrategy::RoundRobin).unwrap();
        assert!(shard_plan(&plan, &spec).unwrap().cases.is_empty());
    }

    #[test]
    fn shard_store_paths_are_stamped() {
        let spec = ShardSpec::new(0, 2, ShardStrategy::RoundRobin).unwrap();
        assert_eq!(
            shard_store_path("results.jsonl", &spec),
            "results-shard0of2.jsonl"
        );
        assert_eq!(
            shard_store_path("out/fig02-results.jsonl", &spec),
            "out/fig02-results-shard0of2.jsonl"
        );
        assert_eq!(shard_store_path("store", &spec), "store-shard0of2");
    }

    #[test]
    fn federate_merges_disjoint_shards_in_plan_order() {
        let dir = tmp_dir("merge");
        let plan = plan_with_costs(&[1.0; 4]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[
                outcome("c02", CaseStatus::Completed, 2.0),
                outcome("c00", CaseStatus::Completed, 0.0),
            ],
        );
        let s1 = write_store(
            &dir,
            "s1.jsonl",
            &[
                outcome("c03", CaseStatus::Completed, 3.0),
                outcome("c01", CaseStatus::Completed, 1.0),
            ],
        );
        let (records, report) = federate(&plan, &[s0, s1]).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            ["c00", "c01", "c02", "c03"],
            "plan order, not file order"
        );
        assert!(report.complete(), "{}", report.summary());
        assert_eq!(report.records_read, 4);
        assert_eq!(report.merged, 4);
        assert_eq!(report.duplicates_deduped, 0);
        assert_eq!(report.torn_tails, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_identical_payloads_dedupe() {
        let dir = tmp_dir("dupe");
        let plan = plan_with_costs(&[1.0; 2]);
        let shared = outcome("c00", CaseStatus::Completed, 4.25);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[shared.clone(), outcome("c01", CaseStatus::Completed, 1.0)],
        );
        // Same case in the other shard too, bitwise-identical payload
        // (wall/worker may differ — they are not in the fingerprint).
        let mut dup = shared;
        dup.wall_secs = 9.0;
        dup.worker = 3;
        let s1 = write_store(&dir, "s1.jsonl", &[dup]);
        let (records, report) = federate(&plan, &[s0, s1]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.duplicates_deduped, 1);
        assert!(report.complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_conflicting_payloads_are_typed_errors() {
        let dir = tmp_dir("conflict");
        let plan = plan_with_costs(&[1.0; 2]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[
                outcome("c00", CaseStatus::Completed, 4.25),
                outcome("c01", CaseStatus::Completed, 1.0),
            ],
        );
        let s1 = write_store(
            &dir,
            "s1.jsonl",
            &[outcome("c00", CaseStatus::Completed, 4.2500001)],
        );
        let err = federate(&plan, &[s0, s1]).expect_err("conflict must not merge silently");
        assert!(matches!(err, SolverError::BadInput(_)));
        assert!(err.to_string().contains("c00"), "{err}");
        assert!(err.to_string().contains("conflict"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_missing_shard_stores_become_gaps() {
        let dir = tmp_dir("empty");
        let plan = plan_with_costs(&[1.0; 3]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[outcome("c01", CaseStatus::Completed, 1.0)],
        );
        let s1 = write_store(&dir, "s1.jsonl", &[]); // empty file
        let missing = dir
            .join("never-written.jsonl")
            .to_str()
            .unwrap()
            .to_string();
        let (records, report) = federate(&plan, &[s0, s1, missing]).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.gaps, ["c00", "c02"]);
        assert!(!report.complete());
        assert_eq!(report.shard_stores, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated_and_counted() {
        let dir = tmp_dir("torn");
        let plan = plan_with_costs(&[1.0; 2]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[outcome("c00", CaseStatus::Completed, 0.0)],
        );
        let s1 = write_store(
            &dir,
            "s1.jsonl",
            &[outcome("c01", CaseStatus::Completed, 1.0)],
        );
        // SIGKILL mid-write on shard 1: torn trailing line, no newline.
        let mut bytes = std::fs::read(&s1).unwrap();
        bytes.extend_from_slice(b"{\"id\": \"c0");
        std::fs::write(&s1, &bytes).unwrap();
        let (records, report) = federate(&plan, &[s0, s1]).unwrap();
        assert_eq!(records.len(), 2, "torn line skipped, whole lines kept");
        assert_eq!(report.torn_tails, 1);
        assert!(report.complete(), "torn tail alone doesn't break coverage");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn within_store_retry_supersedes_without_conflict() {
        // A shard store from a resume-after-failure run: Failed record for
        // c00 followed by its Completed re-run. The later record is
        // canonical; this is not an overlap error.
        let dir = tmp_dir("retry");
        let plan = plan_with_costs(&[1.0; 2]);
        let mut failed = outcome("c00", CaseStatus::Failed, f64::NAN);
        failed.error = Some("diverged".to_string());
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[
                failed,
                outcome("c01", CaseStatus::Completed, 1.0),
                outcome("c00", CaseStatus::Completed, 0.5),
            ],
        );
        let (records, report) = federate(&plan, &[s0]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.superseded, 1);
        let c00 = records.iter().find(|r| r.id == "c00").unwrap();
        assert_eq!(c00.status, CaseStatus::Completed);
        assert_eq!(c00.metric("q"), Some(0.5));
        assert!(report.complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_ids_are_flagged_but_kept() {
        let dir = tmp_dir("unknown");
        let plan = plan_with_costs(&[1.0; 1]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[
                outcome("c00", CaseStatus::Completed, 0.0),
                outcome("zz-stale", CaseStatus::Completed, 9.0),
            ],
        );
        let (records, report) = federate(&plan, &[s0]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.unknown_ids, ["zz-stale"]);
        assert!(!report.complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn federate_to_store_writes_canonical_file() {
        let dir = tmp_dir("tostore");
        let plan = plan_with_costs(&[1.0; 2]);
        let s0 = write_store(
            &dir,
            "s0.jsonl",
            &[outcome("c01", CaseStatus::Completed, 1.0)],
        );
        let s1 = write_store(
            &dir,
            "s1.jsonl",
            &[outcome("c00", CaseStatus::Completed, 0.0)],
        );
        let out = dir.join("merged.jsonl").to_str().unwrap().to_string();
        std::fs::write(&out, "stale contents\n").unwrap();
        let report = federate_to_store(&plan, &[s0.clone(), s1.clone()], &out).unwrap();
        assert!(report.complete());
        let records = crate::store::load_records(&out).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["c00", "c01"], "stale file truncated, plan order");
        assert_eq!(federated_done_count(&[s0, s1]).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_is_parseable() {
        let report = FederationReport {
            plan_cases: 4,
            shard_stores: 2,
            records_read: 4,
            merged: 3,
            gaps: vec!["c03".to_string()],
            ..FederationReport::default()
        };
        let v = aerothermo_numerics::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("aerothermo-federation-v1")
        );
        assert_eq!(
            v.get("complete"),
            Some(&aerothermo_numerics::json::Value::Bool(false))
        );
        assert_eq!(v.get("merged").and_then(|m| m.as_f64()), Some(3.0));
    }
}
