//! Case execution: maps a [`CaseSpec`] onto the solver stack, delegating
//! retry/rollback to `aerothermo_solvers::runctl`.
//!
//! The runner is pure dispatch — determinism plumbing (single-thread
//! pinning, warm-cache reset, telemetry scoping, panic isolation, timeout)
//! is the pool's job, so `run_case` is also directly callable from tests.

use crate::spec::{CaseSpec, GasSpec, LevelSpec};
use aerothermo_core::heating::{convective_sutton_graves, tangent_slab_over_stations};
use aerothermo_gas::eq_table::air9_table;
use aerothermo_gas::transport::sutherland_air;
use aerothermo_gas::{GasModel, IdealGas};
use aerothermo_grid::bodies::{Hemisphere, SphereCone};
use aerothermo_grid::{stretch, StructuredGrid};
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_solvers::blayer::{fay_riddell, newtonian_velocity_gradient, FayRiddellInputs};
use aerothermo_solvers::euler2d::{Bc, BcSet, EulerOptions, EulerSolver};
use aerothermo_solvers::flight::{FlightRecorder, StepEvent, Trigger};
use aerothermo_solvers::ns2d::{NsSolver, Transport};
use aerothermo_solvers::pns::{PnsOptions, PnsSolver};
use aerothermo_solvers::runctl::{retry_with_backoff, run_recorded, RunOptions, Steppable};
use aerothermo_solvers::vsl::{solve_with_retry, VslProblem};

/// Spectral band for the radiating-VSL tangent-slab transport: 0.25-1.0 µm
/// at 400 samples covers the CN violet/red systems that dominate the
/// Titan-class layers this level exists for (same band as the fig02 bench).
const SLAB_BAND: (f64, f64, usize) = (0.25e-6, 1.0e-6, 400);

/// A successful case: named scalar metrics plus control-loop bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct CaseResult {
    /// Named scalar results, in emission order.
    pub metrics: Vec<(String, f64)>,
    /// Retry/rollback attempts consumed by the control layer.
    pub retries: usize,
    /// Short human note (grid size, convergence state, ...).
    pub note: String,
}

impl CaseResult {
    fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Look up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A failed case: the terminal error plus the retries burned reaching it.
#[derive(Debug)]
pub struct CaseFailure {
    /// The terminal solver error.
    pub error: SolverError,
    /// Retry attempts consumed before giving up.
    pub retries: usize,
    /// Flight-recorder black box (`aerothermo-blackbox-v1` JSON) for
    /// levels that run under `runctl`; `None` for levels with no
    /// step-by-step history (correlations, single-shot solves).
    pub postmortem: Option<String>,
}

impl CaseFailure {
    fn new(error: SolverError, retries: usize) -> Self {
        Self {
            error,
            retries,
            postmortem: None,
        }
    }

    fn with_postmortem(mut self, pm: Option<String>) -> Self {
        self.postmortem = pm;
        self
    }
}

fn flow_finite(case: &CaseSpec) -> Result<(), SolverError> {
    let f = &case.flow;
    for (name, v) in [
        ("rho_inf", f.rho_inf),
        ("u_inf", f.u_inf),
        ("t_inf", f.t_inf),
        ("nose_radius", f.nose_radius),
        ("t_wall", f.t_wall),
    ] {
        if !v.is_finite() || v <= 0.0 {
            return Err(SolverError::BadInput(format!(
                "case '{}': flow field '{name}' must be finite and positive, got {v}",
                case.id
            )));
        }
    }
    Ok(())
}

/// The CFD levels integrate a [`GasModel`] EOS; only air has one here
/// (analytic ideal gas or the tabulated equilibrium-air EOS).
fn cfd_gas(case: &CaseSpec) -> Result<Box<dyn GasModel>, SolverError> {
    match &case.gas {
        GasSpec::IdealAir => Ok(Box::new(IdealGas::air())),
        GasSpec::Air9 => Ok(Box::new(air9_table().clone())),
        other => Err(SolverError::BadInput(format!(
            "case '{}': CFD levels need an EOS gas model (ideal_air or air9), got '{}'",
            case.id,
            other.name()
        ))),
    }
}

/// Execute one case to completion.
///
/// # Errors
/// [`CaseFailure`] carrying the terminal [`SolverError`] once the case's
/// retry budget is exhausted (or immediately for non-recoverable errors).
#[allow(clippy::too_many_lines)]
pub fn run_case(case: &CaseSpec) -> Result<CaseResult, CaseFailure> {
    if case.inject_fault {
        // The divergence drill: every attempt fails recoverably, so the
        // whole retry budget is consumed before the error surfaces — the
        // worst-case path through the same policy real cases use. The
        // drill also exercises the black-box path: each failed attempt
        // becomes a flight-recorder rollback record.
        let mut recorder = FlightRecorder::default();
        let mut attempt = 0usize;
        let err = retry_with_backoff(case.max_retries, 0.5, 1.0 / 64.0, |scale| {
            attempt += 1;
            let e = SolverError::NonFinite {
                field: "injected",
                i: 0,
                j: 0,
            };
            recorder.record(
                attempt,
                f64::NAN,
                scale,
                StepEvent::Rollback {
                    retry: attempt,
                    error: e.to_string(),
                },
                0,
                None,
            );
            Err::<(), _>(e)
        })
        .expect_err("injected fault never succeeds");
        let pm = recorder.post_mortem(
            "inject_fault",
            Trigger::SolverError,
            Some(err.to_string()),
            attempt,
            case.max_retries,
            f64::NAN,
        );
        return Err(CaseFailure::new(err, case.max_retries).with_postmortem(Some(pm.to_json())));
    }
    match &case.level {
        LevelSpec::Synthetic { work_ms, outcome } => run_synthetic(case, *work_ms, outcome),
        LevelSpec::Correlation { k_sg } => run_correlation(case, *k_sg),
        LevelSpec::Vsl {
            n_points,
            radiating,
        } => run_vsl(case, *n_points, *radiating),
        LevelSpec::EulerBl {
            ni,
            nj,
            max_steps,
            tol,
        } => run_euler_bl(case, *ni, *nj, *max_steps, *tol),
        LevelSpec::Pns { ni, nj, i_start } => run_pns(case, *ni, *nj, *i_start),
        LevelSpec::Ns {
            ni,
            nj,
            max_steps,
            tol,
        } => run_ns(case, *ni, *nj, *max_steps, *tol),
    }
}

fn run_synthetic(case: &CaseSpec, work_ms: f64, outcome: &str) -> Result<CaseResult, CaseFailure> {
    let spin = || {
        if work_ms > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(work_ms / 1e3));
        }
    };
    match outcome {
        "ok" => {
            spin();
            let mut res = CaseResult {
                note: "synthetic".into(),
                ..CaseResult::default()
            };
            res.metric("work_ms", work_ms);
            Ok(res)
        }
        "fail" => {
            let err = retry_with_backoff(case.max_retries, 0.5, 1.0 / 64.0, |_| {
                spin();
                Err::<(), _>(SolverError::Diverged {
                    iter: 1,
                    residual: f64::INFINITY,
                })
            })
            .expect_err("synthetic 'fail' never succeeds");
            Err(CaseFailure::new(err, case.max_retries))
        }
        "panic" => {
            spin();
            panic!("synthetic panic (case '{}')", case.id);
        }
        other => Err(CaseFailure::new(
            SolverError::BadInput(format!(
                "case '{}': unknown synthetic outcome '{other}' (want ok|fail|panic)",
                case.id
            )),
            0,
        )),
    }
}

fn run_correlation(case: &CaseSpec, k_sg: f64) -> Result<CaseResult, CaseFailure> {
    flow_finite(case).map_err(|e| CaseFailure::new(e, 0))?;
    let f = &case.flow;
    let q = convective_sutton_graves(f.rho_inf, f.u_inf, f.nose_radius, k_sg);
    let mut res = CaseResult {
        note: "Sutton-Graves".into(),
        ..CaseResult::default()
    };
    res.metric("q_conv_w_m2", q);
    Ok(res)
}

fn run_vsl(case: &CaseSpec, n_points: usize, radiating: bool) -> Result<CaseResult, CaseFailure> {
    flow_finite(case).map_err(|e| CaseFailure::new(e, 0))?;
    let gas = case.gas.equilibrium().ok_or_else(|| {
        CaseFailure::new(
            SolverError::BadInput(format!(
                "case '{}': the VSL level needs an equilibrium gas, got '{}'",
                case.id,
                case.gas.name()
            )),
            0,
        )
    })?;
    let f = &case.flow;
    let problem = VslProblem {
        u_inf: f.u_inf,
        rho_inf: f.rho_inf,
        t_inf: f.t_inf,
        nose_radius: f.nose_radius,
        t_wall: f.t_wall,
        n_points,
        radiating,
    };
    let out = solve_with_retry(&gas, &problem, case.max_retries)
        .map_err(|e| CaseFailure::new(e, case.max_retries))?;
    let mut sol = out.value;
    let mut res = CaseResult {
        retries: out.retries,
        note: format!("δ/Rn = {:.3}", sol.standoff / f.nose_radius),
        ..CaseResult::default()
    };
    res.metric("q_stag_w_m2", sol.q_conv);
    res.metric("q_conv_w_m2", sol.q_conv);
    res.metric("standoff_m", sol.standoff);
    res.metric("p_stag_pa", sol.p_stag);
    res.metric("t_edge_k", sol.t_edge);
    if radiating {
        res.metric("q_rad_thin_w_m2", sol.q_rad_thin);
        let (lo, hi, n) = SLAB_BAND;
        res.metric(
            "q_rad_w_m2",
            tangent_slab_over_stations(&mut sol, lo, hi, n),
        );
    }
    Ok(res)
}

fn inflow_bc(fs: (f64, f64, f64, f64)) -> BcSet {
    BcSet {
        i_lo: Bc::SlipWall,
        i_hi: Bc::Outflow,
        j_lo: Bc::SlipWall,
        j_hi: Bc::Inflow {
            rho: fs.0,
            ux: fs.1,
            ur: fs.2,
            p: fs.3,
        },
    }
}

fn cfd_run_options(case: &CaseSpec, max_steps: usize, tol: f64, grace: usize) -> RunOptions {
    RunOptions {
        max_units: max_steps,
        tol,
        grace,
        checkpoint_every: 100,
        max_retries: case.max_retries,
        first_order_fallback: true,
        ..RunOptions::default()
    }
}

fn cfd_flow(case: &CaseSpec) -> Result<(f64, f64, f64, f64), CaseFailure> {
    flow_finite(case).map_err(|e| CaseFailure::new(e, 0))?;
    let f = &case.flow;
    if !f.p_inf.is_finite() || f.p_inf <= 0.0 {
        return Err(CaseFailure::new(
            SolverError::BadInput(format!(
                "case '{}': CFD levels need a finite positive p_inf, got {}",
                case.id, f.p_inf
            )),
            0,
        ));
    }
    Ok((f.rho_inf, f.u_inf, 0.0, f.p_inf))
}

fn run_euler_bl(
    case: &CaseSpec,
    ni: usize,
    nj: usize,
    max_steps: usize,
    tol: f64,
) -> Result<CaseResult, CaseFailure> {
    let fs = cfd_flow(case)?;
    let gas = cfd_gas(case).map_err(|e| CaseFailure::new(e, 0))?;
    let f = &case.flow;
    let rn = f.nose_radius;
    let body = Hemisphere::new(rn);
    let dist = stretch::uniform(nj);
    let grid = StructuredGrid::blunt_body(&body, ni, nj, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 300,
        ..EulerOptions::default()
    };
    let mut euler = EulerSolver::new(&grid, gas.as_ref(), inflow_bc(fs), opts, fs);
    let run_opts = cfd_run_options(case, max_steps, tol, 300);
    let (out, pm) = run_recorded(&mut euler, &run_opts);
    let out = out.map_err(|e| {
        CaseFailure::new(e, case.max_retries).with_postmortem(pm.map(|p| p.to_json()))
    })?;

    let p_stag = euler.primitive(0, 0).p;
    let rho_stag = euler.primitive(0, 0).rho;
    let t_stag = gas.temperature(rho_stag, euler.internal_energy(0, 0));
    let q = fay_riddell(&FayRiddellInputs {
        rho_e: rho_stag,
        mu_e: sutherland_air(t_stag),
        rho_w: p_stag / (287.05 * f.t_wall),
        mu_w: sutherland_air(f.t_wall),
        due_dx: newtonian_velocity_gradient(rn, p_stag, f.p_inf, rho_stag),
        h0e: 1004.5 * f.t_inf + 0.5 * f.u_inf * f.u_inf,
        hw: 1004.5 * f.t_wall,
        pr: 0.71,
        lewis: 1.0,
        h_d_frac: 0.0,
    });
    let mut res = CaseResult {
        retries: out.retries,
        note: format!("p0/p∞ = {:.1}", p_stag / f.p_inf),
        ..CaseResult::default()
    };
    res.metric("q_stag_w_m2", q);
    res.metric("p_stag_pa", p_stag);
    res.metric("steps", out.units as f64);
    res.metric("converged", f64::from(u8::from(out.converged)));
    Ok(res)
}

fn run_pns(
    case: &CaseSpec,
    ni: usize,
    nj: usize,
    i_start: usize,
) -> Result<CaseResult, CaseFailure> {
    let fs = cfd_flow(case)?;
    let gas = cfd_gas(case).map_err(|e| CaseFailure::new(e, 0))?;
    let f = &case.flow;
    let rn = f.nose_radius;
    let body = SphereCone {
        rn,
        half_angle: 20f64.to_radians(),
        length: 10.0 * rn,
    };
    let dist = stretch::tanh_one_sided(nj, 2.5);
    let grid = StructuredGrid::blunt_body(&body, ni, nj, &|sb| (0.25 + 0.8 * sb) * rn, &dist);
    // No incremental state survives a failed march; retry with a fresh
    // solver at a backed-off relaxation scale.
    let out = retry_with_backoff(case.max_retries, 0.5, 1.0 / 64.0, |scale| {
        let mut pns = PnsSolver::new(
            &grid,
            gas.as_ref(),
            PnsOptions {
                t_wall: Some(f.t_wall),
                ..PnsOptions::default()
            },
            fs,
        );
        pns.set_cfl_scale(scale);
        pns.march(i_start)
    })
    .map_err(|e| CaseFailure::new(e, case.max_retries))?;
    let sol = out.value;
    let q_first = sol
        .wall_heat_flux
        .iter()
        .copied()
        .find(|q| *q > 0.0)
        .unwrap_or(0.0);
    let mut res = CaseResult {
        retries: out.retries,
        note: format!("{} stations marched", sol.station_x.len()),
        ..CaseResult::default()
    };
    res.metric("q_stag_w_m2", q_first);
    res.metric("stations", sol.station_x.len() as f64);
    Ok(res)
}

fn run_ns(
    case: &CaseSpec,
    ni: usize,
    nj: usize,
    max_steps: usize,
    tol: f64,
) -> Result<CaseResult, CaseFailure> {
    let fs = cfd_flow(case)?;
    let gas = cfd_gas(case).map_err(|e| CaseFailure::new(e, 0))?;
    let f = &case.flow;
    let rn = f.nose_radius;
    let body = Hemisphere::new(rn);
    let dist = stretch::tanh_one_sided(nj, 3.5);
    let grid = StructuredGrid::blunt_body(&body, ni, nj, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
    let opts = EulerOptions {
        cfl: 0.4,
        startup_steps: 500,
        ..EulerOptions::default()
    };
    let mut ns = NsSolver::new(
        &grid,
        gas.as_ref(),
        inflow_bc(fs),
        opts,
        fs,
        Transport::air(),
        f.t_wall,
    );
    let run_opts = cfd_run_options(case, max_steps, tol, 500);
    let (out, pm) = run_recorded(&mut ns, &run_opts);
    let out = out.map_err(|e| {
        CaseFailure::new(e, case.max_retries).with_postmortem(pm.map(|p| p.to_json()))
    })?;
    let mut res = CaseResult {
        retries: out.retries,
        note: "full viscous relaxation".into(),
        ..CaseResult::default()
    };
    res.metric("q_stag_w_m2", ns.wall_heat_flux(0));
    res.metric("steps", out.units as f64);
    res.metric("converged", f64::from(u8::from(out.converged)));
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FlowSpec;

    fn flow() -> FlowSpec {
        FlowSpec::new(3e-4, 6700.0, 230.0, 20.0, 0.6, 1500.0)
    }

    #[test]
    fn correlation_matches_direct_call() {
        let case = CaseSpec::new(
            "c",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            flow(),
        );
        let res = run_case(&case).expect("correlation");
        let direct = convective_sutton_graves(3e-4, 6700.0, 0.6, 1.74e-4);
        assert_eq!(res.get("q_conv_w_m2").unwrap().to_bits(), direct.to_bits());
    }

    #[test]
    fn injected_fault_exhausts_the_budget() {
        let mut case = CaseSpec::new(
            "boom",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            flow(),
        );
        case.inject_fault = true;
        case.max_retries = 4;
        let fail = run_case(&case).expect_err("injected");
        assert_eq!(fail.retries, 4);
        assert!(matches!(fail.error, SolverError::NonFinite { .. }));
    }

    #[test]
    fn vsl_rejects_ideal_gas() {
        let case = CaseSpec::new(
            "v",
            GasSpec::IdealAir,
            LevelSpec::Vsl {
                n_points: 20,
                radiating: false,
            },
            flow(),
        );
        let fail = run_case(&case).expect_err("ideal gas has no shock-layer chemistry");
        assert!(fail.error.to_string().contains("equilibrium"));
    }

    #[test]
    fn synthetic_outcomes() {
        let mk = |outcome: &str| {
            CaseSpec::new(
                "s",
                GasSpec::IdealAir,
                LevelSpec::Synthetic {
                    work_ms: 0.0,
                    outcome: outcome.to_string(),
                },
                flow(),
            )
        };
        assert!(run_case(&mk("ok")).is_ok());
        let fail = run_case(&mk("fail")).expect_err("fail outcome");
        assert!(matches!(fail.error, SolverError::Diverged { .. }));
        assert!(run_case(&mk("nonsense")).is_err());
        let panic = std::panic::catch_unwind(|| run_case(&mk("panic")));
        assert!(panic.is_err());
    }

    #[test]
    fn bad_flow_is_a_typed_error() {
        let mut case = CaseSpec::new(
            "bad",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 1.74e-4 },
            flow(),
        );
        case.flow.rho_inf = -1.0;
        let fail = run_case(&case).expect_err("negative density");
        assert!(matches!(fail.error, SolverError::BadInput(_)));
    }
}
