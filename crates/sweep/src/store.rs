//! Append-only JSONL result store: one flushed line per finished case, so
//! a killed sweep loses at most the case in flight, and a restart can skip
//! everything already on disk.

use aerothermo_numerics::json::{self, write_f64, write_string, Value};
use aerothermo_numerics::telemetry::SolverError;
use std::io::Write;

/// Terminal state of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStatus {
    /// Ran to completion (possibly after retries).
    Completed,
    /// Exhausted its retry budget, hit a hard error, or panicked.
    Failed,
    /// Exceeded its wall-clock timeout; the result (if any) was discarded.
    TimedOut,
    /// Skipped this run: an earlier run's store already has it completed.
    Resumed,
}

impl CaseStatus {
    /// Stable tag used in the JSONL stream.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseStatus::Completed => "completed",
            CaseStatus::Failed => "failed",
            CaseStatus::TimedOut => "timed_out",
            CaseStatus::Resumed => "resumed",
        }
    }

    fn parse(s: &str) -> Result<Self, SolverError> {
        match s {
            "completed" => Ok(CaseStatus::Completed),
            "failed" => Ok(CaseStatus::Failed),
            "timed_out" => Ok(CaseStatus::TimedOut),
            "resumed" => Ok(CaseStatus::Resumed),
            other => Err(SolverError::BadInput(format!(
                "unknown case status '{other}'"
            ))),
        }
    }
}

/// One finished case, as recorded in the JSONL stream.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case's plan ID.
    pub id: String,
    /// Terminal state.
    pub status: CaseStatus,
    /// Wall-clock seconds the case took on its worker.
    pub wall_secs: f64,
    /// Retry attempts the control layer consumed.
    pub retries: usize,
    /// Worker index (0-based) that ran the case.
    pub worker: usize,
    /// Short human note from the runner.
    pub note: String,
    /// Terminal error display, for failed/timed-out cases.
    pub error: Option<String>,
    /// Named scalar results.
    pub metrics: Vec<(String, f64)>,
    /// Thread-attributed telemetry counter deltas (name → count); see
    /// `aerothermo_numerics::telemetry::TelemetryScope`.
    pub counters: Vec<(&'static str, u64)>,
    /// Flight-recorder black box for failed cases: the
    /// `aerothermo-blackbox-v1` JSON document as a string (kept opaque so
    /// the record schema is independent of the dump schema).
    pub postmortem: Option<String>,
}

impl CaseOutcome {
    /// Look up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serialize to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\": ");
        out.push_str(&write_string(&self.id));
        out.push_str(", \"status\": ");
        out.push_str(&write_string(self.status.name()));
        out.push_str(&format!(
            ", \"wall_secs\": {}, \"retries\": {}, \"worker\": {}, \"note\": {}, \"error\": ",
            write_f64(self.wall_secs),
            self.retries,
            self.worker,
            write_string(&self.note)
        ));
        match &self.error {
            Some(e) => out.push_str(&write_string(e)),
            None => out.push_str("null"),
        }
        out.push_str(", \"metrics\": {");
        for (k, (name, v)) in self.metrics.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", write_string(name), write_f64(*v)));
        }
        out.push_str("}, \"counters\": {");
        let mut wrote = 0;
        for (name, v) in &self.counters {
            if *v == 0 {
                continue; // elide zeros: most levels touch a few counters
            }
            if wrote > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", write_string(name)));
            wrote += 1;
        }
        out.push('}');
        if let Some(pm) = &self.postmortem {
            out.push_str(&format!(", \"postmortem\": {}", write_string(pm)));
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on malformed lines.
    pub fn parse(line: &str) -> Result<Self, SolverError> {
        let v =
            json::parse(line).map_err(|e| SolverError::BadInput(format!("record JSON: {e}")))?;
        let req_str = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| SolverError::BadInput(format!("record missing string '{key}'")))
        };
        let req_count = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| SolverError::BadInput(format!("record missing count '{key}'")))
        };
        let metrics = match v.get("metrics").and_then(Value::as_object) {
            Some(pairs) => pairs
                .iter()
                .map(|(name, mv)| (name.clone(), mv.as_f64().unwrap_or(f64::NAN)))
                .collect(),
            None => Vec::new(),
        };
        let counters = match v.get("counters").and_then(Value::as_object) {
            Some(pairs) => pairs
                .iter()
                .filter_map(|(name, cv)| {
                    // Counter names are a closed set; map back to the
                    // static strs so record and live outcomes compare equal.
                    let name = aerothermo_numerics::telemetry::Counter::ALL
                        .iter()
                        .map(|c| c.name())
                        .find(|n| n == name)?;
                    Some((name, cv.as_f64()? as u64))
                })
                .collect(),
            None => Vec::new(),
        };
        Ok(Self {
            id: req_str("id")?.to_string(),
            status: CaseStatus::parse(req_str("status")?)?,
            wall_secs: v
                .get("wall_secs")
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN),
            retries: req_count("retries")?,
            worker: req_count("worker")?,
            note: req_str("note").map(str::to_string).unwrap_or_default(),
            error: v
                .get("error")
                .filter(|e| !e.is_null())
                .and_then(Value::as_str)
                .map(str::to_string),
            metrics,
            counters,
            postmortem: v
                .get("postmortem")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }
}

/// Append-only JSONL writer: every record is written and flushed as one
/// line, so the stream is valid after a kill at any instant (except at most
/// one truncated trailing line, which [`load_records`] tolerates).
#[derive(Debug)]
pub struct JsonlWriter {
    file: std::fs::File,
    path: String,
    written: usize,
}

impl JsonlWriter {
    /// Open for appending (creating the file if needed). An existing file
    /// whose final line was torn by a kill mid-write is truncated back to
    /// its last complete record first, so new records never concatenate
    /// onto the torn tail (and later loads never see it as corruption).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O failure.
    pub fn append(path: &str) -> Result<Self, SolverError> {
        let io = |e: std::io::Error| SolverError::BadInput(format!("opening store '{path}': {e}"));
        if let Ok(bytes) = std::fs::read(path) {
            if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) as u64;
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(keep))
                    .map_err(io)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        Ok(Self {
            file,
            path: path.to_string(),
            written: 0,
        })
    }

    /// Write and flush one record.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O failure.
    pub fn record(&mut self, outcome: &CaseOutcome) -> Result<(), SolverError> {
        let mut line = outcome.to_json_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| SolverError::BadInput(format!("writing store '{}': {e}", self.path)))?;
        self.written += 1;
        Ok(())
    }

    /// Records written through this writer (excludes pre-existing lines).
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }
}

/// Load all parseable records from a JSONL store. A truncated final line
/// (the kill-mid-write case) is skipped silently; a missing file is an
/// empty store. Interior garbage is an error — that's corruption, not a
/// crash artifact.
///
/// # Errors
/// [`SolverError::BadInput`] on unreadable files or malformed interior
/// lines.
pub fn load_records(path: &str) -> Result<Vec<CaseOutcome>, SolverError> {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(SolverError::BadInput(format!(
                "reading store '{path}': {e}"
            )))
        }
    };
    let lines: Vec<&str> = doc.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    for (k, line) in lines.iter().enumerate() {
        match CaseOutcome::parse(line) {
            Ok(rec) => records.push(rec),
            // Only the final line may be a torn write.
            Err(_) if k + 1 == lines.len() && !doc.ends_with('\n') => {}
            Err(e) => {
                return Err(SolverError::BadInput(format!(
                    "store '{path}' line {}: {e}",
                    k + 1
                )))
            }
        }
    }
    Ok(records)
}

/// The set of case IDs a resumed sweep can skip: those with a
/// [`CaseStatus::Completed`] (or earlier-`Resumed`) record.
#[must_use]
pub fn completed_ids(records: &[CaseOutcome]) -> std::collections::HashSet<String> {
    records
        .iter()
        .filter(|r| matches!(r.status, CaseStatus::Completed | CaseStatus::Resumed))
        .map(|r| r.id.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: &str, status: CaseStatus) -> CaseOutcome {
        CaseOutcome {
            id: id.to_string(),
            status,
            wall_secs: 0.125,
            retries: 2,
            worker: 1,
            note: "δ/Rn = 0.1".to_string(),
            error: match status {
                CaseStatus::Failed => Some("non-finite rho at (3, 4)".to_string()),
                _ => None,
            },
            metrics: vec![
                ("q_conv_w_m2".to_string(), 1.25e5),
                ("nan".to_string(), f64::NAN),
            ],
            counters: vec![("newton_solves", 42), ("newton_iterations", 0)],
            postmortem: match status {
                CaseStatus::Failed => Some("{\"schema\": \"aerothermo-blackbox-v1\"}".to_string()),
                _ => None,
            },
        }
    }

    #[test]
    fn record_roundtrips() {
        for status in [CaseStatus::Completed, CaseStatus::Failed] {
            let rec = sample("case-a", status);
            let back = CaseOutcome::parse(&rec.to_json_line()).expect("roundtrip");
            assert_eq!(back.id, rec.id);
            assert_eq!(back.status, rec.status);
            assert_eq!(back.retries, rec.retries);
            assert_eq!(back.worker, rec.worker);
            assert_eq!(back.note, rec.note);
            assert_eq!(back.error, rec.error);
            assert_eq!(back.metric("q_conv_w_m2"), Some(1.25e5));
            assert!(back.metric("nan").unwrap().is_nan(), "NaN survives as null");
            // Zero counters are elided on write.
            assert_eq!(back.counters, vec![("newton_solves", 42)]);
            assert_eq!(back.postmortem, rec.postmortem);
        }
    }

    #[test]
    fn writer_appends_and_loader_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("sweep-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.jsonl");
        let path = path.to_str().unwrap();

        assert!(
            load_records(path).unwrap().is_empty(),
            "missing file is empty"
        );

        let mut w = JsonlWriter::append(path).unwrap();
        w.record(&sample("a", CaseStatus::Completed)).unwrap();
        w.record(&sample("b", CaseStatus::Failed)).unwrap();
        drop(w);
        // Simulate a kill mid-write: a torn trailing line without newline.
        let mut bytes = std::fs::read(path).unwrap();
        bytes.extend_from_slice(b"{\"id\": \"c\", \"status\": \"comp");
        std::fs::write(path, &bytes).unwrap();

        let records = load_records(path).unwrap();
        assert_eq!(records.len(), 2);
        let done = completed_ids(&records);
        assert!(done.contains("a"));
        assert!(!done.contains("b"), "failed cases re-run on resume");

        // Re-opening for append truncates the torn tail, so the resumed
        // stream stays parseable end to end.
        let mut w = JsonlWriter::append(path).unwrap();
        w.record(&sample("d", CaseStatus::Completed)).unwrap();
        let records = load_records(path).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "d"]);

        // Interior garbage (not a torn tail) is corruption and is reported.
        let mut bytes = std::fs::read(path).unwrap();
        bytes.extend_from_slice(b"garbage line\n");
        std::fs::write(path, &bytes).unwrap();
        let err = load_records(path).expect_err("interior garbage is corruption");
        assert!(err.to_string().contains("line 4"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_counts_as_completed() {
        let records = vec![
            sample("a", CaseStatus::Resumed),
            sample("b", CaseStatus::TimedOut),
        ];
        let done = completed_ids(&records);
        assert!(done.contains("a"));
        assert!(!done.contains("b"));
    }
}
