//! Append-only JSONL result store: one flushed line per finished case, so
//! a killed sweep loses at most the case in flight, and a restart can skip
//! everything already on disk.

use aerothermo_numerics::json::{self, write_f64, write_string, Value};
use aerothermo_numerics::telemetry::SolverError;
use std::io::Write;

/// Terminal state of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStatus {
    /// Ran to completion (possibly after retries).
    Completed,
    /// Exhausted its retry budget, hit a hard error, or panicked.
    Failed,
    /// Exceeded its wall-clock timeout; the result (if any) was discarded.
    TimedOut,
    /// Skipped this run: an earlier run's store already has it completed.
    Resumed,
}

impl CaseStatus {
    /// Stable tag used in the JSONL stream.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseStatus::Completed => "completed",
            CaseStatus::Failed => "failed",
            CaseStatus::TimedOut => "timed_out",
            CaseStatus::Resumed => "resumed",
        }
    }

    fn parse(s: &str) -> Result<Self, SolverError> {
        match s {
            "completed" => Ok(CaseStatus::Completed),
            "failed" => Ok(CaseStatus::Failed),
            "timed_out" => Ok(CaseStatus::TimedOut),
            "resumed" => Ok(CaseStatus::Resumed),
            other => Err(SolverError::BadInput(format!(
                "unknown case status '{other}'"
            ))),
        }
    }
}

/// One finished case, as recorded in the JSONL stream.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case's plan ID.
    pub id: String,
    /// Terminal state.
    pub status: CaseStatus,
    /// Wall-clock seconds the case took on its worker.
    pub wall_secs: f64,
    /// Retry attempts the control layer consumed.
    pub retries: usize,
    /// Worker index (0-based) that ran the case.
    pub worker: usize,
    /// Short human note from the runner.
    pub note: String,
    /// Terminal error display, for failed/timed-out cases.
    pub error: Option<String>,
    /// Named scalar results.
    pub metrics: Vec<(String, f64)>,
    /// Thread-attributed telemetry counter deltas (name → count); see
    /// `aerothermo_numerics::telemetry::TelemetryScope`.
    pub counters: Vec<(&'static str, u64)>,
    /// Flight-recorder black box for failed cases: the
    /// `aerothermo-blackbox-v1` JSON document as a string (kept opaque so
    /// the record schema is independent of the dump schema).
    pub postmortem: Option<String>,
}

impl CaseOutcome {
    /// Look up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serialize to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\": ");
        out.push_str(&write_string(&self.id));
        out.push_str(", \"status\": ");
        out.push_str(&write_string(self.status.name()));
        out.push_str(&format!(
            ", \"wall_secs\": {}, \"retries\": {}, \"worker\": {}, \"note\": {}, \"error\": ",
            write_f64(self.wall_secs),
            self.retries,
            self.worker,
            write_string(&self.note)
        ));
        match &self.error {
            Some(e) => out.push_str(&write_string(e)),
            None => out.push_str("null"),
        }
        out.push_str(", \"metrics\": {");
        for (k, (name, v)) in self.metrics.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", write_string(name), write_f64(*v)));
        }
        out.push_str("}, \"counters\": {");
        let mut wrote = 0;
        for (name, v) in &self.counters {
            if *v == 0 {
                continue; // elide zeros: most levels touch a few counters
            }
            if wrote > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", write_string(name)));
            wrote += 1;
        }
        out.push('}');
        if let Some(pm) = &self.postmortem {
            out.push_str(&format!(", \"postmortem\": {}", write_string(pm)));
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on malformed lines.
    pub fn parse(line: &str) -> Result<Self, SolverError> {
        Self::parse_with_warnings(line).map(|(rec, _)| rec)
    }

    /// Parse one JSONL line, also reporting how many counter entries were
    /// dropped because their names are not in the current
    /// [`Counter::ALL`](aerothermo_numerics::telemetry::Counter::ALL) set
    /// (a version-skewed store written by a build with different counters).
    ///
    /// Metric values must be numbers or `null` (the writers' NaN/Inf
    /// encoding, mapped back to NaN); anything else — strings, booleans,
    /// nested structure — is corruption, not a crash artifact, and is a
    /// typed error rather than a silent NaN.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on malformed lines.
    pub fn parse_with_warnings(line: &str) -> Result<(Self, usize), SolverError> {
        let v =
            json::parse(line).map_err(|e| SolverError::BadInput(format!("record JSON: {e}")))?;
        let req_str = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| SolverError::BadInput(format!("record missing string '{key}'")))
        };
        let req_count = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .map(|x| x as usize)
                .ok_or_else(|| SolverError::BadInput(format!("record missing count '{key}'")))
        };
        let metrics = match v.get("metrics").and_then(Value::as_object) {
            Some(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (name, mv) in pairs {
                    let val = match mv {
                        Value::Null => f64::NAN,
                        Value::Number(x) => *x,
                        other => {
                            return Err(SolverError::BadInput(format!(
                                "record metric '{name}' must be a number or null, got {other:?}"
                            )))
                        }
                    };
                    out.push((name.clone(), val));
                }
                out
            }
            None => Vec::new(),
        };
        let mut unknown_counters = 0usize;
        let counters = match v.get("counters").and_then(Value::as_object) {
            Some(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (name, cv) in pairs {
                    // Counter names are a closed set; map back to the
                    // static strs so record and live outcomes compare equal.
                    let known = aerothermo_numerics::telemetry::Counter::ALL
                        .iter()
                        .map(|c| c.name())
                        .find(|n| n == name);
                    let val = cv
                        .as_f64()
                        .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                        .ok_or_else(|| {
                            SolverError::BadInput(format!(
                                "record counter '{name}' must be a non-negative integer, \
                                 got {cv:?}"
                            ))
                        })?;
                    match known {
                        Some(name) => out.push((name, val as u64)),
                        None => unknown_counters += 1,
                    }
                }
                out
            }
            None => Vec::new(),
        };
        let rec = Self {
            id: req_str("id")?.to_string(),
            status: CaseStatus::parse(req_str("status")?)?,
            wall_secs: v
                .get("wall_secs")
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN),
            retries: req_count("retries")?,
            worker: req_count("worker")?,
            note: req_str("note").map(str::to_string).unwrap_or_default(),
            error: v
                .get("error")
                .filter(|e| !e.is_null())
                .and_then(Value::as_str)
                .map(str::to_string),
            metrics,
            counters,
            postmortem: v
                .get("postmortem")
                .and_then(Value::as_str)
                .map(str::to_string),
        };
        Ok((rec, unknown_counters))
    }

    /// The scheduling-independent core of this outcome as one comparable
    /// string: status, retries, bitwise metric bit patterns, and the
    /// thread-attributed counters. Wall time and worker index — the only
    /// legitimately nondeterministic fields — are excluded. Two sweeps of
    /// the same plan must produce equal fingerprints case for case, which
    /// is the determinism oracle the sweep tests (and the `aerothermod`
    /// service drill) compare against.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("{k}={:016x}", v.to_bits()))
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!(
            "{}|r{}|{}|{}",
            self.status.name(),
            self.retries,
            metrics.join(","),
            counters.join(",")
        )
    }
}

/// Order-normalized determinism fingerprint of a record set: sorted by
/// case ID, each entry `(id, `[`CaseOutcome::fingerprint`]`)`. A store
/// written in any execution order (different worker counts, kill/resume
/// splits, service-submitted vs direct runs) normalizes to the same value
/// when — and only when — the per-case results are bitwise identical.
#[must_use]
pub fn normalized_fingerprint(records: &[CaseOutcome]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.id.clone(), r.fingerprint()))
        .collect();
    out.sort();
    out
}

/// Append-only JSONL writer: every record is written and flushed as one
/// line, so the stream is valid after a kill at any instant (except at most
/// one truncated trailing line, which [`load_records`] tolerates).
#[derive(Debug)]
pub struct JsonlWriter {
    file: std::fs::File,
    path: String,
    written: usize,
}

impl JsonlWriter {
    /// Open for appending (creating the file if needed). An existing file
    /// whose final line was torn by a kill mid-write is truncated back to
    /// its last complete record first, so new records never concatenate
    /// onto the torn tail (and later loads never see it as corruption).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O failure.
    pub fn append(path: &str) -> Result<Self, SolverError> {
        let io = |e: std::io::Error| SolverError::BadInput(format!("opening store '{path}': {e}"));
        if let Ok(bytes) = std::fs::read(path) {
            if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) as u64;
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(keep))
                    .map_err(io)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        Ok(Self {
            file,
            path: path.to_string(),
            written: 0,
        })
    }

    /// Write and flush one record.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O failure.
    pub fn record(&mut self, outcome: &CaseOutcome) -> Result<(), SolverError> {
        let mut line = outcome.to_json_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| SolverError::BadInput(format!("writing store '{}': {e}", self.path)))?;
        self.written += 1;
        Ok(())
    }

    /// Records written through this writer (excludes pre-existing lines).
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }
}

/// A loaded store plus the data-loss warnings accumulated while parsing
/// it (see [`load_store`]).
#[derive(Debug, Clone, Default)]
pub struct StoreLoad {
    /// The parsed records, in file (execution) order.
    pub records: Vec<CaseOutcome>,
    /// Counter entries dropped across all records because their names are
    /// unknown to this build (version skew between writer and reader).
    /// Zero for a store written by the same build.
    pub unknown_counters: usize,
}

/// Load all parseable records from a JSONL store. A truncated final line
/// (the kill-mid-write case) is skipped silently; a missing file is an
/// empty store. Interior garbage is an error — that's corruption, not a
/// crash artifact. Counter entries with unknown names are dropped but
/// *counted* on the returned [`StoreLoad`], so version-skewed stores load
/// with the loss surfaced instead of silent.
///
/// # Errors
/// [`SolverError::BadInput`] on unreadable files or malformed interior
/// lines.
pub fn load_store(path: &str) -> Result<StoreLoad, SolverError> {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(StoreLoad::default()),
        Err(e) => {
            return Err(SolverError::BadInput(format!(
                "reading store '{path}': {e}"
            )))
        }
    };
    let lines: Vec<&str> = doc.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut load = StoreLoad {
        records: Vec::with_capacity(lines.len()),
        unknown_counters: 0,
    };
    for (k, line) in lines.iter().enumerate() {
        match CaseOutcome::parse_with_warnings(line) {
            Ok((rec, unknown)) => {
                load.records.push(rec);
                load.unknown_counters += unknown;
            }
            // Only the final line may be a torn write.
            Err(_) if k + 1 == lines.len() && !doc.ends_with('\n') => {}
            Err(e) => {
                return Err(SolverError::BadInput(format!(
                    "store '{path}' line {}: {e}",
                    k + 1
                )))
            }
        }
    }
    Ok(load)
}

/// [`load_store`] without the warning channel: unknown-counter drops are
/// reported to stderr instead of returned.
///
/// # Errors
/// [`SolverError::BadInput`] on unreadable files or malformed interior
/// lines.
pub fn load_records(path: &str) -> Result<Vec<CaseOutcome>, SolverError> {
    let load = load_store(path)?;
    if load.unknown_counters > 0 {
        eprintln!(
            "warning: store '{path}' carries {} counter entr{} unknown to this \
             build (version skew); they were dropped",
            load.unknown_counters,
            if load.unknown_counters == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }
    Ok(load.records)
}

/// The set of case IDs a resumed sweep can skip: those with a
/// [`CaseStatus::Completed`] (or earlier-`Resumed`) record.
#[must_use]
pub fn completed_ids(records: &[CaseOutcome]) -> std::collections::HashSet<String> {
    records
        .iter()
        .filter(|r| matches!(r.status, CaseStatus::Completed | CaseStatus::Resumed))
        .map(|r| r.id.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: &str, status: CaseStatus) -> CaseOutcome {
        CaseOutcome {
            id: id.to_string(),
            status,
            wall_secs: 0.125,
            retries: 2,
            worker: 1,
            note: "δ/Rn = 0.1".to_string(),
            error: match status {
                CaseStatus::Failed => Some("non-finite rho at (3, 4)".to_string()),
                _ => None,
            },
            metrics: vec![
                ("q_conv_w_m2".to_string(), 1.25e5),
                ("nan".to_string(), f64::NAN),
            ],
            counters: vec![("newton_solves", 42), ("newton_iterations", 0)],
            postmortem: match status {
                CaseStatus::Failed => Some("{\"schema\": \"aerothermo-blackbox-v1\"}".to_string()),
                _ => None,
            },
        }
    }

    #[test]
    fn record_roundtrips() {
        for status in [CaseStatus::Completed, CaseStatus::Failed] {
            let rec = sample("case-a", status);
            let back = CaseOutcome::parse(&rec.to_json_line()).expect("roundtrip");
            assert_eq!(back.id, rec.id);
            assert_eq!(back.status, rec.status);
            assert_eq!(back.retries, rec.retries);
            assert_eq!(back.worker, rec.worker);
            assert_eq!(back.note, rec.note);
            assert_eq!(back.error, rec.error);
            assert_eq!(back.metric("q_conv_w_m2"), Some(1.25e5));
            assert!(back.metric("nan").unwrap().is_nan(), "NaN survives as null");
            // Zero counters are elided on write.
            assert_eq!(back.counters, vec![("newton_solves", 42)]);
            assert_eq!(back.postmortem, rec.postmortem);
        }
    }

    #[test]
    fn writer_appends_and_loader_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("sweep-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.jsonl");
        let path = path.to_str().unwrap();

        assert!(
            load_records(path).unwrap().is_empty(),
            "missing file is empty"
        );

        let mut w = JsonlWriter::append(path).unwrap();
        w.record(&sample("a", CaseStatus::Completed)).unwrap();
        w.record(&sample("b", CaseStatus::Failed)).unwrap();
        drop(w);
        // Simulate a kill mid-write: a torn trailing line without newline.
        let mut bytes = std::fs::read(path).unwrap();
        bytes.extend_from_slice(b"{\"id\": \"c\", \"status\": \"comp");
        std::fs::write(path, &bytes).unwrap();

        let records = load_records(path).unwrap();
        assert_eq!(records.len(), 2);
        let done = completed_ids(&records);
        assert!(done.contains("a"));
        assert!(!done.contains("b"), "failed cases re-run on resume");

        // Re-opening for append truncates the torn tail, so the resumed
        // stream stays parseable end to end.
        let mut w = JsonlWriter::append(path).unwrap();
        w.record(&sample("d", CaseStatus::Completed)).unwrap();
        let records = load_records(path).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "d"]);

        // Interior garbage (not a torn tail) is corruption and is reported.
        let mut bytes = std::fs::read(path).unwrap();
        bytes.extend_from_slice(b"garbage line\n");
        std::fs::write(path, &bytes).unwrap();
        let err = load_records(path).expect_err("interior garbage is corruption");
        assert!(err.to_string().contains("line 4"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_metric_values_are_typed_errors_not_nan() {
        // null is the writers' NaN encoding and must keep loading as NaN …
        let ok = r#"{"id": "a", "status": "completed", "wall_secs": 0.1, "retries": 0, "worker": 0, "note": "", "error": null, "metrics": {"q": null}, "counters": {}}"#;
        let rec = CaseOutcome::parse(ok).expect("null metric parses");
        assert!(rec.metric("q").unwrap().is_nan());
        // … but a string/bool/array there is corruption, not a NaN.
        for bad in [r#""oops""#, "true", "[1]", "{}"] {
            let line = ok.replace("null}", &format!("{bad}}}"));
            let err = CaseOutcome::parse(&line).expect_err(bad);
            assert!(
                err.to_string().contains("must be a number or null"),
                "{bad}: {err}"
            );
            assert!(matches!(err, SolverError::BadInput(_)), "{bad}");
        }
    }

    #[test]
    fn unknown_counters_are_dropped_with_a_warning_count() {
        let line = r#"{"id": "a", "status": "completed", "wall_secs": 0.1, "retries": 0, "worker": 0, "note": "", "error": null, "metrics": {}, "counters": {"newton_solves": 3, "counter_from_the_future": 7, "another_unknown": 1}}"#;
        let (rec, unknown) = CaseOutcome::parse_with_warnings(line).expect("parses");
        assert_eq!(rec.counters, vec![("newton_solves", 3)]);
        assert_eq!(unknown, 2, "both unknown counters are counted, not lost");

        // Non-integer counter values are corruption.
        let bad = line.replace("\"newton_solves\": 3", "\"newton_solves\": 3.5");
        let err = CaseOutcome::parse(&bad).expect_err("fractional counter");
        assert!(err.to_string().contains("non-negative integer"), "{err}");

        // The warning count aggregates across a whole store load.
        let dir = std::env::temp_dir().join(format!("sweep-store-warn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("skewed.jsonl");
        std::fs::write(&path, format!("{line}\n{line}\n")).unwrap();
        let load = load_store(path.to_str().unwrap()).expect("skewed store loads");
        assert_eq!(load.records.len(), 2);
        assert_eq!(load.unknown_counters, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn normalized_fingerprint_is_order_invariant_and_bitwise() {
        let a = sample("a", CaseStatus::Completed);
        let b = sample("b", CaseStatus::Failed);
        let fwd = normalized_fingerprint(&[a.clone(), b.clone()]);
        let rev = normalized_fingerprint(&[b, a.clone()]);
        assert_eq!(fwd, rev, "record order must not matter");
        // A one-ulp metric change must change the fingerprint.
        let mut a2 = a;
        a2.metrics[0].1 = f64::from_bits(a2.metrics[0].1.to_bits() + 1);
        assert_ne!(a2.fingerprint(), rev[0].1);
    }

    #[test]
    fn resumed_counts_as_completed() {
        let records = vec![
            sample("a", CaseStatus::Resumed),
            sample("b", CaseStatus::TimedOut),
        ];
        let done = completed_ids(&records);
        assert!(done.contains("a"));
        assert!(!done.contains("b"));
    }
}
