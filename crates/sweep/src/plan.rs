//! Sweep plans: ordered collections of [`CaseSpec`]s with builders
//! (cartesian product, zip, trajectory adapters) and the preset plans the
//! `sweep` driver binary ships.

use crate::spec::{CaseSpec, FlowSpec, GasSpec, LevelSpec};
use aerothermo_atmosphere::trajectory::TrajectoryPoint;
use aerothermo_numerics::json::{self, write_string, Value};
use aerothermo_numerics::telemetry::SolverError;

/// An ordered, named batch of cases. Order is the tiebreak the scheduler
/// preserves (and the whole schedule under [`crate::pool::ScheduleOrder::PlanOrder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Plan name; becomes the aggregate report's `figure` field.
    pub name: String,
    /// The cases, in plan order.
    pub cases: Vec<CaseSpec>,
}

impl SweepPlan {
    /// Empty plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cases: Vec::new(),
        }
    }

    /// Cartesian product: every gas × every level × every flow point.
    /// Case IDs are `{gas}-{level}-p{point:03}`; duplicate gas or level
    /// entries therefore collide — [`SweepPlan::validate`] catches that.
    #[must_use]
    pub fn cartesian(
        name: impl Into<String>,
        gases: &[GasSpec],
        levels: &[LevelSpec],
        flows: &[FlowSpec],
    ) -> Self {
        let mut plan = Self::new(name);
        for gas in gases {
            for level in levels {
                for (pi, flow) in flows.iter().enumerate() {
                    plan.cases.push(CaseSpec::new(
                        format!("{}-{}-p{pi:03}", gas.name(), level.name()),
                        gas.clone(),
                        level.clone(),
                        flow.clone(),
                    ));
                }
            }
        }
        plan
    }

    /// Zip equal-length gas/level/flow sequences into one case per index.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] when the lengths differ.
    pub fn zipped(
        name: impl Into<String>,
        gases: &[GasSpec],
        levels: &[LevelSpec],
        flows: &[FlowSpec],
    ) -> Result<Self, SolverError> {
        if gases.len() != levels.len() || levels.len() != flows.len() {
            return Err(SolverError::BadInput(format!(
                "zipped plan needs equal lengths, got {} gases / {} levels / {} flows",
                gases.len(),
                levels.len(),
                flows.len()
            )));
        }
        let mut plan = Self::new(name);
        for (k, ((gas, level), flow)) in gases.iter().zip(levels).zip(flows).enumerate() {
            plan.cases.push(CaseSpec::new(
                format!("{}-{}-z{k:03}", gas.name(), level.name()),
                gas.clone(),
                level.clone(),
                flow.clone(),
            ));
        }
        Ok(plan)
    }

    /// One case per (strided) trajectory point, all at the same gas/level.
    /// Flow state comes from the point (ρ, V, T, time, altitude); pressure
    /// is left unspecified (the correlation and VSL levels do not need it).
    #[must_use]
    pub fn from_trajectory(
        name: impl Into<String>,
        points: &[TrajectoryPoint],
        stride: usize,
        gas: &GasSpec,
        level: &LevelSpec,
        nose_radius: f64,
        t_wall: f64,
    ) -> Self {
        let mut plan = Self::new(name);
        for (k, p) in points.iter().step_by(stride.max(1)).enumerate() {
            let mut flow = FlowSpec::new(
                p.density,
                p.velocity,
                p.temperature,
                f64::NAN,
                nose_radius,
                t_wall,
            );
            flow.time_s = p.time;
            flow.altitude_m = p.altitude;
            plan.cases.push(CaseSpec::new(
                format!("{}-{}-t{k:03}", gas.name(), level.name()),
                gas.clone(),
                level.clone(),
                flow,
            ));
        }
        plan
    }

    /// Append a case (builder-style).
    pub fn push(&mut self, case: CaseSpec) -> &mut Self {
        self.cases.push(case);
        self
    }

    /// Check plan invariants: at least one case, unique case IDs.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] naming the first duplicate ID.
    pub fn validate(&self) -> Result<(), SolverError> {
        if self.cases.is_empty() {
            return Err(SolverError::BadInput(format!(
                "plan '{}' has no cases",
                self.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &self.cases {
            if !seen.insert(c.id.as_str()) {
                return Err(SolverError::BadInput(format!(
                    "plan '{}' has duplicate case id '{}'",
                    self.name, c.id
                )));
            }
        }
        Ok(())
    }

    /// Sum of the per-case scheduler cost estimates.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.cases.iter().map(CaseSpec::cost_estimate).sum()
    }

    /// Serialize to a pretty-enough JSON document (one case per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": ");
        out.push_str(&write_string(&self.name));
        out.push_str(",\n  \"cases\": [");
        for (k, c) in self.cases.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&c.to_json());
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a plan document produced by [`SweepPlan::to_json`] (or written
    /// by hand to the same schema).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on parse or schema violations (including
    /// the [`SweepPlan::validate`] invariants).
    pub fn parse(doc: &str) -> Result<Self, SolverError> {
        let v = json::parse(doc).map_err(|e| SolverError::BadInput(format!("plan JSON: {e}")))?;
        Self::from_json(&v)
    }

    /// Deserialize a plan from an already-parsed JSON value (e.g. the
    /// `plan` member of an `aerothermod` `submit` request).
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on schema violations (including the
    /// [`SweepPlan::validate`] invariants).
    pub fn from_json(v: &Value) -> Result<Self, SolverError> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| SolverError::BadInput("plan missing string 'name'".into()))?
            .to_string();
        let raw = v
            .get("cases")
            .and_then(Value::as_array)
            .ok_or_else(|| SolverError::BadInput("plan missing array 'cases'".into()))?;
        let mut cases = Vec::with_capacity(raw.len());
        for cv in raw {
            cases.push(CaseSpec::from_json(cv)?);
        }
        let plan = Self { name, cases };
        plan.validate()?;
        Ok(plan)
    }

    /// Read and parse a plan file.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O, parse, or schema failure.
    pub fn load(path: &str) -> Result<Self, SolverError> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| SolverError::BadInput(format!("reading plan '{path}': {e}")))?;
        Self::parse(&doc)
    }

    /// Write the plan document to a file.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on I/O failure.
    pub fn save(&self, path: &str) -> Result<(), SolverError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| SolverError::BadInput(format!("writing plan '{path}': {e}")))
    }
}

// ---------------------------------------------------------------------------
// Preset plans (the driver binary's --fig02-titan / --fig10-matrix).
// ---------------------------------------------------------------------------

/// Fig. 2 preset: Sutton-Graves correlation cases along a flown Titan
/// entry trajectory, a stagnation-line VSL case at every strided point in
/// the hypersonic heat-pulse regime (the envelope the figure actually
/// plots), and one radiating-VSL anchor case at the convective-peak
/// condition (the same anchor `fig02_titan_heating` scales its radiative
/// pulse from). The VSL cases are what make the plan worth a worker pool:
/// each one rebuilds the Titan equilibrium table and solves the shock
/// layer, so they parallelize across workers with no shared state.
#[must_use]
pub fn titan_fig02_plan(points: &[TrajectoryPoint], stride: usize, nose_radius: f64) -> SweepPlan {
    let k_sg = 1.7e-4; // Sutton-Graves constant for N2-dominated atmospheres
    let mut plan = SweepPlan::from_trajectory(
        "fig02_titan_sweep",
        points,
        stride,
        &GasSpec::Titan { ch4: 0.05 },
        &LevelSpec::Correlation { k_sg },
        nose_radius,
        1800.0,
    );
    // Full shock-layer solves where the pulse lives: hypersonic velocity
    // and enough density for a continuum shock layer.
    for (k, p) in points.iter().step_by(stride.max(1)).enumerate() {
        if p.velocity < 4_000.0 || p.density < 1e-7 {
            continue;
        }
        let mut flow = FlowSpec::new(p.density, p.velocity, 165.0, f64::NAN, nose_radius, 1800.0);
        flow.time_s = p.time;
        flow.altitude_m = p.altitude;
        plan.cases.push(CaseSpec::new(
            format!("titan-vsl-t{k:03}"),
            GasSpec::Titan { ch4: 0.05 },
            LevelSpec::Vsl {
                n_points: 40,
                radiating: false,
            },
            flow,
        ));
    }
    // Convective peak ~ max of sqrt(rho)·V^3 — the Sutton-Graves kernel.
    if let Some(peak) = points
        .iter()
        .max_by(|a, b| {
            (a.density.sqrt() * a.velocity.powi(3))
                .total_cmp(&(b.density.sqrt() * b.velocity.powi(3)))
        })
        .filter(|p| p.density > 0.0)
    {
        let mut flow = FlowSpec::new(
            peak.density,
            peak.velocity,
            165.0,
            f64::NAN,
            nose_radius,
            1800.0,
        );
        flow.time_s = peak.time;
        flow.altitude_m = peak.altitude;
        let mut anchor = CaseSpec::new(
            "titan-vsl-anchor",
            GasSpec::Titan { ch4: 0.05 },
            LevelSpec::Vsl {
                n_points: 40,
                radiating: true,
            },
            flow,
        );
        anchor.max_retries = 2;
        plan.cases.push(anchor);
    }
    plan
}

/// Fig. 10 preset: the four-method cost/heating matrix at the paper's
/// Mach-8 hemisphere condition, one case per equation set.
#[must_use]
pub fn method_matrix_plan() -> SweepPlan {
    let t_inf = 230.0;
    let p_inf = 300.0;
    let rho_inf = p_inf / (287.05 * t_inf);
    let v_inf = 8.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
    let rn = 0.15;
    let t_wall = 300.0;
    let flow = FlowSpec::new(rho_inf, v_inf, t_inf, p_inf, rn, t_wall);

    let mut plan = SweepPlan::new("fig10_method_matrix");
    plan.push(CaseSpec::new(
        "vsl",
        GasSpec::Air9,
        LevelSpec::Vsl {
            n_points: 40,
            radiating: false,
        },
        flow.clone(),
    ))
    .push(CaseSpec::new(
        "euler_bl",
        GasSpec::IdealAir,
        LevelSpec::EulerBl {
            ni: 21,
            nj: 41,
            max_steps: 2500,
            tol: 1e-2,
        },
        flow.clone(),
    ))
    .push(CaseSpec::new(
        "pns",
        GasSpec::IdealAir,
        LevelSpec::Pns {
            ni: 70,
            nj: 41,
            i_start: 10,
        },
        flow.clone(),
    ))
    .push(CaseSpec::new(
        "ns",
        GasSpec::IdealAir,
        LevelSpec::Ns {
            ni: 21,
            nj: 57,
            max_steps: 16_000,
            tol: 1e-9,
        },
        flow,
    ));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|k| FlowSpec::new(1e-4 * (k + 1) as f64, 7000.0, 200.0, 10.0, 0.5, 1500.0))
            .collect()
    }

    #[test]
    fn cartesian_covers_the_product() {
        let plan = SweepPlan::cartesian(
            "p",
            &[GasSpec::IdealAir, GasSpec::Air9],
            &[
                LevelSpec::Correlation { k_sg: 1.74e-4 },
                LevelSpec::Vsl {
                    n_points: 20,
                    radiating: false,
                },
            ],
            &flows(3),
        );
        assert_eq!(plan.cases.len(), 12);
        plan.validate().expect("unique ids");
    }

    #[test]
    fn zipped_rejects_mismatched_lengths() {
        let err = SweepPlan::zipped(
            "z",
            &[GasSpec::IdealAir],
            &[
                LevelSpec::Correlation { k_sg: 1e-4 },
                LevelSpec::Correlation { k_sg: 2e-4 },
            ],
            &flows(2),
        )
        .unwrap_err();
        assert!(err.to_string().contains("equal lengths"));
    }

    #[test]
    fn plan_json_roundtrips() {
        let plan = SweepPlan::cartesian(
            "roundtrip",
            &[GasSpec::Titan { ch4: 0.05 }],
            &[LevelSpec::Correlation { k_sg: 1.7e-4 }],
            &flows(4),
        );
        let back = SweepPlan::parse(&plan.to_json()).expect("roundtrip");
        assert_eq!(back, plan);
    }

    #[test]
    fn validate_rejects_duplicates_and_empty() {
        assert!(SweepPlan::new("empty").validate().is_err());
        let mut plan = SweepPlan::new("dup");
        let f = flows(1).remove(0);
        plan.push(CaseSpec::new(
            "same",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 1e-4 },
            f.clone(),
        ))
        .push(CaseSpec::new(
            "same",
            GasSpec::IdealAir,
            LevelSpec::Correlation { k_sg: 2e-4 },
            f,
        ));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn method_matrix_orders_by_cost() {
        let plan = method_matrix_plan();
        plan.validate().unwrap();
        let cost = |id: &str| {
            plan.cases
                .iter()
                .find(|c| c.id == id)
                .unwrap()
                .cost_estimate()
        };
        assert!(cost("vsl") < cost("euler_bl"));
        assert!(cost("euler_bl") < cost("ns"));
        assert!(cost("pns") < cost("ns"));
    }
}
