//! The sweep scheduler: a bounded pool of worker threads pulling cases
//! from a priority-ordered queue, with per-case fault isolation (panics
//! become [`CaseStatus::Failed`] records), per-case wall-clock timeouts,
//! and crash-safe incremental recording through [`crate::store`].

use crate::events::EventSink;
use crate::plan::SweepPlan;
pub use crate::report::SweepReport;
use crate::runner::run_case;
use crate::spec::CaseSpec;
use crate::store::{completed_ids, load_records, JsonlWriter};
pub use crate::store::{CaseOutcome, CaseStatus};
use aerothermo_gas::reset_thread_warm_cache;
use aerothermo_numerics::metrics::{set_gauge, Gauge};
use aerothermo_numerics::telemetry::{SolverError, TelemetryScope};
use aerothermo_numerics::trace;
use aerothermo_solvers::audit;
use rayon::ThreadPoolBuilder;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Observer invoked (from the recording worker's thread) after each case
/// record lands in the store and the in-memory outcome list — the
/// progress-subscription hook a job server uses to track live sweep
/// progress without polling the store file.
pub type RecordHook = Arc<dyn Fn(&CaseOutcome) + Send + Sync>;

/// Lock a pool-internal mutex, recovering from poisoning. The protected
/// state is a plain `VecDeque`/`Vec`/writer with no invariants spanning
/// the critical section, so a panic on another worker mid-lock (the thing
/// that poisons) leaves it fully usable — propagating the poison instead
/// would cascade one bad case into killing the whole sweep, defeating the
/// per-case `catch_unwind` isolation.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the queue is ordered before workers start pulling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleOrder {
    /// Cheapest cases first (by [`CaseSpec::cost_estimate`], plan order as
    /// the tiebreak): early results stream out while the expensive tail
    /// saturates the pool.
    #[default]
    CheapestFirst,
    /// Exactly the plan's order.
    PlanOrder,
}

/// Sweep execution policy.
#[derive(Clone)]
pub struct SweepOptions {
    /// Worker threads (cases in flight at once). Clamped to ≥ 1.
    pub workers: usize,
    /// Queue ordering.
    pub order: ScheduleOrder,
    /// JSONL result-store path; `None` keeps results in memory only.
    pub store_path: Option<String>,
    /// Skip cases already completed in an existing store at `store_path`
    /// (their prior records enter the report as [`CaseStatus::Resumed`]).
    pub resume: bool,
    /// Default per-case timeout \[s\] for cases that don't set their own;
    /// NaN or ≤ 0 means none.
    pub default_timeout_secs: f64,
    /// Deterministic kill drill: stop pulling new cases once this many
    /// records have been written this run (in-flight cases still finish,
    /// so with several workers a few extra records may land).
    pub halt_after_cases: Option<usize>,
    /// Thread budget for *within*-case kernel parallelism. The default of
    /// 1 pins each case to its worker thread, which is what makes per-case
    /// counter attribution exact and results scheduling-independent; raise
    /// it only for single-worker sweeps of big CFD cases.
    pub intra_case_threads: usize,
    /// JSONL lifecycle-event sink path (`--events=PATH`); `None` disables
    /// the stream. See [`crate::events`] for the schema.
    pub events_path: Option<String>,
    /// Heartbeat cadence \[s\] for the event stream. One heartbeat is
    /// always emitted at sweep start and one at sweep end, so even a sweep
    /// shorter than the cadence gets a monotone pair.
    pub heartbeat_secs: f64,
    /// Chrome-trace export base path: each case writes its own span
    /// timeline to `base-<case id>.ext` (`--trace=PATH` propagated from
    /// the sweep driver). Enables the tracer for the sweep's duration.
    pub trace_base: Option<String>,
    /// Physics-audit cadence in steps propagated to every case
    /// (`--audit=N`); 0 leaves the process-wide cadence untouched.
    pub audit_every: usize,
    /// External cancellation flag: when set (by another thread — e.g. the
    /// `aerothermod` service handling a `cancel` request), workers stop
    /// pulling new cases after finishing the one in flight, the report
    /// comes back `halted`, and a later run with
    /// [`SweepOptions::resume`] picks up exactly where the store left off.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Per-record progress subscription (see [`RecordHook`]); `None`
    /// disables it.
    pub record_hook: Option<RecordHook>,
}

impl std::fmt::Debug for SweepOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("workers", &self.workers)
            .field("order", &self.order)
            .field("store_path", &self.store_path)
            .field("resume", &self.resume)
            .field("default_timeout_secs", &self.default_timeout_secs)
            .field("halt_after_cases", &self.halt_after_cases)
            .field("intra_case_threads", &self.intra_case_threads)
            .field("events_path", &self.events_path)
            .field("heartbeat_secs", &self.heartbeat_secs)
            .field("trace_base", &self.trace_base)
            .field("audit_every", &self.audit_every)
            .field(
                "cancel",
                &self.cancel.as_ref().map(|c| c.load(Ordering::SeqCst)),
            )
            .field("record_hook", &self.record_hook.is_some())
            .finish()
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            order: ScheduleOrder::CheapestFirst,
            store_path: None,
            resume: false,
            default_timeout_secs: f64::NAN,
            halt_after_cases: None,
            intra_case_threads: 1,
            events_path: None,
            heartbeat_secs: 0.25,
            trace_base: None,
            audit_every: 0,
            cancel: None,
            record_hook: None,
        }
    }
}

/// `base-<id>.ext` (or `base-<id>` when `base` has no extension): the
/// per-case suffixing used for `--trace` outputs.
fn per_case_path(base: &str, id: &str) -> String {
    let (dir, file) = match base.rfind('/') {
        Some(k) => (&base[..=k], &base[k + 1..]),
        None => ("", base),
    };
    match file.rfind('.') {
        Some(k) if k > 0 => format!("{dir}{}-{id}{}", &file[..k], &file[k..]),
        _ => format!("{base}-{id}"),
    }
}

enum PinnedFailure {
    Solver {
        error: String,
        retries: usize,
        postmortem: Option<String>,
    },
    Panic(String),
}

type PinnedOut = (
    Result<crate::runner::CaseResult, PinnedFailure>,
    Vec<(&'static str, u64)>,
);

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Run one case pinned to the calling thread: nested `par_iter` work stays
/// here (`ThreadPool::install`), the equilibrium warm-start cache is reset
/// so results don't depend on what ran on this thread before, and the
/// thread-scoped counter delta attributes kernel work to exactly this case.
/// When `trace_path` is set, the case's span timeline (accumulated in this
/// thread's trace buffer) is drained into a standalone Chrome-trace file —
/// draining also keeps spans from bleeding into the worker's next case.
fn run_pinned(case: &CaseSpec, intra_threads: usize, trace_path: Option<&str>) -> PinnedOut {
    let pool = ThreadPoolBuilder::new()
        .num_threads(intra_threads.max(1))
        .build()
        .expect("vendored pool build cannot fail");
    pool.install(|| {
        reset_thread_warm_cache();
        let scope = TelemetryScope::begin();
        let res = catch_unwind(AssertUnwindSafe(|| run_case(case)));
        let counters: Vec<(&'static str, u64)> = scope.thread_delta().iter().collect();
        if let Some(path) = trace_path {
            if let Some(json) = trace::drain_thread_chrome_json() {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("warning: per-case trace {path}: {e}");
                }
            }
        }
        let res = match res {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(f)) => Err(PinnedFailure::Solver {
                error: f.error.to_string(),
                retries: f.retries,
                postmortem: f.postmortem,
            }),
            Err(payload) => Err(PinnedFailure::Panic(panic_message(payload.as_ref()))),
        };
        (res, counters)
    })
}

/// Process-wide tracer/audit state is flipped for the sweep's duration
/// (when the options ask for it) and restored on every exit path.
struct ObsGuard {
    trace_enabled_here: bool,
    audit_prior: usize,
    audit_changed: bool,
}

impl ObsGuard {
    fn engage(opts: &SweepOptions) -> Self {
        let trace_enabled_here = opts.trace_base.is_some() && !trace::is_enabled();
        if trace_enabled_here {
            trace::enable();
        }
        let audit_prior = audit::cadence();
        let audit_changed = opts.audit_every > 0 && opts.audit_every != audit_prior;
        if audit_changed {
            audit::enable(opts.audit_every);
        }
        Self {
            trace_enabled_here,
            audit_prior,
            audit_changed,
        }
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.trace_enabled_here {
            trace::disable();
        }
        if self.audit_changed {
            if self.audit_prior > 0 {
                audit::enable(self.audit_prior);
            } else {
                audit::disable();
            }
        }
    }
}

fn effective_timeout(case: &CaseSpec, opts: &SweepOptions) -> Option<std::time::Duration> {
    case.timeout().or_else(|| {
        if opts.default_timeout_secs.is_finite() && opts.default_timeout_secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(
                opts.default_timeout_secs,
            ))
        } else {
            None
        }
    })
}

fn execute_case(case: &CaseSpec, worker: usize, opts: &SweepOptions) -> CaseOutcome {
    let t0 = Instant::now();
    let trace_path = opts
        .trace_base
        .as_deref()
        .map(|base| per_case_path(base, &case.id));
    let pinned = match effective_timeout(case, opts) {
        None => run_pinned(case, opts.intra_case_threads, trace_path.as_deref()),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let case2 = case.clone();
            let intra = opts.intra_case_threads;
            let tpath = trace_path.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("sweep-{}", case.id))
                .spawn(move || {
                    let _ = tx.send(run_pinned(&case2, intra, tpath.as_deref()));
                });
            match spawned {
                Err(e) => (
                    Err(PinnedFailure::Solver {
                        error: format!("could not spawn case thread: {e}"),
                        retries: 0,
                        postmortem: None,
                    }),
                    Vec::new(),
                ),
                // The timed-out solve thread is abandoned, not killed (Rust
                // has no safe thread cancellation); it dies with the process.
                // Its counter work is unattributable, so counters stay empty.
                Ok(_detached) => match rx.recv_timeout(limit) {
                    Ok(out) => out,
                    Err(_) => {
                        return CaseOutcome {
                            id: case.id.clone(),
                            status: CaseStatus::TimedOut,
                            wall_secs: t0.elapsed().as_secs_f64(),
                            retries: 0,
                            worker,
                            note: String::new(),
                            error: Some(format!("timed out after {:.3} s", limit.as_secs_f64())),
                            metrics: Vec::new(),
                            counters: Vec::new(),
                            postmortem: None,
                        }
                    }
                },
            }
        }
    };
    let wall_secs = t0.elapsed().as_secs_f64();
    let (res, counters) = pinned;
    match res {
        Ok(r) => CaseOutcome {
            id: case.id.clone(),
            status: CaseStatus::Completed,
            wall_secs,
            retries: r.retries,
            worker,
            note: r.note,
            error: None,
            metrics: r.metrics,
            counters,
            postmortem: None,
        },
        Err(PinnedFailure::Solver {
            error,
            retries,
            postmortem,
        }) => CaseOutcome {
            id: case.id.clone(),
            status: CaseStatus::Failed,
            wall_secs,
            retries,
            worker,
            note: String::new(),
            error: Some(error),
            metrics: Vec::new(),
            counters,
            postmortem,
        },
        Err(PinnedFailure::Panic(msg)) => CaseOutcome {
            id: case.id.clone(),
            status: CaseStatus::Failed,
            wall_secs,
            retries: 0,
            worker,
            note: String::new(),
            error: Some(format!("panic: {msg}")),
            metrics: Vec::new(),
            counters,
            postmortem: None,
        },
    }
}

/// Run every case of `plan` under `opts` and return the aggregate report.
///
/// Failures degrade, they don't abort: a diverging, panicking, or
/// timed-out case becomes a [`CaseStatus::Failed`] / `TimedOut` record and
/// the sweep continues. Only infrastructure problems (invalid plan,
/// unwritable store) surface as `Err`.
///
/// # Errors
/// [`SolverError::BadInput`] for plan validation and store I/O failures.
pub fn run_sweep(plan: &SweepPlan, opts: &SweepOptions) -> Result<SweepReport, SolverError> {
    plan.validate()?;
    let t0 = Instant::now();
    let sink = match &opts.events_path {
        Some(path) => Some(EventSink::create(path)?),
        None => None,
    };
    let _obs = ObsGuard::engage(opts);

    // Resume bookkeeping: prior completed records re-enter the report as
    // Resumed (metrics preserved) and are not re-run or re-written.
    let mut prior: HashMap<String, CaseOutcome> = HashMap::new();
    if opts.resume {
        if let Some(path) = &opts.store_path {
            for rec in load_records(path)? {
                prior.insert(rec.id.clone(), rec);
            }
        }
    }
    let done = completed_ids(&prior.values().cloned().collect::<Vec<_>>());

    let mut order: Vec<usize> = (0..plan.cases.len())
        .filter(|&i| !done.contains(&plan.cases[i].id))
        .collect();
    if opts.order == ScheduleOrder::CheapestFirst {
        order.sort_by(|&a, &b| {
            plan.cases[a]
                .cost_estimate()
                .total_cmp(&plan.cases[b].cost_estimate())
                .then(a.cmp(&b))
        });
    }

    let queue = Mutex::new(VecDeque::from(order));
    let writer = match &opts.store_path {
        Some(path) => Some(Mutex::new(JsonlWriter::append(path)?)),
        None => None,
    };
    let ran: Mutex<Vec<CaseOutcome>> = Mutex::new(Vec::new());
    let infra_errors: Mutex<Vec<SolverError>> = Mutex::new(Vec::new());
    let recorded = AtomicUsize::new(0);
    // Cumulative wall time of this run's recorded cases, in ns — feeds the
    // heartbeat ETA (mean completed-case wall time × remaining cases).
    let done_wall_ns = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let workers = opts.workers.max(1);
    let total = relock(&queue).len();
    let busy = AtomicUsize::new(0);
    let hb_stop = AtomicBool::new(false);
    set_gauge(Gauge::SweepCasesTotal, total as f64);
    set_gauge(Gauge::SweepCasesDone, 0.0);
    set_gauge(Gauge::SweepWorkersBusy, 0.0);
    if let Some(sink) = &sink {
        sink.plan_started(&plan.name, plan.cases.len(), workers);
    }

    std::thread::scope(|s| {
        // Heartbeat pulse: one line immediately, one per cadence tick, and
        // one final line after the workers drain, so even an instant sweep
        // yields a monotone pair for the CI gate to check.
        let hb = sink.as_ref().map(|sink| {
            let busy = &busy;
            let recorded = &recorded;
            let done_wall_ns = &done_wall_ns;
            let hb_stop = &hb_stop;
            let period = opts.heartbeat_secs.max(0.01);
            s.spawn(move || {
                let pulse = |busy_now: usize| {
                    sink.heartbeat(
                        busy_now,
                        workers,
                        recorded.load(Ordering::SeqCst),
                        total,
                        done_wall_ns.load(Ordering::SeqCst) as f64 / 1e9,
                    );
                };
                pulse(busy.load(Ordering::SeqCst));
                let mut last = Instant::now();
                while !hb_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last.elapsed().as_secs_f64() >= period {
                        pulse(busy.load(Ordering::SeqCst));
                        last = Instant::now();
                    }
                }
                pulse(0);
            })
        });
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let writer = &writer;
                let ran = &ran;
                let infra_errors = &infra_errors;
                let recorded = &recorded;
                let done_wall_ns = &done_wall_ns;
                let stop = &stop;
                let busy = &busy;
                let sink = sink.as_ref();
                s.spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Some(cancel) = &opts.cancel {
                        if cancel.load(Ordering::SeqCst) {
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    let Some(idx) = relock(queue).pop_front() else {
                        break;
                    };
                    let case = &plan.cases[idx];
                    if let Some(sink) = sink {
                        sink.case_started(&case.id, w);
                    }
                    let b = busy.fetch_add(1, Ordering::SeqCst) + 1;
                    set_gauge(Gauge::SweepWorkersBusy, b as f64);
                    let outcome = execute_case(case, w, opts);
                    let b = busy.fetch_sub(1, Ordering::SeqCst) - 1;
                    set_gauge(Gauge::SweepWorkersBusy, b as f64);
                    if let Some(sink) = sink {
                        if outcome.retries > 0 {
                            sink.case_retried(&outcome.id, outcome.retries);
                        }
                        match outcome.status {
                            CaseStatus::Completed | CaseStatus::Resumed => sink.case_finished(
                                &outcome.id,
                                outcome.status.name(),
                                outcome.retries,
                                outcome.wall_secs,
                            ),
                            CaseStatus::Failed | CaseStatus::TimedOut => sink.case_failed(
                                &outcome.id,
                                outcome.status.name(),
                                outcome.error.as_deref().unwrap_or(""),
                                outcome.wall_secs,
                            ),
                        }
                    }
                    if let Some(wr) = writer {
                        if let Err(e) = relock(wr).record(&outcome) {
                            relock(infra_errors).push(e);
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    let wall_ns = (outcome.wall_secs.max(0.0) * 1e9) as u64;
                    {
                        let mut finished = relock(ran);
                        finished.push(outcome);
                        // The hook runs on this worker's thread while the
                        // outcome list is locked; a panicking subscriber
                        // poisons it, which `relock` recovers from (the
                        // regression test for the poison-cascade bug
                        // injects its panic exactly here).
                        if let Some(hook) = &opts.record_hook {
                            hook(finished.last().expect("just pushed"));
                        }
                    }
                    done_wall_ns.fetch_add(wall_ns, Ordering::SeqCst);
                    let n = recorded.fetch_add(1, Ordering::SeqCst) + 1;
                    set_gauge(Gauge::SweepCasesDone, n as f64);
                    if opts.halt_after_cases.is_some_and(|k| n >= k) {
                        stop.store(true, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        hb_stop.store(true, Ordering::SeqCst);
        drop(hb); // scope joins it; the drop just documents the hand-off
    });

    let infra_errors = infra_errors
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = infra_errors.into_iter().next() {
        return Err(e);
    }

    // Assemble plan-order outcomes: executed this run, or resumed from the
    // prior store. Cases never reached (halt drill) are simply absent.
    let ran = ran.into_inner().unwrap_or_else(PoisonError::into_inner);
    let by_id: HashMap<&str, &CaseOutcome> = ran.iter().map(|o| (o.id.as_str(), o)).collect();
    let mut outcomes = Vec::with_capacity(plan.cases.len());
    for case in &plan.cases {
        if let Some(o) = by_id.get(case.id.as_str()) {
            outcomes.push((*o).clone());
        } else if let Some(p) = prior.get(&case.id) {
            if done.contains(&case.id) {
                let mut o = p.clone();
                o.status = CaseStatus::Resumed;
                if let Some(sink) = &sink {
                    sink.case_finished(&o.id, o.status.name(), o.retries, o.wall_secs);
                }
                outcomes.push(o);
            }
        }
    }

    let report = SweepReport {
        figure: plan.name.clone(),
        elapsed_secs: t0.elapsed().as_secs_f64(),
        workers,
        halted: (opts.halt_after_cases.is_some() && stop.load(Ordering::SeqCst))
            || opts
                .cancel
                .as_ref()
                .is_some_and(|c| c.load(Ordering::SeqCst)),
        planned: plan.cases.len(),
        outcomes,
    };
    if let Some(sink) = &sink {
        let c = report.counts();
        sink.plan_finished(
            c.completed,
            c.failed,
            c.timed_out,
            c.resumed,
            report.halted,
            report.elapsed_secs,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FlowSpec, GasSpec, LevelSpec};

    fn synthetic_plan(n: usize, outcome: &str) -> SweepPlan {
        let mut plan = SweepPlan::new("pool_test");
        for k in 0..n {
            plan.push(CaseSpec::new(
                format!("s{k:02}"),
                GasSpec::IdealAir,
                LevelSpec::Synthetic {
                    work_ms: 1.0,
                    outcome: outcome.to_string(),
                },
                FlowSpec::new(1e-4, 7000.0, 200.0, 10.0, 0.5, 1500.0),
            ));
        }
        plan
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("sweep-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn all_ok_cases_complete_on_any_worker_count() {
        for workers in [1, 3] {
            let report = run_sweep(
                &synthetic_plan(6, "ok"),
                &SweepOptions {
                    workers,
                    ..SweepOptions::default()
                },
            )
            .expect("sweep");
            assert_eq!(report.outcomes.len(), 6);
            assert!(report
                .outcomes
                .iter()
                .all(|o| o.status == CaseStatus::Completed));
            assert!(report.all_green());
            assert_eq!(report.exit_code(true), 0);
            // Plan-order assembly regardless of scheduling.
            let ids: Vec<&str> = report.outcomes.iter().map(|o| o.id.as_str()).collect();
            assert_eq!(ids, ["s00", "s01", "s02", "s03", "s04", "s05"]);
        }
    }

    #[test]
    fn panics_are_isolated_to_their_case() {
        let mut plan = synthetic_plan(3, "ok");
        plan.cases[1].level = LevelSpec::Synthetic {
            work_ms: 0.0,
            outcome: "panic".to_string(),
        };
        let report = run_sweep(
            &plan,
            &SweepOptions {
                workers: 2,
                ..SweepOptions::default()
            },
        )
        .expect("sweep survives a panicking case");
        let bad = &report.outcomes[1];
        assert_eq!(bad.status, CaseStatus::Failed);
        assert!(bad.error.as_deref().unwrap().contains("panic"), "{bad:?}");
        assert_eq!(report.counts().failed, 1);
        assert_eq!(report.counts().completed, 2);
        assert!(!report.all_green());
        assert_eq!(report.exit_code(false), 0, "degrade, don't abort");
        assert_eq!(report.exit_code(true), crate::report::STRICT_EXIT_CODE);
    }

    #[test]
    fn timeout_is_enforced_per_case() {
        let mut plan = synthetic_plan(2, "ok");
        plan.cases[0].level = LevelSpec::Synthetic {
            work_ms: 30_000.0,
            outcome: "ok".to_string(),
        };
        plan.cases[0].timeout_secs = 0.05;
        let t0 = Instant::now();
        let report = run_sweep(&plan, &SweepOptions::default()).expect("sweep");
        assert!(
            t0.elapsed().as_secs_f64() < 10.0,
            "timeout must not wait out the case"
        );
        assert_eq!(report.outcomes[0].status, CaseStatus::TimedOut);
        assert!(report.outcomes[0]
            .error
            .as_deref()
            .unwrap()
            .contains("timed out"));
        assert_eq!(report.outcomes[1].status, CaseStatus::Completed);
    }

    #[test]
    fn store_resume_skips_completed_cases() {
        let path = tmp("resume.jsonl");
        std::fs::remove_file(&path).ok();
        let plan = synthetic_plan(5, "ok");
        // First run: halt after 2 records (the deterministic kill drill).
        let report = run_sweep(
            &plan,
            &SweepOptions {
                store_path: Some(path.clone()),
                halt_after_cases: Some(2),
                ..SweepOptions::default()
            },
        )
        .expect("halted sweep");
        assert!(report.halted);
        assert_eq!(report.outcomes.len(), 2);
        // Second run resumes: the 2 recorded cases come back as Resumed,
        // the remaining 3 actually run.
        let report = run_sweep(
            &plan,
            &SweepOptions {
                store_path: Some(path.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .expect("resumed sweep");
        assert_eq!(report.outcomes.len(), 5);
        let resumed = report
            .outcomes
            .iter()
            .filter(|o| o.status == CaseStatus::Resumed)
            .count();
        assert_eq!(resumed, 2);
        assert!(report.all_green(), "resumed cases don't flip the gate");
        // The store now holds all 5 (2 from run one, 3 from run two).
        let records = load_records(&path).unwrap();
        assert_eq!(records.len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_time_panic_does_not_poison_the_sweep() {
        // Regression test for the poison cascade: a panic on a worker
        // thread *while it holds the shared outcome mutex* (injected via
        // the record hook, which runs inside that critical section) used
        // to poison the lock; every other worker's bare `.unwrap()` then
        // panicked in turn and the final `into_inner().unwrap()` killed
        // the whole sweep — one bad subscriber cascading past the
        // per-case catch_unwind isolation. With `PoisonError::into_inner`
        // recovery the panicking worker dies alone and the survivors
        // drain the queue.
        let path = tmp("poison.jsonl");
        std::fs::remove_file(&path).ok();
        let fired = Arc::new(AtomicBool::new(false));
        let hook_fired = fired.clone();
        let report = run_sweep(
            &synthetic_plan(6, "ok"),
            &SweepOptions {
                workers: 2,
                store_path: Some(path.clone()),
                record_hook: Some(Arc::new(move |_o: &CaseOutcome| {
                    if !hook_fired.swap(true, Ordering::SeqCst) {
                        panic!("injected record-time panic");
                    }
                })),
                ..SweepOptions::default()
            },
        )
        .expect("sweep must survive a record-time panic");
        assert!(fired.load(Ordering::SeqCst), "the injected panic fired");
        assert_eq!(report.outcomes.len(), 6, "all cases recorded");
        assert!(report.all_green(), "every case still completed");
        assert_eq!(
            load_records(&path).unwrap().len(),
            6,
            "the store is complete too"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_cancel_stops_the_sweep_resumably() {
        let path = tmp("cancel.jsonl");
        std::fs::remove_file(&path).ok();
        let plan = synthetic_plan(8, "ok");
        let cancel = Arc::new(AtomicBool::new(false));
        let seen = Arc::new(AtomicUsize::new(0));
        // Cancel from the record hook after the 2nd record lands — the
        // same wiring a job server uses, without timing races.
        let (c2, s2) = (cancel.clone(), seen.clone());
        let report = run_sweep(
            &plan,
            &SweepOptions {
                workers: 1,
                store_path: Some(path.clone()),
                cancel: Some(cancel.clone()),
                record_hook: Some(Arc::new(move |_o: &CaseOutcome| {
                    if s2.fetch_add(1, Ordering::SeqCst) + 1 >= 2 {
                        c2.store(true, Ordering::SeqCst);
                    }
                })),
                ..SweepOptions::default()
            },
        )
        .expect("cancelled sweep still reports");
        assert!(report.halted, "a cancelled sweep reports halted");
        assert_eq!(report.outcomes.len(), 2, "worker stopped pulling");
        // Resume completes the remainder without re-running the first two.
        let report = run_sweep(
            &plan,
            &SweepOptions {
                workers: 2,
                store_path: Some(path.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .expect("resume after cancel");
        assert_eq!(report.outcomes.len(), 8);
        assert_eq!(
            report
                .outcomes
                .iter()
                .filter(|o| o.status == CaseStatus::Resumed)
                .count(),
            2
        );
        assert!(report.all_green());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cheapest_first_orders_the_queue() {
        // One expensive case first in the plan; with CheapestFirst and one
        // worker the cheap ones must be *recorded* before it.
        let mut plan = synthetic_plan(3, "ok");
        plan.cases[0].level = LevelSpec::Synthetic {
            work_ms: 50.0,
            outcome: "ok".to_string(),
        };
        let path = tmp("order.jsonl");
        std::fs::remove_file(&path).ok();
        run_sweep(
            &plan,
            &SweepOptions {
                store_path: Some(path.clone()),
                ..SweepOptions::default()
            },
        )
        .expect("sweep");
        let ids: Vec<String> = load_records(&path)
            .unwrap()
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, ["s01", "s02", "s00"], "store is in execution order");
        std::fs::remove_file(&path).ok();
    }
}
