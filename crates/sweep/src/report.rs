//! End-of-sweep aggregate report, schema-compatible with the figure
//! binaries' `--report` JSON (same top-level keys: `figure`,
//! `elapsed_secs`, `all_green`, `checks`, `counters`, `metrics`, `phases`,
//! `histories`, `history_summaries`, `audits`, `audit_summary`), so the CI
//! tooling that parses figure reports parses sweep reports unchanged.

use crate::store::{CaseOutcome, CaseStatus};
use aerothermo_numerics::json::{write_f64, write_string};
use aerothermo_numerics::telemetry::Counter;
use std::collections::HashMap;

/// Exit code for a sweep that finished with failed/timed-out cases under
/// `--strict`. Distinct from success (0), the figure binaries' deliberate
/// halt (3), and a panic (101).
pub const STRICT_EXIT_CODE: i32 = 4;

/// Terminal-status tallies for a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Cases that ran to completion this run.
    pub completed: usize,
    /// Cases that failed (retry exhaustion, hard error, panic).
    pub failed: usize,
    /// Cases that exceeded their wall-clock timeout.
    pub timed_out: usize,
    /// Cases skipped because a prior run's store completed them.
    pub resumed: usize,
}

/// Aggregate result of one [`crate::pool::run_sweep`] call.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Plan name (the report's `figure` field).
    pub figure: String,
    /// Whole-sweep wall-clock seconds.
    pub elapsed_secs: f64,
    /// Worker threads used.
    pub workers: usize,
    /// True when the sweep stopped at `halt_after_cases`.
    pub halted: bool,
    /// Cases in the plan (recorded + never-reached).
    pub planned: usize,
    /// Per-case outcomes in plan order (executed + resumed; cases never
    /// reached by a halted sweep are absent).
    pub outcomes: Vec<CaseOutcome>,
}

impl SweepReport {
    /// Tally outcomes by terminal status.
    #[must_use]
    pub fn counts(&self) -> StatusCounts {
        let mut c = StatusCounts::default();
        for o in &self.outcomes {
            match o.status {
                CaseStatus::Completed => c.completed += 1,
                CaseStatus::Failed => c.failed += 1,
                CaseStatus::TimedOut => c.timed_out += 1,
                CaseStatus::Resumed => c.resumed += 1,
            }
        }
        c
    }

    /// Look up an outcome by case ID.
    #[must_use]
    pub fn outcome(&self, id: &str) -> Option<&CaseOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// True when nothing failed or timed out and the sweep wasn't halted.
    #[must_use]
    pub fn all_green(&self) -> bool {
        let c = self.counts();
        c.failed == 0 && c.timed_out == 0 && !self.halted
    }

    /// The sweep's process exit code: failures degrade to records, so the
    /// default is 0 even with failed cases; `--strict` turns a non-green
    /// sweep into [`STRICT_EXIT_CODE`].
    #[must_use]
    pub fn exit_code(&self, strict: bool) -> i32 {
        if strict && !self.all_green() {
            STRICT_EXIT_CODE
        } else {
            0
        }
    }

    /// Cases recorded this run (not resumed) per wall-clock second.
    #[must_use]
    pub fn throughput_cases_per_sec(&self) -> f64 {
        let ran = self.outcomes.len() - self.counts().resumed;
        if self.elapsed_secs > 0.0 {
            ran as f64 / self.elapsed_secs
        } else {
            f64::NAN
        }
    }

    /// Sum of per-case thread-attributed counter deltas, in `Counter::ALL`
    /// order (zeros included, matching the figure reports).
    #[must_use]
    pub fn summed_counters(&self) -> Vec<(&'static str, u64)> {
        let mut by_name: HashMap<&'static str, u64> = HashMap::new();
        for o in &self.outcomes {
            for (name, v) in &o.counters {
                *by_name.entry(name).or_insert(0) += v;
            }
        }
        Counter::ALL
            .iter()
            .map(|c| (c.name(), by_name.get(c.name()).copied().unwrap_or(0)))
            .collect()
    }

    /// Serialize to the `--report`-schema JSON document.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> String {
        let c = self.counts();
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"figure\": {},\n", write_string(&self.figure)));
        s.push_str(&format!(
            "  \"elapsed_secs\": {},\n",
            write_f64(self.elapsed_secs)
        ));
        s.push_str(&format!("  \"all_green\": {},\n", self.all_green()));

        // Checks: the sweep-level gates CI parses.
        s.push_str("  \"checks\": [");
        let checks = [
            (
                "no_failed_cases",
                c.failed == 0,
                format!("{} failed of {} recorded", c.failed, self.outcomes.len()),
            ),
            (
                "no_timed_out_cases",
                c.timed_out == 0,
                format!("{} timed out", c.timed_out),
            ),
            (
                "all_cases_recorded",
                self.outcomes.len() == self.planned,
                format!(
                    "{} recorded of {} planned",
                    self.outcomes.len(),
                    self.planned
                ),
            ),
        ];
        for (k, (name, ok, detail)) in checks.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"passed\": {ok}, \"detail\": {}}}",
                write_string(name),
                write_string(detail)
            ));
        }
        s.push_str("\n  ],\n");

        s.push_str("  \"counters\": {");
        for (k, (name, v)) in self.summed_counters().iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {v}", write_string(name)));
        }
        s.push_str("\n  },\n");

        // Metrics: sweep aggregates, then per-case metrics as `<id>.<name>`.
        s.push_str("  \"metrics\": {");
        let mut metrics: Vec<(String, f64)> = vec![
            ("cases_planned".into(), self.planned as f64),
            ("cases_completed".into(), c.completed as f64),
            ("cases_failed".into(), c.failed as f64),
            ("cases_timed_out".into(), c.timed_out as f64),
            ("cases_resumed".into(), c.resumed as f64),
            ("workers".into(), self.workers as f64),
            ("halted".into(), f64::from(u8::from(self.halted))),
            (
                "total_retries".into(),
                self.outcomes.iter().map(|o| o.retries as f64).sum(),
            ),
            (
                "throughput_cases_per_sec".into(),
                self.throughput_cases_per_sec(),
            ),
        ];
        for o in &self.outcomes {
            for (name, v) in &o.metrics {
                metrics.push((format!("{}.{name}", o.id), *v));
            }
            metrics.push((format!("{}.retries", o.id), o.retries as f64));
        }
        for (k, (name, v)) in metrics.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", write_string(name), write_f64(*v)));
        }
        s.push_str("\n  },\n");

        // Phases: per-case wall time on its worker (the sweep's analogue of
        // solver phase timings).
        s.push_str("  \"phases\": {");
        for (k, o) in self.outcomes.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {}",
                write_string(&format!("case.{}", o.id)),
                write_f64(o.wall_secs)
            ));
        }
        s.push_str("\n  },\n");

        s.push_str("  \"histories\": {\n  },\n");
        s.push_str("  \"history_summaries\": {\n  },\n");

        // Audits: failed/timed-out cases surface as findings so report
        // consumers that only look at audits still see the damage.
        s.push_str("  \"audits\": [");
        let mut k = 0;
        for o in &self.outcomes {
            if matches!(o.status, CaseStatus::Completed | CaseStatus::Resumed) {
                continue;
            }
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"solver\": {}, \"audit\": \"case_outcome\", \"severity\": \"fail\", \
                 \"value\": 1, \"threshold\": 0, \"step\": 0, \"detail\": {}}}",
                write_string(&o.id),
                write_string(o.error.as_deref().unwrap_or(o.status.name()))
            ));
            k += 1;
        }
        s.push_str("\n  ],\n");
        s.push_str(&format!(
            "  \"audit_summary\": {{\"pass\": {}, \"warn\": 0, \"fail\": {}}}\n}}\n",
            c.completed + c.resumed,
            c.failed + c.timed_out
        ));
        s
    }

    /// Write the JSON document to a file.
    ///
    /// # Errors
    /// [`aerothermo_numerics::telemetry::SolverError::BadInput`] on I/O
    /// failure.
    pub fn write(&self, path: &str) -> Result<(), aerothermo_numerics::telemetry::SolverError> {
        std::fs::write(path, self.to_json()).map_err(|e| {
            aerothermo_numerics::telemetry::SolverError::BadInput(format!(
                "writing sweep report '{path}': {e}"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_numerics::json::{self, Value};

    fn outcome(id: &str, status: CaseStatus) -> CaseOutcome {
        CaseOutcome {
            id: id.to_string(),
            status,
            wall_secs: 0.25,
            retries: 1,
            worker: 0,
            note: String::new(),
            error: match status {
                CaseStatus::Failed => Some("diverged".to_string()),
                _ => None,
            },
            metrics: vec![("q_conv_w_m2".to_string(), 2e5)],
            counters: vec![("newton_solves", 7)],
            postmortem: None,
        }
    }

    fn report(outcomes: Vec<CaseOutcome>) -> SweepReport {
        SweepReport {
            figure: "test_sweep".to_string(),
            elapsed_secs: 1.0,
            workers: 2,
            halted: false,
            planned: outcomes.len(),
            outcomes,
        }
    }

    #[test]
    fn json_is_report_schema_compatible() {
        let r = report(vec![
            outcome("a", CaseStatus::Completed),
            outcome("b", CaseStatus::Failed),
        ]);
        assert!(!r.all_green());
        let doc = json::parse(&r.to_json()).expect("sweep report parses");
        for key in [
            "figure",
            "elapsed_secs",
            "all_green",
            "checks",
            "counters",
            "metrics",
            "phases",
            "histories",
            "history_summaries",
            "audits",
            "audit_summary",
        ] {
            assert!(doc.get(key).is_some(), "missing report key '{key}'");
        }
        assert_eq!(doc.get("all_green"), Some(&Value::Bool(false)));
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics.get("cases_failed").and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            metrics.get("a.q_conv_w_m2").and_then(Value::as_f64),
            Some(2e5)
        );
        // Failed case surfaces as an audit finding.
        let audits = doc.get("audits").unwrap().as_array().unwrap();
        assert_eq!(audits.len(), 1);
        assert_eq!(audits[0].get("solver").and_then(Value::as_str), Some("b"));
        // Summed counters include zero entries like the figure reports.
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("newton_solves"))
                .and_then(Value::as_f64),
            Some(14.0)
        );
    }

    #[test]
    fn exit_codes() {
        let green = report(vec![outcome("a", CaseStatus::Completed)]);
        assert_eq!(green.exit_code(false), 0);
        assert_eq!(green.exit_code(true), 0);
        let red = report(vec![outcome("a", CaseStatus::TimedOut)]);
        assert_eq!(red.exit_code(false), 0);
        assert_eq!(red.exit_code(true), STRICT_EXIT_CODE);
        let mut halted = report(vec![outcome("a", CaseStatus::Completed)]);
        halted.halted = true;
        halted.planned = 3;
        assert!(!halted.all_green());
    }

    #[test]
    fn resumed_cases_count_toward_green_but_not_throughput() {
        let mut r = report(vec![
            outcome("a", CaseStatus::Resumed),
            outcome("b", CaseStatus::Completed),
        ]);
        r.elapsed_secs = 2.0;
        assert!(r.all_green());
        assert!((r.throughput_cases_per_sec() - 0.5).abs() < 1e-12);
    }
}
