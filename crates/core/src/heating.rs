//! Stagnation-point aerothermal heating: convective and radiative, point
//! conditions and whole-trajectory pulses (the paper's Fig. 2 machinery).

use crate::stagnation::stagnation_state;
use aerothermo_atmosphere::trajectory::TrajectoryPoint;
use aerothermo_gas::equilibrium::{EqSolveScratch, EqState, EquilibriumGas};
use aerothermo_gas::transport::{mixture_viscosity_with, sutherland_air};
use aerothermo_gas::GasModel;
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_radiation::tangent_slab::{solve_slab_samples, Layer};
use aerothermo_radiation::{wavelength_grid, GasSample};
#[cfg(test)]
use aerothermo_solvers::blayer::SUTTON_GRAVES_EARTH;
use aerothermo_solvers::blayer::{
    fay_riddell, newtonian_velocity_gradient, sutton_graves, FayRiddellInputs,
};
use aerothermo_solvers::vsl::{solve as vsl_solve, VslProblem};

/// One point of a stagnation heating history.
#[derive(Debug, Clone, Copy)]
pub struct HeatPulsePoint {
    /// Time from entry interface \[s\].
    pub time: f64,
    /// Altitude \[m\].
    pub altitude: f64,
    /// Velocity \[m/s\].
    pub velocity: f64,
    /// Convective stagnation heating \[W/m²\].
    pub q_conv: f64,
    /// Radiative stagnation heating \[W/m²\].
    pub q_rad: f64,
}

/// Convective stagnation heating by the Sutton-Graves correlation.
#[inline]
#[must_use]
pub fn convective_sutton_graves(rho: f64, velocity: f64, nose_radius: f64, k: f64) -> f64 {
    sutton_graves(k, rho, nose_radius, velocity)
}

/// Tauber-Sutton radiative stagnation heating for Earth air \[W/m²\]:
/// `q_r = 4.736e4·Rn^a·ρ^1.22·f(V)` (the correlation yields W/cm²;
/// converted here), with `a = 1.072e6·V^{−1.88}·ρ^{−0.325}` and the
/// published tabulated velocity function f(V). Valid V ≈ 9–16 km/s;
/// returns 0 below 9 km/s where shock-layer radiation is negligible.
/// Silently extrapolates the velocity table above 16 km/s — see
/// [`crate::correlations::radiative_tauber_sutton_earth_checked`] for the
/// guarded variant.
#[inline]
#[must_use]
pub fn radiative_tauber_sutton_earth(rho: f64, velocity: f64, nose_radius: f64) -> f64 {
    // Tauber-Sutton Earth velocity function (V in km/s).
    const V_TAB: [f64; 17] = [
        9.0, 9.25, 9.5, 9.75, 10.0, 10.25, 10.5, 10.75, 11.0, 11.5, 12.0, 12.5, 13.0, 13.5, 14.0,
        15.0, 16.0,
    ];
    const F_TAB: [f64; 17] = [
        1.5, 4.3, 9.7, 19.5, 35.0, 55.0, 81.0, 115.0, 151.0, 238.0, 359.0, 495.0, 660.0, 850.0,
        1065.0, 1550.0, 2220.0,
    ];
    let v_km = velocity / 1000.0;
    if v_km < 9.0 {
        return 0.0;
    }
    let fv = aerothermo_numerics::interp::lerp_extrap(&V_TAB, &F_TAB, v_km).max(0.0);
    let a = (1.072e6 * velocity.powf(-1.88) * rho.powf(-0.325)).clamp(0.2, 1.0);
    // Correlation output is W/cm².
    1e4 * 4.736e4 * nose_radius.powf(a) * rho.powf(1.22) * fv
}

/// Reusable work buffers for [`convective_fay_riddell_equilibrium_with`]:
/// equilibrium Newton scratch, the edge/wall gas states, and the transport
/// mixing buffers. One instance amortizes every allocation on the
/// Fay-Riddell hot path across a sweep or surrogate table build.
#[derive(Debug)]
pub struct FayRiddellScratch {
    eq: EqSolveScratch,
    edge: EqState,
    wall: EqState,
    x: Vec<f64>,
    phi: Vec<f64>,
}

impl Default for FayRiddellScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl FayRiddellScratch {
    /// Fresh (empty) scratch; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            eq: EqSolveScratch::default(),
            edge: EqState::empty(),
            wall: EqState::empty(),
            x: Vec::new(),
            phi: Vec::new(),
        }
    }
}

/// Fay-Riddell convective heating evaluated from first principles for an
/// equilibrium gas: shock → stagnation state, Newtonian velocity gradient,
/// real transport properties at edge and wall.
///
/// # Errors
/// Propagates shock/stagnation failures.
#[allow(clippy::too_many_arguments)]
pub fn convective_fay_riddell_equilibrium(
    gas: &EquilibriumGas,
    model: &dyn GasModel,
    rho_inf: f64,
    p_inf: f64,
    velocity: f64,
    nose_radius: f64,
    t_wall: f64,
    lewis: f64,
) -> Result<f64, SolverError> {
    let mut scratch = FayRiddellScratch::new();
    convective_fay_riddell_equilibrium_with(
        gas,
        model,
        rho_inf,
        p_inf,
        velocity,
        nose_radius,
        t_wall,
        lewis,
        &mut scratch,
    )
}

/// Allocation-free [`convective_fay_riddell_equilibrium`]: all per-call
/// heap traffic lands in the caller's [`FayRiddellScratch`], so repeated
/// evaluations (sweeps, surrogate table builds) run without touching the
/// allocator. Results are bitwise identical to the plain entry.
///
/// # Errors
/// Propagates shock/stagnation failures.
#[allow(clippy::too_many_arguments)]
pub fn convective_fay_riddell_equilibrium_with(
    gas: &EquilibriumGas,
    model: &dyn GasModel,
    rho_inf: f64,
    p_inf: f64,
    velocity: f64,
    nose_radius: f64,
    t_wall: f64,
    lewis: f64,
    scratch: &mut FayRiddellScratch,
) -> Result<f64, SolverError> {
    let st = stagnation_state(model, rho_inf, p_inf, velocity)?;
    gas.at_tp_into(
        st.t_stag.max(300.0),
        st.p_stag,
        &mut scratch.eq,
        &mut scratch.edge,
    )
    .map_err(|e| format!("edge state: {e}"))?;
    gas.at_tp_into(t_wall, st.p_stag, &mut scratch.eq, &mut scratch.wall)
        .map_err(|e| format!("wall state: {e}"))?;
    let edge = &scratch.edge;
    let wall = &scratch.wall;
    let mu_e = mixture_viscosity_with(
        gas.mixture(),
        st.t_stag,
        &edge.mass_fractions,
        &mut scratch.x,
        &mut scratch.phi,
    );
    let mu_w = mixture_viscosity_with(
        gas.mixture(),
        t_wall,
        &wall.mass_fractions,
        &mut scratch.x,
        &mut scratch.phi,
    );
    // Dissociation enthalpy fraction: formation-enthalpy content of the
    // edge gas relative to total enthalpy.
    let h_d: f64 = gas
        .mixture()
        .species()
        .iter()
        .zip(&edge.mass_fractions)
        .map(|(sp, y)| y * sp.e_formation())
        .sum();
    let h_d_frac = (h_d / st.h_stag).clamp(0.0, 1.0);
    Ok(fay_riddell(&FayRiddellInputs {
        rho_e: edge.density,
        mu_e,
        rho_w: wall.density,
        mu_w,
        due_dx: newtonian_velocity_gradient(nose_radius, st.p_stag, p_inf, edge.density),
        h0e: st.h_stag,
        hw: wall.enthalpy,
        pr: 0.71,
        lewis,
        h_d_frac,
    }))
}

/// Full-physics radiative stagnation heating: solve the radiating VSL
/// stagnation layer, then run spectral tangent-slab transport over its
/// stations. Expensive (seconds); used for spot checks and the Titan bench.
///
/// # Errors
/// Propagates VSL failures.
pub fn radiative_tangent_slab(
    gas: &EquilibriumGas,
    problem: &VslProblem,
    lambda_lo: f64,
    lambda_hi: f64,
    n_lambda: usize,
) -> Result<f64, SolverError> {
    radiative_tangent_slab_with_telemetry(gas, problem, lambda_lo, lambda_hi, n_lambda)
        .map(|(q, _)| q)
}

/// [`radiative_tangent_slab`] that also returns the VSL solve's
/// [`aerothermo_numerics::telemetry::RunTelemetry`] (phase timings and the
/// standoff residual history) for run reports.
///
/// # Errors
/// Propagates VSL failures.
pub fn radiative_tangent_slab_with_telemetry(
    gas: &EquilibriumGas,
    problem: &VslProblem,
    lambda_lo: f64,
    lambda_hi: f64,
    n_lambda: usize,
) -> Result<(f64, aerothermo_numerics::telemetry::RunTelemetry), SolverError> {
    let mut sol = vsl_solve(gas, problem)?;
    let q = tangent_slab_over_stations(&mut sol, lambda_lo, lambda_hi, n_lambda);
    Ok((q, sol.telemetry))
}

/// Spectral tangent-slab wall flux \[W/m²\] over an already-converged VSL
/// layer. The transport cost lands in the solution's own telemetry as the
/// `tangent_slab` phase, so callers that solved the layer themselves (e.g.
/// via `solve_with_retry`) don't pay for a second VSL solve the way the
/// [`radiative_tangent_slab`] convenience entry does.
pub fn tangent_slab_over_stations(
    sol: &mut aerothermo_solvers::vsl::VslSolution,
    lambda_lo: f64,
    lambda_hi: f64,
    n_lambda: usize,
) -> f64 {
    let lambda = wavelength_grid(lambda_lo, lambda_hi, n_lambda);
    let names: Vec<String> = sol.species_names.clone();
    // Layers from wall outward; thickness from station spacing.
    let mut layers = Vec::new();
    for w in sol.stations.windows(2) {
        let thickness = w[1].y - w[0].y;
        let t = 0.5 * (w[0].temperature + w[1].temperature);
        let densities: Vec<(String, f64)> = names
            .iter()
            .cloned()
            .zip(
                w[0].number_densities
                    .iter()
                    .zip(&w[1].number_densities)
                    .map(|(a, b)| 0.5 * (a + b)),
            )
            .collect();
        layers.push(Layer {
            thickness,
            sample: GasSample::equilibrium(t, densities),
        });
    }
    let rad = sol.telemetry.time_phase("tangent_slab", || {
        solve_slab_samples(&layers, &lambda, 1e-9)
    });
    rad.total_wall_flux()
}

/// Stagnation heating pulse along a flown trajectory using the engineering
/// correlations (`k_sg` Sutton-Graves constant; radiative callback lets the
/// caller choose correlation or full transport).
#[must_use]
pub fn heat_pulse(
    trajectory: &[TrajectoryPoint],
    nose_radius: f64,
    k_sg: f64,
    mut q_rad: impl FnMut(&TrajectoryPoint) -> f64,
) -> Vec<HeatPulsePoint> {
    trajectory
        .iter()
        .map(|p| HeatPulsePoint {
            time: p.time,
            altitude: p.altitude,
            velocity: p.velocity,
            q_conv: convective_sutton_graves(p.density, p.velocity, nose_radius, k_sg),
            q_rad: q_rad(p),
        })
        .collect()
}

/// Integrated heat load \[J/m²\] of a pulse (trapezoid over time).
#[must_use]
pub fn heat_load(pulse: &[HeatPulsePoint]) -> (f64, f64) {
    let mut conv = 0.0;
    let mut rad = 0.0;
    for w in pulse.windows(2) {
        let dt = w[1].time - w[0].time;
        conv += 0.5 * (w[0].q_conv + w[1].q_conv) * dt;
        rad += 0.5 * (w[0].q_rad + w[1].q_rad) * dt;
    }
    (conv, rad)
}

/// Simple stagnation wall viscosity helper (Sutherland air at the wall).
#[must_use]
pub fn wall_viscosity(t_wall: f64) -> f64 {
    sutherland_air(t_wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_atmosphere::planets::ExponentialAtmosphere;
    use aerothermo_atmosphere::trajectory::{fly, EntryConditions, StopConditions, Vehicle};
    use aerothermo_gas::equilibrium::air9_equilibrium;

    #[test]
    fn sutton_graves_magnitude() {
        // Shuttle-class: ρ=1.6e-4, V=6.7 km/s, Rn=0.6 m → q ≈ 0.86 MW/m²·√(ρ/R)...
        let q = convective_sutton_graves(1.6e-4, 6700.0, 0.6, SUTTON_GRAVES_EARTH);
        assert!(q > 2e5 && q < 2e6, "q = {q:.3e}");
    }

    #[test]
    fn tauber_sutton_thresholds() {
        // Below 9 km/s: negligible; grows an order of magnitude from 10 to
        // 12 km/s (the tabulated f(V) steepness).
        assert_eq!(radiative_tauber_sutton_earth(1e-4, 5000.0, 1.0), 0.0);
        let q10 = radiative_tauber_sutton_earth(5e-4, 10_000.0, 1.0);
        let q12 = radiative_tauber_sutton_earth(5e-4, 12_000.0, 1.0);
        assert!(
            (q12 / q10 - 359.0 / 35.0).abs() < 2.0,
            "f(V) ratio: {}",
            q12 / q10
        );
        // Magnitude check: Stardust-class (12.6 km/s, ρ = 3e-4, Rn = 0.23 m)
        // radiative heating is in the 100 W/cm² class.
        let q_stardust = radiative_tauber_sutton_earth(3e-4, 12_600.0, 0.23);
        assert!(
            q_stardust > 3e5 && q_stardust < 3e7,
            "q = {q_stardust:.3e} W/m²"
        );
    }

    #[test]
    fn fay_riddell_equilibrium_magnitude() {
        let gas = air9_equilibrium();
        let table = aerothermo_gas::eq_table::air9_table();
        let q =
            convective_fay_riddell_equilibrium(&gas, table, 1.6e-4, 10.5, 6700.0, 0.6, 1200.0, 1.4)
                .unwrap();
        let q_sg = convective_sutton_graves(1.6e-4, 6700.0, 0.6, SUTTON_GRAVES_EARTH);
        let ratio = q / q_sg;
        assert!(ratio > 0.4 && ratio < 2.5, "FR/SG = {ratio} (q = {q:.3e})");
    }

    #[test]
    fn heat_pulse_peaks_before_peak_deceleration_velocity() {
        // For ballistic entry, peak heating occurs at V ≈ V_E·e^{−1/6} ≈
        // 0.85·V_E, earlier than peak dynamic pressure (0.61·V_E).
        let atm = ExponentialAtmosphere::titan();
        let traj = fly(
            &atm,
            &Vehicle::titan_probe(),
            EntryConditions {
                altitude: 450_000.0,
                velocity: 12_000.0,
                gamma: -30f64.to_radians(),
            },
            StopConditions::default(),
        );
        let pulse = heat_pulse(&traj, 0.6, 1.7e-4, |_| 0.0);
        let peak = pulse
            .iter()
            .max_by(|a, b| a.q_conv.total_cmp(&b.q_conv))
            .unwrap();
        let v_frac = peak.velocity / 12_000.0;
        assert!(
            v_frac > 0.7 && v_frac < 0.95,
            "peak heating at V/V_E = {v_frac}"
        );
        let (load_c, _) = heat_load(&pulse);
        assert!(load_c > 0.0);
    }

    #[test]
    fn titan_radiative_tangent_slab_positive() {
        let gas = aerothermo_gas::titan_equilibrium(0.05);
        let problem = VslProblem {
            u_inf: 11_000.0,
            rho_inf: 3e-5,
            t_inf: 160.0,
            nose_radius: 0.6,
            t_wall: 1500.0,
            n_points: 36,
            radiating: true,
        };
        let q = radiative_tangent_slab(&gas, &problem, 0.25e-6, 0.9e-6, 300).unwrap();
        assert!(q > 1e2, "CN-layer radiative flux = {q:.3e}");
        assert!(q < 1e8);
    }
}
