//! The computational-aerothermodynamics front end.
//!
//! This crate is the paper's "CAT" proper: the layer that combines the flow
//! solvers of `aerothermo-solvers`, the real-gas models of `aerothermo-gas`,
//! the atmospheres of `aerothermo-atmosphere`, and the radiation of
//! `aerothermo-radiation` into mission-level analyses:
//!
//! * [`stagnation`] — freestream → post-shock → stagnation state pipelines
//!   for any gas model,
//! * [`heating`] — stagnation heating: Fay-Riddell/Sutton-Graves convective,
//!   Tauber-Sutton and tangent-slab radiative, trajectory heat pulses,
//! * [`correlations`] — the stagnation-correlation family (Kemp-Riddell,
//!   Scala, Detra-Kemp-Riddell, Newtonian pressure) behind the
//!   [`correlations::HeatingModel`] dispatch enum, with typed edge guards,
//! * [`surrogate`] — precomputed bilinear heating response surfaces over
//!   (altitude × velocity) with a batched allocation-free query engine and
//!   a verified error bound (the trajectory-scale fast path),
//! * [`catalysis`] — catalytic-wall effects on convective heating,
//! * [`ablation`] — radiative-equilibrium walls and steady-state ablation
//!   (the TPS balances the surveyed vehicles were sized with),
//! * [`dispatch`] — the four equation sets as selectable methods with the
//!   paper's applicability guidance,
//! * [`tables`] — aligned text/CSV table output used by the figure benches.
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod ablation;
pub mod catalysis;
pub mod correlations;
pub mod dispatch;
pub mod heating;
pub mod stagnation;
pub mod surrogate;
pub mod tables;

pub use correlations::{CorrelationError, HeatingModel};
pub use dispatch::{recommend, EquationSet, ProblemClass};
pub use stagnation::{stagnation_state, StagnationState};
pub use surrogate::{SurrogateBuilder, SurrogateQuery, SurrogateTable};
