//! Catalytic-wall effects on convective heating.
//!
//! In a dissociated boundary layer a large fraction of the transportable
//! energy is chemical (formation enthalpy of atoms). Whether it reaches the
//! wall depends on surface catalycity: a fully catalytic wall recombines
//! every arriving atom (full chemical heating), a non-catalytic wall none.
//! The Space Shuttle's reaction-cured-glass tiles are famously *partially*
//! catalytic — the flight result of the paper's Ref. 17 — which is why
//! equilibrium predictions over-estimated tile heating.

/// Catalytic behavior of a thermal-protection surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WallCatalysis {
    /// Every atom recombines at the wall (upper bound, equilibrium wall).
    FullyCatalytic,
    /// No surface recombination (lower bound).
    NonCatalytic,
    /// Finite recombination efficiency γ ∈ (0, 1): the fraction of
    /// atom-wall collisions that recombine.
    Partial(f64),
}

/// Goulard's reduction: the fraction of the *chemical* heating delivered to
/// a wall of recombination efficiency `gamma_w`, for an atom mass fraction
/// `c_atom_edge` diffusing through a boundary layer with film coefficient
/// characteristics bundled into the catalytic speed ratio
/// `phi = γ_w·v_thermal/(4·C_h·u_ref)`-style parameter. We use the compact
/// engineering form `η = φ/(1 + φ)` with
/// `φ = γ_w·√(R_atom·T_w/(2π)) · ρ_w / C_m`, where `C_m` is the mass-transfer
/// conductance `≈ q_conv/(h_0 − h_w)` of the boundary layer.
#[must_use]
pub fn catalytic_efficiency(
    gamma_w: f64,
    r_atom: f64,
    t_wall: f64,
    rho_wall: f64,
    c_m: f64,
) -> f64 {
    if gamma_w <= 0.0 {
        return 0.0;
    }
    if gamma_w >= 1.0 {
        return 1.0;
    }
    let v_wall = (r_atom * t_wall / (2.0 * std::f64::consts::PI)).sqrt();
    let phi = gamma_w * rho_wall * v_wall / c_m.max(1e-30);
    phi / (1.0 + phi)
}

/// Heating ratio `q/q_fully_catalytic` for a wall, given the dissociation
/// enthalpy fraction `h_d_frac = h_chem/h_total` of the edge gas and the
/// Lewis number. Uses the Fay-Riddell structure: the chemical part of the
/// heat flux scales with `Le^0.52·h_d_frac` and is delivered in proportion
/// to the catalytic efficiency `eta`.
#[must_use]
pub fn heating_ratio(catalysis: WallCatalysis, h_d_frac: f64, lewis: f64, eta_partial: f64) -> f64 {
    let le_term = lewis.powf(0.52);
    let full = 1.0 + (le_term - 1.0) * h_d_frac;
    let chem_share = le_term * h_d_frac / full;
    match catalysis {
        WallCatalysis::FullyCatalytic => 1.0,
        WallCatalysis::NonCatalytic => 1.0 - chem_share,
        WallCatalysis::Partial(_) => 1.0 - chem_share * (1.0 - eta_partial.clamp(0.0, 1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_ordering() {
        let hd = 0.35;
        let le = 1.4;
        let q_fc = heating_ratio(WallCatalysis::FullyCatalytic, hd, le, 0.0);
        let q_nc = heating_ratio(WallCatalysis::NonCatalytic, hd, le, 0.0);
        let q_p = heating_ratio(WallCatalysis::Partial(0.01), hd, le, 0.5);
        assert!((q_fc - 1.0).abs() < 1e-12);
        assert!(q_nc < q_p && q_p < q_fc, "{q_nc} {q_p} {q_fc}");
        // For shuttle-like conditions the non-catalytic reduction is
        // substantial (tens of percent).
        assert!(q_nc < 0.8, "q_nc = {q_nc}");
        assert!(q_nc > 0.4);
    }

    #[test]
    fn no_dissociation_no_effect() {
        let q_nc = heating_ratio(WallCatalysis::NonCatalytic, 0.0, 1.4, 0.0);
        assert!((q_nc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn catalytic_efficiency_limits() {
        assert_eq!(catalytic_efficiency(0.0, 594.0, 1200.0, 0.01, 0.05), 0.0);
        assert_eq!(catalytic_efficiency(1.0, 594.0, 1200.0, 0.01, 0.05), 1.0);
        let lo = catalytic_efficiency(1e-4, 594.0, 1200.0, 0.01, 0.05);
        let hi = catalytic_efficiency(1e-1, 594.0, 1200.0, 0.01, 0.05);
        assert!(lo < hi && lo > 0.0 && hi < 1.0, "{lo} {hi}");
    }

    #[test]
    fn efficiency_grows_with_wall_density() {
        let lo = catalytic_efficiency(0.01, 594.0, 1200.0, 1e-3, 0.05);
        let hi = catalytic_efficiency(0.01, 594.0, 1200.0, 1e-1, 0.05);
        assert!(hi > lo);
    }
}
