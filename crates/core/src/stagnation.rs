//! Stagnation-state pipeline: freestream → normal shock → isentropic-ish
//! recompression, for any [`GasModel`].

use aerothermo_gas::GasModel;
use aerothermo_numerics::telemetry::SolverError;
use aerothermo_solvers::shock::normal_shock;

/// Post-shock and stagnation conditions on the stagnation streamline.
#[derive(Debug, Clone, Copy)]
pub struct StagnationState {
    /// Post-(normal-)shock density \[kg/m³\].
    pub rho_shock: f64,
    /// Post-shock pressure \[Pa\].
    pub p_shock: f64,
    /// Post-shock temperature \[K\].
    pub t_shock: f64,
    /// Post-shock flow speed (shock frame) \[m/s\].
    pub u_shock: f64,
    /// Stagnation (pitot) pressure \[Pa\].
    pub p_stag: f64,
    /// Stagnation temperature \[K\].
    pub t_stag: f64,
    /// Stagnation density \[kg/m³\].
    pub rho_stag: f64,
    /// Stagnation specific enthalpy \[J/kg\] (model reference).
    pub h_stag: f64,
    /// Density ratio ρ₂/ρ∞ across the shock (the shock-layer compression
    /// that controls standoff distance).
    pub density_ratio: f64,
}

/// Compute the stagnation state for a freestream `(ρ∞, p∞, V∞)` and a gas
/// model. The post-shock to stagnation-point recompression is modeled as a
/// constant-enthalpy pressure rise `p_stag = p₂ + ½ρ₂u₂²` (exact to the
/// order the engineering correlations need) followed by an EOS evaluation
/// at `(h_stag, p_stag)` via a density iteration.
///
/// # Errors
/// Propagates shock-solve failures (e.g. subsonic freestream).
pub fn stagnation_state(
    gas: &dyn GasModel,
    rho_inf: f64,
    p_inf: f64,
    v_inf: f64,
) -> Result<StagnationState, SolverError> {
    let jump =
        normal_shock(gas, rho_inf, p_inf, v_inf).map_err(|e| format!("normal shock: {e}"))?;
    let h2 = jump.e + jump.p / jump.rho;
    let h_stag = h2 + 0.5 * jump.u * jump.u;
    let p_stag = jump.p + 0.5 * jump.rho * jump.u * jump.u;

    // Find ρ_stag with h(ρ, e) = h_stag and p(ρ, e) = p_stag: iterate
    // ρ → e = h_stag − p_stag/ρ → p(ρ, e) and correct ρ by the pressure
    // mismatch (fixed point; converges fast since p is near-linear in ρ).
    let mut rho_s = jump.rho * 1.05;
    for _ in 0..60 {
        let e = h_stag - p_stag / rho_s;
        let p = gas.pressure(rho_s, e);
        let err = p / p_stag;
        if (err - 1.0).abs() < 1e-10 {
            break;
        }
        rho_s /= err.clamp(0.5, 2.0);
    }
    let e_stag = h_stag - p_stag / rho_s;
    let t_stag = gas.temperature(rho_s, e_stag);

    Ok(StagnationState {
        rho_shock: jump.rho,
        p_shock: jump.p,
        t_shock: jump.t,
        u_shock: jump.u,
        p_stag,
        t_stag,
        rho_stag: rho_s,
        h_stag,
        density_ratio: jump.rho / rho_inf,
    })
}

/// Engineering estimate of the bow-shock standoff distance on a sphere from
/// the shock density ratio ε = ρ∞/ρ₂ (Serbin/Lobb class correlation):
/// `Δ/Rn ≈ ε / (1 + √(2ε))`.
#[inline]
#[must_use]
pub fn standoff_estimate(nose_radius: f64, density_ratio: f64) -> f64 {
    let eps = 1.0 / density_ratio;
    nose_radius * eps / (1.0 + (2.0 * eps).sqrt())
}

/// [`standoff_estimate`] with typed input guards: a density ratio at or
/// below 1 means no compression — the correlation's ε = 1/ratio would
/// silently produce a standoff larger than the nose radius (or a negative
/// one) instead of flagging the unphysical input.
///
/// # Errors
/// [`crate::correlations::CorrelationError::NonPositive`] for a
/// non-positive nose radius or a density ratio ≤ 1 (or NaN inputs).
pub fn try_standoff_estimate(
    nose_radius: f64,
    density_ratio: f64,
) -> Result<f64, crate::correlations::CorrelationError> {
    use crate::correlations::CorrelationError;
    if nose_radius.is_nan() || nose_radius <= 0.0 {
        return Err(CorrelationError::NonPositive {
            name: "nose_radius",
            value: nose_radius,
        });
    }
    if density_ratio.is_nan() || density_ratio <= 1.0 {
        return Err(CorrelationError::NonPositive {
            name: "density_ratio - 1",
            value: density_ratio - 1.0,
        });
    }
    Ok(standoff_estimate(nose_radius, density_ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::eq_table::air9_table;
    use aerothermo_gas::IdealGas;

    #[test]
    fn ideal_gas_pitot_matches_rayleigh() {
        let gas = IdealGas::air();
        let t_inf = 220.0;
        let p_inf = 100.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let a = (1.4_f64 * 287.05 * t_inf).sqrt();
        let st = stagnation_state(&gas, rho_inf, p_inf, 8.0 * a).unwrap();
        // Rayleigh pitot at M8, γ=1.4: p0₂/p∞ = 82.87.
        let ratio = st.p_stag / p_inf;
        assert!((ratio - 82.87).abs() / 82.87 < 0.03, "p0/p = {ratio}");
        // Stagnation T for perfect gas: T0 = T(1+0.2M²) = 220·13.8 = 3036.
        assert!((st.t_stag - 3036.0).abs() < 60.0, "T0 = {}", st.t_stag);
    }

    #[test]
    fn equilibrium_air_cooler_and_denser_than_ideal() {
        // The central real-gas effect: dissociation absorbs energy, so the
        // equilibrium stagnation temperature is far below the ideal-gas
        // value and the shock density ratio far above 6.
        let table = air9_table();
        let rho_inf = 1.6e-4; // ~65 km
        let p_inf = rho_inf * 287.05 * 230.0;
        let v = 6700.0;
        let st_eq = stagnation_state(table, rho_inf, p_inf, v).unwrap();

        let gas = IdealGas::air();
        let st_id = stagnation_state(&gas, rho_inf, p_inf, v).unwrap();

        assert!(
            st_eq.t_stag < 0.45 * st_id.t_stag,
            "T_eq = {} vs T_ideal = {}",
            st_eq.t_stag,
            st_id.t_stag
        );
        assert!(
            st_eq.density_ratio > 8.0,
            "ρ ratio = {}",
            st_eq.density_ratio
        );
        assert!(st_id.density_ratio < 6.2);
    }

    #[test]
    fn try_standoff_rejects_unphysical_inputs() {
        assert!(try_standoff_estimate(1.0, 0.9).is_err());
        assert!(try_standoff_estimate(1.0, 1.0).is_err());
        assert!(try_standoff_estimate(-0.5, 6.0).is_err());
        assert!(try_standoff_estimate(f64::NAN, 6.0).is_err());
        assert!(try_standoff_estimate(1.0, f64::NAN).is_err());
        let d = try_standoff_estimate(1.0, 6.0).unwrap();
        assert_eq!(d, standoff_estimate(1.0, 6.0));
    }

    #[test]
    fn standoff_estimate_tracks_density_ratio() {
        // Ideal γ=1.4 strong shock: ε = 1/6 → Δ/Rn ≈ 0.105; equilibrium
        // ε ~ 1/12 → Δ/Rn ≈ 0.059.
        let d_ideal = standoff_estimate(1.0, 6.0);
        let d_eq = standoff_estimate(1.0, 12.0);
        assert!(d_ideal > 0.09 && d_ideal < 0.13, "{d_ideal}");
        assert!(d_eq < 0.7 * d_ideal);
    }

    #[test]
    fn stagnation_enthalpy_conserved() {
        let gas = IdealGas::air();
        let t_inf = 220.0;
        let p_inf = 100.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let v = 3000.0;
        let st = stagnation_state(&gas, rho_inf, p_inf, v).unwrap();
        let h_inf = gas.enthalpy(rho_inf, gas.energy(rho_inf, p_inf));
        let h_total = h_inf + 0.5 * v * v;
        assert!((st.h_stag - h_total).abs() / h_total < 1e-6);
    }
}
