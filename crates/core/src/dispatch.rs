//! Equation-set selection — the paper's central taxonomy as an API.
//!
//! The paper organizes CAT around four equation sets with distinct
//! applicability envelopes and costs:
//!
//! | set   | valid when                                            | relative cost |
//! |-------|-------------------------------------------------------|---------------|
//! | VSL   | windward forebody, no streamwise/crossflow separation | lowest        |
//! | E+BL  | weak viscous-inviscid interaction, thin BL            | low           |
//! | PNS   | supersonic streamwise inviscid flow, no reversal      | moderate      |
//! | NS    | anything, including wakes and subsonic pockets        | highest       |
//!
//! [`recommend`] encodes that guidance; the benches measure the cost
//! ordering empirically (experiment E10 in DESIGN.md).

/// The four solution methods of computational aerothermodynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquationSet {
    /// Viscous shock layer.
    Vsl,
    /// Euler plus boundary layer.
    EulerBl,
    /// Parabolized Navier-Stokes.
    Pns,
    /// Full (Reynolds-averaged) Navier-Stokes.
    Ns,
}

impl EquationSet {
    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EquationSet::Vsl => "VSL",
            EquationSet::EulerBl => "E+BL",
            EquationSet::Pns => "PNS",
            EquationSet::Ns => "NS",
        }
    }
}

/// Flow-problem features that drive method selection.
#[derive(Debug, Clone, Copy)]
pub struct ProblemClass {
    /// Any separated/reverse flow expected (wakes, base flows, strong
    /// interactions)?
    pub separated_flow: bool,
    /// Large subsonic region with upstream influence (very blunt body
    /// forebody at low supersonic Mach, base recirculation)?
    pub large_subsonic_region: bool,
    /// Is only the windward forebody of a simple (not too slender, not too
    /// blunt) configuration needed?
    pub windward_forebody_only: bool,
    /// Is the streamwise inviscid flow supersonic everywhere in the domain
    /// of interest (slender body, small bluntness)?
    pub streamwise_supersonic: bool,
    /// Is the viscous-inviscid interaction weak (thin attached boundary
    /// layer, high Reynolds number)?
    pub weak_interaction: bool,
}

/// Recommend the cheapest applicable equation set, following the paper's
/// guidance (Section "Computational Aerothermodynamics").
#[must_use]
pub fn recommend(class: &ProblemClass) -> EquationSet {
    if class.separated_flow || class.large_subsonic_region {
        return EquationSet::Ns;
    }
    if class.windward_forebody_only {
        return EquationSet::Vsl;
    }
    if class.weak_interaction {
        return EquationSet::EulerBl;
    }
    if class.streamwise_supersonic {
        return EquationSet::Pns;
    }
    EquationSet::Ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_flows_need_ns() {
        // The paper: "A prime example is the simulation of the wake-flow
        // region of an aerobraking AOTV" — NS territory.
        let aotv_wake = ProblemClass {
            separated_flow: true,
            large_subsonic_region: true,
            windward_forebody_only: false,
            streamwise_supersonic: false,
            weak_interaction: false,
        };
        assert_eq!(recommend(&aotv_wake), EquationSet::Ns);
    }

    #[test]
    fn probe_forebody_gets_vsl() {
        // Galileo/Titan probe forebody: the VSL codes' home turf.
        let probe = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: true,
            streamwise_supersonic: false,
            weak_interaction: false,
        };
        assert_eq!(recommend(&probe), EquationSet::Vsl);
    }

    #[test]
    fn orbiter_full_body_weak_interaction_gets_ebl() {
        let orbiter = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: false,
            streamwise_supersonic: false,
            weak_interaction: true,
        };
        assert_eq!(recommend(&orbiter), EquationSet::EulerBl);
    }

    #[test]
    fn slender_tav_gets_pns() {
        let tav = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: false,
            streamwise_supersonic: true,
            weak_interaction: false,
        };
        assert_eq!(recommend(&tav), EquationSet::Pns);
    }

    #[test]
    fn names_stable() {
        assert_eq!(EquationSet::Vsl.name(), "VSL");
        assert_eq!(EquationSet::Ns.name(), "NS");
    }

    #[test]
    fn separation_overrides_every_cheaper_claim() {
        // Conflicting flags: a separated flow trumps all cheaper-set
        // eligibility claims, however the rest of the class is filled in.
        let contradictory = ProblemClass {
            separated_flow: true,
            large_subsonic_region: false,
            windward_forebody_only: true,
            streamwise_supersonic: true,
            weak_interaction: true,
        };
        assert_eq!(recommend(&contradictory), EquationSet::Ns);
    }

    #[test]
    fn subsonic_region_overrides_cheaper_claims() {
        let blunt_low_mach = ProblemClass {
            separated_flow: false,
            large_subsonic_region: true,
            windward_forebody_only: true,
            streamwise_supersonic: true,
            weak_interaction: true,
        };
        assert_eq!(recommend(&blunt_low_mach), EquationSet::Ns);
    }

    #[test]
    fn windward_forebody_beats_weak_interaction_and_pns() {
        // When the windward forebody is all that's asked for, VSL is the
        // cheapest valid set even if E+BL and PNS would also apply.
        let forebody = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: true,
            streamwise_supersonic: true,
            weak_interaction: true,
        };
        assert_eq!(recommend(&forebody), EquationSet::Vsl);
    }

    #[test]
    fn weak_interaction_beats_streamwise_supersonic() {
        // Both E+BL and PNS apply; E+BL is cheaper and wins.
        let slender_attached = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: false,
            streamwise_supersonic: true,
            weak_interaction: true,
        };
        assert_eq!(recommend(&slender_attached), EquationSet::EulerBl);
    }

    #[test]
    fn no_claims_at_all_falls_back_to_ns() {
        // Nothing asserted about the flow: only the full NS equations are
        // unconditionally valid.
        let unknown = ProblemClass {
            separated_flow: false,
            large_subsonic_region: false,
            windward_forebody_only: false,
            streamwise_supersonic: false,
            weak_interaction: false,
        };
        assert_eq!(recommend(&unknown), EquationSet::Ns);
    }
}
