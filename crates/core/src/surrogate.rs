//! Trajectory-scale surrogate fast path: precomputed bilinear heating
//! response surfaces over (altitude × velocity).
//!
//! Every exact stagnation-heating query walks normal shock → stagnation
//! recompression → EOS → correlation — microseconds per point, dominated by
//! the equilibrium gas model. Entry-trajectory work asks the same question
//! millions of times over a bounded (h, V) corridor, so this module builds
//! the answer once: four response channels (stagnation pressure and
//! temperature, convective and radiative heat flux) sampled on a tensor
//! grid and served by allocation-free bilinear lookups at
//! [`SurrogateTable::query`] / [`SurrogateTable::query_batch`].
//!
//! # Accuracy contract
//!
//! The builder refines the grid until, at every refinement sample (cell
//! centers and edge midpoints), the surrogate-vs-exact relative error of
//! every channel is ≤ `tolerance/2`. Pressure and the two fluxes are stored
//! in log space — their exact responses are near-log-linear in (h, V), so
//! between samples the bilinear error stays below the documented bound
//! `tolerance` (default [`DEFAULT_TOLERANCE`]) across the whole table
//! domain; the `tests/surrogate_fastpath.rs` proptest enforces this at
//! random off-grid points. Relative error is measured against floors
//! ([`P_FLOOR`] Pa, [`T_FLOOR`] K, [`Q_FLOOR`] W/m²) so physically
//! negligible channels (e.g. radiative flux below the Tauber-Sutton onset)
//! can't inflate the metric. Queries outside the table domain clamp to its
//! edges — the bound applies inside the domain only.
//!
//! Radiative heating uses the smooth-onset Tauber-Sutton variant
//! ([`crate::correlations::radiative_tauber_sutton_earth_smooth`]): a
//! bilinear surface cannot meet a relative-error bound across the raw
//! correlation's jump at 9 km/s.

use std::collections::HashMap;

use crate::correlations::{radiative_tauber_sutton_earth_smooth, HeatingModel};
use crate::heating::HeatPulsePoint;
use crate::stagnation::stagnation_state;
use aerothermo_atmosphere::trajectory::{
    fly_observed, EntryConditions, StopConditions, TrajectoryPoint, Vehicle,
};
use aerothermo_atmosphere::Atmosphere;
use aerothermo_gas::GasModel;
use aerothermo_numerics::telemetry::{counters, Counter, SolverError};

/// Default documented max-relative-error bound of a built table.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Relative-error floor for the stagnation-pressure channel \[Pa\].
pub const P_FLOOR: f64 = 1e-2;

/// Relative-error floor for the stagnation-temperature channel \[K\].
pub const T_FLOOR: f64 = 1.0;

/// Relative-error floor for the heat-flux channels \[W/m²\] — fluxes below
/// 100 W/m² are irrelevant to entry heating and are only held to an
/// absolute error of `tolerance · Q_FLOOR`.
pub const Q_FLOOR: f64 = 100.0;

/// Offset added before taking logs of the flux channels so exact zeros
/// (e.g. no radiation) stay representable.
const Q_EPS: f64 = 1e-3;

/// Refinement never grows an axis beyond this many nodes.
const MAX_AXIS_NODES: usize = 2048;

/// Refinement pass budget; each pass at most halves every violating cell.
const MAX_PASSES: usize = 16;

/// One surrogate answer: the four response channels at a freestream
/// (altitude, velocity) point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SurrogateQuery {
    /// Stagnation (pitot) pressure \[Pa\].
    pub p_stag: f64,
    /// Stagnation temperature \[K\].
    pub t_stag: f64,
    /// Convective stagnation heat flux \[W/m²\].
    pub q_conv: f64,
    /// Radiative stagnation heat flux \[W/m²\].
    pub q_rad: f64,
}

/// The exact response the surrogate approximates: anything that can map
/// (altitude, velocity) to the four channels. [`ExactResponse`] is the
/// production implementation; tests substitute analytic functions.
pub trait StagnationResponse {
    /// Evaluate the exact response at `(altitude [m], velocity [m/s])`.
    ///
    /// # Errors
    /// Propagates shock/EOS failures (e.g. subsonic freestream).
    fn evaluate(&mut self, altitude: f64, velocity: f64) -> Result<SurrogateQuery, SolverError>;
}

/// Radiative-channel model for [`ExactResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadiativeModel {
    /// No radiative heating (outer-planet/correlation-free studies).
    None,
    /// Smooth-onset Tauber-Sutton for Earth air.
    TauberSuttonEarthSmooth,
}

/// The production exact path: atmosphere → freestream, shock + EOS →
/// stagnation state, [`HeatingModel`] correlation → convective flux,
/// [`RadiativeModel`] → radiative flux.
pub struct ExactResponse<'a> {
    /// Atmosphere supplying ρ(h), p(h).
    pub atmosphere: &'a dyn Atmosphere,
    /// Gas model for the shock/stagnation pipeline (e.g. the Tannehill-style
    /// equilibrium table).
    pub gas: &'a dyn GasModel,
    /// Convective-heating correlation.
    pub model: HeatingModel,
    /// Radiative-heating model.
    pub radiative: RadiativeModel,
    /// Nose radius \[m\].
    pub nose_radius: f64,
}

impl StagnationResponse for ExactResponse<'_> {
    fn evaluate(&mut self, altitude: f64, velocity: f64) -> Result<SurrogateQuery, SolverError> {
        let rho = self.atmosphere.density(altitude);
        let p = self.atmosphere.pressure(altitude);
        let st = stagnation_state(self.gas, rho, p, velocity)?;
        let q_conv = self.model.q_stag(rho, velocity, self.nose_radius);
        let q_rad = match self.radiative {
            RadiativeModel::None => 0.0,
            RadiativeModel::TauberSuttonEarthSmooth => {
                radiative_tauber_sutton_earth_smooth(rho, velocity, self.nose_radius)
            }
        };
        Ok(SurrogateQuery {
            p_stag: st.p_stag,
            t_stag: st.t_stag,
            q_conv,
            q_rad,
        })
    }
}

/// Build statistics recorded by [`SurrogateBuilder::build`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Exact-path evaluations spent building the table (cache-deduplicated).
    pub exact_evals: usize,
    /// Refinement passes run (0 = the initial grid already met the bound).
    pub refine_passes: usize,
    /// Worst sampled relative error remaining at the end of the build.
    pub max_sampled_rel_err: f64,
}

/// Precomputed bilinear response surfaces over (altitude × velocity) with
/// an allocation-free batched query engine. Build once with
/// [`SurrogateBuilder`], query millions of times.
#[derive(Debug, Clone)]
pub struct SurrogateTable {
    h_axis: Vec<f64>,
    v_axis: Vec<f64>,
    /// Node channels, interleaved `[(ln p, T, ln(q_c+ε), ln(q_r+ε)); nh·nv]`
    /// in row-major `(i_h · nv + j_v)` order.
    data: Vec<f64>,
    tolerance: f64,
    stats: BuildStats,
}

/// Clamped bracket: interval index and interpolation fraction on a sorted
/// axis.
#[inline]
fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 2, 1.0);
    }
    let i = (axis.partition_point(|&a| a <= x) - 1).min(n - 2);
    (i, (x - axis[i]) / (axis[i + 1] - axis[i]))
}

impl SurrogateTable {
    /// The documented max-relative-error bound versus the exact path.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Build statistics (exact evaluations, refinement passes).
    #[must_use]
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Table domain `((h_lo, h_hi), (v_lo, v_hi))`.
    #[must_use]
    pub fn domain(&self) -> ((f64, f64), (f64, f64)) {
        (
            (self.h_axis[0], *self.h_axis.last().unwrap()),
            (self.v_axis[0], *self.v_axis.last().unwrap()),
        )
    }

    /// Grid shape `(n_altitude, n_velocity)` after refinement.
    #[must_use]
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.h_axis.len(), self.v_axis.len())
    }

    /// Raw bilinear node interpolation of the four stored channels — shared
    /// verbatim by the single and batched entries (and the builder's own
    /// error sampling), so batch-vs-single results are bitwise identical by
    /// construction.
    #[inline]
    fn interpolate(&self, altitude: f64, velocity: f64) -> SurrogateQuery {
        let (i, tx) = bracket(&self.h_axis, altitude);
        let (j, ty) = bracket(&self.v_axis, velocity);
        let nv = self.v_axis.len();
        let b00 = (i * nv + j) * 4;
        let b01 = b00 + 4;
        let b10 = ((i + 1) * nv + j) * 4;
        let b11 = b10 + 4;
        let w00 = (1.0 - tx) * (1.0 - ty);
        let w01 = (1.0 - tx) * ty;
        let w10 = tx * (1.0 - ty);
        let w11 = tx * ty;
        let d = &self.data;
        let ch =
            |c: usize| w00 * d[b00 + c] + w01 * d[b01 + c] + w10 * d[b10 + c] + w11 * d[b11 + c];
        SurrogateQuery {
            p_stag: ch(0).exp(),
            t_stag: ch(1),
            q_conv: (ch(2).exp() - Q_EPS).max(0.0),
            q_rad: (ch(3).exp() - Q_EPS).max(0.0),
        }
    }

    /// Whether `(altitude, velocity)` lies inside the table corridor, i.e.
    /// whether [`SurrogateTable::query`] interpolates rather than clamps.
    /// A resident-table server uses this to route out-of-corridor queries
    /// to the exact [`StagnationResponse`] path instead of silently
    /// answering with edge-clamped values.
    #[inline]
    #[must_use]
    pub fn contains(&self, altitude: f64, velocity: f64) -> bool {
        let ((h0, h1), (v0, v1)) = self.domain();
        altitude >= h0 && altitude <= h1 && velocity >= v0 && velocity <= v1
    }

    /// Single surrogate query at `(altitude [m], velocity [m/s])`.
    /// Out-of-domain inputs clamp to the table edges.
    #[inline]
    #[must_use]
    pub fn query(&self, altitude: f64, velocity: f64) -> SurrogateQuery {
        counters::add(Counter::SurrogateQueries, 1);
        self.interpolate(altitude, velocity)
    }

    /// Batched surrogate queries: `out[k] = query(altitude[k], velocity[k])`
    /// without per-query counter traffic or any allocation. Results are
    /// bitwise identical to [`SurrogateTable::query`] on the same inputs.
    ///
    /// # Panics
    /// Panics on input/output length mismatch.
    pub fn query_batch(&self, altitude: &[f64], velocity: &[f64], out: &mut [SurrogateQuery]) {
        assert!(
            altitude.len() == velocity.len() && altitude.len() == out.len(),
            "query_batch length mismatch: {} / {} / {}",
            altitude.len(),
            velocity.len(),
            out.len()
        );
        counters::add(Counter::SurrogateQueries, altitude.len() as u64);
        for ((o, &h), &v) in out.iter_mut().zip(altitude).zip(velocity) {
            *o = self.interpolate(h, v);
        }
    }
}

/// Builder for [`SurrogateTable`]: domain, initial grid, tolerance, then
/// [`SurrogateBuilder::build`] against any [`StagnationResponse`].
#[derive(Debug, Clone)]
pub struct SurrogateBuilder {
    h_range: (f64, f64),
    v_range: (f64, f64),
    nh: usize,
    nv: usize,
    tolerance: f64,
}

/// Per-channel relative error of `s` versus exact `e` under the documented
/// floors; returns the worst channel.
fn rel_err(s: &SurrogateQuery, e: &SurrogateQuery) -> f64 {
    let p = (s.p_stag - e.p_stag).abs() / e.p_stag.abs().max(P_FLOOR);
    let t = (s.t_stag - e.t_stag).abs() / e.t_stag.abs().max(T_FLOOR);
    let qc = (s.q_conv - e.q_conv).abs() / e.q_conv.abs().max(Q_FLOOR);
    let qr = (s.q_rad - e.q_rad).abs() / e.q_rad.abs().max(Q_FLOOR);
    p.max(t).max(qc).max(qr)
}

impl SurrogateBuilder {
    /// Start a builder over `h_range` \[m\] × `v_range` \[m/s\] with the
    /// default 33×33 initial grid and [`DEFAULT_TOLERANCE`].
    #[must_use]
    pub fn new(h_range: (f64, f64), v_range: (f64, f64)) -> Self {
        Self {
            h_range,
            v_range,
            nh: 33,
            nv: 33,
            tolerance: DEFAULT_TOLERANCE,
        }
    }

    /// Initial tensor-grid resolution before refinement (min 4×4).
    #[must_use]
    pub fn initial_grid(mut self, nh: usize, nv: usize) -> Self {
        self.nh = nh.max(4);
        self.nv = nv.max(4);
        self
    }

    /// Documented max-relative-error bound (the builder refines to half of
    /// it at the sample points).
    #[must_use]
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol.max(1e-4);
        self
    }

    /// Build the table, refining the grid locally wherever the sampled
    /// error exceeds `tolerance/2`.
    ///
    /// # Errors
    /// Propagates exact-path failures, and fails if the bound is still
    /// violated when an axis hits the refinement cap (a jump discontinuity
    /// in the response — see the module docs on smooth radiative onset).
    pub fn build(
        &self,
        response: &mut dyn StagnationResponse,
    ) -> Result<SurrogateTable, SolverError> {
        let (h0, h1) = self.h_range;
        let (v0, v1) = self.v_range;
        if h0.is_nan() || h1.is_nan() || v0.is_nan() || v1.is_nan() || h1 <= h0 || v1 <= v0 {
            return Err(SolverError::BadInput(format!(
                "surrogate domain must be non-degenerate: h [{h0}, {h1}], v [{v0}, {v1}]"
            )));
        }
        let linspace = |a: f64, b: f64, n: usize| -> Vec<f64> {
            (0..n)
                .map(|k| a + (b - a) * k as f64 / (n - 1) as f64)
                .collect()
        };
        let mut h_axis = linspace(h0, h1, self.nh);
        let mut v_axis = linspace(v0, v1, self.nv);

        // Exact evaluations are cached by input bit patterns: refinement
        // revisits the same nodes/samples across passes.
        let mut cache: HashMap<(u64, u64), SurrogateQuery> = HashMap::new();
        let mut exact = |h: f64,
                         v: f64,
                         cache: &mut HashMap<(u64, u64), SurrogateQuery>|
         -> Result<SurrogateQuery, SolverError> {
            if let Some(q) = cache.get(&(h.to_bits(), v.to_bits())) {
                return Ok(*q);
            }
            let q = response.evaluate(h, v)?;
            cache.insert((h.to_bits(), v.to_bits()), q);
            Ok(q)
        };

        let internal_tol = 0.5 * self.tolerance;
        let mut passes = 0usize;
        loop {
            // Fill node channels for the current grid.
            let nv = v_axis.len();
            let mut data = vec![0.0f64; h_axis.len() * nv * 4];
            for (i, &h) in h_axis.iter().enumerate() {
                for (j, &v) in v_axis.iter().enumerate() {
                    let q = exact(h, v, &mut cache)?;
                    let b = (i * nv + j) * 4;
                    data[b] = q.p_stag.ln();
                    data[b + 1] = q.t_stag;
                    data[b + 2] = (q.q_conv + Q_EPS).ln();
                    data[b + 3] = (q.q_rad + Q_EPS).ln();
                }
            }
            let table = SurrogateTable {
                h_axis: h_axis.clone(),
                v_axis: v_axis.clone(),
                data,
                tolerance: self.tolerance,
                stats: BuildStats::default(),
            };

            // Sample every cell at its center and edge midpoints. The edge
            // midpoints attribute error to one axis (an h-edge midpoint
            // sits on a v node, so its error is pure h-direction linear
            // interpolation error, and vice versa); only a cell whose sole
            // violation is the center (mixed curvature) splits both axes.
            let mut split_h = vec![false; h_axis.len() - 1];
            let mut split_v = vec![false; v_axis.len() - 1];
            let mut worst = 0.0f64;
            for i in 0..h_axis.len() - 1 {
                let hc = 0.5 * (h_axis[i] + h_axis[i + 1]);
                for j in 0..v_axis.len() - 1 {
                    let vc = 0.5 * (v_axis[j] + v_axis[j + 1]);
                    let mut err_at = |h: f64,
                                      v: f64,
                                      cache: &mut HashMap<(u64, u64), SurrogateQuery>|
                     -> Result<f64, SolverError> {
                        let e = exact(h, v, cache)?;
                        Ok(rel_err(&table.interpolate(h, v), &e))
                    };
                    let eh = err_at(hc, v_axis[j], &mut cache)?.max(err_at(
                        hc,
                        v_axis[j + 1],
                        &mut cache,
                    )?);
                    let ev = err_at(h_axis[i], vc, &mut cache)?.max(err_at(
                        h_axis[i + 1],
                        vc,
                        &mut cache,
                    )?);
                    let ec = err_at(hc, vc, &mut cache)?;
                    worst = worst.max(eh).max(ev).max(ec);
                    if eh > internal_tol {
                        split_h[i] = true;
                    }
                    if ev > internal_tol {
                        split_v[j] = true;
                    }
                    if ec > internal_tol && eh <= internal_tol && ev <= internal_tol {
                        split_h[i] = true;
                        split_v[j] = true;
                    }
                }
            }

            if !split_h.iter().any(|&s| s) && !split_v.iter().any(|&s| s) {
                let mut table = table;
                table.stats = BuildStats {
                    exact_evals: cache.len(),
                    refine_passes: passes,
                    max_sampled_rel_err: worst,
                };
                counters::add(Counter::SurrogateBuilds, 1);
                return Ok(table);
            }
            passes += 1;
            let capped = h_axis.len() >= MAX_AXIS_NODES || v_axis.len() >= MAX_AXIS_NODES;
            if passes >= MAX_PASSES || capped {
                return Err(SolverError::BadInput(format!(
                    "surrogate refinement stalled at rel err {worst:.3e} \
                     (tol {internal_tol:.1e}) after {passes} passes on a \
                     {}x{} grid — response likely discontinuous in-domain",
                    h_axis.len(),
                    v_axis.len()
                )));
            }
            let refine = |axis: &[f64], split: &[bool]| -> Vec<f64> {
                let mut out = Vec::with_capacity(axis.len() + split.iter().filter(|&&s| s).count());
                for k in 0..axis.len() - 1 {
                    out.push(axis[k]);
                    if split[k] {
                        out.push(0.5 * (axis[k] + axis[k + 1]));
                    }
                }
                out.push(*axis.last().unwrap());
                out
            };
            h_axis = refine(&h_axis, &split_h);
            v_axis = refine(&v_axis, &split_v);
        }
    }
}

/// Resolve a full entry heating history through the surrogate: integrate
/// the 3-DOF trajectory and answer every recorded sample's stagnation
/// heating from the table in the same pass. Replaces the exact-path
/// per-point walk of [`crate::heating::heat_pulse`] at table-lookup cost.
#[must_use]
pub fn fly_heating_history(
    atmosphere: &dyn Atmosphere,
    vehicle: &Vehicle,
    entry: EntryConditions,
    stop: StopConditions,
    table: &SurrogateTable,
) -> Vec<HeatPulsePoint> {
    let mut pulse: Vec<HeatPulsePoint> = Vec::new();
    let _ = fly_observed(atmosphere, vehicle, entry, stop, |p: &TrajectoryPoint| {
        let q = table.query(p.altitude, p.velocity);
        pulse.push(HeatPulsePoint {
            time: p.time,
            altitude: p.altitude,
            velocity: p.velocity,
            q_conv: q.q_conv,
            q_rad: q.q_rad,
        });
    });
    pulse
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_atmosphere::us76::Us76;
    use aerothermo_gas::eq_table::air9_table;

    /// Analytic smooth response for cheap builder tests.
    struct Analytic;
    impl StagnationResponse for Analytic {
        fn evaluate(&mut self, h: f64, v: f64) -> Result<SurrogateQuery, SolverError> {
            let rho = 1.2 * (-h / 7_200.0).exp();
            Ok(SurrogateQuery {
                p_stag: 0.92 * rho * v * v,
                t_stag: 250.0 + 3.2e-4 * v * v,
                q_conv: 1.74e-4 * rho.sqrt() * v.powi(3),
                q_rad: 0.0,
            })
        }
    }

    fn analytic_table() -> SurrogateTable {
        SurrogateBuilder::new((30_000.0, 80_000.0), (3_000.0, 12_000.0))
            .initial_grid(17, 17)
            .tolerance(0.02)
            .build(&mut Analytic)
            .unwrap()
    }

    #[test]
    fn analytic_bound_holds_on_dense_scan() {
        let table = analytic_table();
        let ((h0, h1), (v0, v1)) = table.domain();
        let mut worst = 0.0f64;
        for a in 0..97 {
            for b in 0..97 {
                let h = h0 + (h1 - h0) * a as f64 / 96.0;
                let v = v0 + (v1 - v0) * b as f64 / 96.0;
                let e = Analytic.evaluate(h, v).unwrap();
                let s = table.interpolate(h, v);
                worst = worst.max(rel_err(&s, &e));
            }
        }
        assert!(worst <= table.tolerance(), "max rel err {worst:.3e}");
    }

    #[test]
    fn batch_matches_single_bitwise() {
        let table = analytic_table();
        let hs: Vec<f64> = (0..257).map(|k| 30_000.0 + 190.0 * k as f64).collect();
        let vs: Vec<f64> = (0..257).map(|k| 3_000.0 + 33.0 * k as f64).collect();
        let mut out = vec![SurrogateQuery::default(); hs.len()];
        table.query_batch(&hs, &vs, &mut out);
        for ((o, &h), &v) in out.iter().zip(&hs).zip(&vs) {
            let s = table.query(h, v);
            assert!(o.p_stag.to_bits() == s.p_stag.to_bits());
            assert!(o.t_stag.to_bits() == s.t_stag.to_bits());
            assert!(o.q_conv.to_bits() == s.q_conv.to_bits());
            assert!(o.q_rad.to_bits() == s.q_rad.to_bits());
        }
    }

    #[test]
    fn out_of_domain_clamps_to_edges() {
        let table = analytic_table();
        let ((h0, h1), (v0, v1)) = table.domain();
        let lo = table.query(h0 - 5_000.0, v0 - 500.0);
        let edge = table.query(h0, v0);
        assert_eq!(lo, edge);
        let hi = table.query(h1 + 5_000.0, v1 + 500.0);
        assert_eq!(hi, table.query(h1, v1));
    }

    #[test]
    fn discontinuous_response_fails_with_typed_error() {
        struct Jump;
        impl StagnationResponse for Jump {
            fn evaluate(&mut self, _h: f64, v: f64) -> Result<SurrogateQuery, SolverError> {
                Ok(SurrogateQuery {
                    p_stag: 1.0,
                    t_stag: 300.0,
                    q_conv: if v > 7_000.0 { 1e6 } else { 1e3 },
                    q_rad: 0.0,
                })
            }
        }
        let err = SurrogateBuilder::new((30_000.0, 80_000.0), (3_000.0, 12_000.0))
            .initial_grid(5, 5)
            .tolerance(0.01)
            .build(&mut Jump)
            .unwrap_err();
        assert!(matches!(err, SolverError::BadInput(_)), "{err}");
    }

    #[test]
    fn earth_exact_response_table_builds_and_bounds() {
        let mut response = ExactResponse {
            atmosphere: &Us76,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::TauberSuttonEarthSmooth,
            nose_radius: 0.6,
        };
        let table = SurrogateBuilder::new((40_000.0, 80_000.0), (4_000.0, 13_000.0))
            .initial_grid(17, 17)
            .tolerance(0.02)
            .build(&mut response)
            .unwrap();
        let stats = table.stats();
        assert!(stats.max_sampled_rel_err <= 0.5 * table.tolerance());
        // Spot-check off-grid points against the exact path.
        for (h, v) in [
            (55_432.0, 6_713.0),
            (43_219.0, 11_987.0),
            (71_003.0, 9_004.0),
            (62_500.0, 4_512.0),
        ] {
            let e = response.evaluate(h, v).unwrap();
            let s = table.query(h, v);
            let err = rel_err(&s, &e);
            assert!(err <= table.tolerance(), "({h}, {v}): rel err {err:.3e}");
        }
        // The shuttle-class reference point lands where it should.
        let q = table.query(65_500.0, 6_700.0);
        assert!(
            q.q_conv > 2e5 && q.q_conv < 2e6,
            "q_conv = {:.3e}",
            q.q_conv
        );
        assert!(q.t_stag > 4_000.0 && q.t_stag < 9_000.0);
    }

    #[test]
    fn heating_history_through_surrogate_matches_exact_pulse() {
        let mut response = ExactResponse {
            atmosphere: &Us76,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::None,
            nose_radius: 0.6,
        };
        let table = SurrogateBuilder::new((5_000.0, 122_000.0), (500.0, 8_000.0))
            .initial_grid(25, 25)
            .tolerance(0.02)
            .build(&mut response);
        // Low-velocity corner of this wide corridor is subsonic — the exact
        // path refuses it, which is fine for this test's narrower flight.
        let table = match table {
            Ok(t) => t,
            Err(_) => SurrogateBuilder::new((20_000.0, 122_000.0), (2_000.0, 8_000.0))
                .initial_grid(25, 25)
                .tolerance(0.02)
                .build(&mut response)
                .unwrap(),
        };
        let entry = EntryConditions {
            altitude: 120_000.0,
            velocity: 7_800.0,
            gamma: -1.2f64.to_radians(),
        };
        let stop = StopConditions {
            min_velocity: 2_500.0,
            max_time: 1_500.0,
            ..StopConditions::default()
        };
        let pulse = fly_heating_history(&Us76, &Vehicle::shuttle_like(), entry, stop, &table);
        assert!(pulse.len() > 50);
        // Same trajectory through the exact correlation for comparison.
        let traj =
            aerothermo_atmosphere::trajectory::fly(&Us76, &Vehicle::shuttle_like(), entry, stop);
        let exact = crate::heating::heat_pulse(
            &traj,
            0.6,
            aerothermo_solvers::blayer::SUTTON_GRAVES_EARTH,
            |_| 0.0,
        );
        assert_eq!(pulse.len(), exact.len());
        let (load_s, _) = crate::heating::heat_load(&pulse);
        let (load_e, _) = crate::heating::heat_load(&exact);
        assert!(
            (load_s / load_e - 1.0).abs() < 0.03,
            "surrogate load {load_s:.3e} vs exact {load_e:.3e}"
        );
    }
}
