//! Aligned text tables and CSV output for the figure-regeneration benches.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use aerothermo_core::tables::Table;
/// let mut t = Table::new(&["Mach", "standoff_mm"]);
/// t.row(&["8".into(), "26.4".into()]);
/// assert!(t.to_csv().contains("8,26.4"));
/// assert!(t.to_text().contains("standoff_mm"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of preformatted cells.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of f64s formatted with `%.*e`-style precision.
    pub fn row_f64(&mut self, values: &[f64], precision: usize) {
        let cells: Vec<String> = values.iter().map(|v| format!("{v:.precision$e}")).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>w$}", h, w = widths[c] + 2);
        }
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for c in 0..ncol {
                let _ = write!(out, "{:>w$}", row[c], w = widths[c] + 2);
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC 4180): cells containing commas, double quotes,
    /// or line breaks are quoted, with embedded quotes doubled. The numeric
    /// output of [`Table::row_f64`] never needs quoting, so those tables
    /// render byte-identically to the pre-quoting format.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',')
                || cell.contains('"')
                || cell.contains('\n')
                || cell.contains('\r')
            {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let join = |cells: &[String]| -> String {
            cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        };
        let mut out = join(&self.headers);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&join(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new(&["x", "value"]);
        t.row(&["1".into(), "short".into()]);
        t.row(&["2000".into(), "muchlongervalue".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        let csv = t.to_csv();
        assert!(csv.starts_with("x,value\n"));
        assert!(csv.contains("2000,muchlongervalue"));
    }

    #[test]
    fn f64_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_f64(&[1.23456789, 2e-12], 3);
        assert!(t.to_csv().contains("1.235e0"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new(&["only"]);
        t.row(&["a".into(), "b".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(&["name", "note"]);
        t.row(&["a,b".into(), "plain".into()]);
        t.row(&["say \"hi\"".into(), "line\nbreak".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.split('\n').collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "\"a,b\",plain");
        // Embedded quotes doubled, cell quoted; the newline cell keeps its
        // break inside the quotes.
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",\"line");
        assert_eq!(lines[3], "break\"");
    }

    #[test]
    fn csv_quotes_header_with_comma() {
        let t = Table::new(&["q [W/m2]", "rho, kg/m3"]);
        assert_eq!(t.to_csv(), "q [W/m2],\"rho, kg/m3\"\n");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(&["a", "b"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "a,b\n");
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        // Header line + separator, no data rows.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('a') && lines[0].contains('b'));
    }

    #[test]
    fn numeric_tables_unchanged_by_quoting() {
        let mut t = Table::new(&["a", "b"]);
        t.row_f64(&[1.0, -2.5e-3], 3);
        assert_eq!(t.to_csv(), "a,b\n1.000e0,-2.500e-3\n");
    }
}
