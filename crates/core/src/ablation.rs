//! Thermal-protection-system surface energy balance: radiative-equilibrium
//! walls and steady-state ablation.
//!
//! The vehicles the paper surveys closed their designs through exactly
//! these balances: the Shuttle's reusable tiles run at *radiative
//! equilibrium* (reradiating the convective input), while the Galileo/Titan
//! probes used *ablative* TPS sized by the steady-state ablation energy
//! balance the VSL codes carried. Both balances are implemented here
//! against any incident (convective + radiative) heating.

use aerothermo_numerics::constants::SIGMA_SB;
use aerothermo_numerics::roots::{brent, RootError};

/// Radiative-equilibrium wall temperature: solve
/// `ε·σ·T_w⁴ = q_inc(T_w)` where the incident heating may itself depend on
/// the wall temperature (hot-wall correction through the enthalpy
/// difference).
///
/// `q_inc(t_w)` returns the net aerothermal input \[W/m²\] at a trial wall
/// temperature.
///
/// # Errors
/// Fails when no equilibrium exists below `t_max`.
pub fn radiative_equilibrium_wall(
    emissivity: f64,
    t_max: f64,
    q_inc: impl Fn(f64) -> f64,
) -> Result<f64, RootError> {
    brent(
        |t| emissivity * SIGMA_SB * t.powi(4) - q_inc(t).max(0.0),
        200.0,
        t_max,
        1e-6,
    )
}

/// Hot-wall correction factor for convective heating: the driving potential
/// is `h_0 − h_w`, so `q(T_w) = q_cold·(1 − h_w/h_0)` with `h_w = cp_w·T_w`.
#[must_use]
pub fn hot_wall_factor(t_wall: f64, cp_wall: f64, h_total: f64) -> f64 {
    (1.0 - cp_wall * t_wall / h_total).max(0.0)
}

/// Ablator material description.
#[derive(Debug, Clone, Copy)]
pub struct Ablator {
    /// Effective heat of ablation \[J/kg\] (pyrolysis + sublimation +
    /// sensible).
    pub heat_of_ablation: f64,
    /// Surface emissivity.
    pub emissivity: f64,
    /// Surface (ablating) temperature \[K\] — char-layer sublimation
    /// temperature class.
    pub t_surface: f64,
    /// Transpiration blocking coefficient `η` in the blowing reduction
    /// `q_net = q_inc·(1 − η·ṁ·h_0/q_inc)` (dimensionless, ~0.5–0.7 for
    /// laminar carbon-phenolic class).
    pub blocking: f64,
    /// Virgin material density \[kg/m³\].
    pub density: f64,
}

impl Ablator {
    /// Carbon-phenolic class ablator (Galileo/Pioneer-Venus heritage).
    #[must_use]
    pub fn carbon_phenolic() -> Self {
        Self {
            heat_of_ablation: 2.5e7,
            emissivity: 0.9,
            t_surface: 3400.0,
            blocking: 0.6,
            density: 1450.0,
        }
    }

    /// Low-density silicone-class ablator (probe afterbody heritage).
    #[must_use]
    pub fn silicone() -> Self {
        Self {
            heat_of_ablation: 1.2e7,
            emissivity: 0.85,
            t_surface: 2000.0,
            blocking: 0.4,
            density: 550.0,
        }
    }
}

/// Result of the steady-state ablation balance at one surface point.
#[derive(Debug, Clone, Copy)]
pub struct AblationState {
    /// Mass loss rate \[kg/(m²·s)\].
    pub mdot: f64,
    /// Surface recession rate \[m/s\].
    pub recession_rate: f64,
    /// Energy reradiated \[W/m²\].
    pub q_reradiated: f64,
    /// Energy absorbed by ablation \[W/m²\].
    pub q_ablation: f64,
    /// Net conduction into the structure \[W/m²\] (≈ 0 at steady state by
    /// construction; reported for diagnostics).
    pub q_conducted: f64,
}

/// Steady-state ablation energy balance:
///
/// ```text
/// q_inc·B(ṁ) = ε·σ·T_s⁴ + ṁ·Q*    with blocking B(ṁ) = 1/(1 + η·ṁ·h0/q_inc)
/// ```
///
/// solved as a fixed point for the ablation rate `ṁ` (`B` form regularized
/// to stay in (0, 1]). When the incident flux cannot even sustain the
/// surface temperature radiatively, `ṁ = 0` and the wall is cooler than
/// `t_surface` — the caller should then use
/// [`radiative_equilibrium_wall`].
#[must_use]
pub fn steady_ablation(ablator: &Ablator, q_inc: f64, h_total: f64) -> AblationState {
    let q_rerad_max = ablator.emissivity * SIGMA_SB * ablator.t_surface.powi(4);
    if q_inc <= q_rerad_max {
        return AblationState {
            mdot: 0.0,
            recession_rate: 0.0,
            q_reradiated: q_inc,
            q_ablation: 0.0,
            q_conducted: 0.0,
        };
    }
    // Fixed point on mdot.
    let mut mdot = (q_inc - q_rerad_max) / ablator.heat_of_ablation;
    for _ in 0..200 {
        let blowing = 1.0 / (1.0 + ablator.blocking * mdot * h_total / q_inc.max(1.0));
        let q_net = q_inc * blowing;
        let m_new = ((q_net - q_rerad_max) / ablator.heat_of_ablation).max(0.0);
        if (m_new - mdot).abs() < 1e-10 * mdot.abs().max(1e-12) {
            mdot = m_new;
            break;
        }
        mdot = 0.5 * (mdot + m_new);
    }
    let blowing = 1.0 / (1.0 + ablator.blocking * mdot * h_total / q_inc.max(1.0));
    let q_net = q_inc * blowing;
    AblationState {
        mdot,
        recession_rate: mdot / ablator.density,
        q_reradiated: q_rerad_max,
        q_ablation: mdot * ablator.heat_of_ablation,
        q_conducted: q_net - q_rerad_max - mdot * ablator.heat_of_ablation,
    }
}

/// Integrated recession over a heating pulse: `(total recession [m],
/// total mass loss [kg/m²])`, trapezoidal in time over `(t, q_inc, h0)`
/// samples.
#[must_use]
pub fn pulse_recession(ablator: &Ablator, pulse: &[(f64, f64, f64)]) -> (f64, f64) {
    let mut recession = 0.0;
    let mut mass = 0.0;
    for w in pulse.windows(2) {
        let dt = w[1].0 - w[0].0;
        let s0 = steady_ablation(ablator, w[0].1, w[0].2);
        let s1 = steady_ablation(ablator, w[1].1, w[1].2);
        recession += 0.5 * (s0.recession_rate + s1.recession_rate) * dt;
        mass += 0.5 * (s0.mdot + s1.mdot) * dt;
    }
    (recession, mass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radiative_equilibrium_shuttle_tile() {
        // 45 W/cm² with hot-wall correction: tile equilibrium near 1400 K.
        let h0 = 2.3e7;
        let t =
            radiative_equilibrium_wall(0.85, 3000.0, |tw| 4.5e5 * hot_wall_factor(tw, 1005.0, h0))
                .unwrap();
        assert!(t > 1200.0 && t < 1800.0, "T_w = {t}");
        // Energy balance closes.
        let q = 4.5e5 * hot_wall_factor(t, 1005.0, h0);
        assert!((0.85 * SIGMA_SB * t.powi(4) - q).abs() < 1e-3 * q);
    }

    #[test]
    fn below_threshold_no_ablation() {
        let ab = Ablator::carbon_phenolic();
        // Reradiation limit at 3400 K, ε = 0.9: ~680 W/cm².
        let st = steady_ablation(&ab, 5.0e6, 5e7);
        assert_eq!(st.mdot, 0.0);
        assert_eq!(st.recession_rate, 0.0);
    }

    #[test]
    fn galileo_class_ablation() {
        // Galileo-probe-class heating: 15 kW/cm² at 50 MJ/kg.
        let ab = Ablator::carbon_phenolic();
        let st = steady_ablation(&ab, 1.5e8, 5e7);
        assert!(st.mdot > 0.5 && st.mdot < 20.0, "mdot = {}", st.mdot);
        // Recession in the mm/s class.
        assert!(
            st.recession_rate > 2e-4 && st.recession_rate < 1e-2,
            "ṡ = {}",
            st.recession_rate
        );
        // Blocking + reradiation + ablation must absorb the input.
        assert!(
            st.q_conducted.abs() < 1e-3 * 1.5e8,
            "residual {}",
            st.q_conducted
        );
    }

    #[test]
    fn blocking_reduces_effective_heating() {
        let mut ab = Ablator::carbon_phenolic();
        let q = 5e7;
        let h0 = 5e7;
        let with = steady_ablation(&ab, q, h0);
        ab.blocking = 0.0;
        let without = steady_ablation(&ab, q, h0);
        assert!(
            with.mdot < without.mdot,
            "transpiration must reduce ablation: {} vs {}",
            with.mdot,
            without.mdot
        );
    }

    #[test]
    fn ablation_monotone_in_heating() {
        let ab = Ablator::silicone();
        let mut prev = -1.0;
        for k in 1..20 {
            let q = 1e6 * f64::from(k);
            let st = steady_ablation(&ab, q, 3e7);
            assert!(st.mdot >= prev, "mdot not monotone at q = {q}");
            prev = st.mdot;
        }
    }

    #[test]
    fn pulse_recession_integrates() {
        let ab = Ablator::carbon_phenolic();
        // Triangular 60 s pulse peaking at 10 kW/cm².
        let pulse: Vec<(f64, f64, f64)> = (0..=60)
            .map(|t| {
                let t = f64::from(t);
                let q = 1e8 * (1.0 - (t - 30.0).abs() / 30.0).max(0.0);
                (t, q, 5e7)
            })
            .collect();
        let (recession, mass) = pulse_recession(&ab, &pulse);
        assert!(
            recession > 1e-3 && recession < 0.2,
            "recession = {recession}"
        );
        assert!((mass / 1450.0 - recession).abs() < 1e-9);
    }
}
