//! The stagnation-heating correlation family behind one dispatch enum.
//!
//! The paper's survey era produced a cluster of engineering correlations of
//! the same shape — `q ∝ √(ρ/Rn)·V^n` with slightly different constants and
//! velocity exponents — plus Lees' laminar distribution for spreading the
//! stagnation value over a body and Newtonian/modified-Newtonian pressure
//! for the edge conditions. This module collects them behind
//! [`HeatingModel`], the enum the surrogate tables and trajectory heating
//! histories dispatch through, and adds typed [`CorrelationError`] guards on
//! the velocity-table edges that the raw `heating` entries extrapolate
//! silently.
//!
//! All correlations take SI inputs (ρ \[kg/m³\], V \[m/s\], Rn \[m\]) and
//! return W/m². The classic constants are normalized here by sea-level
//! density [`RHO_SEA_LEVEL`] and circular-orbit speed [`V_CIRCULAR`].

use aerothermo_grid::bodies::Body;
use aerothermo_solvers::blayer::{lees_distribution, sutton_graves, SUTTON_GRAVES_EARTH};

/// Sea-level air density \[kg/m³\] used to non-dimensionalize the classic
/// correlation constants.
pub const RHO_SEA_LEVEL: f64 = 1.225;

/// Circular-orbit reference speed \[m/s\] used by the Kemp-Riddell family.
pub const V_CIRCULAR: f64 = 7924.8;

/// Typed out-of-range / non-physical-input error for the correlation suite.
#[derive(Debug, Clone, PartialEq)]
pub enum CorrelationError {
    /// Velocity outside a correlation's tabulated/fitted validity range.
    VelocityOutOfRange {
        /// Offending velocity \[m/s\].
        velocity: f64,
        /// Lower validity bound \[m/s\].
        min: f64,
        /// Upper validity bound \[m/s\].
        max: f64,
    },
    /// A physically required-positive input was ≤ 0 (or NaN).
    NonPositive {
        /// Which input was non-positive.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VelocityOutOfRange { velocity, min, max } => write!(
                f,
                "velocity {velocity:.1} m/s outside correlation validity [{min:.0}, {max:.0}] m/s"
            ),
            Self::NonPositive { name, value } => {
                write!(f, "{name} must be positive, got {value:e}")
            }
        }
    }
}

impl std::error::Error for CorrelationError {}

/// Kemp-Riddell (1957) stagnation convective heating \[W/m²\]:
/// `q = 1.103e8/√Rn · √(ρ/ρ_sl) · (V/V_c)^3.25 · (1 − h_w/h_s)`.
///
/// `hw_frac` is the wall-to-stagnation enthalpy ratio `h_w/h_s` (0 for a
/// cold wall).
#[inline]
#[must_use]
pub fn kemp_riddell(rho: f64, velocity: f64, nose_radius: f64, hw_frac: f64) -> f64 {
    1.103e8 / nose_radius.sqrt()
        * (rho / RHO_SEA_LEVEL).sqrt()
        * (velocity / V_CIRCULAR).powf(3.25)
        * (1.0 - hw_frac)
}

/// Scala stagnation convective heating \[W/m²\]:
/// `q = 1.04e8/√Rn · √(ρ/ρ_sl) · (V/V_c)^3.5` — the steepest velocity
/// exponent of the family.
#[inline]
#[must_use]
pub fn scala(rho: f64, velocity: f64, nose_radius: f64) -> f64 {
    1.04e8 / nose_radius.sqrt() * (rho / RHO_SEA_LEVEL).sqrt() * (velocity / V_CIRCULAR).powf(3.5)
}

/// Detra-Kemp-Riddell stagnation convective heating \[W/m²\]:
/// `q = 1.1037e8/√Rn · √(ρ/ρ_sl) · (V/V_c)^3.15`.
#[inline]
#[must_use]
pub fn detra_kemp_riddell(rho: f64, velocity: f64, nose_radius: f64) -> f64 {
    1.1037e8 / nose_radius.sqrt()
        * (rho / RHO_SEA_LEVEL).sqrt()
        * (velocity / V_CIRCULAR).powf(3.15)
}

/// Stagnation-point convective-heating correlation selector: one enum, one
/// `q_stag` entry, so table builders and trajectory loops dispatch without
/// a zoo of function pointers. All variants are pure functions of
/// `(ρ, V, Rn)` — exactly the surrogate table axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeatingModel {
    /// Sutton-Graves `q = k·√(ρ/Rn)·V³` with an explicit constant
    /// (planet-dependent; [`SUTTON_GRAVES_EARTH`] for air).
    SuttonGraves {
        /// Correlation constant `k` \[SI\].
        k: f64,
    },
    /// Kemp-Riddell with wall-enthalpy ratio `hw_frac = h_w/h_s`.
    KempRiddell {
        /// Wall-to-stagnation enthalpy ratio (0 = cold wall).
        hw_frac: f64,
    },
    /// Scala (velocity exponent 3.5).
    Scala,
    /// Detra-Kemp-Riddell (velocity exponent 3.15).
    DetraKempRiddell,
}

impl HeatingModel {
    /// Earth-air Sutton-Graves, the default model of the figure benches.
    #[must_use]
    pub fn earth_sutton_graves() -> Self {
        Self::SuttonGraves {
            k: SUTTON_GRAVES_EARTH,
        }
    }

    /// Stagnation-point convective heat flux \[W/m²\] at freestream
    /// `(ρ, V)` on nose radius `Rn`.
    #[inline]
    #[must_use]
    pub fn q_stag(&self, rho: f64, velocity: f64, nose_radius: f64) -> f64 {
        match *self {
            Self::SuttonGraves { k } => sutton_graves(k, rho, nose_radius, velocity),
            Self::KempRiddell { hw_frac } => kemp_riddell(rho, velocity, nose_radius, hw_frac),
            Self::Scala => scala(rho, velocity, nose_radius),
            Self::DetraKempRiddell => detra_kemp_riddell(rho, velocity, nose_radius),
        }
    }

    /// Short display name for tables and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::SuttonGraves { .. } => "sutton_graves",
            Self::KempRiddell { .. } => "kemp_riddell",
            Self::Scala => "scala",
            Self::DetraKempRiddell => "detra_kemp_riddell",
        }
    }

    /// Laminar heating distribution `(s, q(s)/q_stag)` over an axisymmetric
    /// body via Lees' local similarity (shared by every variant — the
    /// correlation only sets the stagnation value).
    #[must_use]
    pub fn lees_over_body(
        &self,
        body: &dyn Body,
        gamma_e: f64,
        p_stag: f64,
        p_inf: f64,
        n: usize,
    ) -> Vec<(f64, f64)> {
        lees_distribution(body, gamma_e, p_stag, p_inf, n)
    }
}

// ---------------------------------------------------------------------------
// Newtonian pressure over simple bodies
// ---------------------------------------------------------------------------

/// Newtonian pressure coefficient `Cp = 2·sin²θ` at local body angle θ
/// (angle between surface and freestream).
#[inline]
#[must_use]
pub fn newtonian_cp(theta: f64) -> f64 {
    let s = theta.sin();
    2.0 * s * s
}

/// Modified-Newtonian pressure coefficient `Cp = Cp_max·sin²θ`, with
/// `Cp_max` from the actual stagnation pressure (real-gas aware).
#[inline]
#[must_use]
pub fn modified_newtonian_cp(theta: f64, cp_max: f64) -> f64 {
    let s = theta.sin();
    cp_max * s * s
}

/// Stagnation pressure coefficient `Cp_max = (p_stag − p∞)/(½ρ∞V²)` for
/// modified-Newtonian theory.
#[inline]
#[must_use]
pub fn cp_max_from_stagnation(p_stag: f64, p_inf: f64, rho_inf: f64, v_inf: f64) -> f64 {
    (p_stag - p_inf) / (0.5 * rho_inf * v_inf * v_inf)
}

/// Surface pressure \[Pa\] distribution `(s, p(s))` over a simple
/// axisymmetric body by modified-Newtonian theory (`cp_max = 2` recovers
/// classic Newtonian flow). Stations are uniform in arc length.
#[must_use]
pub fn newtonian_pressure_distribution(
    body: &dyn Body,
    p_inf: f64,
    rho_inf: f64,
    v_inf: f64,
    cp_max: f64,
    n: usize,
) -> Vec<(f64, f64)> {
    let n = n.max(2);
    let smax = body.arc_length();
    let q_dyn = 0.5 * rho_inf * v_inf * v_inf;
    (0..n)
        .map(|k| {
            let s = smax * k as f64 / (n - 1) as f64;
            let theta = body.body_angle(s);
            (s, p_inf + q_dyn * modified_newtonian_cp(theta, cp_max))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tauber-Sutton velocity-table guards
// ---------------------------------------------------------------------------

/// Validity range of the tabulated Tauber-Sutton Earth velocity function
/// \[m/s\]. Below the lower edge radiation is negligible (the correlation
/// returns 0); above the upper edge the table would silently extrapolate.
pub const TAUBER_SUTTON_V_RANGE: (f64, f64) = (9_000.0, 16_000.0);

/// Velocity \[m/s\] at which the checked/smooth Tauber-Sutton entry begins
/// ramping radiation on (the published table starts abruptly at
/// `f(9 km/s) = 1.5`; a trajectory decelerating through 9 km/s sees a jump
/// without this onset ramp).
pub const TAUBER_SUTTON_ONSET: f64 = 8_500.0;

/// [`crate::heating::radiative_tauber_sutton_earth`] with typed edge
/// guards: returns 0 below 9 km/s (physically negligible, inside the
/// correlation's intent) but refuses to extrapolate the tabulated velocity
/// function above 16 km/s.
///
/// # Errors
/// [`CorrelationError::VelocityOutOfRange`] above the table's 16 km/s edge;
/// [`CorrelationError::NonPositive`] for ρ or Rn ≤ 0 (or NaN).
pub fn radiative_tauber_sutton_earth_checked(
    rho: f64,
    velocity: f64,
    nose_radius: f64,
) -> Result<f64, CorrelationError> {
    if rho.is_nan() || rho <= 0.0 {
        return Err(CorrelationError::NonPositive {
            name: "density",
            value: rho,
        });
    }
    if nose_radius.is_nan() || nose_radius <= 0.0 {
        return Err(CorrelationError::NonPositive {
            name: "nose_radius",
            value: nose_radius,
        });
    }
    let (lo, hi) = TAUBER_SUTTON_V_RANGE;
    if velocity.is_nan() || velocity > hi {
        return Err(CorrelationError::VelocityOutOfRange {
            velocity,
            min: lo,
            max: hi,
        });
    }
    Ok(crate::heating::radiative_tauber_sutton_earth(
        rho,
        velocity,
        nose_radius,
    ))
}

/// Floor value \[W/m²\] the smooth-onset ramp starts from (physically
/// negligible; an order of magnitude below the surrogate error floor).
pub const TAUBER_SUTTON_RAMP_FLOOR: f64 = 0.1;

/// Smooth-onset Tauber-Sutton radiative heating \[W/m²\] for the surrogate
/// tables: identical to the raw correlation for `V ≥ 9 km/s` (clamped, not
/// extrapolated, above 16 km/s), but instead of the raw entry's hard jump
/// from 0 to `f = 1.5` at 9 km/s it ramps the 9 km/s value on
/// geometrically (log-linearly in V) from [`TAUBER_SUTTON_RAMP_FLOOR`]
/// over [`TAUBER_SUTTON_ONSET`]–9 km/s. Bilinear surfaces cannot meet a
/// relative-error bound across a jump discontinuity, and a ramp that is
/// log-linear in V is exactly representable by the surrogate's log-space
/// channels; the ramp replaces a modeling artifact, not physics — the
/// correlation is only claimed valid above 9 km/s anyway.
#[must_use]
pub fn radiative_tauber_sutton_earth_smooth(rho: f64, velocity: f64, nose_radius: f64) -> f64 {
    let (lo, hi) = TAUBER_SUTTON_V_RANGE;
    if velocity >= lo {
        return crate::heating::radiative_tauber_sutton_earth(rho, velocity.min(hi), nose_radius);
    }
    if velocity <= TAUBER_SUTTON_ONSET {
        return 0.0;
    }
    let t = (velocity - TAUBER_SUTTON_ONSET) / (lo - TAUBER_SUTTON_ONSET);
    let q9 = crate::heating::radiative_tauber_sutton_earth(rho, lo, nose_radius);
    if q9 <= TAUBER_SUTTON_RAMP_FLOOR {
        return q9 * t;
    }
    TAUBER_SUTTON_RAMP_FLOOR * (q9 / TAUBER_SUTTON_RAMP_FLOOR).powf(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_grid::bodies::Hemisphere;

    const RHO: f64 = 1.6e-4;
    const V: f64 = 6_700.0;
    const RN: f64 = 0.6;

    #[test]
    fn family_agrees_at_shuttle_class_conditions() {
        // All four correlations are fits of the same physics; at the
        // shuttle-class reference point they agree within ~15%.
        let q_sg = HeatingModel::earth_sutton_graves().q_stag(RHO, V, RN);
        for model in [
            HeatingModel::KempRiddell { hw_frac: 0.0 },
            HeatingModel::Scala,
            HeatingModel::DetraKempRiddell,
        ] {
            let q = model.q_stag(RHO, V, RN);
            let ratio = q / q_sg;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{}: q/q_sg = {ratio:.3}",
                model.name()
            );
        }
    }

    #[test]
    fn kemp_riddell_hot_wall_reduces_heating() {
        let cold = kemp_riddell(RHO, V, RN, 0.0);
        let hot = kemp_riddell(RHO, V, RN, 0.4);
        assert!((hot / cold - 0.6).abs() < 1e-12);
    }

    #[test]
    fn velocity_exponent_ordering() {
        // Doubling V separates the family by its exponents: Scala (3.5)
        // grows fastest, DKR (3.15) slowest of the three.
        let r = |m: HeatingModel| m.q_stag(RHO, 2.0 * V, RN) / m.q_stag(RHO, V, RN);
        let kr = r(HeatingModel::KempRiddell { hw_frac: 0.0 });
        let sc = r(HeatingModel::Scala);
        let dkr = r(HeatingModel::DetraKempRiddell);
        assert!(sc > kr && kr > dkr, "{sc} {kr} {dkr}");
        assert!((sc - 2f64.powf(3.5)).abs() < 1e-9);
    }

    #[test]
    fn newtonian_pressure_on_hemisphere() {
        let body = Hemisphere::new(1.0);
        let p_inf = 10.0;
        let dist = newtonian_pressure_distribution(&body, p_inf, RHO, V, 2.0, 50);
        // Stagnation point: full Newtonian recovery p ≈ p_inf + ρV².
        let p0 = dist[0].1;
        assert!((p0 - (p_inf + RHO * V * V)).abs() / p0 < 1e-9);
        // Monotone decay toward the shoulder.
        for w in dist.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
        // Modified-Newtonian with real-gas Cp_max < 2 sits below Newtonian.
        let cp_max = cp_max_from_stagnation(p_inf + 0.92 * RHO * V * V, p_inf, RHO, V);
        assert!(cp_max < 2.0 && cp_max > 1.5);
        assert!(modified_newtonian_cp(0.7, cp_max) < newtonian_cp(0.7));
    }

    #[test]
    fn tauber_sutton_checked_rejects_extrapolation() {
        assert!(radiative_tauber_sutton_earth_checked(1e-4, 17_000.0, 1.0).is_err());
        assert!(radiative_tauber_sutton_earth_checked(-1.0, 12_000.0, 1.0).is_err());
        assert!(radiative_tauber_sutton_earth_checked(1e-4, f64::NAN, 1.0).is_err());
        let q = radiative_tauber_sutton_earth_checked(3e-4, 12_600.0, 0.23).unwrap();
        assert!(
            (q - crate::heating::radiative_tauber_sutton_earth(3e-4, 12_600.0, 0.23)).abs() == 0.0
        );
        // Below the table: 0, not an error.
        assert_eq!(
            radiative_tauber_sutton_earth_checked(1e-4, 5_000.0, 1.0).unwrap(),
            0.0
        );
    }

    #[test]
    fn tauber_sutton_smooth_is_continuous_through_onset() {
        let rho = 5e-4;
        // Identical to raw above 9 km/s.
        assert_eq!(
            radiative_tauber_sutton_earth_smooth(rho, 12_000.0, 1.0),
            crate::heating::radiative_tauber_sutton_earth(rho, 12_000.0, 1.0)
        );
        // Zero at/below onset.
        assert_eq!(radiative_tauber_sutton_earth_smooth(rho, 8_500.0, 1.0), 0.0);
        // No jump: across the geometric ramp each 10 m/s step changes q by
        // a bounded factor (vs the raw entry's 0 → f(9 km/s) cliff), and
        // the step onto the ramp is physically negligible.
        let mut prev = 0.0;
        let mut v = 8_400.0;
        while v <= 9_100.0 {
            let q = radiative_tauber_sutton_earth_smooth(rho, v, 1.0);
            assert!(
                (prev == 0.0 && q < 1.0) || q / prev < 1.5,
                "jump {prev:.3e} -> {q:.3e} at {v}"
            );
            prev = q;
            v += 10.0;
        }
        // Ramp meets the table value continuously at 9 km/s (the geometric
        // ramp's ln-slope is ln(q9/floor)/500 per m/s ≈ 2.7%/(m/s) here).
        let q9 = radiative_tauber_sutton_earth_smooth(rho, 9_000.0, 1.0);
        let q9m = radiative_tauber_sutton_earth_smooth(rho, 8_999.0, 1.0);
        assert!((q9m / q9 - 1.0).abs() < 0.05, "{q9m:.4e} vs {q9:.4e}");
        // Clamped (not extrapolated) above 16 km/s.
        assert_eq!(
            radiative_tauber_sutton_earth_smooth(rho, 18_000.0, 1.0),
            radiative_tauber_sutton_earth_smooth(rho, 16_000.0, 1.0)
        );
    }
}
