//! Property tests for the trajectory-scale surrogate fast path (ISSUE-8):
//! correlation monotonicity, the surrogate-vs-exact error bound at random
//! off-grid points, and batch-vs-single bitwise equality.

use std::sync::OnceLock;

use aerothermo_atmosphere::us76::Us76;
use aerothermo_core::correlations::{detra_kemp_riddell, kemp_riddell, scala, HeatingModel};
use aerothermo_core::surrogate::{
    ExactResponse, RadiativeModel, StagnationResponse, SurrogateBuilder, SurrogateQuery,
    SurrogateTable, P_FLOOR, Q_FLOOR, T_FLOOR,
};
use aerothermo_gas::eq_table::air9_table;

const H_RANGE: (f64, f64) = (42_000.0, 78_000.0);
const V_RANGE: (f64, f64) = (4_000.0, 12_000.0);
const NOSE_RADIUS: f64 = 0.6;

/// Shared Earth-entry table: built once, reused by every proptest case so
/// the refinement loop doesn't rerun per case.
fn earth_table() -> &'static SurrogateTable {
    static TABLE: OnceLock<SurrogateTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let atmosphere = Us76;
        let mut exact = ExactResponse {
            atmosphere: &atmosphere,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::TauberSuttonEarthSmooth,
            nose_radius: NOSE_RADIUS,
        };
        SurrogateBuilder::new(H_RANGE, V_RANGE)
            .initial_grid(17, 17)
            .build(&mut exact)
            .expect("earth surrogate table builds")
    })
}

/// The builder's relative-error metric: per-channel error against floors
/// that keep physically negligible channels from inflating the ratio.
fn rel_err(s: &SurrogateQuery, e: &SurrogateQuery) -> f64 {
    let p = (s.p_stag - e.p_stag).abs() / e.p_stag.abs().max(P_FLOOR);
    let t = (s.t_stag - e.t_stag).abs() / e.t_stag.abs().max(T_FLOOR);
    let qc = (s.q_conv - e.q_conv).abs() / e.q_conv.abs().max(Q_FLOOR);
    let qr = (s.q_rad - e.q_rad).abs() / e.q_rad.abs().max(Q_FLOOR);
    p.max(t).max(qc).max(qr)
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig {
        cases: 48,
        ..proptest::test_runner::ProptestConfig::default()
    })]

    /// Every convective correlation in the family grows monotonically with
    /// freestream density and velocity — the ρ^½ V^n structure all of them
    /// share.
    #[test]
    fn correlations_monotone_in_density_and_velocity(
        rho_exp in -5.0_f64..-1.0,
        v in 3_000.0_f64..11_000.0,
        rho_bump in 1.05_f64..3.0,
        v_bump in 1.02_f64..1.5,
    ) {
        let rho = 10.0_f64.powf(rho_exp);
        let models: [&dyn Fn(f64, f64) -> f64; 4] = [
            &|r, vel| kemp_riddell(r, vel, NOSE_RADIUS, 0.0),
            &|r, vel| scala(r, vel, NOSE_RADIUS),
            &|r, vel| detra_kemp_riddell(r, vel, NOSE_RADIUS),
            &|r, vel| HeatingModel::earth_sutton_graves().q_stag(r, vel, NOSE_RADIUS),
        ];
        for q in models {
            let base = q(rho, v);
            proptest::prop_assert!(base > 0.0);
            proptest::prop_assert!(q(rho * rho_bump, v) > base);
            proptest::prop_assert!(q(rho, v * v_bump) > base);
        }
    }

    /// At uniformly random in-domain (h, V) the surrogate answer stays
    /// within the documented per-channel relative-error bound of the exact
    /// shock/EOS/correlation path.
    #[test]
    fn surrogate_matches_exact_within_documented_bound(
        uh in 0.0_f64..1.0,
        uv in 0.0_f64..1.0,
    ) {
        let table = earth_table();
        let h = H_RANGE.0 + uh * (H_RANGE.1 - H_RANGE.0);
        let v = V_RANGE.0 + uv * (V_RANGE.1 - V_RANGE.0);
        let atmosphere = Us76;
        let mut exact_path = ExactResponse {
            atmosphere: &atmosphere,
            gas: air9_table(),
            model: HeatingModel::earth_sutton_graves(),
            radiative: RadiativeModel::TauberSuttonEarthSmooth,
            nose_radius: NOSE_RADIUS,
        };
        let exact = exact_path.evaluate(h, v).expect("exact path solves in-domain");
        let surrogate = table.query(h, v);
        let err = rel_err(&surrogate, &exact);
        proptest::prop_assert!(
            err <= table.tolerance(),
            "rel err {err:.3e} over bound {:.3e} at h={h:.0} m, V={v:.0} m/s",
            table.tolerance()
        );
    }

    /// `query_batch` is bitwise identical to per-point `query` for any
    /// mix of in-domain and out-of-domain (clamped) points.
    #[test]
    fn batch_queries_bitwise_match_single(
        n in 1_usize..64,
        h_seed in 0.0_f64..1.0,
        v_seed in 0.0_f64..1.0,
    ) {
        let table = earth_table();
        // Golden-ratio scatter from the sampled seeds: covers in-domain and
        // out-of-domain (edge-clamped) points without a vector strategy.
        let (h, v): (Vec<f64>, Vec<f64>) = (0..n)
            .map(|k| {
                let uh = (h_seed + k as f64 * 0.618_033_988_749_895).fract();
                let uv = (v_seed + k as f64 * 0.754_877_666_246_693).fract();
                (30_000.0 + uh * 60_000.0, 2_000.0 + uv * 13_000.0)
            })
            .unzip();
        let mut batch = vec![SurrogateQuery::default(); h.len()];
        table.query_batch(&h, &v, &mut batch);
        for i in 0..h.len() {
            let single = table.query(h[i], v[i]);
            proptest::prop_assert_eq!(single.p_stag.to_bits(), batch[i].p_stag.to_bits());
            proptest::prop_assert_eq!(single.t_stag.to_bits(), batch[i].t_stag.to_bits());
            proptest::prop_assert_eq!(single.q_conv.to_bits(), batch[i].q_conv.to_bits());
            proptest::prop_assert_eq!(single.q_rad.to_bits(), batch[i].q_rad.to_bits());
        }
    }
}
