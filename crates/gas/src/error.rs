//! Typed error for the gas-phase thermochemistry layer.
//!
//! Mirrors the `SolverError` cleanup in `aerothermo-numerics`: every
//! fallible routine in this crate returns [`GasError`] instead of a bare
//! `String`, while `Display` keeps the wording of the old messages so
//! existing `format!("...: {e}")` call sites and log output are unchanged.

/// Typed error returned by the equilibrium solver and the thermodynamic
/// inversions in `aerothermo-gas`.
#[derive(Debug, Clone, PartialEq)]
pub enum GasError {
    /// The element-potential Newton iteration (including its continuation
    /// fallbacks) failed to converge.
    EquilibriumNotConverged {
        /// Temperature of the failed solve \[K\].
        temperature: f64,
        /// Underlying Newton diagnostic.
        detail: String,
    },
    /// A thermodynamic inversion (Brent bracket/iteration) failed.
    InversionFailed {
        /// Which inversion failed, with its inputs — e.g.
        /// `temperature_from_energy` or `at_rho_e(rho=…, e=…)`.
        context: String,
        /// Underlying root-finder diagnostic.
        detail: String,
    },
    /// Input outside the model's domain of validity.
    BadInput(String),
    /// Lower-level numerical diagnostic, passed through verbatim.
    Numerical(String),
}

impl std::fmt::Display for GasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GasError::EquilibriumNotConverged {
                temperature,
                detail,
            } => {
                write!(f, "equilibrium at T={temperature}: {detail}")
            }
            GasError::InversionFailed { context, detail } => write!(f, "{context}: {detail}"),
            GasError::BadInput(msg) | GasError::Numerical(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for GasError {}

impl From<String> for GasError {
    fn from(msg: String) -> Self {
        GasError::Numerical(msg)
    }
}

impl From<&str> for GasError {
    fn from(msg: &str) -> Self {
        GasError::Numerical(msg.to_string())
    }
}

/// Gas-layer failures surface in the flow solvers as numerical errors,
/// carrying the full formatted diagnostic.
impl From<GasError> for aerothermo_numerics::telemetry::SolverError {
    fn from(e: GasError) -> Self {
        aerothermo_numerics::telemetry::SolverError::Numerical(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_wording() {
        let e = GasError::EquilibriumNotConverged {
            temperature: 300.0,
            detail: "newton stalled".into(),
        };
        assert_eq!(e.to_string(), "equilibrium at T=300: newton stalled");
        let e = GasError::InversionFailed {
            context: "temperature_from_energy".into(),
            detail: "no sign change".into(),
        };
        assert_eq!(e.to_string(), "temperature_from_energy: no sign change");
        let e = GasError::Numerical("verbatim".into());
        assert_eq!(e.to_string(), "verbatim");
    }

    #[test]
    fn converts_into_solver_error() {
        let g = GasError::BadInput("negative density".into());
        let s: aerothermo_numerics::telemetry::SolverError = g.into();
        assert_eq!(s.to_string(), "negative density");
    }
}
