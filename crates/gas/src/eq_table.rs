//! Tabulated equilibrium equation of state.
//!
//! The era's real-gas NS/PNS codes coupled equilibrium air through curve
//! fits of `p(ρ, e)` and `T(ρ, e)` (Tannehill et al.); here the same role is
//! played by a bilinear table in `(ln ρ, ln e)` generated from our own
//! element-potential equilibrium solver — self-consistent with the rest of
//! the thermochemistry by construction.
//!
//! The equilibrium sound speed is precomputed at the nodes from the
//! thermodynamic identity `a² = (∂p/∂ρ)|_e + (p/ρ²)(∂p/∂e)|_ρ` using finite
//! differences of the `ln p` table, and the full equilibrium composition is
//! tabulated per species so that post-processing (the paper's Fig. 9 N₂
//! contours) is a table lookup.

use crate::equilibrium::EquilibriumGas;
use crate::model::GasModel;
use aerothermo_numerics::interp::BilinearTable;
use aerothermo_numerics::telemetry::{RunTelemetry, SolverError};
use rayon::prelude::*;

/// Resolution and range options for [`EqTable::build`].
#[derive(Debug, Clone)]
pub struct EqTableOptions {
    /// Number of density nodes.
    pub n_rho: usize,
    /// Number of energy nodes.
    pub n_e: usize,
    /// Density range \[kg/m³\].
    pub rho_range: (f64, f64),
    /// Specific-internal-energy range \[J/kg\] (formation-energy reference of
    /// [`crate::thermo::Mixture::e_total`]).
    pub e_range: (f64, f64),
    /// Temperature sweep used to parameterize each density row \[K\].
    pub t_range: (f64, f64),
    /// Points in the temperature sweep.
    pub n_t: usize,
}

impl Default for EqTableOptions {
    fn default() -> Self {
        Self {
            n_rho: 56,
            n_e: 104,
            rho_range: (1e-7, 20.0),
            e_range: (1.0e5, 2.5e8),
            t_range: (100.0, 55_000.0),
            n_t: 200,
        }
    }
}

/// Direct inverse of the `ln p(ln ρ, ln e)` table: given `(ln ρ, ln p)`,
/// recover `ln e` by bisecting the density-blended pressure row — an
/// *exact* inversion of the bilinear forward lookup (the forward is
/// piecewise linear in `ln e` at fixed `ln ρ` once the two bracketing
/// density rows are blended), so it agrees with the bracketed root find it
/// replaces without the per-call Brent iteration that dominated the MUSCL
/// reconstruction cost of equilibrium-gas Euler steps.
#[derive(Debug, Clone)]
struct InvEnergyTable {
    /// Density axis (`ln ρ`), ascending.
    ln_rho: Vec<f64>,
    /// Energy axis (`ln e`), ascending.
    ln_e: Vec<f64>,
    /// `ln p` values, row-major `[i_rho * ne + j_e]` (a copy of the
    /// forward table's payload, kept so the inversion can blend rows
    /// without re-deriving bilinear weights per probe).
    lnp: Vec<f64>,
}

impl InvEnergyTable {
    /// `ln e` such that the bilinear forward table gives `lnp` at
    /// `(ln_rho, ln e)`, clamped to the energy axis when `lnp` falls
    /// outside the blended row's span.
    fn eval(&self, ln_rho: f64, lnp: f64) -> f64 {
        let nr = self.ln_rho.len();
        let ne = self.ln_e.len();
        // Bracket the density axis exactly like the forward lookup.
        let i = self
            .ln_rho
            .partition_point(|&x| x <= ln_rho)
            .clamp(1, nr - 1)
            - 1;
        let f = ((ln_rho - self.ln_rho[i]) / (self.ln_rho[i + 1] - self.ln_rho[i])).clamp(0.0, 1.0);
        let lo_row = &self.lnp[i * ne..(i + 1) * ne];
        let hi_row = &self.lnp[(i + 1) * ne..(i + 2) * ne];
        let blended = |j: usize| lo_row[j] + f * (hi_row[j] - lo_row[j]);
        // The blended row is nondecreasing in energy (each source row is,
        // up to clamp-flattened ends); clamp outside its span.
        if lnp <= blended(0) {
            return self.ln_e[0];
        }
        if lnp >= blended(ne - 1) {
            return self.ln_e[ne - 1];
        }
        // Bisect for the segment with blended(lo) <= lnp < blended(hi).
        let (mut lo, mut hi) = (0usize, ne - 1);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if blended(mid) <= lnp {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p0 = blended(lo);
        let p1 = blended(hi);
        // Flat (clamped) segments invert to their low-energy end.
        let t = if p1 > p0 { (lnp - p0) / (p1 - p0) } else { 0.0 };
        self.ln_e[lo] + t * (self.ln_e[hi] - self.ln_e[lo])
    }
}

/// Tabulated equilibrium EOS implementing [`GasModel`].
#[derive(Debug, Clone)]
pub struct EqTable {
    lnp: BilinearTable,
    temp: BilinearTable,
    a2: BilinearTable,
    /// Inverse lookup `ln e(ln ρ, ln p)` backing [`GasModel::energy`].
    lne_inv: InvEnergyTable,
    /// One mass-fraction table per species (mixture order).
    y: Vec<BilinearTable>,
    species_names: Vec<String>,
    e_range: (f64, f64),
    rho_range: (f64, f64),
}

impl EqTable {
    /// Build the table from an equilibrium-gas model.
    ///
    /// Rows (fixed density) are generated in parallel; each row sweeps the
    /// temperature range, then reinterpolates the sweep onto the common
    /// energy axis.
    ///
    /// # Errors
    /// Propagates equilibrium-solver failures with the offending `(T, ρ)`.
    pub fn build(gas: &EquilibriumGas, opts: &EqTableOptions) -> Result<Self, SolverError> {
        Self::build_with_telemetry(gas, opts).map(|(table, _)| table)
    }

    /// [`EqTable::build`] that also returns the run's telemetry: the
    /// `eq_table_rows` phase timing and the equilibrium-state counter delta
    /// attributable to the build.
    ///
    /// # Errors
    /// Same as [`EqTable::build`].
    pub fn build_with_telemetry(
        gas: &EquilibriumGas,
        opts: &EqTableOptions,
    ) -> Result<(Self, RunTelemetry), SolverError> {
        let mut telemetry = RunTelemetry::new();
        if opts.n_rho < 2 || opts.n_e < 2 || opts.n_t < 2 {
            return Err(SolverError::BadInput(format!(
                "eq_table: need at least 2 nodes per axis (n_rho={}, n_e={}, n_t={})",
                opts.n_rho, opts.n_e, opts.n_t
            )));
        }
        let ns = gas.mixture().len();
        let nr = opts.n_rho;
        let ne = opts.n_e;
        let ln_rho: Vec<f64> = (0..nr)
            .map(|i| {
                let t = i as f64 / (nr - 1) as f64;
                opts.rho_range.0.ln() + t * (opts.rho_range.1.ln() - opts.rho_range.0.ln())
            })
            .collect();
        let ln_e: Vec<f64> = (0..ne)
            .map(|j| {
                let t = j as f64 / (ne - 1) as f64;
                opts.e_range.0.ln() + t * (opts.e_range.1.ln() - opts.e_range.0.ln())
            })
            .collect();
        let ln_t_sweep: Vec<f64> = (0..opts.n_t)
            .map(|k| {
                let t = k as f64 / (opts.n_t - 1) as f64;
                opts.t_range.0.ln() + t * (opts.t_range.1.ln() - opts.t_range.0.ln())
            })
            .collect();

        // Per-row result: (lnp, T, y[ns]) on the common energy axis.
        type Row = (Vec<f64>, Vec<f64>, Vec<Vec<f64>>);
        let rows: Result<Vec<Row>, String> = telemetry.time_phase("eq_table_rows", || {
            ln_rho
                .par_iter()
                .map(|&lr| {
                    let rho = lr.exp();
                    // Sweep temperature via the micro-batched solver (4-lane
                    // chunks share scratch and warm-cache seeds; lanes stay
                    // sequential so results match per-state solves bitwise),
                    // then collect (ln e, ln p, T, y).
                    let sweep: Vec<(f64, f64)> =
                        ln_t_sweep.iter().map(|&lt| (lt.exp(), rho)).collect();
                    let mut se = Vec::with_capacity(opts.n_t);
                    let mut sp = Vec::with_capacity(opts.n_t);
                    let mut st = Vec::with_capacity(opts.n_t);
                    let mut sy = vec![Vec::with_capacity(opts.n_t); ns];
                    for (&(t, _), result) in sweep.iter().zip(gas.at_trho_batch(&sweep)) {
                        let state = result
                            .map_err(|e| format!("table row rho={rho:.3e}, T={t:.1}: {e}"))?;
                        // Guard: energy must increase along the sweep for the
                        // reinterpolation to be well-posed.
                        if let Some(&last) = se.last() {
                            if state.energy.ln() <= last {
                                continue;
                            }
                        }
                        se.push(state.energy.ln());
                        sp.push(state.pressure.ln());
                        st.push(state.temperature);
                        for (s, ys) in sy.iter_mut().enumerate() {
                            ys.push(state.mass_fractions[s]);
                        }
                    }
                    // Reinterpolate onto the common ln_e axis (linear in ln e,
                    // clamped at the sweep ends). A sweep that collapsed to
                    // fewer than two monotone points (pathological range
                    // options) would make the lookup panic; surface it as a
                    // table-build error instead.
                    if aerothermo_numerics::interp::try_bracket(&se, ln_e[0]).is_none() {
                        return Err(format!(
                            "table row rho={rho:.3e}: degenerate energy sweep \
                             ({} monotone points; widen t_range)",
                            se.len()
                        ));
                    }
                    let mut row_lnp = Vec::with_capacity(ne);
                    let mut row_t = Vec::with_capacity(ne);
                    let mut row_y = vec![Vec::with_capacity(ne); ns];
                    for &le in &ln_e {
                        row_lnp.push(aerothermo_numerics::interp::lerp(&se, &sp, le));
                        row_t.push(aerothermo_numerics::interp::lerp(&se, &st, le));
                        for (s, ys) in sy.iter().enumerate() {
                            row_y[s].push(aerothermo_numerics::interp::lerp(&se, ys, le));
                        }
                    }
                    Ok((row_lnp, row_t, row_y))
                })
                .collect()
        });
        let rows = rows?;

        // Assemble row-major tables.
        let mut lnp_v = vec![0.0; nr * ne];
        let mut t_v = vec![0.0; nr * ne];
        let mut y_v = vec![vec![0.0; nr * ne]; ns];
        for (i, (rp, rt, ry)) in rows.iter().enumerate() {
            for j in 0..ne {
                lnp_v[i * ne + j] = rp[j];
                t_v[i * ne + j] = rt[j];
                for s in 0..ns {
                    y_v[s][i * ne + j] = ry[s][j];
                }
            }
        }

        // Equilibrium sound speed at the nodes from the lnp table.
        let mut a2_v = vec![0.0; nr * ne];
        let d = |v: &[f64], i: usize, n: usize, h: f64, idx: &dyn Fn(usize) -> usize| -> f64 {
            // central/one-sided difference along an axis of length n.
            if i == 0 {
                (v[idx(1)] - v[idx(0)]) / h
            } else if i == n - 1 {
                (v[idx(n - 1)] - v[idx(n - 2)]) / h
            } else {
                (v[idx(i + 1)] - v[idx(i - 1)]) / (2.0 * h)
            }
        };
        let h_r = ln_rho[1] - ln_rho[0];
        let h_e = ln_e[1] - ln_e[0];
        for i in 0..nr {
            for j in 0..ne {
                let p = lnp_v[i * ne + j].exp();
                let rho = ln_rho[i].exp();
                let e = ln_e[j].exp();
                let dlnp_dlnrho = d(&lnp_v, i, nr, h_r, &|k| k * ne + j);
                let dlnp_dlne = d(&lnp_v, j, ne, h_e, &|k| i * ne + k);
                // a² = (∂p/∂ρ)|e + (p/ρ²)(∂p/∂e)|ρ
                //    = (p/ρ)·dlnp/dlnρ + (p/ρ²)·(p/e)·dlnp/dlne
                let a2 = p / rho * dlnp_dlnrho + (p / (rho * rho)) * (p / e) * dlnp_dlne;
                a2_v[i * ne + j] = a2.max(1e3);
            }
        }

        // Inverse energy lookup: keep a copy of the ln p payload and axes so
        // `energy(ρ, p)` can bisect the density-blended pressure row — an
        // exact inversion of the forward bilinear, with no per-call Brent.
        let lne_inv = InvEnergyTable {
            ln_rho: ln_rho.clone(),
            ln_e: ln_e.clone(),
            lnp: lnp_v.clone(),
        };

        let species_names = gas
            .mixture()
            .species()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        let table = Self {
            lnp: BilinearTable::new(ln_rho.clone(), ln_e.clone(), lnp_v),
            temp: BilinearTable::new(ln_rho.clone(), ln_e.clone(), t_v),
            a2: BilinearTable::new(ln_rho.clone(), ln_e.clone(), a2_v),
            lne_inv,
            y: y_v
                .into_iter()
                .map(|v| BilinearTable::new(ln_rho.clone(), ln_e.clone(), v))
                .collect(),
            species_names,
            e_range: opts.e_range,
            rho_range: opts.rho_range,
        };
        Ok((table, telemetry))
    }

    /// Species names, table order.
    #[must_use]
    pub fn species_names(&self) -> &[String] {
        self.species_names.iter().as_slice()
    }

    /// Equilibrium mass fractions at `(ρ, e)`.
    #[must_use]
    pub fn mass_fractions(&self, rho: f64, e: f64) -> Vec<f64> {
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let le = e.clamp(self.e_range.0, self.e_range.1).ln();
        let mut y: Vec<f64> = self.y.iter().map(|t| t.eval(lr, le).max(0.0)).collect();
        let s: f64 = y.iter().sum();
        if s > 0.0 {
            for v in &mut y {
                *v /= s;
            }
        }
        y
    }

    /// Mass fraction of one species by name (0 if unknown).
    #[must_use]
    pub fn mass_fraction_of(&self, name: &str, rho: f64, e: f64) -> f64 {
        match self.species_names.iter().position(|n| n == name) {
            Some(i) => {
                let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
                let le = e.clamp(self.e_range.0, self.e_range.1).ln();
                self.y[i].eval(lr, le).max(0.0)
            }
            None => 0.0,
        }
    }

    /// Mole fractions at `(ρ, e)` (renormalized from the mass-fraction
    /// tables with the tabulated molar masses).
    #[must_use]
    pub fn mole_fractions(&self, rho: f64, e: f64, molar_masses: &[f64]) -> Vec<f64> {
        let y = self.mass_fractions(rho, e);
        let inv: f64 = y.iter().zip(molar_masses).map(|(yi, m)| yi / m).sum();
        y.iter()
            .zip(molar_masses)
            .map(|(yi, m)| (yi / m) / inv)
            .collect()
    }
}

impl GasModel for EqTable {
    fn describe(&self) -> String {
        format!("eq-table({} species)", self.species_names.len())
    }

    fn pressure(&self, rho: f64, e: f64) -> f64 {
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let le = e.clamp(self.e_range.0, self.e_range.1).ln();
        self.lnp.eval(lr, le).exp()
    }

    fn temperature(&self, rho: f64, e: f64) -> f64 {
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let le = e.clamp(self.e_range.0, self.e_range.1).ln();
        self.temp.eval(lr, le)
    }

    fn sound_speed(&self, rho: f64, e: f64) -> f64 {
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let le = e.clamp(self.e_range.0, self.e_range.1).ln();
        self.a2.eval(lr, le).max(0.0).sqrt()
    }

    fn energy(&self, rho: f64, p: f64) -> f64 {
        // Direct lookup in the prebuilt ln e(ln ρ, ln p) inverse table;
        // clamped to the table range like the root-find fallback was.
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let lp = p.max(1e-300).ln();
        self.lne_inv
            .eval(lr, lp)
            .exp()
            .clamp(self.e_range.0, self.e_range.1)
    }

    fn pressure_sound_speed(&self, rho: f64, e: f64) -> (f64, f64) {
        // One clamp/ln per axis for both lookups; each expression matches
        // the standalone method bit-for-bit.
        let lr = rho.clamp(self.rho_range.0, self.rho_range.1).ln();
        let le = e.clamp(self.e_range.0, self.e_range.1).ln();
        (
            self.lnp.eval(lr, le).exp(),
            self.a2.eval(lr, le).max(0.0).sqrt(),
        )
    }
}

/// Process-wide cached 9-species equilibrium-air table at default
/// resolution. The first call builds it (parallel, a few seconds); later
/// calls are free.
pub fn air9_table() -> &'static EqTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<EqTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let gas = crate::equilibrium::air9_equilibrium();
        EqTable::build(&gas, &EqTableOptions::default())
            .expect("equilibrium air table build failed")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::air9_equilibrium;

    fn small_table() -> (EquilibriumGas, EqTable) {
        let gas = air9_equilibrium();
        let opts = EqTableOptions {
            n_rho: 16,
            n_e: 24,
            n_t: 48,
            ..EqTableOptions::default()
        };
        let table = EqTable::build(&gas, &opts).unwrap();
        (gas, table)
    }

    #[test]
    fn table_matches_direct_solver() {
        let (gas, table) = small_table();
        for (t, rho) in [(300.0, 1.0), (3000.0, 0.01), (9000.0, 1e-4)] {
            let st = gas.at_trho(t, rho).unwrap();
            let p_tab = table.pressure(rho, st.energy);
            let t_tab = table.temperature(rho, st.energy);
            assert!(
                (p_tab - st.pressure).abs() / st.pressure < 0.08,
                "p at T={t}, rho={rho}: {p_tab} vs {}",
                st.pressure
            );
            assert!(
                (t_tab - t).abs() / t < 0.08,
                "T at T={t}, rho={rho}: {t_tab}"
            );
        }
    }

    #[test]
    fn cold_sound_speed_is_ideal() {
        let (gas, table) = small_table();
        let st = gas.at_trho(300.0, 1.0).unwrap();
        let a = table.sound_speed(1.0, st.energy);
        let ideal = (1.4 * 287.0 * 300.0_f64).sqrt();
        assert!((a - ideal).abs() / ideal < 0.08, "a = {a} vs {ideal}");
    }

    #[test]
    fn composition_lookup_cold_vs_hot() {
        let (gas, table) = small_table();
        let cold = gas.at_trho(300.0, 1.0).unwrap();
        let y_n2_cold = table.mass_fraction_of("N2", 1.0, cold.energy);
        assert!(y_n2_cold > 0.7, "cold N2: {y_n2_cold}");

        let hot = gas.at_trho(10_000.0, 1e-3).unwrap();
        let y_n2_hot = table.mass_fraction_of("N2", 1e-3, hot.energy);
        let y_n_hot = table.mass_fraction_of("N", 1e-3, hot.energy);
        assert!(y_n2_hot < 0.3, "hot N2: {y_n2_hot}");
        assert!(y_n_hot > 0.3, "hot N: {y_n_hot}");
    }

    #[test]
    fn energy_inversion_roundtrip() {
        let (_, table) = small_table();
        let rho = 0.05;
        let e = 2e6;
        let p = table.pressure(rho, e);
        let e2 = table.energy(rho, p);
        assert!((e2 - e).abs() / e < 0.02, "e = {e} -> {e2}");
    }

    #[test]
    fn energy_lookup_matches_root_solve() {
        // The prebuilt inverse table must agree with a bracketed root find
        // on the forward pressure table (the pre-lookup implementation).
        let (_, table) = small_table();
        for (rho, e_true) in [
            (1.0, 3e5),
            (0.05, 2e6),
            (1e-3, 1.2e7),
            (1e-5, 6e7),
            (5.0, 8e5),
        ] {
            let p = table.pressure(rho, e_true);
            let e_root = aerothermo_numerics::roots::brent_expanding(
                |e| table.pressure(rho, e) - p,
                1e6,
                8e5,
                1.0e5,
                2.5e8,
                1e-3,
                80,
            )
            .unwrap();
            let e_tab = table.energy(rho, p);
            // The bisection inverts the same bilinear surface the root find
            // probes, so agreement is limited only by the Brent tolerance.
            assert!(
                (e_tab - e_root).abs() / e_root < 1e-3,
                "rho={rho} e={e_true}: lookup {e_tab} vs root {e_root}"
            );
        }
    }

    #[test]
    fn pressure_sound_speed_pair_is_bitwise() {
        let (_, table) = small_table();
        for (rho, e) in [(1.0, 3e5), (0.01, 5e6), (1e-4, 4e7), (30.0, 5e4)] {
            let (p, a) = table.pressure_sound_speed(rho, e);
            assert_eq!(p.to_bits(), table.pressure(rho, e).to_bits());
            assert_eq!(a.to_bits(), table.sound_speed(rho, e).to_bits());
        }
    }

    #[test]
    fn mass_fractions_normalized() {
        let (_, table) = small_table();
        let y = table.mass_fractions(0.01, 5e6);
        let s: f64 = y.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn pressure_monotone_in_energy() {
        let (_, table) = small_table();
        let rho = 0.1;
        let mut prev = 0.0;
        for k in 0..30 {
            let e = 2e5 * (1.25_f64).powi(k);
            let p = table.pressure(rho, e);
            assert!(p > prev, "p not monotone at e={e}");
            prev = p;
        }
    }
}
