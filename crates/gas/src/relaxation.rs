//! Vibrational relaxation: Millikan-White correlation with Park's
//! high-temperature collision-limited correction.
//!
//! The translational-vibrational energy exchange is modeled Landau-Teller
//! style: each molecule's vibrational energy relaxes toward its local-T
//! equilibrium value on a time scale τ. Below ~8000 K the Millikan-White
//! correlation fits shock-tube data; at the paper's 10 km/s conditions the
//! correlation underestimates τ's floor, so Park's limiting cross-section
//! correction is added (τ = τ_MW + τ_Park). This pairing is exactly the
//! model behind the paper's Fig. 7 two-temperature profiles.

use crate::thermo::Mixture;
use aerothermo_numerics::constants::{K_BOLTZMANN, P_ATM};

/// Millikan-White relaxation time \[s\] for molecule `s` colliding with
/// partner `p`, at temperature `t` \[K\] and *partner partial pressure
/// equal to the total pressure* `p_pa` \[Pa\]. The caller mixes partners.
///
/// `theta_v` is the molecule's characteristic vibrational temperature and
/// `mu` the collision pair's reduced molecular weight in g/mol.
#[must_use]
pub fn tau_millikan_white(theta_v: f64, mu: f64, t: f64, p_pa: f64) -> f64 {
    let a = 1.16e-3 * mu.sqrt() * theta_v.powf(4.0 / 3.0);
    let exponent = a * (t.powf(-1.0 / 3.0) - 0.015 * mu.powf(0.25)) - 18.42;
    let p_atm = p_pa / P_ATM;
    exponent.min(600.0).exp() / p_atm.max(1e-30)
}

/// Park's collision-limited correction \[s\]: τ_P = 1/(σ_v·c̄·n) with
/// σ_v = 3×10⁻²¹·(50000/T)² m², c̄ the molecule's mean thermal speed and
/// `n` the mixture number density \[1/m³\].
#[must_use]
pub fn tau_park(t: f64, n: f64, molar_mass: f64) -> f64 {
    let sigma = 3.0e-21 * (50_000.0 / t) * (50_000.0 / t);
    let m = molar_mass / aerothermo_numerics::constants::N_AVOGADRO;
    let cbar = (8.0 * K_BOLTZMANN * t / (std::f64::consts::PI * m)).sqrt();
    1.0 / (sigma * cbar * n.max(1.0))
}

/// Relaxation model bound to a mixture.
#[derive(Debug, Clone)]
pub struct RelaxationModel {
    mix: Mixture,
    /// Indices of the vibrating molecules.
    molecules: Vec<usize>,
}

impl RelaxationModel {
    /// Build for a mixture; identifies the vibrating molecules automatically.
    #[must_use]
    pub fn new(mix: Mixture) -> Self {
        let molecules = mix
            .species()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_molecule())
            .map(|(i, _)| i)
            .collect();
        Self { mix, molecules }
    }

    /// Mixture-averaged relaxation time \[s\] of molecule `s` in a bath
    /// described by mole fractions `x`, temperature `t`, pressure `p` and
    /// total number density `n`. Partners are mole-fraction weighted via
    /// collision frequencies (1/τ adds).
    #[must_use]
    pub fn tau_species(&self, s: usize, t: f64, p: f64, n: f64, x: &[f64]) -> f64 {
        let sp = &self.mix.species()[s];
        let theta_v = sp.vib_modes.first().map_or(3000.0, |(th, _)| *th);
        let ms = sp.molar_mass;
        let mut inv_tau_mw = 0.0;
        let mut x_heavy = 0.0;
        for (pidx, partner) in self.mix.species().iter().enumerate() {
            if partner.name == "e-" || x[pidx] <= 0.0 {
                continue;
            }
            let mu = ms * partner.molar_mass / (ms + partner.molar_mass);
            let tau = tau_millikan_white(theta_v, mu, t, p);
            inv_tau_mw += x[pidx] / tau;
            x_heavy += x[pidx];
        }
        let tau_mw = if inv_tau_mw > 0.0 {
            x_heavy / inv_tau_mw
        } else {
            f64::INFINITY
        };
        tau_mw + tau_park(t, n, ms)
    }

    /// Landau-Teller translational→vibrational energy transfer rate
    /// \[W/m³\]: `Q = Σ_mol ρ_s·(e_v(T) − e_v(Tv))/τ_s`.
    ///
    /// `rho` is mixture density, `y` mass fractions, `t`/`tv` the two
    /// temperatures, `p` pressure, `n` total number density.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn q_trans_vib(&self, rho: f64, y: &[f64], t: f64, tv: f64, p: f64, n: f64) -> f64 {
        let x = self.mix.mass_to_mole(y);
        let mut q = 0.0;
        for &s in &self.molecules {
            if y[s] <= 0.0 {
                continue;
            }
            let sp = &self.mix.species()[s];
            let tau = self.tau_species(s, t, p, n, &x);
            q += rho * y[s] * (sp.e_vib(t) - sp.e_vib(tv)) / tau;
        }
        q
    }

    /// The vibrating molecule indices.
    #[must_use]
    pub fn molecules(&self) -> &[usize] {
        &self.molecules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::{n2, n_atom, o2};

    #[test]
    fn millikan_white_matches_literature_order() {
        // Millikan-White at 2000 K, 1 atm: N2 relaxes slowly (pτ ~ 1e-3.2
        // atm·s), O2 an order of magnitude faster (~1e-5) — both classic
        // results from the 1963 correlation plot.
        let tau_n2 = tau_millikan_white(3393.5, 14.0067, 2000.0, P_ATM);
        assert!(tau_n2 > 1e-4 && tau_n2 < 3e-3, "tau(N2) = {tau_n2:.3e}");
        let tau_o2 = tau_millikan_white(2273.5, 15.9994, 2000.0, P_ATM);
        assert!(tau_o2 > 1e-6 && tau_o2 < 1e-4, "tau(O2) = {tau_o2:.3e}");
        assert!(tau_o2 < tau_n2);
    }

    #[test]
    fn relaxation_faster_when_hotter() {
        let mu = 14.0067;
        let t1 = tau_millikan_white(3393.5, mu, 1000.0, P_ATM);
        let t2 = tau_millikan_white(3393.5, mu, 6000.0, P_ATM);
        assert!(t2 < t1);
    }

    #[test]
    fn relaxation_faster_when_denser() {
        let mu = 14.0067;
        let t1 = tau_millikan_white(3393.5, mu, 2000.0, P_ATM);
        let t2 = tau_millikan_white(3393.5, mu, 2000.0, 10.0 * P_ATM);
        assert!((t1 / t2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn park_correction_dominates_at_high_t_low_density() {
        // At 30 000 K and low density the MW time underflows toward zero but
        // Park's floor keeps τ physical.
        let n = 1e21; // 1/m³
        let tp = tau_park(30_000.0, n, 28.0);
        assert!(tp > 0.0 && tp.is_finite());
        let mu = 14.0;
        let p = n * K_BOLTZMANN * 30_000.0;
        let tmw = tau_millikan_white(3393.5, mu, 30_000.0, p);
        assert!(tp > tmw, "Park floor {tp:.3e} vs MW {tmw:.3e}");
    }

    #[test]
    fn q_sign_follows_temperature_gap() {
        let mix = Mixture::new(vec![n2(), o2(), n_atom()]);
        let model = RelaxationModel::new(mix);
        let y = [0.7, 0.25, 0.05];
        let rho = 0.1;
        let t = 8000.0;
        let p = 50_000.0;
        let n = p / (K_BOLTZMANN * t);
        // Tv below T: vibration must gain energy (Q > 0).
        let q_up = model.q_trans_vib(rho, &y, t, 2000.0, p, n);
        assert!(q_up > 0.0);
        // Tv above T: vibration loses energy.
        let q_down = model.q_trans_vib(rho, &y, t, 12_000.0, p, n);
        assert!(q_down < 0.0);
        // Equilibrium: zero.
        let q_eq = model.q_trans_vib(rho, &y, t, t, p, n);
        assert!(q_eq.abs() < 1e-9 * q_up.abs());
    }

    #[test]
    fn molecule_detection() {
        let mix = Mixture::new(vec![n2(), n_atom()]);
        let model = RelaxationModel::new(mix);
        assert_eq!(model.molecules(), &[0]);
    }
}
