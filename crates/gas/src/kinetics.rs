//! Finite-rate chemical kinetics with two-temperature coupling.
//!
//! The reaction set is Park's for dissociating/ionizing air: dissociation of
//! N₂/O₂/NO with collision-partner efficiencies, the two Zeldovich exchange
//! reactions, associative ionization N + O ⇌ NO⁺ + e⁻, and electron-impact
//! ionization of N and O. Two-temperature coupling follows Park's
//! prescription: dissociation forward rates are evaluated at the geometric
//! mean √(T·T_v), electron-impact reactions at the electron (= vibrational)
//! temperature, everything else at the heavy-particle temperature.
//!
//! Backward rates come from equilibrium constants derived from the *same*
//! partition functions as the thermodynamics ([`crate::thermo`]), so a
//! finite-rate integration relaxes exactly onto the equilibrium solver's
//! composition — a property the tests check.

use crate::thermo::Mixture;
use aerothermo_numerics::constants::N_AVOGADRO;

/// Which temperature controls a reaction's forward rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateTemperature {
    /// Heavy-particle translational temperature `T`.
    Translational,
    /// Park's geometric mean `√(T·T_v)` (dissociation under vibrational
    /// nonequilibrium).
    ParkTTv,
    /// Electron/vibrational temperature `T_v` (electron-impact processes).
    ElectronTv,
}

/// Modified Arrhenius rate `k = A·T^n·exp(−θ/T)` in SI units
/// (\[m³/kmol\]^(order−1)/s).
#[derive(Debug, Clone, Copy)]
pub struct Arrhenius {
    /// Pre-exponential factor (SI).
    pub a: f64,
    /// Temperature exponent.
    pub n: f64,
    /// Activation temperature \[K\].
    pub theta: f64,
}

impl Arrhenius {
    /// Convert from the CGS convention of the aerothermodynamics literature
    /// (A in (cm³/mol)^(order−1)/s) given the reaction order.
    #[must_use]
    pub fn from_cgs(a_cgs: f64, n: f64, theta: f64, order: u32) -> Self {
        // 1 cm³/mol = 1e-3 m³/kmol.
        let factor = 1e-3_f64.powi(order as i32 - 1);
        Self {
            a: a_cgs * factor,
            n,
            theta,
        }
    }

    /// `ln k(T)` — safe against under/overflow.
    #[must_use]
    pub fn ln_eval(&self, t: f64) -> f64 {
        self.a.ln() + self.n * t.ln() - self.theta / t
    }

    /// `k(T)`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        self.ln_eval(t).clamp(-600.0, 600.0).exp()
    }
}

/// One elementary (possibly third-body) reaction.
#[derive(Debug, Clone)]
pub struct Reaction {
    /// Human-readable label, e.g. `"N2 + M <=> 2N + M"`.
    pub label: &'static str,
    /// Reactant (species index, stoichiometric coefficient) pairs.
    pub reactants: Vec<(usize, f64)>,
    /// Product (species index, stoichiometric coefficient) pairs.
    pub products: Vec<(usize, f64)>,
    /// Forward rate.
    pub forward: Arrhenius,
    /// Collision-partner efficiencies (one per species) for third-body
    /// reactions; `None` for ordinary bimolecular reactions.
    pub third_body: Option<Vec<f64>>,
    /// Temperature controlling the forward rate.
    pub rate_t: RateTemperature,
}

impl Reaction {
    /// Net stoichiometric coefficient of species `s` (products − reactants).
    #[must_use]
    pub fn net_nu(&self, s: usize) -> f64 {
        let p: f64 = self
            .products
            .iter()
            .filter(|(i, _)| *i == s)
            .map(|(_, nu)| nu)
            .sum();
        let r: f64 = self
            .reactants
            .iter()
            .filter(|(i, _)| *i == s)
            .map(|(_, nu)| nu)
            .sum();
        p - r
    }

    /// Δν = Σν_products − Σν_reactants (excluding the third body).
    #[must_use]
    pub fn delta_nu(&self) -> f64 {
        let p: f64 = self.products.iter().map(|(_, nu)| nu).sum();
        let r: f64 = self.reactants.iter().map(|(_, nu)| nu).sum();
        p - r
    }
}

/// A mixture plus its reaction mechanism.
#[derive(Debug, Clone)]
pub struct ReactionSet {
    mixture: Mixture,
    reactions: Vec<Reaction>,
}

impl ReactionSet {
    /// Assemble a mechanism.
    ///
    /// # Panics
    /// Panics if a reaction references a species index out of range or a
    /// third-body efficiency vector has the wrong length, or if any reaction
    /// does not conserve mass.
    #[must_use]
    pub fn new(mixture: Mixture, reactions: Vec<Reaction>) -> Self {
        let ns = mixture.len();
        for r in &reactions {
            for (i, _) in r.reactants.iter().chain(&r.products) {
                assert!(*i < ns, "reaction {} references species {i}", r.label);
            }
            if let Some(eff) = &r.third_body {
                assert_eq!(eff.len(), ns, "third-body efficiencies for {}", r.label);
            }
            // Mass conservation check.
            let m_in: f64 = r
                .reactants
                .iter()
                .map(|(i, nu)| nu * mixture.species()[*i].molar_mass)
                .sum();
            let m_out: f64 = r
                .products
                .iter()
                .map(|(i, nu)| nu * mixture.species()[*i].molar_mass)
                .sum();
            assert!(
                (m_in - m_out).abs() < 1e-6 * m_in,
                "reaction {} does not conserve mass: {m_in} vs {m_out}",
                r.label
            );
        }
        Self { mixture, reactions }
    }

    /// The mixture.
    #[must_use]
    pub fn mixture(&self) -> &Mixture {
        &self.mixture
    }

    /// The reactions.
    #[must_use]
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// `ln` of the concentration equilibrium constant (kmol/m³ units) at `t`.
    #[must_use]
    pub fn ln_k_eq(&self, reaction: &Reaction, t: f64) -> f64 {
        let mut v = 0.0;
        for (i, nu) in &reaction.products {
            v += nu * self.mixture.species()[*i].ln_concentration_potential(t);
        }
        for (i, nu) in &reaction.reactants {
            v -= nu * self.mixture.species()[*i].ln_concentration_potential(t);
        }
        // Number densities → kmol/m³.
        v - reaction.delta_nu() * N_AVOGADRO.ln()
    }

    /// Forward and backward rate constants at `(T, T_v)` per Park's
    /// two-temperature prescription.
    #[must_use]
    pub fn rate_constants(&self, reaction: &Reaction, t: f64, tv: f64) -> (f64, f64) {
        let t_f = match reaction.rate_t {
            RateTemperature::Translational => t,
            RateTemperature::ParkTTv => (t * tv).sqrt(),
            RateTemperature::ElectronTv => tv,
        };
        // Backward rates: heavy-particle temperature for heavy reactions,
        // electron temperature for electron-impact processes.
        let t_b = match reaction.rate_t {
            RateTemperature::ElectronTv => tv,
            _ => t,
        };
        let kf = reaction.forward.eval(t_f);
        let ln_kb = reaction.forward.ln_eval(t_b) - self.ln_k_eq(reaction, t_b);
        let kb = ln_kb.clamp(-600.0, 600.0).exp();
        (kf, kb)
    }

    /// Net rate of each reaction \[kmol/(m³·s)\] (forward − backward, with
    /// the third-body factor applied).
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn net_reaction_rates(&self, t: f64, tv: f64, conc: &[f64], rates: &mut [f64]) {
        let ns = self.mixture.len();
        assert!(conc.len() == ns && rates.len() == self.reactions.len());
        for (k, r) in self.reactions.iter().enumerate() {
            let (kf, kb) = self.rate_constants(r, t, tv);
            let mut rf = kf;
            for (i, nu) in &r.reactants {
                rf *= conc[*i].max(0.0).powf(*nu);
            }
            let mut rb = kb;
            for (i, nu) in &r.products {
                rb *= conc[*i].max(0.0).powf(*nu);
            }
            let mut net = rf - rb;
            if let Some(eff) = &r.third_body {
                let m: f64 = eff.iter().zip(conc).map(|(e, c)| e * c.max(0.0)).sum();
                net *= m;
            }
            rates[k] = net;
        }
    }

    /// Formation-energy change of one reaction \[J/kmol of reaction\]
    /// (positive = endothermic at 0 K).
    #[must_use]
    pub fn reaction_energy(&self, reaction: &Reaction) -> f64 {
        let mut de = 0.0;
        for (i, nu) in &reaction.products {
            de += nu
                * aerothermo_numerics::constants::R_UNIVERSAL
                * self.mixture.species()[*i].theta_f;
        }
        for (i, nu) in &reaction.reactants {
            de -= nu
                * aerothermo_numerics::constants::R_UNIVERSAL
                * self.mixture.species()[*i].theta_f;
        }
        de
    }

    /// Molar production rates `ẇ` \[kmol/(m³·s)\] for concentrations `conc`
    /// \[kmol/m³\] at temperatures `(t, tv)`.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn production_rates(&self, t: f64, tv: f64, conc: &[f64], wdot: &mut [f64]) {
        let ns = self.mixture.len();
        assert!(conc.len() == ns && wdot.len() == ns);
        wdot.fill(0.0);
        for r in &self.reactions {
            let (kf, kb) = self.rate_constants(r, t, tv);
            let mut rf = kf;
            for (i, nu) in &r.reactants {
                rf *= conc[*i].max(0.0).powf(*nu);
            }
            let mut rb = kb;
            for (i, nu) in &r.products {
                rb *= conc[*i].max(0.0).powf(*nu);
            }
            let mut net = rf - rb;
            if let Some(eff) = &r.third_body {
                let m: f64 = eff.iter().zip(conc).map(|(e, c)| e * c.max(0.0)).sum();
                net *= m;
            }
            for (i, nu) in &r.reactants {
                wdot[*i] -= nu * net;
            }
            for (i, nu) in &r.products {
                wdot[*i] += nu * net;
            }
        }
    }

    /// Mass production rates \[kg/(m³·s)\] from density and mass fractions.
    pub fn mass_production(&self, t: f64, tv: f64, rho: f64, y: &[f64], out: &mut [f64]) {
        let ns = self.mixture.len();
        let conc: Vec<f64> = (0..ns)
            .map(|s| rho * y[s] / self.mixture.species()[s].molar_mass)
            .collect();
        self.production_rates(t, tv, &conc, out);
        for (s, v) in out.iter_mut().enumerate() {
            *v *= self.mixture.species()[s].molar_mass;
        }
    }
}

/// Park's mechanism for 9-species ionizing air. The mixture must be the
/// [`crate::equilibrium::air9_equilibrium`] ordering (N₂, O₂, NO, N, O, N⁺,
/// O⁺, NO⁺, e⁻) or any mixture containing those species by name.
///
/// # Panics
/// Panics if a required species is missing from `mix`.
#[must_use]
pub fn park_air9(mix: &Mixture) -> ReactionSet {
    let i = |name: &str| -> usize {
        mix.index_of(name)
            .unwrap_or_else(|| panic!("park_air9 requires species {name}"))
    };
    let (n2, o2, no) = (i("N2"), i("O2"), i("NO"));
    let (n, o) = (i("N"), i("O"));
    let (nip, oip, noip, el) = (i("N+"), i("O+"), i("NO+"), i("e-"));
    let ns = mix.len();

    // Collision-partner efficiency builder: molecules 1, selected enhanced.
    let eff = |enhanced: &[(usize, f64)], zero_electron: bool| -> Vec<f64> {
        let mut v = vec![1.0; ns];
        for (idx, f) in enhanced {
            v[*idx] = *f;
        }
        if zero_electron {
            v[el] = 0.0;
        }
        v
    };

    let reactions = vec![
        Reaction {
            label: "N2 + M <=> 2N + M",
            reactants: vec![(n2, 1.0)],
            products: vec![(n, 2.0)],
            forward: Arrhenius::from_cgs(7.0e21, -1.6, 113_200.0, 2),
            third_body: Some(eff(
                &[
                    (n, 30.0 / 7.0),
                    (o, 30.0 / 7.0),
                    (nip, 30.0 / 7.0),
                    (oip, 30.0 / 7.0),
                ],
                true,
            )),
            rate_t: RateTemperature::ParkTTv,
        },
        Reaction {
            label: "O2 + M <=> 2O + M",
            reactants: vec![(o2, 1.0)],
            products: vec![(o, 2.0)],
            forward: Arrhenius::from_cgs(2.0e21, -1.5, 59_500.0, 2),
            third_body: Some(eff(&[(n, 5.0), (o, 5.0), (nip, 5.0), (oip, 5.0)], true)),
            rate_t: RateTemperature::ParkTTv,
        },
        Reaction {
            label: "NO + M <=> N + O + M",
            reactants: vec![(no, 1.0)],
            products: vec![(n, 1.0), (o, 1.0)],
            forward: Arrhenius::from_cgs(5.0e15, 0.0, 75_500.0, 2),
            third_body: Some(eff(&[(n, 22.0), (o, 22.0), (no, 22.0)], true)),
            rate_t: RateTemperature::ParkTTv,
        },
        Reaction {
            label: "N2 + O <=> NO + N",
            reactants: vec![(n2, 1.0), (o, 1.0)],
            products: vec![(no, 1.0), (n, 1.0)],
            forward: Arrhenius::from_cgs(6.4e17, -1.0, 38_400.0, 2),
            third_body: None,
            rate_t: RateTemperature::Translational,
        },
        Reaction {
            label: "NO + O <=> O2 + N",
            reactants: vec![(no, 1.0), (o, 1.0)],
            products: vec![(o2, 1.0), (n, 1.0)],
            forward: Arrhenius::from_cgs(8.4e12, 0.0, 19_450.0, 2),
            third_body: None,
            rate_t: RateTemperature::Translational,
        },
        Reaction {
            label: "N + O <=> NO+ + e-",
            reactants: vec![(n, 1.0), (o, 1.0)],
            products: vec![(noip, 1.0), (el, 1.0)],
            forward: Arrhenius::from_cgs(8.8e8, 1.0, 31_900.0, 2),
            third_body: None,
            rate_t: RateTemperature::Translational,
        },
        Reaction {
            label: "N + e- <=> N+ + 2e-",
            reactants: vec![(n, 1.0), (el, 1.0)],
            products: vec![(nip, 1.0), (el, 2.0)],
            forward: Arrhenius::from_cgs(2.5e34, -3.82, 168_600.0, 2),
            third_body: None,
            rate_t: RateTemperature::ElectronTv,
        },
        Reaction {
            label: "O + e- <=> O+ + 2e-",
            reactants: vec![(o, 1.0), (el, 1.0)],
            products: vec![(oip, 1.0), (el, 2.0)],
            forward: Arrhenius::from_cgs(3.9e33, -3.78, 158_500.0, 2),
            third_body: None,
            rate_t: RateTemperature::ElectronTv,
        },
    ];
    ReactionSet::new(mix.clone(), reactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::air9_equilibrium;

    #[test]
    fn arrhenius_cgs_conversion() {
        // Bimolecular: 1 cm³/mol/s = 1e-3 m³/kmol/s.
        let k = Arrhenius::from_cgs(1e12, 0.0, 0.0, 2);
        assert!((k.a - 1e9).abs() / 1e9 < 1e-12);
        assert!((k.eval(1000.0) - 1e9).abs() / 1e9 < 1e-12);
    }

    #[test]
    fn mechanism_conserves_mass_and_charge() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        // Random-ish state with all species present.
        let conc = [1e-3, 2e-4, 5e-5, 4e-4, 3e-4, 1e-6, 2e-6, 5e-6, 8e-6];
        let mut wdot = [0.0; 9];
        set.production_rates(9000.0, 7000.0, &conc, &mut wdot);
        let mass_rate: f64 = wdot
            .iter()
            .zip(set.mixture().species())
            .map(|(w, s)| w * s.molar_mass)
            .sum();
        let scale: f64 = wdot
            .iter()
            .zip(set.mixture().species())
            .map(|(w, s)| (w * s.molar_mass).abs())
            .sum();
        assert!(
            mass_rate.abs() < 1e-8 * scale.max(1e-300),
            "mass leak {mass_rate} vs {scale}"
        );
        let charge_rate: f64 = wdot
            .iter()
            .zip(set.mixture().species())
            .map(|(w, s)| w * f64::from(s.charge))
            .sum();
        let cscale: f64 = wdot
            .iter()
            .zip(set.mixture().species())
            .map(|(w, s)| (w * f64::from(s.charge)).abs())
            .sum();
        assert!(charge_rate.abs() < 1e-9 * cscale.max(1e-300), "charge leak");
    }

    #[test]
    fn equilibrium_composition_has_zero_net_rates() {
        // The acid test: backward rates from the same partition functions
        // must make the equilibrium composition a fixed point.
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let st = gas.at_tp(8000.0, 101_325.0).unwrap();
        let conc: Vec<f64> = st.number_densities.iter().map(|n| n / N_AVOGADRO).collect();
        let mut wdot = vec![0.0; 9];
        set.production_rates(8000.0, 8000.0, &conc, &mut wdot);

        // Compare against the characteristic one-way rate of each species.
        for r in set.reactions() {
            let (kf, _) = set.rate_constants(r, 8000.0, 8000.0);
            let mut rf = kf;
            for (i, nu) in &r.reactants {
                rf *= conc[*i].powf(*nu);
            }
            if let Some(eff) = &r.third_body {
                rf *= eff.iter().zip(&conc).map(|(e, c)| e * c).sum::<f64>();
            }
            let (_, kb) = set.rate_constants(r, 8000.0, 8000.0);
            let mut rb = kb;
            for (i, nu) in &r.products {
                rb *= conc[*i].powf(*nu);
            }
            if let Some(eff) = &r.third_body {
                rb *= eff.iter().zip(&conc).map(|(e, c)| e * c).sum::<f64>();
            }
            assert!(
                (rf - rb).abs() < 1e-6 * rf.abs().max(rb.abs()).max(1e-300),
                "{}: rf={rf:.4e} rb={rb:.4e}",
                r.label
            );
        }
    }

    #[test]
    fn hot_frozen_air_dissociates() {
        // Molecular air suddenly at 10 000 K: N2 and O2 must be consumed,
        // atoms produced.
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let rho = 0.01;
        let y = [0.767, 0.233, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut wdot = [0.0; 9];
        set.mass_production(10_000.0, 10_000.0, rho, &y, &mut wdot);
        assert!(wdot[0] < 0.0, "N2 rate {}", wdot[0]);
        assert!(wdot[1] < 0.0, "O2 rate {}", wdot[1]);
        assert!(wdot[3] > 0.0 && wdot[4] > 0.0, "atoms must form");
    }

    #[test]
    fn cold_air_is_inert() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let y = [0.767, 0.233, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut wdot = [0.0; 9];
        set.mass_production(300.0, 300.0, 1.2, &y, &mut wdot);
        // Time scale of any change must exceed ~1e20 s.
        for (w, yv) in wdot.iter().zip(&y) {
            if *yv > 0.0 {
                assert!(w.abs() / (1.2 * yv) < 1e-20, "cold air reacting: {w}");
            }
        }
    }

    #[test]
    fn vibrational_nonequilibrium_slows_dissociation() {
        // Tv < T reduces Park's √(T·Tv) rate.
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let r = &set.reactions()[0]; // N2 dissociation
        let (kf_eq, _) = set.rate_constants(r, 10_000.0, 10_000.0);
        let (kf_neq, _) = set.rate_constants(r, 10_000.0, 2_000.0);
        assert!(kf_neq < kf_eq * 0.01, "kf {kf_neq} vs {kf_eq}");
    }

    #[test]
    fn net_nu_bookkeeping() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let r = &set.reactions()[0];
        let n2 = gas.mixture().index_of("N2").unwrap();
        let n = gas.mixture().index_of("N").unwrap();
        assert_eq!(r.net_nu(n2), -1.0);
        assert_eq!(r.net_nu(n), 2.0);
        assert_eq!(r.delta_nu(), 1.0);
    }
}
