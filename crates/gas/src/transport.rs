//! Transport properties: viscosity, thermal conductivity, diffusion.
//!
//! Species viscosities come from Blottner curve fits where the classic air
//! coefficients exist, and from Chapman-Enskog kinetic theory with
//! Lennard-Jones parameters (Neufeld collision integral) otherwise — which
//! covers the Titan species. Mixtures use Wilke's semi-empirical rule, the
//! standard of the era's CAT codes. Thermal conductivity is Eucken per
//! species, Wilke-mixed; diffusion uses a constant-Lewis-number model.

use crate::species::{Species, ViscModel};
use crate::thermo::Mixture;

/// Sutherland viscosity for undissociated air \[Pa·s\].
#[must_use]
pub fn sutherland_air(t: f64) -> f64 {
    1.458e-6 * t.powf(1.5) / (t + 110.4)
}

/// Neufeld's curve fit of the Ω(2,2)* collision integral.
#[must_use]
pub fn omega22(t_star: f64) -> f64 {
    1.161_45 / t_star.powf(0.148_74)
        + 0.524_87 * (-0.773_2 * t_star).exp()
        + 2.161_78 * (-2.437_87 * t_star).exp()
}

/// Single-species viscosity \[Pa·s\] at `t`.
#[must_use]
pub fn species_viscosity(sp: &Species, t: f64) -> f64 {
    match sp.viscosity {
        ViscModel::Blottner { a, b, c } => {
            let lt = t.ln();
            0.1 * ((a * lt + b) * lt + c).exp()
        }
        ViscModel::LennardJones { sigma, eps_k } => {
            // Chapman-Enskog: μ = 2.6693e-6·√(M·T)/(σ²·Ω22), σ in Å.
            let t_star = (t / eps_k).max(0.1);
            2.6693e-6 * (sp.molar_mass * t).sqrt() / (sigma * sigma * omega22(t_star))
        }
    }
}

/// Single-species Eucken thermal conductivity \[W/(m·K)\]:
/// `k = μ·(cp + 1.25·R)`.
#[must_use]
pub fn species_conductivity(sp: &Species, t: f64) -> f64 {
    let mu = species_viscosity(sp, t);
    mu * (sp.cp(t) + 1.25 * sp.gas_constant())
}

/// Wilke's mixing rule applied to any per-species property `phi` (viscosity
/// or conductivity), with mole fractions `x`.
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn wilke_mix(mix: &Mixture, x: &[f64], phi: &[f64]) -> f64 {
    let ns = mix.len();
    assert!(x.len() == ns && phi.len() == ns);
    let mut result = 0.0;
    for i in 0..ns {
        if x[i] <= 1e-300 {
            continue;
        }
        let mi = mix.species()[i].molar_mass;
        let mut denom = 0.0;
        for j in 0..ns {
            if x[j] <= 1e-300 {
                continue;
            }
            let mj = mix.species()[j].molar_mass;
            let num = {
                let r = (phi[i] / phi[j].max(1e-300)).sqrt() * (mj / mi).powf(0.25);
                let v = 1.0 + r;
                v * v
            };
            let den = (8.0 * (1.0 + mi / mj)).sqrt();
            denom += x[j] * num / den;
        }
        result += x[i] * phi[i] / denom;
    }
    result
}

/// Mixture viscosity \[Pa·s\] from mass fractions via Wilke.
#[must_use]
pub fn mixture_viscosity(mix: &Mixture, t: f64, y: &[f64]) -> f64 {
    let x = mix.mass_to_mole(y);
    let phi: Vec<f64> = mix
        .species()
        .iter()
        .map(|s| species_viscosity(s, t))
        .collect();
    wilke_mix(mix, &x, &phi)
}

/// Allocation-free [`mixture_viscosity`]: the caller supplies the mole
/// fraction and per-species viscosity work buffers (resized as needed, so
/// they can start empty and be reused across a sweep). Bitwise identical
/// to [`mixture_viscosity`].
pub fn mixture_viscosity_with(
    mix: &Mixture,
    t: f64,
    y: &[f64],
    x: &mut Vec<f64>,
    phi: &mut Vec<f64>,
) -> f64 {
    x.resize(mix.len(), 0.0);
    mix.mass_to_mole_into(y, x);
    phi.clear();
    phi.extend(mix.species().iter().map(|s| species_viscosity(s, t)));
    wilke_mix(mix, x, phi)
}

/// Mixture frozen thermal conductivity \[W/(m·K)\] from mass fractions.
#[must_use]
pub fn mixture_conductivity(mix: &Mixture, t: f64, y: &[f64]) -> f64 {
    let x = mix.mass_to_mole(y);
    let phi: Vec<f64> = mix
        .species()
        .iter()
        .map(|s| species_conductivity(s, t))
        .collect();
    wilke_mix(mix, &x, &phi)
}

/// Frozen Prandtl number `μ·cp/k`.
#[must_use]
pub fn prandtl(mix: &Mixture, t: f64, y: &[f64]) -> f64 {
    let mu = mixture_viscosity(mix, t, y);
    let k = mixture_conductivity(mix, t, y);
    mu * mix.cp(t, y) / k
}

/// Effective binary diffusion coefficient \[m²/s\] from a constant Lewis
/// number: `D = Le·k/(ρ·cp)`. Le = 1.4 is the era's standard for air.
#[must_use]
pub fn diffusion_lewis(mix: &Mixture, t: f64, rho: f64, y: &[f64], lewis: f64) -> f64 {
    let k = mixture_conductivity(mix, t, y);
    lewis * k / (rho * mix.cp(t, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::*;

    fn air2() -> Mixture {
        Mixture::new(vec![n2(), o2()])
    }

    #[test]
    fn sutherland_room_temperature() {
        // μ(300 K) ≈ 1.846e-5 Pa·s.
        let mu = sutherland_air(300.0);
        assert!((mu - 1.846e-5).abs() < 2e-7, "mu = {mu:.4e}");
    }

    #[test]
    fn blottner_n2_close_to_sutherland_when_cold() {
        let mu_b = species_viscosity(&n2(), 300.0);
        let mu_s = sutherland_air(300.0);
        assert!((mu_b - mu_s).abs() / mu_s < 0.1, "{mu_b:.3e} vs {mu_s:.3e}");
    }

    #[test]
    fn wilke_pure_gas_recovers_species_value() {
        let mix = air2();
        let y = [1.0, 0.0];
        let mu = mixture_viscosity(&mix, 500.0, &y);
        let mu_n2 = species_viscosity(&n2(), 500.0);
        assert!((mu - mu_n2).abs() / mu_n2 < 1e-10);
    }

    #[test]
    fn air_mixture_viscosity_reasonable() {
        let mix = air2();
        let y = [0.767, 0.233];
        let mu = mixture_viscosity(&mix, 300.0, &y);
        assert!((mu - 1.85e-5).abs() / 1.85e-5 < 0.12, "mu = {mu:.3e}");
        // Viscosity grows with temperature.
        assert!(mixture_viscosity(&mix, 2000.0, &y) > mu);
    }

    #[test]
    fn prandtl_number_of_cold_air() {
        // Eucken-based Pr for diatomic air ≈ 0.71–0.78.
        let mix = air2();
        let y = [0.767, 0.233];
        let pr = prandtl(&mix, 300.0, &y);
        assert!(pr > 0.6 && pr < 0.85, "Pr = {pr}");
    }

    #[test]
    fn kinetic_theory_species_sane() {
        // CH4 at 300 K: μ ≈ 1.1e-5 Pa·s.
        let mu = species_viscosity(&ch4(), 300.0);
        assert!(mu > 0.6e-5 && mu < 1.6e-5, "mu(CH4) = {mu:.3e}");
        // H2 lighter → lower viscosity than N2 at same T.
        assert!(species_viscosity(&h2(), 300.0) < species_viscosity(&n2(), 300.0));
    }

    #[test]
    fn conductivity_positive_and_growing() {
        let mix = air2();
        let y = [0.767, 0.233];
        let k300 = mixture_conductivity(&mix, 300.0, &y);
        let k3000 = mixture_conductivity(&mix, 3000.0, &y);
        // Air k(300K) ≈ 0.026 W/m/K; Eucken is approximate, allow slack.
        assert!(k300 > 0.015 && k300 < 0.04, "k = {k300}");
        assert!(k3000 > k300);
    }

    #[test]
    fn lewis_diffusion_scales() {
        let mix = air2();
        let y = [0.767, 0.233];
        let d1 = diffusion_lewis(&mix, 1000.0, 0.1, &y, 1.0);
        let d14 = diffusion_lewis(&mix, 1000.0, 0.1, &y, 1.4);
        assert!((d14 / d1 - 1.4).abs() < 1e-12);
        assert!(d1 > 0.0);
    }
}
