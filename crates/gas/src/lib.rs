//! High-temperature gas thermochemistry for computational
//! aerothermodynamics.
//!
//! The paper's "real-gas effects" — equilibrium and finite-rate chemistry,
//! thermal (two-temperature) nonequilibrium, and the property data feeding
//! radiation — all live here:
//!
//! * [`species`] — spectroscopic species database (9-species ionizing air,
//!   Titan N₂/CH₄ species),
//! * [`thermo`] — statistical-mechanics thermodynamics and [`thermo::Mixture`],
//! * [`equilibrium`] — general element-potential equilibrium solver,
//! * [`eq_table`] — tabulated equilibrium-air equation of state for flow
//!   solvers (the modern version of the era's Tannehill curve fits),
//! * [`model`] — the [`model::GasModel`] EOS abstraction the solvers consume,
//! * [`kinetics`] — Park finite-rate reaction set with two-temperature
//!   coupling and backward rates from equilibrium constants,
//! * [`relaxation`] — Millikan-White/Park vibrational relaxation times,
//! * [`transport`] — viscosity/conductivity/diffusion (Blottner + kinetic
//!   theory, Wilke mixing).
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod eq_table;
pub mod equilibrium;
pub mod error;
pub mod kinetics;
pub mod model;
pub mod relaxation;
pub mod species;
pub mod thermo;
pub mod transport;

pub use equilibrium::{
    air11_equilibrium, air5_equilibrium, air9_equilibrium, jupiter_equilibrium,
    reset_thread_warm_cache, titan_equilibrium, EqState, EquilibriumGas,
};
pub use error::GasError;
pub use model::{GasModel, IdealGas};
pub use species::{Element, Rotation, Species, ViscModel};
pub use thermo::Mixture;
