//! Statistical-mechanics thermodynamics for species and mixtures.
//!
//! All properties come from the rigid-rotor / harmonic-oscillator partition
//! function plus tabulated electronic levels, evaluated at one temperature
//! (thermal equilibrium) or at split temperatures (the two-temperature model:
//! translation/rotation at `T`, vibration/electronic/electron-translation at
//! `Tv`).

use crate::error::GasError;
use crate::species::{Element, Rotation, Species};
use aerothermo_numerics::constants::{H_PLANCK, K_BOLTZMANN, R_UNIVERSAL};
use aerothermo_numerics::roots::brent_expanding;

/// Largest exponent magnitude fed to `exp` in Boltzmann factors; beyond this
/// the factor is numerically 0 or the mode is frozen out.
const EXP_CLAMP: f64 = 600.0;

fn boltzmann(theta: f64, t: f64) -> f64 {
    let x = theta / t;
    if x > EXP_CLAMP {
        0.0
    } else {
        (-x).exp()
    }
}

impl Species {
    /// Thermal translational energy per unit mass \[J/kg\] at temperature `t`.
    #[must_use]
    pub fn e_trans(&self, t: f64) -> f64 {
        1.5 * self.gas_constant() * t
    }

    /// Rotational energy per unit mass \[J/kg\] (fully excited).
    #[must_use]
    pub fn e_rot(&self, t: f64) -> f64 {
        let dof = match self.rot {
            Rotation::None => 0.0,
            Rotation::Linear { .. } => 2.0,
            Rotation::Nonlinear { .. } => 3.0,
        };
        0.5 * dof * self.gas_constant() * t
    }

    /// Vibrational energy per unit mass \[J/kg\] at vibrational temperature
    /// `tv` (harmonic oscillator, sum over modes with degeneracy).
    #[must_use]
    pub fn e_vib(&self, tv: f64) -> f64 {
        let rs = self.gas_constant();
        let mut e = 0.0;
        for &(theta, g) in &self.vib_modes {
            let x = theta / tv;
            if x < EXP_CLAMP {
                e += f64::from(g) * rs * theta / (x.exp() - 1.0);
            }
        }
        e
    }

    /// Electronic excitation energy per unit mass \[J/kg\] at electronic
    /// temperature `te`.
    #[must_use]
    pub fn e_elec(&self, te: f64) -> f64 {
        if self.electronic.len() <= 1 {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(theta, g) in &self.electronic {
            let b = f64::from(g) * boltzmann(theta, te);
            num += theta * b;
            den += b;
        }
        if den <= 0.0 {
            return 0.0;
        }
        self.gas_constant() * num / den
    }

    /// Formation energy per unit mass \[J/kg\] (0 K reference).
    #[must_use]
    pub fn e_formation(&self) -> f64 {
        self.gas_constant() * self.theta_f
    }

    /// Total internal energy per unit mass \[J/kg\] in thermal equilibrium at
    /// `t`, including formation energy.
    #[must_use]
    pub fn e_total(&self, t: f64) -> f64 {
        self.e_trans(t) + self.e_rot(t) + self.e_vib(t) + self.e_elec(t) + self.e_formation()
    }

    /// Internal energy in the two-temperature model: translation and rotation
    /// at `t`, vibration and electronic at `tv`.
    #[must_use]
    pub fn e_total_2t(&self, t: f64, tv: f64) -> f64 {
        self.e_trans(t) + self.e_rot(t) + self.e_vib(tv) + self.e_elec(tv) + self.e_formation()
    }

    /// Enthalpy per unit mass \[J/kg\] at `t` (thermal equilibrium).
    #[must_use]
    pub fn h_total(&self, t: f64) -> f64 {
        self.e_total(t) + self.gas_constant() * t
    }

    /// Frozen specific heat at constant volume \[J/(kg·K)\] at `t`
    /// (all modes at the same temperature).
    #[must_use]
    pub fn cv(&self, t: f64) -> f64 {
        let rs = self.gas_constant();
        let dof_rot = match self.rot {
            Rotation::None => 0.0,
            Rotation::Linear { .. } => 2.0,
            Rotation::Nonlinear { .. } => 3.0,
        };
        let mut cv = (1.5 + 0.5 * dof_rot) * rs;
        cv += self.cv_vib(t);
        cv += self.cv_elec(t);
        cv
    }

    /// Vibrational specific heat \[J/(kg·K)\] at vibrational temperature `tv`.
    #[must_use]
    pub fn cv_vib(&self, tv: f64) -> f64 {
        let rs = self.gas_constant();
        let mut cv = 0.0;
        for &(theta, g) in &self.vib_modes {
            let x = theta / tv;
            if x < EXP_CLAMP {
                let ex = x.exp();
                let d = ex - 1.0;
                cv += f64::from(g) * rs * x * x * ex / (d * d);
            }
        }
        cv
    }

    /// Electronic specific heat \[J/(kg·K)\] at electronic temperature `te`.
    #[must_use]
    pub fn cv_elec(&self, te: f64) -> f64 {
        if self.electronic.len() <= 1 {
            return 0.0;
        }
        let mut q = 0.0;
        let mut q1 = 0.0; // Σ g θ e^{-θ/T}
        let mut q2 = 0.0; // Σ g θ² e^{-θ/T}
        for &(theta, g) in &self.electronic {
            let b = f64::from(g) * boltzmann(theta, te);
            q += b;
            q1 += theta * b;
            q2 += theta * theta * b;
        }
        if q <= 0.0 {
            return 0.0;
        }
        let mean = q1 / q;
        let mean_sq = q2 / q;
        self.gas_constant() * (mean_sq - mean * mean) / (te * te)
    }

    /// Frozen specific heat at constant pressure \[J/(kg·K)\].
    #[must_use]
    pub fn cp(&self, t: f64) -> f64 {
        self.cv(t) + self.gas_constant()
    }

    /// Specific entropy \[J/(kg·K)\] of the pure species at `(t, p)` from
    /// the same partition functions as everything else:
    /// Sackur-Tetrode translational part plus rotational, vibrational, and
    /// electronic contributions.
    #[must_use]
    pub fn entropy(&self, t: f64, p: f64) -> f64 {
        let rs = self.gas_constant();
        // Translational: s/R = ln[(2πmkT/h²)^{3/2}·kT/p] + 5/2.
        let s_tr = rs
            * (self.ln_q_trans_per_volume(t)
                + (aerothermo_numerics::constants::K_BOLTZMANN * t / p).ln()
                + 2.5);
        // Rotational: s/R = ln Q_rot + (rotational energy)/RT.
        let s_rot = match self.rot {
            Rotation::None => 0.0,
            Rotation::Linear { theta_r, sigma } => rs * ((t / (sigma * theta_r)).ln() + 1.0),
            Rotation::Nonlinear { theta_abc, sigma } => {
                rs * (((std::f64::consts::PI * (t / theta_abc).powi(3)).sqrt() / sigma).ln() + 1.5)
            }
        };
        // Vibrational per mode: s/R = θ/T/(e^{θ/T}−1) − ln(1 − e^{−θ/T}).
        let mut s_vib = 0.0;
        for &(theta, g) in &self.vib_modes {
            let x = theta / t;
            if x < EXP_CLAMP {
                let b = (-x).exp();
                s_vib += f64::from(g) * rs * (x * b / (1.0 - b) - (1.0 - b).ln());
            }
        }
        // Electronic: s/R = ln Q_el + <θ>/T.
        let mut q_el = 0.0;
        let mut q1 = 0.0;
        for &(theta, g) in &self.electronic {
            let b = f64::from(g) * boltzmann(theta, t);
            q_el += b;
            q1 += theta * b;
        }
        let s_el = if q_el > 0.0 {
            rs * (q_el.ln() + q1 / (q_el * t))
        } else {
            0.0
        };
        s_tr + s_rot + s_vib + s_el
    }

    /// Internal partition function Q_int = Q_rot · Q_vib · Q_el at `t`.
    #[must_use]
    pub fn q_internal(&self, t: f64) -> f64 {
        let q_rot = match self.rot {
            Rotation::None => 1.0,
            Rotation::Linear { theta_r, sigma } => t / (sigma * theta_r),
            Rotation::Nonlinear { theta_abc, sigma } => {
                (std::f64::consts::PI * (t / theta_abc).powi(3)).sqrt() / sigma
            }
        };
        let mut q_vib = 1.0;
        for &(theta, g) in &self.vib_modes {
            let b = boltzmann(theta, t);
            q_vib *= (1.0 / (1.0 - b)).powi(g as i32);
        }
        let mut q_el = 0.0;
        for &(theta, g) in &self.electronic {
            q_el += f64::from(g) * boltzmann(theta, t);
        }
        q_rot * q_vib * q_el
    }

    /// `ln` of the translational partition function per unit volume,
    /// (2π m k T / h²)^{3/2} \[m⁻³\].
    #[must_use]
    pub fn ln_q_trans_per_volume(&self, t: f64) -> f64 {
        let m = self.particle_mass();
        1.5 * (2.0 * std::f64::consts::PI * m * K_BOLTZMANN * t / (H_PLANCK * H_PLANCK)).ln()
    }

    /// The "concentration potential" φ(T) = ln[(Q_tr/V)·Q_int] − θ_f/T used
    /// by the equilibrium solver: at equilibrium, `ln n_s = Σ a_es λ_e + φ_s`.
    #[must_use]
    pub fn ln_concentration_potential(&self, t: f64) -> f64 {
        self.ln_q_trans_per_volume(t) + self.q_internal(t).ln() - self.theta_f / t
    }
}

/// A gas mixture: an ordered species list with index lookups and
/// mass-fraction-weighted mixture thermodynamics.
#[derive(Debug, Clone)]
pub struct Mixture {
    species: Vec<Species>,
}

impl Mixture {
    /// Build a mixture from a species list.
    ///
    /// # Panics
    /// Panics if the list is empty or contains duplicate names.
    #[must_use]
    pub fn new(species: Vec<Species>) -> Self {
        assert!(!species.is_empty(), "mixture needs at least one species");
        for (i, a) in species.iter().enumerate() {
            for b in &species[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate species {}", a.name);
            }
        }
        Self { species }
    }

    /// The species, in index order.
    #[must_use]
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// Number of species.
    #[must_use]
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// Always false (constructor enforces non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Index of species `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.species.iter().position(|s| s.name == name)
    }

    /// Mixture gas constant \[J/(kg·K)\] for mass fractions `y`.
    ///
    /// # Panics
    /// Panics if `y.len()` mismatches the species count.
    #[must_use]
    pub fn gas_constant(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.species.len());
        self.species
            .iter()
            .zip(y)
            .map(|(s, yi)| yi * s.gas_constant())
            .sum()
    }

    /// Mixture molar mass \[kg/kmol\] for mass fractions `y`.
    #[must_use]
    pub fn molar_mass(&self, y: &[f64]) -> f64 {
        R_UNIVERSAL / self.gas_constant(y)
    }

    /// Convert mole fractions to mass fractions.
    #[must_use]
    pub fn mole_to_mass(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; x.len()];
        self.mole_to_mass_into(x, &mut y);
        y
    }

    /// Allocation-free [`Self::mole_to_mass`]: writes the mass fractions
    /// into `y`.
    ///
    /// # Panics
    /// Panics if `x.len()` or `y.len()` mismatches the species count.
    pub fn mole_to_mass_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.species.len());
        assert_eq!(y.len(), self.species.len());
        let mbar: f64 = self
            .species
            .iter()
            .zip(x)
            .map(|(s, xi)| xi * s.molar_mass)
            .sum();
        for ((yi, s), xi) in y.iter_mut().zip(&self.species).zip(x) {
            *yi = xi * s.molar_mass / mbar;
        }
    }

    /// Convert mass fractions to mole fractions.
    #[must_use]
    pub fn mass_to_mole(&self, y: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; y.len()];
        self.mass_to_mole_into(y, &mut x);
        x
    }

    /// Allocation-free [`Self::mass_to_mole`]: writes the mole fractions
    /// into `x`.
    ///
    /// # Panics
    /// Panics if `y.len()` or `x.len()` mismatches the species count.
    pub fn mass_to_mole_into(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.species.len());
        assert_eq!(x.len(), self.species.len());
        let inv_mbar: f64 = self
            .species
            .iter()
            .zip(y)
            .map(|(s, yi)| yi / s.molar_mass)
            .sum();
        for ((xi, s), yi) in x.iter_mut().zip(&self.species).zip(y) {
            *xi = (yi / s.molar_mass) / inv_mbar;
        }
    }

    /// Elemental mass fractions implied by species mass fractions `y`:
    /// `(element, mass fraction of that element's nuclei)` for every
    /// element present in the mixture, in [`Element::ALL`] order.
    ///
    /// Chemistry rearranges species but never transmutes nuclei, so this
    /// vector is an exact invariant of any reacting solve — the
    /// element-conservation auditor compares it before and after the
    /// chemistry operator. Electrons carry (negligible) mass outside the
    /// element ledger, so the fractions sum to ≈ 1, not exactly 1, for
    /// ionized mixtures.
    ///
    /// # Panics
    /// Panics if `y.len()` mismatches the species count.
    #[must_use]
    pub fn element_mass_fractions(&self, y: &[f64]) -> Vec<(Element, f64)> {
        let mut out = Vec::new();
        self.element_mass_fractions_into(y, &mut out);
        out
    }

    /// Allocation-free [`Self::element_mass_fractions`]: clears `out` and
    /// refills it (the spare capacity of a reused `Vec` is kept, so a
    /// per-step scratch vector never reallocates after the first call).
    ///
    /// # Panics
    /// Panics if `y.len()` mismatches the species count.
    pub fn element_mass_fractions_into(&self, y: &[f64], out: &mut Vec<(Element, f64)>) {
        assert_eq!(y.len(), self.species.len());
        out.clear();
        for &el in &Element::ALL {
            let mut present = false;
            let mut z = 0.0;
            for (s, yi) in self.species.iter().zip(y) {
                let atoms = s.atoms_of(el);
                if atoms > 0 {
                    present = true;
                    z += yi * f64::from(atoms) * el.molar_mass() / s.molar_mass;
                }
            }
            if present {
                out.push((el, z));
            }
        }
    }

    /// Mixture internal energy \[J/kg\] (thermal equilibrium, includes
    /// formation energies).
    #[must_use]
    pub fn e_total(&self, t: f64, y: &[f64]) -> f64 {
        self.species
            .iter()
            .zip(y)
            .map(|(s, yi)| yi * s.e_total(t))
            .sum()
    }

    /// Mixture enthalpy \[J/kg\].
    #[must_use]
    pub fn h_total(&self, t: f64, y: &[f64]) -> f64 {
        self.e_total(t, y) + self.gas_constant(y) * t
    }

    /// Mixture frozen cv \[J/(kg·K)\].
    #[must_use]
    pub fn cv(&self, t: f64, y: &[f64]) -> f64 {
        self.species.iter().zip(y).map(|(s, yi)| yi * s.cv(t)).sum()
    }

    /// Mixture frozen cp \[J/(kg·K)\].
    #[must_use]
    pub fn cp(&self, t: f64, y: &[f64]) -> f64 {
        self.species.iter().zip(y).map(|(s, yi)| yi * s.cp(t)).sum()
    }

    /// Frozen ratio of specific heats.
    #[must_use]
    pub fn gamma_frozen(&self, t: f64, y: &[f64]) -> f64 {
        let cp = self.cp(t, y);
        cp / (cp - self.gas_constant(y))
    }

    /// Frozen sound speed \[m/s\].
    #[must_use]
    pub fn sound_speed_frozen(&self, t: f64, y: &[f64]) -> f64 {
        (self.gamma_frozen(t, y) * self.gas_constant(y) * t).sqrt()
    }

    /// Invert `e_total(T) = e` for T at fixed composition. Returns the
    /// temperature in `[t_min, t_max]`.
    ///
    /// # Errors
    /// [`GasError::InversionFailed`] when no temperature in range matches.
    pub fn temperature_from_energy(
        &self,
        e: f64,
        y: &[f64],
        t_guess: f64,
    ) -> Result<f64, GasError> {
        brent_expanding(
            |t| self.e_total(t, y) - e,
            t_guess.max(20.0),
            0.25 * t_guess.max(20.0),
            10.0,
            200_000.0,
            1e-8,
            80,
        )
        .map_err(|err| GasError::InversionFailed {
            context: "temperature_from_energy".into(),
            detail: err.to_string(),
        })
    }

    /// Two-temperature mixture internal energy \[J/kg\]: heavy-particle
    /// translation + rotation at `t`, vibration + electronic + electron
    /// translation at `tv`.
    #[must_use]
    pub fn e_total_2t(&self, t: f64, tv: f64, y: &[f64]) -> f64 {
        self.species
            .iter()
            .zip(y)
            .map(|(s, yi)| {
                if s.name == "e-" {
                    // Free electrons thermalize with the vibrational pool.
                    yi * (s.e_trans(tv) + s.e_formation())
                } else {
                    yi * s.e_total_2t(t, tv)
                }
            })
            .sum()
    }

    /// Mixture vibrational-electronic energy per unit mass \[J/kg\] at `tv`
    /// (the quantity transported by the vibrational energy equation).
    #[must_use]
    pub fn e_vibronic(&self, tv: f64, y: &[f64]) -> f64 {
        self.species
            .iter()
            .zip(y)
            .map(|(s, yi)| {
                if s.name == "e-" {
                    yi * s.e_trans(tv)
                } else {
                    yi * (s.e_vib(tv) + s.e_elec(tv))
                }
            })
            .sum()
    }

    /// Mixture specific entropy \[J/(kg·K)\] at `(t, p)` for mass fractions
    /// `y`: partial-pressure-weighted species entropies (the ideal-mixing
    /// term enters through each species seeing its own partial pressure).
    #[must_use]
    pub fn entropy(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        // Hot path (called per-station by the boundary-layer and VSL
        // solvers): a stack buffer for the mole fractions avoids a per-call
        // heap allocation for every realistic species count.
        let ns = self.species.len();
        let mut xbuf = [0.0_f64; 32];
        let xvec;
        let x: &[f64] = if ns <= xbuf.len() {
            self.mass_to_mole_into(y, &mut xbuf[..ns]);
            &xbuf[..ns]
        } else {
            xvec = self.mass_to_mole(y);
            &xvec
        };
        let mut s = 0.0;
        for ((sp, yi), xi) in self.species().iter().zip(y).zip(x) {
            if *yi > 1e-300 && *xi > 1e-300 {
                s += yi * sp.entropy(t, p * xi);
            }
        }
        s
    }

    /// Invert `e_vibronic(Tv) = ev` for Tv.
    ///
    /// # Errors
    /// [`GasError::InversionFailed`] when no vibrational temperature in
    /// range matches (e.g. the mixture has no internal modes).
    pub fn tv_from_vibronic_energy(
        &self,
        ev: f64,
        y: &[f64],
        tv_guess: f64,
    ) -> Result<f64, GasError> {
        brent_expanding(
            |tv| self.e_vibronic(tv, y) - ev,
            tv_guess.max(20.0),
            0.25 * tv_guess.max(20.0),
            10.0,
            200_000.0,
            1e-8,
            80,
        )
        .map_err(|err| GasError::InversionFailed {
            context: "tv_from_vibronic_energy".into(),
            detail: err.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::*;

    #[test]
    fn element_mass_fractions_sum_to_one_and_survive_dissociation() {
        let mix = Mixture::new(vec![n2(), o2(), no(), n_atom(), o_atom()]);
        // Standard air by mass.
        let y_air = [0.767, 0.233, 0.0, 0.0, 0.0];
        let elems = mix.element_mass_fractions(&y_air);
        let total: f64 = elems.iter().map(|(_, z)| z).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let zn = elems.iter().find(|(e, _)| *e == Element::N).unwrap().1;
        assert!((zn - 0.767).abs() < 1e-12);
        // Fully dissociate: same nuclei, different species — the element
        // vector must not move (up to the NO molar-mass roundoff).
        let y_diss = [0.0, 0.0, 0.0, 0.767, 0.233];
        let elems2 = mix.element_mass_fractions(&y_diss);
        for ((e1, z1), (e2, z2)) in elems.iter().zip(&elems2) {
            assert_eq!(e1, e2);
            assert!((z1 - z2).abs() < 1e-6, "{e1:?}: {z1} vs {z2}");
        }
    }

    #[test]
    fn cold_diatomic_cp_is_seven_halves_r() {
        // At 300 K vibration is frozen: cp → (7/2) R_s.
        let sp = n2();
        let cp = sp.cp(300.0);
        assert!(
            (cp / sp.gas_constant() - 3.5).abs() < 0.01,
            "cp/R = {}",
            cp / sp.gas_constant()
        );
    }

    #[test]
    fn hot_diatomic_cv_gains_vibration() {
        // At T ≫ θv the vibrational mode adds a full R.
        let sp = n2();
        let cv_hot = sp.cv(30_000.0);
        // trans 1.5 R + rot 1.0 R + vib → 1.0 R (plus tiny electronic).
        assert!(cv_hot / sp.gas_constant() > 3.4);
    }

    #[test]
    fn atom_cv_is_three_halves_r_when_cold() {
        let sp = o_atom();
        // At 300 K the excited electronic states are frozen out.
        assert!((sp.cv(300.0) / sp.gas_constant() - 1.5).abs() < 1e-3);
    }

    #[test]
    fn electronic_cv_peaks_then_decays() {
        // Electronic specific heat is a Schottky bump: zero at low T,
        // zero again at very high T.
        let sp = o_atom();
        let low = sp.cv_elec(300.0);
        let mid = sp.cv_elec(10_000.0);
        let high = sp.cv_elec(150_000.0);
        assert!(low < 1e-6);
        assert!(mid > low && mid > high);
    }

    #[test]
    fn energy_monotone_in_temperature() {
        let sp = no();
        let mut prev = sp.e_total(200.0);
        for i in 1..60 {
            let t = 200.0 + 500.0 * f64::from(i);
            let e = sp.e_total(t);
            assert!(e > prev, "e not monotone at T={t}");
            prev = e;
        }
    }

    #[test]
    fn cv_is_derivative_of_e() {
        let sp = o2();
        for t in [300.0, 1000.0, 3000.0, 8000.0] {
            let h = 1e-3 * t;
            let fd = (sp.e_total(t + h) - sp.e_total(t - h)) / (2.0 * h);
            let an = sp.cv(t);
            assert!((fd - an).abs() < 1e-4 * an, "T={t}: fd={fd} an={an}");
        }
    }

    #[test]
    fn two_temperature_reduces_to_equilibrium() {
        let sp = n2();
        for t in [500.0, 3000.0, 12_000.0] {
            assert!((sp.e_total_2t(t, t) - sp.e_total(t)).abs() < 1e-9 * sp.e_total(t).abs());
        }
    }

    #[test]
    fn mixture_air_gas_constant() {
        let mix = Mixture::new(vec![n2(), o2()]);
        // Standard air-like composition by mass.
        let y = [0.767, 0.233];
        let r = mix.gas_constant(&y);
        assert!((r - 288.2).abs() < 1.0, "R = {r}");
    }

    #[test]
    fn mole_mass_roundtrip() {
        let mix = Mixture::new(vec![n2(), o2(), no(), n_atom(), o_atom()]);
        let x = [0.5, 0.1, 0.05, 0.2, 0.15];
        let y = mix.mole_to_mass(&x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let x2 = mix.mass_to_mole(&y);
        for (a, b) in x.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn temperature_inversion_roundtrip() {
        let mix = Mixture::new(vec![n2(), o2()]);
        let y = [0.767, 0.233];
        for t in [300.0, 1500.0, 6000.0] {
            let e = mix.e_total(t, &y);
            let t2 = mix.temperature_from_energy(e, &y, 1000.0).unwrap();
            assert!((t - t2).abs() < 1e-3 * t, "T={t} -> {t2}");
        }
    }

    #[test]
    fn tv_inversion_roundtrip() {
        let mix = Mixture::new(vec![n2(), o2(), no()]);
        let y = [0.6, 0.3, 0.1];
        for tv in [800.0, 3000.0, 9000.0] {
            let ev = mix.e_vibronic(tv, &y);
            let tv2 = mix.tv_from_vibronic_energy(ev, &y, 2000.0).unwrap();
            assert!((tv - tv2).abs() < 1e-3 * tv, "Tv={tv} -> {tv2}");
        }
    }

    #[test]
    fn frozen_gamma_cold_air() {
        let mix = Mixture::new(vec![n2(), o2()]);
        let y = [0.767, 0.233];
        let g = mix.gamma_frozen(300.0, &y);
        assert!((g - 1.4).abs() < 0.005, "gamma = {g}");
        let a = mix.sound_speed_frozen(300.0, &y);
        assert!((a - 347.0).abs() < 5.0, "a = {a}");
    }

    #[test]
    fn partition_function_grows_with_t() {
        let sp = n2();
        assert!(sp.q_internal(2000.0) > sp.q_internal(300.0));
        // Rotational part alone at 300 K: T/(σθr) ≈ 52.
        let q300 = sp.q_internal(300.0);
        assert!(
            (q300 - 300.0 / (2.0 * 2.88)).abs() / q300 < 0.05,
            "q300={q300}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate species")]
    fn duplicate_species_rejected() {
        let _ = Mixture::new(vec![n2(), n2()]);
    }

    #[test]
    fn sackur_tetrode_argon_class_entropy() {
        // Monatomic O at 298.15 K, 1 atm: the Sackur-Tetrode value for a
        // mass-16 gas with g0 = 9 is s = R_s·[1.5·ln M + 2.5·ln T − ln p +
        // const]; check against the direct statistical evaluation of the
        // standard molar entropy of O(g): 161.1 J/(mol·K).
        let sp = o_atom();
        let s = sp.entropy(298.15, 101_325.0) * sp.molar_mass / 1000.0; // J/(mol·K)
        assert!((s - 161.06).abs() < 1.0, "S°(O) = {s} J/mol/K");
    }

    #[test]
    fn n2_standard_entropy() {
        // S°(N₂, 298.15 K) = 191.6 J/(mol·K).
        let sp = n2();
        let s = sp.entropy(298.15, 101_325.0) * sp.molar_mass / 1000.0;
        assert!((s - 191.6).abs() < 1.5, "S°(N2) = {s} J/mol/K");
    }

    #[test]
    fn entropy_thermodynamic_identity() {
        // At constant pressure: T·ds = dh → ds/dT = cp/T.
        let sp = o2();
        let p = 5e4;
        for t in [400.0, 2000.0, 6000.0] {
            let h = 1e-3 * t;
            let ds_dt = (sp.entropy(t + h, p) - sp.entropy(t - h, p)) / (2.0 * h);
            let cp_over_t = sp.cp(t) / t;
            assert!(
                (ds_dt - cp_over_t).abs() < 1e-3 * cp_over_t,
                "T={t}: ds/dT = {ds_dt}, cp/T = {cp_over_t}"
            );
        }
    }

    #[test]
    fn entropy_falls_with_pressure() {
        // ds = −R·d(ln p) at constant T.
        let sp = n2();
        let s1 = sp.entropy(1000.0, 1e4);
        let s2 = sp.entropy(1000.0, 1e5);
        let expect = sp.gas_constant() * (10.0_f64).ln();
        assert!(((s1 - s2) - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn mixing_entropy_positive() {
        // An equimolar mixture has higher entropy than the mole-weighted
        // pure-component value (ideal entropy of mixing).
        let mix = Mixture::new(vec![n2(), o2()]);
        let x = [0.5, 0.5];
        let y = mix.mole_to_mass(&x);
        let t = 500.0;
        let p = 1e5;
        let s_mix = mix.entropy(t, p, &y);
        let s_unmixed = y[0] * n2().entropy(t, p) + y[1] * o2().entropy(t, p);
        let r_mix = mix.gas_constant(&y);
        let ds_ideal = -r_mix * (0.5_f64.ln()); // = R ln 2 per unit mass
        assert!(
            ((s_mix - s_unmixed) - ds_ideal).abs() < 1e-6 * ds_ideal,
            "Δs_mix = {} vs R·ln2 = {}",
            s_mix - s_unmixed,
            ds_ideal
        );
    }
}
