//! The equation-of-state abstraction consumed by the flow solvers.
//!
//! A conservative finite-volume scheme needs, per cell and per step,
//! `p(ρ, e)`, `T(ρ, e)` and the sound speed. [`GasModel`] captures exactly
//! that; the implementations are [`IdealGas`] (calorically perfect, with an
//! adjustable effective γ — the paper's Fig. 6 "ideal gas γ = 1.2" baseline)
//! and the tabulated equilibrium gas in [`crate::eq_table`].

/// Equation of state in `(ρ, e)` form, where `e` is specific internal energy
/// *including* formation energies for reacting models.
pub trait GasModel: Send + Sync {
    /// Pressure \[Pa\] from density \[kg/m³\] and specific internal energy
    /// \[J/kg\].
    fn pressure(&self, rho: f64, e: f64) -> f64;

    /// Temperature \[K\].
    fn temperature(&self, rho: f64, e: f64) -> f64;

    /// Speed of sound \[m/s\].
    fn sound_speed(&self, rho: f64, e: f64) -> f64;

    /// Specific internal energy \[J/kg\] from density and pressure — the
    /// inverse of [`GasModel::pressure`] at fixed ρ, used by boundary
    /// conditions and initialization.
    fn energy(&self, rho: f64, p: f64) -> f64;

    /// Effective ratio of specific heats `γ_eff = 1 + p/(ρ·e_thermal)`.
    ///
    /// For the ideal gas this is the actual γ; for reacting models it is the
    /// local equivalent exponent (`p = (γ_eff − 1)·ρ·ē` with `ē` measured
    /// from the model's own zero).
    fn gamma_eff(&self, rho: f64, e: f64) -> f64 {
        1.0 + self.pressure(rho, e) / (rho * e.max(1e-30))
    }

    /// Specific enthalpy \[J/kg\].
    fn enthalpy(&self, rho: f64, e: f64) -> f64 {
        e + self.pressure(rho, e) / rho
    }

    /// Pressure and sound speed together — the pair every primitive
    /// decode needs. Models whose lookups share setup work (log-space
    /// table coordinates, clamping) override this to do that work once;
    /// the results must be bitwise identical to the individual calls.
    fn pressure_sound_speed(&self, rho: f64, e: f64) -> (f64, f64) {
        (self.pressure(rho, e), self.sound_speed(rho, e))
    }

    /// Four-lane [`GasModel::energy`], for the vectorized MUSCL
    /// reconstruction. The default is a hand-unrolled per-lane loop, so
    /// results are bitwise identical to four scalar calls by construction.
    fn energy4(&self, rho: [f64; 4], p: [f64; 4]) -> [f64; 4] {
        [
            self.energy(rho[0], p[0]),
            self.energy(rho[1], p[1]),
            self.energy(rho[2], p[2]),
            self.energy(rho[3], p[3]),
        ]
    }

    /// Four-lane [`GasModel::sound_speed`] (see [`GasModel::energy4`]).
    fn sound_speed4(&self, rho: [f64; 4], e: [f64; 4]) -> [f64; 4] {
        [
            self.sound_speed(rho[0], e[0]),
            self.sound_speed(rho[1], e[1]),
            self.sound_speed(rho[2], e[2]),
            self.sound_speed(rho[3], e[3]),
        ]
    }

    /// Short human-readable identity, recorded in run-control restart-file
    /// headers so a snapshot is only restored under the gas model that
    /// produced it.
    fn describe(&self) -> String {
        "gas".to_string()
    }
}

/// Calorically perfect gas with constant `γ` and gas constant `r`.
///
/// ```
/// use aerothermo_gas::{GasModel, IdealGas};
/// let air = IdealGas::air();
/// let rho = 1.225;
/// let e = air.energy(rho, 101_325.0);
/// assert!((air.sound_speed(rho, e) - 340.3).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IdealGas {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Specific gas constant \[J/(kg·K)\].
    pub r: f64,
}

impl IdealGas {
    /// Cold air: γ = 1.4, R = 287.05 J/(kg·K).
    #[must_use]
    pub fn air() -> Self {
        Self {
            gamma: 1.4,
            r: 287.05,
        }
    }

    /// The "effective γ" hypersonic ideal-gas model of the era's engineering
    /// analyses (the paper's Fig. 6 uses γ = 1.2 to mimic equilibrium air).
    #[must_use]
    pub fn effective_gamma(gamma: f64) -> Self {
        Self { gamma, r: 287.05 }
    }

    /// Specific heat at constant pressure \[J/(kg·K)\].
    #[must_use]
    pub fn cp(&self) -> f64 {
        self.gamma * self.r / (self.gamma - 1.0)
    }

    /// Specific heat at constant volume \[J/(kg·K)\].
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.r / (self.gamma - 1.0)
    }
}

impl GasModel for IdealGas {
    fn pressure(&self, rho: f64, e: f64) -> f64 {
        (self.gamma - 1.0) * rho * e
    }

    fn temperature(&self, _rho: f64, e: f64) -> f64 {
        e / self.cv()
    }

    fn sound_speed(&self, rho: f64, e: f64) -> f64 {
        (self.gamma * self.pressure(rho, e) / rho).max(0.0).sqrt()
    }

    fn energy(&self, rho: f64, p: f64) -> f64 {
        p / ((self.gamma - 1.0) * rho)
    }

    fn gamma_eff(&self, _rho: f64, _e: f64) -> f64 {
        self.gamma
    }

    fn describe(&self) -> String {
        format!("ideal(gamma={:.3},r={:.2})", self.gamma, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gas_roundtrip() {
        let g = IdealGas::air();
        let rho = 1.2;
        let p = 101_325.0;
        let e = g.energy(rho, p);
        assert!((g.pressure(rho, e) - p).abs() < 1e-6 * p);
        let t = g.temperature(rho, e);
        assert!((t - p / (rho * g.r)).abs() < 1e-9 * t);
    }

    #[test]
    fn ideal_gas_sound_speed_sea_level() {
        let g = IdealGas::air();
        let rho = 1.225;
        let e = g.energy(rho, 101_325.0);
        let a = g.sound_speed(rho, e);
        assert!((a - 340.3).abs() < 1.0, "a = {a}");
    }

    #[test]
    fn gamma_eff_matches_gamma() {
        let g = IdealGas::effective_gamma(1.2);
        assert!((g.gamma_eff(1.0, 1e6) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn enthalpy_identity() {
        let g = IdealGas::air();
        let rho = 0.5;
        let e = 3e5;
        let h = g.enthalpy(rho, e);
        assert!((h - (e + g.pressure(rho, e) / rho)).abs() < 1e-9);
        // h = γ e for a perfect gas.
        assert!((h - g.gamma * e).abs() < 1e-6);
    }
}
