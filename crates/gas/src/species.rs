//! Species data for high-temperature planetary-atmosphere gases.
//!
//! Every thermodynamic quantity in this crate is derived from statistical
//! mechanics, so a species is described by its *spectroscopic* data —
//! characteristic rotational/vibrational/electronic temperatures — plus a
//! formation energy at 0 K expressed as a temperature (`theta_f` = E₀/k).
//! This guarantees that equilibrium constants, enthalpies, and specific heats
//! are mutually consistent, which matters when backward reaction rates are
//! computed from equilibrium constants (as the Park kinetics here do).
//!
//! Reference states: N₂, O₂, H₂ molecules at 0 K have `theta_f = 0`;
//! monatomic C uses the 0 K sublimation enthalpy of graphite so that Titan
//! C/H/N chemistry is on a consistent scale. Values follow the compilations
//! used by the CAT codes of the paper's era (Park's two-temperature models,
//! the RASLE/NEQAIR databases) to the accuracy relevant here.

/// Chemical elements tracked for conservation (charge is tracked separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    /// Nitrogen nuclei.
    N,
    /// Oxygen nuclei.
    O,
    /// Carbon nuclei.
    C,
    /// Hydrogen nuclei.
    H,
    /// Helium nuclei (inert at entry temperatures below ~30 000 K).
    He,
    /// Argon (inert, present in trace air models).
    Ar,
}

impl Element {
    /// Every tracked element, in declaration order.
    pub const ALL: [Element; 6] = [
        Element::N,
        Element::O,
        Element::C,
        Element::H,
        Element::He,
        Element::Ar,
    ];

    /// Atomic molar mass \[kg/kmol\] (standard atomic weights; electron-mass
    /// corrections in ionized species are below the conservation tolerances
    /// the auditors use).
    #[must_use]
    pub fn molar_mass(self) -> f64 {
        match self {
            Element::N => 14.0067,
            Element::O => 15.9994,
            Element::C => 12.011,
            Element::H => 1.008,
            Element::He => 4.002_602,
            Element::Ar => 39.948,
        }
    }

    /// Element symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Element::N => "N",
            Element::O => "O",
            Element::C => "C",
            Element::H => "H",
            Element::He => "He",
            Element::Ar => "Ar",
        }
    }
}

/// Rotational structure of a species.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rotation {
    /// Atom or electron: no rotational degrees of freedom.
    None,
    /// Linear molecule: 2 rotational DOF.
    Linear {
        /// Characteristic rotational temperature \[K\].
        theta_r: f64,
        /// Symmetry number.
        sigma: f64,
    },
    /// Nonlinear molecule: 3 rotational DOF.
    Nonlinear {
        /// Geometric mean of the three rotational temperatures \[K\].
        theta_abc: f64,
        /// Symmetry number.
        sigma: f64,
    },
}

/// Viscosity model for a single species.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViscModel {
    /// Blottner curve fit: μ = 0.1·exp[(A·lnT + B)·lnT + C] Pa·s.
    Blottner {
        /// Quadratic log-fit coefficient A.
        a: f64,
        /// Linear log-fit coefficient B.
        b: f64,
        /// Constant log-fit coefficient C.
        c: f64,
    },
    /// Chapman-Enskog kinetic theory with Lennard-Jones parameters.
    LennardJones {
        /// Collision diameter σ \[Å\].
        sigma: f64,
        /// Well depth ε/k \[K\].
        eps_k: f64,
    },
}

/// One chemical species with its spectroscopic and transport data.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Display name, e.g. `"N2"`, `"NO+"`, `"e-"`.
    pub name: &'static str,
    /// Molar mass \[kg/kmol\].
    pub molar_mass: f64,
    /// Charge in units of the elementary charge.
    pub charge: i32,
    /// Formation energy at 0 K divided by k_B \[K\] (per particle), relative
    /// to the reference elements described in the module docs.
    pub theta_f: f64,
    /// Rotational structure.
    pub rot: Rotation,
    /// Vibrational modes: (characteristic temperature \[K\], degeneracy).
    pub vib_modes: Vec<(f64, u32)>,
    /// Electronic levels: (excitation temperature \[K\], degeneracy). The
    /// first entry must be the ground state at 0 K.
    pub electronic: Vec<(f64, u32)>,
    /// Elemental composition: (element, atom count).
    pub elements: Vec<(Element, u32)>,
    /// Species viscosity model.
    pub viscosity: ViscModel,
}

impl Species {
    /// Specific gas constant R_u / M \[J/(kg·K)\].
    #[must_use]
    pub fn gas_constant(&self) -> f64 {
        aerothermo_numerics::constants::R_UNIVERSAL / self.molar_mass
    }

    /// Particle mass \[kg\].
    #[must_use]
    pub fn particle_mass(&self) -> f64 {
        self.molar_mass / aerothermo_numerics::constants::N_AVOGADRO
    }

    /// True for molecules with at least one vibrational mode.
    #[must_use]
    pub fn is_molecule(&self) -> bool {
        !self.vib_modes.is_empty()
    }

    /// Number of atoms of `el` in one particle of this species.
    #[must_use]
    pub fn atoms_of(&self, el: Element) -> u32 {
        self.elements
            .iter()
            .find(|(e, _)| *e == el)
            .map_or(0, |(_, n)| *n)
    }
}

// ---------------------------------------------------------------------------
// Individual species constructors. Public so that custom mixtures can be
// assembled; the standard mixtures below cover the paper's cases.
// ---------------------------------------------------------------------------

/// Molecular nitrogen.
#[must_use]
pub fn n2() -> Species {
    Species {
        name: "N2",
        molar_mass: 28.0134,
        charge: 0,
        theta_f: 0.0,
        rot: Rotation::Linear {
            theta_r: 2.88,
            sigma: 2.0,
        },
        vib_modes: vec![(3393.5, 1)],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::N, 2)],
        viscosity: ViscModel::Blottner {
            a: 0.026_814_2,
            b: 0.317_783_8,
            c: -11.315_551_3,
        },
    }
}

/// Molecular oxygen.
#[must_use]
pub fn o2() -> Species {
    Species {
        name: "O2",
        molar_mass: 31.9988,
        charge: 0,
        theta_f: 0.0,
        rot: Rotation::Linear {
            theta_r: 2.08,
            sigma: 2.0,
        },
        vib_modes: vec![(2273.5, 1)],
        electronic: vec![(0.0, 3), (11_392.0, 2), (18_985.0, 1)],
        elements: vec![(Element::O, 2)],
        viscosity: ViscModel::Blottner {
            a: 0.044_929_0,
            b: -0.082_615_8,
            c: -9.201_947_5,
        },
    }
}

/// Nitric oxide.
#[must_use]
pub fn no() -> Species {
    Species {
        name: "NO",
        molar_mass: 30.0061,
        // E0(N) + E0(O) − D0(NO); D0 taken as 75 500 K (6.50 eV).
        theta_f: 10_850.0,
        charge: 0,
        rot: Rotation::Linear {
            theta_r: 2.45,
            sigma: 1.0,
        },
        vib_modes: vec![(2739.7, 1)],
        electronic: vec![(0.0, 4)],
        elements: vec![(Element::N, 1), (Element::O, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.043_637_8,
            b: -0.033_551_1,
            c: -9.576_743_0,
        },
    }
}

/// Atomic nitrogen. `theta_f` = D0(N₂)/2 with D0 = 113 200 K (9.76 eV).
#[must_use]
pub fn n_atom() -> Species {
    Species {
        name: "N",
        molar_mass: 14.0067,
        charge: 0,
        theta_f: 56_600.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 4), (27_658.0, 10), (41_495.0, 6)],
        elements: vec![(Element::N, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.011_557_2,
            b: 0.603_167_9,
            c: -12.432_749_5,
        },
    }
}

/// Atomic oxygen. `theta_f` = D0(O₂)/2 with D0 = 59 500 K (5.12 eV).
#[must_use]
pub fn o_atom() -> Species {
    Species {
        name: "O",
        molar_mass: 15.9994,
        charge: 0,
        theta_f: 29_750.0,
        rot: Rotation::None,
        vib_modes: vec![],
        // The ³P fine-structure multiplet is lumped into g=9 at zero energy.
        electronic: vec![(0.0, 9), (22_830.0, 5), (48_620.0, 1)],
        elements: vec![(Element::O, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.020_314_4,
            b: 0.429_440_4,
            c: -11.603_140_3,
        },
    }
}

/// Nitrogen ion. `theta_f` = E0(N) + IP(N) (14.53 eV = 168 600 K).
#[must_use]
pub fn n_ion() -> Species {
    Species {
        name: "N+",
        molar_mass: 14.006_151,
        charge: 1,
        theta_f: 225_200.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 9)],
        elements: vec![(Element::N, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.011_557_2,
            b: 0.603_167_9,
            c: -12.432_749_5,
        },
    }
}

/// Oxygen ion. `theta_f` = E0(O) + IP(O) (13.62 eV = 158 500 K).
#[must_use]
pub fn o_ion() -> Species {
    Species {
        name: "O+",
        molar_mass: 15.998_851,
        charge: 1,
        theta_f: 188_250.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 4)],
        elements: vec![(Element::O, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.020_314_4,
            b: 0.429_440_4,
            c: -11.603_140_3,
        },
    }
}

/// Nitric-oxide ion. `theta_f` = E0(NO) + IP(NO) (9.26 eV = 107 500 K).
#[must_use]
pub fn no_ion() -> Species {
    Species {
        name: "NO+",
        molar_mass: 30.005_551,
        charge: 1,
        theta_f: 118_350.0,
        rot: Rotation::Linear {
            theta_r: 2.86,
            sigma: 1.0,
        },
        vib_modes: vec![(3419.0, 1)],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::N, 1), (Element::O, 1)],
        viscosity: ViscModel::Blottner {
            a: 0.043_637_8,
            b: -0.033_551_1,
            c: -9.576_743_0,
        },
    }
}

/// Molecular-nitrogen ion. `theta_f` = IP(N₂) = 15.58 eV = 180 800 K.
/// Its B²Σu⁺ state (3.17 eV) is the upper state of the first-negative band
/// system — the dominant violet radiator in nonequilibrium air.
#[must_use]
pub fn n2_ion() -> Species {
    Species {
        name: "N2+",
        molar_mass: 28.012_851,
        charge: 1,
        theta_f: 180_800.0,
        rot: Rotation::Linear {
            theta_r: 2.80,
            sigma: 2.0,
        },
        vib_modes: vec![(3175.0, 1)],
        electronic: vec![(0.0, 2), (13_190.0, 4), (36_800.0, 2)],
        elements: vec![(Element::N, 2)],
        viscosity: ViscModel::Blottner {
            a: 0.026_814_2,
            b: 0.317_783_8,
            c: -11.315_551_3,
        },
    }
}

/// Molecular-oxygen ion. `theta_f` = IP(O₂) = 12.07 eV = 140 100 K.
#[must_use]
pub fn o2_ion() -> Species {
    Species {
        name: "O2+",
        molar_mass: 31.998_251,
        charge: 1,
        theta_f: 140_100.0,
        rot: Rotation::Linear {
            theta_r: 2.40,
            sigma: 2.0,
        },
        vib_modes: vec![(2741.0, 1)],
        electronic: vec![(0.0, 4)],
        elements: vec![(Element::O, 2)],
        viscosity: ViscModel::Blottner {
            a: 0.044_929_0,
            b: -0.082_615_8,
            c: -9.201_947_5,
        },
    }
}

/// Free electron (g = 2 from spin).
#[must_use]
pub fn electron() -> Species {
    Species {
        name: "e-",
        molar_mass: 5.485_799e-4,
        charge: -1,
        theta_f: 0.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 2)],
        elements: vec![],
        // Electron viscosity is negligible; a tiny LJ cross-section keeps the
        // Wilke mixing rule well-defined.
        viscosity: ViscModel::LennardJones {
            sigma: 1.0,
            eps_k: 10.0,
        },
    }
}

// --- Titan (N2/CH4) atmosphere species -------------------------------------

/// Methane (spherical top, four vibrational modes).
#[must_use]
pub fn ch4() -> Species {
    Species {
        name: "CH4",
        molar_mass: 16.0425,
        charge: 0,
        // ΔHf(0 K) = −66.9 kJ/mol → −8 047 K; consistent with E0(C)+4·E0(H)
        // minus the 0 K atomization energy.
        theta_f: -8_047.0,
        rot: Rotation::Nonlinear {
            theta_abc: 7.54,
            sigma: 12.0,
        },
        vib_modes: vec![(4196.0, 1), (2207.0, 2), (4343.0, 3), (1879.0, 3)],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::C, 1), (Element::H, 4)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.758,
            eps_k: 148.6,
        },
    }
}

/// Cyano radical — the dominant radiator in Titan shock layers (CN violet).
#[must_use]
pub fn cn() -> Species {
    Species {
        name: "CN",
        molar_mass: 26.0174,
        charge: 0,
        // ΔHf(0 K) ≈ 435 kJ/mol → 52 320 K.
        theta_f: 52_320.0,
        rot: Rotation::Linear {
            theta_r: 2.73,
            sigma: 1.0,
        },
        vib_modes: vec![(2976.0, 1)],
        // X²Σ ground, A²Π (1.15 eV), B²Σ (3.19 eV — upper state of the violet
        // system).
        electronic: vec![(0.0, 2), (13_090.0, 4), (37_020.0, 2)],
        elements: vec![(Element::C, 1), (Element::N, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.856,
            eps_k: 75.0,
        },
    }
}

/// Hydrogen cyanide.
#[must_use]
pub fn hcn() -> Species {
    Species {
        name: "HCN",
        molar_mass: 27.0253,
        charge: 0,
        // ΔHf(0 K) ≈ 135 kJ/mol → 16 240 K.
        theta_f: 16_240.0,
        rot: Rotation::Linear {
            theta_r: 2.13,
            sigma: 1.0,
        },
        vib_modes: vec![(4764.0, 1), (1024.0, 2), (3017.0, 1)],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::C, 1), (Element::H, 1), (Element::N, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.63,
            eps_k: 569.0,
        },
    }
}

/// Dicarbon.
#[must_use]
pub fn c2() -> Species {
    Species {
        name: "C2",
        molar_mass: 24.0214,
        charge: 0,
        // ΔHf(0 K) ≈ 820 kJ/mol → 98 680 K.
        theta_f: 98_680.0,
        rot: Rotation::Linear {
            theta_r: 2.61,
            sigma: 2.0,
        },
        vib_modes: vec![(2668.5, 1)],
        electronic: vec![(0.0, 1), (1030.0, 6)],
        elements: vec![(Element::C, 2)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.913,
            eps_k: 78.8,
        },
    }
}

/// Molecular hydrogen.
#[must_use]
pub fn h2() -> Species {
    Species {
        name: "H2",
        molar_mass: 2.01588,
        charge: 0,
        theta_f: 0.0,
        rot: Rotation::Linear {
            theta_r: 87.5,
            sigma: 2.0,
        },
        vib_modes: vec![(6332.0, 1)],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::H, 2)],
        viscosity: ViscModel::LennardJones {
            sigma: 2.827,
            eps_k: 59.7,
        },
    }
}

/// Atomic hydrogen. `theta_f` = D0(H₂)/2 (D0 = 4.478 eV).
#[must_use]
pub fn h_atom() -> Species {
    Species {
        name: "H",
        molar_mass: 1.00794,
        charge: 0,
        theta_f: 25_985.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 2)],
        elements: vec![(Element::H, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 2.708,
            eps_k: 37.0,
        },
    }
}

/// Carbon ion. `theta_f` = E0(C) + IP(C) (11.26 eV = 130 700 K).
#[must_use]
pub fn c_ion() -> Species {
    Species {
        name: "C+",
        molar_mass: 12.010_151,
        charge: 1,
        theta_f: 216_240.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 6)],
        elements: vec![(Element::C, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.385,
            eps_k: 31.0,
        },
    }
}

/// Hydrogen ion (bare proton). `theta_f` = E0(H) + IP(H) (13.60 eV).
#[must_use]
pub fn h_ion() -> Species {
    Species {
        name: "H+",
        molar_mass: 1.007_391,
        charge: 1,
        theta_f: 183_785.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::H, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 2.708,
            eps_k: 37.0,
        },
    }
}

/// Helium (inert monatomic; IP = 24.6 eV keeps it neutral at entry
/// temperatures).
#[must_use]
pub fn helium() -> Species {
    Species {
        name: "He",
        molar_mass: 4.002_602,
        charge: 0,
        theta_f: 0.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 1)],
        elements: vec![(Element::He, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 2.551,
            eps_k: 10.22,
        },
    }
}

/// Atomic carbon (gas phase). `theta_f` from ΔHf(C,g; 0 K) = 711.2 kJ/mol.
#[must_use]
pub fn c_atom() -> Species {
    Species {
        name: "C",
        molar_mass: 12.0107,
        charge: 0,
        theta_f: 85_540.0,
        rot: Rotation::None,
        vib_modes: vec![],
        electronic: vec![(0.0, 9), (14_640.0, 5), (31_060.0, 1)],
        elements: vec![(Element::C, 1)],
        viscosity: ViscModel::LennardJones {
            sigma: 3.385,
            eps_k: 31.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_species_have_consistent_charge_and_elements() {
        for sp in [n2(), o2(), no(), n_atom(), o_atom()] {
            assert_eq!(sp.charge, 0, "{}", sp.name);
        }
        for sp in [n_ion(), o_ion(), no_ion()] {
            assert_eq!(sp.charge, 1, "{}", sp.name);
        }
        assert_eq!(electron().charge, -1);
        assert_eq!(n2().atoms_of(Element::N), 2);
        assert_eq!(no().atoms_of(Element::N), 1);
        assert_eq!(no().atoms_of(Element::O), 1);
        assert_eq!(no().atoms_of(Element::C), 0);
    }

    #[test]
    fn ion_masses_account_for_electron() {
        let dm = n_atom().molar_mass - n_ion().molar_mass;
        assert!((dm - electron().molar_mass).abs() < 1e-6);
    }

    #[test]
    fn formation_energies_energetically_ordered() {
        // Dissociation must cost energy: E0(2N) > E0(N2), etc.
        assert!(2.0 * n_atom().theta_f > n2().theta_f);
        assert!(2.0 * o_atom().theta_f > o2().theta_f);
        assert!(n_atom().theta_f + o_atom().theta_f > no().theta_f);
        // Ionization costs more energy still.
        assert!(n_ion().theta_f > n_atom().theta_f);
        assert!(o_ion().theta_f > o_atom().theta_f);
        assert!(no_ion().theta_f > no().theta_f);
    }

    #[test]
    fn no_dissociation_energy_recovered() {
        // D0(NO) = E0(N) + E0(O) − E0(NO) ≈ 75 500 K.
        let d0 = n_atom().theta_f + o_atom().theta_f - no().theta_f;
        assert!((d0 - 75_500.0).abs() < 1.0);
    }

    #[test]
    fn gas_constants() {
        assert!((n2().gas_constant() - 296.8).abs() < 0.1);
        assert!((o2().gas_constant() - 259.8).abs() < 0.1);
    }

    #[test]
    fn molecule_flag() {
        assert!(n2().is_molecule());
        assert!(ch4().is_molecule());
        assert!(!n_atom().is_molecule());
        assert!(!electron().is_molecule());
    }

    #[test]
    fn titan_species_consistent() {
        // CN formation from atoms must release the CN bond energy (~7.7 eV).
        let d0_cn = c_atom().theta_f + n_atom().theta_f - cn().theta_f;
        assert!(d0_cn > 80_000.0 && d0_cn < 100_000.0, "D0(CN)={d0_cn}");
        // CH4 is bound relative to C + 4H.
        let d_atomization = c_atom().theta_f + 4.0 * h_atom().theta_f - ch4().theta_f;
        assert!(d_atomization > 180_000.0, "CH4 atomization {d_atomization}");
    }
}
