//! General chemical-equilibrium solver (element-potential method).
//!
//! At equilibrium the number density of every species satisfies
//!
//! ```text
//! ln n_s = Σ_e a_es·λ_e  +  q_s·λ_c  +  φ_s(T)
//! ```
//!
//! where `a_es` are element counts, `q_s` the charge, `λ` the element/charge
//! potentials (Lagrange multipliers of the Gibbs minimization), and `φ_s(T)`
//! the concentration potential from the species partition function
//! ([`Species::ln_concentration_potential`]). The solver finds `λ` by damped
//! Newton on scale-invariant residuals (element-abundance ratios, charge
//! neutrality, and a pressure or density closure), all computed with
//! log-sum-exp shifts so that compositions spanning hundreds of orders of
//! magnitude (cold air has n(N⁺)/n(N₂) ~ 1e−300) stay well-conditioned.
//!
//! The same code path serves ionizing air and Titan N₂/CH₄ chemistry — the
//! species set and element abundances are the only inputs.

use crate::error::GasError;
use crate::species::Element;
use crate::thermo::Mixture;
use aerothermo_numerics::constants::K_BOLTZMANN;
use aerothermo_numerics::newton::{newton_solve, NewtonOptions};
use aerothermo_numerics::roots::brent_expanding;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic id source distinguishing [`EquilibriumGas`] instances in the
/// per-thread warm-start cache (clones share the id: same mixture and
/// abundances means cached potentials stay valid).
static NEXT_GAS_ID: AtomicU64 = AtomicU64::new(0);

/// Closure condition for the equilibrium solve.
#[derive(Debug, Clone, Copy)]
enum Closure {
    /// Fixed total pressure \[Pa\].
    Pressure(f64),
    /// Fixed mass density \[kg/m³\].
    Density(f64),
}

/// Per-thread warm-start cache for the element-potential Newton iteration.
///
/// Successive equilibrium solves along a table row, a Brent inversion, or a
/// body streamline differ by a few percent in `(T, closure)`; the converged
/// potentials `λ` of the previous solve are then an excellent Newton seed
/// that skips the 40-sweep fixed-point pre-balance entirely. Each entry
/// stores the gas identity, closure kind, `ln T`, `ln` of the closure value
/// (`p` or `ρ`), and the converged `λ`. A lookup accepts the nearest entry
/// inside the quantization window ([`warm_cache::LN_T_WINDOW`] ×
/// [`warm_cache::LN_V_WINDOW`] in ln-space); a state jumping outside the
/// window bypasses the cache and takes the cold start.
///
/// The cache is `thread_local`, so rayon workers never contend nor share
/// seeds — results stay deterministic for a fixed thread count, and the
/// cold-start fallback guards robustness when a warm seed fails to
/// converge.
mod warm_cache {
    use std::cell::RefCell;

    /// Entries kept per thread (small: a lookup is a linear scan that must
    /// stay negligible next to a ~10 µs solve).
    const CAPACITY: usize = 16;
    /// Quantization window in `ln T`: seeds farther than this in
    /// temperature are stale enough that the cold start wins.
    pub(super) const LN_T_WINDOW: f64 = 0.08;
    /// Quantization window in `ln p` / `ln ρ`.
    pub(super) const LN_V_WINDOW: f64 = 0.5;

    struct Entry {
        gas_id: u64,
        kind: u8,
        ln_t: f64,
        ln_v: f64,
        lambda: Vec<f64>,
    }

    /// Hit/miss totals for the current thread only (tests use these:
    /// unlike the global telemetry counters they cannot be polluted by
    /// concurrently running tests).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub(super) struct ThreadStats {
        /// Lookups that found a seed inside the window on this thread.
        pub hits: u64,
        /// Lookups that found no usable seed on this thread.
        pub misses: u64,
    }

    thread_local! {
        static CACHE: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
        static STATS: RefCell<ThreadStats> = const { RefCell::new(ThreadStats { hits: 0, misses: 0 }) };
    }

    /// Nearest cached potentials inside the quantization window, updating
    /// hit/miss telemetry (global counters and per-thread stats).
    pub(super) fn lookup(gas_id: u64, kind: u8, ln_t: f64, ln_v: f64) -> Option<Vec<f64>> {
        use aerothermo_numerics::telemetry::{counters, Counter};
        let found = CACHE.with(|c| {
            let cache = c.borrow();
            cache
                .iter()
                .filter(|e| {
                    e.gas_id == gas_id
                        && e.kind == kind
                        && (e.ln_t - ln_t).abs() <= LN_T_WINDOW
                        && (e.ln_v - ln_v).abs() <= LN_V_WINDOW
                })
                .min_by(|a, b| {
                    let da = (a.ln_t - ln_t).abs() + (a.ln_v - ln_v).abs();
                    let db = (b.ln_t - ln_t).abs() + (b.ln_v - ln_v).abs();
                    da.total_cmp(&db)
                })
                .map(|e| e.lambda.clone())
        });
        STATS.with(|s| {
            let mut st = s.borrow_mut();
            if found.is_some() {
                st.hits += 1;
            } else {
                st.misses += 1;
            }
        });
        counters::add(
            if found.is_some() {
                Counter::EquilibriumCacheHits
            } else {
                Counter::EquilibriumCacheMisses
            },
            1,
        );
        found
    }

    /// Record converged potentials, replacing any entry already inside the
    /// window (most-recent-first eviction beyond [`CAPACITY`]).
    pub(super) fn store(gas_id: u64, kind: u8, ln_t: f64, ln_v: f64, lambda: &[f64]) {
        CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if let Some(pos) = cache.iter().position(|e| {
                e.gas_id == gas_id
                    && e.kind == kind
                    && (e.ln_t - ln_t).abs() <= LN_T_WINDOW
                    && (e.ln_v - ln_v).abs() <= LN_V_WINDOW
            }) {
                cache.remove(pos);
            }
            cache.insert(
                0,
                Entry {
                    gas_id,
                    kind,
                    ln_t,
                    ln_v,
                    lambda: lambda.to_vec(),
                },
            );
            cache.truncate(CAPACITY);
        });
    }

    /// Current thread's hit/miss totals.
    #[cfg(test)]
    pub(super) fn thread_stats() -> ThreadStats {
        STATS.with(|s| *s.borrow())
    }

    /// Drop this thread's entries and zero its stats.
    pub(super) fn clear_thread() {
        CACHE.with(|c| c.borrow_mut().clear());
        STATS.with(|s| *s.borrow_mut() = ThreadStats::default());
    }
}

/// Drop the calling thread's warm-start cache entries.
///
/// The cache makes successive solves *on one thread* seed each other, so
/// a solve's converged-to-tolerance result can depend on what ran on the
/// thread before it. Batch executors that promise per-case determinism
/// regardless of scheduling (the sweep engine's worker pool) call this at
/// every case boundary so each case starts from the cold-start seed no
/// matter which worker it landed on or what that worker ran previously.
pub fn reset_thread_warm_cache() {
    warm_cache::clear_thread();
}

/// Reusable buffers for the equilibrium solve. The damped-Newton residual
/// is evaluated `O(n_unknowns × iterations)` times per state, and each
/// evaluation previously allocated three short-lived vectors (`ln n`, the
/// log-sum-exp weights, and the per-element nuclei sums); hoisting them
/// into a scratch that lives for a whole solve — or a whole
/// [`EquilibriumGas::at_trho_batch`] — removes the malloc traffic from the
/// innermost loop without changing any arithmetic.
#[derive(Debug, Default)]
struct SolveScratch {
    /// `ln n_s` work vector.
    lnn: Vec<f64>,
    /// Shifted weights `exp(ln n_s − m)`.
    w: Vec<f64>,
    /// Per-element shifted nuclei sums.
    nel: Vec<f64>,
    /// Concentration potentials φ_s(T) for the solve temperature.
    phi: Vec<f64>,
}

/// Reusable scratch for the allocation-free `_into` solve entries
/// ([`EquilibriumGas::at_tp_into`], [`EquilibriumGas::at_trho_into`]).
///
/// Holding one of these (plus a reused [`EqState`]) across a sweep of
/// solves keeps the hot path free of per-call heap traffic: the Newton
/// work buffers, the potential vector, and the composition arrays are all
/// grown once and reused.
#[derive(Debug, Default)]
pub struct EqSolveScratch {
    inner: SolveScratch,
}

/// Result of an equilibrium-composition solve.
#[derive(Debug, Clone)]
pub struct EqState {
    /// Temperature \[K\].
    pub temperature: f64,
    /// Pressure \[Pa\].
    pub pressure: f64,
    /// Density \[kg/m³\].
    pub density: f64,
    /// Species number densities \[1/m³\], mixture order.
    pub number_densities: Vec<f64>,
    /// Species mass fractions, mixture order.
    pub mass_fractions: Vec<f64>,
    /// Species mole fractions, mixture order.
    pub mole_fractions: Vec<f64>,
    /// Mixture internal energy \[J/kg\] including formation energies.
    pub energy: f64,
    /// Mixture enthalpy \[J/kg\].
    pub enthalpy: f64,
    /// Mixture molar mass \[kg/kmol\].
    pub molar_mass: f64,
}

impl EqState {
    /// An empty state to be filled by the `_into` solve entries
    /// ([`EquilibriumGas::at_tp_into`] and friends). The composition
    /// vectors start empty and are sized by the first solve; reusing the
    /// same state across a sweep then performs no further allocation.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            temperature: 0.0,
            pressure: 0.0,
            density: 0.0,
            number_densities: Vec::new(),
            mass_fractions: Vec::new(),
            mole_fractions: Vec::new(),
            energy: 0.0,
            enthalpy: 0.0,
            molar_mass: 0.0,
        }
    }
}

/// Equilibrium-gas model: a mixture plus fixed elemental abundances.
#[derive(Debug, Clone)]
pub struct EquilibriumGas {
    mix: Mixture,
    /// Elements present, in solver order.
    elements: Vec<Element>,
    /// Relative nuclei abundances `b_e` (same order as `elements`).
    abundances: Vec<f64>,
    /// `a[e * ns + s]`: atoms of element `e` in species `s`.
    a: Vec<f64>,
    /// Species charges.
    q: Vec<f64>,
    /// Whether any species is charged (enables the λ_c unknown).
    has_charge: bool,
    /// Cache identity (see [`NEXT_GAS_ID`]).
    id: u64,
}

impl EquilibriumGas {
    /// Build a solver for `mix` with elemental abundances `abundances`
    /// (relative nuclei mole numbers; they need not be normalized).
    ///
    /// # Panics
    /// Panics if an element with positive abundance appears in no species, or
    /// if a species contains an element with no declared abundance.
    #[must_use]
    pub fn new(mix: Mixture, abundances: &[(Element, f64)]) -> Self {
        let elements: Vec<Element> = abundances.iter().map(|(e, _)| *e).collect();
        let b: Vec<f64> = abundances.iter().map(|(_, v)| *v).collect();
        assert!(b.iter().all(|v| *v > 0.0), "abundances must be positive");
        let ns = mix.len();
        let ne = elements.len();
        let mut a = vec![0.0; ne * ns];
        for (s, sp) in mix.species().iter().enumerate() {
            for (el, count) in &sp.elements {
                let e = elements.iter().position(|x| x == el).unwrap_or_else(|| {
                    panic!("species {} has element {el:?} with no abundance", sp.name)
                });
                a[e * ns + s] = f64::from(*count);
            }
        }
        for (e, el) in elements.iter().enumerate() {
            assert!(
                (0..ns).any(|s| a[e * ns + s] > 0.0),
                "element {el:?} appears in no species"
            );
        }
        let q: Vec<f64> = mix.species().iter().map(|s| f64::from(s.charge)).collect();
        let has_charge = q.iter().any(|v| *v != 0.0);
        Self {
            mix,
            elements,
            abundances: b,
            a,
            q,
            has_charge,
            id: NEXT_GAS_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The underlying mixture.
    #[must_use]
    pub fn mixture(&self) -> &Mixture {
        &self.mix
    }

    /// The element list, in solver order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Elemental mass fractions implied by the abundances (useful to build a
    /// consistent cold-gas composition).
    #[must_use]
    pub fn abundances(&self) -> Vec<(Element, f64)> {
        self.elements
            .iter()
            .copied()
            .zip(self.abundances.iter().copied())
            .collect()
    }

    fn n_unknowns(&self) -> usize {
        self.elements.len() + usize::from(self.has_charge)
    }

    /// ln n_s for the current potentials.
    fn ln_n(&self, lambda: &[f64], phi: &[f64], out: &mut [f64]) {
        let ns = self.mix.len();
        let ne = self.elements.len();
        for s in 0..ns {
            let mut v = phi[s];
            for e in 0..ne {
                v += self.a[e * ns + s] * lambda[e];
            }
            if self.has_charge {
                v += self.q[s] * lambda[ne];
            }
            // No tight clamp here: the residuals use log-sum-exp shifts, so
            // extreme magnitudes are safe, and clamping would zero the
            // Jacobian rows of trace species. The wide guard only protects
            // against runaway Newton steps.
            out[s] = v.clamp(-1e6, 1e6);
        }
    }

    /// Scale-invariant residual vector; see module docs. `scr` supplies the
    /// work buffers (fully rewritten every call, so reuse is free of
    /// cross-call state).
    fn residual(
        &self,
        lambda: &[f64],
        phi: &[f64],
        t: f64,
        closure: Closure,
        res: &mut [f64],
        scr: &mut SolveScratch,
    ) {
        let ns = self.mix.len();
        let ne = self.elements.len();
        let SolveScratch { lnn, w, nel, .. } = scr;
        lnn.resize(ns, 0.0);
        self.ln_n(lambda, phi, lnn);

        // Global shift for log-sum-exp.
        let m = lnn.iter().fold(f64::NEG_INFINITY, |acc, &v| acc.max(v));
        w.clear();
        w.extend(lnn.iter().map(|&v| (v - m).exp()));

        // Element nuclei sums (shifted).
        nel.clear();
        nel.extend((0..ne).map(|e| (0..ns).map(|s| self.a[e * ns + s] * w[s]).sum::<f64>()));

        // Element-ratio residuals relative to element 0.
        let b = &self.abundances;
        for e in 1..ne {
            let num = nel[e] * b[0] - nel[0] * b[e];
            let den = nel[e] * b[0] + nel[0] * b[e] + 1e-300;
            res[e - 1] = num / den;
        }

        // Closure: pressure or density, in log form.
        let total_shifted: f64 = w.iter().sum();
        let closure_res = match closure {
            Closure::Pressure(p) => m + total_shifted.ln() + (K_BOLTZMANN * t).ln() - p.ln(),
            Closure::Density(rho) => {
                let mass_shifted: f64 = self
                    .mix
                    .species()
                    .iter()
                    .zip(w.iter())
                    .map(|(sp, wi)| sp.particle_mass() * wi)
                    .sum();
                m + mass_shifted.ln() - rho.ln()
            }
        };
        res[ne - 1] = closure_res;

        // Charge neutrality with its own shift over charged species.
        if self.has_charge {
            let mc = lnn
                .iter()
                .zip(&self.q)
                .filter(|(_, q)| **q != 0.0)
                .fold(f64::NEG_INFINITY, |acc, (&v, _)| acc.max(v));
            let mut num = 0.0;
            let mut den = 1e-300;
            for s in 0..ns {
                if self.q[s] != 0.0 {
                    let ws = (lnn[s] - mc).exp();
                    num += self.q[s] * ws;
                    den += self.q[s].abs() * ws;
                }
            }
            res[ne] = num / den;
        }
    }

    /// Initial potentials: place each element's nuclei at a plausible total
    /// density, as if fully atomized.
    fn initial_lambda(&self, phi: &[f64], t: f64, closure: Closure) -> Vec<f64> {
        let n_guess = match closure {
            Closure::Pressure(p) => p / (K_BOLTZMANN * t),
            Closure::Density(rho) => {
                // Use a nominal 20 kg/kmol molar mass for the guess.
                rho / (20.0 / aerothermo_numerics::constants::N_AVOGADRO)
            }
        }
        .max(1e5);
        let ln_target = n_guess.ln();
        let ns = self.mix.len();
        let ne = self.elements.len();
        let mut lambda = vec![0.0; self.n_unknowns()];
        for e in 0..ne {
            // Pick the species of this element with the fewest atoms of it
            // (prefer the monatomic carrier) to anchor the potential.
            let mut best: Option<(f64, f64)> = None; // (atoms, phi)
            for s in 0..ns {
                let aes = self.a[e * ns + s];
                if aes > 0.0 && self.q[s] == 0.0 {
                    let cand = (aes, phi[s]);
                    best = Some(match best {
                        None => cand,
                        Some(cur) if cand.0 < cur.0 => cand,
                        Some(cur) => cur,
                    });
                }
            }
            if let Some((aes, ph)) = best {
                lambda[e] = (ln_target - ph) / aes;
            }
        }
        // Fixed-point pre-balance: repeatedly nudge each element potential so
        // that its nuclei count matches the target, and center the charge
        // potential between the dominant cation and anion. This is slow but
        // extremely robust (each ln N_e is monotone in λ_e), and leaves
        // Newton with an O(1) residual instead of an O(100) one.
        let ns = self.mix.len();
        let ne = self.elements.len();
        let b_total: f64 = self.abundances.iter().sum();
        let ln_nuclei_target = (2.0 * n_guess).ln();
        let mut lnn = vec![0.0; ns];
        let mut w = vec![0.0; ns];
        for _sweep in 0..40 {
            self.ln_n(&lambda, phi, &mut lnn);
            let m = lnn.iter().fold(f64::NEG_INFINITY, |acc, &v| acc.max(v));
            for (wi, &v) in w.iter_mut().zip(lnn.iter()) {
                *wi = (v - m).exp();
            }
            for e in 0..ne {
                let s1: f64 = (0..ns).map(|s| self.a[e * ns + s] * w[s]).sum();
                let s2: f64 = (0..ns)
                    .map(|s| self.a[e * ns + s] * self.a[e * ns + s] * w[s])
                    .sum();
                if s1 <= 0.0 {
                    continue;
                }
                let ln_ne_cur = m + s1.ln();
                let abar = (s2 / s1).max(1.0);
                let target = ln_nuclei_target + (self.abundances[e] / b_total).ln();
                lambda[e] += 0.9 * (target - ln_ne_cur) / abar;
            }
            if self.has_charge {
                self.ln_n(&lambda, phi, &mut lnn);
                let mut max_cat = f64::NEG_INFINITY;
                let mut max_an = f64::NEG_INFINITY;
                for s in 0..ns {
                    if self.q[s] > 0.0 {
                        max_cat = max_cat.max(lnn[s] / self.q[s]);
                    } else if self.q[s] < 0.0 {
                        max_an = max_an.max(lnn[s] / (-self.q[s]));
                    }
                }
                if max_cat.is_finite() && max_an.is_finite() {
                    lambda[ne] += 0.5 * (max_an - max_cat);
                }
            }
        }
        lambda
    }

    /// One damped-Newton attempt on the potentials. When the charged species
    /// are numerically irrelevant at this temperature (their largest ln n is
    /// hundreds of units below the neutrals'), the charge potential is held
    /// at its pre-balanced value and excluded from the unknowns — its
    /// residual row would otherwise be flat to machine precision and drive
    /// the iteration off a cliff.
    fn newton_attempt(
        &self,
        lambda: &mut [f64],
        phi: &[f64],
        t: f64,
        closure: Closure,
        opts: &NewtonOptions,
        scr: &mut SolveScratch,
    ) -> Result<(), aerothermo_numerics::newton::NewtonError> {
        let ne = self.elements.len();
        let ns = self.mix.len();
        let freeze_charge = self.has_charge && {
            scr.lnn.resize(ns, 0.0);
            self.ln_n(lambda, phi, &mut scr.lnn);
            let m_all = scr.lnn.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v));
            let m_ch = scr
                .lnn
                .iter()
                .zip(&self.q)
                .filter(|(_, q)| **q != 0.0)
                .fold(f64::NEG_INFINITY, |a, (&v, _)| a.max(v));
            m_ch < m_all - 150.0
        };
        if freeze_charge {
            let lam_c = lambda[ne];
            let mut x = lambda[..ne].to_vec();
            // Hoisted out of the closure: both are fully rewritten per
            // residual evaluation.
            let mut full = vec![0.0; ne + 1];
            let mut rf = vec![0.0; ne + 1];
            let result = newton_solve(
                |x, f| {
                    full[..ne].copy_from_slice(x);
                    full[ne] = lam_c;
                    self.residual(&full, phi, t, closure, &mut rf, scr);
                    f.copy_from_slice(&rf[..ne]);
                },
                &mut x,
                opts,
            );
            lambda[..ne].copy_from_slice(&x);
            result.map(|_| ())
        } else {
            newton_solve(
                |x, f| self.residual(x, phi, t, closure, f, scr),
                lambda,
                opts,
            )
            .map(|_| ())
        }
    }

    fn solve(&self, t: f64, closure: Closure) -> Result<EqState, GasError> {
        let mut scratch = SolveScratch::default();
        self.solve_with(t, closure, &mut scratch)
    }

    fn solve_with(
        &self,
        t: f64,
        closure: Closure,
        scratch: &mut SolveScratch,
    ) -> Result<EqState, GasError> {
        let mut out = EqState::empty();
        self.solve_into(t, closure, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free core of every equilibrium solve: writes the state
    /// into `out`, reusing its composition vectors and the scratch's work
    /// buffers. All arithmetic is identical (expression for expression) to
    /// the historical allocating path, so results are bitwise unchanged.
    fn solve_into(
        &self,
        t: f64,
        closure: Closure,
        scratch: &mut SolveScratch,
        out: &mut EqState,
    ) -> Result<(), GasError> {
        aerothermo_numerics::telemetry::counters::add(
            aerothermo_numerics::telemetry::Counter::EquilibriumStates,
            1,
        );
        let _sp = aerothermo_numerics::trace::span("equilibrium_state");
        let _mt = aerothermo_numerics::metrics::time(
            aerothermo_numerics::metrics::Timer::EquilibriumNewton,
        );
        let ns = self.mix.len();
        // Borrow-juggle the φ buffer out of the scratch so the scratch can
        // still be lent to the Newton attempts below.
        let mut phi = std::mem::take(&mut scratch.phi);
        phi.clear();
        phi.extend(
            self.mix
                .species()
                .iter()
                .map(|s| s.ln_concentration_potential(t)),
        );

        // The scale-free residuals make 1e-9 ample for composition work;
        // rank-deficient trace-species directions can stall the last decades
        // of a tighter tolerance (the newton solver also accepts 100× the
        // tolerance as "unconverged but usable").
        let opts = NewtonOptions {
            tol: 1e-9,
            max_iter: 200,
            fd_eps: 1e-7,
            min_lambda: 1e-6,
        };
        let (kind, ln_v) = match closure {
            Closure::Pressure(p) => (0u8, p.ln()),
            Closure::Density(rho) => (1u8, rho.ln()),
        };
        let ln_t = t.ln();
        let mut lambda;
        let mut attempt;
        match warm_cache::lookup(self.id, kind, ln_t, ln_v) {
            Some(seed) if seed.len() == self.n_unknowns() => {
                aerothermo_numerics::telemetry::counters::add(
                    aerothermo_numerics::telemetry::Counter::NewtonWarmStarts,
                    1,
                );
                lambda = seed;
                // A good warm seed converges in a handful of iterations;
                // give it a short budget so a stale seed costs little
                // before the cold-start fallback.
                let warm_opts = NewtonOptions {
                    max_iter: 25,
                    ..opts
                };
                attempt = self.newton_attempt(&mut lambda, &phi, t, closure, &warm_opts, scratch);
                if attempt.is_err() {
                    // Stale warm seed: fall back to the cold start before
                    // reaching for the continuation ladders.
                    lambda = self.initial_lambda(&phi, t, closure);
                    attempt = self.newton_attempt(&mut lambda, &phi, t, closure, &opts, scratch);
                }
            }
            _ => {
                lambda = self.initial_lambda(&phi, t, closure);
                attempt = self.newton_attempt(&mut lambda, &phi, t, closure, &opts, scratch);
            }
        }
        if attempt.is_err() {
            // Continuation fallback: walk down from a hot, fully atomized
            // state — where the atom-anchored initial guess is excellent —
            // to the target temperature, warm-starting each step.
            let mut tc = (t * 4.0).max(15_000.0);
            let phic: Vec<f64> = self
                .mix
                .species()
                .iter()
                .map(|s| s.ln_concentration_potential(tc))
                .collect();
            lambda = self.initial_lambda(&phic, tc, closure);
            while tc > t * 1.0001 {
                let phis: Vec<f64> = self
                    .mix
                    .species()
                    .iter()
                    .map(|s| s.ln_concentration_potential(tc))
                    .collect();
                let _ = self.newton_attempt(&mut lambda, &phis, tc, closure, &opts, scratch);
                tc = (tc * 0.85).max(t);
            }
            attempt = self.newton_attempt(&mut lambda, &phi, t, closure, &opts, scratch);
        }
        if attempt.is_err() {
            // Second, slower continuation (finer temperature steps) for the
            // hard corners: very cold polyatomic mixtures.
            let mut tc = (t * 8.0).max(20_000.0);
            let phic: Vec<f64> = self
                .mix
                .species()
                .iter()
                .map(|s| s.ln_concentration_potential(tc))
                .collect();
            lambda = self.initial_lambda(&phic, tc, closure);
            while tc > t * 1.0001 {
                let phis: Vec<f64> = self
                    .mix
                    .species()
                    .iter()
                    .map(|s| s.ln_concentration_potential(tc))
                    .collect();
                let _ = self.newton_attempt(&mut lambda, &phis, tc, closure, &opts, scratch);
                tc = (tc * 0.93).max(t);
            }
            attempt = self.newton_attempt(&mut lambda, &phi, t, closure, &opts, scratch);
        }
        if let Err(e) = attempt {
            scratch.phi = phi;
            return Err(GasError::EquilibriumNotConverged {
                temperature: t,
                detail: e.to_string(),
            });
        }
        warm_cache::store(self.id, kind, ln_t, ln_v, &lambda);

        scratch.lnn.resize(ns, 0.0);
        self.ln_n(&lambda, &phi, &mut scratch.lnn);
        scratch.phi = phi;
        let n = &mut out.number_densities;
        n.clear();
        n.extend(scratch.lnn.iter().map(|v| v.exp()));
        let rho: f64 = self
            .mix
            .species()
            .iter()
            .zip(n.iter())
            .map(|(sp, ni)| sp.particle_mass() * ni)
            .sum();
        let ntot: f64 = n.iter().sum();
        let p = ntot * K_BOLTZMANN * t;
        let y = &mut out.mass_fractions;
        y.clear();
        y.extend(
            self.mix
                .species()
                .iter()
                .zip(out.number_densities.iter())
                .map(|(sp, ni)| sp.particle_mass() * ni / rho),
        );
        let x = &mut out.mole_fractions;
        x.clear();
        x.extend(out.number_densities.iter().map(|ni| ni / ntot));
        let e = self.mix.e_total(t, &out.mass_fractions);
        let h = e + p / rho;
        let mbar = rho / ntot * aerothermo_numerics::constants::N_AVOGADRO;
        out.temperature = t;
        out.pressure = p;
        out.density = rho;
        out.energy = e;
        out.enthalpy = h;
        out.molar_mass = mbar;
        Ok(())
    }

    /// Equilibrium composition at fixed temperature and pressure.
    ///
    /// # Errors
    /// [`GasError::EquilibriumNotConverged`] when the Newton iteration
    /// cannot converge.
    pub fn at_tp(&self, t: f64, p: f64) -> Result<EqState, GasError> {
        self.solve(t, Closure::Pressure(p))
    }

    /// Equilibrium composition at fixed temperature and density.
    ///
    /// # Errors
    /// [`GasError::EquilibriumNotConverged`] when the Newton iteration
    /// cannot converge.
    pub fn at_trho(&self, t: f64, rho: f64) -> Result<EqState, GasError> {
        self.solve(t, Closure::Density(rho))
    }

    /// Allocation-free [`EquilibriumGas::at_tp`]: writes the state into
    /// `out`, reusing its composition vectors and the caller-held scratch.
    /// Results are bitwise identical to [`EquilibriumGas::at_tp`] — the
    /// arithmetic is shared; only the buffer ownership differs.
    ///
    /// # Errors
    /// Same as [`EquilibriumGas::at_tp`].
    pub fn at_tp_into(
        &self,
        t: f64,
        p: f64,
        scratch: &mut EqSolveScratch,
        out: &mut EqState,
    ) -> Result<(), GasError> {
        self.solve_into(t, Closure::Pressure(p), &mut scratch.inner, out)
    }

    /// Allocation-free [`EquilibriumGas::at_trho`]; see
    /// [`EquilibriumGas::at_tp_into`].
    ///
    /// # Errors
    /// Same as [`EquilibriumGas::at_trho`].
    pub fn at_trho_into(
        &self,
        t: f64,
        rho: f64,
        scratch: &mut EqSolveScratch,
        out: &mut EqState,
    ) -> Result<(), GasError> {
        self.solve_into(t, Closure::Density(rho), &mut scratch.inner, out)
    }

    /// Micro-batched [`EquilibriumGas::at_trho`]: solve a slice of
    /// `(T, ρ)` states in chunks of up to four lanes, sharing one scratch
    /// allocation and one `equilibrium_batch` tracing span per chunk.
    ///
    /// Lanes are processed *sequentially* with the exact per-lane
    /// warm-cache protocol (lookup → solve → store), so every returned
    /// state is bitwise identical to the corresponding individual
    /// [`EquilibriumGas::at_trho`] call made in the same order on the same
    /// thread — the speedup comes from hoisting the Newton residual's
    /// work buffers across the whole batch and amortizing the telemetry,
    /// not from changing the iteration. Ordering the slice along a sweep
    /// (a table row, a streamline) additionally makes each lane the next
    /// lane's warm seed.
    pub fn at_trho_batch(&self, states: &[(f64, f64)]) -> Vec<Result<EqState, GasError>> {
        use aerothermo_numerics::telemetry::{counters, Counter};
        let mut out = Vec::with_capacity(states.len());
        let mut scratch = SolveScratch::default();
        for chunk in states.chunks(4) {
            counters::add(Counter::EquilibriumBatches, 1);
            counters::add(Counter::EquilibriumBatchStates, chunk.len() as u64);
            counters::add(
                match chunk.len() {
                    1 => Counter::EquilibriumBatchLanes1,
                    2 => Counter::EquilibriumBatchLanes2,
                    3 => Counter::EquilibriumBatchLanes3,
                    _ => Counter::EquilibriumBatchLanes4,
                },
                1,
            );
            let _sp = aerothermo_numerics::trace::span("equilibrium_batch");
            for &(t, rho) in chunk {
                out.push(self.solve_with(t, Closure::Density(rho), &mut scratch));
            }
        }
        out
    }

    /// Equilibrium state at fixed density and specific internal energy
    /// (including formation energies, same reference as
    /// [`Mixture::e_total`]). This is the EOS call a conservative flow solver
    /// makes every step; the table in [`crate::eq_table`] caches it.
    ///
    /// # Errors
    /// [`GasError::InversionFailed`] when no temperature in
    /// \[50 K, 100 000 K\] matches `e`.
    pub fn at_rho_e(&self, rho: f64, e: f64) -> Result<EqState, GasError> {
        let f = |t: f64| -> f64 {
            match self.solve(t, Closure::Density(rho)) {
                Ok(st) => st.energy - e,
                Err(_) => f64::NAN,
            }
        };
        let t = brent_expanding(f, 2000.0, 1500.0, 60.0, 90_000.0, 1e-4, 60).map_err(|err| {
            GasError::InversionFailed {
                context: format!("at_rho_e(rho={rho:.3e}, e={e:.3e})"),
                detail: err.to_string(),
            }
        })?;
        self.solve(t, Closure::Density(rho))
    }

    /// Equilibrium state at fixed pressure and enthalpy (used by
    /// stagnation-point analyses).
    ///
    /// # Errors
    /// [`GasError::InversionFailed`] when no temperature in range
    /// matches `h`.
    pub fn at_ph(&self, p: f64, h: f64) -> Result<EqState, GasError> {
        let f = |t: f64| -> f64 {
            match self.solve(t, Closure::Pressure(p)) {
                Ok(st) => st.enthalpy - h,
                Err(_) => f64::NAN,
            }
        };
        let t = brent_expanding(f, 2000.0, 1500.0, 60.0, 90_000.0, 1e-4, 60).map_err(|err| {
            GasError::InversionFailed {
                context: format!("at_ph(p={p:.3e}, h={h:.3e})"),
                detail: err.to_string(),
            }
        })?;
        self.solve(t, Closure::Pressure(p))
    }
}

impl crate::model::GasModel for EquilibriumGas {
    /// Direct (untabulated) equilibrium EOS. Each call runs the Newton
    /// solver — use [`crate::eq_table::EqTable`] inside flow solvers; this
    /// impl is for one-off jump/stagnation calculations where exactness
    /// beats speed.
    fn pressure(&self, rho: f64, e: f64) -> f64 {
        self.at_rho_e(rho, e).map_or(0.4 * rho * e, |s| s.pressure)
    }

    fn temperature(&self, rho: f64, e: f64) -> f64 {
        self.at_rho_e(rho, e).map_or(300.0, |s| s.temperature)
    }

    fn sound_speed(&self, rho: f64, e: f64) -> f64 {
        // Equilibrium sound speed from a² = ∂p/∂ρ|e + (p/ρ²)·∂p/∂e|ρ by
        // central differences on the exact solver.
        let p0 = crate::model::GasModel::pressure(self, rho, e);
        let dr = 1e-4 * rho;
        let de = 1e-4 * e.abs().max(1e4);
        let dp_drho = (crate::model::GasModel::pressure(self, rho + dr, e)
            - crate::model::GasModel::pressure(self, rho - dr, e))
            / (2.0 * dr);
        let dp_de = (crate::model::GasModel::pressure(self, rho, e + de)
            - crate::model::GasModel::pressure(self, rho, e - de))
            / (2.0 * de);
        (dp_drho + p0 / (rho * rho) * dp_de).max(1e3).sqrt()
    }

    fn energy(&self, rho: f64, p: f64) -> f64 {
        // Invert p(ρ, e) via the temperature parameterization: solve
        // p_eq(T, ρ) = p, then return e(T, ρ).
        let t = aerothermo_numerics::roots::brent_expanding(
            |t| self.at_trho(t, rho).map_or(f64::NAN, |s| s.pressure - p),
            2000.0,
            1500.0,
            60.0,
            90_000.0,
            1e-4,
            60,
        )
        .unwrap_or(300.0);
        self.at_trho(t, rho).map_or(2.5 * p / rho, |s| s.energy)
    }
}

/// Standard 9-species ionizing-air equilibrium gas (N₂, O₂, NO, N, O, N⁺,
/// O⁺, NO⁺, e⁻) with N:O nuclei ratio 3.76:1.
///
/// ```
/// let air = aerothermo_gas::air9_equilibrium();
/// // Post-shock shuttle-entry conditions: strongly dissociated oxygen.
/// let state = air.at_tp(6000.0, 10_000.0).unwrap();
/// let i_o2 = air.mixture().index_of("O2").unwrap();
/// let i_o = air.mixture().index_of("O").unwrap();
/// assert!(state.mole_fractions[i_o] > state.mole_fractions[i_o2]);
/// ```
#[must_use]
pub fn air9_equilibrium() -> EquilibriumGas {
    use crate::species as sp;
    let mix = Mixture::new(vec![
        sp::n2(),
        sp::o2(),
        sp::no(),
        sp::n_atom(),
        sp::o_atom(),
        sp::n_ion(),
        sp::o_ion(),
        sp::no_ion(),
        sp::electron(),
    ]);
    EquilibriumGas::new(mix, &[(Element::N, 3.76), (Element::O, 1.0)])
}

/// 11-species ionizing air: the 9-species set plus N₂⁺ and O₂⁺ (the
/// molecular ions needed by nonequilibrium radiation — N₂⁺ first negative is
/// the dominant violet emitter).
#[must_use]
pub fn air11_equilibrium() -> EquilibriumGas {
    use crate::species as sp;
    let mix = Mixture::new(vec![
        sp::n2(),
        sp::o2(),
        sp::no(),
        sp::n_atom(),
        sp::o_atom(),
        sp::n_ion(),
        sp::o_ion(),
        sp::no_ion(),
        sp::n2_ion(),
        sp::o2_ion(),
        sp::electron(),
    ]);
    EquilibriumGas::new(mix, &[(Element::N, 3.76), (Element::O, 1.0)])
}

/// 5-species neutral air (adequate below ~9000 K, cheaper).
#[must_use]
pub fn air5_equilibrium() -> EquilibriumGas {
    use crate::species as sp;
    let mix = Mixture::new(vec![
        sp::n2(),
        sp::o2(),
        sp::no(),
        sp::n_atom(),
        sp::o_atom(),
    ]);
    EquilibriumGas::new(mix, &[(Element::N, 3.76), (Element::O, 1.0)])
}

/// Jupiter-atmosphere gas (Galileo class): H₂/He with dissociation and
/// hydrogen ionization — the working fluid of the paper's HYVIS/RASLE/COLTS
/// probe analyses. `he_mole_fraction` ≈ 0.11 for Jupiter.
#[must_use]
pub fn jupiter_equilibrium(he_mole_fraction: f64) -> EquilibriumGas {
    use crate::species as sp;
    let mix = Mixture::new(vec![
        sp::h2(),
        sp::h_atom(),
        sp::h_ion(),
        sp::helium(),
        sp::electron(),
    ]);
    let xh2 = 1.0 - he_mole_fraction;
    EquilibriumGas::new(
        mix,
        &[(Element::H, 2.0 * xh2), (Element::He, he_mole_fraction)],
    )
}

/// Titan-atmosphere gas: N₂ with a few percent CH₄; the shock layer
/// produces CN (the dominant radiator), HCN, C₂, H₂ and atoms.
/// `ch4_mole_fraction` is the freestream CH₄ mole fraction (≈ 0.03–0.08 for
/// Titan entry studies of the era).
#[must_use]
pub fn titan_equilibrium(ch4_mole_fraction: f64) -> EquilibriumGas {
    use crate::species as sp;
    let mix = Mixture::new(vec![
        sp::n2(),
        sp::ch4(),
        sp::cn(),
        sp::hcn(),
        sp::c2(),
        sp::h2(),
        sp::n_atom(),
        sp::c_atom(),
        sp::h_atom(),
        sp::n_ion(),
        sp::c_ion(),
        sp::h_ion(),
        sp::electron(),
    ]);
    let xm = ch4_mole_fraction;
    let xn2 = 1.0 - xm;
    EquilibriumGas::new(
        mix,
        &[
            (Element::N, 2.0 * xn2),
            (Element::C, xm),
            (Element::H, 4.0 * xm),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(gas: &EquilibriumGas, name: &str) -> usize {
        gas.mixture().index_of(name).unwrap()
    }

    #[test]
    fn cold_air_is_molecular() {
        let gas = air9_equilibrium();
        let st = gas.at_tp(300.0, 101_325.0).unwrap();
        let x_n2 = st.mole_fractions[idx(&gas, "N2")];
        let x_o2 = st.mole_fractions[idx(&gas, "O2")];
        assert!((x_n2 - 0.79).abs() < 0.01, "x_N2 = {x_n2}");
        assert!((x_o2 - 0.21).abs() < 0.01, "x_O2 = {x_o2}");
        // Ideal-gas density check: ρ = p M / (R T).
        assert!((st.density - 1.177).abs() < 0.02, "rho = {}", st.density);
        // No measurable ionization.
        assert!(st.mole_fractions[idx(&gas, "e-")] < 1e-30);
    }

    #[test]
    fn oxygen_dissociates_before_nitrogen() {
        let gas = air9_equilibrium();
        // At 4000 K, 1 atm: O2 largely dissociated, N2 mostly intact.
        let st = gas.at_tp(4000.0, 101_325.0).unwrap();
        let x_o = st.mole_fractions[idx(&gas, "O")];
        let x_o2 = st.mole_fractions[idx(&gas, "O2")];
        let x_n2 = st.mole_fractions[idx(&gas, "N2")];
        assert!(x_o > x_o2, "O should dominate O2: {x_o} vs {x_o2}");
        assert!(x_n2 > 0.5, "N2 should survive: {x_n2}");
    }

    #[test]
    fn hot_air_fully_dissociated_and_ionizing() {
        let gas = air9_equilibrium();
        let st = gas.at_tp(15_000.0, 101_325.0).unwrap();
        let x_n2 = st.mole_fractions[idx(&gas, "N2")];
        let x_n = st.mole_fractions[idx(&gas, "N")];
        let x_nplus = st.mole_fractions[idx(&gas, "N+")];
        let x_e = st.mole_fractions[idx(&gas, "e-")];
        assert!(x_n2 < 0.02, "N2 should be gone: {x_n2}");
        // Air at 15 000 K / 1 atm is substantially ionized (Saha): nitrogen
        // nuclei split between N and N+.
        assert!(x_n + x_nplus > 0.4, "N-nuclei carriers: {x_n} + {x_nplus}");
        assert!(x_n > 0.1, "neutral N survives: {x_n}");
        assert!(x_e > 0.05, "strong ionization: {x_e}");
    }

    #[test]
    fn charge_neutrality_holds() {
        let gas = air9_equilibrium();
        for t in [300.0, 6000.0, 12_000.0, 20_000.0] {
            let st = gas.at_tp(t, 10_000.0).unwrap();
            let mut qsum = 0.0;
            let mut qabs = 1e-300;
            for (sp, n) in gas.mixture().species().iter().zip(&st.number_densities) {
                qsum += f64::from(sp.charge) * n;
                qabs += f64::from(sp.charge.abs()) * n;
            }
            assert!(qsum.abs() / qabs < 1e-6, "T={t}: charge imbalance");
        }
    }

    #[test]
    fn element_ratio_preserved() {
        let gas = air9_equilibrium();
        for t in [500.0, 5000.0, 15_000.0] {
            let st = gas.at_tp(t, 101_325.0).unwrap();
            let mut n_nuclei = 0.0;
            let mut o_nuclei = 0.0;
            for (sp, n) in gas.mixture().species().iter().zip(&st.number_densities) {
                n_nuclei += f64::from(sp.atoms_of(Element::N)) * n;
                o_nuclei += f64::from(sp.atoms_of(Element::O)) * n;
            }
            let ratio = n_nuclei / o_nuclei;
            assert!((ratio - 3.76).abs() < 1e-6 * 3.76, "T={t}: N/O = {ratio}");
        }
    }

    #[test]
    fn trho_and_tp_agree() {
        let gas = air9_equilibrium();
        let st1 = gas.at_tp(8000.0, 50_000.0).unwrap();
        let st2 = gas.at_trho(8000.0, st1.density).unwrap();
        assert!((st2.pressure - st1.pressure).abs() / st1.pressure < 1e-6);
        for (a, b) in st1.mole_fractions.iter().zip(&st2.mole_fractions) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rho_e_inversion_roundtrip() {
        let gas = air9_equilibrium();
        let st = gas.at_tp(9000.0, 101_325.0).unwrap();
        let st2 = gas.at_rho_e(st.density, st.energy).unwrap();
        assert!(
            (st2.temperature - 9000.0).abs() < 5.0,
            "T = {}",
            st2.temperature
        );
    }

    #[test]
    fn mass_fractions_sum_to_one() {
        let gas = air9_equilibrium();
        for t in [300.0, 4000.0, 10_000.0, 18_000.0] {
            let st = gas.at_tp(t, 101_325.0).unwrap();
            let s: f64 = st.mass_fractions.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "T={t}: Σy = {s}");
        }
    }

    #[test]
    fn titan_produces_cn_at_high_t() {
        let gas = titan_equilibrium(0.05);
        let cold = gas.at_tp(300.0, 1000.0).unwrap();
        let x_ch4_cold = cold.mole_fractions[idx(&gas, "CH4")];
        assert!((x_ch4_cold - 0.05).abs() < 0.01, "cold CH4: {x_ch4_cold}");

        let hot = gas.at_tp(7000.0, 10_000.0).unwrap();
        let x_cn = hot.mole_fractions[idx(&gas, "CN")];
        let x_ch4 = hot.mole_fractions[idx(&gas, "CH4")];
        assert!(x_ch4 < 1e-6, "CH4 must crack: {x_ch4}");
        assert!(x_cn > 1e-4, "CN should appear in the shock layer: {x_cn}");
    }

    #[test]
    fn jupiter_gas_dissociates_then_ionizes() {
        let gas = jupiter_equilibrium(0.11);
        // Cold: molecular hydrogen plus helium.
        let cold = gas.at_tp(300.0, 1e5).unwrap();
        let x_h2 = cold.mole_fractions[idx(&gas, "H2")];
        let x_he = cold.mole_fractions[idx(&gas, "He")];
        assert!((x_h2 - 0.89).abs() < 0.01, "x_H2 = {x_h2}");
        assert!((x_he - 0.11).abs() < 0.01, "x_He = {x_he}");
        // 6000 K, low pressure: H2 dissociated to atoms.
        let warm = gas.at_tp(6000.0, 1e3).unwrap();
        assert!(
            warm.mole_fractions[idx(&gas, "H")] > 0.5,
            "H should dominate"
        );
        // 20 000 K: strong ionization.
        let hot = gas.at_tp(20_000.0, 1e4).unwrap();
        let x_e = hot.mole_fractions[idx(&gas, "e-")];
        assert!(x_e > 0.05, "x_e = {x_e}");
        // Helium nuclei conserved relative to hydrogen nuclei.
        let mut h_nuc = 0.0;
        let mut he_nuc = 0.0;
        for (sp, n) in gas.mixture().species().iter().zip(&hot.number_densities) {
            h_nuc += f64::from(sp.atoms_of(Element::H)) * n;
            he_nuc += f64::from(sp.atoms_of(Element::He)) * n;
        }
        let ratio = he_nuc / h_nuc;
        assert!((ratio - 0.11 / 1.78).abs() < 1e-3, "He/H = {ratio}");
    }

    #[test]
    fn enthalpy_exceeds_energy() {
        let gas = air5_equilibrium();
        let st = gas.at_tp(2000.0, 101_325.0).unwrap();
        assert!(st.enthalpy > st.energy);
        assert!((st.enthalpy - st.energy - st.pressure / st.density).abs() < 1.0);
    }

    #[test]
    fn warm_start_hit_matches_cold_solve() {
        // Run on a dedicated thread: the warm-start cache and its stats are
        // thread-local, so parallel sibling tests cannot interfere.
        let (cold, warm, hits, misses) = std::thread::spawn(|| {
            let gas = air9_equilibrium();
            warm_cache::clear_thread();
            let s0 = warm_cache::thread_stats();
            let _anchor = gas.at_tp(6000.0, 10_000.0).unwrap();
            // 6050 K is well inside LN_T_WINDOW of the anchor: warm path.
            let warm = gas.at_tp(6050.0, 10_000.0).unwrap();
            let s1 = warm_cache::thread_stats();
            // Cold reference for the identical state.
            warm_cache::clear_thread();
            let cold = gas.at_tp(6050.0, 10_000.0).unwrap();
            (cold, warm, s1.hits - s0.hits, s1.misses - s0.misses)
        })
        .join()
        .unwrap();
        assert_eq!((hits, misses), (1, 1));
        assert!((warm.density - cold.density).abs() < 1e-6 * cold.density);
        assert!((warm.pressure - cold.pressure).abs() < 1e-6 * cold.pressure);
        for (a, b) in warm.mole_fractions.iter().zip(&cold.mole_fractions) {
            let scale = a.abs().max(b.abs());
            assert!(
                (a - b).abs() <= 1e-5 * scale + 1e-30,
                "warm {a:e} vs cold {b:e}"
            );
        }
    }

    #[test]
    fn cache_bypassed_when_state_jumps_outside_bucket() {
        use aerothermo_numerics::telemetry::{counters, Counter};
        let stats = std::thread::spawn(|| {
            let gas = air9_equilibrium();
            warm_cache::clear_thread();
            gas.at_tp(1000.0, 101_325.0).unwrap();
            // ln-T jump of 1.79 ≫ LN_T_WINDOW: bypass.
            gas.at_tp(6000.0, 101_325.0).unwrap();
            // ln-p jump of 4.6 ≫ LN_V_WINDOW at fixed T: bypass.
            gas.at_tp(6000.0, 1000.0).unwrap();
            warm_cache::thread_stats()
        })
        .join()
        .unwrap();
        assert_eq!(stats.hits, 0, "far jumps must not warm-start");
        assert_eq!(stats.misses, 3);
        // The same lookups feed the global telemetry counters (other tests
        // may add more in parallel, so only a floor is asserted).
        assert!(counters::get(Counter::EquilibriumCacheMisses) >= 3);
    }

    #[test]
    fn cache_is_per_thread_under_rayon_workers() {
        use rayon::prelude::*;
        let gas = air9_equilibrium();
        // Prime the calling thread's cache with the probed state.
        gas.at_tp(7000.0, 5000.0).unwrap();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let deltas: Vec<(u64, u64)> = pool.install(|| {
            (0..2usize)
                .into_par_iter()
                .map(|_| {
                    let s0 = warm_cache::thread_stats();
                    gas.at_tp(7000.0, 5000.0).unwrap();
                    gas.at_tp(7010.0, 5000.0).unwrap();
                    let s1 = warm_cache::thread_stats();
                    (s1.hits - s0.hits, s1.misses - s0.misses)
                })
                .collect()
        });
        assert_eq!(deltas.len(), 2);
        for (hits, misses) in deltas {
            // Workers are fresh threads: the first solve must NOT see the
            // calling thread's seed (miss), the nearby second solve hits
            // the worker's own fresh entry.
            assert_eq!(misses, 1, "worker saw another thread's cache");
            assert_eq!(hits, 1);
        }
    }

    #[test]
    fn batch_solve_is_bitwise_identical_to_individual_solves() {
        use aerothermo_numerics::telemetry::counters;
        use aerothermo_numerics::telemetry::Counter;
        // Dedicated thread: the warm cache and the telemetry thread
        // mirror are thread-local, so sibling tests cannot interfere.
        std::thread::spawn(|| {
            let gas = air9_equilibrium();
            // 7 states = one full 4-lane chunk plus a 3-lane tail,
            // ordered along a temperature sweep so warm starts engage.
            let states: Vec<(f64, f64)> =
                (0..7).map(|k| (3000.0 + 450.0 * k as f64, 0.01)).collect();

            warm_cache::clear_thread();
            let individual: Vec<EqState> = states
                .iter()
                .map(|&(t, rho)| gas.at_trho(t, rho).unwrap())
                .collect();
            let stats_ind = warm_cache::thread_stats();

            warm_cache::clear_thread();
            let before = counters::thread_snapshot();
            let batched: Vec<EqState> = gas
                .at_trho_batch(&states)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let stats_bat = warm_cache::thread_stats();
            let delta = counters::thread_snapshot().delta_since(&before);

            // Identical warm-cache traffic: the batch follows the exact
            // per-lane lookup→solve→store protocol.
            assert_eq!(stats_ind, stats_bat);
            // Batch bookkeeping: ceil(7/4) = 2 chunks, lane histogram
            // 4 + 3, all seven states counted.
            assert_eq!(delta.get(Counter::EquilibriumBatches), 2);
            assert_eq!(delta.get(Counter::EquilibriumBatchStates), 7);
            assert_eq!(delta.get(Counter::EquilibriumBatchLanes4), 1);
            assert_eq!(delta.get(Counter::EquilibriumBatchLanes3), 1);
            assert_eq!(delta.get(Counter::EquilibriumBatchLanes1), 0);
            assert_eq!(delta.get(Counter::EquilibriumStates), 7);

            for (a, b) in individual.iter().zip(&batched) {
                assert_eq!(a.temperature.to_bits(), b.temperature.to_bits());
                assert_eq!(a.pressure.to_bits(), b.pressure.to_bits());
                assert_eq!(a.density.to_bits(), b.density.to_bits());
                assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                for (na, nb) in a.number_densities.iter().zip(&b.number_densities) {
                    assert_eq!(na.to_bits(), nb.to_bits());
                }
            }
        })
        .join()
        .unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig {
            cases: 12,
            ..proptest::test_runner::ProptestConfig::default()
        })]

        /// Chunked 4-lane batching is equivalent to feeding the same states
        /// through single-state batches: results agree to ≤ 1e-13 relative
        /// (in fact bitwise — the lanes run the identical per-state
        /// protocol), and the warm-cache/batch counters stay consistent.
        #[test]
        fn four_lane_batches_match_single_lane_batches(
            t0 in 1500.0_f64..9000.0,
            dt in 50.0_f64..400.0,
            rho_exp in -4.0_f64..0.0,
            n in 1_usize..9,
        ) {
            use aerothermo_numerics::telemetry::{counters, Counter};
            let states: Vec<(f64, f64)> = (0..n)
                .map(|k| (t0 + dt * k as f64, 10.0_f64.powf(rho_exp)))
                .collect();
            type Obs = (Vec<EqState>, Vec<EqState>, [u64; 4], [u64; 2]);
            let st = states.clone();
            let (fours, singles, batch_counts, cache_counts): Obs =
                std::thread::spawn(move || {
                    let gas = air9_equilibrium();

                    warm_cache::clear_thread();
                    let c0 = counters::thread_snapshot();
                    let fours: Vec<EqState> = gas
                        .at_trho_batch(&st)
                        .into_iter()
                        .map(|r| r.unwrap())
                        .collect();
                    let s_four = warm_cache::thread_stats();
                    let d_four = counters::thread_snapshot().delta_since(&c0);

                    warm_cache::clear_thread();
                    let c1 = counters::thread_snapshot();
                    let singles: Vec<EqState> = st
                        .iter()
                        .map(|&s| gas.at_trho_batch(&[s]).remove(0).unwrap())
                        .collect();
                    let s_one = warm_cache::thread_stats();
                    let d_one = counters::thread_snapshot().delta_since(&c1);

                    (
                        fours,
                        singles,
                        [
                            d_four.get(Counter::EquilibriumBatches),
                            d_four.get(Counter::EquilibriumBatchStates),
                            d_one.get(Counter::EquilibriumBatches),
                            d_one.get(Counter::EquilibriumBatchStates),
                        ],
                        [
                            (s_four.hits + s_four.misses),
                            (s_one.hits + s_one.misses),
                        ],
                    )
                })
                .join()
                .unwrap();

            // Chunk bookkeeping: ceil(n/4) chunks vs n single-state chunks,
            // with every state counted exactly once in both protocols.
            proptest::prop_assert_eq!(batch_counts[0], n.div_ceil(4) as u64);
            proptest::prop_assert_eq!(batch_counts[1], n as u64);
            proptest::prop_assert_eq!(batch_counts[2], n as u64);
            proptest::prop_assert_eq!(batch_counts[3], n as u64);
            // Identical warm-cache traffic (one lookup per state).
            proptest::prop_assert_eq!(cache_counts[0], cache_counts[1]);
            proptest::prop_assert_eq!(cache_counts[0], n as u64);

            for (a, b) in fours.iter().zip(&singles) {
                for (x, y) in [
                    (a.temperature, b.temperature),
                    (a.pressure, b.pressure),
                    (a.density, b.density),
                    (a.energy, b.energy),
                ] {
                    let scale = x.abs().max(y.abs()).max(1e-300);
                    proptest::prop_assert!(
                        (x - y).abs() <= 1e-13 * scale,
                        "lane mismatch: {x:e} vs {y:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn dissociation_raises_pressure_at_fixed_density() {
        // At fixed (rho, T) comparison is trivial; instead check the molar
        // mass drop across dissociation at fixed pressure.
        let gas = air9_equilibrium();
        let cold = gas.at_tp(1000.0, 101_325.0).unwrap();
        let hot = gas.at_tp(8000.0, 101_325.0).unwrap();
        assert!(
            hot.molar_mass < cold.molar_mass - 3.0,
            "Mbar should drop: {} -> {}",
            cold.molar_mass,
            hot.molar_mass
        );
    }
}
