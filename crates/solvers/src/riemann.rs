//! Exact Riemann solver for a calorically perfect gas (Toro's method).
//!
//! Supplies closed-form reference solutions for the shock-capturing
//! verification problems (Sod tube and friends) and for the numerics
//! ablation study: limiter and order choices are graded against the exact
//! self-similar solution rather than against another discretization.

/// A constant state (ρ, u, p).
#[derive(Debug, Clone, Copy)]
pub struct RiemannState {
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Velocity \[m/s\].
    pub u: f64,
    /// Pressure \[Pa\].
    pub p: f64,
}

/// The exact solution structure of a Riemann problem.
#[derive(Debug, Clone, Copy)]
pub struct RiemannSolution {
    /// Left input state.
    pub left: RiemannState,
    /// Right input state.
    pub right: RiemannState,
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub u_star: f64,
}

fn sound_speed(s: &RiemannState, gamma: f64) -> f64 {
    (gamma * s.p / s.rho).sqrt()
}

/// Pressure function f_K(p) and its derivative (Toro §4.2).
fn f_k(p: f64, s: &RiemannState, gamma: f64) -> (f64, f64) {
    let a = sound_speed(s, gamma);
    if p > s.p {
        // Shock branch.
        let ak = 2.0 / ((gamma + 1.0) * s.rho);
        let bk = (gamma - 1.0) / (gamma + 1.0) * s.p;
        let q = (ak / (p + bk)).sqrt();
        let f = (p - s.p) * q;
        let df = q * (1.0 - 0.5 * (p - s.p) / (p + bk));
        (f, df)
    } else {
        // Rarefaction branch.
        let pr = p / s.p;
        let g1 = (gamma - 1.0) / (2.0 * gamma);
        let f = 2.0 * a / (gamma - 1.0) * (pr.powf(g1) - 1.0);
        let df = 1.0 / (s.rho * a) * pr.powf(-(gamma + 1.0) / (2.0 * gamma));
        (f, df)
    }
}

/// Solve the Riemann problem for `(left, right, γ)`.
///
/// # Panics
/// Panics if a vacuum forms (the pressure positivity condition fails).
#[must_use]
pub fn solve(left: RiemannState, right: RiemannState, gamma: f64) -> RiemannSolution {
    let al = sound_speed(&left, gamma);
    let ar = sound_speed(&right, gamma);
    let du = right.u - left.u;
    assert!(
        2.0 * (al + ar) / (gamma - 1.0) > du,
        "vacuum-generating Riemann data"
    );

    // Newton on p_star with a positivity-preserving update; initial guess
    // from the two-rarefaction approximation.
    let g1 = (gamma - 1.0) / (2.0 * gamma);
    let p0 = ((al + ar - 0.5 * (gamma - 1.0) * du)
        / (al / left.p.powf(g1) + ar / right.p.powf(g1)))
    .powf(1.0 / g1)
    .max(1e-10 * left.p.min(right.p));
    let mut p = p0;
    for _ in 0..100 {
        let (fl, dfl) = f_k(p, &left, gamma);
        let (fr, dfr) = f_k(p, &right, gamma);
        let f = fl + fr + du;
        let step = f / (dfl + dfr);
        let mut p_new = p - step;
        if p_new <= 0.0 {
            p_new = 0.5 * p;
        }
        if (p_new - p).abs() < 1e-12 * p {
            p = p_new;
            break;
        }
        p = p_new;
    }
    let (fl, _) = f_k(p, &left, gamma);
    let (fr, _) = f_k(p, &right, gamma);
    let u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
    RiemannSolution {
        left,
        right,
        gamma,
        p_star: p,
        u_star,
    }
}

impl RiemannSolution {
    /// Sample the self-similar solution at `xi = x/t`.
    #[must_use]
    #[allow(clippy::many_single_char_names)]
    pub fn sample(&self, xi: f64) -> RiemannState {
        let g = self.gamma;
        let gm = g - 1.0;
        let gp = g + 1.0;
        if xi <= self.u_star {
            // Left of the contact.
            let s = &self.left;
            let a = sound_speed(s, g);
            if self.p_star > s.p {
                // Left shock.
                let ps = self.p_star / s.p;
                let shock_speed = s.u - a * (gp / (2.0 * g) * ps + gm / (2.0 * g)).sqrt();
                if xi < shock_speed {
                    *s
                } else {
                    let rho = s.rho * (ps + gm / gp) / (gm / gp * ps + 1.0);
                    RiemannState {
                        rho,
                        u: self.u_star,
                        p: self.p_star,
                    }
                }
            } else {
                // Left rarefaction.
                let a_star = a * (self.p_star / s.p).powf(gm / (2.0 * g));
                let head = s.u - a;
                let tail = self.u_star - a_star;
                if xi < head {
                    *s
                } else if xi > tail {
                    let rho = s.rho * (self.p_star / s.p).powf(1.0 / g);
                    RiemannState {
                        rho,
                        u: self.u_star,
                        p: self.p_star,
                    }
                } else {
                    // Inside the fan.
                    let u = 2.0 / gp * (a + gm / 2.0 * s.u + xi);
                    let afan = 2.0 / gp * (a + gm / 2.0 * (s.u - xi));
                    let rho = s.rho * (afan / a).powf(2.0 / gm);
                    let p = s.p * (afan / a).powf(2.0 * g / gm);
                    RiemannState { rho, u, p }
                }
            }
        } else {
            // Right of the contact (mirror).
            let s = &self.right;
            let a = sound_speed(s, g);
            if self.p_star > s.p {
                let ps = self.p_star / s.p;
                let shock_speed = s.u + a * (gp / (2.0 * g) * ps + gm / (2.0 * g)).sqrt();
                if xi > shock_speed {
                    *s
                } else {
                    let rho = s.rho * (ps + gm / gp) / (gm / gp * ps + 1.0);
                    RiemannState {
                        rho,
                        u: self.u_star,
                        p: self.p_star,
                    }
                }
            } else {
                let a_star = a * (self.p_star / s.p).powf(gm / (2.0 * g));
                let head = s.u + a;
                let tail = self.u_star + a_star;
                if xi > head {
                    *s
                } else if xi < tail {
                    let rho = s.rho * (self.p_star / s.p).powf(1.0 / g);
                    RiemannState {
                        rho,
                        u: self.u_star,
                        p: self.p_star,
                    }
                } else {
                    let u = 2.0 / gp * (-a + gm / 2.0 * s.u + xi);
                    let afan = 2.0 / gp * (a - gm / 2.0 * (s.u - xi));
                    let rho = s.rho * (afan / a).powf(2.0 / gm);
                    let p = s.p * (afan / a).powf(2.0 * g / gm);
                    RiemannState { rho, u, p }
                }
            }
        }
    }
}

/// The classic Sod problem `(ρ,u,p) = (1,0,1) | (0.125,0,0.1)`, γ = 1.4.
///
/// ```
/// let sol = aerothermo_solvers::riemann::sod();
/// assert!((sol.p_star - 0.30313).abs() < 1e-3);
/// let post_shock = sol.sample(1.2);
/// assert!((post_shock.rho - 0.26557).abs() < 1e-3);
/// ```
#[must_use]
pub fn sod() -> RiemannSolution {
    solve(
        RiemannState {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        },
        RiemannState {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
        },
        1.4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_star_state_reference() {
        // Toro's reference: p* = 0.30313, u* = 0.92745.
        let s = sod();
        assert!((s.p_star - 0.30313).abs() < 1e-4, "p* = {}", s.p_star);
        assert!((s.u_star - 0.92745).abs() < 1e-4, "u* = {}", s.u_star);
    }

    #[test]
    fn sod_sampled_regions() {
        let s = sod();
        // Left undisturbed.
        let l = s.sample(-2.0);
        assert!((l.rho - 1.0).abs() < 1e-12);
        // Post-shock density: 0.26557 at t=0.2, x between contact & shock.
        let ps = s.sample(1.2); // shock at ~1.75, contact at 0.927
        assert!((ps.rho - 0.26557).abs() < 1e-4, "rho = {}", ps.rho);
        // Star-left density: 0.42632.
        let sl = s.sample(0.5);
        assert!((sl.rho - 0.42632).abs() < 1e-4, "rho = {}", sl.rho);
        // Right undisturbed.
        let r = s.sample(3.0);
        assert!((r.rho - 0.125).abs() < 1e-12);
    }

    #[test]
    fn symmetric_collision_is_symmetric() {
        // Two equal streams colliding: u* = 0, p* > inputs, mirror states.
        let s = solve(
            RiemannState {
                rho: 1.0,
                u: 100.0,
                p: 1e5,
            },
            RiemannState {
                rho: 1.0,
                u: -100.0,
                p: 1e5,
            },
            1.4,
        );
        assert!(s.u_star.abs() < 1e-8);
        assert!(s.p_star > 1e5);
        let a = s.sample(-50.0);
        let b = s.sample(50.0);
        assert!((a.rho - b.rho).abs() < 1e-9);
    }

    #[test]
    fn expansion_into_low_pressure() {
        // Strong rarefaction: star pressure below both inputs.
        let s = solve(
            RiemannState {
                rho: 1.0,
                u: -200.0,
                p: 1e5,
            },
            RiemannState {
                rho: 1.0,
                u: 200.0,
                p: 1e5,
            },
            1.4,
        );
        assert!(s.p_star < 1e5);
        assert!(s.u_star.abs() < 1e-8);
    }

    #[test]
    fn entropy_across_sampled_shock() {
        let s = sod();
        let pre = s.sample(3.0);
        let post = s.sample(1.2);
        let entropy = |st: &RiemannState| st.p / st.rho.powf(1.4);
        assert!(
            entropy(&post) > entropy(&pre),
            "entropy must rise across the shock"
        );
    }

    #[test]
    #[should_panic(expected = "vacuum")]
    fn vacuum_detected() {
        let _ = solve(
            RiemannState {
                rho: 1.0,
                u: -2000.0,
                p: 100.0,
            },
            RiemannState {
                rho: 1.0,
                u: 2000.0,
                p: 100.0,
            },
            1.4,
        );
    }
}
