//! Post-shock thermochemical relaxation (the paper's Fig. 7).
//!
//! Steady one-dimensional flow in the shock-fixed frame: immediately behind
//! the (frozen) shock the translational temperature is enormous while the
//! vibrational temperature still holds its freestream value; finite-rate
//! chemistry and Landau-Teller energy exchange then relax the gas toward
//! equilibrium over a distance set by the binary-collision scaling.
//!
//! Mass, momentum, and total enthalpy are algebraic invariants of the
//! steady flow, so the marched unknowns are only the species mass fractions
//! and the vibronic energy; at each station the flow speed (hence ρ, p, T)
//! is recovered by a bracketed scalar solve. The stiff system is integrated
//! with the adaptive backward-Euler marcher from `aerothermo-numerics`.

use crate::shock::frozen_shock;
use aerothermo_gas::kinetics::ReactionSet;
use aerothermo_gas::relaxation::RelaxationModel;
use aerothermo_numerics::constants::K_BOLTZMANN;
use aerothermo_numerics::ode::{stiff_integrate, AdaptiveOptions};
use aerothermo_numerics::roots::brent_expanding;
use aerothermo_numerics::telemetry::{RunTelemetry, SolverError};
use std::cell::Cell;

/// Upstream (freestream, shock-frame) conditions and composition.
#[derive(Debug, Clone)]
pub struct RelaxationProblem {
    /// Shock speed = upstream flow speed in the shock frame \[m/s\].
    pub u1: f64,
    /// Upstream temperature \[K\].
    pub t1: f64,
    /// Upstream pressure \[Pa\].
    pub p1: f64,
    /// Upstream mass fractions (mixture order).
    pub y1: Vec<f64>,
    /// Marching distance behind the shock \[m\].
    pub x_end: f64,
}

/// One station of the relaxation solution.
#[derive(Debug, Clone)]
pub struct RelaxationPoint {
    /// Distance behind the shock \[m\].
    pub x: f64,
    /// Translational-rotational temperature \[K\].
    pub t: f64,
    /// Vibrational-electronic temperature \[K\].
    pub tv: f64,
    /// Flow speed (shock frame) \[m/s\].
    pub u: f64,
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Pressure \[Pa\].
    pub p: f64,
    /// Species mass fractions.
    pub y: Vec<f64>,
    /// Species mole fractions.
    pub x_mole: Vec<f64>,
    /// Total number density \[1/m³\].
    pub n_total: f64,
    /// Marched vibronic energy \[J/kg\].
    pub ev: f64,
    /// Total-enthalpy conservation residual, relative.
    pub h_residual: f64,
}

/// Solution of a relaxation march.
#[derive(Debug, Clone)]
pub struct RelaxationSolution {
    /// Stations, ordered in x.
    pub points: Vec<RelaxationPoint>,
    /// The frozen post-shock translational temperature \[K\].
    pub t_frozen: f64,
    /// Run observability: the march phase timing and (when auditing is
    /// enabled) the algebraic-invariant audit findings.
    pub telemetry: RunTelemetry,
}

impl RelaxationSolution {
    /// Station nearest to `x`.
    ///
    /// # Panics
    /// Panics if the solution is empty — unreachable for solutions produced
    /// by [`solve`], which errors rather than returning an empty march (the
    /// integrator records the x = 0 state before its first step).
    #[must_use]
    pub fn at(&self, x: f64) -> &RelaxationPoint {
        self.points
            .iter()
            .min_by(|a, b| (a.x - x).abs().total_cmp(&(b.x - x).abs()))
            .expect("empty solution")
    }

    /// Distance at which T and T_v first agree within `frac` (relative).
    #[must_use]
    pub fn equilibration_distance(&self, frac: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.t - p.tv).abs() < frac * p.t)
            .map(|p| p.x)
    }
}

/// Solve the relaxation problem for a mechanism (mixture order defines `y`).
///
/// # Errors
/// Propagates shock-jump or integration failures with context.
pub fn solve(
    reactions: &ReactionSet,
    relaxation: &RelaxationModel,
    problem: &RelaxationProblem,
) -> Result<RelaxationSolution, SolverError> {
    solve_scaled(reactions, relaxation, problem, 1.0)
}

/// [`solve`] under the shared retry/backoff policy
/// ([`crate::runctl::retry_with_backoff`]): a recoverable integration
/// failure is retried with the adaptive step sizes scaled down. The returned
/// [`crate::runctl::RetryOutcome`] carries the solution plus the retries
/// consumed and the scale that succeeded.
///
/// # Errors
/// The last attempt's error once the budget is exhausted, or immediately
/// for non-recoverable failures (bad upstream state, mechanism mismatch).
pub fn solve_with_retry(
    reactions: &ReactionSet,
    relaxation: &RelaxationModel,
    problem: &RelaxationProblem,
    max_retries: usize,
) -> Result<crate::runctl::RetryOutcome<RelaxationSolution>, SolverError> {
    crate::runctl::retry_with_backoff(max_retries, 0.5, 1.0 / 64.0, |scale| {
        solve_scaled(reactions, relaxation, problem, scale)
    })
}

/// Relaxation march at a given step-size scale (1.0 = nominal adaptive
/// steps; backoff shrinks the initial and maximum step).
#[allow(clippy::too_many_lines)]
fn solve_scaled(
    reactions: &ReactionSet,
    relaxation: &RelaxationModel,
    problem: &RelaxationProblem,
    step_scale: f64,
) -> Result<RelaxationSolution, SolverError> {
    let mix = reactions.mixture();
    let ns = mix.len();
    if problem.y1.len() != ns {
        return Err(SolverError::BadInput("y1 length mismatch".to_string()));
    }
    let mut telemetry = RunTelemetry::new();
    let march_t0 = std::time::Instant::now();

    // Frozen jump sets the flux invariants and the initial condition.
    let jump = frozen_shock(mix, &problem.y1, problem.t1, problem.p1, problem.u1)
        .map_err(|e| format!("frozen shock failed: {e}"))?;
    let rho1 = problem.p1 / (mix.gas_constant(&problem.y1) * problem.t1);
    let mdot = rho1 * problem.u1;
    let ptot = problem.p1 + rho1 * problem.u1 * problem.u1;
    let h1 = {
        // Full equilibrium-mode enthalpy at upstream conditions (T = Tv).
        mix.h_total(problem.t1, &problem.y1)
    };
    let htot = h1 + 0.5 * problem.u1 * problem.u1;

    // Frozen-mode enthalpy: translation/rotation/formation at T plus the RT
    // pressure term; the vibronic pool enters as the *marched* energy `ev`
    // directly, so total enthalpy is conserved exactly even when the
    // ev → T_v inversion saturates (T_v is only needed for rates).
    let h_with_ev = |t: f64, y: &[f64], ev: f64| -> f64 {
        let mut h = ev;
        for (sp, yi) in mix.species().iter().zip(y) {
            if sp.name == "e-" {
                h += yi * sp.e_formation();
            } else {
                h += yi * (sp.e_trans(t) + sp.e_rot(t) + sp.e_formation());
            }
        }
        h + mix.gas_constant(y) * t
    };

    // Warm-start caches for the algebraic closures.
    let u_cache = Cell::new(jump.u);
    let tv_cache = Cell::new(problem.t1);

    // Closure: from marched state (y, ev) recover (u, rho, p, T, Tv).
    let close = |y: &[f64], ev: f64| -> Result<(f64, f64, f64, f64, f64), String> {
        // The Tv inversion can only fail above the vibronic-energy ceiling of
        // its bracketing search; cap at 200 kK (beyond any post-shock state
        // here) and let the outer algebraic closure iterate back down.
        let tv = mix
            .tv_from_vibronic_energy(ev.max(0.0), y, tv_cache.get())
            .unwrap_or(200_000.0);
        tv_cache.set(tv.min(150_000.0));
        let r_gas = mix.gas_constant(y);
        let u_max = 0.999 * ptot / mdot;
        let f = |u: f64| -> f64 {
            let p = ptot - mdot * u;
            let t = u * p / (mdot * r_gas);
            h_with_ev(t, y, ev) + 0.5 * u * u - htot
        };
        let u = brent_expanding(f, u_cache.get(), 0.05 * u_cache.get(), 1.0, u_max, 1e-9, 60)
            .map_err(|e| format!("u closure: {e}"))?;
        u_cache.set(u);
        let rho = mdot / u;
        let p = ptot - mdot * u;
        let t = p / (rho * r_gas);
        Ok((u, rho, p, t, tv))
    };

    // Marched state: z = [y_0..y_{ns-1}, ev].
    let rhs = |_x: f64, z: &[f64], dz: &mut [f64]| {
        let y = &z[..ns];
        let ev = z[ns];
        let Ok((u, rho, p, t, tv)) = close(y, ev) else {
            dz.fill(0.0);
            return;
        };
        let mut wdot = vec![0.0; ns];
        reactions.mass_production(t, tv, rho, y, &mut wdot);
        let n_total = p / (K_BOLTZMANN * t);
        let q_tv = relaxation.q_trans_vib(rho, y, t, tv, p, n_total);
        // Vibronic energy carried by produced/destroyed species.
        let mut q_chem = 0.0;
        for (s, sp) in mix.species().iter().enumerate() {
            let evs = if sp.name == "e-" {
                sp.e_trans(tv)
            } else {
                sp.e_vib(tv) + sp.e_elec(tv)
            };
            q_chem += wdot[s] * evs;
        }
        // Electron-impact reactions draw their formation energy from the
        // electron (vibronic) pool — the sink that self-limits the
        // ionization avalanche by cooling T_e.
        let conc: Vec<f64> = (0..ns)
            .map(|s| rho * y[s].max(0.0) / mix.species()[s].molar_mass)
            .collect();
        let mut rates = vec![0.0; reactions.reactions().len()];
        reactions.net_reaction_rates(t, tv, &conc, &mut rates);
        let mut q_eii = 0.0;
        for (r, rate) in reactions.reactions().iter().zip(&rates) {
            if r.rate_t == aerothermo_gas::kinetics::RateTemperature::ElectronTv {
                q_eii -= rate * reactions.reaction_energy(r);
            }
        }
        let rho_u = rho * u;
        for s in 0..ns {
            dz[s] = wdot[s] / rho_u;
        }
        dz[ns] = (q_tv + q_chem + q_eii) / rho_u;
    };

    // Initial condition: frozen composition, vibronic energy at t1.
    let mut z = problem.y1.clone();
    z.push(mix.e_vibronic(problem.t1, &problem.y1));

    let mut raw: Vec<(f64, Vec<f64>)> = Vec::new();
    stiff_integrate(
        &rhs,
        0.0,
        problem.x_end,
        &mut z,
        &AdaptiveOptions {
            rtol: 1e-5,
            atol: 1e-10,
            h0: 1e-9 * step_scale,
            hmin: 1e-16,
            hmax: problem.x_end / 50.0 * step_scale,
            max_steps: 200_000,
        },
        |x, state| raw.push((x, state.to_vec())),
    )
    .map_err(|e| format!("relaxation march: {e}"))?;

    // Convert the raw march to flow states.
    u_cache.set(jump.u);
    tv_cache.set(problem.t1);
    let mut points = Vec::with_capacity(raw.len());
    for (x, state) in raw {
        let y = state[..ns].to_vec();
        let ev = state[ns];
        let (u, rho, p, t, tv) = close(&y, ev)?;
        let x_mole = mix.mass_to_mole(&y);
        let n_total = p / (K_BOLTZMANN * t);
        let h_residual = (h_with_ev(t, &y, ev) + 0.5 * u * u - htot) / htot;
        points.push(RelaxationPoint {
            x,
            t,
            tv,
            u,
            rho,
            p,
            y,
            x_mole,
            n_total,
            ev,
            h_residual,
        });
    }

    telemetry.add_phase_secs("shock1d_march", march_t0.elapsed().as_secs_f64());

    // Algebraic-invariant audits over the assembled stations: the steady
    // shock-frame flow conserves mdot, total pressure, and total enthalpy
    // exactly; mass fractions stay normalized; the state stays positive.
    if crate::audit::cadence() != 0 && !points.is_empty() {
        let mut mass_dev = 0.0_f64;
        let mut mom_dev = 0.0_f64;
        let mut h_dev = 0.0_f64;
        let mut ysum_dev = 0.0_f64;
        let mut min_t = f64::INFINITY;
        let mut min_t_at = 0usize;
        for (k, pt) in points.iter().enumerate() {
            mass_dev = mass_dev.max((pt.rho * pt.u - mdot).abs() / mdot);
            mom_dev = mom_dev.max((pt.p + pt.rho * pt.u * pt.u - ptot).abs() / ptot);
            h_dev = h_dev.max(pt.h_residual.abs());
            ysum_dev = ysum_dev.max((pt.y.iter().sum::<f64>() - 1.0).abs());
            if pt.t < min_t {
                min_t = pt.t;
                min_t_at = k;
            }
        }
        let n_pts = points.len();
        let findings = vec![
            crate::audit::graded(
                "mass_flux_invariant",
                mass_dev,
                crate::audit::INVARIANT_WARN,
                crate::audit::INVARIANT_FAIL,
                n_pts,
                format!("max |ρu − mdot|/mdot over {n_pts} stations"),
            ),
            crate::audit::graded(
                "momentum_flux_invariant",
                mom_dev,
                crate::audit::INVARIANT_WARN,
                crate::audit::INVARIANT_FAIL,
                n_pts,
                format!("max |p + ρu² − ptot|/ptot over {n_pts} stations"),
            ),
            crate::audit::graded(
                "total_enthalpy_invariant",
                h_dev,
                crate::audit::INVARIANT_WARN,
                crate::audit::INVARIANT_FAIL,
                n_pts,
                format!("max |h₀ residual| over {n_pts} stations"),
            ),
            crate::audit::mass_fraction_sum_finding(ysum_dev, (0, 0), n_pts),
            crate::audit::positivity_finding("temperature_positivity", min_t, (min_t_at, 0), n_pts),
        ];
        crate::audit::apply(&mut telemetry, findings)?;
    }

    Ok(RelaxationSolution {
        points,
        t_frozen: jump.t,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::equilibrium::air9_equilibrium;
    use aerothermo_gas::kinetics::park_air9;
    use aerothermo_gas::relaxation::RelaxationModel;

    fn park_problem() -> (ReactionSet, RelaxationModel, RelaxationProblem) {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let relax = RelaxationModel::new(gas.mixture().clone());
        let mut y1 = vec![0.0; gas.mixture().len()];
        y1[0] = 0.767; // N2
        y1[1] = 0.233; // O2
        let problem = RelaxationProblem {
            u1: 10_000.0,
            t1: 300.0,
            p1: 13.3, // 0.1 torr
            y1,
            x_end: 0.05,
        };
        (set, relax, problem)
    }

    #[test]
    fn park_fig7_structure() {
        // The qualitative structure of the paper's Fig. 7: T starts huge,
        // T_v starts cold, they approach each other downstream while N2
        // dissociates.
        let (set, relax, problem) = park_problem();
        let sol = solve(&set, &relax, &problem).unwrap();
        assert!(sol.points.len() > 50);

        let first = &sol.points[1];
        assert!(first.t > 30_000.0, "frozen T = {}", first.t);
        assert!(first.tv < 2_000.0, "initial Tv = {}", first.tv);

        let last = sol.points.last().unwrap();
        assert!(
            (last.t - last.tv).abs() < 0.25 * last.t,
            "T and Tv should approach: T={} Tv={}",
            last.t,
            last.tv
        );
        // Temperature relaxes downward as dissociation absorbs energy.
        assert!(last.t < 0.6 * sol.t_frozen, "T_end = {}", last.t);

        // N2 dissociates substantially.
        let n2_end = last.y[0];
        assert!(n2_end < 0.6, "y_N2 = {n2_end}");
        // O2 goes almost completely.
        assert!(last.y[1] < 0.02, "y_O2 = {}", last.y[1]);
        // Electrons appear.
        let ye = last.y[8];
        assert!(ye > 0.0, "no ionization: {ye}");
    }

    #[test]
    fn mass_fractions_stay_normalized() {
        let (set, relax, mut problem) = park_problem();
        problem.x_end = 0.01;
        let sol = solve(&set, &relax, &problem).unwrap();
        for p in &sol.points {
            let s: f64 = p.y.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "Σy = {s} at x = {}", p.x);
            assert!(p.y.iter().all(|v| *v > -1e-8), "negative y at {}", p.x);
        }
    }

    #[test]
    fn invariants_conserved_along_march() {
        let (set, relax, mut problem) = park_problem();
        problem.x_end = 0.01;
        let sol = solve(&set, &relax, &problem).unwrap();
        let rho1 = 13.3 / (set.mixture().gas_constant(&problem.y1) * 300.0);
        let mdot = rho1 * 10_000.0;
        let ptot = 13.3 + rho1 * 1e8;
        for p in sol.points.iter().step_by(10) {
            assert!((p.rho * p.u - mdot).abs() / mdot < 1e-6, "mass at {}", p.x);
            let mom = p.p + p.rho * p.u * p.u;
            assert!((mom - ptot).abs() / ptot < 1e-6, "momentum at {}", p.x);
        }
    }

    #[test]
    fn tv_rises_monotonically_early() {
        let (set, relax, mut problem) = park_problem();
        problem.x_end = 0.002;
        let sol = solve(&set, &relax, &problem).unwrap();
        // In the early relaxation zone Tv must climb toward T.
        let early: Vec<f64> = sol.points.iter().take(20).map(|p| p.tv).collect();
        assert!(early.windows(2).all(|w| w[1] >= w[0] - 1.0), "{early:?}");
    }

    #[test]
    fn binary_scaling_relaxation_length() {
        // Doubling the upstream pressure should roughly halve the
        // equilibration distance (binary collision scaling).
        let (set, relax, mut problem) = park_problem();
        problem.x_end = 0.03;
        let sol_lo = solve(&set, &relax, &problem).unwrap();
        problem.p1 *= 2.0;
        let sol_hi = solve(&set, &relax, &problem).unwrap();
        let d_lo = sol_lo.equilibration_distance(0.05);
        let d_hi = sol_hi.equilibration_distance(0.05);
        if let (Some(lo), Some(hi)) = (d_lo, d_hi) {
            let ratio = lo / hi;
            assert!(ratio > 1.3 && ratio < 3.5, "scaling ratio = {ratio}");
        }
    }
}
