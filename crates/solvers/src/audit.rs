//! In-situ physical-invariant audits.
//!
//! The paper's credibility argument rests on conservation: mass, momentum,
//! and energy budgets that close over the shock layer, elemental nuclei
//! that survive chemistry, mass fractions that sum to one, radiative
//! fluxes that never go negative. This module evaluates those invariants
//! *while a solve runs*, at a configurable cadence, and grades each one:
//!
//! * [`AuditSeverity::Pass`] — the invariant holds within its soft
//!   tolerance,
//! * [`AuditSeverity::Warn`] — violated beyond the soft tolerance; the
//!   finding is recorded on the solver's [`RunTelemetry`] and surfaced in
//!   `--report` JSON, the solve continues,
//! * [`AuditSeverity::Fail`] — violated beyond the hard threshold; the
//!   solve aborts with [`SolverError::AuditFailed`].
//!
//! Auditing is **off by default** (a single relaxed atomic load per step)
//! and enabled process-wide with [`enable`] — the same pattern as the
//! kernel counters, so no solver `Options` struct grows a field. Flux
//! budgets are graded leniently while a march is still ringing (the
//! residual sum *is* the budget defect) and at full strictness once the
//! solver reports convergence.
//!
//! The grading constructors ([`budget_finding`], [`graded`],
//! [`positivity_finding`], …) are pure functions of their measurements, so
//! they are directly testable with synthetic data — a mock flux that leaks
//! mass, a field with a negative temperature — without running a solver.

use crate::euler2d::{EulerSolver, NEQ};
use crate::reacting::ReactingSolver;
use aerothermo_numerics::telemetry::{AuditFinding, AuditSeverity, RunTelemetry, SolverError};
use aerothermo_numerics::Field3;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Audit cadence in steps; 0 = auditing disabled.
static CADENCE: AtomicUsize = AtomicUsize::new(0);

/// Enable auditing every `every` steps (process-wide; 0 is coerced to 1).
pub fn enable(every: usize) {
    CADENCE.store(every.max(1), Ordering::Relaxed);
}

/// Disable auditing process-wide.
pub fn disable() {
    CADENCE.store(0, Ordering::Relaxed);
}

/// Current audit cadence in steps (0 = disabled).
#[must_use]
pub fn cadence() -> usize {
    CADENCE.load(Ordering::Relaxed)
}

/// Whether the auditors should run at `step` under the current cadence.
#[must_use]
pub fn due(step: usize) -> bool {
    let c = cadence();
    c != 0 && step.is_multiple_of(c)
}

/// Soft tolerance on `|net|/gross` flux budgets.
pub const BUDGET_WARN: f64 = 5e-3;
/// Hard threshold on flux budgets — only enforced once converged.
pub const BUDGET_FAIL: f64 = 5e-2;
/// Soft tolerance on `|Σy − 1|`.
pub const MASS_FRACTION_WARN: f64 = 1e-3;
/// Hard threshold on `|Σy − 1|`.
pub const MASS_FRACTION_FAIL: f64 = 5e-2;
/// Soft tolerance on per-cell element mass-fraction drift vs freestream.
pub const ELEMENT_WARN: f64 = 2e-2;
/// Hard threshold on element mass-fraction drift.
pub const ELEMENT_FAIL: f64 = 1e-1;
/// Soft tolerance on the 1-D relaxation algebraic invariants (mass,
/// momentum, total enthalpy — held to ~1e-6 by the bracketed closure).
pub const INVARIANT_WARN: f64 = 1e-5;
/// Hard threshold on the relaxation invariants.
pub const INVARIANT_FAIL: f64 = 1e-2;

/// Grade a dimensionless violation `value` against `warn`/`fail`
/// thresholds. Non-finite values always fail.
#[must_use]
pub fn graded(
    audit: &'static str,
    value: f64,
    warn: f64,
    fail: f64,
    step: usize,
    detail: String,
) -> AuditFinding {
    let severity = if !value.is_finite() || value > fail {
        AuditSeverity::Fail
    } else if value > warn {
        AuditSeverity::Warn
    } else {
        AuditSeverity::Pass
    };
    let threshold = if severity == AuditSeverity::Fail {
        fail
    } else {
        warn
    };
    AuditFinding {
        audit,
        severity,
        value,
        threshold,
        step,
        detail,
    }
}

/// Grade a global flux budget: `value = |net|/gross`. While the march is
/// still transient the budget defect is just the unconverged residual sum,
/// so the severity is capped at `Warn` until `converged`; non-finite
/// budgets fail regardless.
#[must_use]
pub fn budget_finding(
    audit: &'static str,
    net: f64,
    gross: f64,
    step: usize,
    converged: bool,
) -> AuditFinding {
    let value = net.abs() / gross.max(1e-300);
    let detail = format!(
        "net {net:.3e} over gross {gross:.3e}{}",
        if converged { " (converged)" } else { "" }
    );
    let mut f = graded(audit, value, BUDGET_WARN, BUDGET_FAIL, step, detail);
    if f.severity == AuditSeverity::Fail && !converged && value.is_finite() {
        f.severity = AuditSeverity::Warn;
        f.threshold = BUDGET_WARN;
    }
    f
}

/// Grade the positivity of a field whose minimum over the domain is
/// `min_value` (at `cell`): any nonpositive or non-finite minimum fails.
/// The reported `value` is the violation depth `max(0, −min)` (∞ for
/// non-finite fields).
#[must_use]
pub fn positivity_finding(
    audit: &'static str,
    min_value: f64,
    cell: (usize, usize),
    step: usize,
) -> AuditFinding {
    let value = if min_value.is_finite() {
        (-min_value).max(0.0)
    } else {
        f64::INFINITY
    };
    let severity = if !min_value.is_finite() || min_value <= 0.0 {
        AuditSeverity::Fail
    } else {
        AuditSeverity::Pass
    };
    AuditFinding {
        audit,
        severity,
        value,
        threshold: 0.0,
        step,
        detail: format!("minimum {min_value:.3e} at cell ({}, {})", cell.0, cell.1),
    }
}

/// Grade `max |Σy − 1|` over the domain (worst at `cell`).
#[must_use]
pub fn mass_fraction_sum_finding(max_dev: f64, cell: (usize, usize), step: usize) -> AuditFinding {
    graded(
        "mass_fraction_sum",
        max_dev,
        MASS_FRACTION_WARN,
        MASS_FRACTION_FAIL,
        step,
        format!("max |Σy − 1| at cell ({}, {})", cell.0, cell.1),
    )
}

/// Grade the drift of one element's mass fraction from its freestream
/// value, `max |z − z∞|` over the domain (worst at `cell`). Nuclei never
/// transmute, so any drift is pure numerical (or flux-scheme) error.
#[must_use]
pub fn element_conservation_finding(
    symbol: &str,
    max_dev: f64,
    cell: (usize, usize),
    step: usize,
) -> AuditFinding {
    graded(
        "element_conservation",
        max_dev,
        ELEMENT_WARN,
        ELEMENT_FAIL,
        step,
        format!(
            "element {symbol}: max |z − z∞| at cell ({}, {})",
            cell.0, cell.1
        ),
    )
}

/// Return the first `Fail` finding as a typed [`SolverError::AuditFailed`].
///
/// # Errors
/// [`SolverError::AuditFailed`] carrying the first failing audit's
/// identifier, measured value, and hard threshold.
pub fn escalate(findings: &[AuditFinding]) -> Result<(), SolverError> {
    for f in findings {
        if f.severity == AuditSeverity::Fail {
            return Err(SolverError::AuditFailed {
                audit: f.audit.to_string(),
                value: f.value,
                threshold: f.threshold,
            });
        }
    }
    Ok(())
}

/// Record every finding on `telemetry`, then escalate the first `Fail`.
///
/// # Errors
/// [`SolverError::AuditFailed`] on the first failing finding (all findings
/// are recorded regardless, so the report still carries the evidence).
pub fn apply(telemetry: &mut RunTelemetry, findings: Vec<AuditFinding>) -> Result<(), SolverError> {
    let err = escalate(&findings).err();
    for f in findings {
        telemetry.record_audit(f);
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Positivity/finiteness of the raw conserved Euler state: density and
/// specific internal energy straight from `u` (the `primitive()` decoder
/// floors both, which would mask exactly the violations being audited).
#[must_use]
pub fn euler_positivity(s: &EulerSolver<'_>, step: usize) -> Vec<AuditFinding> {
    let mut min_rho = f64::INFINITY;
    let mut rho_cell = (0, 0);
    let mut min_e = f64::INFINITY;
    let mut e_cell = (0, 0);
    let mut nonfinite: Option<(usize, usize)> = None;
    for i in 0..s.nci() {
        for j in 0..s.ncj() {
            let c = s.u.vector(i, j);
            if c.iter().any(|v| !v.is_finite()) {
                nonfinite.get_or_insert((i, j));
                continue;
            }
            let rho = c[0];
            if rho < min_rho {
                min_rho = rho;
                rho_cell = (i, j);
            }
            if rho > 0.0 {
                let ux = c[1] / rho;
                let ur = c[2] / rho;
                let e = c[3] / rho - 0.5 * (ux * ux + ur * ur);
                if e < min_e {
                    min_e = e;
                    e_cell = (i, j);
                }
            }
        }
    }
    if let Some(cell) = nonfinite {
        min_rho = f64::NAN;
        rho_cell = cell;
        min_e = f64::NAN;
        e_cell = cell;
    }
    vec![
        positivity_finding("density_positivity", min_rho, rho_cell, step),
        positivity_finding("internal_energy_positivity", min_e, e_cell, step),
    ]
}

/// Positivity/finiteness of one station column `i` of a `[ρ, ρu_x, ρu_r,
/// ρE]` conserved field — the per-station audit of the PNS march (the
/// marching direction makes whole-domain audits meaningless before the
/// march has visited the cells).
#[must_use]
pub fn station_positivity(u: &Field3<f64>, i: usize, step: usize) -> Vec<AuditFinding> {
    let mut min_rho = f64::INFINITY;
    let mut rho_cell = (i, 0);
    let mut min_e = f64::INFINITY;
    let mut e_cell = (i, 0);
    let mut nonfinite: Option<(usize, usize)> = None;
    for j in 0..u.nj() {
        let c = u.vector(i, j);
        if c.iter().any(|v| !v.is_finite()) {
            nonfinite.get_or_insert((i, j));
            continue;
        }
        let rho = c[0];
        if rho < min_rho {
            min_rho = rho;
            rho_cell = (i, j);
        }
        if rho > 0.0 {
            let ux = c[1] / rho;
            let ur = c[2] / rho;
            let e = c[3] / rho - 0.5 * (ux * ux + ur * ur);
            if e < min_e {
                min_e = e;
                e_cell = (i, j);
            }
        }
    }
    if let Some(cell) = nonfinite {
        min_rho = f64::NAN;
        rho_cell = cell;
        min_e = f64::NAN;
        e_cell = cell;
    }
    vec![
        positivity_finding("density_positivity", min_rho, rho_cell, step),
        positivity_finding("internal_energy_positivity", min_e, e_cell, step),
    ]
}

/// Full Euler audit: boundary flux budgets for all four conserved
/// equations plus raw-state positivity.
#[must_use]
pub fn audit_euler(s: &EulerSolver<'_>, step: usize, converged: bool) -> Vec<AuditFinding> {
    const BUDGETS: [&str; NEQ] = [
        "mass_flux_budget",
        "x_momentum_flux_budget",
        "r_momentum_flux_budget",
        "energy_flux_budget",
    ];
    let budget = s.boundary_flux_budget();
    let mut out: Vec<AuditFinding> = BUDGETS
        .iter()
        .zip(budget.iter())
        .map(|(name, &(net, gross))| budget_finding(name, net, gross, step, converged))
        .collect();
    out.extend(euler_positivity(s, step));
    out
}

/// Navier-Stokes audit: the mass budget still closes with the inviscid
/// boundary accounting (viscous fluxes carry no mass and the momentum /
/// energy rows intentionally exchange with the no-slip wall), plus
/// positivity.
#[must_use]
pub fn audit_ns(inviscid: &EulerSolver<'_>, step: usize, converged: bool) -> Vec<AuditFinding> {
    let budget = inviscid.boundary_flux_budget();
    let mut out = vec![budget_finding(
        "mass_flux_budget",
        budget[0].0,
        budget[0].1,
        step,
        converged,
    )];
    out.extend(euler_positivity(inviscid, step));
    out
}

/// Reacting-solver audit: positivity of partial densities and the vibronic
/// pool, mass-fraction normalization, and per-element mass conservation
/// against the freestream composition.
#[must_use]
pub fn audit_reacting(s: &ReactingSolver<'_>, step: usize) -> Vec<AuditFinding> {
    let mix = s.mixture();
    let ns = mix.len();
    let mut min_partial = f64::INFINITY;
    let mut partial_cell = (0, 0);
    let mut min_ev = f64::INFINITY;
    let mut max_ev = 0.0_f64;
    let mut ev_cell = (0, 0);
    let mut nonfinite: Option<(usize, usize)> = None;
    let mut max_ysum = 0.0_f64;
    let mut ysum_cell = (0, 0);
    for i in 0..s.nci() {
        for j in 0..s.ncj() {
            let c = s.u.vector(i, j);
            if c.iter().any(|v| !v.is_finite()) {
                nonfinite.get_or_insert((i, j));
                continue;
            }
            let rho: f64 = c[..ns].iter().sum();
            for v in &c[..ns] {
                // Audited quantity is ρ_s + ρ so a single trace-negative
                // species is tolerated while outright negative mixture
                // density is not.
                if *v + rho < min_partial {
                    min_partial = *v + rho;
                    partial_cell = (i, j);
                }
            }
            if c[ns + 3] < min_ev {
                min_ev = c[ns + 3];
                ev_cell = (i, j);
            }
            max_ev = max_ev.max(c[ns + 3]);
            if rho > 0.0 {
                let dev = (c[..ns].iter().map(|v| v.max(0.0)).sum::<f64>() / rho - 1.0).abs();
                if dev > max_ysum {
                    max_ysum = dev;
                    ysum_cell = (i, j);
                }
            }
        }
    }
    if let Some(cell) = nonfinite {
        min_partial = f64::NAN;
        partial_cell = cell;
    }
    let mut out = vec![
        positivity_finding(
            "species_density_positivity",
            min_partial,
            partial_cell,
            step,
        ),
        graded(
            "vibronic_energy_nonnegativity",
            (-min_ev).max(0.0) / max_ev.max(1e-300),
            1e-10,
            1e-3,
            step,
            format!(
                "min ρe_v {min_ev:.3e} at cell ({}, {})",
                ev_cell.0, ev_cell.1
            ),
        ),
        mass_fraction_sum_finding(max_ysum, ysum_cell, step),
    ];

    // Element conservation vs the inflow composition, when one exists.
    if let Some(y_inf) = s.freestream_composition() {
        let z_ref = mix.element_mass_fractions(&y_inf);
        let mut worst = (0.0_f64, (0, 0), 0usize);
        for i in 0..s.nci() {
            for j in 0..s.ncj() {
                let q = s.primitive(i, j);
                let z = mix.element_mass_fractions(&q.y);
                for (k, ((_, zv), (_, zr))) in z.iter().zip(&z_ref).enumerate() {
                    let dev = (zv - zr).abs();
                    if dev > worst.0 {
                        worst = (dev, (i, j), k);
                    }
                }
            }
        }
        let symbol = z_ref.get(worst.2).map_or("?", |(el, _)| el.symbol());
        out.push(element_conservation_finding(symbol, worst.0, worst.1, step));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaking_mass_budget_fails_only_when_converged() {
        // A mock boundary accounting that loses 10% of the throughput.
        let net = -0.1;
        let gross = 1.0;
        let transient = budget_finding("mass_flux_budget", net, gross, 100, false);
        assert_eq!(transient.severity, AuditSeverity::Warn);
        let converged = budget_finding("mass_flux_budget", net, gross, 100, true);
        assert_eq!(converged.severity, AuditSeverity::Fail);
        assert!((converged.value - 0.1).abs() < 1e-12);
        let err = escalate(&[converged]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mass_flux_budget"), "{msg}");
    }

    #[test]
    fn tight_budget_passes() {
        let f = budget_finding("energy_flux_budget", 1e-6, 1.0, 5, true);
        assert_eq!(f.severity, AuditSeverity::Pass);
        assert!(escalate(&[f]).is_ok());
    }

    #[test]
    fn negative_temperature_field_fails_positivity() {
        let f = positivity_finding("temperature_positivity", -12.5, (3, 7), 42);
        assert_eq!(f.severity, AuditSeverity::Fail);
        assert!((f.value - 12.5).abs() < 1e-12);
        assert!(f.detail.contains("(3, 7)"), "{}", f.detail);
        let err = escalate(&[f]).unwrap_err();
        assert!(matches!(err, SolverError::AuditFailed { .. }));
    }

    #[test]
    fn nan_field_fails_positivity() {
        let f = positivity_finding("density_positivity", f64::NAN, (0, 0), 0);
        assert_eq!(f.severity, AuditSeverity::Fail);
        assert!(f.value.is_infinite());
    }

    #[test]
    fn cadence_gating() {
        disable();
        assert!(!due(0));
        assert_eq!(cadence(), 0);
        enable(50);
        assert!(due(0));
        assert!(!due(49));
        assert!(due(100));
        enable(0); // coerced to every step
        assert_eq!(cadence(), 1);
        assert!(due(17));
        disable();
    }

    #[test]
    fn apply_records_findings_before_escalating() {
        let mut t = RunTelemetry::new();
        let findings = vec![
            graded(
                "mass_fraction_sum",
                2e-3,
                MASS_FRACTION_WARN,
                MASS_FRACTION_FAIL,
                1,
                String::new(),
            ),
            positivity_finding("density_positivity", -1.0, (0, 0), 1),
        ];
        let err = apply(&mut t, findings).unwrap_err();
        assert!(matches!(err, SolverError::AuditFailed { .. }));
        assert_eq!(t.audits().len(), 2);
        assert_eq!(t.worst_audit_severity(), Some(AuditSeverity::Fail));
    }

    #[test]
    fn element_drift_grading() {
        let warn = element_conservation_finding("N", 5e-2, (1, 1), 9);
        assert_eq!(warn.severity, AuditSeverity::Warn);
        assert!(warn.detail.contains("element N"), "{}", warn.detail);
        let fail = element_conservation_finding("O", 0.5, (1, 1), 9);
        assert_eq!(fail.severity, AuditSeverity::Fail);
    }
}
