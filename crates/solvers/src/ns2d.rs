//! Laminar thin-layer Navier-Stokes solver.
//!
//! Extends the finite-volume Euler discretization of [`crate::euler2d`] with
//! viscous fluxes in the body-normal (`j`) direction — the thin-layer
//! approximation every production hypersonic NS code of the paper's era
//! used, appropriate when the grid is wall-clustered and streamwise
//! diffusion is negligible. The wall is no-slip and isothermal; wall heat
//! flux (the quantity the paper's heating figures report) comes from the
//! wall-normal temperature gradient.
//!
//! Molecular transport: Sutherland viscosity with constant Prandtl number
//! by default, or any user closure `μ(T)`.

#[cfg(test)]
use crate::euler2d::Bc;
use crate::euler2d::{BcSet, EulerOptions, EulerSolver, PrimSoA, Primitive, NEQ};
use aerothermo_gas::transport::sutherland_air;
use aerothermo_gas::GasModel;
use aerothermo_grid::StructuredGrid;
use aerothermo_numerics::telemetry::{
    counters, Counter, MonitorOptions, ResidualMonitor, RunTelemetry, SolverError,
};
use aerothermo_numerics::trace;
use rayon::prelude::*;

/// Reusable viscous-assembly scratch: per-cell temperatures and the
/// once-per-face thin-layer j-fluxes. Allocated on the first step, reused
/// afterwards.
#[derive(Debug, Default)]
struct NsScratch {
    /// Cell temperatures \[K\], row-major `i * ncj + j`.
    temp: Vec<f64>,
    /// Viscous j-face fluxes, laid out `i * (ncj + 1) + jface`; the outer
    /// boundary face (`jface == ncj`) carries zero flux (freestream).
    fv: Vec<[f64; NEQ]>,
}

/// Molecular-transport closure.
#[derive(Clone)]
pub struct Transport {
    /// Dynamic viscosity as a function of temperature \[Pa·s\].
    pub viscosity: fn(f64) -> f64,
    /// Prandtl number.
    pub prandtl: f64,
    /// Specific heat at constant pressure \[J/(kg·K)\] (for conductivity
    /// from Pr).
    pub cp: f64,
}

impl Transport {
    /// Sutherland air with Pr = 0.72.
    #[must_use]
    pub fn air() -> Self {
        Self {
            viscosity: sutherland_air,
            prandtl: 0.72,
            cp: 1004.5,
        }
    }

    /// Thermal conductivity \[W/(m·K)\] at `t`.
    #[must_use]
    pub fn conductivity(&self, t: f64) -> f64 {
        (self.viscosity)(t) * self.cp / self.prandtl
    }
}

/// Thin-layer NS solver: an Euler core plus wall-normal viscous fluxes.
pub struct NsSolver<'a> {
    /// The underlying inviscid discretization (owns the state).
    pub inviscid: EulerSolver<'a>,
    transport: Transport,
    /// Isothermal wall temperature \[K\].
    pub t_wall: f64,
    steps: usize,
    startup_steps: usize,
    cfl: f64,
    /// Run-control CFL scale (1.0 = nominal; halved on rollback).
    cfl_scale: f64,
    /// Run-control safety mode: force first-order reconstruction.
    force_first_order: bool,
    vscratch: NsScratch,
}

impl<'a> NsSolver<'a> {
    /// Create a viscous solver. The `bc.j_lo` side is treated as the
    /// no-slip isothermal wall (its inviscid flux remains the slip-wall
    /// pressure flux, standard for cell-centered schemes).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: &'a StructuredGrid,
        gas: &'a dyn GasModel,
        bc: BcSet,
        opts: EulerOptions,
        freestream: (f64, f64, f64, f64),
        transport: Transport,
        t_wall: f64,
    ) -> Self {
        let startup_steps = opts.startup_steps;
        let cfl = opts.cfl;
        let inviscid = EulerSolver::new(grid, gas, bc, opts, freestream);
        Self {
            inviscid,
            transport,
            t_wall,
            steps: 0,
            startup_steps,
            cfl,
            cfl_scale: 1.0,
            force_first_order: false,
            vscratch: NsScratch::default(),
        }
    }

    /// Temperature of cell `(i, j)` \[K\].
    #[must_use]
    pub fn temperature(&self, i: usize, j: usize) -> f64 {
        let q = self.inviscid.primitive(i, j);
        let e = self.inviscid.internal_energy(i, j);
        self.inviscid.gas().temperature(q.rho, e)
    }

    /// Viscous flux through a j-face given the two states and geometric
    /// data: the thin-layer flux vector (momentum, energy) · area, oriented
    /// along the +j normal.
    #[allow(clippy::too_many_arguments)]
    fn visc_flux(
        &self,
        ql: &Primitive,
        tl: f64,
        qr: &Primitive,
        tr: f64,
        dn: f64,
        sx: f64,
        sr: f64,
        u_face: Option<(f64, f64)>,
    ) -> [f64; NEQ] {
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let t_face = 0.5 * (tl + tr);
        let mu = (self.transport.viscosity)(t_face);
        let k = self.transport.conductivity(t_face);
        let dudn = (qr.ux - ql.ux) / dn;
        let dvdn = (qr.ur - ql.ur) / dn;
        let dtdn = (tr - tl) / dn;
        // Thin-layer stress: τ·n = μ[∂u/∂n + (1/3)·n·∂(u·n)/∂n].
        let dundn = dudn * nx + dvdn * nr;
        let tau_x = mu * (dudn + dundn * nx / 3.0);
        let tau_r = mu * (dvdn + dundn * nr / 3.0);
        let (u_face_x, u_face_r) = u_face.unwrap_or((0.5 * (ql.ux + qr.ux), 0.5 * (ql.ur + qr.ur)));
        let q_heat = k * dtdn;
        [
            0.0,
            tau_x * area,
            tau_r * area,
            (tau_x * u_face_x + tau_r * u_face_r + q_heat) * area,
        ]
    }

    /// Viscous residual contribution of cell `(i, j)` (thin layer: j-faces
    /// only; wall face handled with one-sided differences against the
    /// no-slip isothermal wall).
    ///
    /// Retained as the per-cell reference implementation (it evaluates every
    /// interior viscous face twice); the step loop uses the face-based
    /// scratch assembly, and the property tests pin that assembly to this
    /// function.
    pub fn viscous_residual(&self, i: usize, j: usize) -> [f64; NEQ] {
        let mut res = [0.0; NEQ];
        let m = self.inviscid.grid_metrics();
        let ncj = self.inviscid.ncj();
        let face_flux = |ql: &Primitive,
                         tl: f64,
                         qr: &Primitive,
                         tr: f64,
                         dn: f64,
                         sx: f64,
                         sr: f64,
                         u_face: Option<(f64, f64)>| {
            self.visc_flux(ql, tl, qr, tr, dn, sx, sr, u_face)
        };

        let qc = self.inviscid.primitive(i, j);
        let tc = self.temperature(i, j);

        // Bottom face (j): flux in (+ when oriented +j into the cell).
        {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            let f = if j == 0 {
                // No-slip isothermal wall: one-sided difference from the
                // wall-face midpoint to the cell center.
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = sx / area;
                let nr = sr / area;
                // Distance from wall face to cell center along the normal.
                let gx = m.xc[(i, 0)];
                let gr = m.rc[(i, 0)];
                // Wall-face midpoint ≈ centroid minus normal projection: use
                // the projection of (cell center − any wall node) onto n.
                let dn = ((gx - self.wall_x(i)) * nx + (gr - self.wall_r(i)) * nr)
                    .abs()
                    .max(1e-12);
                let wall = Primitive {
                    ux: 0.0,
                    ur: 0.0,
                    ..qc
                };
                // No-slip: the stress does no work on the stationary wall.
                face_flux(&wall, self.t_wall, &qc, tc, dn, sx, sr, Some((0.0, 0.0)))
            } else {
                let ql = self.inviscid.primitive(i, j - 1);
                let tl = self.temperature(i, j - 1);
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = sx / area;
                let nr = sr / area;
                let dn = ((m.xc[(i, j)] - m.xc[(i, j - 1)]) * nx
                    + (m.rc[(i, j)] - m.rc[(i, j - 1)]) * nr)
                    .abs()
                    .max(1e-12);
                face_flux(&ql, tl, &qc, tc, dn, sx, sr, None)
            };
            // Viscous terms enter with the opposite sign of the convective
            // flux: dU/dt·V = −∮F_inv·n̂ dA + ∮G_visc·n̂ dA. For the bottom
            // face the outward normal is −n_j, so the contribution is −G.
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }
        // Top face (j+1): same flux evaluated there, leaving the cell.
        {
            let sx = m.sj_x[(i, j + 1)];
            let sr = m.sj_r[(i, j + 1)];
            if j + 1 == ncj {
                // Outer boundary: no viscous flux (freestream).
            } else {
                let qr = self.inviscid.primitive(i, j + 1);
                let tr = self.temperature(i, j + 1);
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let nx = sx / area;
                let nr = sr / area;
                let dn = ((m.xc[(i, j + 1)] - m.xc[(i, j)]) * nx
                    + (m.rc[(i, j + 1)] - m.rc[(i, j)]) * nr)
                    .abs()
                    .max(1e-12);
                let f = face_flux(&qc, tc, &qr, tr, dn, sx, sr, None);
                for k in 0..NEQ {
                    res[k] += f[k];
                }
            }
        }
        res
    }

    /// Viscous flux through j-face `(i, jface)` from cached primitives and
    /// temperatures; matches the per-face arithmetic of
    /// [`Self::viscous_residual`] exactly. The outer boundary face carries
    /// no viscous flux (freestream).
    fn viscous_face_flux(
        &self,
        prim: &PrimSoA,
        temp: &[f64],
        i: usize,
        jface: usize,
    ) -> [f64; NEQ] {
        let m = self.inviscid.grid_metrics();
        let ncj = self.inviscid.ncj();
        if jface == ncj {
            return [0.0; NEQ];
        }
        let sx = m.sj_x[(i, jface)];
        let sr = m.sj_r[(i, jface)];
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        if jface == 0 {
            // No-slip isothermal wall: one-sided difference from the
            // wall-face midpoint to the cell center.
            let qc = prim.get(i * ncj);
            let tc = temp[i * ncj];
            let gx = m.xc[(i, 0)];
            let gr = m.rc[(i, 0)];
            let dn = ((gx - self.wall_x(i)) * nx + (gr - self.wall_r(i)) * nr)
                .abs()
                .max(1e-12);
            let wall = Primitive {
                ux: 0.0,
                ur: 0.0,
                ..qc
            };
            // No-slip: the stress does no work on the stationary wall.
            self.visc_flux(&wall, self.t_wall, &qc, tc, dn, sx, sr, Some((0.0, 0.0)))
        } else {
            let ql = prim.get(i * ncj + jface - 1);
            let tl = temp[i * ncj + jface - 1];
            let qr = prim.get(i * ncj + jface);
            let tr = temp[i * ncj + jface];
            let dn = ((m.xc[(i, jface)] - m.xc[(i, jface - 1)]) * nx
                + (m.rc[(i, jface)] - m.rc[(i, jface - 1)]) * nr)
                .abs()
                .max(1e-12);
            self.visc_flux(&ql, tl, &qr, tr, dn, sx, sr, None)
        }
    }

    /// Fill the viscous scratch: cache every cell temperature once, then
    /// sweep each viscous j-face exactly once (row-parallel, race-free).
    fn assemble_viscous(&self, prim: &PrimSoA, scratch: &mut NsScratch) {
        let nci = self.inviscid.nci();
        let ncj = self.inviscid.ncj();
        scratch.temp.resize(nci * ncj, 0.0);
        scratch.fv.resize(nci * (ncj + 1), [0.0; NEQ]);

        scratch
            .temp
            .par_chunks_mut(ncj)
            .enumerate()
            .for_each(|(i, row)| {
                for (j, t) in row.iter_mut().enumerate() {
                    *t = self
                        .inviscid
                        .gas()
                        .temperature(prim.rho[i * ncj + j], self.inviscid.internal_energy(i, j));
                }
            });

        let temp: &[f64] = &scratch.temp;
        scratch
            .fv
            .par_chunks_mut(ncj + 1)
            .enumerate()
            .for_each(|(i, row)| {
                for (jface, f) in row.iter_mut().enumerate() {
                    *f = self.viscous_face_flux(prim, temp, i, jface);
                }
            });
        counters::add(Counter::FacesEvaluated, (nci * ncj) as u64);
    }

    fn wall_x(&self, i: usize) -> f64 {
        // Midpoint of the wall face of cell column i (nodes (i,0)-(i+1,0)).
        0.5 * (self.grid_node_x(i, 0) + self.grid_node_x(i + 1, 0))
    }

    fn wall_r(&self, i: usize) -> f64 {
        0.5 * (self.grid_node_r(i, 0) + self.grid_node_r(i + 1, 0))
    }

    fn grid_node_x(&self, i: usize, j: usize) -> f64 {
        self.inviscid.grid().x[(i, j)]
    }

    fn grid_node_r(&self, i: usize, j: usize) -> f64 {
        self.inviscid.grid().r[(i, j)]
    }

    /// One explicit step; returns the density-residual norm.
    pub fn step(&mut self) -> f64 {
        let _sp = trace::span("ns_step");
        let _mt = aerothermo_numerics::metrics::time(aerothermo_numerics::metrics::Timer::NsStep);
        let (startup, cfl) = crate::runctl::startup_schedule(
            self.steps,
            self.startup_steps,
            self.cfl_scale * self.cfl,
        );
        let first_order = startup || self.force_first_order;
        let nci = self.inviscid.nci();
        let ncj = self.inviscid.ncj();

        // Face-based assembly: inviscid faces through the Euler scratch,
        // viscous j-faces through the NS scratch — each face evaluated once,
        // no per-step allocation after warmup.
        let mut esc = std::mem::take(&mut self.inviscid.scratch);
        self.inviscid.assemble_faces(&mut esc, first_order);
        let mut vsc = std::mem::take(&mut self.vscratch);
        self.assemble_viscous(&esc.prim, &mut vsc);

        let mut resnorm = 0.0;
        for i in 0..nci {
            for j in 0..ncj {
                let idx = i * ncj + j;
                let mut res = self.inviscid.gather_residual(&esc, i, j);
                // Viscous gather in viscous_residual's accumulation order:
                // −bottom face, +top face.
                let fb = &vsc.fv[i * (ncj + 1) + j];
                let ft = &vsc.fv[i * (ncj + 1) + j + 1];
                for k in 0..NEQ {
                    let mut vv = 0.0;
                    vv -= fb[k];
                    vv += ft[k];
                    res[k] += vv;
                }
                let dt = self.viscous_dt(&esc.prim.get(idx), vsc.temp[idx], i, j, cfl);
                let v = self.inviscid.grid_metrics().volume[(i, j)];
                let cell = self.inviscid.u.vector_mut(i, j);
                for k in 0..NEQ {
                    cell[k] += dt / v * res[k];
                }
                if cell[0] < 1e-12 {
                    cell[0] = 1e-12;
                }
                let r = res[0] / v;
                resnorm += r * r;
            }
        }
        self.inviscid.scratch = esc;
        self.vscratch = vsc;
        self.steps += 1;
        (resnorm / (nci * ncj) as f64).sqrt()
    }

    /// Time step with the viscous spectral radius added, given the cell's
    /// cached primitives and temperature.
    fn viscous_dt(&self, q: &Primitive, t: f64, i: usize, j: usize, cfl: f64) -> f64 {
        let m = self.inviscid.grid_metrics();
        let mu = (self.transport.viscosity)(t);
        let spectral = |sx: f64, sr: f64| -> f64 {
            let area = (sx * sx + sr * sr).sqrt();
            (q.ux * sx + q.ur * sr).abs() + q.a * area
        };
        let lam_c = spectral(m.si_x[(i, j)], m.si_r[(i, j)])
            + spectral(m.si_x[(i + 1, j)], m.si_r[(i + 1, j)])
            + spectral(m.sj_x[(i, j)], m.sj_r[(i, j)])
            + spectral(m.sj_x[(i, j + 1)], m.sj_r[(i, j + 1)]);
        let area_j = {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            (sx * sx + sr * sr).sqrt()
        };
        let vol = m.volume[(i, j)];
        let lam_v = 4.0 * mu / q.rho * area_j * area_j / vol;
        cfl * vol / (lam_c + lam_v).max(1e-300)
    }

    /// Run to steady state; returns `(steps, residual ratio)`.
    ///
    /// Residual history and the `ns_run` phase land in the underlying
    /// [`EulerSolver::telemetry`] sink (`self.inviscid.telemetry`).
    ///
    /// # Errors
    /// [`SolverError::Diverged`] on detected residual blow-up,
    /// [`SolverError::NonFinite`] (with the first affected cell) on NaN/Inf
    /// contamination.
    pub fn run(&mut self, max_steps: usize, tol: f64) -> Result<(usize, f64), SolverError> {
        let t0 = std::time::Instant::now();
        let mut monitor = ResidualMonitor::with_options(MonitorOptions {
            grace: self.startup_steps + 25,
            ..MonitorOptions::default()
        });
        let mut reference = f64::NAN;
        let mut last = 1.0;
        let mut steps = max_steps;
        let mut failure: Option<SolverError> = None;
        for n in 0..max_steps {
            let r = self.step();
            if let Err(e) = monitor.record(r) {
                failure = Some(match e {
                    SolverError::NonFinite { .. } => self.inviscid.locate_nonfinite().unwrap_or(e),
                    other => other,
                });
                break;
            }
            if crate::audit::due(n) {
                let findings = crate::audit::audit_ns(&self.inviscid, n, false);
                if let Err(e) = crate::audit::apply(&mut self.inviscid.telemetry, findings) {
                    failure = Some(e);
                    break;
                }
            }
            if n == self.startup_steps {
                reference = r.max(1e-300);
            }
            if reference.is_finite() {
                last = r / reference;
                if last < tol {
                    steps = n + 1;
                    break;
                }
            }
        }
        if failure.is_none() && crate::audit::cadence() != 0 {
            let findings = crate::audit::audit_ns(&self.inviscid, steps, last < tol);
            if let Err(e) = crate::audit::apply(&mut self.inviscid.telemetry, findings) {
                failure = Some(e);
            }
        }
        self.inviscid
            .telemetry
            .add_phase_secs("ns_run", t0.elapsed().as_secs_f64());
        self.inviscid
            .telemetry
            .record_history("density_residual", monitor.into_history());
        match failure {
            Some(e) => Err(e),
            None => Ok((steps, last)),
        }
    }

    /// Wall heat flux \[W/m²\] at cell column `i` (positive = into the
    /// wall), from the one-sided wall-normal temperature gradient.
    #[must_use]
    pub fn wall_heat_flux(&self, i: usize) -> f64 {
        let m = self.inviscid.grid_metrics();
        let sx = m.sj_x[(i, 0)];
        let sr = m.sj_r[(i, 0)];
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let dn = ((m.xc[(i, 0)] - self.wall_x(i)) * nx + (m.rc[(i, 0)] - self.wall_r(i)) * nr)
            .abs()
            .max(1e-12);
        let t1 = self.temperature(i, 0);
        let t_face = 0.5 * (t1 + self.t_wall);
        let k = self.transport.conductivity(t_face);
        k * (t1 - self.t_wall) / dn
    }

    /// Wall shear stress magnitude \[Pa\] at cell column `i`.
    #[must_use]
    pub fn wall_shear(&self, i: usize) -> f64 {
        let m = self.inviscid.grid_metrics();
        let sx = m.sj_x[(i, 0)];
        let sr = m.sj_r[(i, 0)];
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let dn = ((m.xc[(i, 0)] - self.wall_x(i)) * nx + (m.rc[(i, 0)] - self.wall_r(i)) * nr)
            .abs()
            .max(1e-12);
        let q = self.inviscid.primitive(i, 0);
        // Tangential component of the first-cell velocity.
        let un = q.ux * nx + q.ur * nr;
        let utx = q.ux - un * nx;
        let utr = q.ur - un * nr;
        let ut = (utx * utx + utr * utr).sqrt();
        let t_face = 0.5 * (self.temperature(i, 0) + self.t_wall);
        (self.transport.viscosity)(t_face) * ut / dn
    }

    /// Snapshot the persistent state (the conserved field lives in the
    /// inviscid core; the NS layer adds only its own step counter — both
    /// scratch structs are recomputed every step).
    #[must_use]
    pub fn save_state(&self) -> crate::runctl::Snapshot {
        crate::runctl::Snapshot {
            step: self.steps,
            cfl_scale: self.cfl_scale,
            data: self.inviscid.u.as_slice().to_vec(),
        }
    }

    /// Restore a snapshot taken from an identically-shaped solver.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on a payload-size mismatch.
    pub fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        let want = self.inviscid.u.as_slice().len();
        if snap.data.len() != want {
            return Err(SolverError::BadInput(format!(
                "ns2d restore: state length {} != {want}",
                snap.data.len()
            )));
        }
        self.inviscid.u.as_mut_slice().copy_from_slice(&snap.data);
        self.steps = snap.step;
        self.cfl_scale = snap.cfl_scale;
        Ok(())
    }
}

impl crate::runctl::Steppable for NsSolver<'_> {
    fn advance(&mut self) -> Result<f64, SolverError> {
        let n = self.steps;
        let r = self.step();
        if !r.is_finite() {
            return Err(self
                .inviscid
                .locate_nonfinite()
                .unwrap_or(SolverError::NonFinite {
                    field: "residual",
                    i: n,
                    j: 0,
                }));
        }
        if crate::audit::due(n) {
            let findings = crate::audit::audit_ns(&self.inviscid, n, false);
            crate::audit::apply(&mut self.inviscid.telemetry, findings)?;
        }
        Ok(r)
    }

    fn progress(&self) -> usize {
        self.steps
    }

    fn save_state(&self) -> crate::runctl::Snapshot {
        NsSolver::save_state(self)
    }

    fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        NsSolver::restore_state(self, snap)
    }

    fn cfl_scale(&self) -> f64 {
        self.cfl_scale
    }

    fn set_cfl_scale(&mut self, scale: f64) {
        self.cfl_scale = scale;
    }

    fn set_first_order_fallback(&mut self, on: bool) {
        self.force_first_order = on;
    }

    fn meta(&self) -> crate::runctl::RunMeta {
        crate::runctl::RunMeta {
            tag: "ns2d".to_string(),
            gas: self.inviscid.gas().describe(),
            shape: self.inviscid.u.shape(),
        }
    }

    fn telemetry_mut(&mut self) -> &mut RunTelemetry {
        &mut self.inviscid.telemetry
    }

    fn finalize(&mut self, converged: bool) -> Result<(), SolverError> {
        if crate::audit::cadence() != 0 {
            let findings = crate::audit::audit_ns(&self.inviscid, self.steps, converged);
            crate::audit::apply(&mut self.inviscid.telemetry, findings)?;
        }
        Ok(())
    }

    fn poison(&mut self) {
        let (i, j) = (self.inviscid.nci() / 2, self.inviscid.ncj() / 2);
        self.inviscid.u.vector_mut(i, j)[0] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blayer::{fay_riddell, newtonian_velocity_gradient, FayRiddellInputs};
    use crate::euler2d::EulerScratch;
    use aerothermo_gas::IdealGas;
    use aerothermo_grid::bodies::Hemisphere;
    use aerothermo_grid::{stretch, Geometry, StructuredGrid};

    /// Viscous wall flow with deterministic per-cell perturbations of the
    /// freestream (admissible: positive density and pressure).
    fn perturbed_ns_solver<'a>(
        grid: &'a StructuredGrid,
        gas: &'a IdealGas,
        mach: f64,
        amp: f64,
        seed: u64,
    ) -> NsSolver<'a> {
        let t = 250.0;
        let p0 = 2000.0;
        let rho0 = p0 / (287.05 * t);
        let a0 = (1.4_f64 * 287.05 * t).sqrt();
        let v0 = mach * a0;
        let fs = (rho0, v0, 0.0, p0);
        let bc = BcSet {
            i_lo: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            startup_steps: 0,
            ..EulerOptions::default()
        };
        let mut solver = NsSolver::new(grid, gas, bc, opts, fs, Transport::air(), 300.0);
        let mut state = seed | 1;
        let mut noise = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                let rho = rho0 * (1.0 + amp * noise());
                let p = p0 * (1.0 + amp * noise());
                let ux = v0 * (1.0 + amp * noise());
                let ur = 0.3 * v0 * amp * noise();
                let e = gas.energy(rho, p);
                let cell = solver.inviscid.u.vector_mut(i, j);
                cell[0] = rho;
                cell[1] = rho * ux;
                cell[2] = rho * ur;
                cell[3] = rho * (e + 0.5 * (ux * ux + ur * ur));
            }
        }
        solver
    }

    /// Maximum relative difference between the face-based (inviscid +
    /// viscous) assembly and the per-cell reference residuals.
    fn max_face_vs_cell_rel_diff(solver: &NsSolver, first_order: bool) -> f64 {
        let ncj = solver.inviscid.ncj();
        let mut esc = EulerScratch::default();
        solver.inviscid.assemble_faces(&mut esc, first_order);
        let mut vsc = NsScratch::default();
        solver.assemble_viscous(&esc.prim, &mut vsc);
        let mut worst = 0.0_f64;
        for i in 0..solver.inviscid.nci() {
            for j in 0..ncj {
                let mut fb = solver.inviscid.gather_residual(&esc, i, j);
                let flo = &vsc.fv[i * (ncj + 1) + j];
                let fhi = &vsc.fv[i * (ncj + 1) + j + 1];
                for k in 0..NEQ {
                    let mut vv = 0.0;
                    vv -= flo[k];
                    vv += fhi[k];
                    fb[k] += vv;
                }
                let mut cc = solver.inviscid.cell_residual(i, j, first_order);
                let vc = solver.viscous_residual(i, j);
                for k in 0..NEQ {
                    cc[k] += vc[k];
                }
                let scale = cc.iter().fold(1e-300_f64, |m, v| m.max(v.abs()));
                for k in 0..NEQ {
                    worst = worst.max((fb[k] - cc[k]).abs() / cc[k].abs().max(scale));
                }
            }
        }
        worst
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig {
            cases: 24,
            ..proptest::test_runner::ProptestConfig::default()
        })]

        /// The face-based viscous+inviscid assembly agrees with the per-cell
        /// reference on randomized admissible states — both reconstruction
        /// orders, both geometries.
        #[test]
        fn face_based_matches_cell_centered_ns_residuals(
            mach in 0.5_f64..4.0,
            amp in 0.01_f64..0.12,
            seed in 0_u64..1_000_000,
        ) {
            let gas = IdealGas::air();
            for geometry in [Geometry::Planar, Geometry::Axisymmetric] {
                let grid = StructuredGrid::rectangle(7, 9, 0.2, 0.1, geometry);
                let solver = perturbed_ns_solver(&grid, &gas, mach, amp, seed);
                for first_order in [true, false] {
                    let d = max_face_vs_cell_rel_diff(&solver, first_order);
                    proptest::prop_assert!(
                        d <= 1e-13,
                        "rel diff {d:.3e} ({geometry:?}, first_order = {first_order})"
                    );
                }
            }
        }
    }

    #[test]
    fn quiescent_gas_cools_toward_wall_temperature() {
        // Closed box of hot gas between cold isothermal walls (j_lo) and a
        // symmetry top: conduction must cool the near-wall gas, heat flux
        // into the wall positive.
        let gas = IdealGas::air();
        let grid = StructuredGrid::rectangle(4, 20, 0.1, 0.01, Geometry::Planar);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::SlipWall,
            j_lo: Bc::SlipWall,
            j_hi: Bc::SlipWall,
        };
        let opts = EulerOptions {
            startup_steps: 0,
            cfl: 0.3,
            ..EulerOptions::default()
        };
        // Gas at 600 K, wall at 300 K.
        let rho = 101_325.0 / (287.05 * 600.0);
        let mut solver = NsSolver::new(
            &grid,
            &gas,
            bc,
            opts,
            (rho, 0.0, 0.0, 101_325.0),
            Transport::air(),
            300.0,
        );
        let t0 = solver.temperature(1, 0);
        let q0 = solver.wall_heat_flux(1);
        assert!(q0 > 0.0, "heat must flow into the cold wall: {q0}");
        for _ in 0..2000 {
            solver.step();
        }
        let t1 = solver.temperature(1, 0);
        assert!(t1 < t0 - 1.0, "near-wall gas should cool: {t0} -> {t1}");
    }

    #[test]
    fn hemisphere_viscous_stagnation_heating_vs_fay_riddell() {
        // Mach 8 over a 0.1 m hemisphere at wind-tunnel-like conditions;
        // the NS wall heat flux at the stagnation point should agree with
        // Fay-Riddell within a factor ~2 on this coarse grid.
        let gas = IdealGas::air();
        let rn = 0.1;
        let body = Hemisphere::new(rn);
        let dist = stretch::tanh_one_sided(61, 4.0);
        let grid =
            StructuredGrid::blunt_body(&body, 21, 61, &|sb| (0.035 + 0.03 * sb) * rn / 0.1, &dist);
        let t_inf = 220.0;
        let p_inf = 500.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let a_inf = (1.4_f64 * 287.05 * t_inf).sqrt();
        let v_inf = 8.0 * a_inf;
        let fs = (rho_inf, v_inf, 0.0, p_inf);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let t_wall = 300.0;
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 500,
            ..EulerOptions::default()
        };
        let mut solver = NsSolver::new(&grid, &gas, bc, opts, fs, Transport::air(), t_wall);
        // The diffusive near-wall layer converges slowly under local time
        // stepping; average the flux over the tail of the run to smooth the
        // residual limit cycle.
        solver.run(15_000, 1e-9).expect("stable run");
        let mut q_ns = 0.0;
        for _ in 0..5 {
            solver.run(1_000, 1e-9).expect("stable run");
            q_ns += solver.wall_heat_flux(0) / 5.0;
        }

        // Fay-Riddell reference.
        let (p_ratio, rho_ratio, t_ratio, _) = crate::shock::perfect_gas_jump(8.0, 1.4);
        let p_e = p_inf * p_ratio * 1.094; // post-shock + isentropic recompression ≈ pitot
        let t_e = t_inf * t_ratio * 1.02;
        let rho_e = rho_inf * rho_ratio * p_e / (p_inf * p_ratio) * t_inf * t_ratio / t_e;
        let mu_e = sutherland_air(t_e);
        let rho_w = p_e / (287.05 * t_wall);
        let q_fr = fay_riddell(&FayRiddellInputs {
            rho_e,
            mu_e,
            rho_w,
            mu_w: sutherland_air(t_wall),
            due_dx: newtonian_velocity_gradient(rn, p_e, p_inf, rho_e),
            h0e: 1004.5 * t_inf + 0.5 * v_inf * v_inf,
            hw: 1004.5 * t_wall,
            pr: 0.72,
            lewis: 1.0,
            h_d_frac: 0.0,
        });
        let ratio = q_ns / q_fr;
        assert!(
            ratio > 0.4 && ratio < 3.0,
            "q_NS = {q_ns:.3e}, q_FR = {q_fr:.3e}, ratio = {ratio:.2}"
        );
    }

    #[test]
    fn wall_shear_positive_downstream_of_stagnation() {
        let gas = IdealGas::air();
        let rn = 0.1;
        let body = Hemisphere::new(rn);
        let dist = stretch::tanh_one_sided(41, 3.5);
        let grid =
            StructuredGrid::blunt_body(&body, 17, 41, &|sb| (0.035 + 0.03 * sb) * rn / 0.1, &dist);
        let t_inf = 220.0;
        let p_inf = 500.0;
        let rho_inf = p_inf / (287.05 * t_inf);
        let v_inf = 6.0 * (1.4_f64 * 287.05 * t_inf).sqrt();
        let fs = (rho_inf, v_inf, 0.0, p_inf);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 400,
            ..EulerOptions::default()
        };
        let mut solver = NsSolver::new(&grid, &gas, bc, opts, fs, Transport::air(), 300.0);
        solver.run(3000, 1e-2).expect("stable run");
        // Shear grows away from the stagnation point then stays positive.
        let tau_stag = solver.wall_shear(0);
        let tau_mid = solver.wall_shear(8);
        assert!(tau_mid > tau_stag, "{tau_stag} vs {tau_mid}");
        assert!(tau_mid > 0.0);
    }
}
