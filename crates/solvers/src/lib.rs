//! The flow solvers of computational aerothermodynamics.
//!
//! The paper organizes CAT around four equation sets — full Navier-Stokes
//! (NS), parabolized Navier-Stokes (PNS), Euler + boundary layer (E+BL), and
//! viscous shock layer (VSL) — plus the one-dimensional kinetic studies that
//! validate the real-gas models. Each has a module here:
//!
//! * [`shock`] — Rankine-Hugoniot jump relations (perfect gas, frozen
//!   mixture, general [`aerothermo_gas::GasModel`]),
//! * [`shock1d`] — post-shock thermochemical relaxation marching (the
//!   shock-tube studies of the paper's Fig. 7),
//! * [`blayer`] — self-similar boundary layers, Fay-Riddell stagnation
//!   heating, Lees laminar heating distributions (the "BL" of E+BL),
//! * [`vsl`] — stagnation-line viscous shock layer with equilibrium
//!   chemistry and radiative loss (Figs. 2–3),
//! * [`euler2d`] — axisymmetric/planar finite-volume Euler with AUSM+ fluxes
//!   and MUSCL reconstruction (the "E" of E+BL; Fig. 4 shock shapes),
//! * [`reacting`] — two-temperature nonequilibrium reacting Euler with
//!   operator-split (loosely coupled) Park chemistry — the paper's "biggest
//!   challenge" item,
//! * [`ns2d`] — laminar Navier-Stokes extension of the same discretization
//!   (Fig. 9),
//! * [`pns`] — parabolized NS space marching with Vigneron pressure
//!   splitting (Fig. 6 windward heating).
//!
//! Cross-cutting observability: [`audit`] evaluates physical-invariant
//! audits (flux budgets, element conservation, positivity, mass-fraction
//! normalization) in-situ during any of the solves above, at a cadence set
//! process-wide with [`audit::enable`]; [`flight`] is the solver flight
//! recorder — a fixed-capacity ring of per-step records dumped as a
//! post-mortem JSON black box when a controlled run dies (or an
//! `--inject-nan` drill fires).
#![warn(missing_docs)]
// Indexed loops over parallel arrays are the clearest idiom for the
// numerical kernels here; spelled-out spectroscopic constants keep their
// literature precision.
#![allow(
    clippy::needless_range_loop,
    clippy::excessive_precision,
    clippy::type_complexity
)]

pub mod audit;
pub mod blayer;
pub mod euler2d;
pub mod flight;
pub mod ns2d;
pub mod pns;
pub mod reacting;
pub mod riemann;
pub mod runctl;
pub mod shock;
pub mod shock1d;
pub mod vsl;
