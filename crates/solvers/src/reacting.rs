//! Two-temperature nonequilibrium reacting Euler solver.
//!
//! The paper's closing section names the coupling of nonequilibrium
//! phenomena to multidimensional flowfield codes as the discipline's biggest
//! challenge, and describes the practical strategy of the era: the species
//! and flowfield equations are advanced in a *loosely coupled* manner, the
//! stiff chemistry handled by its own implicit integrator. This module
//! implements exactly that:
//!
//! * conserved state per cell: `[ρ₁…ρ_ns, ρu_x, ρu_r, ρE, ρe_v]` — partial
//!   densities, momentum, total energy, and the vibronic energy of the
//!   two-temperature model,
//! * convection: the same AUSM+ / local-time-step machinery as
//!   [`crate::euler2d`], with species mass fractions and vibronic energy
//!   carried upwind,
//! * source terms: operator-split per cell — the Park reaction set and the
//!   Landau-Teller exchange integrated over each convective step by the
//!   adaptive backward-Euler marcher from `aerothermo-numerics` (the same
//!   kernel that drives the 1-D relaxation solver, so the two agree by
//!   construction).
//!
//! Temperature recovery is closed-form: translation/rotation carry
//! `e − e_v − e_formation` with a composition-dependent but
//! temperature-independent `c_v,tr`, so no per-cell Newton is needed on the
//! convective side.

use aerothermo_gas::kinetics::{RateTemperature, ReactionSet};
use aerothermo_gas::relaxation::RelaxationModel;
use aerothermo_gas::thermo::Mixture;
use aerothermo_grid::{Geometry, Metrics, StructuredGrid};
use aerothermo_numerics::constants::K_BOLTZMANN;
use aerothermo_numerics::ode::{stiff_integrate, AdaptiveOptions};
use aerothermo_numerics::telemetry::{
    counters, Counter, MonitorOptions, ResidualMonitor, RunTelemetry, SolverError,
};
use aerothermo_numerics::{trace, Field3};
use rayon::prelude::*;
use std::cell::Cell as StdCell;

/// Boundary condition for one block side.
#[derive(Debug, Clone)]
pub enum ReactingBc {
    /// Supersonic inflow at the given freestream.
    Inflow(FreeStream),
    /// Zero-gradient outflow.
    Outflow,
    /// Inviscid slip wall / symmetry.
    SlipWall,
}

/// Freestream description for the reacting solver.
#[derive(Debug, Clone)]
pub struct FreeStream {
    /// Mass fractions (mixture order).
    pub y: Vec<f64>,
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Axial velocity \[m/s\].
    pub ux: f64,
    /// Radial velocity \[m/s\].
    pub ur: f64,
    /// Temperature \[K\] (thermal equilibrium upstream: T_v = T).
    pub t: f64,
}

/// Boundary conditions for the four sides.
#[derive(Debug, Clone)]
pub struct ReactingBcSet {
    /// i = 0 side.
    pub i_lo: ReactingBc,
    /// i = ni−1 side.
    pub i_hi: ReactingBc,
    /// j = 0 side (body).
    pub j_lo: ReactingBc,
    /// j = nj−1 side (outer).
    pub j_hi: ReactingBc,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct ReactingOptions {
    /// CFL number.
    pub cfl: f64,
    /// First-order, chemistry-frozen startup steps.
    pub startup_steps: usize,
    /// Disable chemistry entirely (frozen-flow mode, for testing).
    pub frozen: bool,
    /// Density floor per species \[kg/m³\].
    pub rho_floor: f64,
}

impl Default for ReactingOptions {
    fn default() -> Self {
        Self {
            cfl: 0.4,
            startup_steps: 300,
            frozen: false,
            rho_floor: 1e-14,
        }
    }
}

/// Primitive state of a reacting cell.
#[derive(Debug, Clone, Default)]
pub struct ReactingPrimitive {
    /// Mass fractions.
    pub y: Vec<f64>,
    /// Mixture density \[kg/m³\].
    pub rho: f64,
    /// Axial velocity \[m/s\].
    pub ux: f64,
    /// Radial velocity \[m/s\].
    pub ur: f64,
    /// Pressure \[Pa\].
    pub p: f64,
    /// Translational-rotational temperature \[K\].
    pub t: f64,
    /// Vibronic temperature \[K\].
    pub tv: f64,
    /// Vibronic energy per unit mass \[J/kg\].
    pub ev: f64,
    /// Frozen sound speed \[m/s\].
    pub a: f64,
    /// Total specific enthalpy \[J/kg\].
    pub h0: f64,
}

impl ReactingPrimitive {
    /// Borrowed view of this primitive (the form the flux kernels take, so
    /// cached SoA cells and owned ghost states share one code path).
    fn as_view(&self) -> ReactingPrimRef<'_> {
        ReactingPrimRef {
            y: &self.y,
            rho: self.rho,
            ux: self.ux,
            ur: self.ur,
            p: self.p,
            t: self.t,
            tv: self.tv,
            ev: self.ev,
            a: self.a,
            h0: self.h0,
        }
    }
}

/// Borrowed per-cell view into [`ReactingPrimSoA`] (or an owned
/// [`ReactingPrimitive`] via [`ReactingPrimitive::as_view`]).
#[derive(Debug, Clone, Copy)]
struct ReactingPrimRef<'s> {
    y: &'s [f64],
    rho: f64,
    ux: f64,
    ur: f64,
    p: f64,
    t: f64,
    tv: f64,
    ev: f64,
    a: f64,
    h0: f64,
}

impl ReactingPrimRef<'_> {
    /// Materialize an owned primitive (boundary ghost construction only —
    /// the interior sweeps never allocate).
    fn to_owned(self) -> ReactingPrimitive {
        ReactingPrimitive {
            y: self.y.to_vec(),
            rho: self.rho,
            ux: self.ux,
            ur: self.ur,
            p: self.p,
            t: self.t,
            tv: self.tv,
            ev: self.ev,
            a: self.a,
            h0: self.h0,
        }
    }
}

/// Structure-of-arrays cache of every cell's reacting primitives: one flat
/// lane per scalar field plus a cell-major mass-fraction matrix with stride
/// `ns` — a handful of dense buffers instead of `nci·ncj` heap `y` vectors,
/// so the per-step decode writes and the face-sweep reads stream linearly.
#[derive(Debug, Default)]
struct ReactingPrimSoA {
    ns: usize,
    /// Mass fractions, cell-major `idx * ns + s`.
    y: Vec<f64>,
    rho: Vec<f64>,
    ux: Vec<f64>,
    ur: Vec<f64>,
    p: Vec<f64>,
    t: Vec<f64>,
    tv: Vec<f64>,
    ev: Vec<f64>,
    a: Vec<f64>,
    h0: Vec<f64>,
}

impl ReactingPrimSoA {
    fn resize(&mut self, n: usize, ns: usize) {
        self.ns = ns;
        self.y.resize(n * ns, 0.0);
        self.rho.resize(n, 0.0);
        self.ux.resize(n, 0.0);
        self.ur.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.t.resize(n, 0.0);
        self.tv.resize(n, 0.0);
        self.ev.resize(n, 0.0);
        self.a.resize(n, 0.0);
        self.h0.resize(n, 0.0);
    }

    fn view(&self, idx: usize) -> ReactingPrimRef<'_> {
        ReactingPrimRef {
            y: &self.y[idx * self.ns..(idx + 1) * self.ns],
            rho: self.rho[idx],
            ux: self.ux[idx],
            ur: self.ur[idx],
            p: self.p[idx],
            t: self.t[idx],
            tv: self.tv[idx],
            ev: self.ev[idx],
            a: self.a[idx],
            h0: self.h0[idx],
        }
    }

    fn set(&mut self, idx: usize, q: &ReactingPrimitive) {
        self.y[idx * self.ns..(idx + 1) * self.ns].copy_from_slice(&q.y);
        self.rho[idx] = q.rho;
        self.ux[idx] = q.ux;
        self.ur[idx] = q.ur;
        self.p[idx] = q.p;
        self.t[idx] = q.t;
        self.tv[idx] = q.tv;
        self.ev[idx] = q.ev;
        self.a[idx] = q.a;
        self.h0[idx] = q.h0;
    }
}

/// Reusable face-based-assembly scratch for the reacting solver: cached
/// cell primitives (their `y` vectors are reused across steps) and flat
/// face-flux buffers with stride `neq`. Allocated on the first step, reused
/// afterwards — the interior of the step loop is allocation-free.
#[derive(Debug, Default)]
struct ReactingScratch {
    /// Cell primitives, row-major `i * ncj + j`, in SoA layout.
    prim: ReactingPrimSoA,
    /// Reusable decode target for the primitive fill (keeps the per-cell
    /// `y` allocation out of the loop).
    tmp: ReactingPrimitive,
    /// i-face fluxes, flat `(iface * ncj + j) * neq`.
    fi: Vec<f64>,
    /// j-face fluxes, flat `(i * (ncj + 1) + jface) * neq`.
    fj: Vec<f64>,
    /// Per-cell local time steps (consumed by the chemistry substep).
    dts: Vec<f64>,
    /// Per-cell residual gather buffer (`neq` wide).
    res: Vec<f64>,
}

/// The reacting finite-volume solver.
pub struct ReactingSolver<'a> {
    grid: &'a StructuredGrid,
    metrics: Metrics,
    mix: &'a Mixture,
    reactions: &'a ReactionSet,
    relaxation: &'a RelaxationModel,
    bc: ReactingBcSet,
    opts: ReactingOptions,
    ns: usize,
    neq: usize,
    /// Conserved state, shape (nci, ncj, ns + 4).
    pub u: Field3<f64>,
    steps: usize,
    /// Run-control CFL scale (1.0 = nominal; halved on rollback).
    cfl_scale: f64,
    /// Run observability: phase timings, residual histories, counter deltas.
    pub telemetry: RunTelemetry,
    scratch: ReactingScratch,
}

impl<'a> ReactingSolver<'a> {
    /// Create the solver with every cell at the freestream.
    ///
    /// # Panics
    /// Panics if the freestream mass fractions mismatch the mixture.
    #[must_use]
    pub fn new(
        grid: &'a StructuredGrid,
        reactions: &'a ReactionSet,
        relaxation: &'a RelaxationModel,
        bc: ReactingBcSet,
        opts: ReactingOptions,
        freestream: &FreeStream,
    ) -> Self {
        let mix = reactions.mixture();
        let ns = mix.len();
        assert_eq!(freestream.y.len(), ns);
        let neq = ns + 4;
        let cons = Self::conserved_from_freestream(mix, freestream);
        let mut u = Field3::zeros(grid.nci(), grid.ncj(), neq);
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                u.vector_mut(i, j).copy_from_slice(&cons);
            }
        }
        let metrics = Metrics::new(grid);
        Self {
            grid,
            metrics,
            mix,
            reactions,
            relaxation,
            bc,
            opts,
            ns,
            neq,
            u,
            steps: 0,
            cfl_scale: 1.0,
            telemetry: RunTelemetry::new(),
            scratch: ReactingScratch::default(),
        }
    }

    fn conserved_from_freestream(mix: &Mixture, fs: &FreeStream) -> Vec<f64> {
        let ns = mix.len();
        let ev = mix.e_vibronic(fs.t, &fs.y);
        let e = mix.e_total(fs.t, &fs.y);
        let ke = 0.5 * (fs.ux * fs.ux + fs.ur * fs.ur);
        let mut c = vec![0.0; ns + 4];
        for s in 0..ns {
            c[s] = fs.rho * fs.y[s];
        }
        c[ns] = fs.rho * fs.ux;
        c[ns + 1] = fs.rho * fs.ur;
        c[ns + 2] = fs.rho * (e + ke);
        c[ns + 3] = fs.rho * ev;
        c
    }

    /// Translational-rotational specific heat at constant volume
    /// \[J/(kg·K)\] — temperature independent.
    fn cv_tr(&self, y: &[f64]) -> f64 {
        let mut cv = 0.0;
        for (sp, yi) in self.mix.species().iter().zip(y) {
            if sp.name == "e-" {
                continue; // electron translational energy rides in e_v
            }
            let dof_rot = match sp.rot {
                aerothermo_gas::Rotation::None => 0.0,
                aerothermo_gas::Rotation::Linear { .. } => 2.0,
                aerothermo_gas::Rotation::Nonlinear { .. } => 3.0,
            };
            cv += yi * (1.5 + 0.5 * dof_rot) * sp.gas_constant();
        }
        cv
    }

    fn e_formation(&self, y: &[f64]) -> f64 {
        self.mix
            .species()
            .iter()
            .zip(y)
            .map(|(sp, yi)| yi * sp.e_formation())
            .sum()
    }

    /// Decode a conserved vector (with warm-started T_v inversion).
    fn primitive_of(&self, c: &[f64], tv_guess: f64) -> ReactingPrimitive {
        let mut out = ReactingPrimitive::default();
        self.primitive_into(c, tv_guess, &mut out);
        out
    }

    /// [`Self::primitive_of`] writing into `out`, reusing its `y`
    /// allocation — the form the per-step primitive cache uses.
    fn primitive_into(&self, c: &[f64], tv_guess: f64, out: &mut ReactingPrimitive) {
        let ns = self.ns;
        let mut rho = 0.0;
        for s in 0..ns {
            rho += c[s].max(0.0);
        }
        let rho = rho.max(self.opts.rho_floor);
        out.y.resize(ns, 0.0);
        for s in 0..ns {
            out.y[s] = c[s].max(0.0) / rho;
        }
        let ux = c[ns] / rho;
        let ur = c[ns + 1] / rho;
        let ke = 0.5 * (ux * ux + ur * ur);
        let e = (c[ns + 2] / rho - ke).max(1e3);
        let ev = (c[ns + 3] / rho).max(0.0);
        let y = &out.y;
        let cv_tr = self.cv_tr(y).max(10.0);
        let t = ((e - ev - self.e_formation(y)) / cv_tr).clamp(20.0, 120_000.0);
        let tv = self
            .mix
            .tv_from_vibronic_energy(ev, y, tv_guess)
            .unwrap_or(tv_guess)
            .clamp(20.0, 120_000.0);
        let r_gas = self.mix.gas_constant(y);
        let p = (rho * r_gas * t).max(1e-8);
        // Frozen sound speed with the active vibrational capacity.
        let cv = cv_tr
            + self
                .mix
                .species()
                .iter()
                .zip(y)
                .map(|(sp, yi)| yi * sp.cv_vib(tv))
                .sum::<f64>();
        let gamma = 1.0 + r_gas / cv.max(1.0);
        let a = (gamma * p / rho).sqrt().max(1.0);
        let h0 = e + p / rho + ke;
        out.rho = rho;
        out.ux = ux;
        out.ur = ur;
        out.p = p;
        out.t = t;
        out.tv = tv;
        out.ev = ev;
        out.a = a;
        out.h0 = h0;
    }

    /// Primitive state of cell `(i, j)`.
    #[must_use]
    pub fn primitive(&self, i: usize, j: usize) -> ReactingPrimitive {
        self.primitive_of(self.u.vector(i, j), 3000.0)
    }

    /// Number of cells along i.
    #[must_use]
    pub fn nci(&self) -> usize {
        self.grid.nci()
    }

    /// Number of cells along j.
    #[must_use]
    pub fn ncj(&self) -> usize {
        self.grid.ncj()
    }

    /// The species mixture the solver was built on.
    #[must_use]
    pub fn mixture(&self) -> &Mixture {
        self.mix
    }

    /// Mass fractions of the first inflow boundary, scanning i-lo, i-hi,
    /// j-lo, j-hi — the reference composition for element-conservation
    /// audits. `None` for closed (wall/outflow-only) problems.
    #[must_use]
    pub fn freestream_composition(&self) -> Option<Vec<f64>> {
        [&self.bc.i_lo, &self.bc.i_hi, &self.bc.j_lo, &self.bc.j_hi]
            .into_iter()
            .find_map(|bc| match bc {
                ReactingBc::Inflow(fs) => Some(fs.y.clone()),
                _ => None,
            })
    }

    fn ghost(
        &self,
        bc: &ReactingBc,
        interior: ReactingPrimRef<'_>,
        nx: f64,
        nr: f64,
    ) -> ReactingPrimitive {
        match bc {
            ReactingBc::Inflow(fs) => {
                let c = Self::conserved_from_freestream(self.mix, fs);
                self.primitive_of(&c, fs.t)
            }
            ReactingBc::Outflow => interior.to_owned(),
            ReactingBc::SlipWall => {
                let un = interior.ux * nx + interior.ur * nr;
                let mut g = interior.to_owned();
                g.ux -= 2.0 * un * nx;
                g.ur -= 2.0 * un * nr;
                g
            }
        }
    }

    /// AUSM+ flux for the reacting state vector.
    fn ausm_flux(
        &self,
        left: &ReactingPrimitive,
        right: &ReactingPrimitive,
        sx: f64,
        sr: f64,
    ) -> Vec<f64> {
        let mut f = vec![0.0; self.neq];
        self.ausm_flux_into(left.as_view(), right.as_view(), sx, sr, &mut f);
        f
    }

    /// [`Self::ausm_flux`] writing into a caller-provided `neq`-wide slice —
    /// the form the face-flux sweep uses (no per-face allocation).
    fn ausm_flux_into(
        &self,
        left: ReactingPrimRef<'_>,
        right: ReactingPrimRef<'_>,
        sx: f64,
        sr: f64,
        f: &mut [f64],
    ) {
        let ns = self.ns;
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let unl = left.ux * nx + left.ur * nr;
        let unr = right.ux * nx + right.ur * nr;
        let a_half = 0.5 * (left.a + right.a);
        let ml = unl / a_half;
        let mr = unr / a_half;
        let m4p = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (m + m.abs())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) + 0.125 * s * s
            }
        };
        let m4m = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (m - m.abs())
            } else {
                let s = m * m - 1.0;
                -0.25 * (m - 1.0) * (m - 1.0) - 0.125 * s * s
            }
        };
        let p5p = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (1.0 + m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) * (2.0 - m) + 0.1875 * m * s * s
            }
        };
        let p5m = |m: f64| {
            if m.abs() >= 1.0 {
                0.5 * (1.0 - m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m - 1.0) * (m - 1.0) * (2.0 + m) - 0.1875 * m * s * s
            }
        };
        let m_half = m4p(ml) + m4m(mr);
        let p_half = p5p(ml) * left.p + p5m(mr) * right.p;
        let mdot = a_half * (m_half.max(0.0) * left.rho + m_half.min(0.0) * right.rho);
        let up = if mdot >= 0.0 { &left } else { &right };

        for s in 0..ns {
            f[s] = mdot * up.y[s] * area;
        }
        f[ns] = (mdot * up.ux + p_half * nx) * area;
        f[ns + 1] = (mdot * up.ur + p_half * nr) * area;
        f[ns + 2] = mdot * up.h0 * area;
        f[ns + 3] = mdot * up.ev * area;
    }

    /// Flux through i-face `(iface, j)` from cached primitives, including
    /// the boundary ghost faces; matches the per-face arithmetic of
    /// [`Self::cell_residual`] exactly.
    fn i_face_flux_into(&self, prim: &ReactingPrimSoA, iface: usize, j: usize, f: &mut [f64]) {
        let m = &self.metrics;
        let ncj = self.grid.ncj();
        let sx = m.si_x[(iface, j)];
        let sr = m.si_r[(iface, j)];
        if iface == 0 {
            let qc = prim.view(j);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let g = self.ghost(&self.bc.i_lo, qc, -sx / area, -sr / area);
            self.ausm_flux_into(g.as_view(), qc, sx, sr, f);
        } else if iface == self.grid.nci() {
            let qc = prim.view((iface - 1) * ncj + j);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let g = self.ghost(&self.bc.i_hi, qc, sx / area, sr / area);
            self.ausm_flux_into(qc, g.as_view(), sx, sr, f);
        } else {
            self.ausm_flux_into(
                prim.view((iface - 1) * ncj + j),
                prim.view(iface * ncj + j),
                sx,
                sr,
                f,
            );
        }
    }

    /// Flux through j-face `(i, jface)` from cached primitives.
    fn j_face_flux_into(&self, prim: &ReactingPrimSoA, i: usize, jface: usize, f: &mut [f64]) {
        let m = &self.metrics;
        let ncj = self.grid.ncj();
        let sx = m.sj_x[(i, jface)];
        let sr = m.sj_r[(i, jface)];
        if jface == 0 {
            let qc = prim.view(i * ncj);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let g = self.ghost(&self.bc.j_lo, qc, -sx / area, -sr / area);
            self.ausm_flux_into(g.as_view(), qc, sx, sr, f);
        } else if jface == ncj {
            let qc = prim.view(i * ncj + jface - 1);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let g = self.ghost(&self.bc.j_hi, qc, sx / area, sr / area);
            self.ausm_flux_into(qc, g.as_view(), sx, sr, f);
        } else {
            self.ausm_flux_into(
                prim.view(i * ncj + jface - 1),
                prim.view(i * ncj + jface),
                sx,
                sr,
                f,
            );
        }
    }

    /// Fill the scratch buffers for the current state: decode every cell's
    /// primitives once (reusing their allocations), then sweep each i- and
    /// j-face exactly once, row-parallel over disjoint chunks.
    fn assemble_faces(&self, scratch: &mut ReactingScratch) {
        let nci = self.grid.nci();
        let ncj = self.grid.ncj();
        let neq = self.neq;
        scratch.prim.resize(nci * ncj, self.ns);
        scratch.fi.resize((nci + 1) * ncj * neq, 0.0);
        scratch.fj.resize(nci * (ncj + 1) * neq, 0.0);
        scratch.dts.resize(nci * ncj, 0.0);
        scratch.res.resize(neq, 0.0);

        for i in 0..nci {
            for j in 0..ncj {
                self.primitive_into(self.u.vector(i, j), 3000.0, &mut scratch.tmp);
                scratch.prim.set(i * ncj + j, &scratch.tmp);
            }
        }

        let prim: &ReactingPrimSoA = &scratch.prim;
        scratch
            .fi
            .par_chunks_mut(ncj * neq)
            .enumerate()
            .for_each(|(iface, col)| {
                for j in 0..ncj {
                    self.i_face_flux_into(prim, iface, j, &mut col[j * neq..(j + 1) * neq]);
                }
            });
        scratch
            .fj
            .par_chunks_mut((ncj + 1) * neq)
            .enumerate()
            .for_each(|(i, row)| {
                for jface in 0..=ncj {
                    self.j_face_flux_into(prim, i, jface, &mut row[jface * neq..(jface + 1) * neq]);
                }
            });
        counters::add(
            Counter::FacesEvaluated,
            ((nci + 1) * ncj + nci * (ncj + 1)) as u64,
        );
    }

    /// Net residual of cell (i, j) gathered from the assembled face fluxes,
    /// in [`Self::cell_residual`]'s accumulation order (+i-lo, −i-hi,
    /// +j-lo, −j-hi, axisymmetric source last).
    fn gather_residual_into(&self, scratch: &ReactingScratch, i: usize, j: usize, res: &mut [f64]) {
        let ncj = self.grid.ncj();
        let neq = self.neq;
        let fil = &scratch.fi[(i * ncj + j) * neq..(i * ncj + j + 1) * neq];
        let fih = &scratch.fi[((i + 1) * ncj + j) * neq..((i + 1) * ncj + j + 1) * neq];
        let base = i * (ncj + 1) + j;
        let fjl = &scratch.fj[base * neq..(base + 1) * neq];
        let fjh = &scratch.fj[(base + 1) * neq..(base + 2) * neq];
        for k in 0..neq {
            let mut r = fil[k];
            r -= fih[k];
            r += fjl[k];
            r -= fjh[k];
            res[k] = r;
        }
        if self.grid.geometry == Geometry::Axisymmetric {
            res[self.ns + 1] += scratch.prim.p[i * ncj + j] * self.metrics.plane_area[(i, j)];
        }
    }

    /// Convective residual (first order; the strong shocks of the target
    /// problems are grid-aligned and the chemistry length scales dominate).
    ///
    /// Retained as the cell-centered reference implementation (it evaluates
    /// every interior face twice); the step loop uses the face-based
    /// scratch assembly, which the property tests pin to this function.
    pub fn cell_residual(&self, i: usize, j: usize) -> Vec<f64> {
        let m = &self.metrics;
        let mut res = vec![0.0; self.neq];
        let qc = self.primitive(i, j);
        let add_face = |f: &[f64], sign: f64, res: &mut Vec<f64>| {
            for k in 0..self.neq {
                res[k] += sign * f[k];
            }
        };

        // i faces.
        {
            let sx = m.si_x[(i, j)];
            let sr = m.si_r[(i, j)];
            let f = if i == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let g = self.ghost(&self.bc.i_lo, qc.as_view(), -sx / area, -sr / area);
                self.ausm_flux(&g, &qc, sx, sr)
            } else {
                let ql = self.primitive(i - 1, j);
                self.ausm_flux(&ql, &qc, sx, sr)
            };
            add_face(&f, 1.0, &mut res);
        }
        {
            let sx = m.si_x[(i + 1, j)];
            let sr = m.si_r[(i + 1, j)];
            let f = if i + 1 == self.grid.nci() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let g = self.ghost(&self.bc.i_hi, qc.as_view(), sx / area, sr / area);
                self.ausm_flux(&qc, &g, sx, sr)
            } else {
                let qr = self.primitive(i + 1, j);
                self.ausm_flux(&qc, &qr, sx, sr)
            };
            add_face(&f, -1.0, &mut res);
        }
        // j faces.
        {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            let f = if j == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let g = self.ghost(&self.bc.j_lo, qc.as_view(), -sx / area, -sr / area);
                self.ausm_flux(&g, &qc, sx, sr)
            } else {
                let ql = self.primitive(i, j - 1);
                self.ausm_flux(&ql, &qc, sx, sr)
            };
            add_face(&f, 1.0, &mut res);
        }
        {
            let sx = m.sj_x[(i, j + 1)];
            let sr = m.sj_r[(i, j + 1)];
            let f = if j + 1 == self.grid.ncj() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let g = self.ghost(&self.bc.j_hi, qc.as_view(), sx / area, sr / area);
                self.ausm_flux(&qc, &g, sx, sr)
            } else {
                let qr = self.primitive(i, j + 1);
                self.ausm_flux(&qc, &qr, sx, sr)
            };
            add_face(&f, -1.0, &mut res);
        }

        if self.grid.geometry == Geometry::Axisymmetric {
            res[self.ns + 1] += qc.p * m.plane_area[(i, j)];
        }
        res
    }

    fn local_dt(&self, q: ReactingPrimRef<'_>, i: usize, j: usize, cfl: f64) -> f64 {
        let m = &self.metrics;
        let spectral = |sx: f64, sr: f64| -> f64 {
            let area = (sx * sx + sr * sr).sqrt();
            (q.ux * sx + q.ur * sr).abs() + q.a * area
        };
        let lam = spectral(m.si_x[(i, j)], m.si_r[(i, j)])
            + spectral(m.si_x[(i + 1, j)], m.si_r[(i + 1, j)])
            + spectral(m.sj_x[(i, j)], m.sj_r[(i, j)])
            + spectral(m.sj_x[(i, j + 1)], m.sj_r[(i, j + 1)]);
        cfl * m.volume[(i, j)] / lam.max(1e-300)
    }

    /// Operator-split chemistry + relaxation update of one cell over `dt`
    /// at frozen density, momentum, and total energy.
    fn chemistry_substep(&self, c: &mut [f64], dt: f64) {
        let ns = self.ns;
        let rho: f64 = (0..ns).map(|s| c[s].max(0.0)).sum();
        if rho <= 0.0 {
            return;
        }
        // Fast path: cold cells (undisturbed freestream) have reaction and
        // relaxation time scales of years — skip the stiff solve entirely.
        {
            let q = self.primitive_of(c, 1000.0);
            if q.t < 1200.0 && (q.tv - q.t).abs() < 150.0 {
                return;
            }
        }
        let tv_cache = StdCell::new(3000.0);
        // State vector for the stiff march: [ρ_1..ρ_ns, ρ e_v].
        let mut z: Vec<f64> = c[..ns].to_vec();
        z.push(c[ns + 3]);
        let e_total = c[ns + 2];
        let mom = (c[ns], c[ns + 1]);

        let rhs = |_t: f64, z: &[f64], dz: &mut [f64]| {
            let rho: f64 = (0..ns).map(|s| z[s].max(0.0)).sum();
            let y: Vec<f64> = (0..ns).map(|s| z[s].max(0.0) / rho).collect();
            let ux = mom.0 / rho;
            let ur = mom.1 / rho;
            let ke = 0.5 * (ux * ux + ur * ur);
            let e = (e_total / rho - ke).max(1e3);
            let ev = (z[ns] / rho).max(0.0);
            let cv_tr = self.cv_tr(&y).max(10.0);
            let t = ((e - ev - self.e_formation(&y)) / cv_tr).clamp(50.0, 120_000.0);
            let tv = self
                .mix
                .tv_from_vibronic_energy(ev, &y, tv_cache.get())
                .unwrap_or(tv_cache.get())
                .clamp(50.0, 120_000.0);
            tv_cache.set(tv);

            let mut wdot = vec![0.0; ns];
            self.reactions.mass_production(t, tv, rho, &y, &mut wdot);
            let p = rho * self.mix.gas_constant(&y) * t;
            let n_total = p / (K_BOLTZMANN * t);
            let q_tv = self.relaxation.q_trans_vib(rho, &y, t, tv, p, n_total);
            let mut q_chem = 0.0;
            for (s, sp) in self.mix.species().iter().enumerate() {
                let evs = if sp.name == "e-" {
                    sp.e_trans(tv)
                } else {
                    sp.e_vib(tv) + sp.e_elec(tv)
                };
                q_chem += wdot[s] * evs;
            }
            // Electron-impact formation energy drains the vibronic pool.
            let conc: Vec<f64> = (0..ns)
                .map(|s| rho * y[s].max(0.0) / self.mix.species()[s].molar_mass)
                .collect();
            let mut rates = vec![0.0; self.reactions.reactions().len()];
            self.reactions.net_reaction_rates(t, tv, &conc, &mut rates);
            let mut q_eii = 0.0;
            for (r, rate) in self.reactions.reactions().iter().zip(&rates) {
                if r.rate_t == RateTemperature::ElectronTv {
                    q_eii -= rate * self.reactions.reaction_energy(r);
                }
            }
            dz[..ns].copy_from_slice(&wdot);
            dz[ns] = q_tv + q_chem + q_eii;
        };

        let ok = stiff_integrate(
            &rhs,
            0.0,
            dt,
            &mut z,
            &AdaptiveOptions {
                rtol: 1e-4,
                atol: 1e-9,
                h0: dt * 1e-3,
                hmin: dt * 1e-12,
                hmax: dt,
                max_steps: 20_000,
            },
            |_, _| {},
        );
        if ok.is_ok() {
            for s in 0..ns {
                c[s] = z[s].max(0.0);
            }
            c[ns + 3] = z[ns].max(0.0);
        }
    }

    /// One explicit convective step with operator-split chemistry; returns
    /// the density residual norm.
    pub fn step(&mut self) -> f64 {
        let _sp = trace::span("reacting_step");
        let _mt =
            aerothermo_numerics::metrics::time(aerothermo_numerics::metrics::Timer::ReactingStep);
        // Shared startup schedule: `first` also gates the chemistry substep
        // (frozen through the startup transient), so the run-control
        // first-order fallback intentionally does not apply here.
        let (first, cfl) = crate::runctl::startup_schedule(
            self.steps,
            self.opts.startup_steps,
            self.cfl_scale * self.opts.cfl,
        );
        let nci = self.grid.nci();
        let ncj = self.grid.ncj();
        let neq = self.neq;
        let ns = self.ns;

        // Face-based assembly into solver-owned scratch: primitives decoded
        // once per cell, each face swept once, flat flux buffers reused.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.assemble_faces(&mut scratch);
        let mut res = std::mem::take(&mut scratch.res);

        // Convective update.
        let mut resnorm = 0.0;
        for i in 0..nci {
            for j in 0..ncj {
                let idx = i * ncj + j;
                self.gather_residual_into(&scratch, i, j, &mut res);
                let dt = self.local_dt(scratch.prim.view(idx), i, j, cfl);
                scratch.dts[idx] = dt;
                let v = self.metrics.volume[(i, j)];
                let cell = self.u.vector_mut(i, j);
                for k in 0..neq {
                    cell[k] += dt / v * res[k];
                }
                for s in 0..ns {
                    if cell[s] < 0.0 {
                        cell[s] = 0.0;
                    }
                }
                let mut drho = 0.0;
                for s in 0..ns {
                    drho += res[s];
                }
                let r = drho / v;
                resnorm += r * r;
            }
        }
        scratch.res = res;

        // Chemistry substep (skipped while the startup transient rings or in
        // frozen mode), cell-parallel.
        if !first && !self.opts.frozen {
            let _sp = trace::span("chemistry_substeps");
            counters::add(Counter::ChemistrySubsteps, (nci * ncj) as u64);
            let dts = &scratch.dts;
            let slices: Vec<(usize, Vec<f64>)> = (0..nci * ncj)
                .into_par_iter()
                .map(|idx| {
                    let i = idx / ncj;
                    let j = idx % ncj;
                    let mut c = self.u.vector(i, j).to_vec();
                    self.chemistry_substep(&mut c, dts[idx]);
                    (idx, c)
                })
                .collect();
            for (idx, c) in slices {
                let i = idx / ncj;
                let j = idx % ncj;
                self.u.vector_mut(i, j).copy_from_slice(&c);
            }
        }

        self.scratch = scratch;
        self.steps += 1;
        (resnorm / (nci * ncj) as f64).sqrt()
    }

    /// Run `n` steps; returns the last residual.
    ///
    /// The residual history and the `reacting_run` phase land in
    /// [`ReactingSolver::telemetry`].
    ///
    /// # Errors
    /// [`SolverError::Diverged`] on detected residual blow-up,
    /// [`SolverError::NonFinite`] with the first contaminated cell/field on
    /// NaN/Inf.
    pub fn run(&mut self, n: usize) -> Result<f64, SolverError> {
        let t0 = std::time::Instant::now();
        let mut monitor = ResidualMonitor::with_options(MonitorOptions {
            grace: self.opts.startup_steps + 25,
            ..MonitorOptions::default()
        });
        let mut r = f64::NAN;
        let mut failure: Option<SolverError> = None;
        for k in 0..n {
            r = self.step();
            if let Err(e) = monitor.record(r) {
                failure = Some(match e {
                    SolverError::NonFinite { .. } => self.locate_nonfinite().unwrap_or(e),
                    other => other,
                });
                break;
            }
            if crate::audit::due(k) {
                let findings = crate::audit::audit_reacting(self, k);
                if let Err(e) = crate::audit::apply(&mut self.telemetry, findings) {
                    failure = Some(e);
                    break;
                }
            }
        }
        if failure.is_none() && crate::audit::cadence() != 0 {
            let findings = crate::audit::audit_reacting(self, n);
            if let Err(e) = crate::audit::apply(&mut self.telemetry, findings) {
                failure = Some(e);
            }
        }
        self.telemetry
            .add_phase_secs("reacting_run", t0.elapsed().as_secs_f64());
        self.telemetry
            .record_history("density_residual", monitor.into_history());
        match failure {
            Some(e) => Err(e),
            None => Ok(r),
        }
    }

    /// First cell whose conserved state is non-finite, as a typed error.
    fn locate_nonfinite(&self) -> Option<SolverError> {
        for i in 0..self.grid.nci() {
            for j in 0..self.grid.ncj() {
                let cell = self.u.vector(i, j);
                for (k, v) in cell.iter().enumerate() {
                    if !v.is_finite() {
                        let field = if k < self.ns {
                            "species_density"
                        } else if k == self.ns {
                            "rho_ux"
                        } else if k == self.ns + 1 {
                            "rho_ur"
                        } else if k == self.ns + 2 {
                            "rho_E"
                        } else {
                            "rho_ev"
                        };
                        return Some(SolverError::NonFinite { field, i, j });
                    }
                }
            }
        }
        None
    }

    /// Stagnation-line profile: primitives of column i = 0, wall to outer.
    #[must_use]
    pub fn stagnation_line(&self) -> Vec<ReactingPrimitive> {
        (0..self.grid.ncj()).map(|j| self.primitive(0, j)).collect()
    }

    /// Snapshot the persistent state (conserved field, step counter, CFL
    /// scale); scratch is recomputed every step and excluded.
    #[must_use]
    pub fn save_state(&self) -> crate::runctl::Snapshot {
        crate::runctl::Snapshot {
            step: self.steps,
            cfl_scale: self.cfl_scale,
            data: self.u.as_slice().to_vec(),
        }
    }

    /// Restore a snapshot taken from an identically-shaped solver.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on a payload-size mismatch.
    pub fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        let want = self.u.as_slice().len();
        if snap.data.len() != want {
            return Err(SolverError::BadInput(format!(
                "reacting restore: state length {} != {want}",
                snap.data.len()
            )));
        }
        self.u.as_mut_slice().copy_from_slice(&snap.data);
        self.steps = snap.step;
        self.cfl_scale = snap.cfl_scale;
        Ok(())
    }
}

impl crate::runctl::Steppable for ReactingSolver<'_> {
    fn advance(&mut self) -> Result<f64, SolverError> {
        let n = self.steps;
        let r = self.step();
        if !r.is_finite() {
            return Err(self.locate_nonfinite().unwrap_or(SolverError::NonFinite {
                field: "residual",
                i: n,
                j: 0,
            }));
        }
        if crate::audit::due(n) {
            let findings = crate::audit::audit_reacting(self, n);
            crate::audit::apply(&mut self.telemetry, findings)?;
        }
        Ok(r)
    }

    fn progress(&self) -> usize {
        self.steps
    }

    fn save_state(&self) -> crate::runctl::Snapshot {
        ReactingSolver::save_state(self)
    }

    fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        ReactingSolver::restore_state(self, snap)
    }

    fn cfl_scale(&self) -> f64 {
        self.cfl_scale
    }

    fn set_cfl_scale(&mut self, scale: f64) {
        self.cfl_scale = scale;
    }

    fn meta(&self) -> crate::runctl::RunMeta {
        crate::runctl::RunMeta {
            tag: "reacting".to_string(),
            gas: format!("mixture({} species)", self.ns),
            shape: self.u.shape(),
        }
    }

    fn telemetry_mut(&mut self) -> &mut RunTelemetry {
        &mut self.telemetry
    }

    fn finalize(&mut self, _converged: bool) -> Result<(), SolverError> {
        if crate::audit::cadence() != 0 {
            let findings = crate::audit::audit_reacting(self, self.steps);
            crate::audit::apply(&mut self.telemetry, findings)?;
        }
        Ok(())
    }

    fn poison(&mut self) {
        let (i, j) = (self.grid.nci() / 2, self.grid.ncj() / 2);
        self.u.vector_mut(i, j)[0] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::equilibrium::air9_equilibrium;
    use aerothermo_gas::kinetics::park_air9;
    use aerothermo_grid::bodies::Hemisphere;
    use aerothermo_grid::stretch;

    fn air_freestream(rho: f64, v: f64, t: f64, ns: usize) -> FreeStream {
        let mut y = vec![0.0; ns];
        y[0] = 0.767;
        y[1] = 0.233;
        FreeStream {
            y,
            rho,
            ux: v,
            ur: 0.0,
            t,
        }
    }

    #[test]
    fn frozen_uniform_flow_preserved() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let relax = RelaxationModel::new(gas.mixture().clone());
        let grid = StructuredGrid::rectangle(12, 8, 1.0, 0.5, Geometry::Planar);
        let fs = air_freestream(1e-3, 2000.0, 300.0, gas.mixture().len());
        let bc = ReactingBcSet {
            i_lo: ReactingBc::Inflow(fs.clone()),
            i_hi: ReactingBc::Outflow,
            j_lo: ReactingBc::SlipWall,
            j_hi: ReactingBc::SlipWall,
        };
        let opts = ReactingOptions {
            frozen: true,
            startup_steps: 0,
            ..ReactingOptions::default()
        };
        let mut solver = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
        for _ in 0..40 {
            solver.step();
        }
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                let q = solver.primitive(i, j);
                assert!((q.rho - 1e-3).abs() / 1e-3 < 1e-9, "rho drift at ({i},{j})");
                assert!((q.t - 300.0).abs() < 0.01, "T drift: {}", q.t);
                assert!((q.y[0] - 0.767).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn element_ratio_preserved_through_shock_and_chemistry() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let relax = RelaxationModel::new(gas.mixture().clone());
        let rn = 0.05;
        let body = Hemisphere::new(rn);
        let dist = stretch::uniform(25);
        let grid = StructuredGrid::blunt_body(&body, 11, 25, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
        let fs = air_freestream(5e-4, 5500.0, 250.0, gas.mixture().len());
        let bc = ReactingBcSet {
            i_lo: ReactingBc::SlipWall,
            i_hi: ReactingBc::Outflow,
            j_lo: ReactingBc::SlipWall,
            j_hi: ReactingBc::Inflow(fs.clone()),
        };
        let opts = ReactingOptions {
            startup_steps: 150,
            ..ReactingOptions::default()
        };
        let mut solver = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
        solver.run(320).expect("stable run");

        // Elemental N:O nuclei ratio must be 767/28.0134 : ... in every cell
        // regardless of how far chemistry has gone.
        let mix = gas.mixture();
        let target = {
            let n: f64 = 2.0 * 0.767 / 28.0134;
            let o: f64 = 2.0 * 0.233 / 31.9988;
            n / o
        };
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                let q = solver.primitive(i, j);
                let mut n_nuc = 0.0;
                let mut o_nuc = 0.0;
                for (sp, y) in mix.species().iter().zip(&q.y) {
                    n_nuc += f64::from(sp.atoms_of(aerothermo_gas::Element::N)) * y / sp.molar_mass;
                    o_nuc += f64::from(sp.atoms_of(aerothermo_gas::Element::O)) * y / sp.molar_mass;
                }
                let ratio = n_nuc / o_nuc;
                assert!(
                    (ratio - target).abs() / target < 0.02,
                    "element ratio at ({i},{j}): {ratio} vs {target}"
                );
            }
        }
    }

    #[test]
    fn bow_shock_chemistry_relaxes_along_stagnation_line() {
        // 5.5 km/s blunt body: O2 must dissociate progressively from the
        // shock toward the body, Tv lags T right behind the shock, and both
        // converge near the stagnation point.
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let relax = RelaxationModel::new(gas.mixture().clone());
        let rn = 0.05;
        let body = Hemisphere::new(rn);
        let dist = stretch::uniform(27);
        let grid = StructuredGrid::blunt_body(&body, 11, 27, &|sb| (0.3 + 0.2 * sb) * rn, &dist);
        let fs = air_freestream(1.5e-3, 5500.0, 250.0, gas.mixture().len());
        let bc = ReactingBcSet {
            i_lo: ReactingBc::SlipWall,
            i_hi: ReactingBc::Outflow,
            j_lo: ReactingBc::SlipWall,
            j_hi: ReactingBc::Inflow(fs.clone()),
        };
        let opts = ReactingOptions {
            startup_steps: 200,
            ..ReactingOptions::default()
        };
        let mut solver = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
        solver.run(520).expect("stable run");

        let line = solver.stagnation_line();
        // Find the shock: outermost cell with T > 2×T∞.
        let j_shock = (0..line.len())
            .rev()
            .find(|&j| line[j].t > 500.0)
            .expect("no shock captured");
        let behind = &line[j_shock.saturating_sub(1)];
        let stag = &line[1];
        assert!(behind.t > 4000.0, "post-shock T = {}", behind.t);
        // Nonequilibrium signature: Tv below T just behind the shock.
        assert!(
            behind.tv < 0.9 * behind.t,
            "Tv should lag: T = {}, Tv = {}",
            behind.t,
            behind.tv
        );
        // O2 more dissociated at the body than right behind the shock.
        let o2_behind = behind.y[1];
        let o2_stag = stag.y[1];
        assert!(
            o2_stag < 0.8 * o2_behind,
            "O2 must relax toward dissociation: shock {o2_behind:.4} vs body {o2_stag:.4}"
        );
        // Atomic oxygen produced.
        assert!(stag.y[4] > 0.01, "y_O at stagnation: {}", stag.y[4]);
        // Total enthalpy roughly preserved along the steady stagnation line.
        let h0_free = {
            let e = gas.mixture().e_total(250.0, &fs.y);
            let r = gas.mixture().gas_constant(&fs.y);
            e + r * 250.0 + 0.5 * 5500.0_f64.powi(2)
        };
        assert!(
            (stag.h0 - h0_free).abs() / h0_free < 0.05,
            "h0 at stagnation: {:.4e} vs freestream {:.4e}",
            stag.h0,
            h0_free
        );
    }

    #[test]
    fn face_based_matches_cell_centered_reacting_residuals() {
        let gas = air9_equilibrium();
        let set = park_air9(gas.mixture());
        let relax = RelaxationModel::new(gas.mixture().clone());
        for geometry in [Geometry::Planar, Geometry::Axisymmetric] {
            let grid = StructuredGrid::rectangle(9, 7, 0.4, 0.2, geometry);
            let fs = air_freestream(1e-3, 2500.0, 300.0, gas.mixture().len());
            let bc = ReactingBcSet {
                i_lo: ReactingBc::Inflow(fs.clone()),
                i_hi: ReactingBc::Outflow,
                j_lo: ReactingBc::SlipWall,
                j_hi: ReactingBc::Inflow(fs.clone()),
            };
            let opts = ReactingOptions {
                frozen: true,
                startup_steps: 0,
                ..ReactingOptions::default()
            };
            let mut solver = ReactingSolver::new(&grid, &set, &relax, bc, opts, &fs);
            // Deterministic multiplicative perturbation keeping the state
            // admissible: densities scaled, momenta damped (internal energy
            // only grows), energy bumped.
            let neq = solver.neq;
            let ns = solver.ns;
            let mut state = 0x9e37_79b9_7f4a_7c15_u64;
            let mut noise = move || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            for i in 0..grid.nci() {
                for j in 0..grid.ncj() {
                    let fr = 1.0 + 0.1 * noise();
                    let fm = 0.95 + 0.05 * noise();
                    let fe = 1.0 + 0.04 * noise().abs();
                    let cell = solver.u.vector_mut(i, j);
                    for v in cell.iter_mut().take(neq) {
                        *v *= fr;
                    }
                    cell[ns] *= fm;
                    cell[ns + 1] = cell[ns] * 0.05 * noise();
                    cell[ns + 3] *= fe;
                }
            }
            let mut scratch = ReactingScratch::default();
            solver.assemble_faces(&mut scratch);
            let mut fb = vec![0.0; neq];
            let mut worst = 0.0_f64;
            for i in 0..grid.nci() {
                for j in 0..grid.ncj() {
                    solver.gather_residual_into(&scratch, i, j, &mut fb);
                    let cc = solver.cell_residual(i, j);
                    let scale = cc.iter().fold(1e-300_f64, |m, v| m.max(v.abs()));
                    for k in 0..neq {
                        worst = worst.max((fb[k] - cc[k]).abs() / cc[k].abs().max(scale));
                    }
                }
            }
            assert!(worst <= 1e-13, "rel diff {worst:.3e} ({geometry:?})");
        }
    }
}
