//! Run control: checkpoint/restart snapshots and divergence-triggered
//! rollback with adaptive-CFL backoff.
//!
//! The flight-regime cases the paper surveys (Shuttle windward heating,
//! Titan probe, Mach-20 hemisphere) are long, stiff marches where a single
//! transient — a startup shock overshoot, a stiff chemistry step — can
//! destroy hours of integration. Production hypersonic codes therefore ship
//! restart files and step-size recovery as core features. This module turns
//! our *detection* layer (`ResidualMonitor`, typed [`SolverError`]s, graded
//! audits) into *recovery*:
//!
//! * [`Snapshot`] — a versioned copy of a solver's persistent state (the
//!   conserved field, the step counter that drives the startup schedule,
//!   and the current CFL scale), held in an in-memory ring and optionally
//!   serialized to an on-disk restart file with a checksummed header
//!   ([`write_restart`] / [`read_restart`]).
//! * [`Steppable`] — the contract a solver implements so the controller
//!   can own its outer loop: advance one unit (a pseudo-time step or a
//!   march station), save/restore state, and rescale CFL.
//! * [`run_controlled`] — the outer loop itself: on a recoverable failure
//!   (`NonFinite`, `AuditFailed`, residual divergence) it restores the last
//!   good checkpoint, halves the CFL scale (exponential backoff down to a
//!   floor), optionally drops to first-order reconstruction, retries up to
//!   a budget, and re-ramps the CFL after a streak of clean units.
//! * [`retry_with_backoff`] — the same policy for single-shot solvers
//!   (the 1-D relaxation march, the stagnation VSL solve) that have no
//!   incremental state to checkpoint.

use crate::flight;
use aerothermo_numerics::metrics;
use aerothermo_numerics::telemetry::{
    counters, Counter, MonitorOptions, ResidualMonitor, RunTelemetry, SolverError,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// CFL reduction factor applied during the first-order startup phase.
pub const STARTUP_CFL_FACTOR: f64 = 0.4;

/// Startup scheduling shared by every explicit step loop — the face-based
/// production paths *and* the retained cell-centered reference paths, so
/// parity tests exercise identical scheduling. The first `startup_steps`
/// steps run first-order at [`STARTUP_CFL_FACTOR`] × the nominal CFL
/// (impulsive-start robustness).
///
/// Returns `(first_order, effective_cfl)`.
#[must_use]
pub fn startup_schedule(steps_taken: usize, startup_steps: usize, cfl: f64) -> (bool, f64) {
    let first_order = steps_taken < startup_steps;
    let eff = if first_order {
        STARTUP_CFL_FACTOR * cfl
    } else {
        cfl
    };
    (first_order, eff)
}

/// A versioned copy of a solver's persistent state.
///
/// `data` is the solver-defined flat serialization of everything the next
/// step reads: the conserved field (exact f64 bits) plus any march
/// bookkeeping. Scratch buffers are recomputed each step and excluded, so
/// restoring a snapshot and continuing is bitwise-identical to never having
/// stopped.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Progress units completed when the snapshot was taken (pseudo-time
    /// steps or march stations) — also drives the startup schedule.
    pub step: usize,
    /// CFL scale in effect (1.0 = nominal).
    pub cfl_scale: f64,
    /// Flat state payload.
    pub data: Vec<f64>,
}

impl Snapshot {
    /// FNV-1a checksum over the step counter, the CFL-scale bits, and the
    /// payload bits — what the restart-file header records and verifies.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.step as u64);
        eat(self.cfl_scale.to_bits());
        for v in &self.data {
            eat(v.to_bits());
        }
        h
    }
}

/// Identity a restart file records so a snapshot is only ever restored into
/// a compatible solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Solver tag (`"euler2d"`, `"ns2d"`, `"reacting"`, `"pns"`,
    /// `"vsl_march"`).
    pub tag: String,
    /// Gas-model description.
    pub gas: String,
    /// Grid shape `(ni, nj, neq)` — march solvers record
    /// `(stations, points, fields)`.
    pub shape: (usize, usize, usize),
}

/// Restart file magic: "ATRC" = AeroThermo Restart Checkpoint.
const RESTART_MAGIC: [u8; 4] = *b"ATRC";
/// Restart format version.
const RESTART_VERSION: u32 = 1;

fn io_err(context: &str, e: &std::io::Error) -> SolverError {
    SolverError::BadInput(format!("restart {context}: {e}"))
}

fn write_str(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len().min(usize::from(u16::MAX))).unwrap_or(u16::MAX);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&bytes[..usize::from(len)])
}

fn read_exact_buf<const N: usize>(r: &mut impl Read) -> std::io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_str(r: &mut impl Read) -> std::io::Result<String> {
    let len = u16::from_le_bytes(read_exact_buf::<2>(r)?);
    let mut buf = vec![0u8; usize::from(len)];
    r.read_exact(&mut buf)?;
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Serialize a snapshot to `path` with a self-describing, checksummed
/// header (magic, version, solver tag, gas model, grid shape, step count).
///
/// # Errors
/// [`SolverError::BadInput`] on any I/O failure, with the path in the
/// message.
pub fn write_restart(path: &Path, meta: &RunMeta, snap: &Snapshot) -> Result<(), SolverError> {
    let ctx = format!("write {}", path.display());
    let file = std::fs::File::create(path).map_err(|e| io_err(&ctx, &e))?;
    let mut w = std::io::BufWriter::new(file);
    let inner = |w: &mut std::io::BufWriter<std::fs::File>| -> std::io::Result<()> {
        w.write_all(&RESTART_MAGIC)?;
        w.write_all(&RESTART_VERSION.to_le_bytes())?;
        write_str(w, &meta.tag)?;
        write_str(w, &meta.gas)?;
        for dim in [meta.shape.0, meta.shape.1, meta.shape.2, snap.step] {
            w.write_all(&(dim as u64).to_le_bytes())?;
        }
        w.write_all(&snap.cfl_scale.to_bits().to_le_bytes())?;
        w.write_all(&(snap.data.len() as u64).to_le_bytes())?;
        w.write_all(&snap.checksum().to_le_bytes())?;
        for v in &snap.data {
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        w.flush()
    };
    inner(&mut w).map_err(|e| io_err(&ctx, &e))?;
    counters::add(Counter::CheckpointsWritten, 1);
    Ok(())
}

/// Deserialize a restart file; verifies magic, version, and the state
/// checksum.
///
/// # Errors
/// [`SolverError::BadInput`] on I/O failure, malformed/foreign files, or a
/// checksum mismatch (truncated or corrupted state).
pub fn read_restart(path: &Path) -> Result<(RunMeta, Snapshot), SolverError> {
    let ctx = format!("read {}", path.display());
    let file = std::fs::File::open(path).map_err(|e| io_err(&ctx, &e))?;
    let mut r = std::io::BufReader::new(file);
    let inner =
        |r: &mut std::io::BufReader<std::fs::File>| -> std::io::Result<(RunMeta, Snapshot, u64)> {
            let magic = read_exact_buf::<4>(r)?;
            if magic != RESTART_MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad magic (not a restart file)",
                ));
            }
            let version = u32::from_le_bytes(read_exact_buf::<4>(r)?);
            if version != RESTART_VERSION {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unsupported restart version {version}"),
                ));
            }
            let tag = read_str(r)?;
            let gas = read_str(r)?;
            let mut dims = [0usize; 4];
            for d in &mut dims {
                *d = u64::from_le_bytes(read_exact_buf::<8>(r)?) as usize;
            }
            let cfl_scale = f64::from_bits(u64::from_le_bytes(read_exact_buf::<8>(r)?));
            let n_data = u64::from_le_bytes(read_exact_buf::<8>(r)?) as usize;
            let checksum = u64::from_le_bytes(read_exact_buf::<8>(r)?);
            let mut data = Vec::with_capacity(n_data);
            for _ in 0..n_data {
                data.push(f64::from_bits(u64::from_le_bytes(read_exact_buf::<8>(r)?)));
            }
            Ok((
                RunMeta {
                    tag,
                    gas,
                    shape: (dims[0], dims[1], dims[2]),
                },
                Snapshot {
                    step: dims[3],
                    cfl_scale,
                    data,
                },
                checksum,
            ))
        };
    let (meta, snap, checksum) = inner(&mut r).map_err(|e| io_err(&ctx, &e))?;
    if snap.checksum() != checksum {
        return Err(SolverError::BadInput(format!(
            "restart {}: checksum mismatch (file truncated or corrupted)",
            path.display()
        )));
    }
    Ok((meta, snap))
}

/// The contract a solver implements so [`run_controlled`] can own its outer
/// loop.
pub trait Steppable {
    /// Advance one progress unit (a pseudo-time step or a march station);
    /// returns a residual-like scalar. Implementations surface state
    /// contamination and hard audit failures as typed errors here, so the
    /// controller can roll back instead of aborting.
    ///
    /// # Errors
    /// [`SolverError::NonFinite`] on NaN/Inf contamination,
    /// [`SolverError::AuditFailed`] on a hard in-situ audit failure.
    fn advance(&mut self) -> Result<f64, SolverError>;

    /// Progress units completed so far.
    fn progress(&self) -> usize;

    /// Snapshot the persistent state (see [`Snapshot`]).
    fn save_state(&self) -> Snapshot;

    /// Restore a snapshot taken from a compatible solver.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] when the payload shape does not match this
    /// solver's state.
    fn restore_state(&mut self, snap: &Snapshot) -> Result<(), SolverError>;

    /// Current CFL scale (1.0 = nominal).
    fn cfl_scale(&self) -> f64;

    /// Rescale the effective CFL (march solvers rescale their relaxation
    /// factor — the same role).
    fn set_cfl_scale(&mut self, scale: f64);

    /// Force first-order reconstruction independent of the startup schedule
    /// (rollback safety mode). Default: no-op for solvers without a
    /// reconstruction order to drop.
    fn set_first_order_fallback(&mut self, _on: bool) {}

    /// Identity recorded in restart-file headers and verified on restore.
    fn meta(&self) -> RunMeta;

    /// The telemetry sink the controller records its residual and CFL
    /// histories into.
    fn telemetry_mut(&mut self) -> &mut RunTelemetry;

    /// Converged/terminal bookkeeping the solver's own `run()` would have
    /// done after its loop (e.g. the full-strictness converged-state audit).
    ///
    /// # Errors
    /// Propagates hard audit failures.
    fn finalize(&mut self, _converged: bool) -> Result<(), SolverError> {
        Ok(())
    }

    /// Corrupt the state with a NaN — the fault-injection hook used by the
    /// rollback tests and the `--inject-nan` CI drill. Never called in
    /// normal operation.
    fn poison(&mut self);
}

/// Policy knobs for [`run_controlled`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Maximum progress units (steps / stations).
    pub max_units: usize,
    /// Convergence tolerance on the residual ratio relative to the
    /// reference captured at unit [`RunOptions::grace`]; `0.0` disables the
    /// convergence test (run all units — march mode).
    pub tol: f64,
    /// Unit at which the reference residual is captured (typically the
    /// startup-step count); also extends the divergence monitor's grace.
    pub grace: usize,
    /// Checkpoint cadence in units; `0` keeps only the initial snapshot.
    pub checkpoint_every: usize,
    /// In-memory checkpoint-ring depth.
    pub ring: usize,
    /// Rollback/retry budget before the failure is surfaced.
    pub max_retries: usize,
    /// CFL-scale multiplier per rollback (exponential backoff).
    pub backoff: f64,
    /// CFL-scale floor.
    pub min_cfl_scale: f64,
    /// Clean units after which a backed-off CFL is re-ramped one backoff
    /// notch toward nominal; `0` disables re-ramping.
    pub reramp_after: usize,
    /// Drop to first-order reconstruction while backed off.
    pub first_order_fallback: bool,
    /// Write an on-disk restart file at each checkpoint.
    pub checkpoint_path: Option<PathBuf>,
    /// Restore from this restart file before the first unit.
    pub restart_from: Option<PathBuf>,
    /// Fault injection: poison the state once, after this unit completes.
    pub inject_nan_at: Option<usize>,
    /// Deterministic mid-run halt after this unit (the CI kill/resume
    /// drill): the controller stops and reports `halted = true`.
    pub halt_after: Option<usize>,
    /// Flight-recorder ring capacity: how many of the most recent per-step
    /// records survive into the post-mortem black box.
    pub flight_ring: usize,
    /// Where [`run_recorded`] writes the black-box JSON when a
    /// [`SolverError`] escapes or the `--inject-nan` drill fires. `None`
    /// still records (the sweep engine attaches the in-memory dump to
    /// failed case records); only the file write is skipped.
    pub blackbox_path: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_units: usize::MAX,
            tol: 0.0,
            grace: 0,
            checkpoint_every: 0,
            ring: 4,
            max_retries: 3,
            backoff: 0.5,
            min_cfl_scale: 1.0 / 64.0,
            reramp_after: 50,
            first_order_fallback: false,
            checkpoint_path: None,
            restart_from: None,
            inject_nan_at: None,
            halt_after: None,
            flight_ring: crate::flight::DEFAULT_CAPACITY,
            blackbox_path: None,
        }
    }
}

/// What a controlled run did.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Progress units completed.
    pub units: usize,
    /// Last raw residual.
    pub residual: f64,
    /// Last residual ratio relative to the grace-point reference (1.0 when
    /// the convergence test is disabled).
    pub ratio: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Retry attempts consumed.
    pub retries: usize,
    /// Rollbacks performed (== retries; kept separate for reporting).
    pub rollbacks: usize,
    /// CFL scale in effect at the end.
    pub final_cfl_scale: f64,
    /// True when the run stopped at [`RunOptions::halt_after`].
    pub halted: bool,
}

/// Whether an error is worth a rollback-and-retry (transient/state-local)
/// rather than a hard abort (bad input, missing file).
#[must_use]
pub fn recoverable(e: &SolverError) -> bool {
    matches!(
        e,
        SolverError::NonFinite { .. }
            | SolverError::Diverged { .. }
            | SolverError::AuditFailed { .. }
            | SolverError::IterationLimit { .. }
    )
}

fn fresh_monitor(opts: &RunOptions) -> ResidualMonitor {
    ResidualMonitor::with_options(MonitorOptions {
        grace: opts.grace + 25,
        ..MonitorOptions::default()
    })
}

/// Run a [`Steppable`] solver to convergence (or through all its units)
/// under checkpoint/rollback control. See the module docs for the policy.
///
/// Records `runctl_residual` and `runctl_cfl_scale` histories and the
/// `runctl` phase timing in the solver's telemetry.
///
/// # Errors
/// Surfaces the underlying [`SolverError`] once the retry budget is
/// exhausted or the failure is not [`recoverable`]; restart-file errors
/// (missing, corrupt, or incompatible with this solver) are
/// [`SolverError::BadInput`].
pub fn run_controlled<S: Steppable + ?Sized>(
    solver: &mut S,
    opts: &RunOptions,
) -> Result<RunOutcome, SolverError> {
    run_recorded(solver, opts).0
}

/// [`run_controlled`] plus the flight recorder's verdict: when the run
/// dies (or an `--inject-nan` drill fires) the second element is the
/// post-mortem black box — the last `RunOptions::flight_ring` per-step
/// records with residual/CFL history, rollback events, audit findings,
/// and equilibrium-cache hit deltas. Written to
/// [`RunOptions::blackbox_path`] when set; always returned in memory so
/// the sweep engine can attach it to failed case records.
pub fn run_recorded<S: Steppable + ?Sized>(
    solver: &mut S,
    opts: &RunOptions,
) -> (Result<RunOutcome, SolverError>, Option<flight::PostMortem>) {
    let mut recorder = flight::FlightRecorder::new(opts.flight_ring);
    let mut ctl = FlightCtl {
        recorder: &mut recorder,
        injected: false,
        retries: 0,
    };
    let result = run_inner(solver, opts, &mut ctl);
    let injected = ctl.injected;
    let retries = ctl.retries;
    let pm = match &result {
        Err(e) => Some(recorder.post_mortem(
            &solver.meta().tag,
            flight::Trigger::SolverError,
            Some(e.to_string()),
            solver.progress(),
            retries,
            solver.cfl_scale(),
        )),
        Ok(out) if injected => Some(recorder.post_mortem(
            &solver.meta().tag,
            flight::Trigger::NanInjection,
            None,
            out.units,
            out.retries,
            out.final_cfl_scale,
        )),
        Ok(_) => None,
    };
    if let (Some(pm), Some(path)) = (&pm, &opts.blackbox_path) {
        pm.write(path);
    }
    (result, pm)
}

/// Mutable flight-recorder context threaded through [`run_inner`] so the
/// wrapper can build a post-mortem even when the inner loop early-returns
/// through `?`.
struct FlightCtl<'a> {
    recorder: &'a mut flight::FlightRecorder,
    injected: bool,
    retries: usize,
}

#[allow(clippy::too_many_lines)]
fn run_inner<S: Steppable + ?Sized>(
    solver: &mut S,
    opts: &RunOptions,
    fl: &mut FlightCtl<'_>,
) -> Result<RunOutcome, SolverError> {
    let t0 = std::time::Instant::now();

    if let Some(path) = &opts.restart_from {
        let (meta, snap) = read_restart(path)?;
        let own = solver.meta();
        if meta.tag != own.tag || meta.shape != own.shape {
            return Err(SolverError::BadInput(format!(
                "restart {}: incompatible header (file {}/{:?} vs solver {}/{:?})",
                path.display(),
                meta.tag,
                meta.shape,
                own.tag,
                own.shape,
            )));
        }
        solver.restore_state(&snap)?;
    }

    let ring_depth = opts.ring.max(1);
    let mut ring: VecDeque<Snapshot> = VecDeque::with_capacity(ring_depth);
    ring.push_back(solver.save_state());

    let mut monitor = fresh_monitor(opts);
    let mut residual_history: Vec<f64> = Vec::new();
    let mut cfl_history: Vec<f64> = Vec::new();
    let mut scale = solver.cfl_scale();
    let mut inject = opts.inject_nan_at;
    let mut reference = f64::NAN;
    let mut last_res = f64::NAN;
    let mut last_ratio = 1.0;
    let mut converged = false;
    let mut halted = false;
    let mut retries = 0usize;
    let mut rollbacks = 0usize;
    let mut clean = 0usize;
    let mut rolled_back = false;
    let mut failure: Option<SolverError> = None;

    while solver.progress() < opts.max_units {
        let unit0 = solver.progress();
        fl.recorder.mark_step_start();
        let outcome = match solver.advance() {
            Ok(r) => monitor.record(r).map(|()| r),
            Err(e) => Err(e),
        };
        match outcome {
            Ok(r) => {
                last_res = r;
                clean += 1;
                let unit = solver.progress();
                cfl_history.push(scale);
                // Checkpoint *before* any fault injection so neither the
                // ring nor the restart file ever holds poisoned state.
                let mut checkpointed = false;
                if opts.checkpoint_every != 0 && unit.is_multiple_of(opts.checkpoint_every) {
                    let snap = solver.save_state();
                    if let Some(path) = &opts.checkpoint_path {
                        write_restart(path, &solver.meta(), &snap)?;
                    }
                    if ring.len() == ring_depth {
                        ring.pop_front();
                    }
                    ring.push_back(snap);
                    rolled_back = false;
                    checkpointed = true;
                }
                let mut injected_now = false;
                if inject == Some(unit) {
                    solver.poison();
                    inject = None;
                    fl.injected = true;
                    injected_now = true;
                }
                let event = if injected_now {
                    flight::StepEvent::Inject
                } else if checkpointed {
                    flight::StepEvent::Checkpoint
                } else {
                    flight::StepEvent::Advance
                };
                let (audit_n, audit_worst) = {
                    let t = solver.telemetry_mut();
                    (t.audits().len(), t.worst_audit_severity())
                };
                fl.recorder
                    .record(unit, r, scale, event, audit_n, audit_worst);
                if scale < 1.0 && opts.reramp_after != 0 && clean >= opts.reramp_after {
                    scale = (scale / opts.backoff).min(1.0);
                    solver.set_cfl_scale(scale);
                    metrics::set_gauge(metrics::Gauge::CflScale, scale);
                    if scale >= 1.0 {
                        solver.set_first_order_fallback(false);
                    }
                    clean = 0;
                }
                if opts.tol > 0.0 {
                    if unit0 == opts.grace {
                        reference = r.max(1e-300);
                    }
                    if reference.is_finite() {
                        last_ratio = r / reference;
                        if last_ratio < opts.tol {
                            converged = true;
                            break;
                        }
                    }
                }
                if opts.halt_after == Some(unit) {
                    halted = true;
                    break;
                }
            }
            Err(e) => {
                let (audit_n, audit_worst) = {
                    let t = solver.telemetry_mut();
                    (t.audits().len(), t.worst_audit_severity())
                };
                if !recoverable(&e) || retries >= opts.max_retries {
                    fl.recorder.record(
                        unit0,
                        f64::NAN,
                        scale,
                        flight::StepEvent::Fatal {
                            error: e.to_string(),
                        },
                        audit_n,
                        audit_worst,
                    );
                    failure = Some(e);
                    break;
                }
                fl.recorder.record(
                    unit0,
                    f64::NAN,
                    scale,
                    flight::StepEvent::Rollback {
                        retry: retries + 1,
                        error: e.to_string(),
                    },
                    audit_n,
                    audit_worst,
                );
                // If the newest checkpoint already failed to rescue the run
                // (no clean checkpoint written since the last rollback), it
                // captured corrupted-but-finite state — e.g. a NaN laundered
                // through a positivity floor before the blowup registered.
                // Discard it and fall back one ring level.
                if rolled_back && ring.len() > 1 {
                    ring.pop_back();
                }
                // The back of the ring is the most recent good state; it
                // always exists (the pre-run snapshot is never evicted
                // without a replacement).
                let snap = ring.back().expect("checkpoint ring is never empty");
                solver.restore_state(snap)?;
                scale = (scale * opts.backoff).max(opts.min_cfl_scale);
                solver.set_cfl_scale(scale);
                metrics::set_gauge(metrics::Gauge::CflScale, scale);
                if opts.first_order_fallback {
                    solver.set_first_order_fallback(true);
                }
                retries += 1;
                fl.retries = retries;
                rollbacks += 1;
                clean = 0;
                rolled_back = true;
                counters::add(Counter::RunRollbacks, 1);
                // Residual history restarts from the rolled-back state.
                residual_history.extend(monitor.into_history());
                monitor = fresh_monitor(opts);
            }
        }
    }

    if failure.is_none() && !halted {
        if let Err(e) = solver.finalize(converged) {
            failure = Some(e);
        }
    }

    let units = solver.progress();
    residual_history.extend(monitor.into_history());
    let telemetry = solver.telemetry_mut();
    telemetry.add_phase_secs("runctl", t0.elapsed().as_secs_f64());
    telemetry.record_history("runctl_residual", residual_history);
    telemetry.record_history("runctl_cfl_scale", cfl_history);

    match failure {
        Some(e) => Err(e),
        None => Ok(RunOutcome {
            units,
            residual: last_res,
            ratio: last_ratio,
            converged,
            retries,
            rollbacks,
            final_cfl_scale: scale,
            halted,
        }),
    }
}

/// Outcome of [`retry_with_backoff`].
#[derive(Debug, Clone)]
pub struct RetryOutcome<T> {
    /// The successful attempt's value.
    pub value: T,
    /// Attempts retried before success.
    pub retries: usize,
    /// Scale the successful attempt ran at.
    pub final_scale: f64,
}

/// Rollback policy for single-shot solvers with no incremental state: call
/// `attempt(scale)` starting at scale 1.0; on a [`recoverable`] error,
/// multiply the scale by `backoff` (clamped at `min_scale`) and retry, up
/// to `max_retries` times. Solvers interpret the scale as a relaxation /
/// step-size reduction.
///
/// # Errors
/// The last attempt's error once the budget is exhausted, or immediately
/// for non-recoverable errors.
pub fn retry_with_backoff<T>(
    max_retries: usize,
    backoff: f64,
    min_scale: f64,
    mut attempt: impl FnMut(f64) -> Result<T, SolverError>,
) -> Result<RetryOutcome<T>, SolverError> {
    let mut scale = 1.0_f64;
    let mut retries = 0usize;
    loop {
        match attempt(scale) {
            Ok(value) => {
                return Ok(RetryOutcome {
                    value,
                    retries,
                    final_scale: scale,
                })
            }
            Err(e) if retries < max_retries && recoverable(&e) => {
                retries += 1;
                scale = (scale * backoff).max(min_scale);
                counters::add(Counter::RunRollbacks, 1);
            }
            Err(e) => return Err(e),
        }
    }
}

// The sweep engine runs `run_controlled` concurrently on worker threads,
// one solver per thread: the control-layer types must stay shareable across
// threads even though individual solvers are not. Compile-time guards so a
// future non-Send field (Rc, RefCell, raw pointer) fails here, not in a
// distant crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunOptions>();
    assert_send_sync::<RunOutcome>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<RetryOutcome<()>>();
    assert_send_sync::<aerothermo_numerics::telemetry::SolverError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// A scalar relaxation toward 0 that becomes unstable at full CFL after
    /// a configurable step, and is cured by any backed-off scale — the
    /// smallest system with a genuine rollback story.
    struct ToyRelax {
        x: f64,
        steps: usize,
        cfl_scale: f64,
        unstable_at: Option<usize>,
        telemetry: RunTelemetry,
        finalized: Option<bool>,
    }

    impl ToyRelax {
        fn new(unstable_at: Option<usize>) -> Self {
            Self {
                x: 1.0,
                steps: 0,
                cfl_scale: 1.0,
                unstable_at,
                telemetry: RunTelemetry::new(),
                finalized: None,
            }
        }
    }

    impl Steppable for ToyRelax {
        fn advance(&mut self) -> Result<f64, SolverError> {
            if self.unstable_at == Some(self.steps) && self.cfl_scale >= 1.0 {
                self.x = f64::NAN;
            }
            self.x *= 1.0 - 0.5 * self.cfl_scale;
            self.steps += 1;
            if !self.x.is_finite() {
                return Err(SolverError::NonFinite {
                    field: "x",
                    i: self.steps,
                    j: 0,
                });
            }
            Ok(self.x.abs().max(1e-30))
        }
        fn progress(&self) -> usize {
            self.steps
        }
        fn save_state(&self) -> Snapshot {
            Snapshot {
                step: self.steps,
                cfl_scale: self.cfl_scale,
                data: vec![self.x],
            }
        }
        fn restore_state(&mut self, snap: &Snapshot) -> Result<(), SolverError> {
            if snap.data.len() != 1 {
                return Err(SolverError::BadInput("toy payload".into()));
            }
            self.x = snap.data[0];
            self.steps = snap.step;
            self.cfl_scale = snap.cfl_scale;
            Ok(())
        }
        fn cfl_scale(&self) -> f64 {
            self.cfl_scale
        }
        fn set_cfl_scale(&mut self, scale: f64) {
            self.cfl_scale = scale;
        }
        fn meta(&self) -> RunMeta {
            RunMeta {
                tag: "toy".into(),
                gas: "none".into(),
                shape: (1, 1, 1),
            }
        }
        fn telemetry_mut(&mut self) -> &mut RunTelemetry {
            &mut self.telemetry
        }
        fn finalize(&mut self, converged: bool) -> Result<(), SolverError> {
            self.finalized = Some(converged);
            Ok(())
        }
        fn poison(&mut self) {
            self.x = f64::NAN;
        }
    }

    #[test]
    fn startup_schedule_matches_inline_policy() {
        for steps in [0usize, 10, 199, 200, 5000] {
            let (fo, cfl) = startup_schedule(steps, 200, 0.5);
            assert_eq!(fo, steps < 200);
            let want: f64 = if steps < 200 { 0.4 * 0.5 } else { 0.5 };
            assert_eq!(cfl.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn clean_run_never_rolls_back() {
        let mut toy = ToyRelax::new(None);
        let out = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 60,
                tol: 1e-6,
                checkpoint_every: 10,
                ..RunOptions::default()
            },
        )
        .expect("clean run");
        assert!(out.converged);
        assert_eq!(out.retries, 0);
        assert_eq!(out.rollbacks, 0);
        assert_eq!(out.final_cfl_scale.to_bits(), 1.0_f64.to_bits());
        assert_eq!(toy.finalized, Some(true));
        assert!(toy
            .telemetry
            .histories()
            .iter()
            .any(|(name, _)| name == "runctl_residual"));
    }

    #[test]
    fn instability_rolls_back_and_backs_off() {
        let mut toy = ToyRelax::new(Some(23));
        let out = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 200,
                tol: 1e-9,
                checkpoint_every: 5,
                reramp_after: 0,
                ..RunOptions::default()
            },
        )
        .expect("recovered run");
        assert!(out.converged, "backed-off run should converge");
        assert_eq!(out.retries, 1);
        assert_eq!(out.rollbacks, 1);
        assert!(out.final_cfl_scale < 1.0);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_error() {
        // Unstable at step 0 regardless of checkpoints, budget 0: the error
        // must surface unchanged.
        let mut toy = ToyRelax::new(Some(0));
        let err = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 10,
                max_retries: 0,
                ..RunOptions::default()
            },
        )
        .expect_err("no budget");
        assert!(matches!(err, SolverError::NonFinite { .. }));
    }

    #[test]
    fn injected_nan_is_rolled_back() {
        let mut toy = ToyRelax::new(None);
        let out = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 80,
                tol: 1e-9,
                checkpoint_every: 4,
                inject_nan_at: Some(14),
                reramp_after: 0,
                ..RunOptions::default()
            },
        )
        .expect("recovered from injected NaN");
        assert!(out.retries >= 1);
        assert!(out.converged);
        assert!(toy.x.is_finite());
    }

    #[test]
    fn halt_after_stops_mid_run() {
        let mut toy = ToyRelax::new(None);
        let out = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 100,
                halt_after: Some(7),
                ..RunOptions::default()
            },
        )
        .expect("halted run");
        assert!(out.halted);
        assert_eq!(out.units, 7);
        assert_eq!(toy.finalized, None, "finalize must not run on a halt");
    }

    #[test]
    fn restart_file_roundtrip_is_bitwise() {
        let dir = std::env::temp_dir().join(format!("runctl-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.restart");
        let snap = Snapshot {
            step: 41,
            cfl_scale: 0.25,
            data: vec![1.0, -0.0, f64::MIN_POSITIVE, 3.5e200, f64::NAN],
        };
        let meta = RunMeta {
            tag: "toy".into(),
            gas: "ideal air".into(),
            shape: (3, 7, 4),
        };
        write_restart(&path, &meta, &snap).expect("write");
        let (meta2, snap2) = read_restart(&path).expect("read");
        assert_eq!(meta, meta2);
        assert_eq!(snap2.step, snap.step);
        assert_eq!(snap2.cfl_scale.to_bits(), snap.cfl_scale.to_bits());
        assert_eq!(snap2.data.len(), snap.data.len());
        for (a, b) in snap.data.iter().zip(&snap2.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_restart_is_rejected() {
        let dir = std::env::temp_dir().join(format!("runctl-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.restart");
        let snap = Snapshot {
            step: 5,
            cfl_scale: 1.0,
            data: vec![1.0; 16],
        };
        let meta = RunMeta {
            tag: "toy".into(),
            gas: "none".into(),
            shape: (4, 4, 1),
        };
        write_restart(&path, &meta, &snap).expect("write");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_restart(&path).expect_err("corruption must be caught");
        assert!(format!("{err}").contains("checksum"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incompatible_restart_header_is_rejected() {
        let dir = std::env::temp_dir().join(format!("runctl-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("other.restart");
        let snap = Snapshot {
            step: 2,
            cfl_scale: 1.0,
            data: vec![0.5],
        };
        let meta = RunMeta {
            tag: "somethingelse".into(),
            gas: "none".into(),
            shape: (9, 9, 9),
        };
        write_restart(&path, &meta, &snap).expect("write");
        let mut toy = ToyRelax::new(None);
        let err = run_controlled(
            &mut toy,
            &RunOptions {
                max_units: 5,
                restart_from: Some(path),
                ..RunOptions::default()
            },
        )
        .expect_err("foreign restart");
        assert!(format!("{err}").contains("incompatible"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_with_backoff_halves_until_success() {
        let out = retry_with_backoff(5, 0.5, 1e-3, |scale| {
            if scale > 0.3 {
                Err(SolverError::IterationLimit {
                    context: "toy".into(),
                    iters: 1,
                    residual: 1.0,
                })
            } else {
                Ok(scale)
            }
        })
        .expect("eventually succeeds");
        assert_eq!(out.retries, 2);
        assert_eq!(out.final_scale.to_bits(), 0.25_f64.to_bits());
    }

    #[test]
    fn retry_with_backoff_passes_through_hard_errors() {
        let err = retry_with_backoff(5, 0.5, 1e-3, |_| -> Result<(), SolverError> {
            Err(SolverError::BadInput("nope".into()))
        })
        .expect_err("bad input is not retried");
        assert!(matches!(err, SolverError::BadInput(_)));
    }
}
