//! Finite-volume Euler solver (planar / axisymmetric) — the "E" of E+BL.
//!
//! Cell-centered finite volume on a structured body-fitted grid with AUSM+
//! interface fluxes, MUSCL reconstruction with TVD limiters, and explicit
//! local-time-step marching to the steady state. The equation of state is
//! abstract ([`GasModel`]), so the same scheme runs calorically perfect air,
//! effective-γ hypersonic models, and tabulated equilibrium air — exactly
//! the "sophisticated ideal-gas fluid codes + established real-gas models"
//! coupling path the paper describes.
//!
//! Conserved variables per cell: `[ρ, ρu_x, ρu_r, ρE]` with
//! `E = e + (u_x² + u_r²)/2`. In axisymmetric mode all face areas and
//! volumes are per-radian and the geometric pressure source
//! `p·A_meridian` appears in the r-momentum equation.

use crate::audit;
use aerothermo_gas::GasModel;
use aerothermo_grid::{Metrics, StructuredGrid};
use aerothermo_numerics::limiters::Limiter;
use aerothermo_numerics::simd::F64x4;
use aerothermo_numerics::telemetry::{
    counters, Counter, MonitorOptions, ResidualMonitor, RunTelemetry, SolverError,
};
use aerothermo_numerics::{metrics, trace, Field3};
use rayon::prelude::*;

/// Number of conserved variables.
pub const NEQ: usize = 4;

/// Structure-of-arrays cell primitives, row-major `i * ncj + j` per lane.
///
/// The flux kernels read each primitive component for four consecutive
/// cells at a time; separate contiguous lanes turn those reads into plain
/// vector loads ([`F64x4::load`]) instead of a gather over interleaved
/// `Primitive` records. The layout is observable only through
/// [`PrimSoA::get`]/[`PrimSoA::set`]: pack/unpack round-trips bitwise.
#[derive(Debug, Default, Clone)]
pub struct PrimSoA {
    /// Density lane \[kg/m³\].
    pub rho: Vec<f64>,
    /// Axial-velocity lane \[m/s\].
    pub ux: Vec<f64>,
    /// Radial-velocity lane \[m/s\].
    pub ur: Vec<f64>,
    /// Pressure lane \[Pa\].
    pub p: Vec<f64>,
    /// Sound-speed lane \[m/s\].
    pub a: Vec<f64>,
    /// Total-enthalpy lane \[J/kg\].
    pub h0: Vec<f64>,
}

impl PrimSoA {
    /// Number of cells stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// Whether the container is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// Resize every lane to `n` cells (new cells zero-filled).
    pub fn resize(&mut self, n: usize) {
        self.rho.resize(n, 0.0);
        self.ux.resize(n, 0.0);
        self.ur.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.a.resize(n, 0.0);
        self.h0.resize(n, 0.0);
    }

    /// Gather the cell at flat index `idx` back into record form.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: usize) -> Primitive {
        Primitive {
            rho: self.rho[idx],
            ux: self.ux[idx],
            ur: self.ur[idx],
            p: self.p[idx],
            a: self.a[idx],
            h0: self.h0[idx],
        }
    }

    /// Scatter a record into the lanes at flat index `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, q: Primitive) {
        self.rho[idx] = q.rho;
        self.ux[idx] = q.ux;
        self.ur[idx] = q.ur;
        self.p[idx] = q.p;
        self.a[idx] = q.a;
        self.h0[idx] = q.h0;
    }

    /// Build from a record slice (the AoS→SoA transpose).
    #[must_use]
    pub fn pack(prims: &[Primitive]) -> Self {
        let mut soa = Self::default();
        soa.resize(prims.len());
        for (idx, q) in prims.iter().enumerate() {
            soa.set(idx, *q);
        }
        soa
    }

    /// Recover the record vector (the SoA→AoS transpose).
    #[must_use]
    pub fn unpack(&self) -> Vec<Primitive> {
        (0..self.len()).map(|idx| self.get(idx)).collect()
    }

    /// Vector load of cells `idx..idx + 4` into one register per lane.
    #[inline]
    fn load4(&self, idx: usize) -> Prim4 {
        Prim4 {
            rho: F64x4::load(&self.rho[idx..]),
            ux: F64x4::load(&self.ux[idx..]),
            ur: F64x4::load(&self.ur[idx..]),
            p: F64x4::load(&self.p[idx..]),
            a: F64x4::load(&self.a[idx..]),
            h0: F64x4::load(&self.h0[idx..]),
        }
    }
}

/// Four primitive states, one per vector lane.
#[derive(Debug, Clone, Copy)]
struct Prim4 {
    rho: F64x4,
    ux: F64x4,
    ur: F64x4,
    p: F64x4,
    a: F64x4,
    h0: F64x4,
}

/// Reusable face-based-assembly scratch owned by the solver: cached cell
/// primitives and the single-sweep face fluxes. Allocated on the first
/// step, reused (never reallocated) afterwards — the step loop itself is
/// allocation-free.
#[derive(Debug, Default)]
pub(crate) struct EulerScratch {
    /// Cell primitives in structure-of-arrays layout (see [`PrimSoA`]).
    pub(crate) prim: PrimSoA,
    /// i-face fluxes, laid out `iface * ncj + j` (each i-face column is a
    /// contiguous, independently writable chunk).
    pub(crate) fi: Vec<[f64; NEQ]>,
    /// j-face fluxes, laid out `i * (ncj + 1) + jface` (each cell row's
    /// faces are contiguous).
    pub(crate) fj: Vec<[f64; NEQ]>,
}

/// Primitive state at a cell.
#[derive(Debug, Clone, Copy)]
pub struct Primitive {
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Axial velocity \[m/s\].
    pub ux: f64,
    /// Radial velocity \[m/s\].
    pub ur: f64,
    /// Pressure \[Pa\].
    pub p: f64,
    /// Sound speed \[m/s\].
    pub a: f64,
    /// Total specific enthalpy \[J/kg\].
    pub h0: f64,
}

/// Boundary condition applied to one side of the block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bc {
    /// Supersonic inflow at the given freestream primitive state.
    Inflow {
        /// Freestream density \[kg/m³\].
        rho: f64,
        /// Freestream axial velocity \[m/s\].
        ux: f64,
        /// Freestream radial velocity \[m/s\].
        ur: f64,
        /// Freestream pressure \[Pa\].
        p: f64,
    },
    /// Zero-gradient (supersonic) outflow.
    Outflow,
    /// Inviscid slip wall / symmetry plane (normal velocity mirrored).
    SlipWall,
}

/// Boundary conditions for the four block sides.
#[derive(Debug, Clone, Copy)]
pub struct BcSet {
    /// i = 0 side (stagnation line on blunt-body grids).
    pub i_lo: Bc,
    /// i = ni−1 side (downstream edge).
    pub i_hi: Bc,
    /// j = 0 side (body surface).
    pub j_lo: Bc,
    /// j = nj−1 side (outer/freestream boundary).
    pub j_hi: Bc,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct EulerOptions {
    /// CFL number for local time stepping.
    pub cfl: f64,
    /// Number of initial first-order, reduced-CFL steps (impulsive-start
    /// robustness).
    pub startup_steps: usize,
    /// Slope limiter for MUSCL.
    pub limiter: Limiter,
    /// Density floor \[kg/m³\].
    pub rho_floor: f64,
    /// Pressure floor \[Pa\].
    pub p_floor: f64,
}

impl Default for EulerOptions {
    fn default() -> Self {
        Self {
            cfl: 0.5,
            startup_steps: 200,
            limiter: Limiter::Minmod,
            rho_floor: 1e-10,
            p_floor: 1e-6,
        }
    }
}

/// The finite-volume Euler solver.
pub struct EulerSolver<'a> {
    grid: &'a StructuredGrid,
    pub(crate) metrics: Metrics,
    gas: &'a dyn GasModel,
    bc: BcSet,
    opts: EulerOptions,
    /// Conserved variables, shape (nci, ncj, NEQ).
    pub u: Field3<f64>,
    steps_taken: usize,
    /// Run-control CFL scale (1.0 = nominal; halved on rollback).
    cfl_scale: f64,
    /// Run-control safety mode: force first-order reconstruction
    /// independent of the startup schedule.
    force_first_order: bool,
    /// Run observability: phase timings, residual histories, counter deltas.
    pub telemetry: RunTelemetry,
    /// Face-based-assembly buffers (see [`EulerScratch`]).
    pub(crate) scratch: EulerScratch,
}

impl<'a> EulerSolver<'a> {
    /// Create a solver with every cell initialized to the given freestream
    /// `(ρ, u_x, u_r, p)`.
    #[must_use]
    pub fn new(
        grid: &'a StructuredGrid,
        gas: &'a dyn GasModel,
        bc: BcSet,
        opts: EulerOptions,
        freestream: (f64, f64, f64, f64),
    ) -> Self {
        let (rho, ux, ur, p) = freestream;
        let e = gas.energy(rho, p);
        let nci = grid.nci();
        let ncj = grid.ncj();
        let mut u = Field3::zeros(nci, ncj, NEQ);
        for i in 0..nci {
            for j in 0..ncj {
                let cell = u.vector_mut(i, j);
                cell[0] = rho;
                cell[1] = rho * ux;
                cell[2] = rho * ur;
                cell[3] = rho * (e + 0.5 * (ux * ux + ur * ur));
            }
        }
        let metrics = Metrics::new(grid);
        Self {
            grid,
            metrics,
            gas,
            bc,
            opts,
            u,
            steps_taken: 0,
            cfl_scale: 1.0,
            force_first_order: false,
            telemetry: RunTelemetry::new(),
            scratch: EulerScratch::default(),
        }
    }

    /// Number of cells along i.
    #[must_use]
    pub fn nci(&self) -> usize {
        self.grid.nci()
    }

    /// Number of cells along j.
    #[must_use]
    pub fn ncj(&self) -> usize {
        self.grid.ncj()
    }

    /// Grid metrics (cell centroids, volumes, face normals).
    #[must_use]
    pub fn grid_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &StructuredGrid {
        self.grid
    }

    /// The gas model in use.
    #[must_use]
    pub fn gas(&self) -> &dyn GasModel {
        self.gas
    }

    /// Primitive state of cell `(i, j)`.
    #[must_use]
    pub fn primitive(&self, i: usize, j: usize) -> Primitive {
        self.primitive_of(self.u.vector(i, j))
    }

    /// Specific internal energy of cell `(i, j)` \[J/kg\].
    #[must_use]
    pub fn internal_energy(&self, i: usize, j: usize) -> f64 {
        let c = self.u.vector(i, j);
        let rho = c[0].max(self.opts.rho_floor);
        let ux = c[1] / rho;
        let ur = c[2] / rho;
        let e_tot = c[3] / rho;
        (e_tot - 0.5 * (ux * ux + ur * ur)).max(1e-6 * e_tot.abs().max(1e-300))
    }

    fn primitive_of(&self, c: &[f64]) -> Primitive {
        let rho = c[0].max(self.opts.rho_floor);
        let ux = c[1] / rho;
        let ur = c[2] / rho;
        let e_tot = c[3] / rho;
        let e = (e_tot - 0.5 * (ux * ux + ur * ur)).max(1e-6 * e_tot.abs().max(1e-300));
        // The paired lookup shares the EOS setup work (table coordinates,
        // clamps) and is bitwise identical to the two individual calls.
        let (p_raw, a_raw) = self.gas.pressure_sound_speed(rho, e);
        let p = p_raw.max(self.opts.p_floor);
        let a = a_raw.max(1.0);
        Primitive {
            rho,
            ux,
            ur,
            p,
            a,
            h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
        }
    }

    /// Ghost primitive for a boundary face with outward unit normal
    /// `(nx, nr)` (pointing out of the domain) given the interior state.
    fn ghost(&self, bc: Bc, interior: &Primitive, nx: f64, nr: f64) -> Primitive {
        match bc {
            Bc::Inflow { rho, ux, ur, p } => {
                let e = self.gas.energy(rho, p);
                Primitive {
                    rho,
                    ux,
                    ur,
                    p,
                    a: self.gas.sound_speed(rho, e).max(1.0),
                    h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
                }
            }
            Bc::Outflow => *interior,
            Bc::SlipWall => {
                let un = interior.ux * nx + interior.ur * nr;
                Primitive {
                    ux: interior.ux - 2.0 * un * nx,
                    ur: interior.ur - 2.0 * un * nr,
                    ..*interior
                }
            }
        }
    }

    /// AUSM+ flux across a face with area-weighted normal `(sx, sr)`;
    /// returns flux·area.
    fn ausm_flux(left: &Primitive, right: &Primitive, sx: f64, sr: f64) -> [f64; NEQ] {
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let unl = left.ux * nx + left.ur * nr;
        let unr = right.ux * nx + right.ur * nr;
        let a_half = 0.5 * (left.a + right.a);
        let ml = unl / a_half;
        let mr = unr / a_half;

        // AUSM+ split functions (β = 1/8, α = 3/16).
        let m4p = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (m + m.abs())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) + 0.125 * s * s
            }
        };
        let m4m = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (m - m.abs())
            } else {
                let s = m * m - 1.0;
                -0.25 * (m - 1.0) * (m - 1.0) - 0.125 * s * s
            }
        };
        let p5p = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (1.0 + m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) * (2.0 - m) + 0.1875 * m * s * s
            }
        };
        let p5m = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (1.0 - m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m - 1.0) * (m - 1.0) * (2.0 + m) - 0.1875 * m * s * s
            }
        };

        let m_half = m4p(ml) + m4m(mr);
        let p_half = p5p(ml) * left.p + p5m(mr) * right.p;
        let mdot = a_half * (m_half.max(0.0) * left.rho + m_half.min(0.0) * right.rho);

        let psi = if mdot >= 0.0 {
            [1.0, left.ux, left.ur, left.h0]
        } else {
            [1.0, right.ux, right.ur, right.h0]
        };
        [
            (mdot * psi[0]) * area,
            (mdot * psi[1] + p_half * nx) * area,
            (mdot * psi[2] + p_half * nr) * area,
            (mdot * psi[3]) * area,
        ]
    }

    fn recon(
        &self,
        lim: Limiter,
        c: &Primitive,
        dl: [f64; 4],
        du: [f64; 4],
        sign: f64,
    ) -> Primitive {
        let s0 = lim.slope(dl[0], du[0]);
        let s1 = lim.slope(dl[1], du[1]);
        let s2 = lim.slope(dl[2], du[2]);
        let s3 = lim.slope(dl[3], du[3]);
        let rho = (c.rho + sign * 0.5 * s0).max(self.opts.rho_floor);
        let p = (c.p + sign * 0.5 * s3).max(self.opts.p_floor);
        let e = self.gas.energy(rho, p);
        let ux = c.ux + sign * 0.5 * s1;
        let ur = c.ur + sign * 0.5 * s2;
        Primitive {
            rho,
            ux,
            ur,
            p,
            a: self.gas.sound_speed(rho, e).max(1.0),
            h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
        }
    }

    fn delta(a: &Primitive, b: &Primitive) -> [f64; 4] {
        [b.rho - a.rho, b.ux - a.ux, b.ur - a.ur, b.p - a.p]
    }

    /// Four-lane [`Self::delta`].
    #[inline]
    fn delta4(a: &Prim4, b: &Prim4) -> [F64x4; 4] {
        [b.rho - a.rho, b.ux - a.ux, b.ur - a.ur, b.p - a.p]
    }

    /// Four-lane [`Self::recon`]: the same expressions transcribed onto
    /// [`F64x4`] (identical association order and floor semantics, so each
    /// lane matches the scalar reconstruction bit-for-bit; the EOS calls go
    /// through [`GasModel::energy4`]/[`GasModel::sound_speed4`], which are
    /// per-lane-identical by contract).
    #[inline]
    fn recon4(&self, lim: Limiter, c: &Prim4, dl: [F64x4; 4], du: [F64x4; 4], sign: f64) -> Prim4 {
        let s0 = lim.slope4(dl[0], du[0]);
        let s1 = lim.slope4(dl[1], du[1]);
        let s2 = lim.slope4(dl[2], du[2]);
        let s3 = lim.slope4(dl[3], du[3]);
        // `sign` is ±1, so `sign * 0.5` is exact and the splat-multiply
        // reproduces the scalar `sign * 0.5 * s` product order.
        let half = F64x4::splat(sign * 0.5);
        let rho = (c.rho + half * s0).max(F64x4::splat(self.opts.rho_floor));
        let p = (c.p + half * s3).max(F64x4::splat(self.opts.p_floor));
        let e = F64x4::from_array(self.gas.energy4(rho.to_array(), p.to_array()));
        let ux = c.ux + half * s1;
        let ur = c.ur + half * s2;
        let a = F64x4::from_array(self.gas.sound_speed4(rho.to_array(), e.to_array()))
            .max(F64x4::splat(1.0));
        let h0 = e + p / rho + F64x4::splat(0.5) * (ux * ux + ur * ur);
        Prim4 {
            rho,
            ux,
            ur,
            p,
            a,
            h0,
        }
    }

    /// Four-lane [`Self::ausm_flux`]: branchless AUSM+ with the split
    /// functions evaluated on all lanes and blended by [`F64x4::select`].
    /// Every expression keeps the scalar association order, and the
    /// select masks reproduce the scalar branch conditions exactly (the
    /// discarded branch's lanes never leak: select is a bitwise blend).
    #[inline]
    fn ausm_flux4(left: &Prim4, right: &Prim4, sx: F64x4, sr: F64x4) -> [F64x4; NEQ] {
        let one = F64x4::splat(1.0);
        let zero = F64x4::splat(0.0);
        let area = (sx * sx + sr * sr).sqrt().max(F64x4::splat(1e-300));
        let nx = sx / area;
        let nr = sr / area;
        let unl = left.ux * nx + left.ur * nr;
        let unr = right.ux * nx + right.ur * nr;
        let a_half = F64x4::splat(0.5) * (left.a + right.a);
        let ml = unl / a_half;
        let mr = unr / a_half;

        // AUSM+ split functions (β = 1/8, α = 3/16), supersonic/subsonic
        // branches computed on all lanes and selected on |m| ≥ 1.
        let signum = |m: F64x4| F64x4::select(m.lt(zero), F64x4::splat(-1.0), one);
        let m4p = |m: F64x4| -> F64x4 {
            let sup = F64x4::splat(0.5) * (m + m.abs());
            let s = m * m - one;
            let sub = F64x4::splat(0.25) * (m + one) * (m + one) + F64x4::splat(0.125) * s * s;
            F64x4::select(m.abs().ge(one), sup, sub)
        };
        let m4m = |m: F64x4| -> F64x4 {
            let sup = F64x4::splat(0.5) * (m - m.abs());
            let s = m * m - one;
            let sub = F64x4::splat(-0.25) * (m - one) * (m - one) - F64x4::splat(0.125) * s * s;
            F64x4::select(m.abs().ge(one), sup, sub)
        };
        let p5p = |m: F64x4| -> F64x4 {
            let sup = F64x4::splat(0.5) * (one + signum(m));
            let s = m * m - one;
            let sub = F64x4::splat(0.25) * (m + one) * (m + one) * (F64x4::splat(2.0) - m)
                + F64x4::splat(0.1875) * m * s * s;
            F64x4::select(m.abs().ge(one), sup, sub)
        };
        let p5m = |m: F64x4| -> F64x4 {
            let sup = F64x4::splat(0.5) * (one - signum(m));
            let s = m * m - one;
            let sub = F64x4::splat(0.25) * (m - one) * (m - one) * (F64x4::splat(2.0) + m)
                - F64x4::splat(0.1875) * m * s * s;
            F64x4::select(m.abs().ge(one), sup, sub)
        };

        let m_half = m4p(ml) + m4m(mr);
        let p_half = p5p(ml) * left.p + p5m(mr) * right.p;
        let mdot = a_half * (m_half.max(zero) * left.rho + m_half.min(zero) * right.rho);

        let upwind_left = mdot.ge(zero);
        let psi1 = F64x4::select(upwind_left, left.ux, right.ux);
        let psi2 = F64x4::select(upwind_left, left.ur, right.ur);
        let psi3 = F64x4::select(upwind_left, left.h0, right.h0);
        // ψ₀ = 1, and mdot·1 is exact, so the mass row folds to mdot·area.
        [
            mdot * area,
            (mdot * psi1 + p_half * nx) * area,
            (mdot * psi2 + p_half * nr) * area,
            (mdot * psi3) * area,
        ]
    }

    /// Transpose `[equation][lane]` vector fluxes into four `[f64; NEQ]`
    /// face records.
    #[inline]
    fn store_flux4(f: &[F64x4; NEQ], out: &mut [[f64; NEQ]]) {
        let rows = [
            f[0].to_array(),
            f[1].to_array(),
            f[2].to_array(),
            f[3].to_array(),
        ];
        for (lane, o) in out.iter_mut().enumerate().take(4) {
            *o = [rows[0][lane], rows[1][lane], rows[2][lane], rows[3][lane]];
        }
    }

    /// Vectorized flux for the four i-faces `(iface, j0..j0+4)`. Only valid
    /// for fully interior columns (`2 ≤ iface ≤ nci−2`), where both sides
    /// reconstruct: the i-stencil never moves in j, so all four lanes share
    /// one code path and the cell loads are contiguous row segments.
    fn i_face_flux4(
        &self,
        prim: &PrimSoA,
        iface: usize,
        j0: usize,
        lim: Limiter,
        out: &mut [[f64; NEQ]],
    ) {
        let ncj = self.ncj();
        let il = iface - 1;
        let ir = iface;
        let qll = prim.load4((il - 1) * ncj + j0);
        let ql = prim.load4(il * ncj + j0);
        let qr = prim.load4(ir * ncj + j0);
        let qrr = prim.load4((ir + 1) * ncj + j0);
        let left = self.recon4(
            lim,
            &ql,
            Self::delta4(&qll, &ql),
            Self::delta4(&ql, &qr),
            1.0,
        );
        let right = self.recon4(
            lim,
            &qr,
            Self::delta4(&ql, &qr),
            Self::delta4(&qr, &qrr),
            -1.0,
        );
        let m = &self.metrics;
        let sx = F64x4::load(&m.si_x.as_slice()[iface * ncj + j0..]);
        let sr = F64x4::load(&m.si_r.as_slice()[iface * ncj + j0..]);
        Self::store_flux4(&Self::ausm_flux4(&left, &right, sx, sr), out);
    }

    /// Vectorized flux for the four j-faces `(i, jf0..jf0+4)`. Only valid
    /// when the whole chunk is fully interior (`2 ≤ jf0` and
    /// `jf0+3 ≤ ncj−2`): the j-stencil slides along the row, so the four
    /// lanes' cell loads are the same row segment shifted by −2…+1.
    fn j_face_flux4(
        &self,
        prim: &PrimSoA,
        i: usize,
        jf0: usize,
        lim: Limiter,
        out: &mut [[f64; NEQ]],
    ) {
        let ncj = self.ncj();
        let base = i * ncj;
        let qll = prim.load4(base + jf0 - 2);
        let ql = prim.load4(base + jf0 - 1);
        let qr = prim.load4(base + jf0);
        let qrr = prim.load4(base + jf0 + 1);
        let left = self.recon4(
            lim,
            &ql,
            Self::delta4(&qll, &ql),
            Self::delta4(&ql, &qr),
            1.0,
        );
        let right = self.recon4(
            lim,
            &qr,
            Self::delta4(&ql, &qr),
            Self::delta4(&qr, &qrr),
            -1.0,
        );
        let m = &self.metrics;
        let sx = F64x4::load(&m.sj_x.as_slice()[i * (ncj + 1) + jf0..]);
        let sr = F64x4::load(&m.sj_r.as_slice()[i * (ncj + 1) + jf0..]);
        Self::store_flux4(&Self::ausm_flux4(&left, &right, sx, sr), out);
    }

    /// Reconstructed states at the interior i-face `(iface, j)` between
    /// cells `(iface−1, j)` and `(iface, j)`.
    fn face_states_i(&self, iface: usize, j: usize, first_order: bool) -> (Primitive, Primitive) {
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let il = iface - 1;
        let ir = iface;
        let ql = self.primitive(il, j);
        let qr = self.primitive(ir, j);
        let left = if il >= 1 {
            let qll = self.primitive(il - 1, j);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if ir + 1 < self.nci() {
            let qrr = self.primitive(ir + 1, j);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// Reconstructed states at the interior j-face `(i, jface)`.
    fn face_states_j(&self, i: usize, jface: usize, first_order: bool) -> (Primitive, Primitive) {
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let jl = jface - 1;
        let jr = jface;
        let ql = self.primitive(i, jl);
        let qr = self.primitive(i, jr);
        let left = if jl >= 1 {
            let qll = self.primitive(i, jl - 1);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if jr + 1 < self.ncj() {
            let qrr = self.primitive(i, jr + 1);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// [`Self::face_states_i`] reading the per-step primitive cache instead
    /// of re-deriving primitives from the conserved state (bit-identical:
    /// [`Self::primitive_of`] is deterministic).
    fn face_states_i_cached(
        &self,
        prim: &PrimSoA,
        iface: usize,
        j: usize,
        first_order: bool,
    ) -> (Primitive, Primitive) {
        let ncj = self.ncj();
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let il = iface - 1;
        let ir = iface;
        let ql = prim.get(il * ncj + j);
        let qr = prim.get(ir * ncj + j);
        let left = if il >= 1 {
            let qll = prim.get((il - 1) * ncj + j);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if ir + 1 < self.nci() {
            let qrr = prim.get((ir + 1) * ncj + j);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// [`Self::face_states_j`] reading the per-step primitive cache.
    fn face_states_j_cached(
        &self,
        prim: &PrimSoA,
        i: usize,
        jface: usize,
        first_order: bool,
    ) -> (Primitive, Primitive) {
        let ncj = self.ncj();
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let jl = jface - 1;
        let jr = jface;
        let ql = prim.get(i * ncj + jl);
        let qr = prim.get(i * ncj + jr);
        let left = if jl >= 1 {
            let qll = prim.get(i * ncj + jl - 1);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if jr + 1 < ncj {
            let qrr = prim.get(i * ncj + jr + 1);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// Flux through i-face `(iface, j)` from cached primitives, including
    /// the boundary ghost faces; the per-face arithmetic is exactly that of
    /// [`Self::cell_residual`].
    fn i_face_flux(&self, prim: &PrimSoA, iface: usize, j: usize, first_order: bool) -> [f64; NEQ] {
        let m = &self.metrics;
        let ncj = self.ncj();
        let sx = m.si_x[(iface, j)];
        let sr = m.si_r[(iface, j)];
        if iface == 0 {
            let qc = prim.get(j);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let ghost = self.ghost(self.bc.i_lo, &qc, -sx / area, -sr / area);
            Self::ausm_flux(&ghost, &qc, sx, sr)
        } else if iface == self.nci() {
            let qc = prim.get((iface - 1) * ncj + j);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let ghost = self.ghost(self.bc.i_hi, &qc, sx / area, sr / area);
            Self::ausm_flux(&qc, &ghost, sx, sr)
        } else {
            let (l, r) = self.face_states_i_cached(prim, iface, j, first_order);
            Self::ausm_flux(&l, &r, sx, sr)
        }
    }

    /// Flux through j-face `(i, jface)` from cached primitives.
    fn j_face_flux(&self, prim: &PrimSoA, i: usize, jface: usize, first_order: bool) -> [f64; NEQ] {
        let m = &self.metrics;
        let ncj = self.ncj();
        let sx = m.sj_x[(i, jface)];
        let sr = m.sj_r[(i, jface)];
        if jface == 0 {
            let qc = prim.get(i * ncj);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let ghost = self.ghost(self.bc.j_lo, &qc, -sx / area, -sr / area);
            Self::ausm_flux(&ghost, &qc, sx, sr)
        } else if jface == ncj {
            let qc = prim.get(i * ncj + jface - 1);
            let area = (sx * sx + sr * sr).sqrt().max(1e-300);
            let ghost = self.ghost(self.bc.j_hi, &qc, sx / area, sr / area);
            Self::ausm_flux(&qc, &ghost, sx, sr)
        } else {
            let (l, r) = self.face_states_j_cached(prim, i, jface, first_order);
            Self::ausm_flux(&l, &r, sx, sr)
        }
    }

    /// Fill the scratch buffers for the current state: cache every cell's
    /// primitives once, then sweep each i-face and j-face exactly once
    /// (row-parallel over disjoint chunks, so race-free and deterministic) —
    /// half the flux arithmetic of the cell-centered sweep, which evaluated
    /// every interior face twice.
    pub(crate) fn assemble_faces(&self, scratch: &mut EulerScratch, first_order: bool) {
        let _mt = metrics::time(metrics::Timer::FaceSweep);
        let nci = self.nci();
        let ncj = self.ncj();
        scratch.prim.resize(nci * ncj);
        scratch.fi.resize((nci + 1) * ncj, [0.0; NEQ]);
        scratch.fj.resize(nci * (ncj + 1), [0.0; NEQ]);

        for i in 0..nci {
            for j in 0..ncj {
                scratch
                    .prim
                    .set(i * ncj + j, self.primitive_of(self.u.vector(i, j)));
            }
        }

        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let prim: &PrimSoA = &scratch.prim;
        let _sp = aerothermo_numerics::trace::span("flux_kernel_simd");
        scratch
            .fi
            .par_chunks_mut(ncj)
            .enumerate()
            .for_each(|(iface, col)| {
                // Fully interior columns (both sides reconstruct) take the
                // four-lane kernel over j; boundary-adjacent columns and the
                // ragged tail fall back to the bitwise-identical scalar path.
                if iface >= 2 && iface + 2 <= nci {
                    let mut j0 = 0usize;
                    while j0 + 4 <= ncj {
                        self.i_face_flux4(prim, iface, j0, lim, &mut col[j0..j0 + 4]);
                        j0 += 4;
                    }
                    for (j, f) in col.iter_mut().enumerate().skip(j0) {
                        *f = self.i_face_flux(prim, iface, j, first_order);
                    }
                } else {
                    for (j, f) in col.iter_mut().enumerate() {
                        *f = self.i_face_flux(prim, iface, j, first_order);
                    }
                }
            });
        scratch
            .fj
            .par_chunks_mut(ncj + 1)
            .enumerate()
            .for_each(|(i, row)| {
                let mut jf = 0usize;
                while jf <= ncj {
                    if jf >= 2 && jf + 3 <= ncj.saturating_sub(2) {
                        self.j_face_flux4(prim, i, jf, lim, &mut row[jf..jf + 4]);
                        jf += 4;
                    } else {
                        row[jf] = self.j_face_flux(prim, i, jf, first_order);
                        jf += 1;
                    }
                }
            });
        counters::add(
            Counter::FacesEvaluated,
            ((nci + 1) * ncj + nci * (ncj + 1)) as u64,
        );
        let simd_i = if nci >= 4 {
            (nci - 3) * (ncj / 4) * 4
        } else {
            0
        };
        let simd_j = if ncj >= 7 {
            nci * ((ncj - 3) / 4) * 4
        } else {
            0
        };
        counters::add(Counter::FluxSimdFaces, (simd_i + simd_j) as u64);
    }

    /// Net residual of cell (i, j) gathered from the assembled face fluxes,
    /// in the same floating-point accumulation order as
    /// [`Self::cell_residual`] (+left i, −right i, +bottom j, −top j,
    /// axisymmetric source last) so states and residual norms match the
    /// cell-centered reference bit-for-bit.
    #[inline]
    pub(crate) fn gather_residual(&self, scratch: &EulerScratch, i: usize, j: usize) -> [f64; NEQ] {
        let ncj = self.ncj();
        let fl = &scratch.fi[i * ncj + j];
        let fr = &scratch.fi[(i + 1) * ncj + j];
        let fb = &scratch.fj[i * (ncj + 1) + j];
        let ft = &scratch.fj[i * (ncj + 1) + j + 1];
        let mut res = [0.0; NEQ];
        for k in 0..NEQ {
            let mut r = fl[k];
            r -= fr[k];
            r += fb[k];
            r -= ft[k];
            res[k] = r;
        }
        if self.grid.geometry == aerothermo_grid::Geometry::Axisymmetric {
            res[2] += scratch.prim.p[i * ncj + j] * self.metrics.plane_area[(i, j)];
        }
        res
    }

    /// Inviscid residual (net flux into the cell, `dU/dt·V`) of cell (i, j).
    ///
    /// Retained as the cell-centered reference implementation: it evaluates
    /// every interior face twice and is used by the Sod test and the
    /// property/regression tests that pin the face-based assembly to it.
    /// The step loops use [`Self::assemble_faces`] +
    /// [`Self::gather_residual`] instead.
    pub fn cell_residual(&self, i: usize, j: usize, first_order: bool) -> [f64; NEQ] {
        let m = &self.metrics;
        let mut res = [0.0; NEQ];
        let qc = self.primitive(i, j);

        // Left i-face: flux in (+).
        {
            let sx = m.si_x[(i, j)];
            let sr = m.si_r[(i, j)];
            let f = if i == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.i_lo, &qc, -sx / area, -sr / area);
                Self::ausm_flux(&ghost, &qc, sx, sr)
            } else {
                let (l, r) = self.face_states_i(i, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        // Right i-face: flux out (−).
        {
            let sx = m.si_x[(i + 1, j)];
            let sr = m.si_r[(i + 1, j)];
            let f = if i + 1 == self.nci() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.i_hi, &qc, sx / area, sr / area);
                Self::ausm_flux(&qc, &ghost, sx, sr)
            } else {
                let (l, r) = self.face_states_i(i + 1, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }
        // Bottom j-face: flux in (+).
        {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            let f = if j == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.j_lo, &qc, -sx / area, -sr / area);
                Self::ausm_flux(&ghost, &qc, sx, sr)
            } else {
                let (l, r) = self.face_states_j(i, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        // Top j-face: flux out (−).
        {
            let sx = m.sj_x[(i, j + 1)];
            let sr = m.sj_r[(i, j + 1)];
            let f = if j + 1 == self.ncj() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.j_hi, &qc, sx / area, sr / area);
                Self::ausm_flux(&qc, &ghost, sx, sr)
            } else {
                let (l, r) = self.face_states_j(i, j + 1, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }

        // Axisymmetric geometric source: the face normals do not close in r;
        // the imbalance (= meridian-plane area) carries the cell pressure.
        if self.grid.geometry == aerothermo_grid::Geometry::Axisymmetric {
            res[2] += qc.p * m.plane_area[(i, j)];
        }
        res
    }

    /// Local time step of cell (i, j) given its primitives.
    fn local_dt(&self, q: &Primitive, i: usize, j: usize, cfl: f64) -> f64 {
        let m = &self.metrics;
        let spectral = |sx: f64, sr: f64| -> f64 {
            let area = (sx * sx + sr * sr).sqrt();
            (q.ux * sx + q.ur * sr).abs() + q.a * area
        };
        let lam = spectral(m.si_x[(i, j)], m.si_r[(i, j)])
            + spectral(m.si_x[(i + 1, j)], m.si_r[(i + 1, j)])
            + spectral(m.sj_x[(i, j)], m.sj_r[(i, j)])
            + spectral(m.sj_x[(i, j + 1)], m.sj_r[(i, j + 1)]);
        cfl * m.volume[(i, j)] / lam.max(1e-300)
    }

    /// Advance one explicit step with local time stepping; returns the
    /// density-residual L2 norm (per cell).
    pub fn step(&mut self) -> f64 {
        let _sp = trace::span("euler_step");
        let _mt = metrics::time(metrics::Timer::EulerStep);
        let (startup, cfl) = crate::runctl::startup_schedule(
            self.steps_taken,
            self.opts.startup_steps,
            self.cfl_scale * self.opts.cfl,
        );
        let first_order = startup || self.force_first_order;
        let nci = self.nci();
        let ncj = self.ncj();

        // Face-based assembly into solver-owned scratch: primitives cached
        // once, each face swept once, no per-step allocation after warmup.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.assemble_faces(&mut scratch, first_order);

        let mut resnorm = 0.0;
        for i in 0..nci {
            for j in 0..ncj {
                let res = self.gather_residual(&scratch, i, j);
                let dt = self.local_dt(&scratch.prim.get(i * ncj + j), i, j, cfl);
                let v = self.metrics.volume[(i, j)];
                let cell = self.u.vector_mut(i, j);
                let scale = dt / v;
                for k in 0..NEQ {
                    cell[k] += scale * res[k];
                }
                if cell[0] < self.opts.rho_floor {
                    cell[0] = self.opts.rho_floor;
                }
                let r = res[0] / v;
                resnorm += r * r;
            }
        }
        self.scratch = scratch;
        self.steps_taken += 1;
        (resnorm / (nci * ncj) as f64).sqrt()
    }

    /// Advance one *time-accurate* step with a caller-supplied global time
    /// step (for unsteady verification problems like the Sod tube).
    pub fn step_global_dt(&mut self, dt: f64) {
        let first_order = crate::runctl::startup_schedule(
            self.steps_taken,
            self.opts.startup_steps,
            self.opts.cfl,
        )
        .0 || self.force_first_order;
        let nci = self.nci();
        let ncj = self.ncj();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.assemble_faces(&mut scratch, first_order);
        for i in 0..nci {
            for j in 0..ncj {
                let res = self.gather_residual(&scratch, i, j);
                let v = self.metrics.volume[(i, j)];
                let cell = self.u.vector_mut(i, j);
                for k in 0..NEQ {
                    cell[k] += dt / v * res[k];
                }
                if cell[0] < self.opts.rho_floor {
                    cell[0] = self.opts.rho_floor;
                }
            }
        }
        self.scratch = scratch;
        self.steps_taken += 1;
    }

    /// Run until the density residual drops below `tol` relative to its
    /// value right after the startup phase, or `max_steps` elapse. Returns
    /// `(steps, final residual ratio)`.
    ///
    /// The full residual history and the `euler_run` phase timing land in
    /// [`EulerSolver::telemetry`].
    ///
    /// # Errors
    /// [`SolverError::Diverged`] when the residual grows past the monitor's
    /// divergence window (instead of spinning to `max_steps`), and
    /// [`SolverError::NonFinite`] with the first affected cell when NaN/Inf
    /// contaminates the state.
    pub fn run(&mut self, max_steps: usize, tol: f64) -> Result<(usize, f64), SolverError> {
        let t0 = std::time::Instant::now();
        let mut monitor = ResidualMonitor::with_options(MonitorOptions {
            grace: self.opts.startup_steps + 25,
            ..MonitorOptions::default()
        });
        let mut reference = f64::NAN;
        let mut last_ratio = 1.0;
        let mut steps = max_steps;
        let mut failure: Option<SolverError> = None;
        for n in 0..max_steps {
            let r = self.step();
            if let Err(e) = monitor.record(r) {
                failure = Some(match e {
                    SolverError::NonFinite { .. } => self.locate_nonfinite().unwrap_or(e),
                    other => other,
                });
                break;
            }
            if audit::due(n) {
                let findings = audit::audit_euler(self, n, false);
                if let Err(e) = audit::apply(&mut self.telemetry, findings) {
                    failure = Some(e);
                    break;
                }
            }
            if n == self.opts.startup_steps {
                reference = r.max(1e-300);
            }
            if reference.is_finite() {
                last_ratio = r / reference;
                if last_ratio < tol {
                    steps = n + 1;
                    break;
                }
            }
        }
        // Converged-state audit: the flux budgets are only required to close
        // once the march has settled, so grade them at full strictness here.
        if failure.is_none() && audit::cadence() != 0 {
            let findings = audit::audit_euler(self, steps, last_ratio < tol);
            if let Err(e) = audit::apply(&mut self.telemetry, findings) {
                failure = Some(e);
            }
        }
        self.telemetry
            .add_phase_secs("euler_run", t0.elapsed().as_secs_f64());
        self.telemetry
            .record_history("density_residual", monitor.into_history());
        match failure {
            Some(e) => Err(e),
            None => Ok((steps, last_ratio)),
        }
    }

    /// Global flux budget per conserved equation: `(net, gross)` where
    /// `net` is the signed flux into the domain through all four
    /// boundaries plus the geometric (axisymmetric) source, and `gross`
    /// is the sum of the contributing magnitudes (the throughput scale).
    ///
    /// Interior fluxes telescope out of the cell-residual sum, so
    /// `net = Σ_cells residual` identically; at a converged steady state
    /// every cell residual vanishes and `|net|/gross → 0`. The mass and
    /// energy rows are the conservation statements the paper's shock-layer
    /// budgets rest on; the momentum rows close because wall pressure
    /// forces enter through the slip-wall ghost fluxes.
    #[must_use]
    pub fn boundary_flux_budget(&self) -> [(f64, f64); NEQ] {
        let m = &self.metrics;
        let mut budget = [(0.0_f64, 0.0_f64); NEQ];
        let tally = |f: &[f64; NEQ], sign: f64, budget: &mut [(f64, f64); NEQ]| {
            for k in 0..NEQ {
                budget[k].0 += sign * f[k];
                budget[k].1 += f[k].abs();
            }
        };
        for j in 0..self.ncj() {
            // i-lo boundary: flux in (+).
            {
                let sx = m.si_x[(0, j)];
                let sr = m.si_r[(0, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(0, j);
                let ghost = self.ghost(self.bc.i_lo, &qc, -sx / area, -sr / area);
                tally(&Self::ausm_flux(&ghost, &qc, sx, sr), 1.0, &mut budget);
            }
            // i-hi boundary: flux out (−).
            {
                let i = self.nci();
                let sx = m.si_x[(i, j)];
                let sr = m.si_r[(i, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i - 1, j);
                let ghost = self.ghost(self.bc.i_hi, &qc, sx / area, sr / area);
                tally(&Self::ausm_flux(&qc, &ghost, sx, sr), -1.0, &mut budget);
            }
        }
        for i in 0..self.nci() {
            // j-lo boundary (body): flux in (+).
            {
                let sx = m.sj_x[(i, 0)];
                let sr = m.sj_r[(i, 0)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i, 0);
                let ghost = self.ghost(self.bc.j_lo, &qc, -sx / area, -sr / area);
                tally(&Self::ausm_flux(&ghost, &qc, sx, sr), 1.0, &mut budget);
            }
            // j-hi boundary (outer): flux out (−).
            {
                let j = self.ncj();
                let sx = m.sj_x[(i, j)];
                let sr = m.sj_r[(i, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i, j - 1);
                let ghost = self.ghost(self.bc.j_hi, &qc, sx / area, sr / area);
                tally(&Self::ausm_flux(&qc, &ghost, sx, sr), -1.0, &mut budget);
            }
        }
        if self.grid.geometry == aerothermo_grid::Geometry::Axisymmetric {
            for i in 0..self.nci() {
                for j in 0..self.ncj() {
                    let src = self.primitive(i, j).p * m.plane_area[(i, j)];
                    budget[2].0 += src;
                    budget[2].1 += src.abs();
                }
            }
        }
        budget
    }

    /// First cell whose conserved state is non-finite, as a typed error.
    pub(crate) fn locate_nonfinite(&self) -> Option<SolverError> {
        const FIELD_NAMES: [&str; NEQ] = ["rho", "rho_ux", "rho_ur", "rho_E"];
        for i in 0..self.grid.nci() {
            for j in 0..self.grid.ncj() {
                let cell = self.u.vector(i, j);
                for (k, name) in FIELD_NAMES.iter().enumerate() {
                    if !cell[k].is_finite() {
                        return Some(SolverError::NonFinite { field: name, i, j });
                    }
                }
            }
        }
        None
    }

    /// Outermost cell index along grid line `i` whose density exceeds
    /// `threshold × ρ∞` — the captured-shock location.
    #[must_use]
    pub fn shock_index(&self, i: usize, rho_inf: f64, threshold: f64) -> Option<usize> {
        (0..self.ncj())
            .rev()
            .find(|&j| self.primitive(i, j).rho > threshold * rho_inf)
    }

    /// Stagnation-line shock standoff distance (i = 0): distance from the
    /// wall cell center to the shock cell center.
    #[must_use]
    pub fn standoff(&self, rho_inf: f64) -> Option<f64> {
        let j_shock = self.shock_index(0, rho_inf, 1.5)?;
        let m = &self.metrics;
        let dx = m.xc[(0, j_shock)] - m.xc[(0, 0)];
        let dr = m.rc[(0, j_shock)] - m.rc[(0, 0)];
        Some((dx * dx + dr * dr).sqrt())
    }

    /// Surface pressure along the body (cells at j = 0).
    #[must_use]
    pub fn wall_pressure(&self) -> Vec<f64> {
        (0..self.nci()).map(|i| self.primitive(i, 0).p).collect()
    }

    /// Snapshot the persistent state: the conserved field (exact bits), the
    /// step counter (it drives the startup schedule), and the CFL scale.
    /// Scratch buffers are recomputed every step and excluded, so restoring
    /// and continuing is bitwise-identical to an uninterrupted run.
    #[must_use]
    pub fn save_state(&self) -> crate::runctl::Snapshot {
        crate::runctl::Snapshot {
            step: self.steps_taken,
            cfl_scale: self.cfl_scale,
            data: self.u.as_slice().to_vec(),
        }
    }

    /// Restore a snapshot taken from an identically-shaped solver.
    ///
    /// # Errors
    /// [`SolverError::BadInput`] on a payload-size mismatch.
    pub fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        let want = self.u.as_slice().len();
        if snap.data.len() != want {
            return Err(SolverError::BadInput(format!(
                "euler2d restore: state length {} != {want}",
                snap.data.len()
            )));
        }
        self.u.as_mut_slice().copy_from_slice(&snap.data);
        self.steps_taken = snap.step;
        self.cfl_scale = snap.cfl_scale;
        Ok(())
    }
}

impl crate::runctl::Steppable for EulerSolver<'_> {
    fn advance(&mut self) -> Result<f64, SolverError> {
        let n = self.steps_taken;
        let r = self.step();
        if !r.is_finite() {
            return Err(self.locate_nonfinite().unwrap_or(SolverError::NonFinite {
                field: "residual",
                i: n,
                j: 0,
            }));
        }
        if audit::due(n) {
            let findings = audit::audit_euler(self, n, false);
            audit::apply(&mut self.telemetry, findings)?;
        }
        Ok(r)
    }

    fn progress(&self) -> usize {
        self.steps_taken
    }

    fn save_state(&self) -> crate::runctl::Snapshot {
        EulerSolver::save_state(self)
    }

    fn restore_state(&mut self, snap: &crate::runctl::Snapshot) -> Result<(), SolverError> {
        EulerSolver::restore_state(self, snap)
    }

    fn cfl_scale(&self) -> f64 {
        self.cfl_scale
    }

    fn set_cfl_scale(&mut self, scale: f64) {
        self.cfl_scale = scale;
    }

    fn set_first_order_fallback(&mut self, on: bool) {
        self.force_first_order = on;
    }

    fn meta(&self) -> crate::runctl::RunMeta {
        crate::runctl::RunMeta {
            tag: "euler2d".to_string(),
            gas: self.gas.describe(),
            shape: self.u.shape(),
        }
    }

    fn telemetry_mut(&mut self) -> &mut RunTelemetry {
        &mut self.telemetry
    }

    fn finalize(&mut self, converged: bool) -> Result<(), SolverError> {
        // The converged-state audit the solver's own `run()` performs after
        // its loop: flux budgets at full strictness once the march settled.
        if audit::cadence() != 0 {
            let findings = audit::audit_euler(self, self.steps_taken, converged);
            audit::apply(&mut self.telemetry, findings)?;
        }
        Ok(())
    }

    fn poison(&mut self) {
        let (i, j) = (self.nci() / 2, self.ncj() / 2);
        self.u.vector_mut(i, j)[0] = f64::NAN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::IdealGas;
    use aerothermo_grid::bodies::Hemisphere;
    use aerothermo_grid::{stretch, Geometry, StructuredGrid};

    fn freestream_mach(gas: &IdealGas, t: f64, p: f64, mach: f64) -> (f64, f64, f64, f64) {
        let rho = p / (gas.r * t);
        let a = (gas.gamma * gas.r * t).sqrt();
        (rho, mach * a, 0.0, p)
    }

    #[test]
    fn uniform_flow_is_preserved() {
        // A uniform supersonic stream through a rectangle must stay uniform
        // (free-stream preservation / GCL).
        let gas = IdealGas::air();
        let grid = StructuredGrid::rectangle(20, 10, 1.0, 0.5, Geometry::Planar);
        let fs = freestream_mach(&gas, 300.0, 1e4, 2.0);
        let bc = BcSet {
            i_lo: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::SlipWall,
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, EulerOptions::default(), fs);
        for _ in 0..50 {
            solver.step();
        }
        for i in 0..solver.nci() {
            for j in 0..solver.ncj() {
                let q = solver.primitive(i, j);
                assert!(
                    (q.rho - fs.0).abs() / fs.0 < 1e-10,
                    "rho drifted at ({i},{j})"
                );
                assert!((q.p - fs.3).abs() / fs.3 < 1e-9, "p drifted at ({i},{j})");
            }
        }
    }

    #[test]
    fn sod_shock_tube_plateaus() {
        // Classic Sod problem run time-accurately on a pseudo-1D grid.
        let gas = IdealGas {
            gamma: 1.4,
            r: 287.0,
        };
        let grid = StructuredGrid::rectangle(201, 3, 1.0, 0.02, Geometry::Planar);
        let bc = BcSet {
            i_lo: Bc::Outflow,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::SlipWall,
        };
        let opts = EulerOptions {
            startup_steps: 0,
            cfl: 0.4,
            ..EulerOptions::default()
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, opts, (1.0, 0.0, 0.0, 1.0));
        // Right half: rho = 0.125, p = 0.1.
        for i in 100..200 {
            for j in 0..2 {
                let e = gas.energy(0.125, 0.1);
                let c = solver.u.vector_mut(i, j);
                c[0] = 0.125;
                c[1] = 0.0;
                c[2] = 0.0;
                c[3] = 0.125 * e;
            }
        }
        // Global-step march to t = 0.2 (dx = 5e-3, wave speeds ~1.8).
        let dt = 5e-4;
        let nsteps = (0.2 / dt) as usize;
        for _ in 0..nsteps {
            let nci = solver.nci();
            let ncj = solver.ncj();
            let mut updates = Vec::new();
            for i in 0..nci {
                for j in 0..ncj {
                    updates.push((i, j, solver.cell_residual(i, j, false)));
                }
            }
            for (i, j, res) in updates {
                let v = solver.metrics.volume[(i, j)];
                let cell = solver.u.vector_mut(i, j);
                for k in 0..NEQ {
                    cell[k] += dt / v * res[k];
                }
            }
        }
        // Exact: p* = 0.30313, u* = 0.92745 between contact and shock.
        let q = solver.primitive(160, 1);
        assert!((q.p - 0.30313).abs() < 0.03, "plateau p = {}", q.p);
        assert!((q.ux - 0.92745).abs() < 0.08, "plateau u = {}", q.ux);
        // Shock near x = 0.85 at t = 0.2.
        let rho_l = solver.primitive(165, 1).rho;
        let rho_r = solver.primitive(180, 1).rho;
        assert!(
            rho_l > 0.2 && rho_r < 0.14,
            "shock structure: {rho_l} {rho_r}"
        );
    }

    #[test]
    fn hemisphere_bow_shock_ideal_gas() {
        // Mach 8 over a unit hemisphere: standoff Δ/Rn ≈ 0.14 (Billig),
        // stagnation pressure = Rayleigh pitot.
        let gas = IdealGas::air();
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(49);
        let grid = StructuredGrid::blunt_body(&body, 31, 49, &|sb| 0.35 + 0.3 * sb, &dist);
        let fs = freestream_mach(&gas, 220.0, 100.0, 8.0);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 400,
            ..EulerOptions::default()
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
        let (_steps, ratio) = solver.run(4000, 1e-3).expect("stable run");
        assert!(ratio < 0.1, "poor convergence: ratio = {ratio}");

        let standoff = solver.standoff(fs.0).expect("no shock detected");
        assert!(
            standoff > 0.08 && standoff < 0.30,
            "standoff = {standoff} (expected ~0.14)"
        );

        let p_stag = solver.primitive(0, 0).p;
        let pitot = 82.87 * fs.3;
        assert!(
            (p_stag - pitot).abs() / pitot < 0.15,
            "p_stag = {p_stag}, Rayleigh = {pitot}"
        );
    }

    #[test]
    fn effective_gamma_thinner_shock_layer() {
        // The real-gas effect of the paper's Fig. 4: lower effective γ →
        // higher compression → smaller standoff.
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(49);
        let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| 0.35 + 0.3 * sb, &dist);

        let run = |gamma: f64| -> f64 {
            let gas = IdealGas::effective_gamma(gamma);
            let t = 220.0;
            let p = 100.0;
            let rho = p / (gas.r * t);
            let a = (gas.gamma * gas.r * t).sqrt();
            let fs = (rho, 8.0 * a, 0.0, p);
            let bc = BcSet {
                i_lo: Bc::SlipWall,
                i_hi: Bc::Outflow,
                j_lo: Bc::SlipWall,
                j_hi: Bc::Inflow {
                    rho: fs.0,
                    ux: fs.1,
                    ur: fs.2,
                    p: fs.3,
                },
            };
            let opts = EulerOptions {
                cfl: 0.4,
                startup_steps: 400,
                ..EulerOptions::default()
            };
            let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
            solver.run(3000, 1e-3).expect("stable run");
            solver.standoff(fs.0).unwrap()
        };
        let d14 = run(1.4);
        let d12 = run(1.2);
        assert!(
            d12 < 0.8 * d14,
            "γ=1.2 standoff {d12} should be well below γ=1.4 {d14}"
        );
    }

    /// Build a solver whose state is the freestream plus deterministic
    /// per-cell perturbations (admissible: positive density and pressure).
    fn perturbed_solver<'a>(
        grid: &'a StructuredGrid,
        gas: &'a IdealGas,
        mach: f64,
        amp: f64,
        seed: u64,
    ) -> EulerSolver<'a> {
        let t = 250.0;
        let p0 = 2000.0;
        let rho0 = p0 / (gas.r * t);
        let a0 = (gas.gamma * gas.r * t).sqrt();
        let v0 = mach * a0;
        let fs = (rho0, v0, 0.0, p0);
        let bc = BcSet {
            i_lo: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            startup_steps: 0,
            ..EulerOptions::default()
        };
        let mut solver = EulerSolver::new(grid, gas, bc, opts, fs);
        let mut state = seed | 1;
        let mut noise = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for i in 0..grid.nci() {
            for j in 0..grid.ncj() {
                let rho = rho0 * (1.0 + amp * noise());
                let p = p0 * (1.0 + amp * noise());
                let ux = v0 * (1.0 + amp * noise());
                let ur = 0.3 * v0 * amp * noise();
                let e = gas.energy(rho, p);
                let cell = solver.u.vector_mut(i, j);
                cell[0] = rho;
                cell[1] = rho * ux;
                cell[2] = rho * ur;
                cell[3] = rho * (e + 0.5 * (ux * ux + ur * ur));
            }
        }
        solver
    }

    /// Maximum relative difference between the face-based assembly and the
    /// cell-centered reference residuals over all cells and equations.
    fn max_face_vs_cell_rel_diff(solver: &EulerSolver, first_order: bool) -> f64 {
        let mut scratch = EulerScratch::default();
        solver.assemble_faces(&mut scratch, first_order);
        let mut worst = 0.0_f64;
        for i in 0..solver.nci() {
            for j in 0..solver.ncj() {
                let fb = solver.gather_residual(&scratch, i, j);
                let cc = solver.cell_residual(i, j, first_order);
                let scale = cc.iter().fold(1e-300_f64, |m, v| m.max(v.abs()));
                for k in 0..NEQ {
                    worst = worst.max((fb[k] - cc[k]).abs() / cc[k].abs().max(scale));
                }
            }
        }
        worst
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig {
            cases: 24,
            ..proptest::test_runner::ProptestConfig::default()
        })]

        /// The AoS→SoA→AoS transpose is lossless: every lane value survives
        /// `pack`/`unpack` bit-for-bit, and indexed `get` agrees with the
        /// source record at every cell.
        #[test]
        fn prim_soa_aos_roundtrip_is_bitwise(
            seed in 0_u64..1_000_000,
            n in 1_usize..40,
        ) {
            // Full-range bit patterns (including subnormals, infinities and
            // NaNs rejected): the transpose is a pure data movement, so any
            // representable f64 must survive.
            let mut state = seed | 1;
            let mut noise = move || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let v = f64::from_bits(state.rotate_left(17));
                if v.is_nan() { 0.0 } else { v }
            };
            let aos: Vec<Primitive> = (0..n)
                .map(|_| Primitive {
                    rho: noise(),
                    ux: noise(),
                    ur: noise(),
                    p: noise(),
                    a: noise(),
                    h0: noise(),
                })
                .collect();
            let soa = PrimSoA::pack(&aos);
            proptest::prop_assert_eq!(soa.len(), aos.len());
            let back = soa.unpack();
            for (idx, (orig, round)) in aos.iter().zip(&back).enumerate() {
                let got = soa.get(idx);
                for (x, y, z) in [
                    (orig.rho, round.rho, got.rho),
                    (orig.ux, round.ux, got.ux),
                    (orig.ur, round.ur, got.ur),
                    (orig.p, round.p, got.p),
                    (orig.a, round.a, got.a),
                    (orig.h0, round.h0, got.h0),
                ] {
                    proptest::prop_assert_eq!(x.to_bits(), y.to_bits());
                    proptest::prop_assert_eq!(x.to_bits(), z.to_bits());
                }
            }
        }

        /// The face-based residual assembly agrees with the cell-centered
        /// reference on randomized admissible states — both reconstruction
        /// orders, both geometries.
        #[test]
        fn face_based_matches_cell_centered_residuals(
            mach in 0.5_f64..5.0,
            amp in 0.01_f64..0.15,
            seed in 0_u64..1_000_000,
        ) {
            let gas = IdealGas::air();
            for geometry in [Geometry::Planar, Geometry::Axisymmetric] {
                let grid = StructuredGrid::rectangle(9, 7, 0.5, 0.3, geometry);
                let solver = perturbed_solver(&grid, &gas, mach, amp, seed);
                for first_order in [true, false] {
                    let d = max_face_vs_cell_rel_diff(&solver, first_order);
                    proptest::prop_assert!(
                        d <= 1e-13,
                        "rel diff {d:.3e} ({geometry:?}, first_order = {first_order})"
                    );
                }
            }
        }
    }

    /// Pre-refactor `step()`: cell-centered residuals, per-cell `local_dt`,
    /// identical update/floor/resnorm arithmetic. The regression test below
    /// pins the face-based step's residual history to this.
    fn reference_step(solver: &mut EulerSolver) -> f64 {
        // Startup scheduling through the same shared helper the production
        // step uses, so the parity tests exercise identical scheduling.
        let (startup, cfl) = crate::runctl::startup_schedule(
            solver.steps_taken,
            solver.opts.startup_steps,
            solver.cfl_scale * solver.opts.cfl,
        );
        let first_order = startup || solver.force_first_order;
        let nci = solver.nci();
        let ncj = solver.ncj();
        let updates: Vec<([f64; NEQ], f64)> = (0..nci * ncj)
            .map(|idx| {
                let i = idx / ncj;
                let j = idx % ncj;
                let q = solver.primitive(i, j);
                (
                    solver.cell_residual(i, j, first_order),
                    solver.local_dt(&q, i, j, cfl),
                )
            })
            .collect();
        let mut resnorm = 0.0;
        for (idx, (res, dt)) in updates.into_iter().enumerate() {
            let i = idx / ncj;
            let j = idx % ncj;
            let v = solver.metrics.volume[(i, j)];
            let cell = solver.u.vector_mut(i, j);
            let scale = dt / v;
            for k in 0..NEQ {
                cell[k] += scale * res[k];
            }
            if cell[0] < solver.opts.rho_floor {
                cell[0] = solver.opts.rho_floor;
            }
            let r = res[0] / v;
            resnorm += r * r;
        }
        solver.steps_taken += 1;
        (resnorm / (nci * ncj) as f64).sqrt()
    }

    #[test]
    fn residual_history_matches_cell_centered_reference() {
        // First 50 residuals of a hemisphere run: face-based step vs the
        // pre-refactor cell-centered step, on identical twin solvers.
        let gas = IdealGas::air();
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(31);
        let grid = StructuredGrid::blunt_body(&body, 13, 31, &|sb| 0.35 + 0.3 * sb, &dist);
        let t = 220.0;
        let p = 100.0;
        let rho = p / (gas.r * t);
        let a = (gas.gamma * gas.r * t).sqrt();
        let fs = (rho, 8.0 * a, 0.0, p);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        // startup_steps = 30 so the compared window crosses the first-order
        // → second-order switch.
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 30,
            ..EulerOptions::default()
        };
        let mut fast = EulerSolver::new(&grid, &gas, bc, opts.clone(), fs);
        let mut reference = EulerSolver::new(&grid, &gas, bc, opts, fs);
        for n in 0..50 {
            let rf = fast.step();
            let rr = reference_step(&mut reference);
            assert!(
                (rf - rr).abs() <= 1e-12 * rr.abs().max(1e-300),
                "residual diverged at step {n}: face {rf:.17e} vs reference {rr:.17e}"
            );
        }
        // The states themselves must agree too.
        for i in 0..fast.nci() {
            for j in 0..fast.ncj() {
                let a = fast.u.vector(i, j);
                let b = reference.u.vector(i, j);
                for k in 0..NEQ {
                    assert!(
                        (a[k] - b[k]).abs() <= 1e-12 * b[k].abs().max(1e-300),
                        "state diverged at ({i},{j})[{k}]"
                    );
                }
            }
        }
    }
}
