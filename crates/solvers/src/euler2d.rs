//! Finite-volume Euler solver (planar / axisymmetric) — the "E" of E+BL.
//!
//! Cell-centered finite volume on a structured body-fitted grid with AUSM+
//! interface fluxes, MUSCL reconstruction with TVD limiters, and explicit
//! local-time-step marching to the steady state. The equation of state is
//! abstract ([`GasModel`]), so the same scheme runs calorically perfect air,
//! effective-γ hypersonic models, and tabulated equilibrium air — exactly
//! the "sophisticated ideal-gas fluid codes + established real-gas models"
//! coupling path the paper describes.
//!
//! Conserved variables per cell: `[ρ, ρu_x, ρu_r, ρE]` with
//! `E = e + (u_x² + u_r²)/2`. In axisymmetric mode all face areas and
//! volumes are per-radian and the geometric pressure source
//! `p·A_meridian` appears in the r-momentum equation.

use crate::audit;
use aerothermo_gas::GasModel;
use aerothermo_grid::{Metrics, StructuredGrid};
use aerothermo_numerics::limiters::Limiter;
use aerothermo_numerics::telemetry::{MonitorOptions, ResidualMonitor, RunTelemetry, SolverError};
use aerothermo_numerics::{trace, Field3};
use rayon::prelude::*;

/// Number of conserved variables.
pub const NEQ: usize = 4;

/// Primitive state at a cell.
#[derive(Debug, Clone, Copy)]
pub struct Primitive {
    /// Density \[kg/m³\].
    pub rho: f64,
    /// Axial velocity \[m/s\].
    pub ux: f64,
    /// Radial velocity \[m/s\].
    pub ur: f64,
    /// Pressure \[Pa\].
    pub p: f64,
    /// Sound speed \[m/s\].
    pub a: f64,
    /// Total specific enthalpy \[J/kg\].
    pub h0: f64,
}

/// Boundary condition applied to one side of the block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bc {
    /// Supersonic inflow at the given freestream primitive state.
    Inflow {
        /// Freestream density \[kg/m³\].
        rho: f64,
        /// Freestream axial velocity \[m/s\].
        ux: f64,
        /// Freestream radial velocity \[m/s\].
        ur: f64,
        /// Freestream pressure \[Pa\].
        p: f64,
    },
    /// Zero-gradient (supersonic) outflow.
    Outflow,
    /// Inviscid slip wall / symmetry plane (normal velocity mirrored).
    SlipWall,
}

/// Boundary conditions for the four block sides.
#[derive(Debug, Clone, Copy)]
pub struct BcSet {
    /// i = 0 side (stagnation line on blunt-body grids).
    pub i_lo: Bc,
    /// i = ni−1 side (downstream edge).
    pub i_hi: Bc,
    /// j = 0 side (body surface).
    pub j_lo: Bc,
    /// j = nj−1 side (outer/freestream boundary).
    pub j_hi: Bc,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct EulerOptions {
    /// CFL number for local time stepping.
    pub cfl: f64,
    /// Number of initial first-order, reduced-CFL steps (impulsive-start
    /// robustness).
    pub startup_steps: usize,
    /// Slope limiter for MUSCL.
    pub limiter: Limiter,
    /// Density floor \[kg/m³\].
    pub rho_floor: f64,
    /// Pressure floor \[Pa\].
    pub p_floor: f64,
}

impl Default for EulerOptions {
    fn default() -> Self {
        Self {
            cfl: 0.5,
            startup_steps: 200,
            limiter: Limiter::Minmod,
            rho_floor: 1e-10,
            p_floor: 1e-6,
        }
    }
}

/// The finite-volume Euler solver.
pub struct EulerSolver<'a> {
    grid: &'a StructuredGrid,
    pub(crate) metrics: Metrics,
    gas: &'a dyn GasModel,
    bc: BcSet,
    opts: EulerOptions,
    /// Conserved variables, shape (nci, ncj, NEQ).
    pub u: Field3<f64>,
    steps_taken: usize,
    /// Run observability: phase timings, residual histories, counter deltas.
    pub telemetry: RunTelemetry,
}

impl<'a> EulerSolver<'a> {
    /// Create a solver with every cell initialized to the given freestream
    /// `(ρ, u_x, u_r, p)`.
    #[must_use]
    pub fn new(
        grid: &'a StructuredGrid,
        gas: &'a dyn GasModel,
        bc: BcSet,
        opts: EulerOptions,
        freestream: (f64, f64, f64, f64),
    ) -> Self {
        let (rho, ux, ur, p) = freestream;
        let e = gas.energy(rho, p);
        let nci = grid.nci();
        let ncj = grid.ncj();
        let mut u = Field3::zeros(nci, ncj, NEQ);
        for i in 0..nci {
            for j in 0..ncj {
                let cell = u.vector_mut(i, j);
                cell[0] = rho;
                cell[1] = rho * ux;
                cell[2] = rho * ur;
                cell[3] = rho * (e + 0.5 * (ux * ux + ur * ur));
            }
        }
        let metrics = Metrics::new(grid);
        Self {
            grid,
            metrics,
            gas,
            bc,
            opts,
            u,
            steps_taken: 0,
            telemetry: RunTelemetry::new(),
        }
    }

    /// Number of cells along i.
    #[must_use]
    pub fn nci(&self) -> usize {
        self.grid.nci()
    }

    /// Number of cells along j.
    #[must_use]
    pub fn ncj(&self) -> usize {
        self.grid.ncj()
    }

    /// Grid metrics (cell centroids, volumes, face normals).
    #[must_use]
    pub fn grid_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &StructuredGrid {
        self.grid
    }

    /// The gas model in use.
    #[must_use]
    pub fn gas(&self) -> &dyn GasModel {
        self.gas
    }

    /// Primitive state of cell `(i, j)`.
    #[must_use]
    pub fn primitive(&self, i: usize, j: usize) -> Primitive {
        self.primitive_of(self.u.vector(i, j))
    }

    /// Specific internal energy of cell `(i, j)` \[J/kg\].
    #[must_use]
    pub fn internal_energy(&self, i: usize, j: usize) -> f64 {
        let c = self.u.vector(i, j);
        let rho = c[0].max(self.opts.rho_floor);
        let ux = c[1] / rho;
        let ur = c[2] / rho;
        let e_tot = c[3] / rho;
        (e_tot - 0.5 * (ux * ux + ur * ur)).max(1e-6 * e_tot.abs().max(1e-300))
    }

    fn primitive_of(&self, c: &[f64]) -> Primitive {
        let rho = c[0].max(self.opts.rho_floor);
        let ux = c[1] / rho;
        let ur = c[2] / rho;
        let e_tot = c[3] / rho;
        let e = (e_tot - 0.5 * (ux * ux + ur * ur)).max(1e-6 * e_tot.abs().max(1e-300));
        let p = self.gas.pressure(rho, e).max(self.opts.p_floor);
        let a = self.gas.sound_speed(rho, e).max(1.0);
        Primitive {
            rho,
            ux,
            ur,
            p,
            a,
            h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
        }
    }

    /// Ghost primitive for a boundary face with outward unit normal
    /// `(nx, nr)` (pointing out of the domain) given the interior state.
    fn ghost(&self, bc: Bc, interior: &Primitive, nx: f64, nr: f64) -> Primitive {
        match bc {
            Bc::Inflow { rho, ux, ur, p } => {
                let e = self.gas.energy(rho, p);
                Primitive {
                    rho,
                    ux,
                    ur,
                    p,
                    a: self.gas.sound_speed(rho, e).max(1.0),
                    h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
                }
            }
            Bc::Outflow => *interior,
            Bc::SlipWall => {
                let un = interior.ux * nx + interior.ur * nr;
                Primitive {
                    ux: interior.ux - 2.0 * un * nx,
                    ur: interior.ur - 2.0 * un * nr,
                    ..*interior
                }
            }
        }
    }

    /// AUSM+ flux across a face with area-weighted normal `(sx, sr)`;
    /// returns flux·area.
    fn ausm_flux(left: &Primitive, right: &Primitive, sx: f64, sr: f64) -> [f64; NEQ] {
        let area = (sx * sx + sr * sr).sqrt().max(1e-300);
        let nx = sx / area;
        let nr = sr / area;
        let unl = left.ux * nx + left.ur * nr;
        let unr = right.ux * nx + right.ur * nr;
        let a_half = 0.5 * (left.a + right.a);
        let ml = unl / a_half;
        let mr = unr / a_half;

        // AUSM+ split functions (β = 1/8, α = 3/16).
        let m4p = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (m + m.abs())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) + 0.125 * s * s
            }
        };
        let m4m = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (m - m.abs())
            } else {
                let s = m * m - 1.0;
                -0.25 * (m - 1.0) * (m - 1.0) - 0.125 * s * s
            }
        };
        let p5p = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (1.0 + m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m + 1.0) * (m + 1.0) * (2.0 - m) + 0.1875 * m * s * s
            }
        };
        let p5m = |m: f64| -> f64 {
            if m.abs() >= 1.0 {
                0.5 * (1.0 - m.signum())
            } else {
                let s = m * m - 1.0;
                0.25 * (m - 1.0) * (m - 1.0) * (2.0 + m) - 0.1875 * m * s * s
            }
        };

        let m_half = m4p(ml) + m4m(mr);
        let p_half = p5p(ml) * left.p + p5m(mr) * right.p;
        let mdot = a_half * (m_half.max(0.0) * left.rho + m_half.min(0.0) * right.rho);

        let psi = if mdot >= 0.0 {
            [1.0, left.ux, left.ur, left.h0]
        } else {
            [1.0, right.ux, right.ur, right.h0]
        };
        [
            (mdot * psi[0]) * area,
            (mdot * psi[1] + p_half * nx) * area,
            (mdot * psi[2] + p_half * nr) * area,
            (mdot * psi[3]) * area,
        ]
    }

    fn recon(
        &self,
        lim: Limiter,
        c: &Primitive,
        dl: [f64; 4],
        du: [f64; 4],
        sign: f64,
    ) -> Primitive {
        let s0 = lim.slope(dl[0], du[0]);
        let s1 = lim.slope(dl[1], du[1]);
        let s2 = lim.slope(dl[2], du[2]);
        let s3 = lim.slope(dl[3], du[3]);
        let rho = (c.rho + sign * 0.5 * s0).max(self.opts.rho_floor);
        let p = (c.p + sign * 0.5 * s3).max(self.opts.p_floor);
        let e = self.gas.energy(rho, p);
        let ux = c.ux + sign * 0.5 * s1;
        let ur = c.ur + sign * 0.5 * s2;
        Primitive {
            rho,
            ux,
            ur,
            p,
            a: self.gas.sound_speed(rho, e).max(1.0),
            h0: e + p / rho + 0.5 * (ux * ux + ur * ur),
        }
    }

    fn delta(a: &Primitive, b: &Primitive) -> [f64; 4] {
        [b.rho - a.rho, b.ux - a.ux, b.ur - a.ur, b.p - a.p]
    }

    /// Reconstructed states at the interior i-face `(iface, j)` between
    /// cells `(iface−1, j)` and `(iface, j)`.
    fn face_states_i(&self, iface: usize, j: usize, first_order: bool) -> (Primitive, Primitive) {
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let il = iface - 1;
        let ir = iface;
        let ql = self.primitive(il, j);
        let qr = self.primitive(ir, j);
        let left = if il >= 1 {
            let qll = self.primitive(il - 1, j);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if ir + 1 < self.nci() {
            let qrr = self.primitive(ir + 1, j);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// Reconstructed states at the interior j-face `(i, jface)`.
    fn face_states_j(&self, i: usize, jface: usize, first_order: bool) -> (Primitive, Primitive) {
        let lim = if first_order {
            Limiter::FirstOrder
        } else {
            self.opts.limiter
        };
        let jl = jface - 1;
        let jr = jface;
        let ql = self.primitive(i, jl);
        let qr = self.primitive(i, jr);
        let left = if jl >= 1 {
            let qll = self.primitive(i, jl - 1);
            self.recon(lim, &ql, Self::delta(&qll, &ql), Self::delta(&ql, &qr), 1.0)
        } else {
            ql
        };
        let right = if jr + 1 < self.ncj() {
            let qrr = self.primitive(i, jr + 1);
            self.recon(
                lim,
                &qr,
                Self::delta(&ql, &qr),
                Self::delta(&qr, &qrr),
                -1.0,
            )
        } else {
            qr
        };
        (left, right)
    }

    /// Inviscid residual (net flux into the cell, `dU/dt·V`) of cell (i, j).
    pub(crate) fn cell_residual(&self, i: usize, j: usize, first_order: bool) -> [f64; NEQ] {
        let m = &self.metrics;
        let mut res = [0.0; NEQ];
        let qc = self.primitive(i, j);

        // Left i-face: flux in (+).
        {
            let sx = m.si_x[(i, j)];
            let sr = m.si_r[(i, j)];
            let f = if i == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.i_lo, &qc, -sx / area, -sr / area);
                Self::ausm_flux(&ghost, &qc, sx, sr)
            } else {
                let (l, r) = self.face_states_i(i, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        // Right i-face: flux out (−).
        {
            let sx = m.si_x[(i + 1, j)];
            let sr = m.si_r[(i + 1, j)];
            let f = if i + 1 == self.nci() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.i_hi, &qc, sx / area, sr / area);
                Self::ausm_flux(&qc, &ghost, sx, sr)
            } else {
                let (l, r) = self.face_states_i(i + 1, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }
        // Bottom j-face: flux in (+).
        {
            let sx = m.sj_x[(i, j)];
            let sr = m.sj_r[(i, j)];
            let f = if j == 0 {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.j_lo, &qc, -sx / area, -sr / area);
                Self::ausm_flux(&ghost, &qc, sx, sr)
            } else {
                let (l, r) = self.face_states_j(i, j, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] += f[k];
            }
        }
        // Top j-face: flux out (−).
        {
            let sx = m.sj_x[(i, j + 1)];
            let sr = m.sj_r[(i, j + 1)];
            let f = if j + 1 == self.ncj() {
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let ghost = self.ghost(self.bc.j_hi, &qc, sx / area, sr / area);
                Self::ausm_flux(&qc, &ghost, sx, sr)
            } else {
                let (l, r) = self.face_states_j(i, j + 1, first_order);
                Self::ausm_flux(&l, &r, sx, sr)
            };
            for k in 0..NEQ {
                res[k] -= f[k];
            }
        }

        // Axisymmetric geometric source: the face normals do not close in r;
        // the imbalance (= meridian-plane area) carries the cell pressure.
        if self.grid.geometry == aerothermo_grid::Geometry::Axisymmetric {
            res[2] += qc.p * m.plane_area[(i, j)];
        }
        res
    }

    /// Local time step of cell (i, j).
    fn local_dt(&self, i: usize, j: usize, cfl: f64) -> f64 {
        let q = self.primitive(i, j);
        let m = &self.metrics;
        let spectral = |sx: f64, sr: f64| -> f64 {
            let area = (sx * sx + sr * sr).sqrt();
            (q.ux * sx + q.ur * sr).abs() + q.a * area
        };
        let lam = spectral(m.si_x[(i, j)], m.si_r[(i, j)])
            + spectral(m.si_x[(i + 1, j)], m.si_r[(i + 1, j)])
            + spectral(m.sj_x[(i, j)], m.sj_r[(i, j)])
            + spectral(m.sj_x[(i, j + 1)], m.sj_r[(i, j + 1)]);
        cfl * m.volume[(i, j)] / lam.max(1e-300)
    }

    /// Advance one explicit step with local time stepping; returns the
    /// density-residual L2 norm (per cell).
    pub fn step(&mut self) -> f64 {
        let _sp = trace::span("euler_step");
        let first_order = self.steps_taken < self.opts.startup_steps;
        let cfl = if first_order {
            0.4 * self.opts.cfl
        } else {
            self.opts.cfl
        };
        let nci = self.nci();
        let ncj = self.ncj();

        // Residuals cell-parallel: each face is evaluated twice — redundant
        // arithmetic, zero synchronization.
        let updates: Vec<([f64; NEQ], f64)> = (0..nci * ncj)
            .into_par_iter()
            .map(|idx| {
                let i = idx / ncj;
                let j = idx % ncj;
                (
                    self.cell_residual(i, j, first_order),
                    self.local_dt(i, j, cfl),
                )
            })
            .collect();

        let mut resnorm = 0.0;
        for (idx, (res, dt)) in updates.into_iter().enumerate() {
            let i = idx / ncj;
            let j = idx % ncj;
            let v = self.metrics.volume[(i, j)];
            let cell = self.u.vector_mut(i, j);
            let scale = dt / v;
            for k in 0..NEQ {
                cell[k] += scale * res[k];
            }
            if cell[0] < self.opts.rho_floor {
                cell[0] = self.opts.rho_floor;
            }
            let r = res[0] / v;
            resnorm += r * r;
        }
        self.steps_taken += 1;
        (resnorm / (nci * ncj) as f64).sqrt()
    }

    /// Advance one *time-accurate* step with a caller-supplied global time
    /// step (for unsteady verification problems like the Sod tube).
    pub fn step_global_dt(&mut self, dt: f64) {
        let first_order = self.steps_taken < self.opts.startup_steps;
        let nci = self.nci();
        let ncj = self.ncj();
        let updates: Vec<[f64; NEQ]> = (0..nci * ncj)
            .into_par_iter()
            .map(|idx| self.cell_residual(idx / ncj, idx % ncj, first_order))
            .collect();
        for (idx, res) in updates.into_iter().enumerate() {
            let i = idx / ncj;
            let j = idx % ncj;
            let v = self.metrics.volume[(i, j)];
            let cell = self.u.vector_mut(i, j);
            for k in 0..NEQ {
                cell[k] += dt / v * res[k];
            }
            if cell[0] < self.opts.rho_floor {
                cell[0] = self.opts.rho_floor;
            }
        }
        self.steps_taken += 1;
    }

    /// Run until the density residual drops below `tol` relative to its
    /// value right after the startup phase, or `max_steps` elapse. Returns
    /// `(steps, final residual ratio)`.
    ///
    /// The full residual history and the `euler_run` phase timing land in
    /// [`EulerSolver::telemetry`].
    ///
    /// # Errors
    /// [`SolverError::Diverged`] when the residual grows past the monitor's
    /// divergence window (instead of spinning to `max_steps`), and
    /// [`SolverError::NonFinite`] with the first affected cell when NaN/Inf
    /// contaminates the state.
    pub fn run(&mut self, max_steps: usize, tol: f64) -> Result<(usize, f64), SolverError> {
        let t0 = std::time::Instant::now();
        let mut monitor = ResidualMonitor::with_options(MonitorOptions {
            grace: self.opts.startup_steps + 25,
            ..MonitorOptions::default()
        });
        let mut reference = f64::NAN;
        let mut last_ratio = 1.0;
        let mut steps = max_steps;
        let mut failure: Option<SolverError> = None;
        for n in 0..max_steps {
            let r = self.step();
            if let Err(e) = monitor.record(r) {
                failure = Some(match e {
                    SolverError::NonFinite { .. } => self.locate_nonfinite().unwrap_or(e),
                    other => other,
                });
                break;
            }
            if audit::due(n) {
                let findings = audit::audit_euler(self, n, false);
                if let Err(e) = audit::apply(&mut self.telemetry, findings) {
                    failure = Some(e);
                    break;
                }
            }
            if n == self.opts.startup_steps {
                reference = r.max(1e-300);
            }
            if reference.is_finite() {
                last_ratio = r / reference;
                if last_ratio < tol {
                    steps = n + 1;
                    break;
                }
            }
        }
        // Converged-state audit: the flux budgets are only required to close
        // once the march has settled, so grade them at full strictness here.
        if failure.is_none() && audit::cadence() != 0 {
            let findings = audit::audit_euler(self, steps, last_ratio < tol);
            if let Err(e) = audit::apply(&mut self.telemetry, findings) {
                failure = Some(e);
            }
        }
        self.telemetry
            .add_phase_secs("euler_run", t0.elapsed().as_secs_f64());
        self.telemetry
            .record_history("density_residual", monitor.into_history());
        match failure {
            Some(e) => Err(e),
            None => Ok((steps, last_ratio)),
        }
    }

    /// Global flux budget per conserved equation: `(net, gross)` where
    /// `net` is the signed flux into the domain through all four
    /// boundaries plus the geometric (axisymmetric) source, and `gross`
    /// is the sum of the contributing magnitudes (the throughput scale).
    ///
    /// Interior fluxes telescope out of the cell-residual sum, so
    /// `net = Σ_cells residual` identically; at a converged steady state
    /// every cell residual vanishes and `|net|/gross → 0`. The mass and
    /// energy rows are the conservation statements the paper's shock-layer
    /// budgets rest on; the momentum rows close because wall pressure
    /// forces enter through the slip-wall ghost fluxes.
    #[must_use]
    pub fn boundary_flux_budget(&self) -> [(f64, f64); NEQ] {
        let m = &self.metrics;
        let mut budget = [(0.0_f64, 0.0_f64); NEQ];
        let tally = |f: &[f64; NEQ], sign: f64, budget: &mut [(f64, f64); NEQ]| {
            for k in 0..NEQ {
                budget[k].0 += sign * f[k];
                budget[k].1 += f[k].abs();
            }
        };
        for j in 0..self.ncj() {
            // i-lo boundary: flux in (+).
            {
                let sx = m.si_x[(0, j)];
                let sr = m.si_r[(0, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(0, j);
                let ghost = self.ghost(self.bc.i_lo, &qc, -sx / area, -sr / area);
                tally(&Self::ausm_flux(&ghost, &qc, sx, sr), 1.0, &mut budget);
            }
            // i-hi boundary: flux out (−).
            {
                let i = self.nci();
                let sx = m.si_x[(i, j)];
                let sr = m.si_r[(i, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i - 1, j);
                let ghost = self.ghost(self.bc.i_hi, &qc, sx / area, sr / area);
                tally(&Self::ausm_flux(&qc, &ghost, sx, sr), -1.0, &mut budget);
            }
        }
        for i in 0..self.nci() {
            // j-lo boundary (body): flux in (+).
            {
                let sx = m.sj_x[(i, 0)];
                let sr = m.sj_r[(i, 0)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i, 0);
                let ghost = self.ghost(self.bc.j_lo, &qc, -sx / area, -sr / area);
                tally(&Self::ausm_flux(&ghost, &qc, sx, sr), 1.0, &mut budget);
            }
            // j-hi boundary (outer): flux out (−).
            {
                let j = self.ncj();
                let sx = m.sj_x[(i, j)];
                let sr = m.sj_r[(i, j)];
                let area = (sx * sx + sr * sr).sqrt().max(1e-300);
                let qc = self.primitive(i, j - 1);
                let ghost = self.ghost(self.bc.j_hi, &qc, sx / area, sr / area);
                tally(&Self::ausm_flux(&qc, &ghost, sx, sr), -1.0, &mut budget);
            }
        }
        if self.grid.geometry == aerothermo_grid::Geometry::Axisymmetric {
            for i in 0..self.nci() {
                for j in 0..self.ncj() {
                    let src = self.primitive(i, j).p * m.plane_area[(i, j)];
                    budget[2].0 += src;
                    budget[2].1 += src.abs();
                }
            }
        }
        budget
    }

    /// First cell whose conserved state is non-finite, as a typed error.
    pub(crate) fn locate_nonfinite(&self) -> Option<SolverError> {
        const FIELD_NAMES: [&str; NEQ] = ["rho", "rho_ux", "rho_ur", "rho_E"];
        for i in 0..self.grid.nci() {
            for j in 0..self.grid.ncj() {
                let cell = self.u.vector(i, j);
                for (k, name) in FIELD_NAMES.iter().enumerate() {
                    if !cell[k].is_finite() {
                        return Some(SolverError::NonFinite { field: name, i, j });
                    }
                }
            }
        }
        None
    }

    /// Outermost cell index along grid line `i` whose density exceeds
    /// `threshold × ρ∞` — the captured-shock location.
    #[must_use]
    pub fn shock_index(&self, i: usize, rho_inf: f64, threshold: f64) -> Option<usize> {
        (0..self.ncj())
            .rev()
            .find(|&j| self.primitive(i, j).rho > threshold * rho_inf)
    }

    /// Stagnation-line shock standoff distance (i = 0): distance from the
    /// wall cell center to the shock cell center.
    #[must_use]
    pub fn standoff(&self, rho_inf: f64) -> Option<f64> {
        let j_shock = self.shock_index(0, rho_inf, 1.5)?;
        let m = &self.metrics;
        let dx = m.xc[(0, j_shock)] - m.xc[(0, 0)];
        let dr = m.rc[(0, j_shock)] - m.rc[(0, 0)];
        Some((dx * dx + dr * dr).sqrt())
    }

    /// Surface pressure along the body (cells at j = 0).
    #[must_use]
    pub fn wall_pressure(&self) -> Vec<f64> {
        (0..self.nci()).map(|i| self.primitive(i, 0).p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerothermo_gas::IdealGas;
    use aerothermo_grid::bodies::Hemisphere;
    use aerothermo_grid::{stretch, Geometry, StructuredGrid};

    fn freestream_mach(gas: &IdealGas, t: f64, p: f64, mach: f64) -> (f64, f64, f64, f64) {
        let rho = p / (gas.r * t);
        let a = (gas.gamma * gas.r * t).sqrt();
        (rho, mach * a, 0.0, p)
    }

    #[test]
    fn uniform_flow_is_preserved() {
        // A uniform supersonic stream through a rectangle must stay uniform
        // (free-stream preservation / GCL).
        let gas = IdealGas::air();
        let grid = StructuredGrid::rectangle(20, 10, 1.0, 0.5, Geometry::Planar);
        let fs = freestream_mach(&gas, 300.0, 1e4, 2.0);
        let bc = BcSet {
            i_lo: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::SlipWall,
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, EulerOptions::default(), fs);
        for _ in 0..50 {
            solver.step();
        }
        for i in 0..solver.nci() {
            for j in 0..solver.ncj() {
                let q = solver.primitive(i, j);
                assert!(
                    (q.rho - fs.0).abs() / fs.0 < 1e-10,
                    "rho drifted at ({i},{j})"
                );
                assert!((q.p - fs.3).abs() / fs.3 < 1e-9, "p drifted at ({i},{j})");
            }
        }
    }

    #[test]
    fn sod_shock_tube_plateaus() {
        // Classic Sod problem run time-accurately on a pseudo-1D grid.
        let gas = IdealGas {
            gamma: 1.4,
            r: 287.0,
        };
        let grid = StructuredGrid::rectangle(201, 3, 1.0, 0.02, Geometry::Planar);
        let bc = BcSet {
            i_lo: Bc::Outflow,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::SlipWall,
        };
        let opts = EulerOptions {
            startup_steps: 0,
            cfl: 0.4,
            ..EulerOptions::default()
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, opts, (1.0, 0.0, 0.0, 1.0));
        // Right half: rho = 0.125, p = 0.1.
        for i in 100..200 {
            for j in 0..2 {
                let e = gas.energy(0.125, 0.1);
                let c = solver.u.vector_mut(i, j);
                c[0] = 0.125;
                c[1] = 0.0;
                c[2] = 0.0;
                c[3] = 0.125 * e;
            }
        }
        // Global-step march to t = 0.2 (dx = 5e-3, wave speeds ~1.8).
        let dt = 5e-4;
        let nsteps = (0.2 / dt) as usize;
        for _ in 0..nsteps {
            let nci = solver.nci();
            let ncj = solver.ncj();
            let mut updates = Vec::new();
            for i in 0..nci {
                for j in 0..ncj {
                    updates.push((i, j, solver.cell_residual(i, j, false)));
                }
            }
            for (i, j, res) in updates {
                let v = solver.metrics.volume[(i, j)];
                let cell = solver.u.vector_mut(i, j);
                for k in 0..NEQ {
                    cell[k] += dt / v * res[k];
                }
            }
        }
        // Exact: p* = 0.30313, u* = 0.92745 between contact and shock.
        let q = solver.primitive(160, 1);
        assert!((q.p - 0.30313).abs() < 0.03, "plateau p = {}", q.p);
        assert!((q.ux - 0.92745).abs() < 0.08, "plateau u = {}", q.ux);
        // Shock near x = 0.85 at t = 0.2.
        let rho_l = solver.primitive(165, 1).rho;
        let rho_r = solver.primitive(180, 1).rho;
        assert!(
            rho_l > 0.2 && rho_r < 0.14,
            "shock structure: {rho_l} {rho_r}"
        );
    }

    #[test]
    fn hemisphere_bow_shock_ideal_gas() {
        // Mach 8 over a unit hemisphere: standoff Δ/Rn ≈ 0.14 (Billig),
        // stagnation pressure = Rayleigh pitot.
        let gas = IdealGas::air();
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(49);
        let grid = StructuredGrid::blunt_body(&body, 31, 49, &|sb| 0.35 + 0.3 * sb, &dist);
        let fs = freestream_mach(&gas, 220.0, 100.0, 8.0);
        let bc = BcSet {
            i_lo: Bc::SlipWall,
            i_hi: Bc::Outflow,
            j_lo: Bc::SlipWall,
            j_hi: Bc::Inflow {
                rho: fs.0,
                ux: fs.1,
                ur: fs.2,
                p: fs.3,
            },
        };
        let opts = EulerOptions {
            cfl: 0.4,
            startup_steps: 400,
            ..EulerOptions::default()
        };
        let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
        let (_steps, ratio) = solver.run(4000, 1e-3).expect("stable run");
        assert!(ratio < 0.1, "poor convergence: ratio = {ratio}");

        let standoff = solver.standoff(fs.0).expect("no shock detected");
        assert!(
            standoff > 0.08 && standoff < 0.30,
            "standoff = {standoff} (expected ~0.14)"
        );

        let p_stag = solver.primitive(0, 0).p;
        let pitot = 82.87 * fs.3;
        assert!(
            (p_stag - pitot).abs() / pitot < 0.15,
            "p_stag = {p_stag}, Rayleigh = {pitot}"
        );
    }

    #[test]
    fn effective_gamma_thinner_shock_layer() {
        // The real-gas effect of the paper's Fig. 4: lower effective γ →
        // higher compression → smaller standoff.
        let body = Hemisphere::new(1.0);
        let dist = stretch::uniform(49);
        let grid = StructuredGrid::blunt_body(&body, 25, 49, &|sb| 0.35 + 0.3 * sb, &dist);

        let run = |gamma: f64| -> f64 {
            let gas = IdealGas::effective_gamma(gamma);
            let t = 220.0;
            let p = 100.0;
            let rho = p / (gas.r * t);
            let a = (gas.gamma * gas.r * t).sqrt();
            let fs = (rho, 8.0 * a, 0.0, p);
            let bc = BcSet {
                i_lo: Bc::SlipWall,
                i_hi: Bc::Outflow,
                j_lo: Bc::SlipWall,
                j_hi: Bc::Inflow {
                    rho: fs.0,
                    ux: fs.1,
                    ur: fs.2,
                    p: fs.3,
                },
            };
            let opts = EulerOptions {
                cfl: 0.4,
                startup_steps: 400,
                ..EulerOptions::default()
            };
            let mut solver = EulerSolver::new(&grid, &gas, bc, opts, fs);
            solver.run(3000, 1e-3).expect("stable run");
            solver.standoff(fs.0).unwrap()
        };
        let d14 = run(1.4);
        let d12 = run(1.2);
        assert!(
            d12 < 0.8 * d14,
            "γ=1.2 standoff {d12} should be well below γ=1.4 {d14}"
        );
    }
}
